#include <gtest/gtest.h>

#include "summary/summary_object.h"

namespace insight {
namespace {

SummaryObject MakeClassifier() {
  SummaryObject obj;
  obj.obj_id = 1;
  obj.instance_id = 10;
  obj.tuple_id = 5;
  obj.type = SummaryType::kClassifier;
  obj.instance_name = "ClassBird1";
  obj.reps = {{"Behavior", 2, 0}, {"Disease", 1, 0}, {"Other", 0, 0}};
  obj.elements = {{{101, 0x1}, {102, 0x2}}, {{103, 0x1}}, {}};
  return obj;
}

SummaryObject MakeSnippet() {
  SummaryObject obj;
  obj.obj_id = 2;
  obj.instance_id = 11;
  obj.tuple_id = 5;
  obj.type = SummaryType::kSnippet;
  obj.instance_name = "TextSummary1";
  obj.reps = {{"Experiment E on swan hormone levels", 0, 201},
              {"Wikipedia article about geese", 0, 202}};
  obj.elements = {{{201, 0x3}}, {{202, 0x1}}};
  return obj;
}

SummaryObject MakeCluster() {
  SummaryObject obj;
  obj.obj_id = 3;
  obj.instance_id = 12;
  obj.tuple_id = 5;
  obj.type = SummaryType::kCluster;
  obj.instance_name = "SimCluster";
  obj.reps = {{"Large one having size", 2, 301}, {"Observed in region", 1, 303}};
  obj.elements = {{{301, 0x1}, {302, 0x2}}, {{303, 0x4}}};
  return obj;
}

TEST(SummaryObjectTest, CommonFunctions) {
  SummaryObject obj = MakeClassifier();
  EXPECT_EQ(obj.GetSummaryType(), SummaryType::kClassifier);
  EXPECT_EQ(obj.GetSummaryName(), "ClassBird1");
  EXPECT_EQ(obj.GetSize(), 3);
  EXPECT_EQ(obj.TotalAnnotations(), 3);
}

TEST(SummaryObjectTest, ClassifierFunctions) {
  SummaryObject obj = MakeClassifier();
  EXPECT_EQ(*obj.GetLabelName(0), "Behavior");
  EXPECT_EQ(*obj.GetLabelValue(0), 2);
  EXPECT_EQ(*obj.GetLabelValue("disease"), 1);  // Case-insensitive.
  EXPECT_EQ(*obj.GetLabelValue("Other"), 0);
  EXPECT_TRUE(obj.GetLabelValue("Provenance").status().IsNotFound());
  EXPECT_TRUE(obj.GetLabelValue(9).status().IsOutOfRange());
}

TEST(SummaryObjectTest, TypeErrorsOnWrongFamily) {
  SummaryObject snippet = MakeSnippet();
  EXPECT_TRUE(snippet.GetLabelValue("x").status().IsTypeError());
  EXPECT_TRUE(snippet.GetGroupSize(0).status().IsTypeError());
  SummaryObject classifier = MakeClassifier();
  EXPECT_TRUE(classifier.GetSnippet(0).status().IsTypeError());
  EXPECT_TRUE(classifier.GetRepresentative(0).status().IsTypeError());
}

TEST(SummaryObjectTest, SnippetFunctions) {
  SummaryObject obj = MakeSnippet();
  EXPECT_EQ(*obj.GetSnippet(1), "Wikipedia article about geese");
  // Both words in one snippet.
  EXPECT_TRUE(obj.ContainsSingle({"swan", "hormone"}));
  // Words split across snippets: single fails, union succeeds.
  EXPECT_FALSE(obj.ContainsSingle({"wikipedia", "hormone"}));
  EXPECT_TRUE(obj.ContainsUnion({"wikipedia", "hormone"}));
  EXPECT_FALSE(obj.ContainsUnion({"wikipedia", "penguin"}));
}

TEST(SummaryObjectTest, ClusterFunctions) {
  SummaryObject obj = MakeCluster();
  EXPECT_EQ(*obj.GetRepresentative(0), "Large one having size");
  EXPECT_EQ(*obj.GetGroupSize(0), 2);
  EXPECT_EQ(*obj.GetGroupSize(1), 1);
}

TEST(SummaryObjectTest, InvariantsDetectMismatch) {
  SummaryObject obj = MakeClassifier();
  EXPECT_TRUE(obj.CheckInvariants().ok());
  obj.reps[0].count = 99;
  EXPECT_FALSE(obj.CheckInvariants().ok());

  SummaryObject cluster = MakeCluster();
  EXPECT_TRUE(cluster.CheckInvariants().ok());
  cluster.reps[0].source_ann = 999;  // Rep not in its group.
  EXPECT_FALSE(cluster.CheckInvariants().ok());
}

TEST(SummaryObjectTest, SerializationRoundTrip) {
  for (const SummaryObject& obj :
       {MakeClassifier(), MakeSnippet(), MakeCluster()}) {
    std::string buf;
    obj.Serialize(&buf);
    SerdeReader reader(buf);
    auto back = SummaryObject::Deserialize(&reader);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_TRUE(*back == obj) << obj.instance_name;
    EXPECT_EQ(back->instance_name, obj.instance_name);
    EXPECT_EQ(back->tuple_id, obj.tuple_id);
  }
}

TEST(SummaryObjectTest, DeserializeRejectsCorruption) {
  std::string buf;
  MakeClassifier().Serialize(&buf);
  buf.resize(buf.size() / 2);
  SerdeReader reader(buf);
  EXPECT_FALSE(SummaryObject::Deserialize(&reader).ok());

  SerdeReader bad_type("\x09garbage");
  EXPECT_FALSE(SummaryObject::Deserialize(&bad_type).ok());
}

TEST(SummarySetTest, AccessorsAndSerialization) {
  SummarySet set({MakeClassifier(), MakeSnippet(), MakeCluster()});
  EXPECT_EQ(set.GetSize(), 3);
  ASSERT_NE(set.GetSummaryObject("classbird1"), nullptr);
  EXPECT_EQ(set.GetSummaryObject("ClassBird1")->type,
            SummaryType::kClassifier);
  EXPECT_EQ(set.GetSummaryObject("nope"), nullptr);
  ASSERT_NE(set.GetSummaryObject(size_t{2}), nullptr);
  EXPECT_EQ(set.GetSummaryObject(size_t{2})->instance_name, "SimCluster");
  EXPECT_EQ(set.GetSummaryObject(size_t{3}), nullptr);

  std::string buf;
  set.Serialize(&buf);
  auto back = SummarySet::Deserialize(buf);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->GetSize(), 3);
  EXPECT_TRUE(*back->GetSummaryObject("SimCluster") ==
              *set.GetSummaryObject("SimCluster"));
}

TEST(SummarySetTest, EmptySetSerialization) {
  SummarySet set;
  std::string buf;
  set.Serialize(&buf);
  auto back = SummarySet::Deserialize(buf);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

}  // namespace
}  // namespace insight
