#include <gtest/gtest.h>

#include "engine/expression.h"

namespace insight {
namespace {

Schema TestSchema() {
  return Schema({{"name", ValueType::kString},
                 {"count", ValueType::kInt64},
                 {"weight", ValueType::kDouble}});
}

Row TestRow() {
  Row row;
  row.data = Tuple({Value::String("Swan Goose"), Value::Int(7),
                    Value::Double(3.5)});
  SummaryObject cls;
  cls.instance_id = 1;
  cls.type = SummaryType::kClassifier;
  cls.instance_name = "ClassBird1";
  cls.reps = {{"Disease", 8, 0}, {"Behavior", 33, 0}};
  cls.elements = {std::vector<ElementRef>(8, {1, 1}),
                  std::vector<ElementRef>(33, {2, 1})};
  SummaryObject snip;
  snip.instance_id = 2;
  snip.type = SummaryType::kSnippet;
  snip.instance_name = "TextSummary1";
  snip.reps = {{"Experiment about swan hormone", 0, 10},
               {"Wikipedia entry", 0, 11}};
  snip.elements = {{{10, 1}}, {{11, 1}}};
  row.summaries = SummarySet({cls, snip});
  return row;
}

TEST(ExpressionTest, ColumnAndLiteral) {
  const Schema schema = TestSchema();
  const Row row = TestRow();
  EXPECT_EQ(Col("name")->Eval(row, schema)->AsString(), "Swan Goose");
  EXPECT_EQ(Col("COUNT")->Eval(row, schema)->AsInt(), 7);
  EXPECT_TRUE(Col("nope")->Eval(row, schema).status().IsNotFound());
  EXPECT_EQ(Lit(Value::Int(3))->Eval(row, schema)->AsInt(), 3);
}

TEST(ExpressionTest, Comparisons) {
  const Schema schema = TestSchema();
  const Row row = TestRow();
  EXPECT_TRUE(*Cmp(Col("count"), CompareOp::kEq, Lit(Value::Int(7)))
                   ->EvalBool(row, schema));
  EXPECT_TRUE(*Cmp(Col("count"), CompareOp::kGt, Lit(Value::Double(6.5)))
                   ->EvalBool(row, schema));
  EXPECT_FALSE(*Cmp(Col("count"), CompareOp::kLt, Lit(Value::Int(7)))
                    ->EvalBool(row, schema));
  EXPECT_TRUE(*Cmp(Col("name"), CompareOp::kNe, Lit(Value::String("X")))
                   ->EvalBool(row, schema));
}

TEST(ExpressionTest, NullComparisonIsFalse) {
  const Schema schema = TestSchema();
  Row row = TestRow();
  row.data.at(1) = Value::Null();
  EXPECT_FALSE(*Cmp(Col("count"), CompareOp::kEq, Lit(Value::Null()))
                    ->EvalBool(row, schema));
  EXPECT_FALSE(*Cmp(Col("count"), CompareOp::kNe, Lit(Value::Int(1)))
                    ->EvalBool(row, schema));
}

TEST(ExpressionTest, LogicalShortCircuit) {
  const Schema schema = TestSchema();
  const Row row = TestRow();
  auto t = [&] { return Cmp(Col("count"), CompareOp::kEq, Lit(Value::Int(7))); };
  auto f = [&] { return Cmp(Col("count"), CompareOp::kEq, Lit(Value::Int(0))); };
  EXPECT_TRUE(*And(t(), t())->EvalBool(row, schema));
  EXPECT_FALSE(*And(t(), f())->EvalBool(row, schema));
  EXPECT_TRUE(*Or(f(), t())->EvalBool(row, schema));
  EXPECT_FALSE(*Or(f(), f())->EvalBool(row, schema));
  EXPECT_TRUE(*Not(f())->EvalBool(row, schema));
}

TEST(ExpressionTest, LikeOnStrings) {
  const Schema schema = TestSchema();
  const Row row = TestRow();
  EXPECT_TRUE(*Like(Col("name"), "Swan%")->EvalBool(row, schema));
  EXPECT_FALSE(*Like(Col("name"), "Goose%")->EvalBool(row, schema));
  EXPECT_TRUE(Like(Col("count"), "7%")->EvalBool(row, schema)
                  .status().IsTypeError());
}

TEST(ExpressionTest, SummaryFunctions) {
  const Schema schema = TestSchema();
  const Row row = TestRow();
  EXPECT_EQ(LabelValue("ClassBird1", "Disease")->Eval(row, schema)->AsInt(),
            8);
  EXPECT_EQ(LabelValue("classbird1", "behavior")->Eval(row, schema)->AsInt(),
            33);
  // Missing instance -> NULL -> predicate false.
  EXPECT_TRUE(LabelValue("Nope", "Disease")->Eval(row, schema)->is_null());
  EXPECT_FALSE(*Cmp(LabelValue("Nope", "Disease"), CompareOp::kGt,
                    Lit(Value::Int(0)))
                    ->EvalBool(row, schema));
  // Missing label is an error (the instance schema is known).
  EXPECT_FALSE(LabelValue("ClassBird1", "Provenance")->Eval(row, schema)
                   .ok());

  EXPECT_TRUE(*ContainsSingle("TextSummary1", {"swan", "hormone"})
                   ->EvalBool(row, schema));
  EXPECT_FALSE(*ContainsSingle("TextSummary1", {"wikipedia", "hormone"})
                    ->EvalBool(row, schema));
  EXPECT_TRUE(*ContainsUnion("TextSummary1", {"wikipedia", "hormone"})
                   ->EvalBool(row, schema));

  SummaryFuncExpr set_size;
  EXPECT_EQ(set_size.Eval(row, schema)->AsInt(), 2);
  SummaryFuncExpr obj_size(SummaryFuncKind::kObjectSize, "ClassBird1");
  EXPECT_EQ(obj_size.Eval(row, schema)->AsInt(), 2);
  SummaryFuncExpr has(SummaryFuncKind::kHasObject, "TextSummary1");
  EXPECT_TRUE(has.Eval(row, schema)->AsBool());
}

TEST(ExpressionTest, IsSummaryBasedIntrospection) {
  EXPECT_FALSE(Cmp(Col("a"), CompareOp::kEq, Lit(Value::Int(1)))
                   ->IsSummaryBased());
  EXPECT_TRUE(Cmp(LabelValue("C", "L"), CompareOp::kEq, Lit(Value::Int(1)))
                  ->IsSummaryBased());
  auto mixed = And(Cmp(Col("a"), CompareOp::kEq, Lit(Value::Int(1))),
                   ContainsUnion("T", {"x"}));
  EXPECT_TRUE(mixed->IsSummaryBased());
  std::vector<std::string> instances;
  mixed->CollectInstances(&instances);
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_EQ(instances[0], "T");
  std::vector<std::string> columns;
  mixed->CollectColumns(&columns);
  ASSERT_EQ(columns.size(), 1u);
  EXPECT_EQ(columns[0], "a");
}

TEST(ExpressionTest, CloneProducesEqualBehavior) {
  const Schema schema = TestSchema();
  const Row row = TestRow();
  auto orig = And(Cmp(LabelValue("ClassBird1", "Disease"), CompareOp::kGt,
                      Lit(Value::Int(5))),
                  Like(Col("name"), "Swan%"));
  auto copy = orig->Clone();
  EXPECT_EQ(*orig->EvalBool(row, schema), *copy->EvalBool(row, schema));
  EXPECT_EQ(orig->ToString(), copy->ToString());
}

TEST(MatchIndexablePredicateTest, MatchesTargetShapes) {
  auto expr = Cmp(LabelValue("ClassBird1", "Disease"), CompareOp::kGt,
                  Lit(Value::Int(5)));
  auto match = MatchIndexablePredicate(expr.get());
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->instance, "ClassBird1");
  EXPECT_EQ(match->label, "Disease");
  EXPECT_EQ(match->op, CompareOp::kGt);
  EXPECT_EQ(match->constant, 5);

  // Flipped: 5 < labelValue  ==  labelValue > 5.
  auto flipped = Cmp(Lit(Value::Int(5)), CompareOp::kLt,
                     LabelValue("ClassBird1", "Disease"));
  match = MatchIndexablePredicate(flipped.get());
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->op, CompareOp::kGt);
  EXPECT_EQ(match->constant, 5);
}

TEST(MatchIndexablePredicateTest, RejectsNonTargetShapes) {
  EXPECT_FALSE(MatchIndexablePredicate(
                   Cmp(Col("a"), CompareOp::kEq, Lit(Value::Int(1))).get())
                   .has_value());
  // <> is not index-usable.
  EXPECT_FALSE(MatchIndexablePredicate(
                   Cmp(LabelValue("C", "L"), CompareOp::kNe,
                       Lit(Value::Int(1)))
                       .get())
                   .has_value());
  // Non-integer constant.
  EXPECT_FALSE(MatchIndexablePredicate(
                   Cmp(LabelValue("C", "L"), CompareOp::kEq,
                       Lit(Value::String("x")))
                       .get())
                   .has_value());
  // ContainsUnion is not a label-value predicate.
  EXPECT_FALSE(MatchIndexablePredicate(
                   Cmp(ContainsUnion("T", {"x"}), CompareOp::kEq,
                       Lit(Value::Bool(true)))
                       .get())
                   .has_value());
}

}  // namespace
}  // namespace insight
