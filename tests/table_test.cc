#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <memory>

#include "index/catalog.h"
#include "index/key_codec.h"
#include "index/table.h"
#include "storage/buffer_pool.h"
#include "storage/storage_manager.h"
#include "txn/transaction_manager.h"
#include "txn/txn.h"

namespace insight {
namespace {

Schema BirdsSchema() {
  return Schema({{"id", ValueType::kInt64},
                 {"name", ValueType::kString},
                 {"family", ValueType::kString},
                 {"weight", ValueType::kDouble}});
}

/// Every table case runs on both the in-memory store and real page files.
class TableTest : public ::testing::TestWithParam<StorageManager::Backend> {
 protected:
  void SetUp() override {
    if (GetParam() == StorageManager::Backend::kFile) {
      static std::atomic<int> counter{0};
      dir_ = ::testing::TempDir() + "/insight_table_" +
             std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1));
      std::filesystem::remove_all(dir_);
      std::filesystem::create_directories(dir_);
    }
    storage_ = std::make_unique<StorageManager>(GetParam(), dir_);
    pool_ = std::make_unique<BufferPool>(storage_.get(), 256);
    catalog_ = std::make_unique<Catalog>(storage_.get(), pool_.get());
    table_ = *catalog_->CreateTable("birds", BirdsSchema());
  }
  void TearDown() override {
    catalog_ = nullptr;
    pool_ = nullptr;
    storage_ = nullptr;
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  Tuple MakeBird(int64_t id, const std::string& name,
                 const std::string& family, double weight) {
    return Tuple({Value::Int(id), Value::String(name), Value::String(family),
                  Value::Double(weight)});
  }

  std::string dir_;
  std::unique_ptr<StorageManager> storage_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<Catalog> catalog_;
  Table* table_;
};

INSTANTIATE_TEST_SUITE_P(
    Backends, TableTest,
    ::testing::Values(StorageManager::Backend::kMemory,
                      StorageManager::Backend::kFile),
    [](const ::testing::TestParamInfo<StorageManager::Backend>& info) {
      return info.param == StorageManager::Backend::kFile
                 ? std::string("File")
                 : std::string("Memory");
    });

TEST_P(TableTest, InsertAssignsSequentialOids) {
  EXPECT_EQ(*table_->Insert(MakeBird(1, "Swan Goose", "Anatidae", 3.5)), 1u);
  EXPECT_EQ(*table_->Insert(MakeBird(2, "Mute Swan", "Anatidae", 11.0)), 2u);
  EXPECT_EQ(table_->num_rows(), 2u);
}

TEST_P(TableTest, InsertRejectsWrongArity) {
  EXPECT_TRUE(
      table_->Insert(Tuple({Value::Int(1)})).status().IsInvalidArgument());
}

TEST_P(TableTest, GetByOid) {
  Oid oid = *table_->Insert(MakeBird(7, "Heron", "Ardeidae", 2.0));
  auto tuple = table_->Get(oid);
  ASSERT_TRUE(tuple.ok());
  EXPECT_EQ(tuple->at(1).AsString(), "Heron");
  EXPECT_TRUE(table_->Get(999).status().IsNotFound());
}

TEST_P(TableTest, DiskTupleLocAndGetAt) {
  Oid oid = *table_->Insert(MakeBird(1, "Crane", "Gruidae", 5.0));
  auto loc = table_->DiskTupleLoc(oid);
  ASSERT_TRUE(loc.ok());
  Oid got_oid = 0;
  auto tuple = table_->GetAt(*loc, &got_oid);
  ASSERT_TRUE(tuple.ok());
  EXPECT_EQ(got_oid, oid);
  EXPECT_EQ(tuple->at(1).AsString(), "Crane");
}

TEST_P(TableTest, DeleteRemovesRow) {
  Oid oid = *table_->Insert(MakeBird(1, "Dodo", "Columbidae", 20.0));
  ASSERT_TRUE(table_->Delete(oid).ok());
  EXPECT_TRUE(table_->Get(oid).status().IsNotFound());
  EXPECT_EQ(table_->num_rows(), 0u);
}

TEST_P(TableTest, UpdateRewritesTupleAndKeepsOid) {
  Oid oid = *table_->Insert(MakeBird(1, "Sparrow", "Passeridae", 0.03));
  ASSERT_TRUE(
      table_->Update(oid, MakeBird(1, "House Sparrow", "Passeridae", 0.035))
          .ok());
  auto tuple = table_->Get(oid);
  ASSERT_TRUE(tuple.ok());
  EXPECT_EQ(tuple->at(1).AsString(), "House Sparrow");
}

TEST_P(TableTest, UpdateWithGrowthRelocatesButStaysAddressable) {
  Oid oid = *table_->Insert(MakeBird(1, "X", "Y", 1.0));
  std::string long_name(5000, 'n');
  ASSERT_TRUE(table_->Update(oid, MakeBird(1, long_name, "Y", 1.0)).ok());
  auto tuple = table_->Get(oid);
  ASSERT_TRUE(tuple.ok());
  EXPECT_EQ(tuple->at(1).AsString(), long_name);
}

TEST_P(TableTest, ScanYieldsAllRows) {
  for (int i = 0; i < 200; ++i) {
    table_->Insert(MakeBird(i, "bird" + std::to_string(i), "F", i * 0.1))
        .status();
  }
  auto it = table_->Scan();
  Oid oid;
  Tuple tuple;
  int count = 0;
  while (it.Next(&oid, &tuple)) {
    EXPECT_EQ(tuple.at(0).AsInt() + 1, static_cast<int64_t>(oid));
    ++count;
  }
  EXPECT_EQ(count, 200);
}

TEST_P(TableTest, ColumnIndexBackfillsAndMaintains) {
  for (int i = 0; i < 50; ++i) {
    table_->Insert(MakeBird(i, "bird", "fam" + std::to_string(i % 5), 1.0))
        .status();
  }
  ASSERT_TRUE(table_->CreateColumnIndex("family").ok());
  ASSERT_TRUE(table_->HasColumnIndex("Family"));
  const BTree* idx = table_->GetColumnIndex("family");
  ASSERT_NE(idx, nullptr);
  auto hits = idx->Lookup(EncodeIndexKey(Value::String("fam3")));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 10u);

  // Maintained on subsequent inserts/deletes.
  Oid oid = *table_->Insert(MakeBird(100, "new", "fam3", 1.0));
  hits = idx->Lookup(EncodeIndexKey(Value::String("fam3")));
  EXPECT_EQ(hits->size(), 11u);
  ASSERT_TRUE(table_->Delete(oid).ok());
  hits = idx->Lookup(EncodeIndexKey(Value::String("fam3")));
  EXPECT_EQ(hits->size(), 10u);
}

TEST_P(TableTest, ColumnIndexFollowsUpdates) {
  Oid oid = *table_->Insert(MakeBird(1, "b", "old_family", 1.0));
  ASSERT_TRUE(table_->CreateColumnIndex("family").ok());
  ASSERT_TRUE(table_->Update(oid, MakeBird(1, "b", "new_family", 1.0)).ok());
  const BTree* idx = table_->GetColumnIndex("family");
  EXPECT_TRUE(
      idx->Lookup(EncodeIndexKey(Value::String("old_family")))->empty());
  EXPECT_EQ(idx->Lookup(EncodeIndexKey(Value::String("new_family")))->size(),
            1u);
}

TEST_P(TableTest, DuplicateColumnIndexRejected) {
  ASSERT_TRUE(table_->CreateColumnIndex("family").ok());
  EXPECT_EQ(table_->CreateColumnIndex("FAMILY").code(),
            StatusCode::kAlreadyExists);
}

TEST_P(TableTest, CatalogLookup) {
  EXPECT_TRUE(catalog_->HasTable("BIRDS"));
  EXPECT_EQ(*catalog_->GetTable("Birds"), table_);
  EXPECT_TRUE(catalog_->GetTable("nope").status().IsNotFound());
  EXPECT_EQ(catalog_->CreateTable("birds", BirdsSchema()).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog_->TableNames().size(), 1u);
}

TEST_P(TableTest, StorageFootprintGrowsWithData) {
  const uint64_t before = table_->heap_bytes();
  for (int i = 0; i < 2000; ++i) {
    table_->Insert(MakeBird(i, std::string(100, 'x'), "F", 0.0)).status();
  }
  EXPECT_GT(table_->heap_bytes(), before);
  EXPECT_GT(table_->oid_index_bytes(), 0u);
}

// ---------- Transactional write-conflict classification ----------

TEST_P(TableTest, PreSnapshotCommittedDeleteIsNotFoundNotAborted) {
  TransactionManager mgr;
  Transaction* a = *mgr.Begin();
  Oid oid = 0;
  {
    TxnScope scope(a);
    oid = *table_->Insert(MakeBird(1, "Swan Goose", "Anatidae", 3.5));
  }
  ASSERT_TRUE(mgr.Commit(a->id()).ok());

  // An old reader lease keeps the soon-to-be-dead version from being
  // garbage collected.
  Snapshot pinned;
  SnapshotLease lease = mgr.BeginLease(&pinned);

  Transaction* b = *mgr.Begin();
  {
    TxnScope scope(b);
    ASSERT_TRUE(table_->Delete(oid).ok());
  }
  ASSERT_TRUE(mgr.Commit(b->id()).ok());

  // A snapshot taken AFTER the delete committed: the row does not exist
  // for it. The retained dead version must not masquerade as a write
  // conflict — retrying would never succeed.
  Transaction* c = *mgr.Begin();
  {
    TxnScope scope(c);
    const Status del = table_->Delete(oid);
    EXPECT_TRUE(del.IsNotFound()) << del.ToString();
    const Status upd =
        table_->Update(oid, MakeBird(1, "Mute Swan", "Anatidae", 11.0));
    EXPECT_TRUE(upd.IsNotFound()) << upd.ToString();
  }
  ASSERT_TRUE(mgr.Abort(c->id()).ok());
}

TEST_P(TableTest, UncommittedInsertOfAnotherTxnStillAborts) {
  TransactionManager mgr;
  Transaction* writer = *mgr.Begin();
  Oid oid = 0;
  {
    TxnScope scope(writer);
    oid = *table_->Insert(MakeBird(1, "Swan Goose", "Anatidae", 3.5));
  }
  Transaction* other = *mgr.Begin();
  {
    TxnScope scope(other);
    const Status del = table_->Delete(oid);
    EXPECT_TRUE(del.IsAborted()) << del.ToString();
  }
  ASSERT_TRUE(mgr.Abort(other->id()).ok());
  ASSERT_TRUE(mgr.Commit(writer->id()).ok());
}

TEST_P(TableTest, DeleteOfOwnDeletedRowIsNotFound) {
  TransactionManager mgr;
  Transaction* a = *mgr.Begin();
  Oid oid = 0;
  {
    TxnScope scope(a);
    oid = *table_->Insert(MakeBird(1, "Swan Goose", "Anatidae", 3.5));
  }
  ASSERT_TRUE(mgr.Commit(a->id()).ok());

  Transaction* b = *mgr.Begin();
  {
    TxnScope scope(b);
    ASSERT_TRUE(table_->Delete(oid).ok());
    const Status again = table_->Delete(oid);
    EXPECT_TRUE(again.IsNotFound()) << again.ToString();
    const Status upd =
        table_->Update(oid, MakeBird(1, "Mute Swan", "Anatidae", 11.0));
    EXPECT_TRUE(upd.IsNotFound()) << upd.ToString();
  }
  ASSERT_TRUE(mgr.Commit(b->id()).ok());
}

}  // namespace
}  // namespace insight
