#include <gtest/gtest.h>

#include "index/catalog.h"
#include "index/key_codec.h"
#include "index/table.h"
#include "storage/buffer_pool.h"
#include "storage/storage_manager.h"

namespace insight {
namespace {

Schema BirdsSchema() {
  return Schema({{"id", ValueType::kInt64},
                 {"name", ValueType::kString},
                 {"family", ValueType::kString},
                 {"weight", ValueType::kDouble}});
}

class TableTest : public ::testing::Test {
 protected:
  TableTest()
      : storage_(StorageManager::Backend::kMemory),
        pool_(&storage_, 256),
        catalog_(&storage_, &pool_) {
    table_ = *catalog_.CreateTable("birds", BirdsSchema());
  }

  Tuple MakeBird(int64_t id, const std::string& name,
                 const std::string& family, double weight) {
    return Tuple({Value::Int(id), Value::String(name), Value::String(family),
                  Value::Double(weight)});
  }

  StorageManager storage_;
  BufferPool pool_;
  Catalog catalog_;
  Table* table_;
};

TEST_F(TableTest, InsertAssignsSequentialOids) {
  EXPECT_EQ(*table_->Insert(MakeBird(1, "Swan Goose", "Anatidae", 3.5)), 1u);
  EXPECT_EQ(*table_->Insert(MakeBird(2, "Mute Swan", "Anatidae", 11.0)), 2u);
  EXPECT_EQ(table_->num_rows(), 2u);
}

TEST_F(TableTest, InsertRejectsWrongArity) {
  EXPECT_TRUE(
      table_->Insert(Tuple({Value::Int(1)})).status().IsInvalidArgument());
}

TEST_F(TableTest, GetByOid) {
  Oid oid = *table_->Insert(MakeBird(7, "Heron", "Ardeidae", 2.0));
  auto tuple = table_->Get(oid);
  ASSERT_TRUE(tuple.ok());
  EXPECT_EQ(tuple->at(1).AsString(), "Heron");
  EXPECT_TRUE(table_->Get(999).status().IsNotFound());
}

TEST_F(TableTest, DiskTupleLocAndGetAt) {
  Oid oid = *table_->Insert(MakeBird(1, "Crane", "Gruidae", 5.0));
  auto loc = table_->DiskTupleLoc(oid);
  ASSERT_TRUE(loc.ok());
  Oid got_oid = 0;
  auto tuple = table_->GetAt(*loc, &got_oid);
  ASSERT_TRUE(tuple.ok());
  EXPECT_EQ(got_oid, oid);
  EXPECT_EQ(tuple->at(1).AsString(), "Crane");
}

TEST_F(TableTest, DeleteRemovesRow) {
  Oid oid = *table_->Insert(MakeBird(1, "Dodo", "Columbidae", 20.0));
  ASSERT_TRUE(table_->Delete(oid).ok());
  EXPECT_TRUE(table_->Get(oid).status().IsNotFound());
  EXPECT_EQ(table_->num_rows(), 0u);
}

TEST_F(TableTest, UpdateRewritesTupleAndKeepsOid) {
  Oid oid = *table_->Insert(MakeBird(1, "Sparrow", "Passeridae", 0.03));
  ASSERT_TRUE(
      table_->Update(oid, MakeBird(1, "House Sparrow", "Passeridae", 0.035))
          .ok());
  auto tuple = table_->Get(oid);
  ASSERT_TRUE(tuple.ok());
  EXPECT_EQ(tuple->at(1).AsString(), "House Sparrow");
}

TEST_F(TableTest, UpdateWithGrowthRelocatesButStaysAddressable) {
  Oid oid = *table_->Insert(MakeBird(1, "X", "Y", 1.0));
  std::string long_name(5000, 'n');
  ASSERT_TRUE(table_->Update(oid, MakeBird(1, long_name, "Y", 1.0)).ok());
  auto tuple = table_->Get(oid);
  ASSERT_TRUE(tuple.ok());
  EXPECT_EQ(tuple->at(1).AsString(), long_name);
}

TEST_F(TableTest, ScanYieldsAllRows) {
  for (int i = 0; i < 200; ++i) {
    table_->Insert(MakeBird(i, "bird" + std::to_string(i), "F", i * 0.1))
        .status();
  }
  auto it = table_->Scan();
  Oid oid;
  Tuple tuple;
  int count = 0;
  while (it.Next(&oid, &tuple)) {
    EXPECT_EQ(tuple.at(0).AsInt() + 1, static_cast<int64_t>(oid));
    ++count;
  }
  EXPECT_EQ(count, 200);
}

TEST_F(TableTest, ColumnIndexBackfillsAndMaintains) {
  for (int i = 0; i < 50; ++i) {
    table_->Insert(MakeBird(i, "bird", "fam" + std::to_string(i % 5), 1.0))
        .status();
  }
  ASSERT_TRUE(table_->CreateColumnIndex("family").ok());
  ASSERT_TRUE(table_->HasColumnIndex("Family"));
  const BTree* idx = table_->GetColumnIndex("family");
  ASSERT_NE(idx, nullptr);
  auto hits = idx->Lookup(EncodeIndexKey(Value::String("fam3")));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 10u);

  // Maintained on subsequent inserts/deletes.
  Oid oid = *table_->Insert(MakeBird(100, "new", "fam3", 1.0));
  hits = idx->Lookup(EncodeIndexKey(Value::String("fam3")));
  EXPECT_EQ(hits->size(), 11u);
  ASSERT_TRUE(table_->Delete(oid).ok());
  hits = idx->Lookup(EncodeIndexKey(Value::String("fam3")));
  EXPECT_EQ(hits->size(), 10u);
}

TEST_F(TableTest, ColumnIndexFollowsUpdates) {
  Oid oid = *table_->Insert(MakeBird(1, "b", "old_family", 1.0));
  ASSERT_TRUE(table_->CreateColumnIndex("family").ok());
  ASSERT_TRUE(table_->Update(oid, MakeBird(1, "b", "new_family", 1.0)).ok());
  const BTree* idx = table_->GetColumnIndex("family");
  EXPECT_TRUE(
      idx->Lookup(EncodeIndexKey(Value::String("old_family")))->empty());
  EXPECT_EQ(idx->Lookup(EncodeIndexKey(Value::String("new_family")))->size(),
            1u);
}

TEST_F(TableTest, DuplicateColumnIndexRejected) {
  ASSERT_TRUE(table_->CreateColumnIndex("family").ok());
  EXPECT_EQ(table_->CreateColumnIndex("FAMILY").code(),
            StatusCode::kAlreadyExists);
}

TEST_F(TableTest, CatalogLookup) {
  EXPECT_TRUE(catalog_.HasTable("BIRDS"));
  EXPECT_EQ(*catalog_.GetTable("Birds"), table_);
  EXPECT_TRUE(catalog_.GetTable("nope").status().IsNotFound());
  EXPECT_EQ(catalog_.CreateTable("birds", BirdsSchema()).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog_.TableNames().size(), 1u);
}

TEST_F(TableTest, StorageFootprintGrowsWithData) {
  const uint64_t before = table_->heap_bytes();
  for (int i = 0; i < 2000; ++i) {
    table_->Insert(MakeBird(i, std::string(100, 'x'), "F", 0.0)).status();
  }
  EXPECT_GT(table_->heap_bytes(), before);
  EXPECT_GT(table_->oid_index_bytes(), 0u);
}

}  // namespace
}  // namespace insight
