// Replication tests, bottom-up:
//  1. Wire codecs for the three replication frame types (round-trip and
//     corrupt-frame rejection).
//  2. StreamingReplay unit semantics (txn incarnations, aborts, priming).
//  3. LogManager tail cursors (SeekTo bounds, durable-frontier reads).
//  4. End-to-end primary/replica clusters over loopback: ship + apply,
//     the read-only gate, read-your-writes via wait_lsn, promotion, and
//     RoutedClient's write-probing and read-failover.
//  5. FailoverKillTest: kill -9 the primary at each replication crash
//     point mid-stream, promote the replica, and diff its state (rows
//     and Summary-BTree probes) against a serial replay of the acked
//     prefix.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/replication.h"
#include "net/server.h"
#include "sql/database.h"
#include "wal/crash_point.h"
#include "wal/replica_applier.h"

namespace insight {
namespace {

std::string MakeTempDir(const std::string& tag) {
  static std::atomic<int> counter{0};
  std::string dir = ::testing::TempDir() + "/insight_repl_" + tag + "_" +
                    std::to_string(::getpid()) + "_" +
                    std::to_string(counter.fetch_add(1));
  std::filesystem::remove_all(dir);
  return dir;
}

Database::Options DurableOptions(const std::string& dir) {
  Database::Options options;
  options.backend = StorageManager::Backend::kFile;
  options.directory = dir;
  options.wal_sync = Database::WalSyncMode::kGroupCommit;
  return options;
}

// ---------- 1. Wire codecs ----------

TEST(ReplicationWireTest, SubscribeRoundTripAndCorruption) {
  auto lsn = DecodeReplicateSubscribe(EncodeReplicateSubscribe(42));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 42u);

  // LSN 0 is not a valid subscription start.
  EXPECT_FALSE(DecodeReplicateSubscribe(EncodeReplicateSubscribe(0)).ok());
  // Truncated and oversized payloads are rejected.
  EXPECT_FALSE(DecodeReplicateSubscribe("\x01\x02").ok());
  EXPECT_FALSE(
      DecodeReplicateSubscribe(EncodeReplicateSubscribe(7) + "x").ok());
}

TEST(ReplicationWireTest, LogFrameRoundTrip) {
  std::vector<WalRecord> records;
  records.push_back({4, WalRecordType::kNoop, "alpha"});
  records.push_back({5, WalRecordType::kTxnBegin,
                     WalTxnBegin{9}.Encode()});
  records.push_back({6, WalRecordType::kTxnCommit,
                     WalTxnCommit{9}.Encode()});

  std::vector<WalRecord> decoded;
  ASSERT_TRUE(
      DecodeLogFrame(EncodeLogFrame(records, 0, records.size()), &decoded)
          .ok());
  ASSERT_EQ(decoded.size(), 3u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(decoded[i].lsn, records[i].lsn);
    EXPECT_EQ(decoded[i].type, records[i].type);
    EXPECT_EQ(decoded[i].payload, records[i].payload);
  }

  // Sub-range encoding ships [begin, begin+count).
  std::vector<WalRecord> tail;
  ASSERT_TRUE(DecodeLogFrame(EncodeLogFrame(records, 1, 2), &tail).ok());
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].lsn, 5u);
}

TEST(ReplicationWireTest, LogFrameRejectsGapsBadTypesAndTrailingBytes) {
  std::vector<WalRecord> gap;
  gap.push_back({4, WalRecordType::kNoop, ""});
  gap.push_back({6, WalRecordType::kNoop, ""});  // LSN 5 missing.
  std::vector<WalRecord> out;
  EXPECT_FALSE(DecodeLogFrame(EncodeLogFrame(gap, 0, 2), &out).ok());

  std::vector<WalRecord> bad_type;
  bad_type.push_back({4, static_cast<WalRecordType>(200), ""});
  EXPECT_FALSE(DecodeLogFrame(EncodeLogFrame(bad_type, 0, 1), &out).ok());

  std::vector<WalRecord> one;
  one.push_back({4, WalRecordType::kNoop, "x"});
  EXPECT_FALSE(
      DecodeLogFrame(EncodeLogFrame(one, 0, 1) + "junk", &out).ok());
  EXPECT_FALSE(DecodeLogFrame("\x03", &out).ok());  // Truncated count.
}

TEST(ReplicationWireTest, AckRoundTripAndCorruption) {
  auto acked = DecodeReplicaAck(EncodeReplicaAck(777));
  ASSERT_TRUE(acked.ok());
  EXPECT_EQ(*acked, 777u);
  EXPECT_FALSE(DecodeReplicaAck("\x01").ok());
  EXPECT_FALSE(DecodeReplicaAck(EncodeReplicaAck(1) + "x").ok());
}

// ---------- 2. StreamingReplay ----------

WalRecord TxnOpRecord(Lsn lsn, uint64_t txn, const std::string& marker) {
  return {lsn, WalRecordType::kTxnOp,
          WalTxnOp{txn, WalRecordType::kNoop, marker}.Encode()};
}

TEST(StreamingReplayTest, CommittedTxnSealsOneUnit) {
  StreamingReplay replay;
  std::vector<StreamingReplay::Unit> units;
  ASSERT_TRUE(replay
                  .Feed({1, WalRecordType::kTxnBegin,
                         WalTxnBegin{7}.Encode()},
                        &units)
                  .ok());
  ASSERT_TRUE(replay.Feed(TxnOpRecord(2, 7, "a"), &units).ok());
  ASSERT_TRUE(replay.Feed(TxnOpRecord(3, 7, "b"), &units).ok());
  EXPECT_TRUE(units.empty());
  EXPECT_EQ(replay.open_txns(), 1u);

  ASSERT_TRUE(replay
                  .Feed({4, WalRecordType::kTxnCommit,
                         WalTxnCommit{7}.Encode()},
                        &units)
                  .ok());
  ASSERT_EQ(units.size(), 1u);
  EXPECT_EQ(units[0].last_lsn, 4u);
  EXPECT_FALSE(units[0].ddl);
  ASSERT_EQ(units[0].ops.size(), 2u);
  EXPECT_EQ(units[0].ops[0].payload, "a");
  EXPECT_EQ(units[0].ops[1].payload, "b");
  EXPECT_EQ(replay.open_txns(), 0u);
}

TEST(StreamingReplayTest, AbortDropsTheIncarnation) {
  StreamingReplay replay;
  std::vector<StreamingReplay::Unit> units;
  ASSERT_TRUE(replay
                  .Feed({1, WalRecordType::kTxnBegin,
                         WalTxnBegin{7}.Encode()},
                        &units)
                  .ok());
  ASSERT_TRUE(replay.Feed(TxnOpRecord(2, 7, "doomed"), &units).ok());
  ASSERT_TRUE(replay
                  .Feed({3, WalRecordType::kTxnAbort,
                         WalTxnAbort{7}.Encode()},
                        &units)
                  .ok());
  EXPECT_TRUE(units.empty());
  EXPECT_EQ(replay.open_txns(), 0u);
}

TEST(StreamingReplayTest, BeginReopensTheTxnId) {
  StreamingReplay replay;
  std::vector<StreamingReplay::Unit> units;
  ASSERT_TRUE(replay
                  .Feed({1, WalRecordType::kTxnBegin,
                         WalTxnBegin{7}.Encode()},
                        &units)
                  .ok());
  ASSERT_TRUE(replay.Feed(TxnOpRecord(2, 7, "stale"), &units).ok());
  // A second begin for the same id discards the first incarnation.
  ASSERT_TRUE(replay
                  .Feed({3, WalRecordType::kTxnBegin,
                         WalTxnBegin{7}.Encode()},
                        &units)
                  .ok());
  ASSERT_TRUE(replay.Feed(TxnOpRecord(4, 7, "fresh"), &units).ok());
  ASSERT_TRUE(replay
                  .Feed({5, WalRecordType::kTxnCommit,
                         WalTxnCommit{7}.Encode()},
                        &units)
                  .ok());
  ASSERT_EQ(units.size(), 1u);
  ASSERT_EQ(units[0].ops.size(), 1u);
  EXPECT_EQ(units[0].ops[0].payload, "fresh");
}

TEST(StreamingReplayTest, AutocommitAndDdlRecords) {
  StreamingReplay replay;
  std::vector<StreamingReplay::Unit> units;
  ASSERT_TRUE(
      replay.Feed({1, WalRecordType::kInsert, "row"}, &units).ok());
  ASSERT_EQ(units.size(), 1u);
  EXPECT_FALSE(units[0].ddl);

  units.clear();
  ASSERT_TRUE(
      replay.Feed({2, WalRecordType::kCreateTable, "tbl"}, &units).ok());
  ASSERT_EQ(units.size(), 1u);
  EXPECT_TRUE(units[0].ddl);

  // Checkpoint records are not apply units on a live stream.
  units.clear();
  ASSERT_TRUE(
      replay.Feed({3, WalRecordType::kCheckpointBegin, ""}, &units).ok());
  ASSERT_TRUE(
      replay.Feed({4, WalRecordType::kCheckpointEnd, ""}, &units).ok());
  EXPECT_TRUE(units.empty());
}

TEST(StreamingReplayTest, PrimeKeepsOpenTxnsDiscardsSealed) {
  // Local log at restart: txn 1 committed (already applied by recovery),
  // txn 2 still open. Prime must buffer txn 2 only.
  std::vector<WalRecord> log;
  log.push_back({1, WalRecordType::kTxnBegin, WalTxnBegin{1}.Encode()});
  log.push_back(TxnOpRecord(2, 1, "applied"));
  log.push_back({3, WalRecordType::kTxnCommit, WalTxnCommit{1}.Encode()});
  log.push_back({4, WalRecordType::kTxnBegin, WalTxnBegin{2}.Encode()});
  log.push_back(TxnOpRecord(5, 2, "pending"));

  StreamingReplay replay;
  ASSERT_TRUE(replay.Prime(log).ok());
  EXPECT_EQ(replay.open_txns(), 1u);

  std::vector<StreamingReplay::Unit> units;
  ASSERT_TRUE(replay
                  .Feed({6, WalRecordType::kTxnCommit,
                         WalTxnCommit{2}.Encode()},
                        &units)
                  .ok());
  ASSERT_EQ(units.size(), 1u);
  ASSERT_EQ(units[0].ops.size(), 1u);
  EXPECT_EQ(units[0].ops[0].payload, "pending");
}

// ---------- 3. LogManager tail cursors ----------

TEST(LogTailTest, SeekToAndReadDurableFrom) {
  const std::string dir = MakeTempDir("tail");
  {
    auto opened = Database::Open(dir, DurableOptions(dir));
    ASSERT_TRUE(opened.ok());
    auto db = std::move(*opened);
    ASSERT_TRUE(db->Execute("CREATE TABLE t (n INT)").ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          db->Execute("INSERT INTO t VALUES (" + std::to_string(i) + ")")
              .ok());
    }
    ASSERT_TRUE(db->WalSync().ok());

    LogManager* wal = db->wal();
    const Lsn durable = wal->durable_lsn();
    ASSERT_GE(durable, 11u);

    // Full scan from the beginning is dense and complete.
    auto cursor = wal->SeekTo(1);
    ASSERT_TRUE(cursor.ok());
    auto all = wal->ReadDurableFrom(&*cursor, 100000, 1u << 30);
    ASSERT_TRUE(all.ok());
    ASSERT_EQ(all->size(), durable);
    for (size_t i = 0; i < all->size(); ++i) {
      EXPECT_EQ((*all)[i].lsn, i + 1);
    }
    // The cursor is parked at the frontier; nothing more to read.
    auto empty = wal->ReadDurableFrom(&*cursor, 100000, 1u << 30);
    ASSERT_TRUE(empty.ok());
    EXPECT_TRUE(empty->empty());

    // Mid-log seek yields the suffix; max_records caps a batch.
    auto mid = wal->SeekTo(durable / 2);
    ASSERT_TRUE(mid.ok());
    auto batch = wal->ReadDurableFrom(&*mid, 3, 1u << 30);
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(batch->size(), 3u);
    EXPECT_EQ((*batch)[0].lsn, durable / 2);

    // Bounds: 0 is invalid; one-past-durable is a valid (empty) tail;
    // further out is a different log, not ours.
    EXPECT_FALSE(wal->SeekTo(0).ok());
    EXPECT_TRUE(wal->SeekTo(durable + 1).ok());
    EXPECT_FALSE(wal->SeekTo(durable + 2).ok());
  }
  std::filesystem::remove_all(dir);
}

// ---------- 4. End-to-end clusters over loopback ----------

/// One primary + N file-backed replicas wired through ReplicaFeed, all
/// in-process. Tears everything down in reverse order on destruction.
class Cluster {
 public:
  explicit Cluster(const std::string& tag) : tag_(tag) {}

  ~Cluster() {
    for (auto& node : nodes_) {
      if (node->feed != nullptr) node->feed->Stop();
      node->server->Shutdown();
    }
    nodes_.clear();
    for (const std::string& dir : dirs_) std::filesystem::remove_all(dir);
  }

  Status AddPrimary() { return AddNode(/*replica_of=*/-1); }
  Status AddReplicaOf(size_t primary_index) {
    return AddNode(static_cast<int>(primary_index));
  }

  uint16_t port(size_t i) const { return nodes_[i]->server->port(); }
  Database* db(size_t i) { return nodes_[i]->db.get(); }
  ReplicaFeed* feed(size_t i) { return nodes_[i]->feed.get(); }

  /// Blocks until replica `i` has applied through `lsn` (with timeout).
  bool WaitForApply(size_t i, Lsn lsn) {
    return nodes_[i]->db->WaitForAppliedLsn(lsn,
                                            std::chrono::seconds(10));
  }

 private:
  struct Node {
    std::unique_ptr<Database> db;
    std::unique_ptr<ReplicaFeed> feed;
    std::unique_ptr<InsightServer> server;
  };

  Status AddNode(int replica_of) {
    const std::string dir =
        MakeTempDir(tag_ + "_n" + std::to_string(nodes_.size()));
    dirs_.push_back(dir);
    auto opened = Database::Open(dir, DurableOptions(dir));
    INSIGHT_RETURN_NOT_OK(opened.status());
    auto node = std::make_unique<Node>();
    node->db = std::move(*opened);
    if (replica_of >= 0) {
      node->feed = std::make_unique<ReplicaFeed>(
          node->db.get(), "127.0.0.1",
          port(static_cast<size_t>(replica_of)));
      INSIGHT_RETURN_NOT_OK(node->feed->Start());
    }
    InsightServer::Options options;
    options.port = 0;
    options.io_threads = 2;
    node->server =
        std::make_unique<InsightServer>(node->db.get(), options);
    if (node->feed != nullptr) {
      node->server->SetReplicaFeed(node->feed.get());
    }
    INSIGHT_RETURN_NOT_OK(node->server->Start());
    nodes_.push_back(std::move(node));
    return Status::OK();
  }

  const std::string tag_;
  std::vector<std::string> dirs_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

TEST(ReplicationE2ETest, ShipsAppliesAndServesReads) {
  Cluster cluster("ship");
  ASSERT_TRUE(cluster.AddPrimary().ok());
  ASSERT_TRUE(cluster.AddReplicaOf(0).ok());

  auto primary = InsightClient::Connect("127.0.0.1", cluster.port(0));
  ASSERT_TRUE(primary.ok());
  ASSERT_TRUE((*primary)->Execute("CREATE TABLE t (n INT)").ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        (*primary)
            ->Execute("INSERT INTO t VALUES (" + std::to_string(i) + ")")
            .ok());
  }
  const uint64_t commit_lsn = (*primary)->last_commit_lsn();
  ASSERT_GT(commit_lsn, 0u);
  ASSERT_TRUE(cluster.WaitForApply(1, commit_lsn));

  auto replica = InsightClient::Connect("127.0.0.1", cluster.port(1));
  ASSERT_TRUE(replica.ok());
  auto rows = (*replica)->Execute("SELECT n FROM t ORDER BY n");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->rows.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rows->rows[i].at(0).AsInt(), i);
  }

  // The replica rejects writes with the redirect code.
  auto write = (*replica)->Execute("INSERT INTO t VALUES (99)");
  ASSERT_FALSE(write.ok());
  EXPECT_EQ(write.status().code(), StatusCode::kReadOnly);
}

TEST(ReplicationE2ETest, WaitForLsnGivesReadYourWrites) {
  Cluster cluster("ryw");
  ASSERT_TRUE(cluster.AddPrimary().ok());
  ASSERT_TRUE(cluster.AddReplicaOf(0).ok());

  auto primary = InsightClient::Connect("127.0.0.1", cluster.port(0));
  auto replica = InsightClient::Connect("127.0.0.1", cluster.port(1));
  ASSERT_TRUE(primary.ok());
  ASSERT_TRUE(replica.ok());
  ASSERT_TRUE((*primary)->Execute("CREATE TABLE t (n INT)").ok());

  // Race the replica on purpose: every write is immediately chased by a
  // wait_lsn read on the replica, which must always see it.
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        (*primary)
            ->Execute("INSERT INTO t VALUES (" + std::to_string(i) + ")")
            .ok());
    auto rows = (*replica)->Execute("SELECT n FROM t ORDER BY n",
                                    (*primary)->last_commit_lsn());
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    ASSERT_EQ(static_cast<int>(rows->rows.size()), i + 1) << "iter " << i;
  }
}

TEST(ReplicationE2ETest, PromoteTurnsReplicaIntoWritablePrimary) {
  Cluster cluster("promote");
  ASSERT_TRUE(cluster.AddPrimary().ok());
  ASSERT_TRUE(cluster.AddReplicaOf(0).ok());

  auto primary = InsightClient::Connect("127.0.0.1", cluster.port(0));
  ASSERT_TRUE(primary.ok());
  ASSERT_TRUE((*primary)->Execute("CREATE TABLE t (n INT)").ok());
  ASSERT_TRUE((*primary)->Execute("INSERT INTO t VALUES (1)").ok());
  ASSERT_TRUE(
      cluster.WaitForApply(1, (*primary)->last_commit_lsn()));

  auto replica = InsightClient::Connect("127.0.0.1", cluster.port(1));
  ASSERT_TRUE(replica.ok());
  ASSERT_TRUE((*replica)->Promote().ok());
  // Promote is idempotent.
  ASSERT_TRUE((*replica)->Promote().ok());

  auto write = (*replica)->Execute("INSERT INTO t VALUES (2)");
  ASSERT_TRUE(write.ok()) << write.status().ToString();
  auto rows = (*replica)->Execute("SELECT n FROM t ORDER BY n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 2u);
}

TEST(ReplicationE2ETest, PromotedReplicaPlansWithWarmSketches) {
  // The online statistics sketches are rebuilt by the streaming replay,
  // so a promoted replica starts planning with warm stats instead of a
  // cold cache: its sketch answers must match the primary's, and the
  // sketch estimator tier must be live with no ANALYZE ever run.
  Cluster cluster("warmstats");
  ASSERT_TRUE(cluster.AddPrimary().ok());
  ASSERT_TRUE(cluster.AddReplicaOf(0).ok());

  Database* primary = cluster.db(0);
  ASSERT_TRUE(
      primary->Execute("CREATE TABLE Birds (id INT, family TEXT)").ok());
  ASSERT_TRUE(primary
                  ->DefineClassifier("C", {"Disease", "Other"},
                                     {{"diseaseword infection", "Disease"},
                                      {"otherword note", "Other"}})
                  .ok());
  ASSERT_TRUE(primary->Execute("ALTER TABLE Birds ADD INDEXABLE C").ok());
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(primary
                    ->Execute("INSERT INTO Birds VALUES (" +
                              std::to_string(i) + ", 'f" +
                              std::to_string(i % 5) + "')")
                    .ok());
  }
  for (int i = 1; i <= 150; i += 3) {
    ASSERT_TRUE(primary
                    ->Execute("ANNOTATE Birds TUPLE " + std::to_string(i) +
                              " WITH 'diseaseword infection'")
                    .ok());
  }
  ASSERT_TRUE(primary->WalSync().ok());
  ASSERT_TRUE(cluster.WaitForApply(1, primary->wal()->durable_lsn()));

  Database* replica = cluster.db(1);
  ASSERT_TRUE(replica->Promote().ok());

  TableSketches* want = primary->sketch_registry()->Find("Birds");
  TableSketches* got = replica->sketch_registry()->Find("Birds");
  ASSERT_NE(want, nullptr);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->rows(), want->rows());
  EXPECT_EQ(got->InstanceObjects("C"), want->InstanceObjects("C"));
  for (int f = 0; f < 5; ++f) {
    const Value family = Value::String("f" + std::to_string(f));
    EXPECT_EQ(got->ColumnFrequency("family", family),
              want->ColumnFrequency("family", family))
        << "f" << f;
  }
  EXPECT_EQ(got->LabelFrequency("C", "Disease", 1),
            want->LabelFrequency("C", "Disease", 1));
  ASSERT_GT(want->ColumnDistinct("id"), 0);
  EXPECT_LT(std::abs(got->ColumnDistinct("id") - want->ColumnDistinct("id")),
            0.05 * want->ColumnDistinct("id"));

  // Never analyzed, yet the sketch tier answers — warm from the stream.
  const RelationInfo* info = *replica->context()->Get("Birds");
  EXPECT_TRUE(info->SketchTierActive(SketchPolicy{true, 0.10}));
  EXPECT_EQ(info->Source(SketchPolicy{true, 0.10}), EstimateSource::kSketch);

  // And maintenance continues on the new primary.
  const int64_t before = got->rows();
  ASSERT_TRUE(
      replica->Execute("INSERT INTO Birds VALUES (999, 'f0')").ok());
  EXPECT_EQ(got->rows(), before + 1);
}

TEST(RoutedClientTest, WritesFindThePrimaryReadsSeeThem) {
  Cluster cluster("routed");
  ASSERT_TRUE(cluster.AddPrimary().ok());
  ASSERT_TRUE(cluster.AddReplicaOf(0).ok());
  ASSERT_TRUE(cluster.AddReplicaOf(0).ok());

  // Primary listed LAST: discovery must skip both replicas' read-only
  // redirects before landing on it.
  auto routed = RoutedClient::Make({{"127.0.0.1", cluster.port(1)},
                                    {"127.0.0.1", cluster.port(2)},
                                    {"127.0.0.1", cluster.port(0)}});
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ((*routed)->primary_index(), -1);

  ASSERT_TRUE((*routed)->Execute("CREATE TABLE t (n INT)").ok());
  EXPECT_EQ((*routed)->primary_index(), 2);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        (*routed)
            ->Execute("INSERT INTO t VALUES (" + std::to_string(i) + ")")
            .ok());
  }
  EXPECT_GT((*routed)->last_commit_lsn(), 0u);

  // Reads are served by replicas with wait_lsn, so each immediately
  // observes this client's writes.
  for (int i = 0; i < 10; ++i) {
    auto rows = (*routed)->Execute("SELECT n FROM t ORDER BY n");
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    ASSERT_EQ(rows->rows.size(), 20u);
  }
  // The replicas actually served reads (their statement counters moved).
  uint64_t replica_stmts = 0;
  for (size_t i = 1; i <= 2; ++i) {
    auto direct = InsightClient::Connect("127.0.0.1", cluster.port(i));
    ASSERT_TRUE(direct.ok());
    auto metrics = (*direct)->Metrics();
    ASSERT_TRUE(metrics.ok());
    replica_stmts += metrics->find("insight_net_requests_total") !=
                             std::string::npos
                         ? 1
                         : 0;
  }
  EXPECT_GT(replica_stmts, 0u);
}

TEST(RoutedClientTest, ReadFailsOverWhenAReplicaDrops) {
  auto cluster = std::make_unique<Cluster>("failover");
  ASSERT_TRUE(cluster->AddPrimary().ok());
  ASSERT_TRUE(cluster->AddReplicaOf(0).ok());

  auto routed = RoutedClient::Make(
      {{"127.0.0.1", cluster->port(0)}, {"127.0.0.1", cluster->port(1)}});
  ASSERT_TRUE(routed.ok());
  ASSERT_TRUE((*routed)->Execute("CREATE TABLE t (n INT)").ok());
  ASSERT_TRUE((*routed)->Execute("INSERT INTO t VALUES (7)").ok());

  // Prime the read path so the routed client holds a live replica
  // connection, then kill the replica out from under it.
  auto first = (*routed)->Execute("SELECT n FROM t");
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  cluster->feed(1)->Stop();
  cluster->db(1);  // Keep the db alive; only the server goes away.
  // Shut down the replica's server: the routed client's next read hits a
  // dead socket and must retry on the remaining endpoint (the primary).
  // (Destroying the whole cluster would kill the primary too, so reach
  // into the node directly via its port — a fresh cluster-side shutdown.)
  // The Cluster helper lacks per-node shutdown; emulate the drop by
  // asking the replica's server to drain via a direct client.
  {
    auto direct = InsightClient::Connect("127.0.0.1", cluster->port(1));
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE((*direct)->RequestShutdown().ok());
  }
  // Give the drain a moment to close the routed client's cached socket.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  auto rows = (*routed)->Execute("SELECT n FROM t");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0].at(0).AsInt(), 7);
}

// ---------- 5. Failover kill matrix ----------

/// Child body: serve `dir` as a primary with `crash_point` armed after a
/// grace period. The classifier + indexable column are created before
/// serving so Summary-BTree state replicates to the subscriber.
[[noreturn]] void RunCrashingPrimary(const std::string& dir,
                                     const std::string& port_file,
                                     const std::string& crash_point) {
  auto opened = Database::Open(dir, DurableOptions(dir));
  if (!opened.ok()) ::_Exit(3);
  auto db = std::move(*opened);
  if (!db->Execute("CREATE TABLE Birds (name TEXT)").ok()) ::_Exit(4);
  if (!db->DefineClassifier("C", {"Disease", "Other"},
                            {{"diseaseword infection", "Disease"},
                             {"otherword note", "Other"}})
           .ok()) {
    ::_Exit(4);
  }
  if (!db->Execute("ALTER TABLE Birds ADD INDEXABLE C").ok()) ::_Exit(4);
  if (!db->WalSync().ok()) ::_Exit(5);

  InsightServer::Options options;
  options.port = 0;
  options.io_threads = 2;
  options.port_file = port_file;
  InsightServer server(db.get(), options);
  if (!server.Start().ok()) ::_Exit(6);

  // Arm only after the workload has demonstrably landed (>= 5 rows
  // visible), so the crash always fires mid-stream — never while
  // shipping the bootstrap DDL before the parent's first ack, no matter
  // how slowly the parent gets scheduled under a loaded test host.
  const auto arm_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    auto rows = db->Execute("SELECT name FROM Birds");
    if (rows.ok() && rows->rows.size() >= 5) break;
    if (std::chrono::steady_clock::now() > arm_deadline) ::_Exit(8);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ArmCrashPoint(crash_point);

  server.WaitForShutdownRequest();  // The crash point fires first.
  ::_Exit(7);
}

uint16_t WaitForPortFile(const std::string& port_file) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    FILE* f = std::fopen(port_file.c_str(), "r");
    if (f != nullptr) {
      unsigned port = 0;
      const bool got = std::fscanf(f, "%u", &port) == 1;
      std::fclose(f);
      if (got && port != 0) return static_cast<uint16_t>(port);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return 0;
}

std::string WorkloadStatement(int i) {
  if (i % 5 == 4) {
    // Annotations on tuple 1 feed the Summary-BTree through the
    // classifier; pinning the tuple makes the applied count recoverable
    // with one ZOOM IN, which pins down the exact replicated prefix.
    return "ANNOTATE Birds TUPLE 1 WITH '" +
           std::string(i % 2 == 0 ? "diseaseword sick" : "otherword fine") +
           " " + std::to_string(i) + "'";
  }
  return "INSERT INTO Birds VALUES ('bird" + std::to_string(i) + "')";
}

/// Kills a forked primary at `crash_point` mid-stream, promotes the
/// surviving in-process replica, and checks its state is a serial
/// prefix of the acked statement sequence — rows and summary probes.
void RunFailoverKillMatrixCase(const std::string& crash_point) {
  SCOPED_TRACE(crash_point);
  const std::string pri_dir = MakeTempDir("kill_pri");
  const std::string rep_dir = MakeTempDir("kill_rep");
  const std::string port_file = pri_dir + ".port";
  std::remove(port_file.c_str());

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    RunCrashingPrimary(pri_dir, port_file, crash_point);
  }
  const uint16_t port = WaitForPortFile(port_file);
  ASSERT_NE(port, 0) << "primary child never published its port";

  // In-process replica subscribed to the doomed primary.
  auto opened = Database::Open(rep_dir, DurableOptions(rep_dir));
  ASSERT_TRUE(opened.ok());
  auto replica = std::move(*opened);
  ReplicaFeed feed(replica.get(), "127.0.0.1", port);
  ASSERT_TRUE(feed.Start().ok());

  // Wait until the replica has applied the bootstrap DDL before driving
  // the workload: the crash point arms only once workload rows land, so
  // this guarantees the crash interrupts statement shipping, not the
  // schema handshake the verification below depends on.
  const auto boot_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!replica->Execute("SELECT name FROM Birds").ok()) {
    ASSERT_TRUE(std::chrono::steady_clock::now() < boot_deadline)
        << "replica never applied the bootstrap DDL";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // Drive acknowledged statements until the crash point fires.
  auto connected = InsightClient::Connect("127.0.0.1", port);
  ASSERT_TRUE(connected.ok());
  auto client = std::move(*connected);
  int acked = 0;
  for (int i = 0; i < 100000; ++i) {
    if (!client->Execute(WorkloadStatement(i)).ok()) break;
    ++acked;
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), kCrashPointExitCode)
      << "child exited " << WEXITSTATUS(status) << ", not the crash code";
  ASSERT_GT(acked, 0) << "crash fired before any statement was acked";

  // Failover: promote the replica. Whatever it applied is a dense prefix
  // of the primary's committed statement sequence.
  ASSERT_TRUE(feed.Promote().ok());
  const Lsn promoted_at = replica->applied_lsn();

  // Recover the exact replicated prefix length: every workload statement
  // adds either one row or one annotation on tuple 1, so (rows,
  // annotations) uniquely determines how many statements applied.
  auto birds = replica->Execute("SELECT name FROM Birds");
  ASSERT_TRUE(birds.ok()) << birds.status().ToString();
  const size_t applied_rows = birds->rows.size();
  auto zoom = replica->Execute("ZOOM IN ON Birds TUPLE 1");
  ASSERT_TRUE(zoom.ok()) << zoom.status().ToString();
  const size_t applied_annotations = zoom->annotations.size();
  const size_t applied_statements = applied_rows + applied_annotations;
  // The replica holds a prefix: no more statements than the primary
  // committed (acked + at most one in-flight), possibly fewer.
  EXPECT_LE(applied_statements, static_cast<size_t>(acked) + 1);

  // Serial replay of exactly that prefix on an embedded database must
  // agree row-for-row and probe-for-probe.
  Database replay;
  ASSERT_TRUE(replay.Execute("CREATE TABLE Birds (name TEXT)").ok());
  ASSERT_TRUE(replay
                  .DefineClassifier("C", {"Disease", "Other"},
                                    {{"diseaseword infection", "Disease"},
                                     {"otherword note", "Other"}})
                  .ok());
  ASSERT_TRUE(replay.Execute("ALTER TABLE Birds ADD INDEXABLE C").ok());
  for (size_t i = 0; i < applied_statements; ++i) {
    const std::string sql = WorkloadStatement(static_cast<int>(i));
    ASSERT_TRUE(replay.Execute(sql).ok()) << sql;
  }

  const std::vector<std::string> probes = {
      "SELECT name FROM Birds ORDER BY name",
      "SELECT name FROM Birds WHERE "
      "$.getSummaryObject('C').getLabelValue('Disease') > 0 ORDER BY name",
  };
  for (const std::string& probe : probes) {
    auto live = replica->Execute(probe);
    auto want = replay.Execute(probe);
    ASSERT_TRUE(live.ok()) << probe << ": " << live.status().ToString();
    ASSERT_TRUE(want.ok()) << probe;
    ASSERT_EQ(live->rows.size(), want->rows.size()) << probe;
    for (size_t r = 0; r < want->rows.size(); ++r) {
      EXPECT_EQ(live->rows[r].at(0).ToString(),
                want->rows[r].at(0).ToString())
          << probe << " row " << r;
    }
  }

  // The promoted node accepts writes and its WAL keeps extending the
  // same dense sequence it applied.
  ASSERT_TRUE(replica->Execute("INSERT INTO Birds VALUES ('after')").ok());
  EXPECT_GT(replica->wal()->next_lsn(), promoted_at);

  // Restart-equivalence: reopening the promoted directory recovers the
  // identical row multiset.
  const size_t before_restart =
      replica->Execute("SELECT name FROM Birds")->rows.size();
  replica.reset();
  auto reopened = Database::Open(rep_dir, DurableOptions(rep_dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto survivor = std::move(*reopened);
  auto after = survivor->Execute("SELECT name FROM Birds");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->rows.size(), before_restart);

  survivor.reset();
  std::filesystem::remove_all(pri_dir);
  std::filesystem::remove_all(rep_dir);
  std::remove(port_file.c_str());
}

TEST(FailoverKillTest, KillAtReplBeforeShip) {
  RunFailoverKillMatrixCase("repl_before_ship");
}

TEST(FailoverKillTest, KillAtReplAfterShip) {
  RunFailoverKillMatrixCase("repl_after_ship");
}

TEST(FailoverKillTest, KillAtReplAfterAckRead) {
  RunFailoverKillMatrixCase("repl_after_ack_read");
}

}  // namespace
}  // namespace insight
