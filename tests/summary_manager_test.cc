#include <gtest/gtest.h>

#include "annotation/annotation_store.h"
#include "index/catalog.h"
#include "mining/naive_bayes.h"
#include "summary/summary_manager.h"

namespace insight {
namespace {

std::shared_ptr<NaiveBayesClassifier> SmallClassifier() {
  auto model = std::make_shared<NaiveBayesClassifier>(
      std::vector<std::string>{"Disease", "Behavior", "Other"});
  model->Train("infection sick disease virus ill", "Disease").ok();
  model->Train("parasite disease outbreak infection", "Disease").ok();
  model->Train("eating foraging migration behavior", "Behavior").ok();
  model->Train("nesting feeding behavior flight", "Behavior").ok();
  model->Train("note comment misc provenance", "Other").ok();
  return model;
}

class SummaryManagerTest : public ::testing::Test {
 protected:
  SummaryManagerTest()
      : storage_(StorageManager::Backend::kMemory),
        pool_(&storage_, 1024),
        catalog_(&storage_, &pool_) {
    table_ = *catalog_.CreateTable(
        "Birds", Schema({{"name", ValueType::kString},
                         {"family", ValueType::kString},
                         {"habitat", ValueType::kString}}));
    for (int i = 0; i < 10; ++i) {
      table_
          ->Insert(Tuple({Value::String("bird" + std::to_string(i)),
                          Value::String("fam"), Value::String("lake")}))
          .status();
    }
    store_ = *AnnotationStore::Create(&catalog_, "Birds", 3);
    mgr_ = *SummaryManager::Create(&catalog_, table_, store_.get());
    mgr_->LinkInstance(SummaryInstance::Classifier(
                           "ClassBird1",
                           {"Disease", "Behavior", "Other"},
                           SmallClassifier()))
        .ok();
    SnippetSummarizer::Options snip;
    snip.min_chars = 100;
    snip.max_snippet_chars = 60;
    mgr_->LinkInstance(SummaryInstance::Snippet("TextSummary1", snip)).ok();
    mgr_->LinkInstance(SummaryInstance::Cluster("SimCluster", 0.4)).ok();
  }

  StorageManager storage_;
  BufferPool pool_;
  Catalog catalog_;
  Table* table_;
  std::unique_ptr<AnnotationStore> store_;
  std::unique_ptr<SummaryManager> mgr_;
};

TEST_F(SummaryManagerTest, UnannotatedTupleHasEmptySet) {
  auto set = mgr_->GetSummaries(1);
  ASSERT_TRUE(set.ok());
  EXPECT_TRUE(set->empty());
}

TEST_F(SummaryManagerTest, AddAnnotationCreatesAllInstanceObjects) {
  ASSERT_TRUE(
      mgr_->AddAnnotation("bird had infection disease", {{1, CellMask(0)}})
          .ok());
  auto set = mgr_->GetSummaries(1);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->GetSize(), 3);
  const SummaryObject* cls = set->GetSummaryObject("ClassBird1");
  ASSERT_NE(cls, nullptr);
  EXPECT_EQ(*cls->GetLabelValue("Disease"), 1);
  EXPECT_EQ(*cls->GetLabelValue("Behavior"), 0);
  // Short annotation: no snippet.
  EXPECT_EQ(set->GetSummaryObject("TextSummary1")->GetSize(), 0);
  // One cluster group.
  EXPECT_EQ(set->GetSummaryObject("SimCluster")->GetSize(), 1);
}

TEST_F(SummaryManagerTest, CountsAccumulateAcrossAnnotations) {
  for (int i = 0; i < 5; ++i) {
    mgr_->AddAnnotation("sick with disease infection " + std::to_string(i),
                        {{2, CellMask(0)}})
        .status();
  }
  for (int i = 0; i < 3; ++i) {
    mgr_->AddAnnotation("eating behavior foraging " + std::to_string(i),
                        {{2, CellMask(1)}})
        .status();
  }
  auto set = mgr_->GetSummaries(2);
  const SummaryObject* cls = set->GetSummaryObject("ClassBird1");
  EXPECT_EQ(*cls->GetLabelValue("Disease"), 5);
  EXPECT_EQ(*cls->GetLabelValue("Behavior"), 3);
  EXPECT_EQ(cls->TotalAnnotations(), 8);
}

TEST_F(SummaryManagerTest, LongAnnotationGetsSnippet) {
  std::string longtext =
      "The observed swan was eating stonewort. It also showed signs of "
      "unusual behavior near the lake. Researchers collected many data "
      "points about this specimen over several weeks of careful watching.";
  ASSERT_GT(longtext.size(), 100u);
  mgr_->AddAnnotation(longtext, {{3, RowMask(3)}}).status();
  auto set = mgr_->GetSummaries(3);
  const SummaryObject* snip = set->GetSummaryObject("TextSummary1");
  ASSERT_EQ(snip->GetSize(), 1);
  EXPECT_LE(snip->GetSnippet(0)->size(), 60u);
}

TEST_F(SummaryManagerTest, SimilarAnnotationsClusterTogether) {
  mgr_->AddAnnotation("swan eating stonewort in the lake", {{4, 1}}).status();
  mgr_->AddAnnotation("swan eating stonewort in the river", {{4, 1}})
      .status();
  mgr_->AddAnnotation("completely different topic entirely unrelated",
                      {{4, 1}})
      .status();
  auto set = mgr_->GetSummaries(4);
  const SummaryObject* cluster = set->GetSummaryObject("SimCluster");
  ASSERT_EQ(cluster->GetSize(), 2);
  // One group of 2, one of 1.
  const int64_t s0 = *cluster->GetGroupSize(0);
  const int64_t s1 = *cluster->GetGroupSize(1);
  EXPECT_EQ(s0 + s1, 3);
  EXPECT_EQ(std::max(s0, s1), 2);
}

TEST_F(SummaryManagerTest, MultiTupleAnnotationUpdatesAllTargets) {
  mgr_->AddAnnotation("disease spanning tuples",
                      {{5, CellMask(0)}, {6, CellMask(1)}})
      .status();
  EXPECT_EQ(*mgr_->GetSummaries(5)->GetSummaryObject("ClassBird1")
                 ->GetLabelValue("Disease"),
            1);
  EXPECT_EQ(*mgr_->GetSummaries(6)->GetSummaryObject("ClassBird1")
                 ->GetLabelValue("Disease"),
            1);
}

TEST_F(SummaryManagerTest, RemoveAnnotationRollsBackEffects) {
  AnnId keep = *mgr_->AddAnnotation("disease one", {{7, 1}});
  AnnId drop = *mgr_->AddAnnotation("disease two", {{7, 1}});
  (void)keep;
  ASSERT_TRUE(mgr_->RemoveAnnotation(drop).ok());
  auto set = mgr_->GetSummaries(7);
  EXPECT_EQ(*set->GetSummaryObject("ClassBird1")->GetLabelValue("Disease"),
            1);
  // Raw annotation gone too.
  EXPECT_TRUE(store_->GetText(drop).status().IsNotFound());
}

TEST_F(SummaryManagerTest, ClusterRepReElectedOnRemoval) {
  AnnId first = *mgr_->AddAnnotation("swan eating stonewort lake", {{8, 1}});
  mgr_->AddAnnotation("swan eating stonewort river", {{8, 1}}).status();
  auto before = mgr_->GetSummaries(8);
  ASSERT_EQ(before->GetSummaryObject("SimCluster")->reps[0].source_ann,
            first);
  ASSERT_TRUE(mgr_->RemoveAnnotation(first).ok());
  auto after = mgr_->GetSummaries(8);
  const SummaryObject* cluster = after->GetSummaryObject("SimCluster");
  ASSERT_EQ(cluster->GetSize(), 1);
  EXPECT_NE(cluster->reps[0].source_ann, first);
  EXPECT_EQ(cluster->reps[0].text, "swan eating stonewort river");
}

TEST_F(SummaryManagerTest, ListenersSeeBeforeAndAfter) {
  const SummaryInstance* cls = *mgr_->FindInstance("ClassBird1");
  int events = 0;
  int64_t last_before = -1;
  int64_t last_after = -1;
  mgr_->AddListener(
      cls->id(),
      [&](Oid oid, const SummaryObject* before, const SummaryObject* after)
          -> Status {
        EXPECT_EQ(oid, 9u);
        ++events;
        last_before = before == nullptr ? -1 : *before->GetLabelValue(0);
        last_after = after == nullptr ? -1 : *after->GetLabelValue(0);
        return Status::OK();
      });
  mgr_->AddAnnotation("disease infection sick", {{9, 1}}).status();
  EXPECT_EQ(events, 1);
  EXPECT_EQ(last_before, -1);  // Object created.
  EXPECT_EQ(last_after, 1);
  mgr_->AddAnnotation("more disease infection", {{9, 1}}).status();
  EXPECT_EQ(events, 2);
  EXPECT_EQ(last_before, 1);
  EXPECT_EQ(last_after, 2);
  ASSERT_TRUE(mgr_->OnTupleDeleted(9).ok());
  EXPECT_EQ(events, 3);
  EXPECT_EQ(last_after, -1);  // Object destroyed.
}

TEST_F(SummaryManagerTest, OnTupleDeletedDropsStorageRow) {
  mgr_->AddAnnotation("disease", {{10, 1}}).status();
  ASSERT_TRUE(mgr_->OnTupleDeleted(10).ok());
  EXPECT_TRUE(mgr_->GetSummaries(10)->empty());
  // Idempotent for never-annotated tuples.
  EXPECT_TRUE(mgr_->OnTupleDeleted(10).ok());
}

TEST_F(SummaryManagerTest, ForEachSummaryRowVisitsAllAnnotatedTuples) {
  mgr_->AddAnnotation("a", {{1, 1}}).status();
  mgr_->AddAnnotation("b", {{3, 1}}).status();
  mgr_->AddAnnotation("c", {{3, 1}}).status();
  int rows = 0;
  ASSERT_TRUE(mgr_->ForEachSummaryRow([&](Oid oid, const SummarySet& set) {
                   EXPECT_TRUE(oid == 1 || oid == 3);
                   EXPECT_EQ(set.GetSize(), 3);
                   ++rows;
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(rows, 2);
}

TEST_F(SummaryManagerTest, LinkRejectsDuplicateName) {
  EXPECT_EQ(mgr_->LinkInstance(SummaryInstance::Cluster("simcluster")).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(SummaryManagerTest, UnlinkStripsObjectsAndNotifies) {
  mgr_->AddAnnotation("disease", {{1, 1}}).status();
  const SummaryInstance* cls = *mgr_->FindInstance("ClassBird1");
  int removals = 0;
  mgr_->AddListener(cls->id(),
                    [&](Oid, const SummaryObject* before,
                        const SummaryObject* after) -> Status {
                      if (before != nullptr && after == nullptr) ++removals;
                      return Status::OK();
                    });
  ASSERT_TRUE(mgr_->UnlinkInstance("ClassBird1").ok());
  EXPECT_EQ(removals, 1);
  auto set = mgr_->GetSummaries(1);
  EXPECT_EQ(set->GetSummaryObject("ClassBird1"), nullptr);
  EXPECT_EQ(set->GetSize(), 2);
  EXPECT_TRUE(mgr_->FindInstance("ClassBird1").status().IsNotFound());
}

TEST_F(SummaryManagerTest, ObjectInvariantsHoldAfterRandomOps) {
  // Mixed adds/removes across tuples; every stored object stays valid.
  std::vector<AnnId> live;
  const char* texts[] = {
      "disease infection sick bird",
      "eating behavior foraging dawn",
      "anatomy wing beak measurements unrelated words",
      "random comment about the dataset provenance",
  };
  for (int i = 0; i < 60; ++i) {
    if (i % 5 == 4 && !live.empty()) {
      AnnId victim = live[static_cast<size_t>(i) % live.size()];
      ASSERT_TRUE(mgr_->RemoveAnnotation(victim).ok());
      live.erase(std::find(live.begin(), live.end(), victim));
    } else {
      Oid oid = static_cast<Oid>(1 + (i % 10));
      live.push_back(*mgr_->AddAnnotation(texts[i % 4], {{oid, 1}}));
    }
  }
  ASSERT_TRUE(mgr_->ForEachSummaryRow([&](Oid, const SummarySet& set) {
                   for (const SummaryObject& obj : set.objects()) {
                     INSIGHT_RETURN_NOT_OK(obj.CheckInvariants());
                   }
                   return Status::OK();
                 })
                  .ok());
}

}  // namespace
}  // namespace insight
