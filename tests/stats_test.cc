// Online statistics subsystem tests, bottom-up:
//  1. Sketch math: HyperLogLog error bounds across scales, Count-Min
//     over/underestimate guarantees, merge algebra (associative and
//     commutative by exact register/cell equality), serialization.
//  2. DML-maintained TableSketches: inserts, deletes, MVCC rollback
//     compensation, per-label summary sketches, the staleness clock.
//  3. Optimizer tiering: stale histograms are overridden by fresh sketch
//     answers, EXPLAIN ANALYZE attributes the estimate source.
//  4. Durability: WAL-tail replay and checkpoint-image restore rebuild
//     the sketches a from-scratch load of the same data would produce.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/serde.h"
#include "obs/metrics.h"
#include "sql/database.h"
#include "stats/sketch.h"
#include "stats/sketch_registry.h"

namespace insight {
namespace {

double RelErr(double est, double truth) {
  return std::abs(est - truth) / truth;
}

/// Deterministic pseudo-distinct hash stream: key i of stream `seed`.
uint64_t StreamHash(uint64_t seed, uint64_t i) {
  return SketchMix64(seed * 0x9e3779b97f4a7c15ULL + i);
}

void FillHll(HyperLogLog* hll, uint64_t seed, uint64_t n) {
  for (uint64_t i = 0; i < n; ++i) hll->AddHash(StreamHash(seed, i));
}

// ---------- 1. Sketch math ----------

TEST(HyperLogLogTest, ErrorBoundsAcrossScales) {
  // 4096 registers give ~1.6% standard error; the inputs are
  // deterministic, so 5% of slack keeps this stable, not flaky.
  for (uint64_t n : {uint64_t{1000}, uint64_t{100000}, uint64_t{1000000}}) {
    HyperLogLog hll;
    FillHll(&hll, /*seed=*/n, n);
    EXPECT_LT(RelErr(hll.Estimate(), static_cast<double>(n)), 0.05)
        << "n=" << n << " est=" << hll.Estimate();
  }
}

TEST(HyperLogLogTest, DuplicatesDoNotInflateTheEstimate) {
  HyperLogLog once;
  FillHll(&once, 7, 5000);
  HyperLogLog thrice;
  for (int round = 0; round < 3; ++round) FillHll(&thrice, 7, 5000);
  EXPECT_TRUE(once.SameRegisters(thrice));
}

TEST(HyperLogLogTest, MergeIsAssociativeAndCommutative) {
  // (A + B) + C, A + (B + C), and (C + A) + B must agree register-for-
  // register, and all must equal the sketch of the concatenated stream.
  const uint64_t kPer = 20000;
  HyperLogLog left;   // (A + B) + C
  HyperLogLog right;  // A + (B + C)
  HyperLogLog mixed;  // (C + A) + B
  {
    HyperLogLog a, b, c;
    FillHll(&a, 1, kPer);
    FillHll(&b, 2, kPer);
    FillHll(&c, 3, kPer);
    left.Merge(a);
    left.Merge(b);
    left.Merge(c);
    HyperLogLog bc;
    bc.Merge(b);
    bc.Merge(c);
    right.Merge(a);
    right.Merge(bc);
    mixed.Merge(c);
    mixed.Merge(a);
    mixed.Merge(b);
  }
  HyperLogLog all;
  FillHll(&all, 1, kPer);
  FillHll(&all, 2, kPer);
  FillHll(&all, 3, kPer);
  EXPECT_TRUE(left.SameRegisters(right));
  EXPECT_TRUE(left.SameRegisters(mixed));
  EXPECT_TRUE(left.SameRegisters(all));
  EXPECT_LT(RelErr(left.Estimate(), 3.0 * kPer), 0.05);
}

TEST(CountMinTest, NeverUnderestimatesAndOverestimateIsBounded) {
  CountMinSketch cms;
  const uint64_t kKeys = 2000;
  int64_t total = 0;
  for (uint64_t k = 0; k < kKeys; ++k) {
    const int64_t freq = static_cast<int64_t>(k % 13) + 1;
    cms.AddHash(StreamHash(11, k), freq);
    total += freq;
  }
  EXPECT_EQ(cms.total(), total);
  for (uint64_t k = 0; k < kKeys; ++k) {
    const int64_t truth = static_cast<int64_t>(k % 13) + 1;
    const int64_t est = cms.EstimateHash(StreamHash(11, k));
    EXPECT_GE(est, truth) << "k=" << k;
    // Classic bound: overestimate <= eps * N with eps ~ 2/width; allow
    // 1% of N, far above the expected collision mass.
    EXPECT_LE(est, truth + total / 100) << "k=" << k;
  }
}

TEST(CountMinTest, DeletesRestoreTheExactPriorState) {
  CountMinSketch cms;
  CountMinSketch reference;
  for (uint64_t k = 0; k < 500; ++k) {
    cms.AddHash(StreamHash(5, k), 3);
    reference.AddHash(StreamHash(5, k), 3);
  }
  // A txn-abort style compensation: add then subtract the same deltas.
  for (uint64_t k = 0; k < 200; ++k) cms.AddHash(StreamHash(6, k), 7);
  for (uint64_t k = 0; k < 200; ++k) cms.AddHash(StreamHash(6, k), -7);
  EXPECT_TRUE(cms.SameCells(reference));
  EXPECT_EQ(cms.total(), reference.total());
}

TEST(CountMinTest, MergeIsAssociativeAndCommutative) {
  auto fill = [](CountMinSketch* cms, uint64_t seed, uint64_t n) {
    for (uint64_t i = 0; i < n; ++i) {
      cms->AddHash(StreamHash(seed, i), static_cast<int64_t>(i % 5) + 1);
    }
  };
  CountMinSketch left, right, all;
  {
    CountMinSketch a, b, c;
    fill(&a, 1, 300);
    fill(&b, 2, 300);
    fill(&c, 3, 300);
    left.Merge(a);
    left.Merge(b);
    left.Merge(c);
    CountMinSketch cb;
    cb.Merge(c);
    cb.Merge(b);
    right.Merge(cb);
    right.Merge(a);
  }
  fill(&all, 1, 300);
  fill(&all, 2, 300);
  fill(&all, 3, 300);
  EXPECT_TRUE(left.SameCells(right));
  EXPECT_TRUE(left.SameCells(all));
}

TEST(SketchSerdeTest, HyperLogLogRoundTrip) {
  HyperLogLog hll;
  FillHll(&hll, 9, 50000);
  std::string blob;
  hll.Serialize(&blob);
  HyperLogLog restored;
  SerdeReader reader(blob);
  ASSERT_TRUE(restored.Deserialize(&reader).ok());
  EXPECT_TRUE(restored.SameRegisters(hll));
  EXPECT_DOUBLE_EQ(restored.Estimate(), hll.Estimate());
}

TEST(SketchSerdeTest, CountMinRoundTrip) {
  CountMinSketch cms;
  for (uint64_t k = 0; k < 1000; ++k) {
    cms.AddHash(StreamHash(4, k), static_cast<int64_t>(k % 7));
  }
  std::string blob;
  cms.Serialize(&blob);
  CountMinSketch restored;
  SerdeReader reader(blob);
  ASSERT_TRUE(restored.Deserialize(&reader).ok());
  EXPECT_TRUE(restored.SameCells(cms));
  EXPECT_EQ(restored.total(), cms.total());
}

TEST(SketchSerdeTest, CorruptHeadersAreRejected) {
  HyperLogLog hll;
  std::string blob;
  hll.Serialize(&blob);
  blob[0] = static_cast<char>(blob[0] + 1);  // Wrong precision.
  HyperLogLog restored;
  SerdeReader reader(blob);
  EXPECT_FALSE(restored.Deserialize(&reader).ok());

  CountMinSketch cms;
  std::string cms_blob;
  cms.Serialize(&cms_blob);
  cms_blob[0] = static_cast<char>(cms_blob[0] + 1);  // Wrong width.
  CountMinSketch cms_restored;
  SerdeReader cms_reader(cms_blob);
  EXPECT_FALSE(cms_restored.Deserialize(&cms_reader).ok());

  // Truncation underflows the reader.
  std::string truncated;
  hll.Serialize(&truncated);
  truncated.resize(truncated.size() / 2);
  SerdeReader short_reader(truncated);
  EXPECT_FALSE(restored.Deserialize(&short_reader).ok());
}

// ---------- 2. DML-maintained TableSketches ----------

class StatsDmlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        db_.Execute("CREATE TABLE Birds (id INT, family TEXT)").ok());
    ASSERT_TRUE(db_.DefineClassifier("C", {"Disease", "Other"},
                                     {{"diseaseword infection", "Disease"},
                                      {"otherword note", "Other"}})
                    .ok());
    ASSERT_TRUE(db_.Execute("ALTER TABLE Birds ADD INDEXABLE C").ok());
    sketches_ = db_.sketch_registry()->Find("Birds");
    ASSERT_NE(sketches_, nullptr);
  }

  Status InsertBird(int64_t id, const std::string& family) {
    return db_
        .Insert("Birds", Tuple({Value::Int(id), Value::String(family)}))
        .status();
  }

  Database db_;
  TableSketches* sketches_ = nullptr;
};

TEST_F(StatsDmlTest, RowAndFrequencyCountsFollowDml) {
  for (int i = 0; i < 100; ++i) {
    // Skewed family column: f0 gets 60, f1..f4 get 10 each.
    ASSERT_TRUE(
        InsertBird(i, i < 60 ? "f0" : "f" + std::to_string(i % 4 + 1))
            .ok());
  }
  EXPECT_EQ(sketches_->rows(), 100);
  EXPECT_TRUE(sketches_->HasData());
  EXPECT_GE(sketches_->ColumnFrequency("family", Value::String("f0")), 60);
  EXPECT_LE(sketches_->ColumnFrequency("family", Value::String("f0")), 70);
  // Unknown column: sentinel, not a guess.
  EXPECT_LT(sketches_->ColumnFrequency("nosuch", Value::Int(1)), 0);

  // Deletes subtract the same per-row deltas.
  for (Oid oid = 1; oid <= 10; ++oid) {
    ASSERT_TRUE(db_.DeleteTuple("Birds", oid).ok());
  }
  EXPECT_EQ(sketches_->rows(), 90);
  EXPECT_GE(sketches_->ColumnFrequency("family", Value::String("f0")), 50);
  EXPECT_LE(sketches_->ColumnFrequency("family", Value::String("f0")), 60);

  // ndistinct of id ~ 100 (HLL is exact at this scale's low end).
  EXPECT_LT(RelErr(sketches_->ColumnDistinct("id"), 100.0), 0.05);
}

TEST_F(StatsDmlTest, LabelSketchesTrackAnnotations) {
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(InsertBird(i, "f" + std::to_string(i % 3)).ok());
  }
  for (Oid oid = 1; oid <= 8; ++oid) {
    ASSERT_TRUE(db_.Execute("ANNOTATE Birds TUPLE " + std::to_string(oid) +
                            " WITH 'diseaseword infection seen'")
                    .ok());
  }
  EXPECT_EQ(sketches_->InstanceObjects("C"), 8);
  // Every annotated tuple has Disease count 1.
  EXPECT_GE(sketches_->LabelFrequency("C", "Disease", 1), 8);
  EXPECT_LT(sketches_->LabelFrequency("C", "nosuch", 1), 0);
  EXPECT_GE(sketches_->LabelDistinct("C", "Disease"), 1.0);

  // A second annotation on one tuple bumps its count to 2: the old
  // (count=1) observation is retracted, the new one added.
  ASSERT_TRUE(
      db_.Execute("ANNOTATE Birds TUPLE 1 WITH 'diseaseword again'").ok());
  EXPECT_EQ(sketches_->InstanceObjects("C"), 8);
  EXPECT_GE(sketches_->LabelFrequency("C", "Disease", 2), 1);
  EXPECT_LE(sketches_->LabelFrequency("C", "Disease", 1), 7 + 1);
}

TEST_F(StatsDmlTest, RollbackLeavesEveryCountUntouched) {
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(InsertBird(i, "f" + std::to_string(i % 3)).ok());
  }
  ASSERT_TRUE(
      db_.Execute("ANNOTATE Birds TUPLE 2 WITH 'diseaseword base'").ok());
  const int64_t rows_before = sketches_->rows();
  const int64_t f0_before =
      sketches_->ColumnFrequency("family", Value::String("f0"));
  const int64_t objects_before = sketches_->InstanceObjects("C");
  const int64_t disease1_before = sketches_->LabelFrequency("C", "Disease", 1);

  uint64_t txn = 0;
  ASSERT_TRUE(db_.Execute("BEGIN", &txn).ok());
  for (int i = 100; i < 120; ++i) {
    ASSERT_TRUE(db_.Execute("INSERT INTO Birds VALUES (" +
                                std::to_string(i) + ", 'f0')",
                            &txn)
                    .ok());
  }
  ASSERT_TRUE(
      db_.Execute("ANNOTATE Birds TUPLE 3 WITH 'diseaseword doomed'", &txn)
          .ok());
  // The transaction's own writes are visible to estimation mid-flight...
  EXPECT_EQ(sketches_->rows(), rows_before + 20);
  ASSERT_TRUE(db_.Execute("ROLLBACK", &txn).ok());

  // ...and fully compensated on abort.
  EXPECT_EQ(sketches_->rows(), rows_before);
  EXPECT_EQ(sketches_->ColumnFrequency("family", Value::String("f0")),
            f0_before);
  EXPECT_EQ(sketches_->InstanceObjects("C"), objects_before);
  EXPECT_EQ(sketches_->LabelFrequency("C", "Disease", 1), disease1_before);
}

TEST_F(StatsDmlTest, CommitAppliesTheDeferredDistinctInserts) {
  uint64_t txn = 0;
  ASSERT_TRUE(db_.Execute("BEGIN", &txn).ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db_.Execute("INSERT INTO Birds VALUES (" +
                                std::to_string(i) + ", 'f0')",
                            &txn)
                    .ok());
  }
  // HLL inserts are deferred to commit (they cannot be undone).
  EXPECT_LT(sketches_->ColumnDistinct("id"), 5.0);
  ASSERT_TRUE(db_.Execute("COMMIT", &txn).ok());
  EXPECT_LT(RelErr(sketches_->ColumnDistinct("id"), 50.0), 0.05);
}

TEST_F(StatsDmlTest, StalenessClockFollowsAnalyzeAndChurn) {
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(InsertBird(i, "f0").ok());
  // Never analyzed: always stale.
  EXPECT_TRUE(sketches_->StaleSince(0.1));
  ASSERT_TRUE(db_.Analyze("Birds").ok());
  EXPECT_FALSE(sketches_->StaleSince(0.1));
  EXPECT_EQ(sketches_->analyzed_rows(), 100u);
  // 5 more ops: 5% churn, under the 10% threshold.
  for (int i = 100; i < 105; ++i) ASSERT_TRUE(InsertBird(i, "f0").ok());
  EXPECT_FALSE(sketches_->StaleSince(0.1));
  EXPECT_TRUE(sketches_->StaleSince(0.01));
  // 20 more: past 10%.
  for (int i = 105; i < 125; ++i) ASSERT_TRUE(InsertBird(i, "f0").ok());
  EXPECT_TRUE(sketches_->StaleSince(0.1));
  // Re-ANALYZE resets the clock.
  ASSERT_TRUE(db_.Analyze("Birds").ok());
  EXPECT_FALSE(sketches_->StaleSince(0.1));
  EXPECT_EQ(sketches_->analyzed_rows(), 125u);
}

TEST_F(StatsDmlTest, DisabledGateFreezesTheSketches) {
  ASSERT_TRUE(InsertBird(0, "f0").ok());
  EXPECT_EQ(sketches_->rows(), 1);
  SetStatsEnabled(false);
  const Status inserted = InsertBird(1, "f0");
  SetStatsEnabled(true);
  ASSERT_TRUE(inserted.ok());
  // The write went through; the sketches never saw it.
  EXPECT_EQ(sketches_->rows(), 1);
}

TEST_F(StatsDmlTest, EngineCountersFollowSketchWork) {
  EngineMetrics& m = EngineMetrics::Get();
  const uint64_t updates_before = m.stats_sketch_updates->value();
  ASSERT_TRUE(InsertBird(1, "Anatidae").ok());
  ASSERT_TRUE(InsertBird(2, "Corvidae").ok());
  EXPECT_GE(m.stats_sketch_updates->value(), updates_before + 2);

  // An estimated plan attributes itself to exactly one statistics tier.
  const uint64_t est_before =
      m.stats_sketch_estimates->value() + m.stats_histogram_estimates->value();
  ASSERT_TRUE(
      db_.ExplainAnalyze("SELECT * FROM Birds WHERE family = 'Anatidae'")
          .ok());
  EXPECT_GT(
      m.stats_sketch_estimates->value() + m.stats_histogram_estimates->value(),
      est_before);

  // The disabled gate freezes the update counter along with the sketches.
  SetStatsEnabled(false);
  const uint64_t frozen = m.stats_sketch_updates->value();
  const Status inserted = InsertBird(3, "Laridae");
  SetStatsEnabled(true);
  ASSERT_TRUE(inserted.ok());
  EXPECT_EQ(m.stats_sketch_updates->value(), frozen);
}

TEST_F(StatsDmlTest, RegistrySerializeRestoreRoundTrip) {
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(InsertBird(i, "f" + std::to_string(i % 4)).ok());
  }
  for (Oid oid = 1; oid <= 5; ++oid) {
    ASSERT_TRUE(db_.Execute("ANNOTATE Birds TUPLE " + std::to_string(oid) +
                            " WITH 'diseaseword x'")
                    .ok());
  }
  const std::string image = db_.sketch_registry()->Serialize();

  Database other;
  ASSERT_TRUE(
      other.Execute("CREATE TABLE Birds (id INT, family TEXT)").ok());
  TableSketches* restored = other.sketch_registry()->Find("Birds");
  ASSERT_NE(restored, nullptr);
  ASSERT_TRUE(other.sketch_registry()->Restore(image).ok());
  EXPECT_EQ(restored->rows(), sketches_->rows());
  EXPECT_EQ(restored->ColumnFrequency("family", Value::String("f0")),
            sketches_->ColumnFrequency("family", Value::String("f0")));
  EXPECT_DOUBLE_EQ(restored->ColumnDistinct("id"),
                   sketches_->ColumnDistinct("id"));
  EXPECT_EQ(restored->InstanceObjects("C"), sketches_->InstanceObjects("C"));
  EXPECT_EQ(restored->LabelFrequency("C", "Disease", 1),
            sketches_->LabelFrequency("C", "Disease", 1));

  // A truncated image is corruption, not a partial restore.
  EXPECT_FALSE(other.sketch_registry()
                   ->Restore(std::string_view(image).substr(
                       0, image.size() / 2))
                   .ok());
}

// ---------- 3. Optimizer tiering ----------

TEST_F(StatsDmlTest, SketchTierOverridesStaleHistograms) {
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(InsertBird(i, "f0").ok());
  ASSERT_TRUE(db_.Analyze("Birds").ok());
  const RelationInfo* info = *db_.context()->Get("Birds");
  const SketchPolicy on{true, 0.10};
  const SketchPolicy off{false, 0.10};

  // Fresh histograms: both policies answer from them.
  EXPECT_EQ(info->Source(on), EstimateSource::kHistogram);
  EXPECT_DOUBLE_EQ(info->EstimatedRows(on), 100.0);

  // 5x growth behind the histograms' back.
  for (int i = 100; i < 500; ++i) ASSERT_TRUE(InsertBird(i, "f1").ok());
  EXPECT_EQ(info->Source(on), EstimateSource::kSketch);
  EXPECT_DOUBLE_EQ(info->EstimatedRows(on), 500.0);
  // The histogram tier still reports the stale snapshot.
  EXPECT_EQ(info->Source(off), EstimateSource::kHistogram);
  EXPECT_DOUBLE_EQ(info->EstimatedRows(off), 100.0);

  // Selectivity of family='f0': truth is 100/500. The stale histogram
  // says 1.0 (all analyzed rows were f0); the sketch tier is within a
  // few percent of truth.
  const double sel_on =
      info->ColumnSelectivity(on, "family", CompareOp::kEq,
                              Value::String("f0"), 1.0 / 3);
  const double sel_off =
      info->ColumnSelectivity(off, "family", CompareOp::kEq,
                              Value::String("f0"), 1.0 / 3);
  EXPECT_LT(RelErr(sel_on, 0.2), 0.10);
  EXPECT_GT(sel_off, 0.9);
}

TEST_F(StatsDmlTest, NeverAnalyzedTableStillGetsSketchAnswers) {
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(InsertBird(i, i < 180 ? "f0" : "f1").ok());
  }
  const RelationInfo* info = *db_.context()->Get("Birds");
  const SketchPolicy on{true, 0.10};
  ASSERT_FALSE(info->stats.has_value());
  EXPECT_TRUE(info->SketchTierActive(on));
  EXPECT_EQ(info->Source(on), EstimateSource::kSketch);
  const double sel = info->ColumnSelectivity(
      on, "family", CompareOp::kEq, Value::String("f0"), 1.0 / 3);
  EXPECT_LT(RelErr(sel, 0.9), 0.10);
}

TEST_F(StatsDmlTest, ExplainAnalyzeAttributesTheEstimateSource) {
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(InsertBird(i, "f0").ok());
  ASSERT_TRUE(db_.Analyze("Birds").ok());
  auto fresh = db_.ExplainAnalyze("SELECT id FROM Birds WHERE id < 50");
  ASSERT_TRUE(fresh.ok());
  EXPECT_NE(fresh->find("src=histogram"), std::string::npos) << *fresh;

  for (int i = 100; i < 500; ++i) ASSERT_TRUE(InsertBird(i, "f1").ok());
  auto stale = db_.ExplainAnalyze("SELECT id FROM Birds WHERE id < 50");
  ASSERT_TRUE(stale.ok());
  EXPECT_NE(stale->find("src=sketch"), std::string::npos) << *stale;
}

// ---------- 4. Durability ----------

std::string MakeTempDir(const std::string& tag) {
  static std::atomic<int> counter{0};
  std::string dir = ::testing::TempDir() + "/insight_stats_" + tag + "_" +
                    std::to_string(::getpid()) + "_" +
                    std::to_string(counter.fetch_add(1));
  std::filesystem::remove_all(dir);
  return dir;
}

/// Loads the canonical annotated workload into `db`: `rows` birds over 5
/// families, every third tuple annotated with a disease keyword.
void LoadWorkload(Database* db, int rows) {
  for (int i = 0; i < rows; ++i) {
    ASSERT_TRUE(db->Execute("INSERT INTO Birds VALUES (" +
                            std::to_string(i) + ", 'f" +
                            std::to_string(i % 5) + "')")
                    .ok());
  }
  for (int i = 1; i <= rows; i += 3) {
    ASSERT_TRUE(db->Execute("ANNOTATE Birds TUPLE " + std::to_string(i) +
                            " WITH 'diseaseword infection'")
                    .ok());
  }
}

Status SetUpWorkloadSchema(Database* db) {
  INSIGHT_RETURN_NOT_OK(
      db->Execute("CREATE TABLE Birds (id INT, family TEXT)").status());
  INSIGHT_RETURN_NOT_OK(
      db->DefineClassifier("C", {"Disease", "Other"},
                           {{"diseaseword infection", "Disease"},
                            {"otherword note", "Other"}}));
  return db->Execute("ALTER TABLE Birds ADD INDEXABLE C").status();
}

/// Asserts `got` answers like `want` — exact on counters (both saw the
/// same logical op stream), within HLL error on distinct estimates.
void ExpectSketchesMatch(TableSketches* got, TableSketches* want,
                         const std::string& context) {
  EXPECT_EQ(got->rows(), want->rows()) << context;
  EXPECT_EQ(got->InstanceObjects("C"), want->InstanceObjects("C"))
      << context;
  for (int f = 0; f < 5; ++f) {
    const std::string family = "f" + std::to_string(f);
    EXPECT_EQ(got->ColumnFrequency("family", Value::String(family)),
              want->ColumnFrequency("family", Value::String(family)))
        << context << " family=" << family;
  }
  EXPECT_EQ(got->LabelFrequency("C", "Disease", 1),
            want->LabelFrequency("C", "Disease", 1))
      << context;
  ASSERT_GT(want->ColumnDistinct("id"), 0) << context;
  EXPECT_LT(RelErr(got->ColumnDistinct("id"), want->ColumnDistinct("id")),
            0.05)
      << context;
}

TEST(StatsDurabilityTest, WalTailReplayRebuildsTheSketches) {
  const std::string dir = MakeTempDir("tail");
  {
    auto db = Database::Open(dir).ValueOrDie();
    ASSERT_TRUE(SetUpWorkloadSchema(db.get()).ok());
    LoadWorkload(db.get(), 120);
    for (Oid oid = 2; oid <= 20; oid += 2) {
      ASSERT_TRUE(db->DeleteTuple("Birds", oid).ok());
    }
  }
  auto recovered = Database::Open(dir).ValueOrDie();
  TableSketches* got = recovered->sketch_registry()->Find("Birds");
  ASSERT_NE(got, nullptr);

  // From-scratch reference fed the same logical history.
  Database reference;
  ASSERT_TRUE(SetUpWorkloadSchema(&reference).ok());
  LoadWorkload(&reference, 120);
  for (Oid oid = 2; oid <= 20; oid += 2) {
    ASSERT_TRUE(reference.DeleteTuple("Birds", oid).ok());
  }
  ExpectSketchesMatch(got, reference.sketch_registry()->Find("Birds"),
                      "tail replay");
}

TEST(StatsDurabilityTest, CheckpointImagePlusTailRebuildsTheSketches) {
  const std::string dir = MakeTempDir("ckpt");
  {
    auto db = Database::Open(dir).ValueOrDie();
    ASSERT_TRUE(SetUpWorkloadSchema(db.get()).ok());
    LoadWorkload(db.get(), 80);
    // The checkpoint snapshot carries the kStatsSketch image...
    ASSERT_TRUE(db->Checkpoint().ok());
    // ...and the tail past it replays through the DML hooks.
    for (int i = 200; i < 240; ++i) {
      ASSERT_TRUE(db->Execute("INSERT INTO Birds VALUES (" +
                              std::to_string(i) + ", 'f0')")
                      .ok());
    }
  }
  auto recovered = Database::Open(dir).ValueOrDie();
  TableSketches* got = recovered->sketch_registry()->Find("Birds");
  ASSERT_NE(got, nullptr);

  Database reference;
  ASSERT_TRUE(SetUpWorkloadSchema(&reference).ok());
  LoadWorkload(&reference, 80);
  for (int i = 200; i < 240; ++i) {
    ASSERT_TRUE(reference.Execute("INSERT INTO Birds VALUES (" +
                                  std::to_string(i) + ", 'f0')")
                    .ok());
  }
  ExpectSketchesMatch(got, reference.sketch_registry()->Find("Birds"),
                      "checkpoint + tail");
  // Recovered databases plan with warm stats: the sketch tier is live
  // without any ANALYZE.
  const RelationInfo* info = *recovered->context()->Get("Birds");
  EXPECT_TRUE(info->SketchTierActive(SketchPolicy{true, 0.10}));
}

}  // namespace
}  // namespace insight
