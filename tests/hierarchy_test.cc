// Multi-level (hierarchical) summarization — the paper's future-work
// item, realized as slash-separated classifier leaf labels. Inner labels
// resolve by summing their subtree; leaf labels stay indexable via the
// Summary-BTree.

#include <gtest/gtest.h>

#include "engine_test_util.h"
#include "sql/database.h"

namespace insight {
namespace {

SummaryObject TwoLevelObject() {
  SummaryObject obj;
  obj.type = SummaryType::kClassifier;
  obj.instance_name = "H";
  obj.reps = {{"Disease/Viral", 3, 0},
              {"Disease/Parasitic", 2, 0},
              {"Behavior/Feeding", 4, 0},
              {"Other", 1, 0}};
  obj.elements = {std::vector<ElementRef>(3, {1, 1}),
                  std::vector<ElementRef>(2, {2, 1}),
                  std::vector<ElementRef>(4, {3, 1}),
                  std::vector<ElementRef>(1, {4, 1})};
  // Distinct annotation ids per element for invariant cleanliness.
  AnnId next = 1;
  for (auto& elems : obj.elements) {
    for (auto& e : elems) e.ann_id = next++;
  }
  return obj;
}

TEST(HierarchyTest, LeafLookupIsExact) {
  SummaryObject obj = TwoLevelObject();
  EXPECT_EQ(*obj.GetLabelValue("Disease/Viral"), 3);
  EXPECT_EQ(*obj.GetLabelValue("disease/parasitic"), 2);
}

TEST(HierarchyTest, InnerLabelSumsSubtree) {
  SummaryObject obj = TwoLevelObject();
  EXPECT_EQ(*obj.GetLabelValue("Disease"), 5);    // 3 + 2.
  EXPECT_EQ(*obj.GetLabelValue("Behavior"), 4);
  EXPECT_EQ(*obj.GetLabelValue("Other"), 1);      // Plain leaf.
  EXPECT_TRUE(obj.GetLabelValue("Habitat").status().IsNotFound());
}

TEST(HierarchyTest, EndToEndThroughSqlAndIndex) {
  Database db;
  db.Execute("CREATE TABLE Cases (tag TEXT)").ValueOrDie();
  db.DefineClassifier(
        "H", {"Disease/Viral", "Disease/Parasitic", "Other"},
        {{"virus influenza viral infection", "Disease/Viral"},
         {"parasite tick worm infestation", "Disease/Parasitic"},
         {"note comment", "Other"}})
      .ok();
  db.Execute("ALTER TABLE Cases ADD INDEXABLE H").ValueOrDie();
  for (int i = 0; i < 6; ++i) {
    db.Execute("INSERT INTO Cases VALUES ('case" + std::to_string(i) + "')")
        .ValueOrDie();
  }
  db.Execute("ANNOTATE Cases TUPLE 1 WITH 'virus viral infection'")
      .ValueOrDie();
  db.Execute("ANNOTATE Cases TUPLE 1 WITH 'parasite worm found'")
      .ValueOrDie();
  db.Execute("ANNOTATE Cases TUPLE 2 WITH 'viral influenza'").ValueOrDie();

  // Inner-label query (evaluated by the S operator; the index covers
  // leaves, not subtree sums).
  auto result = db.Execute(
      "SELECT tag FROM Cases WHERE "
      "$.getSummaryObject('H').getLabelValue('Disease') >= 2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0].at(0).AsString(), "case0");

  // Leaf-label query goes through the Summary-BTree.
  db.Execute("ANALYZE Cases").ValueOrDie();
  auto plan = db.Explain(
      "SELECT tag FROM Cases WHERE "
      "$.getSummaryObject('H').getLabelValue('Disease/Viral') = 1");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("SummaryIndexScan"), std::string::npos) << *plan;
  auto leaf = db.Execute(
      "SELECT tag FROM Cases WHERE "
      "$.getSummaryObject('H').getLabelValue('Disease/Viral') = 1");
  ASSERT_TRUE(leaf.ok()) << leaf.status().ToString();
  EXPECT_EQ(leaf->rows.size(), 2u);
}

TEST(HierarchyTest, SubtreeSumsSurviveMergeAndProjection) {
  TestDb db(4);
  // Replace the fixture classifier with a hierarchical one on a second
  // manager-level instance.
  auto model = std::make_shared<NaiveBayesClassifier>(
      std::vector<std::string>{"D/V", "D/P", "O"});
  model->Train("viralword viralword", "D/V").ok();
  model->Train("parasiteword parasiteword", "D/P").ok();
  model->Train("otherword", "O").ok();
  db.mgr->LinkInstance(
            SummaryInstance::Classifier("H2", {"D/V", "D/P", "O"}, model))
      .ok();
  db.mgr->AddAnnotation("viralword case", {{1, CellMask(0)}}).ValueOrDie();
  db.mgr->AddAnnotation("parasiteword case", {{1, CellMask(1)}})
      .ValueOrDie();

  SummarySet set = db.mgr->GetSummaries(1).ValueOrDie();
  EXPECT_EQ(*set.GetSummaryObject("H2")->GetLabelValue("D"), 2);

  // Projecting away column 1 drops the parasite annotation's effect.
  auto projected =
      ProjectSummaries(set, {0}, NullResolver()).ValueOrDie();
  EXPECT_EQ(*projected.GetSummaryObject("H2")->GetLabelValue("D"), 1);
}

}  // namespace
}  // namespace insight
