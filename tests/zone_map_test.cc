// Zone-map data skipping: store-level bound/refutation semantics, the
// widen-only MVCC discipline (rollbacks and deletes may only loosen, the
// checkpoint-time maintenance pass tightens), scan-level skip
// correctness against unpruned results, label-probe pruning including
// hierarchical inner labels, and rebuild-through-recovery.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "engine_test_util.h"
#include "obs/metrics.h"
#include "sql/database.h"
#include "storage/zone_map.h"

namespace insight {
namespace {

ZoneProbe ColumnProbe(size_t column, ZoneOp op, Value constant) {
  ZoneProbe probe;
  probe.kind = ZoneProbe::Kind::kColumn;
  probe.column = column;
  probe.op = op;
  probe.constant = std::move(constant);
  return probe;
}

ZoneProbe LabelProbe(std::string key, ZoneOp op, int64_t constant) {
  ZoneProbe probe;
  probe.kind = ZoneProbe::Kind::kLabel;
  probe.label_key = std::move(key);
  probe.op = op;
  probe.constant = Value::Int(constant);
  return probe;
}

ZonePredicate Pred(ZoneProbe probe) {
  ZonePredicate pred;
  pred.probes.push_back(std::move(probe));
  return pred;
}

// ---------- ZoneMapStore ----------

TEST(ZoneMapStoreTest, RangeRefutationPerOperator) {
  ZoneMapStore store(1);
  for (int i = 0; i <= 9; ++i) {
    store.WidenTuple(0, Tuple({Value::Int(i)}));  // Page 0 holds 0..9.
  }
  EXPECT_TRUE(store.CanSkip(0, Pred(ColumnProbe(0, ZoneOp::kEq,
                                                Value::Int(100)))));
  EXPECT_FALSE(store.CanSkip(0, Pred(ColumnProbe(0, ZoneOp::kEq,
                                                 Value::Int(5)))));
  EXPECT_TRUE(store.CanSkip(0, Pred(ColumnProbe(0, ZoneOp::kGe,
                                                Value::Int(10)))));
  EXPECT_FALSE(store.CanSkip(0, Pred(ColumnProbe(0, ZoneOp::kGe,
                                                 Value::Int(9)))));
  EXPECT_TRUE(store.CanSkip(0, Pred(ColumnProbe(0, ZoneOp::kGt,
                                                Value::Int(9)))));
  EXPECT_TRUE(store.CanSkip(0, Pred(ColumnProbe(0, ZoneOp::kLt,
                                                Value::Int(0)))));
  EXPECT_FALSE(store.CanSkip(0, Pred(ColumnProbe(0, ZoneOp::kLe,
                                                 Value::Int(0)))));
  // Untracked pages are never skipped, whatever the probe.
  EXPECT_FALSE(store.CanSkip(7, Pred(ColumnProbe(0, ZoneOp::kEq,
                                                 Value::Int(100)))));
}

TEST(ZoneMapStoreTest, AllNullColumnIsRefutable) {
  ZoneMapStore store(2);
  store.WidenTuple(0, Tuple({Value::Int(1), Value::Null()}));
  // Column 1 has no non-NULL value: any comparison on it is NULL for
  // every row, so the page cannot contribute.
  EXPECT_TRUE(store.CanSkip(0, Pred(ColumnProbe(1, ZoneOp::kEq,
                                                Value::Int(0)))));
  EXPECT_FALSE(store.CanSkip(0, Pred(ColumnProbe(0, ZoneOp::kEq,
                                                 Value::Int(1)))));
}

TEST(ZoneMapStoreTest, StaleBoundsStayUsableUntilRebuilt) {
  ZoneMapStore store(1);
  store.WidenTuple(3, Tuple({Value::Int(50)}));
  store.MarkStale(3);
  // Stale means "possibly loose", never "possibly wrong": the old bounds
  // still refute safely.
  EXPECT_TRUE(store.CanSkip(3, Pred(ColumnProbe(0, ZoneOp::kGt,
                                                Value::Int(50)))));
  EXPECT_EQ(store.StalePages(), std::vector<PageId>{3});
  PageZone rebuilt;
  rebuilt.columns.resize(1);
  rebuilt.Widen(Tuple({Value::Int(50)}));
  store.ReplacePage(3, std::move(rebuilt));
  EXPECT_TRUE(store.StalePages().empty());
  // Marking an untracked page is a no-op.
  store.MarkStale(99);
  EXPECT_TRUE(store.StalePages().empty());
}

TEST(ZoneMapStoreTest, RebuiltEmptyPageSkipsEverything) {
  ZoneMapStore store(1);
  store.WidenTuple(0, Tuple({Value::Int(1)}));
  PageZone empty;  // All versions GC'd: any_rows stays false.
  store.ReplacePage(0, std::move(empty));
  EXPECT_TRUE(store.CanSkip(0, Pred(ColumnProbe(0, ZoneOp::kGe,
                                                Value::Int(-1000)))));
  EXPECT_TRUE(store.CanSkip(0, Pred(LabelProbe("c.disease", ZoneOp::kGe,
                                               0))));
}

TEST(ZoneMapStoreTest, LabelBoundsAndMissingLabels) {
  ZoneMapStore store(1);
  store.WidenTuple(0, Tuple({Value::Int(1)}));
  store.WidenLabels(0, {{"classbird1.disease", 2},
                        {"classbird1.disease", 5}});
  EXPECT_FALSE(store.CanSkip(0, Pred(LabelProbe("classbird1.disease",
                                                ZoneOp::kGe, 3))));
  EXPECT_TRUE(store.CanSkip(0, Pred(LabelProbe("classbird1.disease",
                                               ZoneOp::kGt, 5))));
  // A tracked page with no entry for the label carries no such
  // annotation on any row: skippable.
  EXPECT_TRUE(store.CanSkip(0, Pred(LabelProbe("classbird1.behavior",
                                               ZoneOp::kGe, 1))));
}

TEST(ZoneMapStoreTest, SkipFractionTracksRefutablePages) {
  ZoneMapStore store(1);
  for (PageId p = 0; p < 10; ++p) {
    store.WidenTuple(p, Tuple({Value::Int(static_cast<int64_t>(p) * 10)}));
    store.WidenTuple(p,
                     Tuple({Value::Int(static_cast<int64_t>(p) * 10 + 9)}));
  }
  // id >= 80 keeps pages 8 and 9 of 10.
  const double frac = store.EstimateSkipFraction(
      Pred(ColumnProbe(0, ZoneOp::kGe, Value::Int(80))), 10);
  EXPECT_NEAR(frac, 0.8, 1e-9);
  EXPECT_DOUBLE_EQ(store.EstimateSkipFraction(ZonePredicate{}, 10), 0.0);
}

// ---------- Table-level pruning ----------

class TableZoneTest : public ::testing::Test {
 protected:
  static constexpr int kRows = 4000;

  TableZoneTest()
      : storage(StorageManager::Backend::kMemory),
        pool(&storage, 4096),
        catalog(&storage, &pool) {
    table = *catalog.CreateTable("Events",
                                 Schema({{"id", ValueType::kInt64},
                                         {"grp", ValueType::kInt64}}));
    for (int i = 0; i < kRows; ++i) {
      EXPECT_TRUE(
          table->Insert(Tuple({Value::Int(i), Value::Int(i % 13)})).ok());
    }
  }

  std::vector<int64_t> RunScan(bool prune, int64_t bound,
                               uint64_t* pages_skipped) {
    auto scan = std::make_unique<SeqScanOp>(table, nullptr, false);
    SeqScanOp* raw = scan.get();
    if (prune) {
      raw->SetZonePredicate(
          Pred(ColumnProbe(0, ZoneOp::kGe, Value::Int(bound))));
    }
    SelectOp select(std::move(scan),
                    Cmp(Col("id"), CompareOp::kGe, Lit(Value::Int(bound))));
    auto rows = CollectRows(&select);
    EXPECT_TRUE(rows.ok());
    std::vector<int64_t> ids;
    for (const Row& row : *rows) ids.push_back(row.data.at(0).AsInt());
    std::sort(ids.begin(), ids.end());
    if (pages_skipped != nullptr) *pages_skipped = raw->pages_skipped();
    return ids;
  }

  StorageManager storage;
  BufferPool pool;
  Catalog catalog;
  Table* table;
};

TEST_F(TableZoneTest, PrunedScanMatchesUnprunedAndSkipsPages) {
  ASSERT_GT(table->heap_pages(), 4u);
  uint64_t skipped = 0;
  const auto unpruned = RunScan(false, kRows - 50, nullptr);
  const auto pruned = RunScan(true, kRows - 50, &skipped);
  EXPECT_EQ(pruned, unpruned);
  EXPECT_EQ(pruned.size(), 50u);
  EXPECT_GT(skipped, 0u);
  EXPECT_LT(skipped, table->heap_pages());
}

TEST_F(TableZoneTest, AnalyzeAnnotationReportsPagesSkipped) {
  auto scan = std::make_unique<SeqScanOp>(table, nullptr, false);
  scan->SetZonePredicate(
      Pred(ColumnProbe(0, ZoneOp::kGe, Value::Int(kRows - 10))));
  ASSERT_TRUE(scan->Open().ok());
  Row row;
  while (scan->Next(&row).ValueOrDie()) {
  }
  scan->Close();
  EXPECT_NE(scan->AnalyzeAnnotation().find("pages_skipped="),
            std::string::npos);
  EXPECT_GT(scan->pages_skipped(), 0u);
}

TEST_F(TableZoneTest, MaintenanceTightensAfterDeletes) {
  // Deleting the tail only loosens (stale marks); maintenance re-derives
  // from the stored versions. Results stay exact throughout.
  for (Oid oid = kRows - 499; oid <= kRows; ++oid) {
    ASSERT_TRUE(table->Delete(oid).ok());
  }
  uint64_t skipped = 0;
  EXPECT_TRUE(RunScan(true, kRows - 100, &skipped).empty());
  ASSERT_TRUE(table->MaintainZoneMaps().ok());
  EXPECT_TRUE(RunScan(true, kRows - 100, &skipped).empty());
  const auto live = RunScan(true, kRows - 600, nullptr);
  ASSERT_EQ(live.size(), 100u);  // Ids kRows-600 .. kRows-501 survive.
  EXPECT_EQ(live.front(), kRows - 600);
  EXPECT_EQ(live.back(), kRows - 501);
}

// ---------- MVCC hazards through the SQL surface ----------

TEST(ZoneMvccTest, RolledBackInsertNeverFalseSkips) {
  Database db;
  ASSERT_TRUE(db.CreateTable("Events",
                             Schema({{"id", ValueType::kInt64}}))
                  .ok());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(db.Insert("Events", Tuple({Value::Int(i)})).ok());
  }
  uint64_t txn = 0;
  ASSERT_TRUE(db.Execute("BEGIN", &txn).ok());
  ASSERT_TRUE(db.Execute("INSERT INTO Events VALUES (100000)", &txn).ok());
  ASSERT_TRUE(db.Execute("ROLLBACK", &txn).ok());

  // The rolled-back row widened some page's bounds (widen-only: legal,
  // just loose) — it must never surface, pruned or not.
  auto ghost = db.Execute("SELECT id FROM Events WHERE id >= 99999");
  ASSERT_TRUE(ghost.ok()) << ghost.status().ToString();
  EXPECT_TRUE(ghost->rows.empty());

  // Maintenance tightens; live rows stay visible, the ghost stays gone.
  ASSERT_TRUE(db.MaintainZoneMaps().ok());
  ghost = db.Execute("SELECT id FROM Events WHERE id >= 99999");
  ASSERT_TRUE(ghost.ok());
  EXPECT_TRUE(ghost->rows.empty());
  auto live = db.Execute("SELECT id FROM Events WHERE id >= 1995");
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(live->rows.size(), 5u);
}

TEST(ZoneMvccTest, DeleteThenMaintainKeepsScansExact) {
  Database db;
  ASSERT_TRUE(db.CreateTable("Events",
                             Schema({{"id", ValueType::kInt64}}))
                  .ok());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(db.Insert("Events", Tuple({Value::Int(i)})).ok());
  }
  for (Oid oid = 501; oid <= 1000; ++oid) {  // Ids 500..999.
    ASSERT_TRUE(db.DeleteTuple("Events", oid).ok());
  }
  auto tail = db.Execute("SELECT id FROM Events WHERE id >= 500");
  ASSERT_TRUE(tail.ok());
  EXPECT_TRUE(tail->rows.empty());
  ASSERT_TRUE(db.MaintainZoneMaps().ok());
  tail = db.Execute("SELECT id FROM Events WHERE id >= 500");
  ASSERT_TRUE(tail.ok());
  EXPECT_TRUE(tail->rows.empty());
  auto head = db.Execute("SELECT id FROM Events WHERE id < 500");
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(head->rows.size(), 500u);
}

// ---------- Label-probe pruning through the optimizer ----------

class LabelZoneTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable("Birds",
                                Schema({{"id", ValueType::kInt64},
                                        {"name", ValueType::kString}}))
                    .ok());
    for (int i = 0; i < 2000; ++i) {
      ASSERT_TRUE(db_.Insert("Birds",
                             Tuple({Value::Int(i),
                                    Value::String("bird" +
                                                  std::to_string(i))}))
                      .ok());
    }
    ASSERT_TRUE(db_.DefineClassifier("ClassViral",
                                     {"Disease/Viral", "Disease/Bacterial",
                                      "Other"},
                                     {{"viralword flu", "Disease/Viral"},
                                      {"bacterialword strep",
                                       "Disease/Bacterial"},
                                      {"otherword misc", "Other"}})
                    .ok());
    // Not indexable: the optimizer has no summary index to prefer, so
    // the label predicate rides the (zone-pruned) sequential scan.
    ASSERT_TRUE(db_.LinkInstance("Birds", "ClassViral", false).ok());
    for (Oid oid = 1; oid <= 5; ++oid) {
      ASSERT_TRUE(db_.Annotate("Birds", "viralword case note",
                               {{oid, CellMask(1)}})
                      .ok());
    }
  }

  Database db_;
};

TEST_F(LabelZoneTest, LeafLabelPredicateSkipsUnannotatedPages) {
  const uint64_t before = EngineMetrics::Get().scan_pages_skipped->value();
  auto result = db_.Execute(
      "SELECT id FROM Birds WHERE "
      "$.getSummaryObject('ClassViral').getLabelValue('Disease/Viral') "
      ">= 1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 5u);
  EXPECT_GT(EngineMetrics::Get().scan_pages_skipped->value(), before);
}

TEST_F(LabelZoneTest, InnerHierarchicalLabelNeverFalseSkips) {
  // 'Disease' resolves by subtree sum over Disease/Viral +
  // Disease/Bacterial; the zone maps carry inner-prefix sums too, so
  // pruning must keep exactly the annotated rows.
  auto result = db_.Execute(
      "SELECT id FROM Birds WHERE "
      "$.getSummaryObject('ClassViral').getLabelValue('Disease') >= 1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 5u);
}

TEST_F(LabelZoneTest, ExplainAnalyzeReportsPagesSkipped) {
  auto plan = db_.ExplainAnalyze("SELECT id FROM Birds WHERE id >= 1990");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("pages_skipped="), std::string::npos) << *plan;
}

// ---------- Rebuild through recovery ----------

TEST(ZoneRecoveryTest, ReplayRepopulatesZoneMaps) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "zone_recovery_test")
          .string();
  std::filesystem::remove_all(dir);
  Database::Options options;
  options.backend = StorageManager::Backend::kFile;
  options.directory = dir;
  {
    auto db = Database::Open(dir, options).ValueOrDie();
    ASSERT_TRUE(db->CreateTable("Events",
                                Schema({{"id", ValueType::kInt64}}))
                    .ok());
    for (int i = 0; i < 2000; ++i) {
      ASSERT_TRUE(db->Insert("Events", Tuple({Value::Int(i)})).ok());
    }
    ASSERT_TRUE(db->WalSync().ok());
  }
  auto db = Database::Open(dir, options).ValueOrDie();
  // Zone maps are derived state: replay rebuilt them through the normal
  // insert path, so the selective scan both prunes and stays exact.
  const uint64_t before = EngineMetrics::Get().scan_pages_skipped->value();
  auto result = db->Execute("SELECT id FROM Events WHERE id >= 1990");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 10u);
  EXPECT_GT(EngineMetrics::Get().scan_pages_skipped->value(), before);
  auto all = db->Execute("SELECT id FROM Events");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->rows.size(), 2000u);
  db.reset();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace insight
