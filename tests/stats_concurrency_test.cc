// Thread-safety of the online sketches, written for tsan: concurrent
// writers against one TableSketches must (a) race-free under the
// sanitizer and (b) produce byte-identical state to a serial replay of
// the same operations — CAS-max registers and atomic cell adds are
// commutative, so interleaving must not matter.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "stats/sketch.h"
#include "stats/sketch_registry.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "types/value.h"

namespace insight {
namespace {

constexpr int kThreads = 8;
constexpr int kPerThread = 2000;

Schema TwoColSchema() {
  return Schema(
      {{"id", ValueType::kInt64}, {"family", ValueType::kString}});
}

Tuple RowFor(int64_t i) {
  return Tuple(
      {Value::Int(i), Value::String("f" + std::to_string(i % 7))});
}

TEST(StatsConcurrencyTest, ConcurrentInsertsMatchSerialReplay) {
  TableSketches concurrent("t", TwoColSchema());
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&concurrent, t] {
      for (int i = 0; i < kPerThread; ++i) {
        concurrent.OnInsert(RowFor(int64_t{t} * kPerThread + i));
      }
    });
  }
  for (auto& w : workers) w.join();

  TableSketches serial("t", TwoColSchema());
  for (int64_t i = 0; i < int64_t{kThreads} * kPerThread; ++i) {
    serial.OnInsert(RowFor(i));
  }

  std::string concurrent_blob;
  concurrent.Serialize(&concurrent_blob);
  std::string serial_blob;
  serial.Serialize(&serial_blob);
  EXPECT_EQ(concurrent_blob, serial_blob);
  EXPECT_EQ(concurrent.rows(), serial.rows());
}

TEST(StatsConcurrencyTest, MixedInsertDeleteThreadsMatchSerialReplay) {
  // Each thread inserts its own range then deletes the first half of it,
  // so the delete always undoes a completed insert (strict turnstile).
  TableSketches concurrent("t", TwoColSchema());
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&concurrent, t] {
      const int64_t base = int64_t{t} * kPerThread;
      for (int i = 0; i < kPerThread; ++i) {
        concurrent.OnInsert(RowFor(base + i));
      }
      for (int i = 0; i < kPerThread / 2; ++i) {
        concurrent.OnDelete(RowFor(base + i));
      }
    });
  }
  for (auto& w : workers) w.join();

  TableSketches serial("t", TwoColSchema());
  for (int t = 0; t < kThreads; ++t) {
    const int64_t base = int64_t{t} * kPerThread;
    for (int i = 0; i < kPerThread; ++i) serial.OnInsert(RowFor(base + i));
    for (int i = 0; i < kPerThread / 2; ++i) {
      serial.OnDelete(RowFor(base + i));
    }
  }

  std::string concurrent_blob;
  concurrent.Serialize(&concurrent_blob);
  std::string serial_blob;
  serial.Serialize(&serial_blob);
  EXPECT_EQ(concurrent_blob, serial_blob);
}

TEST(StatsConcurrencyTest, ReadersRaceWritersWithoutTearing) {
  // Estimation reads run lock-free against the atomic cells; tsan proves
  // absence of data races, the assertions prove basic monotone sanity.
  TableSketches sketches("t", TwoColSchema());
  std::atomic<bool> done{false};
  std::thread writer([&sketches, &done] {
    for (int i = 0; i < kThreads * kPerThread; ++i) {
      sketches.OnInsert(RowFor(i));
    }
    done.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&sketches, &done] {
      int64_t last_rows = 0;
      while (!done.load(std::memory_order_acquire)) {
        const int64_t rows = sketches.rows();
        EXPECT_GE(rows, last_rows);  // Insert-only stream: monotone.
        last_rows = rows;
        EXPECT_GE(sketches.ColumnDistinct("id"), 0.0);
        EXPECT_GE(
            sketches.ColumnFrequency("family", Value::String("f0")), 0);
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(sketches.rows(), int64_t{kThreads} * kPerThread);
}

TEST(StatsConcurrencyTest, ConcurrentMergesIntoOneAccumulator) {
  // Merge is itself CAS-max / atomic-add, so N threads merging partial
  // sketches into one accumulator equal the single merged stream.
  std::vector<std::unique_ptr<HyperLogLog>> parts;
  for (int t = 0; t < kThreads; ++t) {
    auto part = std::make_unique<HyperLogLog>();
    for (int i = 0; i < kPerThread; ++i) {
      part->AddHash(SketchMix64(uint64_t{0xabc} + t * kPerThread + i));
    }
    parts.push_back(std::move(part));
  }
  HyperLogLog merged;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&merged, &parts, t] { merged.Merge(*parts[t]); });
  }
  for (auto& w : workers) w.join();

  HyperLogLog all;
  for (int i = 0; i < kThreads * kPerThread; ++i) {
    all.AddHash(SketchMix64(uint64_t{0xabc} + i));
  }
  EXPECT_TRUE(merged.SameRegisters(all));
}

}  // namespace
}  // namespace insight
