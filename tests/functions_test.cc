// Coverage for the Section 3.1 positional manipulation functions at the
// expression/SQL level, representative-scoped zoom-in, and negative
// legality cases of the Section 5.1 rewrite rules.

#include <gtest/gtest.h>

#include "engine_test_util.h"
#include "optimizer/optimizer.h"
#include "sql/database.h"

namespace insight {
namespace {

class FunctionsDbTest : public ::testing::Test {
 protected:
  FunctionsDbTest() {
    db.Execute("CREATE TABLE Specimens (tag TEXT)").ValueOrDie();
    db.DefineClassifier("C", {"Disease", "Behavior", "Other"},
                        {{"diseaseword sick infection", "Disease"},
                         {"behaviorword eating foraging", "Behavior"},
                         {"otherword note", "Other"}})
        .ok();
    db.DefineCluster("Clu", 0.4).ok();
    SnippetSummarizer::Options snip;
    snip.min_chars = 60;
    snip.max_snippet_chars = 200;
    db.DefineSnippet("Snip", snip).ok();
    db.Execute("ALTER TABLE Specimens ADD C").ValueOrDie();
    db.Execute("ALTER TABLE Specimens ADD Clu").ValueOrDie();
    db.Execute("ALTER TABLE Specimens ADD Snip").ValueOrDie();
    db.Execute("INSERT INTO Specimens VALUES ('A'), ('B')").ValueOrDie();

    db.Execute("ANNOTATE Specimens TUPLE 1 WITH 'diseaseword sick case'")
        .ValueOrDie();
    db.Execute("ANNOTATE Specimens TUPLE 1 WITH 'diseaseword infection'")
        .ValueOrDie();
    db.Execute("ANNOTATE Specimens TUPLE 1 WITH 'behaviorword foraging'")
        .ValueOrDie();
    db.Execute(
          "ANNOTATE Specimens TUPLE 1 WITH 'A very long snippet-worthy "
          "annotation mentioning ospreys and their remarkable habits.'")
        .ValueOrDie();
  }

  Database db;
};

TEST_F(FunctionsDbTest, PositionalClassifierFunctions) {
  // Label order is the instance-definition order.
  auto result = db.Execute(
      "SELECT $.getSummaryObject('C').getLabelName(0) AS l0, "
      "$.getSummaryObject('C').getLabelValue(0) AS v0, "
      "$.getSummaryObject('C').getLabelValue(1) AS v1 "
      "FROM Specimens WHERE tag = 'A'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0].at(0).AsString(), "Disease");
  EXPECT_EQ(result->rows[0].at(1).AsInt(), 2);
  EXPECT_EQ(result->rows[0].at(2).AsInt(), 1);
}

TEST_F(FunctionsDbTest, ClusterAndSnippetPositionalFunctions) {
  auto result = db.Execute(
      "SELECT $.getSummaryObject('Clu').getGroupSize(0) AS g0, "
      "$.getSummaryObject('Clu').getRepresentative(0) AS r0, "
      "$.getSummaryObject('Snip').getSnippet(0) AS s0 "
      "FROM Specimens WHERE tag = 'A'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_GE(result->rows[0].at(0).AsInt(), 1);
  EXPECT_FALSE(result->rows[0].at(1).AsString().empty());
  EXPECT_NE(result->rows[0].at(2).AsString().find("ospreys"),
            std::string::npos);
}

TEST_F(FunctionsDbTest, OutOfRangePositionsYieldNull) {
  auto result = db.Execute(
      "SELECT $.getSummaryObject('Clu').getGroupSize(99) AS g, "
      "$.getSummaryObject('Snip').getSnippet(99) AS s "
      "FROM Specimens WHERE tag = 'A'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->rows[0].at(0).is_null());
  EXPECT_TRUE(result->rows[0].at(1).is_null());
  // Un-annotated tuple: object missing -> NULL too.
  auto b = db.Execute(
      "SELECT $.getSummaryObject('Clu').getGroupSize(0) AS g "
      "FROM Specimens WHERE tag = 'B'");
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->rows[0].at(0).is_null());
}

TEST_F(FunctionsDbTest, GroupSizePredicateInWhere) {
  auto result = db.Execute(
      "SELECT tag FROM Specimens WHERE "
      "$.getSummaryObject('Clu').getGroupSize(0) >= 1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 1u);
}

TEST_F(FunctionsDbTest, ZoomInScopedToLabel) {
  auto all = db.Execute("ZOOM IN ON Specimens TUPLE 1 INSTANCE 'C'");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->annotations.size(), 4u);

  auto disease = db.Execute(
      "ZOOM IN ON Specimens TUPLE 1 INSTANCE 'C' LABEL 'Disease'");
  ASSERT_TRUE(disease.ok()) << disease.status().ToString();
  ASSERT_EQ(disease->annotations.size(), 2u);
  for (const Annotation& ann : disease->annotations) {
    EXPECT_NE(ann.text.find("diseaseword"), std::string::npos);
  }

  auto behavior = db.Execute(
      "ZOOM IN ON Specimens TUPLE 1 INSTANCE 'C' LABEL 'Behavior'");
  ASSERT_TRUE(behavior.ok());
  EXPECT_EQ(behavior->annotations.size(), 1u);
}

TEST_F(FunctionsDbTest, ZoomInScopedToRepIndex) {
  // Cluster group 0's members only.
  auto group0 = db.Execute(
      "ZOOM IN ON Specimens TUPLE 1 INSTANCE 'Clu' REP 0");
  ASSERT_TRUE(group0.ok()) << group0.status().ToString();
  EXPECT_GE(group0->annotations.size(), 1u);
  EXPECT_LT(group0->annotations.size(), 4u);
}

// ---------- Negative legality of the rewrite rules ----------

class RuleLegalityTest : public ::testing::Test {
 protected:
  RuleLegalityTest() : left_db(10) {
    // A second relation sharing ClassBird1: predicates on it must NOT
    // push below a join between the two (Rule 2's proviso).
    shared = *left_db.catalog.CreateTable(
        "Shared", Schema({{"sname", ValueType::kString}}));
    shared_store = std::move(AnnotationStore::Create(&left_db.catalog,
                                                     "Shared", 1))
                       .ValueOrDie();
    shared_mgr = std::move(SummaryManager::Create(&left_db.catalog, shared,
                                                  shared_store.get()))
                     .ValueOrDie();
    // Link the SAME instance object (same id) as the Birds table's.
    const SummaryInstance* inst =
        *left_db.mgr->FindInstance("ClassBird1");
    shared_mgr->LinkInstance(*inst).ok();

    ctx = std::make_unique<QueryContext>(&left_db.catalog, &left_db.storage,
                                         &left_db.pool);
    ctx->RegisterRelation(left_db.birds, left_db.mgr.get()).ok();
    ctx->RegisterRelation(shared, shared_mgr.get()).ok();
  }

  TestDb left_db;
  Table* shared;
  std::unique_ptr<AnnotationStore> shared_store;
  std::unique_ptr<SummaryManager> shared_mgr;
  std::unique_ptr<QueryContext> ctx;
};

TEST_F(RuleLegalityTest, Rule2BlockedWhenInstanceOnBothSides) {
  LogicalPtr plan = LSummarySelect(
      LJoin(LScan("Birds"), LScan("Shared"),
            Cmp(Col("name"), CompareOp::kEq, Col("sname"))),
      Cmp(LabelValue("ClassBird1", "Disease"), CompareOp::kGt,
          Lit(Value::Int(0))));
  Optimizer opt(ctx.get(), OptimizerOptions{});
  auto rewritten = opt.Rewrite(plan->Clone());
  ASSERT_TRUE(rewritten.ok());
  // S must stay above the join: the merge would change its predicate's
  // object.
  EXPECT_EQ((*rewritten)->kind, LogicalKind::kSummarySelect)
      << (*rewritten)->Explain();
  EXPECT_EQ((*rewritten)->children[0]->kind, LogicalKind::kJoin);
}

TEST_F(RuleLegalityTest, Rule7InstanceFilterNotPushedToWrongSide) {
  ObjectPredicate pred;
  pred.instance_name = "ClassBird1";
  LogicalPtr plan = LSummaryFilter(
      LJoin(LScan("Birds"), LScan("Shared"),
            Cmp(Col("name"), CompareOp::kEq, Col("sname"))),
      pred);
  Optimizer opt(ctx.get(), OptimizerOptions{});
  auto rewritten = opt.Rewrite(plan->Clone());
  ASSERT_TRUE(rewritten.ok());
  // Instance lives on BOTH sides; structural predicates may push to both
  // (Rule 8), which is what must have happened — never one-sided.
  if ((*rewritten)->kind == LogicalKind::kJoin) {
    EXPECT_EQ((*rewritten)->children[0]->kind,
              LogicalKind::kSummaryFilter);
    EXPECT_EQ((*rewritten)->children[1]->kind,
              LogicalKind::kSummaryFilter);
  }
}

TEST_F(RuleLegalityTest, Rule11BlockedWhenInstanceOnT) {
  // J's predicate instance (ClassBird1) is linked on the would-be T
  // (Shared): the join-order switch is illegal and must not fire.
  SummaryJoinPredicate sjp;
  sjp.left_expr = LabelValue("ClassBird1", "Disease");
  sjp.op = CompareOp::kEq;
  sjp.right_expr = LabelValue("ClassBird1", "Disease");
  LogicalPtr plan = LJoin(
      LSummaryJoin(LScan("Birds"), LScan("Birds"), sjp.Clone()),
      LScan("Shared"), Cmp(Col("name"), CompareOp::kEq, Col("sname")));
  Optimizer opt(ctx.get(), OptimizerOptions{});
  auto rewritten = opt.Rewrite(plan->Clone());
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ((*rewritten)->kind, LogicalKind::kJoin)
      << (*rewritten)->Explain();
}

TEST_F(RuleLegalityTest, CrossSidePredicateStaysAboveJoin) {
  // A sigma comparing columns of both sides cannot push either way.
  LogicalPtr plan = LSelect(
      LJoin(LScan("Birds"), LScan("Shared"), Lit(Value::Bool(true))),
      Cmp(Col("name"), CompareOp::kNe, Col("sname")));
  Optimizer opt(ctx.get(), OptimizerOptions{});
  auto rewritten = opt.Rewrite(plan->Clone());
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ((*rewritten)->kind, LogicalKind::kSelect);
}

}  // namespace
}  // namespace insight
