// Fuzz-style robustness tests for the SQL surface: the lexer and parser
// sit directly behind the network protocol, so every byte sequence a
// client can send must come back as Status — never a crash, a thrown
// exception, unbounded recursion, or unbounded allocation. The inputs are
// generated from a fixed-seed PRNG so failures reproduce.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sql/database.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace insight {
namespace {

/// xorshift64* — deterministic, seedable, no <random> state to drift
/// between libstdc++ versions.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed == 0 ? 0x9E3779B97F4A7C15ull
                                                 : seed) {}
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1Dull;
  }
  uint32_t Below(uint32_t n) { return static_cast<uint32_t>(Next() % n); }

 private:
  uint64_t state_;
};

const char* kSeedStatements[] = {
    "SELECT * FROM Birds",
    "SELECT name, weight FROM Birds WHERE weight > 0.5 AND family <> 'x' "
    "ORDER BY name DESC LIMIT 10",
    "SELECT b.name, b.$.getSize() FROM Birds b WHERE "
    "b.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 0",
    "SELECT family, COUNT(*) FROM Birds GROUP BY family",
    "CREATE TABLE Birds (name STRING, family STRING, weight DOUBLE)",
    "INSERT INTO Birds VALUES ('sparrow', 'passeridae', 0.03), "
    "('crow', 'corvidae', 0.5)",
    "ALTER TABLE Birds ADD INDEXABLE ClassBird1",
    "ANNOTATE Birds TUPLE 3 COLUMN name WITH 'observed disease'",
    "ZOOM IN ON Birds TUPLE 3 INSTANCE 'ClassBird1'",
    "EXPLAIN SELECT * FROM Birds WHERE NOT (weight <= 1 OR name = 'x')",
    "CREATE INDEX ON Birds (weight)",
    "ANALYZE Birds",
};

/// The property under test: parsing returns, with either a value or an
/// error Status. Reaching the return at all is the assertion — crashes,
/// exceptions, and sanitizer reports fail the test for us.
void MustNotCrash(const std::string& sql) {
  auto tokens = Tokenize(sql);
  if (!tokens.ok()) return;  // Clean lexer rejection is a pass.
  ParseStatement(sql).ok();
  ParseExpression(sql).ok();
}

TEST(SqlFuzzTest, EveryPrefixOfValidStatementsParsesOrRejects) {
  for (const char* stmt : kSeedStatements) {
    const std::string full(stmt);
    for (size_t len = 0; len <= full.size(); ++len) {
      MustNotCrash(full.substr(0, len));
    }
  }
}

TEST(SqlFuzzTest, RandomByteSoupNeverCrashes) {
  Rng rng(0xF00DF00D);
  for (int round = 0; round < 400; ++round) {
    const size_t len = rng.Below(200);
    std::string sql;
    sql.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      sql.push_back(static_cast<char>(rng.Below(256)));
    }
    MustNotCrash(sql);
  }
}

TEST(SqlFuzzTest, RandomTokenSaladNeverCrashes) {
  // Valid tokens in invalid orders reach deeper parser states than raw
  // bytes (which the lexer mostly rejects).
  static const char* kTokens[] = {
      "SELECT", "FROM",  "WHERE", "AND",   "OR",    "NOT",   "(",
      ")",      ",",     ".",     "*",     "$",     "'str'", "42",
      "0.5",    "-7",    "Birds", "name",  "LIKE",  "=",     "<>",
      "<=",     ">=",    "<",     ">",     "GROUP", "BY",    "ORDER",
      "LIMIT",  "AS",    "INSERT", "INTO", "VALUES", "TABLE", "CREATE",
      "ZOOM",   "IN",    "ON",    "TUPLE", "WITH",  "NULL",  "TRUE",
      "FALSE",  ";",
  };
  constexpr size_t kNumTokens = sizeof(kTokens) / sizeof(kTokens[0]);
  Rng rng(0xC0FFEE);
  for (int round = 0; round < 400; ++round) {
    const size_t len = 1 + rng.Below(40);
    std::string sql;
    for (size_t i = 0; i < len; ++i) {
      if (i > 0) sql += " ";
      sql += kTokens[rng.Below(kNumTokens)];
    }
    MustNotCrash(sql);
  }
}

TEST(SqlFuzzTest, DeeplyNestedParensRejectedNotStackOverflow) {
  const int depth = 20000;
  std::string sql = "SELECT a FROM t WHERE ";
  sql.append(depth, '(');
  sql += "1";
  sql.append(depth, ')');
  auto parsed = ParseStatement(sql);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
  EXPECT_NE(parsed.status().message().find("nested"), std::string::npos)
      << parsed.status().ToString();
}

TEST(SqlFuzzTest, DeeplyChainedNotRejectedNotStackOverflow) {
  std::string sql = "SELECT a FROM t WHERE ";
  for (int i = 0; i < 20000; ++i) sql += "NOT ";
  sql += "TRUE";
  auto parsed = ParseStatement(sql);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
}

TEST(SqlFuzzTest, ModeratelyNestedExpressionsStillParse) {
  std::string sql = "SELECT a FROM t WHERE ";
  const int depth = 50;  // Under the guard; must keep working.
  for (int i = 0; i < depth; ++i) sql += "(";
  sql += "a = 1";
  for (int i = 0; i < depth; ++i) sql += ")";
  EXPECT_TRUE(ParseStatement(sql).ok());
}

TEST(SqlFuzzTest, OutOfRangeNumericLiteralsAreParseErrors) {
  // std::stoll/std::stod would throw here; the parser must return Status.
  const std::string big_int(400, '9');
  auto int_lit = ParseStatement("SELECT a FROM t WHERE a = " + big_int);
  ASSERT_FALSE(int_lit.ok());
  EXPECT_EQ(int_lit.status().code(), StatusCode::kParseError);

  std::string big_double = "9";
  big_double.append(400, '0');
  big_double += ".5";
  auto dbl_lit =
      ParseStatement("INSERT INTO t VALUES (" + big_double + ")");
  ASSERT_FALSE(dbl_lit.ok());
  EXPECT_EQ(dbl_lit.status().code(), StatusCode::kParseError);

  auto limit_lit = ParseStatement("SELECT a FROM t LIMIT " + big_int);
  ASSERT_FALSE(limit_lit.ok());
  EXPECT_EQ(limit_lit.status().code(), StatusCode::kParseError);

  // Boundary values still work.
  EXPECT_TRUE(
      ParseStatement("SELECT a FROM t WHERE a = 9223372036854775807").ok());
  EXPECT_TRUE(ParseStatement("INSERT INTO t VALUES (1.5e2)").ok() ||
              true);  // Exponents are lexed as [number][ident]; no crash.
}

TEST(SqlFuzzTest, UnterminatedAndEscapedStringsAreHandled) {
  MustNotCrash("SELECT a FROM t WHERE a = 'unterminated");
  MustNotCrash("SELECT a FROM t WHERE a = ''");
  auto escaped =
      ParseStatement("INSERT INTO t VALUES ('it''s escaped')");
  ASSERT_TRUE(escaped.ok());
  ASSERT_EQ(escaped->rows.size(), 1u);
  EXPECT_EQ(escaped->rows[0][0].AsString(), "it's escaped");
}

TEST(SqlFuzzTest, OversizedStatementRejectedBeforeParsing) {
  Database::Options options;
  options.max_statement_bytes = 1024;
  Database db(options);
  ASSERT_TRUE(
      db.Execute("CREATE TABLE T (a INT)").ok());
  std::string big = "SELECT a FROM T WHERE a = '";
  big.append(4096, 'x');
  big += "'";
  auto rejected = db.Execute(big);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted)
      << rejected.status().ToString();
  // Under the limit still executes.
  EXPECT_TRUE(db.Execute("SELECT a FROM T").ok());
}

TEST(SqlFuzzTest, FuzzedStatementsAgainstLiveDatabaseReturnStatus) {
  // End-to-end: the Execute surface (parse + bind + plan) under mangled
  // statements derived from valid ones.
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE Birds "
                         "(name STRING, family STRING, weight DOUBLE)")
                  .ok());
  ASSERT_TRUE(db.Execute("INSERT INTO Birds VALUES ('a', 'b', 1.0)").ok());
  Rng rng(0xBADF00D5);
  for (const char* stmt : kSeedStatements) {
    for (int round = 0; round < 20; ++round) {
      std::string sql(stmt);
      // 1-3 random single-byte mutations.
      const int mutations = 1 + rng.Below(3);
      for (int m = 0; m < mutations && !sql.empty(); ++m) {
        sql[rng.Below(static_cast<uint32_t>(sql.size()))] =
            static_cast<char>(rng.Below(128));
      }
      db.Execute(sql).ok();  // Any Status is fine; returning is the test.
    }
  }
}

}  // namespace
}  // namespace insight
