#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "index/btree.h"
#include "index/key_codec.h"
#include "storage/buffer_pool.h"
#include "storage/storage_manager.h"

namespace insight {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest()
      : storage_(StorageManager::Backend::kMemory), pool_(&storage_, 256) {
    FileId file = *storage_.CreateFile("idx");
    tree_ = std::make_unique<BTree>(*BTree::Create(&pool_, file));
  }

  StorageManager storage_;
  BufferPool pool_;
  std::unique_ptr<BTree> tree_;
};

TEST_F(BTreeTest, EmptyTree) {
  EXPECT_EQ(tree_->num_entries(), 0u);
  EXPECT_FALSE(*tree_->Contains("anything"));
  auto it = tree_->ScanAll();
  ASSERT_TRUE(it.ok());
  EXPECT_FALSE(it->Valid());
}

TEST_F(BTreeTest, InsertLookup) {
  ASSERT_TRUE(tree_->Insert("disease:008", 100).ok());
  ASSERT_TRUE(tree_->Insert("disease:002", 200).ok());
  ASSERT_TRUE(tree_->Insert("anatomy:025", 300).ok());
  EXPECT_EQ(tree_->num_entries(), 3u);
  EXPECT_TRUE(*tree_->Contains("disease:008"));
  EXPECT_FALSE(*tree_->Contains("disease:003"));
  auto hits = tree_->Lookup("disease:002");
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0], 200u);
}

TEST_F(BTreeTest, DuplicateKeysKeepAllPayloads) {
  for (uint64_t v = 1; v <= 5; ++v) {
    ASSERT_TRUE(tree_->Insert("same", v * 10).ok());
  }
  auto hits = tree_->Lookup("same");
  ASSERT_TRUE(hits.ok());
  std::vector<uint64_t> expected = {10, 20, 30, 40, 50};
  EXPECT_EQ(*hits, expected);  // (key, value) order sorts payloads.
}

TEST_F(BTreeTest, DeleteExactEntry) {
  ASSERT_TRUE(tree_->Insert("k", 1).ok());
  ASSERT_TRUE(tree_->Insert("k", 2).ok());
  ASSERT_TRUE(tree_->Delete("k", 1).ok());
  EXPECT_TRUE(tree_->Delete("k", 1).IsNotFound());
  auto hits = tree_->Lookup("k");
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0], 2u);
}

TEST_F(BTreeTest, RangeScanInclusiveExclusive) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        tree_->Insert("key:" + ZeroPad(i, 3), static_cast<uint64_t>(i)).ok());
  }
  // [10, 20] inclusive.
  auto it = tree_->RangeScan("key:010", true, "key:020", true);
  ASSERT_TRUE(it.ok());
  std::vector<uint64_t> got;
  for (; it->Valid(); it->Next()) got.push_back(it->value());
  ASSERT_EQ(got.size(), 11u);
  EXPECT_EQ(got.front(), 10u);
  EXPECT_EQ(got.back(), 20u);

  // (10, 20) exclusive.
  it = tree_->RangeScan("key:010", false, "key:020", false);
  ASSERT_TRUE(it.ok());
  got.clear();
  for (; it->Valid(); it->Next()) got.push_back(it->value());
  ASSERT_EQ(got.size(), 9u);
  EXPECT_EQ(got.front(), 11u);
  EXPECT_EQ(got.back(), 19u);
}

TEST_F(BTreeTest, RangeScanEmptyRange) {
  tree_->Insert("b", 1).ok();
  auto it = tree_->RangeScan("c", true, "d", true);
  ASSERT_TRUE(it.ok());
  EXPECT_FALSE(it->Valid());
  it = tree_->RangeScan("b", false, "b", false);
  ASSERT_TRUE(it.ok());
  EXPECT_FALSE(it->Valid());
}

TEST_F(BTreeTest, SplitsGrowHeight) {
  // Enough entries with sizable keys to force multiple levels.
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(tree_->Insert("key-padded-for-size:" + ZeroPad(i, 8),
                              static_cast<uint64_t>(i))
                    .ok());
  }
  EXPECT_GE(tree_->height(), 2u);
  EXPECT_EQ(tree_->num_entries(), 20000u);
  // Everything still findable and in order.
  auto it = tree_->ScanAll();
  ASSERT_TRUE(it.ok());
  uint64_t expected = 0;
  for (; it->Valid(); it->Next()) {
    EXPECT_EQ(it->value(), expected++);
  }
  EXPECT_EQ(expected, 20000u);
}

TEST_F(BTreeTest, ReopenPreservesContents) {
  FileId file = *storage_.CreateFile("idx2");
  {
    BTree t = *BTree::Create(&pool_, file);
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(t.Insert("k" + ZeroPad(i, 4), i).ok());
    }
  }
  BTree t = *BTree::Open(&pool_, file);
  EXPECT_EQ(t.num_entries(), 500u);
  EXPECT_TRUE(*t.Contains("k0123"));
}

TEST(BTreeEntryCompareTest, OrdersByKeyThenValue) {
  EXPECT_LT(CompareEntries("a", 9, "b", 1), 0);
  EXPECT_GT(CompareEntries("b", 1, "a", 9), 0);
  EXPECT_LT(CompareEntries("a", 1, "a", 2), 0);
  EXPECT_EQ(CompareEntries("a", 1, "a", 1), 0);
}

TEST(KeyCodecTest, NumericOrderPreserved) {
  const double values[] = {-1e9, -3.5, -1, -0.0, 0.0, 0.25, 1, 7, 1e9};
  for (double a : values) {
    for (double b : values) {
      const bool key_lt =
          EncodeIndexKey(Value::Double(a)) < EncodeIndexKey(Value::Double(b));
      EXPECT_EQ(a < b, key_lt) << a << " vs " << b;
    }
  }
}

TEST(KeyCodecTest, IntAndDoubleSameImage) {
  EXPECT_EQ(EncodeIndexKey(Value::Int(42)),
            EncodeIndexKey(Value::Double(42.0)));
}

TEST(KeyCodecTest, StringOrderPreserved) {
  EXPECT_LT(EncodeIndexKey(Value::String("Anatomy")),
            EncodeIndexKey(Value::String("Behavior")));
}

TEST(KeyCodecTest, NegativeAndPositiveZeroShareOneKey) {
  EXPECT_EQ(EncodeIndexKey(Value::Double(-0.0)),
            EncodeIndexKey(Value::Double(0.0)));
  EXPECT_EQ(EncodeIndexKey(Value::Double(-0.0)),
            EncodeIndexKey(Value::Int(0)));
}

TEST(KeyCodecTest, NanCanonicalizedAboveAllNumbers) {
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  const double neg_nan = -qnan;  // Sign-bit NaN: used to bit-invert and
                                 // sort below -inf while +NaN sorted above
                                 // +inf — two keys for "equal" values.
  const std::string nan_key = EncodeIndexKey(Value::Double(qnan));
  EXPECT_EQ(nan_key, EncodeIndexKey(Value::Double(neg_nan)));
  // NaN sorts above every real number (Value::Compare's order) but still
  // below the MaxNumericKey sentinel so numeric range scans cover it.
  const double reals[] = {-std::numeric_limits<double>::infinity(), -1e300,
                          -1.0, 0.0, 1.0, 1e300,
                          std::numeric_limits<double>::infinity()};
  for (double r : reals) {
    EXPECT_GT(nan_key, EncodeIndexKey(Value::Double(r))) << r;
  }
  EXPECT_LT(nan_key, MaxNumericKey());
}

TEST(ValueCompareTest, NanTotalOrder) {
  const Value nan = Value::Double(std::numeric_limits<double>::quiet_NaN());
  const Value neg_nan = Value::Double(-std::numeric_limits<double>::quiet_NaN());
  const Value inf = Value::Double(std::numeric_limits<double>::infinity());
  // NaN used to compare "equal" (0) to everything, breaking strict-weak
  // ordering for sorts and B-Tree key comparisons.
  EXPECT_EQ(nan.Compare(nan), 0);
  EXPECT_EQ(nan.Compare(neg_nan), 0);
  EXPECT_GT(nan.Compare(inf), 0);
  EXPECT_GT(nan.Compare(Value::Double(0.0)), 0);
  EXPECT_GT(nan.Compare(Value::Int(1)), 0);
  EXPECT_LT(Value::Double(0.0).Compare(nan), 0);
  EXPECT_LT(Value::Int(-5).Compare(nan), 0);
  // Hash must agree with the equality NaN == NaN.
  EXPECT_EQ(nan.Hash(), neg_nan.Hash());
  EXPECT_EQ(Value::Double(-0.0).Compare(Value::Double(0.0)), 0);
}

TEST(KeyCodecTest, RangeSentinels) {
  EXPECT_LT(MinNumericKey(), EncodeIndexKey(Value::Int(-1000000)));
  EXPECT_GT(MaxNumericKey(), EncodeIndexKey(Value::Int(1000000)));
  // MinStringKey equals the encoding of "" (the smallest string); range
  // scans use it as an inclusive lower bound.
  EXPECT_LE(MinStringKey(), EncodeIndexKey(Value::String("")));
  EXPECT_GT(MaxStringKey(), EncodeIndexKey(Value::String(
                                std::string(100, '\xFF'))));
}

// Property sweep: the tree mirrors a reference multiset of (key, value)
// under random inserts/deletes, across several seeds.
class BTreeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreeFuzzTest, MatchesReferenceModel) {
  StorageManager storage(StorageManager::Backend::kMemory);
  BufferPool pool(&storage, 512);
  FileId file = *storage.CreateFile("fuzz");
  BTree tree = *BTree::Create(&pool, file);

  Rng rng(GetParam());
  std::multimap<std::string, uint64_t> model;
  for (int step = 0; step < 5000; ++step) {
    const std::string key = "k" + ZeroPad(rng.Uniform(0, 300), 4);
    if (rng.NextBool(0.7) || model.empty()) {
      const uint64_t value = static_cast<uint64_t>(rng.Uniform(0, 1 << 20));
      ASSERT_TRUE(tree.Insert(key, value).ok());
      model.emplace(key, value);
    } else {
      auto it = model.begin();
      std::advance(it, rng.Uniform(0, static_cast<int64_t>(model.size()) - 1));
      ASSERT_TRUE(tree.Delete(it->first, it->second).ok());
      model.erase(it);
    }
  }
  ASSERT_EQ(tree.num_entries(), model.size());

  // Full-scan equivalence (model multimap iterates in sorted key order;
  // tie-break payload order also matches because entries sort by value).
  std::vector<std::pair<std::string, uint64_t>> expected(model.begin(),
                                                         model.end());
  std::sort(expected.begin(), expected.end());
  auto it = tree.ScanAll();
  ASSERT_TRUE(it.ok());
  size_t i = 0;
  for (; it->Valid(); it->Next(), ++i) {
    ASSERT_LT(i, expected.size());
    EXPECT_EQ(it->key(), expected[i].first);
    EXPECT_EQ(it->value(), expected[i].second);
  }
  EXPECT_EQ(i, expected.size());

  // Random range queries match the model.
  for (int q = 0; q < 50; ++q) {
    std::string lo = "k" + ZeroPad(rng.Uniform(0, 300), 4);
    std::string hi = "k" + ZeroPad(rng.Uniform(0, 300), 4);
    if (lo > hi) std::swap(lo, hi);
    size_t expected_count = 0;
    for (const auto& [k, v] : model) {
      if (k >= lo && k <= hi) ++expected_count;
    }
    auto range_it = tree.RangeScan(lo, true, hi, true);
    ASSERT_TRUE(range_it.ok());
    size_t got = 0;
    for (; range_it->Valid(); range_it->Next()) ++got;
    EXPECT_EQ(got, expected_count) << lo << ".." << hi;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeFuzzTest,
                         ::testing::Values(7, 21, 42, 1234));

}  // namespace
}  // namespace insight
