// SQL-level transaction semantics: BEGIN/COMMIT/ROLLBACK statement
// handling, snapshot-isolation visibility across concurrent handles,
// first-writer-wins conflict aborts, and durability of explicit
// transactions across a WAL reopen. Each Execute call carries its own
// txn handle, so one Database models many concurrent sessions.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "sql/database.h"
#include "txn/transaction_manager.h"

namespace insight {
namespace {

std::string MakeTempDir(const std::string& tag) {
  static std::atomic<int> counter{0};
  std::string dir = ::testing::TempDir() + "/insight_txn_" + tag + "_" +
                    std::to_string(::getpid()) + "_" +
                    std::to_string(counter.fetch_add(1));
  std::filesystem::remove_all(dir);
  return dir;
}

class TxnSqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("CREATE TABLE Birds (name TEXT, family TEXT)")
                    .ok());
    ASSERT_TRUE(db_.DefineClassifier("C", {"Disease", "Other"},
                                     {{"diseaseword infection", "Disease"},
                                      {"otherword note", "Other"}})
                    .ok());
    ASSERT_TRUE(db_.Execute("ALTER TABLE Birds ADD INDEXABLE C").ok());
    ASSERT_TRUE(
        db_.Execute("INSERT INTO Birds VALUES ('seed1', 'f0')").ok());
    ASSERT_TRUE(
        db_.Execute("INSERT INTO Birds VALUES ('seed2', 'f1')").ok());
  }

  /// Row count as seen through `handle` (0 = fresh latest snapshot).
  size_t CountRows(uint64_t* handle) {
    uint64_t none = 0;
    auto result =
        db_.Execute("SELECT * FROM Birds", handle ? handle : &none);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result->rows.size() : 0;
  }

  bool SeesRow(uint64_t* handle, const std::string& name) {
    uint64_t none = 0;
    auto result =
        db_.Execute("SELECT * FROM Birds", handle ? handle : &none);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok()) return false;
    for (const Tuple& row : result->rows) {
      if (row.at(0).AsString() == name) return true;
    }
    return false;
  }

  Database db_;
};

TEST_F(TxnSqlTest, BeginCommitRoundTrip) {
  uint64_t txn = 0;
  auto begun = db_.Execute("BEGIN", &txn);
  ASSERT_TRUE(begun.ok()) << begun.status().ToString();
  EXPECT_NE(txn, 0u);
  EXPECT_NE(begun->message.find("started"), std::string::npos);

  ASSERT_TRUE(
      db_.Execute("INSERT INTO Birds VALUES ('mine', 'f2')", &txn).ok());
  // Own writes are visible inside the transaction...
  EXPECT_TRUE(SeesRow(&txn, "mine"));
  // ...but not to other sessions until commit.
  EXPECT_FALSE(SeesRow(nullptr, "mine"));

  auto committed = db_.Execute("COMMIT", &txn);
  ASSERT_TRUE(committed.ok()) << committed.status().ToString();
  EXPECT_EQ(txn, 0u);
  EXPECT_TRUE(SeesRow(nullptr, "mine"));
}

TEST_F(TxnSqlTest, RollbackDiscardsEverything) {
  uint64_t txn = 0;
  ASSERT_TRUE(db_.Execute("BEGIN", &txn).ok());
  ASSERT_TRUE(
      db_.Execute("INSERT INTO Birds VALUES ('gone', 'f2')", &txn).ok());
  ASSERT_TRUE(
      db_.Execute("ANNOTATE Birds TUPLE 1 WITH 'diseaseword doomed'", &txn)
          .ok());
  ASSERT_TRUE(db_.Execute("ROLLBACK", &txn).ok());
  EXPECT_EQ(txn, 0u);
  EXPECT_FALSE(SeesRow(nullptr, "gone"));
  // The annotation died with the transaction.
  auto zoom = db_.Execute("ZOOM IN ON Birds TUPLE 1");
  if (zoom.ok()) {
    for (const Annotation& ann : zoom->annotations) {
      EXPECT_EQ(ann.text.find("doomed"), std::string::npos);
    }
  }
}

TEST_F(TxnSqlTest, SnapshotPinnedAtBegin) {
  uint64_t reader = 0;
  ASSERT_TRUE(db_.Execute("BEGIN", &reader).ok());
  const size_t before = CountRows(&reader);

  // Another session commits a row while the reader is open.
  ASSERT_TRUE(db_.Execute("INSERT INTO Birds VALUES ('late', 'f3')").ok());

  // Snapshot isolation: the open transaction keeps reading its snapshot.
  EXPECT_EQ(CountRows(&reader), before);
  EXPECT_FALSE(SeesRow(&reader, "late"));
  // A fresh latest-snapshot read sees the committed row immediately.
  EXPECT_TRUE(SeesRow(nullptr, "late"));

  ASSERT_TRUE(db_.Execute("COMMIT", &reader).ok());
  EXPECT_TRUE(SeesRow(nullptr, "late"));
}

TEST_F(TxnSqlTest, StatementErrorsAreReported) {
  uint64_t txn = 0;
  // Transaction control without a transaction.
  EXPECT_TRUE(db_.Execute("COMMIT", &txn).status().IsInvalidArgument());
  EXPECT_TRUE(db_.Execute("ROLLBACK", &txn).status().IsInvalidArgument());
  // Nested BEGIN.
  ASSERT_TRUE(db_.Execute("BEGIN", &txn).ok());
  EXPECT_TRUE(db_.Execute("BEGIN", &txn).status().IsInvalidArgument());
  // DDL inside an open transaction is rejected, and the txn survives.
  EXPECT_TRUE(db_.Execute("CREATE TABLE Other (x TEXT)", &txn)
                  .status()
                  .IsInvalidArgument());
  ASSERT_TRUE(
      db_.Execute("INSERT INTO Birds VALUES ('still-open', 'f2')", &txn)
          .ok());
  ASSERT_TRUE(db_.Execute("COMMIT", &txn).ok());
  EXPECT_TRUE(SeesRow(nullptr, "still-open"));
}

TEST_F(TxnSqlTest, FailedDmlPoisonsTheTransaction) {
  uint64_t txn = 0;
  ASSERT_TRUE(db_.Execute("BEGIN", &txn).ok());
  ASSERT_TRUE(
      db_.Execute("INSERT INTO Birds VALUES ('poisoned', 'f2')", &txn).ok());
  // Wrong arity: the statement fails and the whole transaction rolls
  // back, clearing the handle.
  EXPECT_FALSE(db_.Execute("INSERT INTO Birds VALUES ('x')", &txn).ok());
  EXPECT_EQ(txn, 0u);
  EXPECT_FALSE(SeesRow(nullptr, "poisoned"));
}

TEST_F(TxnSqlTest, FirstWriterWinsConflict) {
  uint64_t a = 0, b = 0;
  ASSERT_TRUE(db_.Execute("BEGIN", &a).ok());
  ASSERT_TRUE(db_.Execute("BEGIN", &b).ok());

  // Both transactions touch tuple 1's summary entries; the second writer
  // loses and is auto-aborted.
  ASSERT_TRUE(
      db_.Execute("ANNOTATE Birds TUPLE 1 WITH 'diseaseword first'", &a)
          .ok());
  auto conflicted =
      db_.Execute("ANNOTATE Birds TUPLE 1 WITH 'diseaseword second'", &b);
  ASSERT_FALSE(conflicted.ok());
  EXPECT_TRUE(conflicted.status().IsAborted())
      << conflicted.status().ToString();
  EXPECT_EQ(b, 0u);  // Auto-abort cleared the loser's handle.

  // The winner commits normally.
  ASSERT_TRUE(db_.Execute("COMMIT", &a).ok());
  auto zoom = db_.Execute("ZOOM IN ON Birds TUPLE 1");
  ASSERT_TRUE(zoom.ok()) << zoom.status().ToString();
  bool saw_first = false;
  for (const Annotation& ann : zoom->annotations) {
    if (ann.text.find("first") != std::string::npos) saw_first = true;
    EXPECT_EQ(ann.text.find("second"), std::string::npos);
  }
  EXPECT_TRUE(saw_first);
}

TEST_F(TxnSqlTest, CommitAfterAutoAbortIsARetryableError) {
  uint64_t a = 0, b = 0;
  ASSERT_TRUE(db_.Execute("BEGIN", &a).ok());
  ASSERT_TRUE(db_.Execute("BEGIN", &b).ok());
  const uint64_t b_id = b;
  ASSERT_TRUE(
      db_.Execute("ANNOTATE Birds TUPLE 2 WITH 'diseaseword win'", &a).ok());
  ASSERT_FALSE(
      db_.Execute("ANNOTATE Birds TUPLE 2 WITH 'diseaseword lose'", &b).ok());
  ASSERT_EQ(b, 0u);  // Auto-abort cleared the handle.

  // A client that has not noticed the abort retries COMMIT with the dead
  // id: it gets a retryable kAborted telling it to restart from BEGIN.
  b = b_id;
  auto late_commit = db_.Execute("COMMIT", &b);
  ASSERT_FALSE(late_commit.ok());
  EXPECT_TRUE(late_commit.status().IsAborted())
      << late_commit.status().ToString();
  EXPECT_NE(late_commit.status().message().find("retry from BEGIN"),
            std::string::npos);
  EXPECT_EQ(b, 0u);

  // ROLLBACK of an already-aborted transaction is an idempotent ack.
  b = b_id;
  EXPECT_TRUE(db_.Execute("ROLLBACK", &b).ok());
  EXPECT_EQ(b, 0u);

  ASSERT_TRUE(db_.Execute("COMMIT", &a).ok());

  // A fresh BEGIN works fine after the conflict (retry path).
  ASSERT_TRUE(db_.Execute("BEGIN", &b).ok());
  ASSERT_TRUE(
      db_.Execute("ANNOTATE Birds TUPLE 2 WITH 'diseaseword retry'", &b)
          .ok());
  ASSERT_TRUE(db_.Execute("COMMIT", &b).ok());
}

TEST_F(TxnSqlTest, TransactionManagerStatsTrackLifecycle) {
  TransactionManager* mgr = db_.txn_manager();
  const uint64_t begun = mgr->txns_begun();
  const uint64_t aborted = mgr->txns_aborted();
  const size_t active = mgr->active_txns();
  uint64_t txn = 0;
  ASSERT_TRUE(db_.Execute("BEGIN", &txn).ok());
  EXPECT_EQ(mgr->active_txns(), active + 1);
  ASSERT_TRUE(db_.Execute("ROLLBACK", &txn).ok());
  EXPECT_EQ(mgr->active_txns(), active);
  EXPECT_GT(mgr->txns_aborted(), aborted);
  EXPECT_GT(mgr->txns_begun(), begun);
}

TEST(TxnDurabilityTest, ExplicitTransactionSurvivesReopen) {
  const std::string dir = MakeTempDir("reopen");
  Database::Options options;
  options.backend = StorageManager::Backend::kFile;
  options.directory = dir;
  options.wal_sync = Database::WalSyncMode::kGroupCommit;
  {
    auto db = Database::Open(dir, options).ValueOrDie();
    ASSERT_TRUE(
        db->Execute("CREATE TABLE Birds (name TEXT, family TEXT)").ok());
    uint64_t txn = 0;
    ASSERT_TRUE(db->Execute("BEGIN", &txn).ok());
    ASSERT_TRUE(
        db->Execute("INSERT INTO Birds VALUES ('durable1', 'f0')", &txn)
            .ok());
    ASSERT_TRUE(
        db->Execute("INSERT INTO Birds VALUES ('durable2', 'f1')", &txn)
            .ok());
    ASSERT_TRUE(db->Execute("COMMIT", &txn).ok());

    // A second transaction left open at close must not replay.
    uint64_t open_txn = 0;
    ASSERT_TRUE(db->Execute("BEGIN", &open_txn).ok());
    ASSERT_TRUE(
        db->Execute("INSERT INTO Birds VALUES ('limbo', 'f2')", &open_txn)
            .ok());
    ASSERT_TRUE(db->WalSync().ok());
    // Drop the database with the transaction still open (simulated crash:
    // no COMMIT record was ever appended for it).
  }
  auto db = Database::Open(dir, options).ValueOrDie();
  auto rows = db->Execute("SELECT * FROM Birds").ValueOrDie();
  ASSERT_EQ(rows.rows.size(), 2u);
  for (const Tuple& row : rows.rows) {
    EXPECT_NE(row.at(0).AsString(), "limbo");
  }
  std::filesystem::remove_all(dir);
}

TEST(TxnDurabilityTest, RolledBackTransactionNeverReplays) {
  const std::string dir = MakeTempDir("rollback");
  Database::Options options;
  options.backend = StorageManager::Backend::kFile;
  options.directory = dir;
  options.wal_sync = Database::WalSyncMode::kGroupCommit;
  {
    auto db = Database::Open(dir, options).ValueOrDie();
    ASSERT_TRUE(
        db->Execute("CREATE TABLE Birds (name TEXT, family TEXT)").ok());
    uint64_t txn = 0;
    ASSERT_TRUE(db->Execute("BEGIN", &txn).ok());
    ASSERT_TRUE(
        db->Execute("INSERT INTO Birds VALUES ('undone', 'f0')", &txn).ok());
    ASSERT_TRUE(db->Execute("ROLLBACK", &txn).ok());
    ASSERT_TRUE(
        db->Execute("INSERT INTO Birds VALUES ('kept', 'f1')").ok());
    ASSERT_TRUE(db->WalSync().ok());
  }
  auto db = Database::Open(dir, options).ValueOrDie();
  auto rows = db->Execute("SELECT * FROM Birds").ValueOrDie();
  ASSERT_EQ(rows.rows.size(), 1u);
  EXPECT_EQ(rows.rows[0].at(0).AsString(), "kept");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace insight
