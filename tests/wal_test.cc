#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "storage/storage_manager.h"
#include "types/tuple.h"
#include "wal/crash_point.h"
#include "wal/fault_injection.h"
#include "wal/log_manager.h"
#include "wal/recovery_manager.h"
#include "wal/wal_record.h"

namespace insight {
namespace {

std::string TempPath(const std::string& tag) {
  static std::atomic<int> counter{0};
  return ::testing::TempDir() + "/insight_wal_" + tag + "_" +
         std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1));
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void AppendBytes(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void OverwriteByte(const std::string& path, size_t offset, char value) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&value, 1);
}

// ---------- Payload codecs ----------

TEST(WalRecordCodecTest, InsertRoundTrip) {
  WalInsert op;
  op.table = "birds";
  op.oid = 42;
  op.tuple = Tuple({Value::Int(7), Value::String("heron"), Value::Double(2.5)});
  auto back = WalInsert::Decode(op.Encode());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->table, "birds");
  EXPECT_EQ(back->oid, 42u);
  EXPECT_EQ(back->tuple.at(0).AsInt(), 7);
  EXPECT_EQ(back->tuple.at(1).AsString(), "heron");
  EXPECT_EQ(back->tuple.at(2).AsDouble(), 2.5);
}

TEST(WalRecordCodecTest, AnnotateRoundTrip) {
  WalAnnotate op;
  op.table = "birds";
  op.ann_id = 9;
  op.text = "observed disease";
  op.targets = {{1, 0x3}, {5, 0x1}};
  auto back = WalAnnotate::Decode(op.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ann_id, 9u);
  EXPECT_EQ(back->text, "observed disease");
  ASSERT_EQ(back->targets.size(), 2u);
  EXPECT_EQ(back->targets[1].first, 5u);
  EXPECT_EQ(back->targets[1].second, 0x1u);
}

TEST(WalRecordCodecTest, InstanceDefRoundTrip) {
  WalInstanceDef def;
  def.kind = WalInstanceDef::Kind::kClassifier;
  def.name = "ClassBird1";
  def.labels = {"Disease", "Behavior"};
  def.training = {{"diseaseword sick", "Disease"}, {"eats bugs", "Behavior"}};
  auto back = WalInstanceDef::Decode(def.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->kind, WalInstanceDef::Kind::kClassifier);
  EXPECT_EQ(back->name, "ClassBird1");
  EXPECT_EQ(back->labels, def.labels);
  EXPECT_EQ(back->training, def.training);
}

TEST(WalRecordCodecTest, SnapshotRoundTrip) {
  WalSnapshot snap;
  snap.next_ann_id = 17;
  snap.ops = {{WalRecordType::kCreateTable, "p1"},
              {WalRecordType::kInsert, "p2"}};
  auto back = WalSnapshot::Decode(snap.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->next_ann_id, 17u);
  ASSERT_EQ(back->ops.size(), 2u);
  EXPECT_EQ(back->ops[0].first, WalRecordType::kCreateTable);
  EXPECT_EQ(back->ops[1].second, "p2");
}

TEST(WalRecordCodecTest, MalformedPayloadIsCorruptionNotCrash) {
  EXPECT_EQ(WalInsert::Decode("zz").status().code(), StatusCode::kCorruption);
  EXPECT_EQ(WalSnapshot::Decode("x").status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(WalCheckpointEnd::Decode("").status().code(),
            StatusCode::kCorruption);
}

// ---------- LogManager ----------

TEST(LogManagerTest, AppendSyncReadAllRoundTrip) {
  const std::string path = TempPath("roundtrip");
  auto wal = LogManager::Open(path).ValueOrDie();
  for (int i = 0; i < 5; ++i) {
    auto lsn = wal->Append(WalRecordType::kNoop, "payload" + std::to_string(i));
    ASSERT_TRUE(lsn.ok());
    EXPECT_EQ(*lsn, static_cast<Lsn>(i + 1));
  }
  EXPECT_EQ(wal->durable_lsn(), kInvalidLsn);  // Nothing forced yet.
  ASSERT_TRUE(wal->Sync().ok());
  EXPECT_EQ(wal->durable_lsn(), 5u);

  auto records = wal->ReadAll().ValueOrDie();
  ASSERT_EQ(records.size(), 5u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].lsn, i + 1);
    EXPECT_EQ(records[i].type, WalRecordType::kNoop);
    EXPECT_EQ(records[i].payload, "payload" + std::to_string(i));
  }
  std::filesystem::remove(path);
}

TEST(LogManagerTest, UnsyncedTailIsNotOnDisk) {
  const std::string path = TempPath("unsynced");
  auto wal = LogManager::Open(path).ValueOrDie();
  ASSERT_TRUE(wal->Append(WalRecordType::kNoop, "durable").ok());
  ASSERT_TRUE(wal->Sync().ok());
  ASSERT_TRUE(wal->Append(WalRecordType::kNoop, "buffered").ok());
  auto records = wal->ReadAll().ValueOrDie();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].payload, "durable");
  std::filesystem::remove(path);
}

TEST(LogManagerTest, ReopenContinuesDenseLsnSequence) {
  const std::string path = TempPath("reopen");
  {
    auto wal = LogManager::Open(path).ValueOrDie();
    ASSERT_TRUE(wal->Append(WalRecordType::kNoop, "one").ok());
    ASSERT_TRUE(wal->Append(WalRecordType::kNoop, "two").ok());
    ASSERT_TRUE(wal->Sync().ok());
  }
  auto wal = LogManager::Open(path).ValueOrDie();
  EXPECT_EQ(wal->last_lsn(), 2u);
  EXPECT_EQ(wal->durable_lsn(), 2u);
  auto lsn = wal->Append(WalRecordType::kNoop, "three");
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 3u);
  ASSERT_TRUE(wal->Sync().ok());
  EXPECT_EQ(wal->ReadAll().ValueOrDie().size(), 3u);
  std::filesystem::remove(path);
}

TEST(LogManagerTest, TornTailIsTruncatedOnReopen) {
  const std::string path = TempPath("torn");
  {
    auto wal = LogManager::Open(path).ValueOrDie();
    ASSERT_TRUE(wal->Append(WalRecordType::kNoop, "keep-a").ok());
    ASSERT_TRUE(wal->Append(WalRecordType::kNoop, "keep-b").ok());
    ASSERT_TRUE(wal->Sync().ok());
  }
  const auto intact_size = std::filesystem::file_size(path);
  // Simulate a crash mid-append: a frame header promising 100 body bytes
  // followed by only a few of them.
  std::string torn("\x64\x00\x00\x00\x00\x00\x00\x00partial", 15);
  AppendBytes(path, torn);

  auto wal = LogManager::Open(path).ValueOrDie();
  auto records = wal->ReadAll().ValueOrDie();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].payload, "keep-b");
  EXPECT_EQ(std::filesystem::file_size(path), intact_size);
  // The log stays writable past the truncation point.
  ASSERT_TRUE(wal->Append(WalRecordType::kNoop, "after").ok());
  ASSERT_TRUE(wal->Sync().ok());
  EXPECT_EQ(wal->ReadAll().ValueOrDie().size(), 3u);
  std::filesystem::remove(path);
}

TEST(LogManagerTest, ChecksumFailureCutsThePrefixThere) {
  const std::string path = TempPath("crc");
  {
    auto wal = LogManager::Open(path).ValueOrDie();
    ASSERT_TRUE(wal->Append(WalRecordType::kNoop, "first").ok());
    ASSERT_TRUE(wal->Append(WalRecordType::kNoop, "second").ok());
    ASSERT_TRUE(wal->Sync().ok());
  }
  // Flip one payload byte of the LAST record on disk; its CRC now fails,
  // so reopen keeps only the first record.
  const auto size = std::filesystem::file_size(path);
  OverwriteByte(path, static_cast<size_t>(size - 1), '!');
  auto wal = LogManager::Open(path).ValueOrDie();
  auto records = wal->ReadAll().ValueOrDie();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].payload, "first");
  std::filesystem::remove(path);
}

TEST(LogManagerTest, ScanValidPrefixReportsValidEnd) {
  const std::string path = TempPath("scan");
  {
    auto wal = LogManager::Open(path).ValueOrDie();
    ASSERT_TRUE(wal->Append(WalRecordType::kNoop, "x").ok());
    ASSERT_TRUE(wal->Sync().ok());
  }
  std::string image = ReadFile(path);
  const size_t intact = image.size();
  image += "garbage-tail";
  uint64_t valid_end = 0;
  auto records = LogManager::ScanValidPrefix(image, &valid_end);
  EXPECT_EQ(records.size(), 1u);
  EXPECT_EQ(valid_end, intact);
  std::filesystem::remove(path);
}

TEST(LogManagerTest, GroupCommitFromManyThreads) {
  const std::string path = TempPath("group");
  auto wal = LogManager::Open(path).ValueOrDie();
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        auto lsn = wal->Append(WalRecordType::kNoop, "op");
        if (!lsn.ok() || !wal->Commit(*lsn).ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(wal->last_lsn(), static_cast<Lsn>(kThreads * kOpsPerThread));
  EXPECT_EQ(wal->durable_lsn(), wal->last_lsn());

  auto records = wal->ReadAll().ValueOrDie();
  ASSERT_EQ(records.size(), static_cast<size_t>(kThreads * kOpsPerThread));
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].lsn, i + 1) << "LSNs must be dense and ordered";
  }
  std::filesystem::remove(path);
}

TEST(LogManagerTest, SyncToLsnBeyondLastAppendedSucceeds) {
  const std::string path = TempPath("beyond");
  auto wal = LogManager::Open(path).ValueOrDie();
  ASSERT_TRUE(wal->Append(WalRecordType::kNoop, "only").ok());
  // A reserved stamp whose operation failed before logging: the pool may
  // still ask for it. Everything that exists must be forced; no hang.
  ASSERT_TRUE(wal->SyncToLsn(1000).ok());
  EXPECT_EQ(wal->durable_lsn(), 1u);
  std::filesystem::remove(path);
}

// ---------- WAL-before-data gate in the buffer pool ----------

class RecordingBridge : public WalBridge {
 public:
  uint64_t DurableLsn() const override { return durable_; }
  Status SyncToLsn(uint64_t lsn) override {
    synced_.push_back(lsn);
    if (lsn > durable_) durable_ = lsn;
    return Status::OK();
  }

  uint64_t durable_ = 0;
  std::vector<uint64_t> synced_;
};

TEST(WalBeforeDataTest, FlushForcesTheLogFirst) {
  StorageManager storage(StorageManager::Backend::kMemory);
  BufferPool pool(&storage, 8);
  RecordingBridge bridge;
  pool.SetWalBridge(&bridge);
  pool.SetCurrentLsn(5);

  FileId file = *storage.CreateFile("f");
  PageId id;
  {
    auto guard = pool.NewPage(file, &id);
    ASSERT_TRUE(guard.ok());
    guard->data()[0] = 'd';
    guard->MarkDirty();
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  ASSERT_EQ(bridge.synced_.size(), 1u) << "flush must force the log";
  EXPECT_EQ(bridge.synced_[0], 5u);
}

TEST(WalBeforeDataTest, AlreadyDurablePagesFlushWithoutForcing) {
  StorageManager storage(StorageManager::Backend::kMemory);
  BufferPool pool(&storage, 8);
  RecordingBridge bridge;
  bridge.durable_ = 10;  // The log is ahead of every page.
  pool.SetWalBridge(&bridge);
  pool.SetCurrentLsn(7);

  FileId file = *storage.CreateFile("f");
  PageId id;
  {
    auto guard = pool.NewPage(file, &id);
    ASSERT_TRUE(guard.ok());
    guard->MarkDirty();
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_TRUE(bridge.synced_.empty());
}

TEST(WalBeforeDataTest, EvictionForcesTheLogToo) {
  StorageManager storage(StorageManager::Backend::kMemory);
  BufferPool pool(&storage, 8);  // Single shard; easy to overflow.
  RecordingBridge bridge;
  pool.SetWalBridge(&bridge);
  FileId file = *storage.CreateFile("f");
  // Dirty more pages than frames so eviction must write one back.
  for (int i = 0; i < 40; ++i) {
    pool.SetCurrentLsn(static_cast<uint64_t>(i + 1));
    PageId id;
    auto guard = pool.NewPage(file, &id);
    ASSERT_TRUE(guard.ok());
    guard->MarkDirty();
  }
  EXPECT_FALSE(bridge.synced_.empty())
      << "evicting a dirty page must force the log first";
}

// ---------- Fault injection ----------

TEST(FaultInjectionTest, FailsWritesAfterBudget) {
  FaultInjectingPageStore::Options options;
  options.fail_writes_after = 2;
  FaultInjectingPageStore store(std::make_unique<InMemoryPageStore>(),
                                options);
  ASSERT_EQ(*store.AllocatePage(), 0u);
  Page page;
  page.Zero();
  EXPECT_TRUE(store.WritePage(0, page).ok());
  EXPECT_TRUE(store.WritePage(0, page).ok());
  EXPECT_EQ(store.WritePage(0, page).code(), StatusCode::kIOError);
  EXPECT_EQ(store.writes(), 3u);
}

TEST(FaultInjectionTest, TornWritePersistsHalfThePage) {
  FaultInjectingPageStore::Options options;
  options.fail_writes_after = 1;
  options.torn_write = true;
  FaultInjectingPageStore store(std::make_unique<InMemoryPageStore>(),
                                options);
  ASSERT_EQ(*store.AllocatePage(), 0u);
  Page zeros;
  zeros.Zero();
  ASSERT_TRUE(store.WritePage(0, zeros).ok());

  Page ones;
  std::memset(ones.data, 'x', kPageSize);
  EXPECT_EQ(store.WritePage(0, ones).code(), StatusCode::kIOError);

  Page got;
  ASSERT_TRUE(store.ReadPage(0, &got).ok());
  EXPECT_EQ(got.data[0], 'x') << "first half must carry the torn write";
  EXPECT_EQ(got.data[kPageSize / 2 - 1], 'x');
  EXPECT_EQ(got.data[kPageSize / 2], 0) << "second half must be the old data";
  EXPECT_EQ(got.data[kPageSize - 1], 0);
}

TEST(FaultInjectionTest, CountsEveryOperation) {
  FaultInjectingPageStore store(std::make_unique<InMemoryPageStore>(), {});
  ASSERT_EQ(*store.AllocatePage(), 0u);
  Page page;
  page.Zero();
  ASSERT_TRUE(store.WritePage(0, page).ok());
  ASSERT_TRUE(store.ReadPage(0, &page).ok());
  ASSERT_TRUE(store.Sync().ok());
  EXPECT_EQ(store.writes(), 1u);
  EXPECT_EQ(store.reads(), 1u);
  EXPECT_EQ(store.syncs(), 1u);
}

TEST(StorageManagerInterceptorTest, WrapsEveryCreatedStore) {
  StorageManager storage(StorageManager::Backend::kMemory);
  std::vector<std::string> wrapped;
  storage.set_store_interceptor(
      [&](const std::string& name, std::unique_ptr<PageStore> base) {
        wrapped.push_back(name);
        return std::make_unique<FaultInjectingPageStore>(
            std::move(base), FaultInjectingPageStore::Options{});
      });
  FileId file = *storage.CreateFile("data");
  EXPECT_EQ(wrapped, std::vector<std::string>{"data"});
  auto* store = static_cast<FaultInjectingPageStore*>(storage.GetStore(file));
  ASSERT_EQ(*store->AllocatePage(), 0u);
  Page page;
  page.Zero();
  ASSERT_TRUE(store->WritePage(0, page).ok());
  EXPECT_EQ(store->writes(), 1u);
}

// ---------- Crash points ----------

TEST(CrashPointTest, RegistryCoversTheDurabilityProtocol) {
  const auto& points = RegisteredCrashPoints();
  EXPECT_GE(points.size(), 8u);
  for (const char* required :
       {"wal_append", "wal_sync_before_fsync", "wal_sync_after_fsync",
        "bufferpool_flush_page", "pagestore_sync", "checkpoint_begin",
        "checkpoint_end", "sbtree_maintenance"}) {
    EXPECT_NE(std::find(points.begin(), points.end(), required),
              points.end())
        << required;
  }
}

TEST(CrashPointTest, UnarmedHitIsANoop) {
  DisarmCrashPoints();
  HitCrashPoint("wal_append");  // Must return.
  EXPECT_FALSE(CrashPointArmed("wal_append"));
  ArmCrashPoint("some_point");
  EXPECT_TRUE(CrashPointArmed("some_point"));
  DisarmCrashPoints();
  EXPECT_FALSE(CrashPointArmed("some_point"));
}

TEST(CrashPointDeathTest, ArmedHitExitsWithTheCrashCode) {
  EXPECT_EXIT(
      {
        ArmCrashPoint("unit_test_point");
        HitCrashPoint("unit_test_point");
      },
      ::testing::ExitedWithCode(kCrashPointExitCode), "");
}

// ---------- FilePageStore hardening ----------

TEST(FilePageStoreHardeningTest, SyncSucceedsAndShortReadsAreIOErrors) {
  const std::string path = TempPath("fps") + ".db";
  auto store = FilePageStore::Open(path).ValueOrDie();
  ASSERT_EQ(*store->AllocatePage(), 0u);
  Page page;
  page.Zero();
  page.data[0] = 'p';
  ASSERT_TRUE(store->WritePage(0, page).ok());
  EXPECT_TRUE(store->Sync().ok());

  // Truncate the file under the store: the next read comes up short and
  // must surface as IOError, not as silently zero-filled data.
  std::filesystem::resize_file(path, kPageSize / 2);
  Page out;
  EXPECT_EQ(store->ReadPage(0, &out).code(), StatusCode::kIOError);
  store.reset();
  std::filesystem::remove(path);
}

TEST(FilePageStoreHardeningTest, SyncContainingDirectoryIsOk) {
  const std::string dir = TempPath("dirsync");
  std::filesystem::create_directories(dir);
  EXPECT_TRUE(SyncContainingDirectory(dir + "/somefile").ok());
  std::filesystem::remove_all(dir);
}

// ---------- Transactional replay decisions ----------

/// Records which row inserts replay, to assert recovery's commit/abort
/// decisions without standing up a full database.
class CapturingTarget : public ReplayTarget {
 public:
  Status ReplayAnnIdFloor(uint64_t) override { return Status::OK(); }
  Status ReplayCreateTable(const WalCreateTable&) override {
    return Status::OK();
  }
  Status ReplayCreateIndex(const WalCreateIndex&) override {
    return Status::OK();
  }
  Status ReplayInsert(const WalInsert& op) override {
    inserted_oids.push_back(op.oid);
    return Status::OK();
  }
  Status ReplayDelete(const WalDelete&) override { return Status::OK(); }
  Status ReplayDefineInstance(const WalInstanceDef&) override {
    return Status::OK();
  }
  Status ReplayLinkInstance(const WalLinkInstance&) override {
    return Status::OK();
  }
  Status ReplayUnlinkInstance(const WalUnlinkInstance&) override {
    return Status::OK();
  }
  Status ReplayAnnotate(const WalAnnotate&) override { return Status::OK(); }
  Status ReplayRemoveAnnotation(const WalRemoveAnnotation&) override {
    return Status::OK();
  }
  Status ReplayStatsSketch(const WalStatsSketch&) override {
    return Status::OK();
  }

  std::vector<Oid> inserted_oids;
};

/// Builds a decoded log with dense 1-based LSNs from (type, payload)
/// pairs, the shape LogManager::ReadAll hands to recovery.
std::vector<WalRecord> MakeLog(
    std::vector<std::pair<WalRecordType, std::string>> entries) {
  std::vector<WalRecord> records;
  Lsn lsn = 1;
  for (auto& [type, payload] : entries) {
    records.push_back(WalRecord{lsn++, type, std::move(payload)});
  }
  return records;
}

std::string TxnInsertOp(uint64_t txn_id, Oid oid) {
  WalInsert ins;
  ins.table = "t";
  ins.oid = oid;
  ins.tuple = Tuple({Value::Int(static_cast<int64_t>(oid))});
  WalTxnOp op;
  op.txn_id = txn_id;
  op.inner_type = WalRecordType::kInsert;
  op.inner_payload = ins.Encode();
  return op.Encode();
}

TEST(TxnReplayTest, AbortAfterCommitRevokesTheCommit) {
  // The commit hook appended the record but failed before it was known
  // durable; the txn was rolled back in memory and an abort record
  // followed. Recovery must keep it rolled back.
  auto records = MakeLog({
      {WalRecordType::kTxnBegin, WalTxnBegin{7}.Encode()},
      {WalRecordType::kTxnOp, TxnInsertOp(7, 100)},
      {WalRecordType::kTxnCommit, WalTxnCommit{7}.Encode()},
      {WalRecordType::kTxnAbort, WalTxnAbort{7}.Encode()},
  });
  CapturingTarget target;
  auto stats = RecoveryManager::Replay(records, &target);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(target.inserted_oids.empty());
  EXPECT_EQ(stats->txns_committed, 0u);
  EXPECT_GE(stats->txns_discarded, 1u);
}

TEST(TxnReplayTest, AbortOfLaterIncarnationDoesNotRevokeEarlierCommit) {
  // Txn ids restart after a reboot: the abort belongs to the second
  // incarnation of id 7 and must not revoke the first one's commit.
  auto records = MakeLog({
      {WalRecordType::kTxnBegin, WalTxnBegin{7}.Encode()},
      {WalRecordType::kTxnOp, TxnInsertOp(7, 100)},
      {WalRecordType::kTxnCommit, WalTxnCommit{7}.Encode()},
      {WalRecordType::kTxnBegin, WalTxnBegin{7}.Encode()},
      {WalRecordType::kTxnOp, TxnInsertOp(7, 200)},
      {WalRecordType::kTxnAbort, WalTxnAbort{7}.Encode()},
  });
  CapturingTarget target;
  auto stats = RecoveryManager::Replay(records, &target);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(target.inserted_oids, std::vector<Oid>({100}));
  EXPECT_EQ(stats->txns_committed, 1u);
}

TEST(TxnReplayTest, ReusedTxnIdOpsDoNotLeakAcrossIncarnations) {
  // Ops logged by a later incarnation of a reused id must not ride an
  // earlier incarnation's commit record.
  auto records = MakeLog({
      {WalRecordType::kTxnBegin, WalTxnBegin{7}.Encode()},
      {WalRecordType::kTxnOp, TxnInsertOp(7, 100)},
      {WalRecordType::kTxnCommit, WalTxnCommit{7}.Encode()},
      {WalRecordType::kTxnBegin, WalTxnBegin{7}.Encode()},
      {WalRecordType::kTxnOp, TxnInsertOp(7, 200)},
      // Crash: the second incarnation never resolves.
  });
  CapturingTarget target;
  auto stats = RecoveryManager::Replay(records, &target);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(target.inserted_oids, std::vector<Oid>({100}));
  EXPECT_EQ(stats->txns_committed, 1u);
  EXPECT_GE(stats->txns_discarded, 1u);
}

TEST(TxnReplayTest, PlainAbortStillDiscardsAndOthersCommit) {
  auto records = MakeLog({
      {WalRecordType::kTxnBegin, WalTxnBegin{1}.Encode()},
      {WalRecordType::kTxnOp, TxnInsertOp(1, 100)},
      {WalRecordType::kTxnAbort, WalTxnAbort{1}.Encode()},
      {WalRecordType::kTxnBegin, WalTxnBegin{2}.Encode()},
      {WalRecordType::kTxnOp, TxnInsertOp(2, 200)},
      {WalRecordType::kTxnCommit, WalTxnCommit{2}.Encode()},
  });
  CapturingTarget target;
  auto stats = RecoveryManager::Replay(records, &target);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(target.inserted_oids, std::vector<Oid>({200}));
  EXPECT_EQ(stats->txns_committed, 1u);
  EXPECT_EQ(stats->txns_discarded, 1u);
}

}  // namespace
}  // namespace insight
