// Network service layer tests: wire codec round-trips and corruption
// handling, EventLoop cross-thread handoff, and end-to-end server/client
// behavior (queries, errors, admission control, idle timeout, metrics,
// graceful drain) against an in-process insightd core.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/event_loop.h"
#include "net/server.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "sql/database.h"
#include "wal/wal_record.h"  // Crc32.

namespace insight {
namespace {

// ---------- Wire codec ----------

TEST(WireTest, FrameRoundTrip) {
  const std::string encoded = EncodeFrame(FrameType::kQuery, "SELECT 1");
  FrameParser parser;
  parser.Feed(encoded.data(), encoded.size());
  Frame frame;
  auto got = parser.Next(&frame);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(*got);
  EXPECT_EQ(frame.type, FrameType::kQuery);
  EXPECT_EQ(frame.payload, "SELECT 1");
  EXPECT_EQ(parser.buffered_bytes(), 0u);
  got = parser.Next(&frame);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(*got);
}

TEST(WireTest, ParserHandlesByteAtATimeDelivery) {
  std::string stream;
  EncodeFrame(FrameType::kPing, "", &stream);
  EncodeFrame(FrameType::kQuery, "SELECT * FROM Birds", &stream);
  FrameParser parser;
  std::vector<Frame> frames;
  for (char c : stream) {
    parser.Feed(&c, 1);
    Frame frame;
    for (;;) {
      auto got = parser.Next(&frame);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      if (!*got) break;
      frames.push_back(frame);
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kPing);
  EXPECT_EQ(frames[1].type, FrameType::kQuery);
  EXPECT_EQ(frames[1].payload, "SELECT * FROM Birds");
}

TEST(WireTest, ParserRejectsBitFlippedBody) {
  std::string encoded = EncodeFrame(FrameType::kQuery, "SELECT 1");
  encoded[encoded.size() - 1] ^= 0x40;  // Corrupt the body, not the header.
  FrameParser parser;
  parser.Feed(encoded.data(), encoded.size());
  Frame frame;
  auto got = parser.Next(&frame);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCorruption);
}

TEST(WireTest, ParserRejectsOversizedFrame) {
  FrameParser parser(/*max_frame_bytes=*/64);
  const std::string encoded =
      EncodeFrame(FrameType::kQuery, std::string(100, 'x'));
  parser.Feed(encoded.data(), encoded.size());
  Frame frame;
  auto got = parser.Next(&frame);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kResourceExhausted);
}

TEST(WireTest, ParserRejectsUnknownFrameType) {
  // Hand-craft a frame with a valid checksum but a type no FrameType
  // names: [u32 len][u32 crc(body)][body = {200}].
  std::string body;
  body.push_back(static_cast<char>(200));
  std::string frame_bytes;
  const uint32_t len = static_cast<uint32_t>(body.size());
  frame_bytes.append(reinterpret_cast<const char*>(&len), 4);
  const uint32_t crc = Crc32(body);
  frame_bytes.append(reinterpret_cast<const char*>(&crc), 4);
  frame_bytes.append(body);
  FrameParser parser;
  parser.Feed(frame_bytes.data(), frame_bytes.size());
  Frame out_frame;
  auto got = parser.Next(&out_frame);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCorruption);
}

TEST(WireTest, ErrorStatusRoundTrip) {
  const Status in = Status::NotFound("relation Birds not registered");
  const Status out = DecodeError(EncodeError(in));
  EXPECT_EQ(out.code(), StatusCode::kNotFound);
  EXPECT_EQ(out.message(), in.message());
}

TEST(WireTest, UnknownWireStatusCodeDecodesToInternal) {
  EXPECT_EQ(StatusCodeFromWire(60000), StatusCode::kInternal);
}

TEST(WireTest, QueryPayloadRoundTrip) {
  auto query = DecodeQuery(EncodeQuery("SELECT * FROM t WHERE a = 'x'", 42));
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->sql, "SELECT * FROM t WHERE a = 'x'");
  EXPECT_EQ(query->wait_lsn, 42u);
  EXPECT_FALSE(DecodeQuery("\x02\x00").ok());  // Truncated string.

  // Pre-replication encoders omitted wait_lsn; it decodes as 0.
  auto bare = DecodeQuery(EncodeQuery("SELECT 1").substr(0, 12));
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->sql, "SELECT 1");
  EXPECT_EQ(bare->wait_lsn, 0u);
}

TEST(WireTest, ResultPayloadRoundTrip) {
  Schema schema({{"name", ValueType::kString}, {"n", ValueType::kInt64}});
  std::vector<Tuple> rows = {
      Tuple({Value::String("sparrow"), Value::Int(7)}),
      Tuple({Value::String("crow"), Value::Int(-2)}),
  };
  std::vector<std::string> summaries = {"{Disease: 1}", ""};

  NetResult decoded;
  ASSERT_TRUE(DecodeResultHeader(
                  EncodeResultHeader(schema, "ok", {"[3] note"}), &decoded)
                  .ok());
  ASSERT_TRUE(
      DecodeRowBatch(EncodeRowBatch(rows, summaries, 0, 256), &decoded).ok());
  auto done = DecodeResultDone(EncodeResultDone(rows.size(), 17));
  ASSERT_TRUE(done.ok());

  EXPECT_EQ(done->total_rows, 2u);
  EXPECT_EQ(done->commit_lsn, 17u);
  EXPECT_EQ(decoded.message, "ok");
  ASSERT_EQ(decoded.annotations.size(), 1u);
  EXPECT_EQ(decoded.annotations[0], "[3] note");
  ASSERT_EQ(decoded.schema.num_columns(), 2u);
  EXPECT_EQ(decoded.schema.column(1).type, ValueType::kInt64);
  ASSERT_EQ(decoded.rows.size(), 2u);
  EXPECT_EQ(decoded.rows[0].at(0).AsString(), "sparrow");
  EXPECT_EQ(decoded.rows[1].at(1).AsInt(), -2);
  EXPECT_EQ(decoded.summaries[0], "{Disease: 1}");
  EXPECT_EQ(decoded.summaries[1], "");
}

TEST(WireTest, RowBatchSplitsAtBoundary) {
  std::vector<Tuple> rows;
  for (int i = 0; i < 10; ++i) rows.push_back(Tuple({Value::Int(i)}));
  NetResult decoded;
  ASSERT_TRUE(DecodeRowBatch(EncodeRowBatch(rows, {}, 0, 4), &decoded).ok());
  ASSERT_TRUE(DecodeRowBatch(EncodeRowBatch(rows, {}, 4, 4), &decoded).ok());
  ASSERT_TRUE(DecodeRowBatch(EncodeRowBatch(rows, {}, 8, 4), &decoded).ok());
  ASSERT_EQ(decoded.rows.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(decoded.rows[i].at(0).AsInt(), i);
}

// ---------- EventLoop ----------

TEST(EventLoopTest, RunsCrossThreadFunctorsInOrder) {
  EventLoop loop;
  std::vector<int> order;
  std::thread runner([&loop] { loop.Loop(); });
  loop.RunInLoop([&] { order.push_back(1); });
  loop.RunInLoop([&] {
    order.push_back(2);
    // From the loop thread, QueueInLoop defers to the next iteration but
    // still runs before Quit() takes effect.
    loop.QueueInLoop([&] { order.push_back(3); });
  });
  loop.RunInLoop([&loop] { loop.Quit(); });
  runner.join();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoopTest, TickCallbackFires) {
  EventLoop loop;
  std::atomic<int> ticks{0};
  loop.SetTickCallback([&] { ticks.fetch_add(1); }, /*tick_ms=*/20);
  std::thread runner([&loop] { loop.Loop(); });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (ticks.load() < 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  loop.Quit();
  runner.join();
  EXPECT_GE(ticks.load(), 2);
}

// ---------- Server / client end to end ----------

class NetEndToEndTest : public ::testing::Test {
 protected:
  void StartServer(InsightServer::Options options = {},
                   Database::Options db_options = {}) {
    options.port = 0;
    db_ = std::make_unique<Database>(db_options);
    server_ = std::make_unique<InsightServer>(db_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
  }

  std::unique_ptr<InsightClient> Connect() {
    auto client = InsightClient::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.ok() ? std::move(*client) : nullptr;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<InsightServer> server_;
};

TEST_F(NetEndToEndTest, CreateInsertSelectOverTheWire) {
  StartServer();
  auto client = Connect();
  ASSERT_NE(client, nullptr);

  auto created = client->Execute(
      "CREATE TABLE Birds (name STRING, family STRING, weight DOUBLE)");
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  EXPECT_NE(created->message.find("created"), std::string::npos);

  auto inserted = client->Execute(
      "INSERT INTO Birds VALUES ('sparrow', 'passeridae', 0.03), "
      "('crow', 'corvidae', 0.5), ('hawk', 'accipitridae', 1.1)");
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();

  auto rows = client->Execute(
      "SELECT name FROM Birds WHERE weight > 0.1 ORDER BY name");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->rows.size(), 2u);
  EXPECT_EQ(rows->rows[0].at(0).AsString(), "crow");
  EXPECT_EQ(rows->rows[1].at(0).AsString(), "hawk");
  EXPECT_FALSE(rows->ToString().empty());
}

TEST_F(NetEndToEndTest, LargeResultStreamsAcrossManyBatches) {
  StartServer();
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Execute("CREATE TABLE Nums (n INT)").ok());
  // 700 rows forces at least three RowBatch frames (256 rows each).
  for (int batch = 0; batch < 7; ++batch) {
    std::string sql = "INSERT INTO Nums VALUES ";
    for (int i = 0; i < 100; ++i) {
      if (i > 0) sql += ", ";
      sql += "(" + std::to_string(batch * 100 + i) + ")";
    }
    ASSERT_TRUE(client->Execute(sql).ok());
  }
  auto rows = client->Execute("SELECT n FROM Nums ORDER BY n");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->rows.size(), 700u);
  EXPECT_EQ(rows->rows[0].at(0).AsInt(), 0);
  EXPECT_EQ(rows->rows[699].at(0).AsInt(), 699);
}

TEST_F(NetEndToEndTest, ErrorsCarryTheEngineStatusCode) {
  StartServer();
  auto client = Connect();
  ASSERT_NE(client, nullptr);

  auto missing = client->Execute("SELECT * FROM NoSuchTable");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound)
      << missing.status().ToString();

  auto garbage = client->Execute("FLY ME TO THE MOON");
  ASSERT_FALSE(garbage.ok());
  EXPECT_EQ(garbage.status().code(), StatusCode::kParseError);

  // The connection survives errors: the next statement still works.
  EXPECT_TRUE(client->Ping().ok());
}

TEST_F(NetEndToEndTest, OversizedStatementRejectedByDatabaseKeepsSession) {
  // The statement fits the frame limit but exceeds the database's
  // max_statement_bytes: a clean Error frame, session stays usable.
  Database::Options db_options;
  db_options.max_statement_bytes = 512;
  StartServer({}, db_options);
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  const std::string big =
      "SELECT * FROM t WHERE a = '" + std::string(600, 'x') + "'";
  auto rejected = client->Execute(big);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted)
      << rejected.status().ToString();
  EXPECT_TRUE(client->Ping().ok());  // Session stays usable.
}

TEST_F(NetEndToEndTest, OversizedFrameDropsTheConnection) {
  // Far over the per-session frame cap (max_statement_bytes + slack): the
  // server replies with an Error and closes — no resync on a TCP stream.
  InsightServer::Options options;
  options.max_statement_bytes = 512;
  StartServer(options);
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  const std::string big = "SELECT '" + std::string(8192, 'x') + "'";
  auto rejected = client->Execute(big);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted)
      << rejected.status().ToString();
  // The server dropped us; the next round-trip must fail.
  EXPECT_FALSE(client->Ping().ok());
}

TEST_F(NetEndToEndTest, PingAndMetrics) {
  StartServer();
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->Ping().ok());
  ASSERT_TRUE(client->Execute("CREATE TABLE T (a INT)").ok());
  auto metrics = client->Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  // Prometheus text exposition with live net series.
  EXPECT_NE(metrics->find("# TYPE insight_net_requests_total counter"),
            std::string::npos);
  EXPECT_NE(metrics->find("insight_net_connections_opened_total"),
            std::string::npos);
  EXPECT_NE(metrics->find("insight_net_active_connections 1"),
            std::string::npos);
}

TEST_F(NetEndToEndTest, AdmissionControlRejectsBeyondMaxConnections) {
  InsightServer::Options options;
  options.max_connections = 1;
  StartServer(options);
  auto first = Connect();
  ASSERT_NE(first, nullptr);
  ASSERT_TRUE(first->Ping().ok());  // Fully admitted.

  auto second = InsightClient::Connect("127.0.0.1", server_->port());
  // The TCP connect itself succeeds; the rejection arrives as a Goodbye
  // frame (or an already-reset socket) on first use.
  if (second.ok()) {
    auto outcome = (*second)->Execute("SELECT a FROM t");
    EXPECT_FALSE(outcome.ok());
  }
  // The admitted session is unaffected.
  EXPECT_TRUE(first->Ping().ok());
}

TEST_F(NetEndToEndTest, IdleSessionsAreSwept) {
  InsightServer::Options options;
  options.idle_timeout_ms = 100;
  StartServer(options);
  const uint64_t sweeps_before =
      EngineMetrics::Get().net_idle_disconnects->value();
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Ping().ok());
  // Go silent: the loop tick (500ms) must sweep us well within the
  // deadline. Ping resets last-activity, so poll without extra traffic by
  // waiting first, then probing.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool dropped = false;
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(700));
    if (!client->Ping().ok()) {
      dropped = true;
      break;
    }
  }
  EXPECT_TRUE(dropped);
  EXPECT_GT(EngineMetrics::Get().net_idle_disconnects->value(),
            sweeps_before);
}

TEST_F(NetEndToEndTest, ShutdownFrameDrainsTheServer) {
  StartServer();
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Execute("CREATE TABLE T (a INT)").ok());
  ASSERT_TRUE(client->RequestShutdown().ok());
  server_->WaitForShutdownRequest();  // Returns: the frame marked it.
  server_->Shutdown();
  EXPECT_EQ(server_->active_sessions(), 0u);
  // The drained server refuses new work.
  auto late = InsightClient::Connect("127.0.0.1", server_->port());
  if (late.ok()) EXPECT_FALSE((*late)->Ping().ok());
}

TEST_F(NetEndToEndTest, PortFileContainsTheEphemeralPort) {
  InsightServer::Options options;
  options.port_file = ::testing::TempDir() + "/insightd_test_port";
  StartServer(options);
  FILE* f = std::fopen(options.port_file.c_str(), "r");
  ASSERT_NE(f, nullptr);
  unsigned port = 0;
  ASSERT_EQ(std::fscanf(f, "%u", &port), 1);
  std::fclose(f);
  EXPECT_EQ(port, server_->port());
  EXPECT_NE(port, 0u);
  std::remove(options.port_file.c_str());
}

TEST_F(NetEndToEndTest, ManySequentialConnections) {
  StartServer();
  for (int i = 0; i < 20; ++i) {
    auto client = Connect();
    ASSERT_NE(client, nullptr);
    EXPECT_TRUE(client->Ping().ok());
  }
}

TEST_F(NetEndToEndTest, TransactionSpansFramesOnOneSession) {
  StartServer();
  auto writer = Connect();
  auto observer = Connect();
  ASSERT_NE(writer, nullptr);
  ASSERT_NE(observer, nullptr);
  ASSERT_TRUE(writer->Execute("CREATE TABLE Birds (name STRING)").ok());

  auto begun = writer->Execute("BEGIN");
  ASSERT_TRUE(begun.ok()) << begun.status().ToString();
  EXPECT_NE(begun->message.find("started"), std::string::npos);
  ASSERT_TRUE(writer->Execute("INSERT INTO Birds VALUES ('mine')").ok());

  // The transaction is pinned to the writer's session: its own reads see
  // the row, the other session does not.
  auto own = writer->Execute("SELECT * FROM Birds");
  ASSERT_TRUE(own.ok()) << own.status().ToString();
  EXPECT_EQ(own->rows.size(), 1u);
  auto other = observer->Execute("SELECT * FROM Birds");
  ASSERT_TRUE(other.ok()) << other.status().ToString();
  EXPECT_EQ(other->rows.size(), 0u);

  ASSERT_TRUE(writer->Execute("COMMIT").ok());
  auto after = observer->Execute("SELECT * FROM Birds");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->rows.size(), 1u);
}

TEST_F(NetEndToEndTest, ConflictStatusIsRetryableOverTheWire) {
  StartServer();
  // The classifier definition API is embedded-only; set it up directly.
  ASSERT_TRUE(db_->Execute("CREATE TABLE Birds (name STRING)").ok());
  ASSERT_TRUE(db_->DefineClassifier("C", {"Disease", "Other"},
                                    {{"diseaseword infection", "Disease"},
                                     {"otherword note", "Other"}})
                  .ok());
  ASSERT_TRUE(db_->Execute("ALTER TABLE Birds ADD INDEXABLE C").ok());
  ASSERT_TRUE(db_->Execute("INSERT INTO Birds VALUES ('shared')").ok());

  auto winner = Connect();
  auto loser = Connect();
  ASSERT_NE(winner, nullptr);
  ASSERT_NE(loser, nullptr);
  ASSERT_TRUE(winner->Execute("BEGIN").ok());
  ASSERT_TRUE(loser->Execute("BEGIN").ok());
  ASSERT_TRUE(
      winner->Execute("ANNOTATE Birds TUPLE 1 WITH 'diseaseword first'")
          .ok());

  auto conflicted =
      loser->Execute("ANNOTATE Birds TUPLE 1 WITH 'diseaseword second'");
  ASSERT_FALSE(conflicted.ok());
  // The kAborted code survives the wire round-trip and is flagged as a
  // retry-from-BEGIN error on the client.
  EXPECT_EQ(conflicted.status().code(), StatusCode::kAborted)
      << conflicted.status().ToString();
  EXPECT_TRUE(InsightClient::IsRetryable(conflicted.status()));
  EXPECT_TRUE(loser->last_error_retryable());

  ASSERT_TRUE(winner->Execute("COMMIT").ok());

  // The loser's session survived and a fresh attempt succeeds.
  ASSERT_TRUE(loser->Execute("BEGIN").ok());
  ASSERT_TRUE(
      loser->Execute("ANNOTATE Birds TUPLE 1 WITH 'diseaseword retry'").ok());
  auto committed = loser->Execute("COMMIT");
  ASSERT_TRUE(committed.ok()) << committed.status().ToString();
  EXPECT_FALSE(loser->last_error_retryable());
}

TEST_F(NetEndToEndTest, DisconnectMidTransactionRollsBack) {
  StartServer();
  ASSERT_TRUE(db_->Execute("CREATE TABLE Birds (name STRING)").ok());
  {
    auto doomed = Connect();
    ASSERT_NE(doomed, nullptr);
    ASSERT_TRUE(doomed->Execute("BEGIN").ok());
    ASSERT_TRUE(doomed->Execute("INSERT INTO Birds VALUES ('limbo')").ok());
    // Drop the connection with the transaction open.
  }
  // The server rolls the orphaned transaction back when the close lands
  // on its loop thread; poll until the abort is visible.
  for (int i = 0; i < 200 && db_->txn_manager()->active_txns() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(db_->txn_manager()->active_txns(), 0u);
  auto survivor = Connect();
  ASSERT_NE(survivor, nullptr);
  auto rows = survivor->Execute("SELECT * FROM Birds");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->rows.size(), 0u);
}

}  // namespace
}  // namespace insight
