#include <gtest/gtest.h>

#include <set>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace insight {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "missing thing");
  EXPECT_EQ(st.ToString(), "Not found: missing thing");
}

TEST(StatusTest, CopyPreservesError) {
  Status st = Status::IOError("disk gone");
  Status copy = st;
  EXPECT_EQ(copy.code(), StatusCode::kIOError);
  EXPECT_EQ(copy.message(), "disk gone");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::TypeError("x").code(), StatusCode::kTypeError);
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Status UseResult(int v, int* out) {
  INSIGHT_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  *out = parsed * 2;
  return Status::OK();
}

TEST(ResultTest, ValuePath) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 21);
}

TEST(ResultTest, ErrorPath) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  ASSERT_TRUE(UseResult(5, &out).ok());
  EXPECT_EQ(out, 10);
  EXPECT_FALSE(UseResult(-5, &out).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.Uniform(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ZipfBoundsAndSkew) {
  Rng rng(5);
  int64_t ones = 0;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.Zipf(100, 1.0);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 100);
    if (v == 1) ++ones;
  }
  // Rank 1 should dominate under skew 1.0 (expected ~1/H(100) ~ 19%).
  EXPECT_GT(ones, 200);
}

TEST(StringUtilTest, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtilTest, TrimAndCase) {
  EXPECT_EQ(Trim("  hi \t"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_TRUE(EqualsIgnoreCase("Disease", "disease"));
  EXPECT_FALSE(EqualsIgnoreCase("Disease", "diseases"));
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("summary_btree", "summary"));
  EXPECT_FALSE(StartsWith("sum", "summary"));
  EXPECT_TRUE(EndsWith("file.idx", ".idx"));
}

TEST(StringUtilTest, ZeroPadPreservesOrder) {
  // The property the Summary-BTree itemization relies on: lexicographic
  // order of padded strings equals numeric order.
  for (int64_t a = 0; a < 1000; a += 37) {
    for (int64_t b = 0; b < 1000; b += 41) {
      EXPECT_EQ(a < b, ZeroPad(a, 3) < ZeroPad(b, 3))
          << a << " vs " << b;
    }
  }
  EXPECT_EQ(ZeroPad(8, 3), "008");
  EXPECT_EQ(ZeroPad(1234, 3), "1234");
}

TEST(StringUtilTest, TokenizeWords) {
  auto words = TokenizeWords("The swan, observed eating stonewort!");
  std::vector<std::string> expected = {"the", "swan", "observed", "eating",
                                       "stonewort"};
  EXPECT_EQ(words, expected);
}

TEST(StringUtilTest, ContainsWord) {
  EXPECT_TRUE(ContainsWord("Wikipedia article about hormones", "wikipedia"));
  EXPECT_FALSE(ContainsWord("Wikipedia article", "wiki"));
}

TEST(StringUtilTest, LikeMatch) {
  EXPECT_TRUE(LikeMatch("Swan Goose", "Swan%"));
  EXPECT_TRUE(LikeMatch("swan goose", "SWAN%"));
  EXPECT_FALSE(LikeMatch("Goose Swan", "Swan%"));
  EXPECT_TRUE(LikeMatch("Swan Goose", "%Goose"));
  EXPECT_TRUE(LikeMatch("Swan Goose", "%an Go%"));
  EXPECT_TRUE(LikeMatch("cat", "c_t"));
  EXPECT_FALSE(LikeMatch("cart", "c_t"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("x", ""));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

}  // namespace
}  // namespace insight
