// Cross-module integration and property tests:
//   - optimizer plan-equivalence fuzzing: any combination of rewrite
//     rules, index choices, and join algorithms must return the same rows
//   - end-to-end run on the file-backed storage manager
//   - external vs in-memory sort equivalence through SQL

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "common/rng.h"
#include "optimizer/optimizer.h"
#include "sql/database.h"
#include "workload/birds_workload.h"

namespace insight {
namespace {

std::vector<std::string> RenderSorted(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  for (const Row& row : rows) out.push_back(row.data.ToString());
  std::sort(out.begin(), out.end());
  return out;
}

// Builds a random logical plan over the workload tables using the
// summary-based and standard operators, returning the same plan for the
// same seed.
LogicalPtr RandomPlan(Rng* rng) {
  LogicalPtr plan = LScan("Birds");
  const int shape = static_cast<int>(rng->Uniform(0, 5));
  // Optional data predicate.
  if (rng->NextBool(0.6)) {
    plan = LSelect(std::move(plan),
                   Cmp(Col("wingspan"), CompareOp::kGt,
                       Lit(Value::Double(rng->NextDouble() * 3))));
  }
  // Optional summary predicate.
  if (rng->NextBool(0.8)) {
    static const char* kLabels[] = {"Disease", "Anatomy", "Behavior",
                                    "Other"};
    static const CompareOp kOps[] = {CompareOp::kEq, CompareOp::kGt,
                                     CompareOp::kLt, CompareOp::kGe};
    plan = LSummarySelect(
        std::move(plan),
        Cmp(LabelValue("ClassBird1", kLabels[rng->Uniform(0, 3)]),
            kOps[rng->Uniform(0, 3)], Lit(Value::Int(rng->Uniform(0, 6)))));
  }
  if (shape == 1) {
    // Join with the synonyms table.
    plan = LJoin(std::move(plan), LScan("Synonyms", false),
                 Cmp(Col("common_name"), CompareOp::kEq, Col("bird_name")));
  } else if (shape == 2) {
    // Summary filter.
    ObjectPredicate pred;
    pred.type = rng->NextBool() ? SummaryType::kClassifier
                                : SummaryType::kSnippet;
    plan = LSummaryFilter(std::move(plan), pred);
  } else if (shape == 3) {
    std::vector<AggregateSpec> aggs;
    aggs.push_back(
        AggregateSpec{AggregateSpec::Kind::kCount, nullptr, "cnt"});
    plan = LAggregate(std::move(plan), {"family"}, std::move(aggs));
  } else if (shape == 4) {
    std::vector<SortKey> keys;
    keys.push_back(SortKey{LabelValue("ClassBird1", "Disease"),
                           rng->NextBool()});
    plan = LSort(std::move(plan), std::move(keys));
  }
  return plan;
}

class PlanEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlanEquivalenceTest, AllOptimizerConfigsAgree) {
  Database db;
  BirdsWorkloadOptions opts;
  opts.seed = 7;
  opts.num_birds = 60;
  opts.annotations_per_bird = 6;
  opts.synonyms_per_bird = 2;
  GenerateBirdsWorkload(&db, opts).ValueOrDie();
  db.Execute("ANALYZE Birds").ValueOrDie();
  db.Execute("ANALYZE Synonyms").ValueOrDie();

  Rng rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    const uint64_t plan_seed = rng.Next();
    // Reference: everything off.
    Rng plan_rng(plan_seed);
    db.optimizer_options() = OptimizerOptions{};
    db.optimizer_options().enable_rewrite_rules = false;
    db.optimizer_options().use_summary_indexes = false;
    db.optimizer_options().use_baseline_indexes = false;
    db.optimizer_options().use_data_indexes = false;
    db.optimizer_options().enable_hash_join = false;
    auto reference = db.Run(RandomPlan(&plan_rng));
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();

    struct Config {
      bool rules, sidx, didx, hash;
      SortOp::Mode sort;
    };
    const Config configs[] = {
        {true, true, true, true, SortOp::Mode::kMemory},
        {true, false, true, false, SortOp::Mode::kExternal},
        {false, true, false, true, SortOp::Mode::kMemory},
        {true, true, false, false, SortOp::Mode::kExternal},
    };
    for (const Config& config : configs) {
      Rng same_rng(plan_seed);
      db.optimizer_options() = OptimizerOptions{};
      db.optimizer_options().enable_rewrite_rules = config.rules;
      db.optimizer_options().use_summary_indexes = config.sidx;
      db.optimizer_options().use_baseline_indexes = false;
      db.optimizer_options().use_data_indexes = config.didx;
      db.optimizer_options().enable_hash_join = config.hash;
      db.optimizer_options().sort_mode = config.sort;
      db.optimizer_options().sort_memory_budget = 16 * 1024;
      auto result = db.Run(RandomPlan(&same_rng));
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(RenderSorted(*reference), RenderSorted(*result))
          << "trial " << trial << " rules=" << config.rules
          << " sidx=" << config.sidx << " didx=" << config.didx;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanEquivalenceTest,
                         ::testing::Values(1, 2, 3));

TEST(FileBackendTest, EndToEndOnDisk) {
  const std::string dir = ::testing::TempDir() + "/insight_filedb";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    Database::Options options;
    options.backend = StorageManager::Backend::kFile;
    options.directory = dir;
    options.buffer_pool_frames = 64;  // Tiny pool: force real evictions.
    Database db(options);
    db.Execute("CREATE TABLE Birds (name TEXT, family TEXT)").ValueOrDie();
    db.DefineClassifier("C", {"Disease", "Other"},
                        {{"diseaseword infection", "Disease"},
                         {"otherword note", "Other"}})
        .ok();
    db.Execute("ALTER TABLE Birds ADD INDEXABLE C").ValueOrDie();
    for (int i = 0; i < 200; ++i) {
      db.Execute("INSERT INTO Birds VALUES ('bird" + std::to_string(i) +
                 "', 'f" + std::to_string(i % 5) + "')")
          .ValueOrDie();
    }
    for (int i = 0; i < 300; ++i) {
      db.Execute("ANNOTATE Birds TUPLE " + std::to_string(1 + i % 200) +
                 " WITH '" + (i % 3 == 0 ? "diseaseword sick" : "otherword")
                 + " note " + std::to_string(i) + "'")
          .ValueOrDie();
    }
    auto result = db.Execute(
        "SELECT name FROM Birds WHERE "
        "$.getSummaryObject('C').getLabelValue('Disease') > 0");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(result->rows.size(), 0u);
    // Page files materialized on disk.
    size_t files = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      (void)entry;
      ++files;
    }
    EXPECT_GT(files, 5u);
  }
  std::filesystem::remove_all(dir);
}

TEST(SqlSortModesTest, ExternalSortMatchesMemory) {
  Database db;
  BirdsWorkloadOptions opts;
  opts.num_birds = 80;
  opts.annotations_per_bird = 5;
  opts.synonyms_per_bird = 0;
  GenerateBirdsWorkload(&db, opts).ValueOrDie();
  const std::string sql =
      "SELECT common_name FROM Birds ORDER BY "
      "$.getSummaryObject('ClassBird1').getLabelValue('Disease') DESC, "
      "common_name";
  db.optimizer_options().sort_mode = SortOp::Mode::kMemory;
  auto mem = db.Execute(sql).ValueOrDie();
  db.optimizer_options().sort_mode = SortOp::Mode::kExternal;
  db.optimizer_options().sort_memory_budget = 8 * 1024;
  auto ext = db.Execute(sql).ValueOrDie();
  ASSERT_EQ(mem.rows.size(), ext.rows.size());
  for (size_t i = 0; i < mem.rows.size(); ++i) {
    EXPECT_TRUE(mem.rows[i] == ext.rows[i]) << i;
  }
}

}  // namespace
}  // namespace insight
