// Columnar execution path: ColumnVector/ColumnBatch invariants, the
// row-vs-batch-vs-columnar equivalence sweep (including NaN / -0.0 and
// NULL three-valued-logic edge cases, where the row and vector paths
// historically diverged), and LIMIT pushdown into parallel gathers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "engine_test_util.h"
#include "engine/column_batch.h"
#include "engine/execution_context.h"
#include "engine/parallel_ops.h"
#include "obs/metrics.h"

namespace insight {
namespace {

// ---------- ColumnVector ----------

TEST(ColumnVectorTest, TypedRoundtripWithNulls) {
  ColumnVector col;
  col.Append(Value::Int(7));
  col.Append(Value::Null());
  col.Append(Value::Int(-3));
  ASSERT_EQ(col.size(), 3u);
  EXPECT_EQ(col.GetValue(0).AsInt(), 7);
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_TRUE(col.GetValue(1).is_null());
  EXPECT_EQ(col.GetValue(2).AsInt(), -3);
  EXPECT_EQ(col.type(), ValueType::kInt64);
  EXPECT_FALSE(col.generic());
}

TEST(ColumnVectorTest, TypeLatchesAfterLeadingNulls) {
  ColumnVector col;
  col.Append(Value::Null());
  col.Append(Value::Null());
  col.Append(Value::String("x"));
  ASSERT_EQ(col.size(), 3u);
  EXPECT_TRUE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.GetValue(2).AsString(), "x");
  EXPECT_EQ(col.type(), ValueType::kString);
}

TEST(ColumnVectorTest, MixedTypesDegradeToGeneric) {
  ColumnVector col;
  col.Append(Value::Int(1));
  col.Append(Value::String("two"));
  col.Append(Value::Null());
  col.Append(Value::Double(3.5));
  ASSERT_EQ(col.size(), 4u);
  EXPECT_TRUE(col.generic());
  EXPECT_EQ(col.GetValue(0).AsInt(), 1);
  EXPECT_EQ(col.GetValue(1).AsString(), "two");
  EXPECT_TRUE(col.GetValue(2).is_null());
  EXPECT_DOUBLE_EQ(col.GetValue(3).AsDouble(), 3.5);
}

TEST(ColumnVectorTest, DoubleEdgeCasesSurviveRoundtrip) {
  ColumnVector col;
  col.Append(Value::Double(std::nan("")));
  col.Append(Value::Double(-0.0));
  col.Append(Value::Double(0.0));
  EXPECT_TRUE(std::isnan(col.GetValue(0).AsDouble()));
  EXPECT_TRUE(std::signbit(col.GetValue(1).AsDouble()));
  EXPECT_FALSE(std::signbit(col.GetValue(2).AsDouble()));
}

TEST(ColumnVectorTest, ClearRelatchesType) {
  ColumnVector col;
  col.Append(Value::Int(1));
  col.Clear();
  EXPECT_EQ(col.size(), 0u);
  col.Append(Value::String("fresh"));
  EXPECT_EQ(col.type(), ValueType::kString);
  EXPECT_EQ(col.GetValue(0).AsString(), "fresh");
}

// ---------- ColumnBatch ----------

TEST(ColumnBatchTest, AppendTupleGetRowRoundtrip) {
  Schema schema({{"a", ValueType::kInt64}, {"b", ValueType::kString}});
  ColumnBatch batch;
  batch.Reset(&schema, 16);
  batch.AppendTuple(1, Tuple({Value::Int(10), Value::String("x")}), {});
  batch.AppendTuple(2, Tuple({Value::Null(), Value::String("y")}), {});
  // A short tuple pads with NULLs.
  batch.AppendTuple(3, Tuple({Value::Int(30)}), {});
  ASSERT_EQ(batch.size(), 3u);
  Row row = batch.GetRow(1);
  EXPECT_EQ(row.oid, 2u);
  EXPECT_TRUE(row.data.at(0).is_null());
  EXPECT_EQ(row.data.at(1).AsString(), "y");
  EXPECT_TRUE(batch.GetRow(2).data.at(1).is_null());
}

TEST(ColumnBatchTest, FilterKeepsSelectedRowsAndOids) {
  Schema schema({{"a", ValueType::kInt64}});
  ColumnBatch batch;
  batch.Reset(&schema, 16);
  for (int i = 0; i < 5; ++i) {
    batch.AppendTuple(static_cast<Oid>(i + 1), Tuple({Value::Int(i)}), {});
  }
  batch.Filter({0, 1, 0, 1, 1});
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch.GetRow(0).oid, 2u);
  EXPECT_EQ(batch.GetRow(0).data.at(0).AsInt(), 1);
  EXPECT_EQ(batch.GetRow(2).oid, 5u);
  EXPECT_EQ(batch.GetRow(2).data.at(0).AsInt(), 4);
}

TEST(ColumnBatchTest, AssumeProjectedHandlesDuplicateIndices) {
  Schema in_schema({{"a", ValueType::kInt64}, {"b", ValueType::kString}});
  ColumnBatch in;
  in.Reset(&in_schema, 8);
  in.AppendTuple(1, Tuple({Value::Int(5), Value::String("s")}), {});

  Schema out_schema({{"b", ValueType::kString},
                     {"a", ValueType::kInt64},
                     {"a2", ValueType::kInt64}});
  ColumnBatch out;
  out.Reset(&out_schema, 8);
  out.AssumeProjected(std::move(in), {1, 0, 0});  // SELECT b, a, a.
  ASSERT_EQ(out.size(), 1u);
  Row row = out.GetRow(0);
  EXPECT_EQ(row.oid, 1u);
  EXPECT_EQ(row.data.at(0).AsString(), "s");
  EXPECT_EQ(row.data.at(1).AsInt(), 5);
  EXPECT_EQ(row.data.at(2).AsInt(), 5);
}

TEST(ColumnBatchTest, RowBatchPivotRoundtrip) {
  Schema schema({{"a", ValueType::kInt64}, {"b", ValueType::kDouble}});
  RowBatch rows;
  rows.set_capacity(8);
  for (int i = 0; i < 4; ++i) {
    Row row;
    row.oid = static_cast<Oid>(i + 1);
    row.data = Tuple({Value::Int(i), i % 2 == 0 ? Value::Null()
                                                : Value::Double(i * 1.5)});
    rows.Push(std::move(row));
  }
  ColumnBatch batch;
  batch.FromRowBatch(rows, &schema);
  RowBatch back;
  back.set_capacity(8);
  batch.ToRowBatch(&back);
  ASSERT_EQ(back.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(back.rows()[i].oid, rows.rows()[i].oid);
    EXPECT_EQ(back.rows()[i].data.ToString(), rows.rows()[i].data.ToString());
  }
}

// ---------- Row vs batch vs columnar equivalence ----------

std::multiset<std::string> Canon(const std::vector<Row>& rows) {
  std::multiset<std::string> out;
  for (const Row& row : rows) out.insert(row.data.ToString());
  return out;
}

Result<std::vector<Row>> CollectColumnar(PhysicalOperator* op) {
  INSIGHT_RETURN_NOT_OK(op->Open());
  std::vector<Row> out;
  ColumnBatch batch;
  while (true) {
    INSIGHT_ASSIGN_OR_RETURN(bool has, op->NextColumnBatch(&batch));
    if (!has) break;
    for (size_t i = 0; i < batch.size(); ++i) out.push_back(batch.GetRow(i));
  }
  op->Close();
  return out;
}

Result<std::vector<Row>> CollectBatched(PhysicalOperator* op) {
  INSIGHT_RETURN_NOT_OK(op->Open());
  std::vector<Row> out;
  RowBatch batch;
  batch.set_capacity(7);  // Odd capacity: exercises batch boundaries.
  while (true) {
    INSIGHT_ASSIGN_OR_RETURN(bool has, op->NextBatch(&batch));
    if (!has) break;
    for (Row& row : batch) out.push_back(std::move(row));
  }
  op->Close();
  return out;
}

Result<std::vector<Row>> CollectOneAtATime(PhysicalOperator* op) {
  INSIGHT_RETURN_NOT_OK(op->Open());
  std::vector<Row> out;
  Row row;
  while (true) {
    INSIGHT_ASSIGN_OR_RETURN(bool has, op->Next(&row));
    if (!has) break;
    out.push_back(row);
  }
  op->Close();
  return out;
}

// Drives the same predicate through all three interfaces over a fresh
// plan each time and expects identical result multisets.
void ExpectAllPathsAgree(TestDb* db, const std::function<ExprPtr()>& pred,
                         size_t expected_rows = SIZE_MAX) {
  auto build = [&] {
    return std::make_unique<SelectOp>(db->Scan(false), pred());
  };
  auto plan = build();
  auto row_path = CollectOneAtATime(plan.get());
  ASSERT_TRUE(row_path.ok()) << row_path.status().ToString();
  plan = build();
  auto batch_path = CollectBatched(plan.get());
  ASSERT_TRUE(batch_path.ok()) << batch_path.status().ToString();
  plan = build();
  auto col_path = CollectColumnar(plan.get());
  ASSERT_TRUE(col_path.ok()) << col_path.status().ToString();
  EXPECT_EQ(Canon(*row_path), Canon(*batch_path));
  EXPECT_EQ(Canon(*row_path), Canon(*col_path));
  if (expected_rows != SIZE_MAX) {
    EXPECT_EQ(row_path->size(), expected_rows);
  }
}

TEST(ColumnarEquivalenceTest, FilteredScanAgreesAcrossPaths) {
  TestDb db(50);
  ExpectAllPathsAgree(&db, [] {
    return Cmp(Col("weight"), CompareOp::kLt, Lit(Value::Double(6.0)));
  });
  ExpectAllPathsAgree(&db, [] {
    return Cmp(Col("family"), CompareOp::kEq,
               Lit(Value::String("family2")));
  });
  ExpectAllPathsAgree(&db, [] {
    return And(Cmp(Col("weight"), CompareOp::kGe, Lit(Value::Double(3.0))),
               Cmp(Col("family"), CompareOp::kNe,
                   Lit(Value::String("family0"))));
  });
}

TEST(ColumnarEquivalenceTest, NaNAndNegativeZeroAgreeAcrossPaths) {
  StorageManager storage(StorageManager::Backend::kMemory);
  BufferPool pool(&storage, 256);
  Catalog catalog(&storage, &pool);
  Table* table = *catalog.CreateTable(
      "Doubles", Schema({{"x", ValueType::kDouble}}));
  const double values[] = {std::nan(""), -0.0, 0.0, 1.0, -1.0,
                           std::nan("")};
  for (double v : values) {
    ASSERT_TRUE(table->Insert(Tuple({Value::Double(v)})).ok());
  }
  for (CompareOp op : {CompareOp::kGe, CompareOp::kLt, CompareOp::kEq}) {
    auto build = [&] {
      return std::make_unique<SelectOp>(
          std::make_unique<SeqScanOp>(table, nullptr, false),
          Cmp(Col("x"), op, Lit(Value::Double(0.0))));
    };
    auto plan = build();
    auto row_path = CollectOneAtATime(plan.get());
    ASSERT_TRUE(row_path.ok());
    plan = build();
    auto col_path = CollectColumnar(plan.get());
    ASSERT_TRUE(col_path.ok());
    EXPECT_EQ(Canon(*row_path), Canon(*col_path))
        << "op " << static_cast<int>(op);
  }
  // Value::Compare places NaN above every real and equal to itself, and
  // treats -0.0 == 0.0: "x >= 0.0" keeps NaN, both zeros, and 1.0.
  auto plan = std::make_unique<SelectOp>(
      std::make_unique<SeqScanOp>(table, nullptr, false),
      Cmp(Col("x"), CompareOp::kGe, Lit(Value::Double(0.0))));
  auto rows = CollectColumnar(plan.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 5u);
}

// ---------- Three-valued logic ----------

TEST(ThreeValuedLogicTest, NotOfNullComparisonFiltersEverything) {
  // "NOT (name = NULL)" is NOT NULL = NULL, which the filter rejects.
  // The historical bug collapsed the inner NULL to false at the leaf,
  // turning the NOT into TRUE and letting every row through.
  TestDb db(10);
  ExpectAllPathsAgree(
      &db,
      [] {
        return Not(Cmp(Col("name"), CompareOp::kEq, Lit(Value::Null())));
      },
      0);
}

TEST(ThreeValuedLogicTest, NullUnderOrTruePasses) {
  // "(name = NULL) OR true" is true under Kleene logic: the NULL must
  // not poison the disjunction.
  TestDb db(10);
  ExpectAllPathsAgree(
      &db,
      [] {
        return Or(Cmp(Col("name"), CompareOp::kEq, Lit(Value::Null())),
                  Lit(Value::Bool(true)));
      },
      10);
}

TEST(ThreeValuedLogicTest, KleeneTruthTable) {
  const Schema empty;
  Row row;
  auto eval = [&](ExprPtr expr) {
    return expr->Eval(row, empty).ValueOrDie();
  };
  ExprPtr null_cmp =
      Cmp(Lit(Value::Null()), CompareOp::kEq, Lit(Value::Int(1)));
  // NULL AND false = false; NULL AND true = NULL.
  EXPECT_FALSE(eval(And(null_cmp->Clone(), Lit(Value::Bool(false))))
                   .AsBool());
  EXPECT_TRUE(eval(And(null_cmp->Clone(), Lit(Value::Bool(true))))
                  .is_null());
  // NULL OR true = true; NULL OR false = NULL.
  EXPECT_TRUE(eval(Or(null_cmp->Clone(), Lit(Value::Bool(true)))).AsBool());
  EXPECT_TRUE(eval(Or(null_cmp->Clone(), Lit(Value::Bool(false))))
                  .is_null());
  // NOT NULL = NULL.
  EXPECT_TRUE(eval(Not(null_cmp->Clone())).is_null());
  // Short-circuit still wins on a decisive left side.
  EXPECT_FALSE(eval(And(Lit(Value::Bool(false)), null_cmp->Clone()))
                   .AsBool());
  EXPECT_TRUE(eval(Or(Lit(Value::Bool(true)), null_cmp->Clone())).AsBool());
}

// ---------- LIMIT pushdown under parallel plans ----------

TEST(LimitPushdownTest, GatherStopsDrainingOnceLimitSatisfied) {
  TestDb db(3000);
  const PageId total_pages = db.birds->heap_pages();
  ASSERT_GT(total_pages, 8u);

  auto morsels = std::make_shared<MorselSource>(total_pages, 1);
  std::vector<OpPtr> partitions;
  for (size_t w = 0; w < 2; ++w) {
    OpPtr part = std::make_unique<ParallelScanOp>(db.birds, nullptr, false,
                                                  morsels);
    partitions.push_back(std::make_unique<ExchangeOp>(std::move(part), w));
  }
  auto gather =
      std::make_unique<GatherOp>(std::move(partitions), morsels);
  gather->set_limit(10);
  OpPtr plan = std::make_unique<LimitOp>(std::move(gather), 10);
  // A small batch capacity keeps each drain iteration near one page, so
  // the halt lands promptly.
  ExecutionContext ctx(&db.storage, &db.pool, 32);
  plan->AttachContext(&ctx);

  const uint64_t pages_before =
      EngineMetrics::Get().heap_pages_scanned->value();
  auto rows = CollectRows(plan.get());
  const uint64_t pages_scanned =
      EngineMetrics::Get().heap_pages_scanned->value() - pages_before;

  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 10u);
  EXPECT_TRUE(morsels->halted());
  // The regression bound: without the pushdown the drain visits every
  // page; with it, the workers stop after a handful of morsels.
  EXPECT_LT(pages_scanned, total_pages / 2)
      << pages_scanned << " of " << total_pages << " pages";
}

TEST(LimitPushdownTest, HaltedSourceStopsSiblingWorkers) {
  MorselSource morsels(100, 4);
  PageId begin, end;
  ASSERT_TRUE(morsels.Next(&begin, &end));
  morsels.Halt();
  EXPECT_FALSE(morsels.Next(&begin, &end));
  morsels.Reset();
  EXPECT_TRUE(morsels.Next(&begin, &end));
}

}  // namespace
}  // namespace insight
