#include <gtest/gtest.h>

#include "sql/database.h"
#include "sql/parser.h"

namespace insight {
namespace {

// ---------- Parser unit tests ----------

TEST(LexerTest, TokenizesMixedInput) {
  auto tokens = Tokenize("SELECT a, b FROM t WHERE x >= 3.5 AND y = 'it''s'");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 13u);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_TRUE((*tokens)[0].Is("select"));
  // The escaped quote string.
  bool found = false;
  for (const Token& token : *tokens) {
    if (token.type == TokenType::kString) {
      EXPECT_EQ(token.text, "it's");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LexerTest, RejectsUnterminatedString) {
  EXPECT_TRUE(Tokenize("SELECT 'oops").status().IsParseError());
}

TEST(ParserTest, SimpleSelect) {
  auto stmt = ParseStatement("SELECT name, family FROM Birds");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->kind, Statement::Kind::kSelect);
  ASSERT_EQ(stmt->select->items.size(), 2u);
  EXPECT_EQ(stmt->select->items[0].name, "name");
  ASSERT_EQ(stmt->select->from.size(), 1u);
  EXPECT_EQ(stmt->select->from[0].table, "Birds");
}

TEST(ParserTest, SelectWithEverything) {
  auto stmt = ParseStatement(
      "SELECT family, COUNT(*) AS cnt FROM Birds b "
      "WHERE b.weight > 2.5 AND name LIKE 'Swan%' "
      "GROUP BY family ORDER BY family DESC LIMIT 10;");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const SelectStatement& select = *stmt->select;
  EXPECT_EQ(select.from[0].alias, "b");
  ASSERT_NE(select.where, nullptr);
  ASSERT_EQ(select.group_by.size(), 1u);
  ASSERT_EQ(select.order_by.size(), 1u);
  EXPECT_TRUE(select.order_by[0].descending);
  EXPECT_EQ(select.limit, 10u);
  EXPECT_TRUE(select.items[1].is_aggregate);
  EXPECT_EQ(select.items[1].name, "cnt");
}

TEST(ParserTest, SummaryFunctionSyntax) {
  auto expr = ParseExpression(
      "$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 5");
  ASSERT_TRUE(expr.ok()) << expr.status().ToString();
  auto indexable = MatchIndexablePredicate(expr->get());
  ASSERT_TRUE(indexable.has_value());
  EXPECT_EQ(indexable->instance, "ClassBird1");
  EXPECT_EQ(indexable->label, "Disease");
  EXPECT_EQ(indexable->constant, 5);
}

TEST(ParserTest, QualifiedSummaryFunction) {
  auto expr = ParseExpression(
      "v1.$.getSummaryObject('C').getLabelValue('P') <> "
      "v2.$.getSummaryObject('C').getLabelValue('P')");
  ASSERT_TRUE(expr.ok()) << expr.status().ToString();
  const auto* cmp = dynamic_cast<const CompareExpr*>(expr->get());
  ASSERT_NE(cmp, nullptr);
  const auto* lf = dynamic_cast<const SummaryFuncExpr*>(cmp->left());
  ASSERT_NE(lf, nullptr);
  EXPECT_EQ(lf->qualifier(), "v1");
}

TEST(ParserTest, ContainsFunctions) {
  auto expr = ParseExpression(
      "$.getSummaryObject('TextSummary1').containsUnion('Wikipedia', "
      "'hormone')");
  ASSERT_TRUE(expr.ok()) << expr.status().ToString();
  const auto* func = dynamic_cast<const SummaryFuncExpr*>(expr->get());
  ASSERT_NE(func, nullptr);
  EXPECT_EQ(func->kind(), SummaryFuncKind::kContainsUnion);
  EXPECT_EQ(func->keywords().size(), 2u);
}

TEST(ParserTest, DdlStatements) {
  auto create = ParseStatement(
      "CREATE TABLE Birds (name TEXT, family VARCHAR(40), weight DOUBLE)");
  ASSERT_TRUE(create.ok()) << create.status().ToString();
  EXPECT_EQ(create->schema.num_columns(), 3u);
  EXPECT_EQ(create->schema.column(2).type, ValueType::kDouble);

  auto alter = ParseStatement("ALTER TABLE Birds ADD INDEXABLE ClassBird1");
  ASSERT_TRUE(alter.ok());
  EXPECT_EQ(alter->kind, Statement::Kind::kAlterAdd);
  EXPECT_TRUE(alter->indexable);
  EXPECT_EQ(alter->instance, "ClassBird1");

  auto drop = ParseStatement("ALTER TABLE Birds DROP ClassBird1");
  ASSERT_TRUE(drop.ok());
  EXPECT_EQ(drop->kind, Statement::Kind::kAlterDrop);

  auto annotate = ParseStatement(
      "ANNOTATE Birds TUPLE 7 COLUMN name, family WITH 'observed sick'");
  ASSERT_TRUE(annotate.ok()) << annotate.status().ToString();
  EXPECT_EQ(annotate->tuple_oid, 7u);
  EXPECT_EQ(annotate->columns.size(), 2u);
  EXPECT_EQ(annotate->text, "observed sick");

  auto zoom = ParseStatement("ZOOM IN ON Birds TUPLE 3 INSTANCE 'ClassBird1'");
  ASSERT_TRUE(zoom.ok());
  EXPECT_EQ(zoom->kind, Statement::Kind::kZoomIn);
  EXPECT_EQ(zoom->instance, "ClassBird1");
}

TEST(ParserTest, Errors) {
  EXPECT_TRUE(ParseStatement("FROB x").status().IsParseError());
  EXPECT_TRUE(ParseStatement("SELECT FROM t").status().IsParseError());
  EXPECT_TRUE(ParseStatement("SELECT a FROM t WHERE").status().IsParseError());
  EXPECT_TRUE(
      ParseStatement("SELECT a FROM t extra tokens here ,")
          .status()
          .IsParseError());
  EXPECT_TRUE(ParseExpression("$.getWrongFunc()").status().IsParseError());
}

// ---------- End-to-end Database tests ----------

class DatabaseTest : public ::testing::Test {
 protected:
  DatabaseTest() {
    db.Execute("CREATE TABLE Birds (name TEXT, family TEXT, weight DOUBLE)")
        .ValueOrDie();
    db.DefineClassifier(
          "ClassBird1", {"Disease", "Behavior", "Other"},
          {{"diseaseword infection sick", "Disease"},
           {"behaviorword eating foraging", "Behavior"},
           {"otherword comment note", "Other"}})
        .ok();
    SnippetSummarizer::Options snip;
    snip.min_chars = 80;
    snip.max_snippet_chars = 60;
    db.DefineSnippet("TextSummary1", snip).ok();
    db.Execute("ALTER TABLE Birds ADD INDEXABLE ClassBird1").ValueOrDie();
    db.Execute("ALTER TABLE Birds ADD TextSummary1").ValueOrDie();
    for (int i = 0; i < 12; ++i) {
      db.Execute("INSERT INTO Birds VALUES ('bird" + std::to_string(i) +
                 "', 'family" + std::to_string(i % 3) + "', " +
                 std::to_string(1.0 + i * 0.5) + ")")
          .ValueOrDie();
    }
  }

  void Annotate(int oid, const std::string& kind, int n) {
    for (int i = 0; i < n; ++i) {
      db.Execute("ANNOTATE Birds TUPLE " + std::to_string(oid) + " WITH '" +
                 kind + "word note " + std::to_string(i) + "'")
          .ValueOrDie();
    }
  }

  Database db;
};

TEST_F(DatabaseTest, BasicSelect) {
  auto result = db.Execute("SELECT name FROM Birds WHERE family = 'family1'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 4u);
  EXPECT_EQ(result->schema.column(0).name, "name");
}

TEST_F(DatabaseTest, SelectStar) {
  auto result = db.Execute("SELECT * FROM Birds LIMIT 3");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 3u);
  EXPECT_EQ(result->schema.num_columns(), 3u);
}

TEST_F(DatabaseTest, SummarySelectionUsesIndex) {
  Annotate(1, "disease", 4);
  Annotate(2, "disease", 2);
  db.Execute("ANALYZE Birds").ValueOrDie();
  const std::string sql =
      "SELECT name FROM Birds WHERE "
      "$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 3";
  auto plan = db.Explain(sql);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("SummaryIndexScan"), std::string::npos) << *plan;
  auto result = db.Execute(sql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0].at(0).AsString(), "bird0");
}

TEST_F(DatabaseTest, SummaryFunctionInSelectList) {
  Annotate(3, "disease", 5);
  auto result = db.Execute(
      "SELECT name, $.getSummaryObject('ClassBird1')"
      ".getLabelValue('Disease') AS diseases FROM Birds "
      "WHERE $.getSummaryObject('ClassBird1').getLabelValue('Disease') > 0");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0].at(1).AsInt(), 5);
  EXPECT_EQ(result->schema.column(1).name, "diseases");
}

TEST_F(DatabaseTest, SummarySortQuery) {
  Annotate(1, "disease", 2);
  Annotate(2, "disease", 7);
  Annotate(3, "disease", 4);
  auto result = db.Execute(
      "SELECT name FROM Birds WHERE "
      "$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 0 "
      "ORDER BY $.getSummaryObject('ClassBird1').getLabelValue('Disease') "
      "DESC");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 3u);
  EXPECT_EQ(result->rows[0].at(0).AsString(), "bird1");
  EXPECT_EQ(result->rows[1].at(0).AsString(), "bird2");
  EXPECT_EQ(result->rows[2].at(0).AsString(), "bird0");
}

TEST_F(DatabaseTest, AggregationWithSummaries) {
  Annotate(1, "behavior", 3);  // bird0, family0
  Annotate(4, "behavior", 2);  // bird3, family0
  auto result = db.Execute(
      "SELECT family, COUNT(*) AS birds FROM Birds GROUP BY family");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 3u);
  for (const Tuple& row : result->rows) {
    EXPECT_EQ(row.at(1).AsInt(), 4);
  }
}

TEST_F(DatabaseTest, JoinTwoTables) {
  db.Execute("CREATE TABLE Regions (fam TEXT, region TEXT)").ValueOrDie();
  db.Execute("INSERT INTO Regions VALUES ('family0', 'north'), "
             "('family1', 'south'), ('family2', 'east')")
      .ValueOrDie();
  auto result = db.Execute(
      "SELECT name, region FROM Birds, Regions "
      "WHERE family = fam AND region = 'south'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 4u);
  for (const Tuple& row : result->rows) {
    EXPECT_EQ(row.at(1).AsString(), "south");
  }
}

TEST_F(DatabaseTest, SummaryJoinBetweenVersions) {
  // Fig. 16 Q2 shape: two versions joined on id with differing counts.
  db.Execute("CREATE TABLE BirdsV2 (name TEXT, family TEXT, weight DOUBLE)")
      .ValueOrDie();
  db.Execute("ALTER TABLE BirdsV2 ADD ClassBird1").ValueOrDie();
  for (int i = 0; i < 12; ++i) {
    db.Execute("INSERT INTO BirdsV2 VALUES ('bird" + std::to_string(i) +
               "', 'familyX', 1.0)")
        .ValueOrDie();
  }
  Annotate(1, "disease", 2);  // Birds bird0 -> 2.
  db.Execute("ANNOTATE BirdsV2 TUPLE 1 WITH 'diseaseword note'")
      .ValueOrDie();  // V2 bird0 -> 1 (differs).
  Annotate(2, "disease", 1);  // Birds bird1 -> 1.
  db.Execute("ANNOTATE BirdsV2 TUPLE 2 WITH 'diseaseword note'")
      .ValueOrDie();  // V2 bird1 -> 1 (same).

  auto result = db.Execute(
      "SELECT v1.name FROM Birds v1, BirdsV2 v2 "
      "WHERE v1.name = v2.name AND "
      "v1.$.getSummaryObject('ClassBird1').getLabelValue('Disease') <> "
      "v2.$.getSummaryObject('ClassBird1').getLabelValue('Disease')");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0].at(0).AsString(), "bird0");
}

TEST_F(DatabaseTest, ZoomInCommand) {
  Annotate(5, "disease", 2);
  Annotate(5, "behavior", 1);
  auto result = db.Execute("ZOOM IN ON Birds TUPLE 5");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->annotations.size(), 3u);

  // Instance-scoped zoom-in still returns every contributing annotation
  // (classifier objects reference all of them).
  result = db.Execute("ZOOM IN ON Birds TUPLE 5 INSTANCE 'ClassBird1'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->annotations.size(), 3u);
}

TEST_F(DatabaseTest, ZoomInAfterSummaryQueryWorkflow) {
  // The paper's Q1 workflow: summary query, then zoom into a hit.
  Annotate(7, "disease", 3);
  auto hits = db.Execute(
      "SELECT name FROM Birds WHERE "
      "$.getSummaryObject('ClassBird1').getLabelValue('Disease') = 3");
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->rows.size(), 1u);
  auto zoom = db.ZoomIn("Birds", 7);
  ASSERT_TRUE(zoom.ok());
  EXPECT_EQ(zoom->size(), 3u);
  for (const Annotation& ann : *zoom) {
    EXPECT_NE(ann.text.find("diseaseword"), std::string::npos);
  }
}

TEST_F(DatabaseTest, SnippetKeywordSearch) {
  db.Execute(
        "ANNOTATE Birds TUPLE 9 WITH 'Wikipedia hormone study part one. "
        "Wikipedia hormone study part two. Wikipedia hormone part three.'")
      .ValueOrDie();
  auto result = db.Execute(
      "SELECT name FROM Birds WHERE "
      "$.getSummaryObject('TextSummary1').containsUnion('wikipedia', "
      "'hormone')");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0].at(0).AsString(), "bird8");
}

TEST_F(DatabaseTest, DistinctAndOrderByData) {
  auto result = db.Execute(
      "SELECT DISTINCT family FROM Birds ORDER BY family");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 3u);
  EXPECT_EQ(result->rows[0].at(0).AsString(), "family0");
  EXPECT_EQ(result->rows[2].at(0).AsString(), "family2");
}

TEST_F(DatabaseTest, DropInstanceStripsObjects) {
  Annotate(1, "disease", 1);
  db.Execute("ALTER TABLE Birds DROP TextSummary1").ValueOrDie();
  auto result = db.Execute(
      "SELECT name FROM Birds WHERE "
      "$.getSummaryObject('TextSummary1').containsUnion('x')");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rows.empty());
}

TEST_F(DatabaseTest, DeleteTupleCleansUp) {
  Annotate(2, "disease", 2);
  ASSERT_TRUE(db.DeleteTuple("Birds", 2).ok());
  auto result = db.Execute(
      "SELECT name FROM Birds WHERE "
      "$.getSummaryObject('ClassBird1').getLabelValue('Disease') = 2");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rows.empty());
  auto all = db.Execute("SELECT * FROM Birds");
  EXPECT_EQ(all->rows.size(), 11u);
}

TEST_F(DatabaseTest, CreateDataIndexAndUseIt) {
  db.Execute("CREATE INDEX ON Birds (weight)").ValueOrDie();
  db.Execute("ANALYZE Birds").ValueOrDie();
  auto plan = db.Explain("SELECT name FROM Birds WHERE weight = 3.0");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("IndexScan"), std::string::npos) << *plan;
  auto result = db.Execute("SELECT name FROM Birds WHERE weight = 3.0");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 1u);
}

TEST_F(DatabaseTest, ResultToStringRendersTable) {
  auto result = db.Execute("SELECT name, weight FROM Birds LIMIT 2");
  ASSERT_TRUE(result.ok());
  const std::string rendered = result->ToString();
  EXPECT_NE(rendered.find("name"), std::string::npos);
  EXPECT_NE(rendered.find("bird0"), std::string::npos);
  EXPECT_NE(rendered.find("(2 rows)"), std::string::npos);
}

TEST_F(DatabaseTest, ErrorsSurfaceCleanly) {
  EXPECT_TRUE(db.Execute("SELECT x FROM NoSuchTable").status().IsNotFound());
  EXPECT_FALSE(db.Execute("SELECT nocolumn FROM Birds").ok());
  EXPECT_TRUE(db.Execute("gibberish").status().IsParseError());
}

}  // namespace
}  // namespace insight
