#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <unistd.h>
#include <vector>

#include "common/task_scheduler.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sql/database.h"
#include "storage/buffer_pool.h"

namespace insight {
namespace {

std::string TempPath(const std::string& tag) {
  static std::atomic<int> counter{0};
  return ::testing::TempDir() + "/insight_obs_" + tag + "_" +
         std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1));
}

// Every test starts from zeroed global metrics with instrumentation on.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetMetricsEnabled(true);
    MetricsRegistry::Global().ResetAll();
  }
  void TearDown() override { SetMetricsEnabled(true); }

  // A populated plain table big enough for multi-page scans.
  static void FillBirds(Database* db, int rows) {
    Schema schema({{"id", ValueType::kInt64},
                   {"family", ValueType::kString},
                   {"weight", ValueType::kDouble}});
    ASSERT_TRUE(db->CreateTable("Birds", schema).ok());
    for (int i = 0; i < rows; ++i) {
      ASSERT_TRUE(db->Insert("Birds",
                             Tuple({Value::Int(i),
                                    Value::String("family" +
                                                  std::to_string(i % 4)),
                                    Value::Double(i * 0.5)}))
                      .ok());
    }
  }
};

// ---------- Registry units ----------

TEST_F(ObsTest, CounterGaugeHistogramBasics) {
  Counter c;
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);

  Gauge g;
  g.Set(7);
  g.Add(-3);
  EXPECT_EQ(g.value(), 4);

  Histogram h({1.0, 10.0});
  h.Observe(0.5);
  h.Observe(5.0);
  h.Observe(100.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 105.5);
  EXPECT_EQ(h.bucket(0), 1u);  // <= 1
  EXPECT_EQ(h.bucket(1), 1u);  // (1, 10]
  EXPECT_EQ(h.bucket(2), 1u);  // +Inf
}

TEST_F(ObsTest, DisabledPathLeavesCountersUntouched) {
  EngineMetrics& m = EngineMetrics::Get();
  SetMetricsEnabled(false);
  m.bufferpool_hits->Add(10);
  m.wal_durable_lag->Set(99);
  m.query_millis->Observe(5);
  EXPECT_EQ(m.bufferpool_hits->value(), 0u);
  EXPECT_EQ(m.wal_durable_lag->value(), 0);
  EXPECT_EQ(m.query_millis->count(), 0u);
  SetMetricsEnabled(true);
  m.bufferpool_hits->Add(1);
  EXPECT_EQ(m.bufferpool_hits->value(), 1u);
}

TEST_F(ObsTest, DisabledEngineRunsWithoutTouchingAnyMetric) {
  SetMetricsEnabled(false);
  Database db;
  FillBirds(&db, 200);
  auto result = db.Execute("SELECT id FROM Birds WHERE weight < 50.0");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EngineMetrics& m = EngineMetrics::Get();
  EXPECT_EQ(m.bufferpool_hits->value(), 0u);
  EXPECT_EQ(m.bufferpool_misses->value(), 0u);
  EXPECT_EQ(m.heap_pages_scanned->value(), 0u);
  EXPECT_EQ(m.queries_total->value(), 0u);
  EXPECT_EQ(m.query_millis->count(), 0u);
}

TEST_F(ObsTest, PrometheusExposition) {
  MetricsRegistry& r = MetricsRegistry::Global();
  r.GetCounter("obs_test_events_total", "events for the format test")
      ->Add(3);
  r.GetGauge("obs_test_depth", "depth for the format test")->Set(-2);
  Histogram* h =
      r.GetHistogram("obs_test_latency", {1, 10}, "latency for the test");
  h->Observe(0.5);
  h->Observe(5);
  h->Observe(100);
  const std::string text = r.ToPrometheus();
  EXPECT_NE(text.find("# HELP obs_test_events_total events"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_events_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_events_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("obs_test_depth -2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_latency histogram"),
            std::string::npos);
  // Prometheus buckets are cumulative: le="10" counts the le="1" hits too.
  EXPECT_NE(text.find("obs_test_latency_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_latency_bucket{le=\"10\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_latency_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_latency_count 3"), std::string::npos);
  EXPECT_NE(text.find("obs_test_latency_sum 105.5"), std::string::npos);
}

TEST_F(ObsTest, JsonSnapshot) {
  MetricsRegistry& r = MetricsRegistry::Global();
  r.GetCounter("obs_test_json_total", "json test")->Add(7);
  const std::string json = r.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test_json_total\":7"), std::string::npos);
}

// ---------- Ground-truth agreement ----------

TEST_F(ObsTest, BufferPoolCountersMatchNativeStats) {
  Database db;
  FillBirds(&db, 500);
  // Reset both sides at the same point, then run one cold-ish scan.
  db.pool()->ResetStats();
  MetricsRegistry::Global().ResetAll();
  auto result = db.Execute("SELECT id FROM Birds");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 500u);

  const BufferPoolStats native = db.pool()->stats();
  EngineMetrics& m = EngineMetrics::Get();
  EXPECT_GT(native.hits + native.misses, 0u);
  EXPECT_EQ(m.bufferpool_hits->value(), native.hits);
  EXPECT_EQ(m.bufferpool_misses->value(), native.misses);
  EXPECT_EQ(m.bufferpool_evictions->value(), native.evictions);
  EXPECT_EQ(m.bufferpool_writebacks->value(), native.writebacks);
}

TEST_F(ObsTest, HeapPagesScannedMatchesScanCount) {
  Database db;
  FillBirds(&db, 500);
  MetricsRegistry::Global().ResetAll();
  EngineMetrics& m = EngineMetrics::Get();
  ASSERT_TRUE(db.Execute("SELECT id FROM Birds").ok());
  const uint64_t one_scan = m.heap_pages_scanned->value();
  EXPECT_GT(one_scan, 0u);
  // A table of 500 three-column rows spans multiple pages but far fewer
  // than one page per row.
  EXPECT_LT(one_scan, 500u);
  ASSERT_TRUE(db.Execute("SELECT id FROM Birds").ok());
  // A second identical scan touches exactly the same pages again.
  EXPECT_EQ(m.heap_pages_scanned->value(), 2 * one_scan);
}

TEST_F(ObsTest, WalFsyncCountMatchesSyncMode) {
  EngineMetrics& m = EngineMetrics::Get();
  {
    // kEveryOp: every logged operation commits with its own fsync.
    auto db = Database::Open(TempPath("everyop")).ValueOrDie();
    Schema schema({{"id", ValueType::kInt64}});
    ASSERT_TRUE(db->CreateTable("T", schema).ok());
    MetricsRegistry::Global().ResetAll();
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(db->Insert("T", Tuple({Value::Int(i)})).ok());
    }
    EXPECT_EQ(m.wal_appends->value(), 5u);
    EXPECT_EQ(m.wal_fsyncs->value(), 5u);
    EXPECT_GT(m.wal_append_bytes->value(), 0u);
    // Everything appended is durable.
    EXPECT_EQ(m.wal_durable_lag->value(), 0);
  }
  {
    // kNever: appends only, no forced syncs.
    Database::Options options;
    options.wal_sync = Database::WalSyncMode::kNever;
    auto db = Database::Open(TempPath("never"), options).ValueOrDie();
    Schema schema({{"id", ValueType::kInt64}});
    ASSERT_TRUE(db->CreateTable("T", schema).ok());
    MetricsRegistry::Global().ResetAll();
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(db->Insert("T", Tuple({Value::Int(i)})).ok());
    }
    EXPECT_EQ(m.wal_appends->value(), 5u);
    EXPECT_EQ(m.wal_fsyncs->value(), 0u);
    // One explicit barrier syncs the whole tail at once.
    ASSERT_TRUE(db->WalSync().ok());
    EXPECT_EQ(m.wal_fsyncs->value(), 1u);
    EXPECT_EQ(m.wal_durable_lag->value(), 0);
  }
}

TEST_F(ObsTest, SchedulerCountersCountEveryTask) {
  TaskScheduler scheduler(2);
  MetricsRegistry::Global().ResetAll();
  EngineMetrics& m = EngineMetrics::Get();
  std::atomic<int> ran{0};
  std::vector<TaskScheduler::Task> tasks;
  for (int i = 0; i < 50; ++i) {
    tasks.push_back([&ran] { ran.fetch_add(1); });
  }
  scheduler.RunAndWait(std::move(tasks));
  EXPECT_EQ(ran.load(), 50);
  EXPECT_EQ(m.scheduler_submits->value(), 50u);
  // Every submitted task left a queue through PopBack or StealFront.
  EXPECT_EQ(m.scheduler_tasks_run->value(), 50u);
  EXPECT_LE(m.scheduler_steals->value(), 50u);
  EXPECT_EQ(m.scheduler_queue_depth->value(), 0);
}

// ---------- Query-layer observability ----------

TEST_F(ObsTest, ExplainAnalyzeShowsEstimatesAndQError) {
  Database db;
  FillBirds(&db, 200);
  ASSERT_TRUE(db.Analyze("Birds").ok());
  auto plan = db.ExplainAnalyze("SELECT id FROM Birds WHERE weight < 50.0");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("est="), std::string::npos) << *plan;
  EXPECT_NE(plan->find("actual="), std::string::npos) << *plan;
  EXPECT_NE(plan->find("q-err="), std::string::npos) << *plan;
}

TEST_F(ObsTest, QueryCountersAndQErrorHistogram) {
  Database db;
  FillBirds(&db, 200);
  ASSERT_TRUE(db.Analyze("Birds").ok());
  MetricsRegistry::Global().ResetAll();
  EngineMetrics& m = EngineMetrics::Get();
  ASSERT_TRUE(db.Execute("SELECT id FROM Birds").ok());
  ASSERT_TRUE(db.Execute("SELECT id FROM Birds WHERE weight < 10.0").ok());
  EXPECT_EQ(m.queries_total->value(), 2u);
  EXPECT_EQ(m.query_millis->count(), 2u);
  // Each executed plan reported at least one per-operator q-error sample.
  EXPECT_GE(m.plan_qerror->count(), 2u);
}

TEST_F(ObsTest, SlowQueryLogCapturesPlan) {
  Database db;
  FillBirds(&db, 200);
  db.slow_query_log()->set_threshold_ms(0);  // Every query is "slow".
  MetricsRegistry::Global().ResetAll();
  const std::string sql = "SELECT id FROM Birds WHERE weight < 50.0";
  ASSERT_TRUE(db.Execute(sql).ok());
  ASSERT_EQ(db.slow_query_log()->size(), 1u);
  const QueryTrace trace = db.slow_query_log()->Snapshot()[0];
  EXPECT_EQ(trace.statement, sql);
  EXPECT_FALSE(trace.spans.empty());
  EXPECT_NE(trace.plan.find("rows="), std::string::npos) << trace.plan;
  EXPECT_EQ(EngineMetrics::Get().slow_queries_total->value(), 1u);

  // Capacity bounds the ring.
  db.slow_query_log()->set_capacity(2);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(db.Execute(sql).ok());
  EXPECT_EQ(db.slow_query_log()->size(), 2u);
}

TEST_F(ObsTest, QErrorDefinition) {
  EXPECT_DOUBLE_EQ(QError(10, 10), 1.0);
  EXPECT_DOUBLE_EQ(QError(10, 100), 10.0);
  EXPECT_DOUBLE_EQ(QError(100, 10), 10.0);
  // Floored at 1 row on both sides: empty results stay finite.
  EXPECT_DOUBLE_EQ(QError(0, 50), 50.0);
  EXPECT_DOUBLE_EQ(QError(50, 0), 50.0);
  EXPECT_DOUBLE_EQ(QError(0, 0), 1.0);
}

TEST_F(ObsTest, CardinalityFeedbackTriggersReanalyze) {
  Database db;
  // Histogram tier only: the online sketches would keep the estimate
  // fresh and the feedback loop (under test here) would never trigger.
  db.optimizer_options().use_sketch_statistics = false;
  FillBirds(&db, 10);
  ASSERT_TRUE(db.Analyze("Birds").ok());
  // Grow the table 50x behind the statistics' back: the next scan's
  // estimate is off by ~50, past the feedback threshold.
  for (int i = 10; i < 500; ++i) {
    ASSERT_TRUE(db.Insert("Birds",
                          Tuple({Value::Int(i), Value::String("familyX"),
                                 Value::Double(i * 0.5)}))
                    .ok());
  }
  db.optimizer_options().feedback_qerror_threshold = 5.0;
  ASSERT_TRUE(db.Execute("SELECT id FROM Birds").ok());
  const RelationInfo* info = *db.context()->Get("Birds");
  EXPECT_GE(info->worst_qerror, 5.0);
  EXPECT_TRUE(info->needs_analyze);
  // The next statement's RefreshStats upgrades to a full ANALYZE.
  ASSERT_TRUE(db.Execute("SELECT id FROM Birds").ok());
  info = *db.context()->Get("Birds");
  EXPECT_FALSE(info->needs_analyze);
  ASSERT_TRUE(info->stats.has_value());
  EXPECT_EQ(info->stats->num_rows, 500u);
}

TEST_F(ObsTest, FeedbackDisabledByDefaultDoesNotReanalyze) {
  Database db;
  // Histogram tier only, so the stale estimate shows up as a q-error.
  db.optimizer_options().use_sketch_statistics = false;
  FillBirds(&db, 10);
  ASSERT_TRUE(db.Analyze("Birds").ok());
  for (int i = 10; i < 500; ++i) {
    ASSERT_TRUE(db.Insert("Birds",
                          Tuple({Value::Int(i), Value::String("familyX"),
                                 Value::Double(i * 0.5)}))
                    .ok());
  }
  ASSERT_TRUE(db.Execute("SELECT id FROM Birds").ok());
  const RelationInfo* info = *db.context()->Get("Birds");
  // The q-error is still recorded for diagnostics, but nothing is flagged.
  EXPECT_GT(info->worst_qerror, 1.0);
  EXPECT_FALSE(info->needs_analyze);
  ASSERT_TRUE(db.Execute("SELECT id FROM Birds").ok());
  info = *db.context()->Get("Birds");
  ASSERT_TRUE(info->stats.has_value());
  EXPECT_EQ(info->stats->num_rows, 10u);  // Stale, by design.
}

TEST_F(ObsTest, DumpMetricsExposesEverySubsystem) {
  Database db;
  FillBirds(&db, 100);
  ASSERT_TRUE(db.Execute("SELECT id FROM Birds").ok());
  const std::string text = db.DumpMetrics();
  for (const char* name :
       {"insight_bufferpool_hits_total", "insight_bufferpool_misses_total",
        "insight_wal_fsyncs_total", "insight_scheduler_tasks_run_total",
        "insight_sbtree_probes_total", "insight_btree_probes_total",
        "insight_heap_pages_scanned_total", "insight_queries_total",
        "insight_query_millis", "insight_plan_qerror",
        "insight_scan_pages_skipped_total", "insight_zonemap_widenings_total",
        "insight_zonemap_stale_marks_total",
        "insight_zonemap_page_rebuilds_total"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  const std::string json = db.DumpMetricsJson();
  EXPECT_NE(json.find("\"insight_queries_total\""), std::string::npos);
}

}  // namespace
}  // namespace insight
