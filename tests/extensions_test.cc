// Tests for the extensions beyond the paper's core: the hash join
// operator, the snippet keyword index, and their optimizer integration.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "engine_test_util.h"
#include "optimizer/optimizer.h"
#include "sindex/keyword_index.h"
#include "sql/database.h"

namespace insight {
namespace {

// ---------- HashJoinOp ----------

class HashJoinTest : public ::testing::Test {
 protected:
  HashJoinTest() : db(12) {
    families = *db.catalog.CreateTable(
        "Fam", Schema({{"fam", ValueType::kString},
                       {"region", ValueType::kString}}));
    for (int i = 0; i < 4; ++i) {
      families
          ->Insert(Tuple({Value::String("family" + std::to_string(i)),
                          Value::String(i % 2 == 0 ? "north" : "south")}))
          .status();
    }
  }

  TestDb db;
  Table* families;
};

TEST_F(HashJoinTest, MatchesNestedLoopResults) {
  db.Annotate(1, "disease", 2);
  auto nl_rows = [&] {
    NestedLoopJoinOp join(
        db.Scan(true), std::make_unique<SeqScanOp>(families, nullptr, false),
        Cmp(Col("family"), CompareOp::kEq, Col("fam")));
    return CollectRows(&join).ValueOrDie();
  }();
  auto hash_rows = [&] {
    HashJoinOp join(db.Scan(true),
                    std::make_unique<SeqScanOp>(families, nullptr, false),
                    "family", "fam", nullptr);
    return CollectRows(&join).ValueOrDie();
  }();
  ASSERT_EQ(nl_rows.size(), hash_rows.size());
  auto render = [](std::vector<Row> rows) {
    std::vector<std::string> out;
    for (const Row& row : rows) {
      out.push_back(row.data.ToString() + row.summaries.ToString());
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(render(nl_rows), render(hash_rows));
}

TEST_F(HashJoinTest, PreservesProbeSideOrder) {
  HashJoinOp join(db.Scan(false),
                  std::make_unique<SeqScanOp>(families, nullptr, false),
                  "family", "fam", nullptr);
  auto rows = CollectRows(&join).ValueOrDie();
  ASSERT_EQ(rows.size(), 12u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].data.at(0).AsString(), "bird" + std::to_string(i));
  }
}

TEST_F(HashJoinTest, ResidualPredicateFilters) {
  HashJoinOp join(db.Scan(false),
                  std::make_unique<SeqScanOp>(families, nullptr, false),
                  "family", "fam",
                  Cmp(Col("region"), CompareOp::kEq,
                      Lit(Value::String("north"))));
  auto rows = CollectRows(&join).ValueOrDie();
  EXPECT_EQ(rows.size(), 6u);  // Families 0, 2 -> 3 birds each.
}

TEST_F(HashJoinTest, NullKeysNeverJoin) {
  Table* nully = *db.catalog.CreateTable(
      "Nully", Schema({{"k", ValueType::kString}}));
  nully->Insert(Tuple({Value::Null()})).status();
  nully->Insert(Tuple({Value::String("family1")})).status();
  HashJoinOp join(std::make_unique<SeqScanOp>(nully, nullptr, false),
                  std::make_unique<SeqScanOp>(families, nullptr, false),
                  "k", "fam", nullptr);
  auto rows = CollectRows(&join).ValueOrDie();
  EXPECT_EQ(rows.size(), 1u);
}

TEST_F(HashJoinTest, OptimizerPicksHashJoinWithoutInnerIndex) {
  QueryContext ctx(&db.catalog, &db.storage, &db.pool);
  ctx.RegisterRelation(db.birds, db.mgr.get()).ok();
  ctx.RegisterRelation(families, nullptr).ok();
  Optimizer opt(&ctx, OptimizerOptions{});
  LogicalPtr plan = LJoin(LScan("Birds"), LScan("Fam", false),
                          Cmp(Col("family"), CompareOp::kEq, Col("fam")));
  auto op = opt.Optimize(plan->Clone());
  ASSERT_TRUE(op.ok());
  EXPECT_NE((*op)->ExplainTree().find("HashJoin"), std::string::npos)
      << (*op)->ExplainTree();

  OptimizerOptions no_hash;
  no_hash.enable_hash_join = false;
  Optimizer opt2(&ctx, no_hash);
  auto op2 = opt2.Optimize(std::move(plan));
  ASSERT_TRUE(op2.ok());
  EXPECT_NE((*op2)->ExplainTree().find("NestedLoopJoin"), std::string::npos);
}

// ---------- SnippetKeywordIndex ----------

class KeywordIndexTest : public ::testing::Test {
 protected:
  KeywordIndexTest() : db(10) {
    index = std::move(SnippetKeywordIndex::Create(
                          &db.storage, &db.pool, db.mgr.get(),
                          "TextSummary1", SnippetKeywordIndex::Options{}))
                .ValueOrDie();
  }

  // Long enough (>80 chars, TestDb snippet threshold) to get a snippet.
  void AddLong(Oid oid, const std::string& sentence) {
    std::string text;
    while (text.size() <= 85) text += sentence + " ";
    db.mgr->AddAnnotation(text, {{oid, CellMask(0)}}).ValueOrDie();
  }

  TestDb db;
  std::unique_ptr<SnippetKeywordIndex> index;
};

TEST_F(KeywordIndexTest, RejectsNonSnippetInstances) {
  auto result = SnippetKeywordIndex::Create(&db.storage, &db.pool,
                                            db.mgr.get(), "ClassBird1",
                                            SnippetKeywordIndex::Options{});
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(KeywordIndexTest, SearchFindsWholeWords) {
  AddLong(1, "the heron swallowed a stonewort shoot.");
  AddLong(2, "wikipedia hormone article for swans.");
  auto hits = index->Search("stonewort");
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(*hits, std::vector<Oid>{1});
  EXPECT_TRUE(index->Search("stone")->empty());  // Not a whole word.
  EXPECT_EQ(index->Search("WIKIPEDIA")->size(), 1u);  // Case-insensitive.
}

TEST_F(KeywordIndexTest, SearchAllIntersectsPostings) {
  AddLong(1, "wikipedia article about swans.");
  AddLong(2, "hormone study on herons.");
  AddLong(3, "wikipedia hormone survey combined.");
  auto hits = index->SearchAll({"wikipedia", "hormone"});
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(*hits, std::vector<Oid>{3});
  EXPECT_TRUE(index->SearchAll({"wikipedia", "penguin"})->empty());
  EXPECT_TRUE(index->SearchAll({})->empty());
}

TEST_F(KeywordIndexTest, MaintainedOnRemovalAndTupleDelete) {
  AddLong(4, "unique keyword zanzibar appears here.");
  ASSERT_EQ(index->Search("zanzibar")->size(), 1u);
  // Find the annotation and remove it.
  auto anns = db.annotations->ForTuple(4).ValueOrDie();
  ASSERT_EQ(anns.size(), 1u);
  ASSERT_TRUE(db.mgr->RemoveAnnotation(anns[0].id).ok());
  EXPECT_TRUE(index->Search("zanzibar")->empty());

  AddLong(5, "another keyword quagga appears.");
  ASSERT_TRUE(db.mgr->OnTupleDeleted(5).ok());
  EXPECT_TRUE(index->Search("quagga")->empty());
}

TEST_F(KeywordIndexTest, BulkBuildMatchesIncremental) {
  AddLong(1, "alpha beta gamma words.");
  AddLong(2, "beta delta words.");
  auto bulk = std::move(SnippetKeywordIndex::Create(
                            &db.storage, &db.pool, db.mgr.get(),
                            "TextSummary1",
                            SnippetKeywordIndex::Options{}))
                  .ValueOrDie();
  EXPECT_EQ(*bulk->Search("beta"), *index->Search("beta"));
  EXPECT_EQ(*bulk->Search("alpha"), *index->Search("alpha"));
}

TEST_F(KeywordIndexTest, ScanOperatorFetchesTuples) {
  AddLong(3, "searchable snippet with osprey keyword.");
  KeywordIndexScanOp scan(index.get(), {"osprey"}, db.mgr.get(), true);
  auto rows = CollectRows(&scan).ValueOrDie();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].oid, 3u);
  EXPECT_FALSE(rows[0].summaries.empty());
}

// ---------- End-to-end through SQL ----------

TEST(KeywordIndexSqlTest, IndexableSnippetInstanceUsedByPlanner) {
  Database db;
  db.Execute("CREATE TABLE Docs (title TEXT)").ValueOrDie();
  SnippetSummarizer::Options snip;
  snip.min_chars = 60;
  snip.max_snippet_chars = 200;
  db.DefineSnippet("TextSummary1", snip).ok();
  db.Execute("ALTER TABLE Docs ADD INDEXABLE TextSummary1").ValueOrDie();
  for (int i = 0; i < 30; ++i) {
    db.Execute("INSERT INTO Docs VALUES ('doc" + std::to_string(i) + "')")
        .ValueOrDie();
  }
  db.Execute("ANNOTATE Docs TUPLE 7 WITH 'A wikipedia hormone study that "
             "is long enough to be summarized into a snippet object.'")
      .ValueOrDie();
  db.Execute("ANNOTATE Docs TUPLE 9 WITH 'A wikipedia entry about cranes "
             "that is long enough to be summarized into a snippet.'")
      .ValueOrDie();
  db.Execute("ANALYZE Docs").ValueOrDie();

  const std::string sql =
      "SELECT title FROM Docs WHERE "
      "$.getSummaryObject('TextSummary1').containsUnion('wikipedia', "
      "'hormone')";
  auto plan = db.Explain(sql).ValueOrDie();
  EXPECT_NE(plan.find("KeywordIndexScan"), std::string::npos) << plan;
  auto result = db.Execute(sql).ValueOrDie();
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].at(0).AsString(), "doc6");

  // containsSingle keeps a residual re-check above the scan.
  const std::string single_sql =
      "SELECT title FROM Docs WHERE "
      "$.getSummaryObject('TextSummary1').containsSingle('wikipedia', "
      "'cranes')";
  auto single_plan = db.Explain(single_sql).ValueOrDie();
  EXPECT_NE(single_plan.find("KeywordIndexScan"), std::string::npos)
      << single_plan;
  EXPECT_NE(single_plan.find("SummarySelect"), std::string::npos)
      << single_plan;
  auto single = db.Execute(single_sql).ValueOrDie();
  ASSERT_EQ(single.rows.size(), 1u);
  EXPECT_EQ(single.rows[0].at(0).AsString(), "doc8");
}

TEST(KeywordIndexSqlTest, ClusterIndexableIsRejected) {
  Database db;
  db.Execute("CREATE TABLE T (x TEXT)").ValueOrDie();
  db.DefineCluster("Clust").ok();
  EXPECT_EQ(db.Execute("ALTER TABLE T ADD INDEXABLE Clust").status().code(),
            StatusCode::kNotImplemented);
  // Non-indexable linking still works.
  EXPECT_TRUE(db.Execute("ALTER TABLE T ADD Clust").ok());
}


TEST(KeywordIndexSqlTest, DropAndRelinkIndexableInstance) {
  Database db;
  db.Execute("CREATE TABLE T (x TEXT)").ValueOrDie();
  db.DefineClassifier("C", {"A", "B"},
                      {{"aword aword", "A"}, {"bword bword", "B"}})
      .ok();
  db.Execute("ALTER TABLE T ADD INDEXABLE C").ValueOrDie();
  db.Execute("INSERT INTO T VALUES ('t1')").ValueOrDie();
  db.Execute("ANNOTATE T TUPLE 1 WITH 'aword note'").ValueOrDie();
  db.Execute("ALTER TABLE T DROP C").ValueOrDie();
  // Re-link as indexable: must not collide with the dropped index's file.
  db.Execute("ALTER TABLE T ADD INDEXABLE C").ValueOrDie();
  db.Execute("ANNOTATE T TUPLE 1 WITH 'aword again'").ValueOrDie();
  auto result = db.Execute(
      "SELECT x FROM T WHERE "
      "$.getSummaryObject('C').getLabelValue('A') = 1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 1u);
}

}  // namespace
}  // namespace insight
