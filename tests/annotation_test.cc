#include <gtest/gtest.h>

#include "annotation/annotation_store.h"
#include "index/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/storage_manager.h"

namespace insight {
namespace {

class AnnotationStoreTest : public ::testing::Test {
 protected:
  AnnotationStoreTest()
      : storage_(StorageManager::Backend::kMemory),
        pool_(&storage_, 512),
        catalog_(&storage_, &pool_) {
    store_ = *AnnotationStore::Create(&catalog_, "Birds", 4);
  }

  StorageManager storage_;
  BufferPool pool_;
  Catalog catalog_;
  std::unique_ptr<AnnotationStore> store_;
};

TEST_F(AnnotationStoreTest, MaskHelpers) {
  EXPECT_EQ(CellMask(0), 1u);
  EXPECT_EQ(CellMask(3), 8u);
  EXPECT_EQ(RowMask(4), 0xFu);
  EXPECT_EQ(RowMask(64), ~0ULL);
}

TEST_F(AnnotationStoreTest, AddAndGetText) {
  auto id = store_->Add("found eating stonewort",
                        {{1, CellMask(1)}});
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*store_->GetText(*id), "found eating stonewort");
  EXPECT_EQ(store_->num_annotations(), 1u);
}

TEST_F(AnnotationStoreTest, RejectsInvalidTargets) {
  EXPECT_TRUE(store_->Add("x", {}).status().IsInvalidArgument());
  EXPECT_TRUE(store_->Add("x", {{kInvalidOid, 1}}).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(store_->Add("x", {{1, 0}}).status().IsInvalidArgument());
  // Mask bit beyond the 4 columns of this relation.
  EXPECT_TRUE(store_->Add("x", {{1, CellMask(5)}}).status()
                  .IsInvalidArgument());
}

TEST_F(AnnotationStoreTest, ZoomInForTuple) {
  store_->Add("a1 on tuple 1", {{1, CellMask(0)}}).status();
  store_->Add("a2 on tuple 1 and 2", {{1, CellMask(1)}, {2, RowMask(4)}})
      .status();
  store_->Add("a3 on tuple 2", {{2, CellMask(2)}}).status();

  auto anns = store_->ForTuple(1);
  ASSERT_TRUE(anns.ok());
  ASSERT_EQ(anns->size(), 2u);

  anns = store_->ForTuple(2);
  ASSERT_TRUE(anns.ok());
  EXPECT_EQ(anns->size(), 2u);

  anns = store_->ForTuple(99);
  ASSERT_TRUE(anns.ok());
  EXPECT_TRUE(anns->empty());
}

TEST_F(AnnotationStoreTest, MaskForAndTuplesFor) {
  AnnId id = *store_->Add("multi-cell", {{1, CellMask(0) | CellMask(2)},
                                         {3, CellMask(1)}});
  EXPECT_EQ(*store_->MaskFor(id, 1), CellMask(0) | CellMask(2));
  EXPECT_EQ(*store_->MaskFor(id, 3), CellMask(1));
  EXPECT_EQ(*store_->MaskFor(id, 2), 0u);

  auto tuples = store_->TuplesFor(id);
  ASSERT_TRUE(tuples.ok());
  EXPECT_EQ(tuples->size(), 2u);
}

TEST_F(AnnotationStoreTest, DeleteRemovesTextAndLinks) {
  AnnId id = *store_->Add("temp", {{1, CellMask(0)}, {2, CellMask(0)}});
  ASSERT_TRUE(store_->Delete(id).ok());
  EXPECT_TRUE(store_->GetText(id).status().IsNotFound());
  EXPECT_TRUE(store_->ForTuple(1)->empty());
  EXPECT_TRUE(store_->ForTuple(2)->empty());
  EXPECT_EQ(store_->num_annotations(), 0u);
}

TEST_F(AnnotationStoreTest, LargeAnnotationTextSurvives) {
  // The paper's annotations run up to 8,000 characters.
  std::string big(8000, 'b');
  AnnId id = *store_->Add(big, {{1, RowMask(4)}});
  EXPECT_EQ(*store_->GetText(id), big);
}

TEST_F(AnnotationStoreTest, StorageBytesGrow) {
  const uint64_t before = store_->storage_bytes();
  for (int i = 0; i < 200; ++i) {
    store_->Add(std::string(500, 'a'), {{static_cast<Oid>(i + 1), 1}})
        .status();
  }
  EXPECT_GT(store_->storage_bytes(), before);
}

}  // namespace
}  // namespace insight
