#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "engine_test_util.h"
#include "optimizer/query_context.h"
#include "optimizer/statistics.h"

namespace insight {
namespace {

class StatisticsTest : public ::testing::Test {
 protected:
  StatisticsTest() : db(20) {
    // Deterministic counts: bird i gets i disease annotations (i in 1..8),
    // birds 9+ stay un-annotated.
    for (int i = 1; i <= 8; ++i) {
      db.Annotate(static_cast<Oid>(i), "disease", i);
    }
  }

  TestDb db;
};

TEST_F(StatisticsTest, RowAndAnnotationCounts) {
  TableStats stats = AnalyzeTable(db.birds, db.mgr.get()).ValueOrDie();
  EXPECT_EQ(stats.num_rows, 20u);
  EXPECT_EQ(stats.annotated_rows, 8u);
  EXPECT_GT(stats.avg_summary_blob_size, 0.0);
  EXPECT_GT(stats.heap_pages, 0u);
}

TEST_F(StatisticsTest, LabelStatsReflectDistribution) {
  TableStats stats = AnalyzeTable(db.birds, db.mgr.get()).ValueOrDie();
  const auto& inst = stats.instances.at("classbird1");
  EXPECT_EQ(inst.num_objects, 8u);
  EXPECT_GT(inst.avg_object_size, 0.0);
  const LabelStats& disease = inst.labels.at("disease");
  EXPECT_EQ(disease.min, 1);
  EXPECT_EQ(disease.max, 8);
  EXPECT_EQ(disease.num_distinct, 8u);
  // Behavior label: all-zero across the 8 annotated birds.
  const LabelStats& behavior = inst.labels.at("behavior");
  EXPECT_EQ(behavior.min, 0);
  EXPECT_EQ(behavior.max, 0);
  EXPECT_EQ(behavior.num_distinct, 1u);
}

TEST_F(StatisticsTest, LabelSelectivityEstimates) {
  TableStats stats = AnalyzeTable(db.birds, db.mgr.get()).ValueOrDie();
  // Exactly one bird has count 5: selectivity 1/20.
  const double eq = stats.EstimateLabelSelectivity("ClassBird1", "Disease",
                                                   CompareOp::kEq, 5);
  EXPECT_NEAR(eq, 1.0 / 20, 0.06);
  // count > 4: birds 5..8 qualify -> 4/20.
  const double gt = stats.EstimateLabelSelectivity("ClassBird1", "Disease",
                                                   CompareOp::kGt, 4);
  EXPECT_NEAR(gt, 4.0 / 20, 0.08);
  // Impossible value.
  EXPECT_NEAR(stats.EstimateLabelSelectivity("ClassBird1", "Disease",
                                             CompareOp::kGt, 100),
              0.0, 1e-9);
  // Unknown instance/label.
  EXPECT_EQ(stats.EstimateLabelSelectivity("Nope", "Disease",
                                           CompareOp::kEq, 1),
            0.0);
  EXPECT_EQ(stats.EstimateLabelSelectivity("ClassBird1", "Nope",
                                           CompareOp::kEq, 1),
            0.0);
}

TEST_F(StatisticsTest, ColumnStats) {
  TableStats stats = AnalyzeTable(db.birds, db.mgr.get()).ValueOrDie();
  // 4 distinct families over 20 birds.
  EXPECT_EQ(stats.ColumnDistinct("family"), 4u);
  const double eq = stats.EstimateColumnSelectivity(
      "family", CompareOp::kEq, Value::String("family1"));
  EXPECT_NEAR(eq, 0.25, 0.01);
  // Numeric column: weights 1.0 + i*0.25 truncate to ints 1..5;
  // range (<= 2) covers weights 1.0..2.75 = 8 of 20 rows at int
  // granularity (truncated values 1 and 2).
  const double range = stats.EstimateColumnSelectivity(
      "weight", CompareOp::kLe, Value::Double(2.0));
  EXPECT_GT(range, 0.15);
  EXPECT_LT(range, 0.6);
  // Unknown column falls back.
  EXPECT_NEAR(stats.EstimateColumnSelectivity("nope", CompareOp::kEq,
                                              Value::Int(1)),
              1.0 / 3, 1e-9);
}

TEST_F(StatisticsTest, PlainTableWithoutManager) {
  Table* plain = *db.catalog.CreateTable(
      "Plain", Schema({{"x", ValueType::kInt64}}));
  for (int i = 0; i < 10; ++i) {
    plain->Insert(Tuple({Value::Int(i % 3)})).status();
  }
  TableStats stats = AnalyzeTable(plain, nullptr).ValueOrDie();
  EXPECT_EQ(stats.num_rows, 10u);
  EXPECT_EQ(stats.annotated_rows, 0u);
  EXPECT_TRUE(stats.instances.empty());
  EXPECT_EQ(stats.ColumnDistinct("x"), 3u);
}

// The cost model's core claim, validated against real buffer-pool I/O:
// an index plan touches far fewer pages than a scan plan.
TEST_F(StatisticsTest, IndexPlanDoesLessIoThanScanPlan) {
  // A bigger corpus so the difference is unambiguous.
  TestDb big(300);
  for (int i = 1; i <= 300; ++i) {
    big.Annotate(static_cast<Oid>(i), "disease", (i % 7));
  }
  auto sbt = std::move(SummaryBTree::Create(&big.storage, &big.pool,
                                            big.mgr.get(), "ClassBird1",
                                            SummaryBTree::Options{}))
                 .ValueOrDie();

  auto run_scan = [&] {
    SummarySelectOp select(
        big.Scan(false), Cmp(LabelValue("ClassBird1", "Disease"),
                             CompareOp::kEq, Lit(Value::Int(6))));
    // Must propagate for the predicate to see summaries.
    SummarySelectOp select2(
        big.Scan(true), Cmp(LabelValue("ClassBird1", "Disease"),
                            CompareOp::kEq, Lit(Value::Int(6))));
    return CollectRows(&select2).ValueOrDie().size();
  };
  auto run_index = [&] {
    SummaryIndexScanOp scan(sbt.get(),
                            ClassifierProbe::Equal("Disease", 6),
                            big.mgr.get(), true);
    return CollectRows(&scan).ValueOrDie().size();
  };

  big.pool.ResetStats();
  const size_t scan_rows = run_scan();
  const uint64_t scan_reads = big.pool.stats().logical_reads();
  big.pool.ResetStats();
  const size_t index_rows = run_index();
  const uint64_t index_reads = big.pool.stats().logical_reads();

  EXPECT_EQ(scan_rows, index_rows);
  EXPECT_GT(scan_rows, 0u);
  EXPECT_LT(index_reads, scan_reads / 2)
      << "index " << index_reads << " vs scan " << scan_reads;
}


// Section 5.2: statistics are maintained whenever a summary object is
// updated — after one ANALYZE, later annotation arrivals are visible to
// the planner without re-analyzing.
TEST(LiveStatisticsTest, UpdatesVisibleWithoutReanalyze) {
  TestDb db(30);
  QueryContext ctx(&db.catalog, &db.storage, &db.pool);
  (void)ctx.RegisterRelation(db.birds, db.mgr.get());
  ASSERT_TRUE(ctx.Analyze("Birds").ok());

  // Initially nothing is annotated: selectivity of Disease = 3 is 0.
  (void)ctx.RefreshStats("Birds");
  const TableStats* stats = &*(*ctx.Get("Birds"))->stats;
  EXPECT_EQ(stats->EstimateLabelSelectivity("ClassBird1", "Disease",
                                            CompareOp::kEq, 3),
            0.0);

  // Annotate AFTER the analyze; live maintenance tracks it.
  for (int i = 1; i <= 6; ++i) {
    db.Annotate(static_cast<Oid>(i), "disease", 3);
  }
  (void)ctx.RefreshStats("Birds");
  stats = &*(*ctx.Get("Birds"))->stats;
  EXPECT_NEAR(stats->EstimateLabelSelectivity("ClassBird1", "Disease",
                                              CompareOp::kEq, 3),
              6.0 / 30, 0.05);
  EXPECT_EQ(stats->annotated_rows, 6u);

  // Removing effects is tracked too (tuple deletion).
  ASSERT_TRUE(db.mgr->OnTupleDeleted(1).ok());
  (void)ctx.RefreshStats("Birds");
  stats = &*(*ctx.Get("Birds"))->stats;
  EXPECT_EQ(stats->annotated_rows, 5u);
  EXPECT_NEAR(stats->EstimateLabelSelectivity("ClassBird1", "Disease",
                                              CompareOp::kEq, 3),
              5.0 / 30, 0.05);
}

TEST(LiveStatisticsTest, SeedMatchesFullAnalyze) {
  TestDb db(20);
  for (int i = 1; i <= 8; ++i) db.Annotate(static_cast<Oid>(i), "disease", i);
  // Full analyze.
  TableStats full = AnalyzeTable(db.birds, db.mgr.get()).ValueOrDie();
  // Live seed + fold into a fresh stats object.
  LiveLabelStatistics live(db.mgr.get());
  ASSERT_TRUE(live.SeedFrom(db.mgr.get()).ok());
  TableStats folded = AnalyzeTable(db.birds, nullptr).ValueOrDie();
  live.FoldInto(&folded);
  const auto& a = full.instances.at("classbird1").labels.at("disease");
  const auto& b = folded.instances.at("classbird1").labels.at("disease");
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.num_distinct, b.num_distinct);
  EXPECT_EQ(full.annotated_rows, folded.annotated_rows);
}

// ---- Histogram overflow / degenerate-width regressions ----
// The bucket width used to be computed as int64 `max - min + 1`, which is
// signed-overflow UB (and wraps to width <= 0) whenever the value domain
// spans more than half the int64 range.

TEST(HistogramEdgeCaseTest, FullInt64SpanDoesNotOverflow) {
  const int64_t kMin = std::numeric_limits<int64_t>::min();
  const int64_t kMax = std::numeric_limits<int64_t>::max();
  EquiWidthHistogram h = EquiWidthHistogram::Build({kMin, -1, 0, 1, kMax});
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.min(), kMin);
  EXPECT_EQ(h.max(), kMax);
  // Every value must have landed in some bucket: the whole-domain range
  // estimate recovers the full count.
  const double all = h.EstimateRange(kMin, kMax);
  EXPECT_TRUE(std::isfinite(all));
  EXPECT_NEAR(all, 5.0, 1e-6);
  // Point estimates stay finite and within the total.
  const double at_zero = h.EstimateRange(0, 0);
  EXPECT_TRUE(std::isfinite(at_zero));
  EXPECT_GE(at_zero, 0.0);
  EXPECT_LE(at_zero, 5.0);
}

TEST(HistogramEdgeCaseTest, BuildFromCountsFullInt64Span) {
  const int64_t kMin = std::numeric_limits<int64_t>::min();
  const int64_t kMax = std::numeric_limits<int64_t>::max();
  std::map<int64_t, uint64_t> counts{{kMin, 3}, {0, 1}, {kMax, 2}};
  EquiWidthHistogram h = EquiWidthHistogram::BuildFromCounts(counts);
  EXPECT_EQ(h.total(), 6u);
  const double all = h.EstimateRange(kMin, kMax);
  EXPECT_TRUE(std::isfinite(all));
  EXPECT_NEAR(all, 6.0, 1e-6);
}

TEST(HistogramEdgeCaseTest, SingleValueDegenerateWidth) {
  EquiWidthHistogram h = EquiWidthHistogram::Build({42, 42, 42});
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
  EXPECT_NEAR(h.EstimateRange(42, 42), 3.0, 1e-6);
  EXPECT_NEAR(h.EstimateRange(41, 41), 0.0, 1e-9);
  EXPECT_NEAR(h.EstimateRange(43, 100), 0.0, 1e-9);
  EXPECT_NEAR(h.EstimateEquals(42, 1), 3.0, 0.2);
}

TEST(HistogramEdgeCaseTest, ValueAtExactlyMaxLandsInLastBucket) {
  // 1..32: max_ = 32 must land in bucket 15, not one past the end.
  std::vector<int64_t> values;
  for (int64_t v = 1; v <= 32; ++v) values.push_back(v);
  EquiWidthHistogram h = EquiWidthHistogram::Build(values);
  EXPECT_NEAR(h.EstimateRange(h.min(), h.max()), 32.0, 1e-6);
  const double at_max = h.EstimateRange(32, 32);
  EXPECT_GT(at_max, 0.0);
  EXPECT_LE(at_max, 2.0 + 1e-9);
}

TEST_F(StatisticsTest, SelectivityConstantAtInt64Limits) {
  const int64_t kMin = std::numeric_limits<int64_t>::min();
  const int64_t kMax = std::numeric_limits<int64_t>::max();
  TableStats stats = AnalyzeTable(db.birds, db.mgr.get()).ValueOrDie();
  // `< INT64_MIN` matches nothing (the old code computed kMin - 1: UB).
  EXPECT_EQ(stats.EstimateLabelSelectivity("ClassBird1", "Disease",
                                           CompareOp::kLt, kMin),
            0.0);
  // `> INT64_MAX` matches nothing (the old code computed kMax + 1: UB).
  EXPECT_EQ(stats.EstimateLabelSelectivity("ClassBird1", "Disease",
                                           CompareOp::kGt, kMax),
            0.0);
  // The inclusive forms at the limits cover everything annotated.
  EXPECT_GT(stats.EstimateLabelSelectivity("ClassBird1", "Disease",
                                           CompareOp::kLe, kMax),
            0.0);
  EXPECT_GT(stats.EstimateLabelSelectivity("ClassBird1", "Disease",
                                           CompareOp::kGe, kMin),
            0.0);
  // Column path: the same limit constants plus out-of-range / NaN doubles
  // (the old code cast them straight to int64: UB).
  for (const Value& c :
       {Value::Int(kMin), Value::Int(kMax), Value::Double(1e300),
        Value::Double(-1e300),
        Value::Double(std::numeric_limits<double>::quiet_NaN())}) {
    for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                         CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
      const double sel = stats.EstimateColumnSelectivity("weight", op, c);
      EXPECT_TRUE(std::isfinite(sel));
      EXPECT_GE(sel, 0.0);
      EXPECT_LE(sel, 1.0);
    }
  }
}

}  // namespace
}  // namespace insight
