#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "common/task_scheduler.h"
#include "engine/parallel_ops.h"
#include "sql/database.h"

namespace insight {
namespace {

// ---------- TaskScheduler ----------

TEST(TaskSchedulerTest, RunAndWaitExecutesEveryTask) {
  TaskScheduler scheduler(4);
  std::atomic<int> count{0};
  std::vector<TaskScheduler::Task> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&count] { count.fetch_add(1); });
  }
  scheduler.RunAndWait(std::move(tasks));
  EXPECT_EQ(count.load(), 100);
}

TEST(TaskSchedulerTest, RunAndWaitEmptyIsNoop) {
  TaskScheduler scheduler(2);
  scheduler.RunAndWait({});
}

TEST(TaskSchedulerTest, SubmittedTasksEventuallyRun) {
  TaskScheduler scheduler(2);
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  for (int i = 0; i < 50; ++i) {
    scheduler.Submit([&] {
      std::lock_guard<std::mutex> lk(mu);
      if (++done == 50) cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lk(mu);
  ASSERT_TRUE(cv.wait_for(lk, std::chrono::seconds(30),
                          [&] { return done == 50; }));
}

TEST(TaskSchedulerTest, RunAndWaitNestsInsideSubmittedWork) {
  // A gather running on a worker must not deadlock the pool: RunAndWait
  // makes the caller help execute tasks.
  TaskScheduler scheduler(1);
  std::atomic<int> inner{0};
  std::vector<TaskScheduler::Task> outer;
  outer.push_back([&] {
    std::vector<TaskScheduler::Task> tasks;
    for (int i = 0; i < 8; ++i) tasks.push_back([&] { inner.fetch_add(1); });
    scheduler.RunAndWait(std::move(tasks));
  });
  scheduler.RunAndWait(std::move(outer));
  EXPECT_EQ(inner.load(), 8);
}

// ---------- MorselSource ----------

TEST(MorselSourceTest, CoversExtentExactlyOnce) {
  MorselSource morsels(100, 16);
  std::vector<bool> seen(100, false);
  PageId begin, end;
  while (morsels.Next(&begin, &end)) {
    ASSERT_LT(begin, end);
    ASSERT_LE(end, 100u);
    for (PageId p = begin; p < end; ++p) {
      EXPECT_FALSE(seen[p]) << "page " << p << " dispensed twice";
      seen[p] = true;
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(MorselSourceTest, ResetRewindsTheExtent) {
  MorselSource morsels(10, 4);
  PageId begin, end;
  while (morsels.Next(&begin, &end)) {
  }
  EXPECT_FALSE(morsels.Next(&begin, &end));
  morsels.Reset();
  ASSERT_TRUE(morsels.Next(&begin, &end));
  EXPECT_EQ(begin, 0u);
  EXPECT_EQ(end, 4u);
}

TEST(MorselSourceTest, EmptyExtentDispensesNothing) {
  MorselSource morsels(0);
  PageId begin, end;
  EXPECT_FALSE(morsels.Next(&begin, &end));
}

// ---------- Parallel plans vs serial plans ----------

// A database big enough to clear the (lowered) parallelism threshold,
// with a classifier instance and a few annotated rows so summary
// predicates and propagation run on the workers too.
class ParallelPlanTest : public ::testing::Test {
 protected:
  static constexpr int kRows = 600;

  void SetUp() override {
    db_.optimizer_options().parallel_row_threshold = 100;
    Schema schema({{"id", ValueType::kInt64},
                   {"family", ValueType::kString},
                   {"weight", ValueType::kDouble}});
    ASSERT_TRUE(db_.CreateTable("Birds", schema).ok());
    for (int i = 0; i < kRows; ++i) {
      ASSERT_TRUE(db_.Insert("Birds",
                             Tuple({Value::Int(i),
                                    Value::String("family" +
                                                  std::to_string(i % 7)),
                                    Value::Double(i * 0.5)}))
                      .ok());
    }
    ASSERT_TRUE(db_.DefineClassifier("ClassBird1",
                                     {"Disease", "Behavior", "Other"},
                                     {{"diseaseword sick", "Disease"},
                                      {"behaviorword flying", "Behavior"},
                                      {"otherword misc", "Other"}})
                    .ok());
    ASSERT_TRUE(db_.LinkInstance("Birds", "ClassBird1", false).ok());
    for (Oid oid = 1; oid <= 40; ++oid) {
      ASSERT_TRUE(db_.Annotate("Birds", "diseaseword note",
                               {{oid, CellMask(0)}})
                      .ok());
    }

    Schema small({{"fam", ValueType::kString},
                  {"region", ValueType::kString}});
    ASSERT_TRUE(db_.CreateTable("Families", small).ok());
    for (int i = 0; i < 7; ++i) {
      ASSERT_TRUE(db_.Insert("Families",
                             Tuple({Value::String("family" +
                                                  std::to_string(i)),
                                    Value::String(i % 2 == 0 ? "north"
                                                             : "south")}))
                      .ok());
    }
  }

  // Order-insensitive canonical form of a result set.
  static std::vector<std::string> Canon(const QueryResult& result) {
    std::vector<std::string> rows;
    rows.reserve(result.rows.size());
    for (const Tuple& tuple : result.rows) rows.push_back(tuple.ToString());
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  void ExpectEquivalent(const std::string& sql) {
    db_.SetParallelism(1);
    auto serial = db_.Execute(sql);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    db_.SetParallelism(4);
    auto parallel = db_.Execute(sql);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_EQ(Canon(*serial), Canon(*parallel)) << sql;
    EXPECT_EQ(serial->rows.size(), parallel->rows.size());
    db_.SetParallelism(1);
  }

  Database db_;
};

TEST_F(ParallelPlanTest, ScanMatchesSerial) {
  ExpectEquivalent("SELECT id, family, weight FROM Birds");
}

TEST_F(ParallelPlanTest, SelectionMatchesSerial) {
  ExpectEquivalent("SELECT id FROM Birds WHERE weight < 75.0");
}

TEST_F(ParallelPlanTest, SummarySelectionMatchesSerial) {
  ExpectEquivalent(
      "SELECT id FROM Birds WHERE "
      "$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 0");
}

TEST_F(ParallelPlanTest, JoinMatchesSerial) {
  ExpectEquivalent(
      "SELECT Birds.id, Families.region FROM Birds, Families "
      "WHERE Birds.family = Families.fam AND Birds.weight < 50.0");
}

TEST_F(ParallelPlanTest, AggregateMatchesSerial) {
  ExpectEquivalent(
      "SELECT family, COUNT(*) AS cnt FROM Birds GROUP BY family");
}

TEST_F(ParallelPlanTest, OrderByStaysCorrectAndOrdered) {
  const std::string sql =
      "SELECT id FROM Birds WHERE weight < 30.0 ORDER BY id DESC";
  db_.SetParallelism(4);
  auto result = db_.Execute(sql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->rows.empty());
  for (size_t i = 1; i < result->rows.size(); ++i) {
    EXPECT_GT(result->rows[i - 1].values()[0].AsInt(),
              result->rows[i].values()[0].AsInt());
  }
  db_.SetParallelism(1);
}

// ---------- Optimizer gather placement ----------

TEST_F(ParallelPlanTest, ExplainShowsGatherWhenParallel) {
  db_.SetParallelism(4);
  auto plan = db_.Explain("SELECT id FROM Birds WHERE weight < 75.0");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("Gather(workers=4"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("Exchange(worker="), std::string::npos) << *plan;
  EXPECT_NE(plan->find("ParallelScan(Birds"), std::string::npos) << *plan;
  db_.SetParallelism(1);
}

TEST_F(ParallelPlanTest, SerialKnobPlansNoGather) {
  db_.SetParallelism(1);
  auto plan = db_.Explain("SELECT id FROM Birds WHERE weight < 75.0");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->find("Gather"), std::string::npos) << *plan;
}

TEST_F(ParallelPlanTest, SmallTableStaysSerial) {
  db_.SetParallelism(4);
  auto plan = db_.Explain("SELECT fam FROM Families");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->find("Gather"), std::string::npos) << *plan;
  db_.SetParallelism(1);
}

TEST_F(ParallelPlanTest, NoGatherUnderSort) {
  db_.SetParallelism(4);
  auto plan = db_.Explain("SELECT id FROM Birds ORDER BY id");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->find("Gather"), std::string::npos) << *plan;
  db_.SetParallelism(1);
}

TEST_F(ParallelPlanTest, ExplainAnalyzeReportsWorkerTimes) {
  db_.SetParallelism(4);
  auto plan = db_.ExplainAnalyze("SELECT id FROM Birds WHERE weight < 75.0");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("workers=4"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("worker_ms=["), std::string::npos) << *plan;
  db_.SetParallelism(1);
}

// ---------- EXPLAIN ANALYZE timing consistency ----------

// One rendered plan line: indentation depth plus the runtime counters.
struct AnalyzedLine {
  int depth = 0;
  uint64_t rows = 0;
  double ms = 0;
};

// Parses every "Op  (rows=N batches=B time=X.XXXms)" line of an EXPLAIN
// ANALYZE rendering.
std::vector<AnalyzedLine> ParseAnalyzedPlan(const std::string& text) {
  std::vector<AnalyzedLine> lines;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    const size_t rows_at = line.find("(rows=");
    const size_t time_at = line.find("time=");
    if (rows_at == std::string::npos || time_at == std::string::npos) {
      continue;
    }
    AnalyzedLine parsed;
    size_t indent = 0;
    while (indent < line.size() && line[indent] == ' ') ++indent;
    parsed.depth = static_cast<int>(indent / 2);
    parsed.rows = std::stoull(line.substr(rows_at + 6));
    parsed.ms = std::stod(line.substr(time_at + 5));
    lines.push_back(parsed);
  }
  return lines;
}

TEST_F(ParallelPlanTest, SerialExplainAnalyzeTimesAreMonotonic) {
  db_.SetParallelism(1);
  auto plan = db_.ExplainAnalyze(
      "SELECT family, COUNT(*) AS cnt FROM Birds WHERE weight < 200.0 "
      "GROUP BY family");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::vector<AnalyzedLine> lines = ParseAnalyzedPlan(*plan);
  ASSERT_GE(lines.size(), 2u) << *plan;
  // Inclusive timing: every operator's reported time covers its children,
  // so along each root-to-leaf path time must not increase with depth.
  // (Pipeline breakers drain children in Open; open time is part of the
  // total, keeping this monotonic.) Slack covers the 3-decimal rounding.
  std::vector<double> stack;
  for (const AnalyzedLine& line : lines) {
    stack.resize(static_cast<size_t>(line.depth) + 1);
    stack[line.depth] = line.ms;
    if (line.depth > 0) {
      EXPECT_LE(line.ms, stack[line.depth - 1] + 0.002) << *plan;
    }
  }
}

TEST_F(ParallelPlanTest, ParallelExplainAnalyzeDoesNotDoubleCount) {
  const std::string sql = "SELECT id FROM Birds WHERE weight < 75.0";
  db_.SetParallelism(1);
  auto serial = db_.ExplainAnalyze(sql);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  db_.SetParallelism(4);
  auto parallel = db_.ExplainAnalyze(sql);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  db_.SetParallelism(1);
  ASSERT_NE(parallel->find("Gather"), std::string::npos) << *parallel;

  // Same answer either way: the root row counts agree.
  std::vector<AnalyzedLine> serial_lines = ParseAnalyzedPlan(*serial);
  std::vector<AnalyzedLine> parallel_lines = ParseAnalyzedPlan(*parallel);
  ASSERT_FALSE(serial_lines.empty());
  ASSERT_FALSE(parallel_lines.empty());
  EXPECT_EQ(serial_lines[0].rows, parallel_lines[0].rows);

  // Locate the Gather line; its reported time includes the whole worker
  // barrier exactly once. Every operator underneath it executed inside
  // that barrier, so no subtree line may exceed the Gather's time — the
  // double-count this pins down is worker wall-time being re-added on top
  // of the barrier wait.
  int gather_depth = -1;
  double gather_ms = 0;
  size_t line_idx = 0;
  size_t pos = 0;
  std::vector<AnalyzedLine> subtree;
  while (pos < parallel->size()) {
    size_t eol = parallel->find('\n', pos);
    if (eol == std::string::npos) eol = parallel->size();
    const std::string line = parallel->substr(pos, eol - pos);
    pos = eol + 1;
    if (line.find("time=") == std::string::npos) continue;
    const AnalyzedLine& parsed = parallel_lines[line_idx++];
    if (line.find("Gather(") != std::string::npos) {
      gather_depth = parsed.depth;
      gather_ms = parsed.ms;
    } else if (gather_depth >= 0 && parsed.depth > gather_depth) {
      subtree.push_back(parsed);
    } else if (gather_depth >= 0 && parsed.depth <= gather_depth) {
      break;  // Left the Gather subtree.
    }
  }
  ASSERT_GE(gather_depth, 0) << *parallel;
  ASSERT_FALSE(subtree.empty()) << *parallel;
  for (const AnalyzedLine& line : subtree) {
    EXPECT_LE(line.ms, gather_ms + 0.05) << *parallel;
  }
  // Totals stay monotonic above the Gather too: the root covers it.
  EXPECT_LE(gather_ms, parallel_lines[0].ms + 0.002) << *parallel;
}

}  // namespace
}  // namespace insight
