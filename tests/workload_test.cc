#include <gtest/gtest.h>

#include <set>

#include "common/string_util.h"
#include "workload/birds_workload.h"

namespace insight {
namespace {

TEST(AnnotationTextTest, HitsTargetLengthAndTopic) {
  Rng rng(3);
  const std::string text =
      GenerateAnnotationText(AnnotationTopic::kDisease, 500, &rng);
  EXPECT_GE(text.size(), 500u);
  EXPECT_LT(text.size(), 560u);
  // Topic words present.
  bool found = false;
  for (const char* word : {"disease", "infection", "virus", "parasite",
                           "avian", "sick", "outbreak", "symptom", "lesion",
                           "influenza", "illness", "pathogen"}) {
    if (ContainsWord(text, word)) found = true;
  }
  EXPECT_TRUE(found) << text;
}

TEST(AnnotationTextTest, DeterministicPerSeed) {
  Rng a(9);
  Rng b(9);
  EXPECT_EQ(GenerateAnnotationText(AnnotationTopic::kBehavior, 300, &a),
            GenerateAnnotationText(AnnotationTopic::kBehavior, 300, &b));
}

TEST(DrawTopicTest, CoversAllTopics) {
  Rng rng(5);
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(static_cast<int>(DrawTopic(&rng)));
  }
  EXPECT_EQ(seen.size(), kNumTopics);
}

TEST(BirdsWorkloadTest, GeneratesCorpusEndToEnd) {
  Database db;
  BirdsWorkloadOptions opts;
  opts.num_birds = 50;
  opts.annotations_per_bird = 4;
  opts.synonyms_per_bird = 2;
  opts.max_ann_chars = 1200;
  auto workload = GenerateBirdsWorkload(&db, opts);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  EXPECT_EQ(workload->num_birds, 50u);
  EXPECT_EQ(workload->num_annotations, 200u);
  EXPECT_EQ(workload->num_synonyms, 100u);

  // Tables exist with the right shapes.
  Table* birds = *db.GetTable("Birds");
  EXPECT_EQ(birds->num_rows(), 50u);
  EXPECT_EQ(birds->schema().num_columns(), 12u);
  Table* synonyms = *db.GetTable("Synonyms");
  EXPECT_EQ(synonyms->num_rows(), 100u);

  // The classifier instance is linked, indexed, and sees annotations.
  auto index = db.GetSummaryIndex("Birds", "ClassBird1");
  ASSERT_TRUE(index.ok());
  EXPECT_GT((*index)->num_entries(), 0u);

  // Summary-based query returns plausible results.
  auto result = db.Execute(
      "SELECT common_name FROM Birds WHERE "
      "$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 0");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->rows.size(), 0u);
  EXPECT_LT(result->rows.size(), 50u);

  // Long annotations produced snippets.
  auto snip = db.Execute(
      "SELECT common_name FROM Birds WHERE "
      "$.getSummaryObject('TextSummary1').getSize() > 0");
  ASSERT_TRUE(snip.ok()) << snip.status().ToString();
  EXPECT_GT(snip->rows.size(), 0u);
}

TEST(BirdsWorkloadTest, ReproducibleAcrossRuns) {
  auto fingerprint = [](uint64_t seed) {
    Database db;
    BirdsWorkloadOptions opts;
    opts.seed = seed;
    opts.num_birds = 30;
    opts.annotations_per_bird = 3;
    opts.synonyms_per_bird = 0;
    GenerateBirdsWorkload(&db, opts).ValueOrDie();
    auto result = db.Execute(
        "SELECT common_name FROM Birds WHERE "
        "$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 0 "
        "ORDER BY common_name");
    std::string out;
    for (const Tuple& row : result->rows) out += row.ToString();
    return out;
  };
  EXPECT_EQ(fingerprint(11), fingerprint(11));
  EXPECT_NE(fingerprint(11), fingerprint(12));
}

TEST(BirdsWorkloadTest, SkewedPlacementConcentratesAnnotations) {
  Database db;
  BirdsWorkloadOptions opts;
  opts.num_birds = 40;
  opts.annotations_per_bird = 5;
  opts.synonyms_per_bird = 0;
  opts.placement_skew = 1.2;
  GenerateBirdsWorkload(&db, opts).ValueOrDie();
  // The first bird should collect far more than the mean under skew.
  SummaryManager* mgr = *db.GetManager("Birds");
  auto set = mgr->GetSummaries(1);
  ASSERT_TRUE(set.ok());
  const SummaryObject* obj = set->GetSummaryObject("ClassBird1");
  ASSERT_NE(obj, nullptr);
  EXPECT_GT(obj->TotalAnnotations(), 10);
}

}  // namespace
}  // namespace insight
