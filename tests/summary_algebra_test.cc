#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "summary/summary_algebra.h"

namespace insight {
namespace {

// Resolver over a fixed in-memory corpus.
AnnotationResolver MapResolver(std::map<AnnId, std::string> texts) {
  return [texts = std::move(texts)](AnnId id) -> Result<std::string> {
    auto it = texts.find(id);
    if (it == texts.end()) return Status::NotFound("ann");
    return it->second;
  };
}

SummaryObject Classifier(uint32_t instance,
                         std::vector<std::string> labels,
                         std::vector<std::vector<ElementRef>> elems) {
  SummaryObject obj;
  obj.instance_id = instance;
  obj.type = SummaryType::kClassifier;
  obj.instance_name = "Class" + std::to_string(instance);
  for (size_t i = 0; i < labels.size(); ++i) {
    obj.reps.push_back(Representative{
        labels[i], static_cast<int64_t>(elems[i].size()), 0});
  }
  obj.elements = std::move(elems);
  return obj;
}

SummaryObject Cluster(uint32_t instance,
                      std::vector<std::vector<ElementRef>> groups,
                      std::vector<std::string> rep_texts) {
  SummaryObject obj;
  obj.instance_id = instance;
  obj.type = SummaryType::kCluster;
  obj.instance_name = "Cluster" + std::to_string(instance);
  for (size_t i = 0; i < groups.size(); ++i) {
    obj.reps.push_back(Representative{rep_texts[i],
                                      static_cast<int64_t>(groups[i].size()),
                                      groups[i].front().ann_id});
  }
  obj.elements = std::move(groups);
  return obj;
}

SummaryObject Snippet(uint32_t instance,
                      std::vector<std::pair<AnnId, std::string>> snippets,
                      uint64_t mask = 0x1) {
  SummaryObject obj;
  obj.instance_id = instance;
  obj.type = SummaryType::kSnippet;
  obj.instance_name = "Snip" + std::to_string(instance);
  for (const auto& [id, text] : snippets) {
    obj.reps.push_back(Representative{text, 0, id});
    obj.elements.push_back({ElementRef{id, mask}});
  }
  return obj;
}

TEST(ProjectSummariesTest, ClassifierCountsDropButLabelsStay) {
  // Annotations: 1 on col0, 2 on col1, 3 on cols{0,1}, 4 on col2.
  SummaryObject obj = Classifier(
      1, {"Disease", "Other"},
      {{{1, 0x1}, {2, 0x2}, {3, 0x3}}, {{4, 0x4}}});
  SummarySet set({obj});
  // Keep only column 0.
  auto projected = ProjectSummaries(set, {0}, NullResolver());
  ASSERT_TRUE(projected.ok()) << projected.status().ToString();
  const SummaryObject* p = projected->GetSummaryObject("Class1");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p->GetLabelValue("Disease"), 2);  // anns 1 and 3 survive.
  EXPECT_EQ(*p->GetLabelValue("Other"), 0);    // ann 4 eliminated, label kept.
  EXPECT_EQ(p->GetSize(), 2);                  // Both labels present.
}

TEST(ProjectSummariesTest, MaskRemappingFollowsOutputPositions) {
  SummaryObject obj =
      Classifier(1, {"L"}, {{{1, 0x4 /* col 2 */}}});
  SummarySet set({obj});
  // Output columns: (input2, input0) -> ann 1 now targets output col 0.
  auto projected = ProjectSummaries(set, {2, 0}, NullResolver());
  ASSERT_TRUE(projected.ok());
  const auto& elems =
      projected->GetSummaryObject("Class1")->elements[0];
  ASSERT_EQ(elems.size(), 1u);
  EXPECT_EQ(elems[0].column_mask, 0x1u);
}

TEST(ProjectSummariesTest, SnippetOfProjectedOutColumnRemoved) {
  SummaryObject obj = Snippet(2, {{10, "Experiment E"}, {11, "Wikipedia"}});
  obj.elements[1] = {ElementRef{11, 0x2}};  // Wikipedia only on col 1.
  SummarySet set({obj});
  auto projected = ProjectSummaries(set, {0}, NullResolver());
  ASSERT_TRUE(projected.ok());
  const SummaryObject* p = projected->GetSummaryObject("Snip2");
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->GetSize(), 1);
  EXPECT_EQ(*p->GetSnippet(0), "Experiment E");
}

TEST(ProjectSummariesTest, SnippetObjectDroppedWhenEmpty) {
  SummaryObject obj = Snippet(2, {{10, "Only"}}, /*mask=*/0x2);
  SummarySet set({obj});
  auto projected = ProjectSummaries(set, {0}, NullResolver());
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->GetSummaryObject("Snip2"), nullptr);
}

TEST(ProjectSummariesTest, ClusterRepReElectedViaResolver) {
  // Group: rep ann 20 (on col 1), member ann 21 (on col 0).
  SummaryObject obj =
      Cluster(3, {{{20, 0x2}, {21, 0x1}}}, {"rep text of 20"});
  SummarySet set({obj});
  auto resolver = MapResolver({{21, "text of annotation 21"}});
  auto projected = ProjectSummaries(set, {0}, resolver);
  ASSERT_TRUE(projected.ok());
  const SummaryObject* p = projected->GetSummaryObject("Cluster3");
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->GetSize(), 1);
  EXPECT_EQ(*p->GetGroupSize(0), 1);
  EXPECT_EQ(*p->GetRepresentative(0), "text of annotation 21");
  EXPECT_EQ(p->reps[0].source_ann, 21u);
}

TEST(ProjectSummariesTest, ClusterGroupDroppedWhenEmptied) {
  SummaryObject obj = Cluster(3, {{{20, 0x2}}, {{21, 0x1}}}, {"g1", "g2"});
  SummarySet set({obj});
  auto projected = ProjectSummaries(set, {0}, NullResolver());
  ASSERT_TRUE(projected.ok());
  const SummaryObject* p = projected->GetSummaryObject("Cluster3");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->GetSize(), 1);
  EXPECT_EQ(*p->GetRepresentative(0), "g2");
}

TEST(ProjectSummariesTest, IdentityProjectionIsNoOp) {
  SummaryObject obj = Classifier(
      1, {"A", "B"}, {{{1, 0x1}, {2, 0x2}}, {{3, 0x1}}});
  SummarySet set({obj});
  auto projected = ProjectSummaries(set, {0, 1}, NullResolver());
  ASSERT_TRUE(projected.ok());
  EXPECT_TRUE(*projected->GetSummaryObject("Class1") == obj);
}

// --- Merge (join) semantics ---

TEST(MergeSummariesTest, PaperExampleCommonAnnotationsNotDoubleCounted) {
  // Paper Section 2.2: r's ClassBird2 has Comment=7+..., s's has
  // Comment=... with 5 common annotations; merged sum counts them once.
  // Build: left Comment = {1..7}, right Comment = {3..7, 100..109}
  // (5 common: 3,4,5,6,7). Left count 7, right count 15, merged = 17.
  std::vector<ElementRef> left_comment;
  for (AnnId a = 1; a <= 7; ++a) left_comment.push_back({a, 0x1});
  std::vector<ElementRef> right_comment;
  for (AnnId a = 3; a <= 7; ++a) right_comment.push_back({a, 0x1});
  for (AnnId a = 100; a < 110; ++a) right_comment.push_back({a, 0x1});

  SummaryObject left = Classifier(5, {"Comment"}, {left_comment});
  SummaryObject right = Classifier(5, {"Comment"}, {right_comment});

  auto merged = MergeSummaries(SummarySet({left}), SummarySet({right}),
                               /*left_arity=*/2);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  const SummaryObject* m = merged->GetSummaryObject("Class5");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(*m->GetLabelValue("Comment"), 17);  // 7 + 15 - 5.
}

TEST(MergeSummariesTest, NonCounterpartObjectsPropagateUnchanged) {
  SummaryObject left_only = Classifier(6, {"X"}, {{{1, 0x1}}});
  SummaryObject right_only = Snippet(7, {{9, "snippet"}});
  auto merged = MergeSummaries(SummarySet({left_only}),
                               SummarySet({right_only}), 3);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->GetSize(), 2);
  // Left masks unchanged.
  EXPECT_EQ(merged->GetSummaryObject("Class6")->elements[0][0].column_mask,
            0x1u);
  // Right masks shifted by left arity 3.
  EXPECT_EQ(merged->GetSummaryObject("Snip7")->elements[0][0].column_mask,
            0x1u << 3);
}

TEST(MergeSummariesTest, ClusterOverlapMergesGroupsKeepingLeftRep) {
  // Left groups: {A1, A2} rep A1; {A5} rep A5.
  // Right groups: {A2, B5} rep B5; {B7} rep B7.
  // A2 shared -> left group 1 and right group 1 combine (rep A1);
  // {A5} and {B7} propagate separately. (Figure 3.)
  SummaryObject left =
      Cluster(8, {{{1, 0x1}, {2, 0x1}}, {{5, 0x1}}}, {"A1 rep", "A5 rep"});
  SummaryObject right =
      Cluster(8, {{{2, 0x1}, {15, 0x1}}, {{17, 0x1}}}, {"B5 rep", "B7 rep"});
  auto merged = MergeSummaries(SummarySet({left}), SummarySet({right}), 0);
  ASSERT_TRUE(merged.ok());
  const SummaryObject* m = merged->GetSummaryObject("Cluster8");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->GetSize(), 3);

  // Find the merged group (size 3: anns 1, 2, 15).
  bool found_merged = false;
  for (size_t i = 0; i < m->reps.size(); ++i) {
    if (m->reps[i].count == 3) {
      found_merged = true;
      EXPECT_EQ(m->reps[i].text, "A1 rep");  // Left representative kept.
    }
  }
  EXPECT_TRUE(found_merged);
}

TEST(MergeSummariesTest, SnippetUnionDedupsBySourceAnnotation) {
  SummaryObject left = Snippet(9, {{50, "shared snip"}, {51, "left snip"}});
  SummaryObject right = Snippet(9, {{50, "shared snip"}, {52, "right snip"}});
  auto merged = MergeSummaries(SummarySet({left}), SummarySet({right}), 0);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->GetSummaryObject("Snip9")->GetSize(), 3);
}

TEST(MergeSummariesTest, ClassifierMergeIsCommutativeOnCounts) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    auto random_elems = [&](int n) {
      std::vector<ElementRef> elems;
      for (int i = 0; i < n; ++i) {
        elems.push_back(
            {static_cast<AnnId>(rng.Uniform(1, 40)), 0x1});
      }
      std::map<AnnId, uint64_t> dedup;
      for (auto& e : elems) dedup[e.ann_id] |= e.column_mask;
      elems.clear();
      for (auto& [id, mask] : dedup) elems.push_back({id, mask});
      return elems;
    };
    SummaryObject a = Classifier(
        20, {"P", "Q"},
        {random_elems(static_cast<int>(rng.Uniform(0, 10))),
         random_elems(static_cast<int>(rng.Uniform(0, 10)))});
    SummaryObject b = Classifier(
        20, {"P", "Q"},
        {random_elems(static_cast<int>(rng.Uniform(0, 10))),
         random_elems(static_cast<int>(rng.Uniform(0, 10)))});
    auto ab = MergeSummaries(SummarySet({a}), SummarySet({b}), 0);
    auto ba = MergeSummaries(SummarySet({b}), SummarySet({a}), 0);
    ASSERT_TRUE(ab.ok());
    ASSERT_TRUE(ba.ok());
    for (const char* label : {"P", "Q"}) {
      EXPECT_EQ(*ab->GetSummaryObject("Class20")->GetLabelValue(label),
                *ba->GetSummaryObject("Class20")->GetLabelValue(label));
    }
  }
}

TEST(MergeSummariesTest, ClassifierMergeIsAssociative) {
  auto make = [&](std::vector<AnnId> ids) {
    std::vector<ElementRef> elems;
    for (AnnId a : ids) elems.push_back({a, 0x1});
    return Classifier(21, {"L"}, {elems});
  };
  SummaryObject a = make({1, 2, 3});
  SummaryObject b = make({3, 4});
  SummaryObject c = make({4, 5, 6});
  auto ab_c = MergeSummaries(
      *MergeSummaries(SummarySet({a}), SummarySet({b}), 0), SummarySet({c}),
      0);
  auto a_bc = MergeSummaries(
      SummarySet({a}), *MergeSummaries(SummarySet({b}), SummarySet({c}), 0),
      0);
  ASSERT_TRUE(ab_c.ok());
  ASSERT_TRUE(a_bc.ok());
  EXPECT_EQ(*ab_c->GetSummaryObject("Class21")->GetLabelValue("L"), 6);
  EXPECT_EQ(*a_bc->GetSummaryObject("Class21")->GetLabelValue("L"), 6);
}

// Theorem 1/2 of the base system: projecting before the merge gives the
// same summaries as projecting afterwards, provided the projection keeps
// the join-relevant columns. We verify the classifier-count version.
TEST(MergeSummariesTest, ProjectBeforeMergeEqualsProjectAfter) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    // Left relation: 3 columns; right relation: 2 columns. Keep left col 0
    // and right col 0 (output positions 0 and 3 pre-projection).
    auto elems = [&](int n, int ncols) {
      std::map<AnnId, uint64_t> m;
      for (int i = 0; i < n; ++i) {
        m[static_cast<AnnId>(rng.Uniform(1, 30))] |=
            1ULL << rng.Uniform(0, ncols - 1);
      }
      std::vector<ElementRef> out;
      for (auto& [id, mask] : m) out.push_back({id, mask});
      return out;
    };
    SummaryObject left = Classifier(22, {"L"}, {elems(8, 3)});
    SummaryObject right = Classifier(22, {"L"}, {elems(8, 2)});

    // Path A: project each side to its kept column, then merge.
    auto lp = ProjectSummaries(SummarySet({left}), {0}, NullResolver());
    auto rp = ProjectSummaries(SummarySet({right}), {0}, NullResolver());
    ASSERT_TRUE(lp.ok());
    ASSERT_TRUE(rp.ok());
    auto merged_after_project = MergeSummaries(*lp, *rp, 1);

    // Path B: merge full rows, then project to (left col0, right col0) =
    // positions {0, 3} of the concatenated 5-column row.
    auto merged_full =
        MergeSummaries(SummarySet({left}), SummarySet({right}), 3);
    ASSERT_TRUE(merged_full.ok());
    auto projected_after_merge =
        ProjectSummaries(*merged_full, {0, 3}, NullResolver());
    ASSERT_TRUE(projected_after_merge.ok());

    const int64_t count_a =
        *merged_after_project->GetSummaryObject("Class22")->GetLabelValue(
            "L");
    const int64_t count_b =
        *projected_after_merge->GetSummaryObject("Class22")->GetLabelValue(
            "L");
    EXPECT_EQ(count_a, count_b) << "trial " << trial;
  }
}

}  // namespace
}  // namespace insight
