#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <set>

#include "annotation/annotation_store.h"
#include "common/rng.h"
#include "index/catalog.h"
#include "index/key_codec.h"
#include "obs/metrics.h"
#include "sindex/baseline_index.h"
#include "sindex/summary_btree.h"
#include "summary/summary_manager.h"

namespace insight {
namespace {

// A classifier whose label is fully determined by a keyword, so tests can
// steer counts deterministically.
std::shared_ptr<NaiveBayesClassifier> KeywordClassifier() {
  auto model = std::make_shared<NaiveBayesClassifier>(
      std::vector<std::string>{"Disease", "Behavior", "Other"});
  model->Train("diseaseword diseaseword diseaseword", "Disease").ok();
  model->Train("behaviorword behaviorword behaviorword", "Behavior").ok();
  model->Train("otherword otherword otherword", "Other").ok();
  return model;
}

class SindexTest : public ::testing::Test {
 protected:
  SindexTest()
      : storage_(StorageManager::Backend::kMemory),
        pool_(&storage_, 4096),
        catalog_(&storage_, &pool_) {
    table_ = *catalog_.CreateTable("Birds",
                                   Schema({{"name", ValueType::kString},
                                           {"family", ValueType::kString}}));
    for (int i = 0; i < 50; ++i) {
      table_
          ->Insert(Tuple({Value::String("bird" + std::to_string(i)),
                          Value::String("fam" + std::to_string(i % 5))}))
          .status();
    }
    store_ = *AnnotationStore::Create(&catalog_, "Birds", 2);
    mgr_ = *SummaryManager::Create(&catalog_, table_, store_.get());
    mgr_->LinkInstance(
            SummaryInstance::Classifier("ClassBird1",
                                        {"Disease", "Behavior", "Other"},
                                        KeywordClassifier()))
        .ok();
  }

  // Adds `n` annotations with the label-steering keyword to tuple `oid`.
  void Annotate(Oid oid, const std::string& kind, int n) {
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(
          mgr_->AddAnnotation(kind + "word note " + std::to_string(i),
                              {{oid, CellMask(0)}})
              .ok());
    }
  }

  StorageManager storage_;
  BufferPool pool_;
  Catalog catalog_;
  Table* table_;
  std::unique_ptr<AnnotationStore> store_;
  std::unique_ptr<SummaryManager> mgr_;
};

TEST_F(SindexTest, ItemizationFormat) {
  EXPECT_EQ(SummaryBTree::ItemizeKey("Disease", 8, 3), "Disease:008");
  EXPECT_EQ(SummaryBTree::ItemizeKey("Behavior", 33, 3), "Behavior:033");
  EXPECT_EQ(SummaryBTree::ItemizeKey("X", 0, 3), "X:000");
  // Lexicographic order matches numeric order within one label.
  EXPECT_LT(SummaryBTree::ItemizeKey("D", 9, 3),
            SummaryBTree::ItemizeKey("D", 10, 3));
}

TEST_F(SindexTest, ProbeFindsNegativeZeroAndNanStoredRows) {
  // Key-codec regression, driven through a real index probe: -0.0 used to
  // encode differently from +0.0 under some build modes, and every NaN
  // payload got its own key, so an exact-match probe could miss a stored
  // row entirely.
  Table* t = *catalog_.CreateTable("Weights",
                                   Schema({{"w", ValueType::kDouble}}));
  const Oid neg_zero_oid = *t->Insert(Tuple({Value::Double(-0.0)}));
  const Oid nan_oid = *t->Insert(
      Tuple({Value::Double(-std::numeric_limits<double>::quiet_NaN())}));
  ASSERT_TRUE(t->CreateColumnIndex("w").ok());
  const BTree* idx = t->GetColumnIndex("w");
  ASSERT_NE(idx, nullptr);

  // Probe with the other zero (and the int form): must hit the -0.0 row.
  for (const Value& probe :
       {Value::Double(0.0), Value::Double(-0.0), Value::Int(0)}) {
    auto hits = idx->Lookup(EncodeIndexKey(probe));
    ASSERT_TRUE(hits.ok());
    ASSERT_EQ(hits->size(), 1u) << probe.ToString();
    EXPECT_EQ((*hits)[0], neg_zero_oid);
  }
  // Probe with a differently-signed NaN: must hit the NaN row.
  auto nan_hits = idx->Lookup(
      EncodeIndexKey(Value::Double(std::numeric_limits<double>::quiet_NaN())));
  ASSERT_TRUE(nan_hits.ok());
  ASSERT_EQ(nan_hits->size(), 1u);
  EXPECT_EQ((*nan_hits)[0], nan_oid);
}

TEST_F(SindexTest, SearchCountsProbesInEngineMetrics) {
  Annotate(1, "disease", 3);
  Annotate(2, "disease", 5);
  auto index = *SummaryBTree::Create(&storage_, &pool_, mgr_.get(),
                                     "ClassBird1", SummaryBTree::Options{});
  EngineMetrics& m = EngineMetrics::Get();
  const uint64_t probes_before = m.sbtree_probes->value();
  const uint64_t derefs_before = m.sbtree_backward_derefs->value();
  auto hits = index->Search(ClassifierProbe::Equal("Disease", 3));
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ(m.sbtree_probes->value(), probes_before + 1);
  Oid oid;
  ASSERT_TRUE(index->FetchDataTuple((*hits)[0], &oid).ok());
  EXPECT_EQ(oid, 1u);
  EXPECT_GE(m.sbtree_backward_derefs->value(), derefs_before);
}

TEST_F(SindexTest, RejectsNonClassifierInstances) {
  mgr_->LinkInstance(SummaryInstance::Snippet("Snips")).ok();
  auto result = SummaryBTree::Create(&storage_, &pool_, mgr_.get(), "Snips",
                                     SummaryBTree::Options{});
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(SindexTest, EqualitySearchFindsExactCounts) {
  Annotate(1, "disease", 3);
  Annotate(2, "disease", 5);
  Annotate(3, "disease", 3);
  Annotate(4, "behavior", 3);  // Disease count 0.
  auto index = *SummaryBTree::Create(&storage_, &pool_, mgr_.get(),
                                     "ClassBird1", SummaryBTree::Options{});
  auto hits = index->Search(ClassifierProbe::Equal("Disease", 3));
  ASSERT_TRUE(hits.ok());
  std::set<Oid> oids;
  for (const auto& hit : *hits) {
    Oid oid;
    ASSERT_TRUE(index->FetchDataTuple(hit, &oid).ok());
    oids.insert(oid);
  }
  EXPECT_EQ(oids, (std::set<Oid>{1, 3}));

  // Zero-count search finds the behavior-only tuple.
  hits = index->Search(ClassifierProbe::Equal("Disease", 0));
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  Oid oid;
  ASSERT_TRUE(index->FetchDataTuple((*hits)[0], &oid).ok());
  EXPECT_EQ(oid, 4u);
}

TEST_F(SindexTest, RangeSearchOrderedByCount) {
  for (int i = 1; i <= 10; ++i) Annotate(static_cast<Oid>(i), "disease", i);
  auto index = *SummaryBTree::Create(&storage_, &pool_, mgr_.get(),
                                     "ClassBird1", SummaryBTree::Options{});
  auto hits = index->Search(ClassifierProbe::Range("Disease", 4, 7));
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 4u);
  for (size_t i = 0; i < hits->size(); ++i) {
    EXPECT_EQ((*hits)[i].count, static_cast<int64_t>(4 + i));
  }

  // Strict bound: "> 5".
  hits = index->Search(ClassifierProbe::GreaterThan("Disease", 5));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 5u);
  EXPECT_EQ(hits->front().count, 6);

  // "< 3".
  hits = index->Search(ClassifierProbe::LessThan("Disease", 3));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 2u);
}

TEST_F(SindexTest, IncrementalMaintenanceTracksUpdates) {
  auto index = *SummaryBTree::Create(&storage_, &pool_, mgr_.get(),
                                     "ClassBird1", SummaryBTree::Options{});
  Annotate(7, "disease", 1);
  // First annotation inserts all 3 labels.
  EXPECT_EQ(index->maintenance_stats().key_inserts, 3u);
  EXPECT_EQ(index->maintenance_stats().key_deletes, 0u);
  Annotate(7, "disease", 1);
  // Update: one delete + one insert for the modified label only.
  EXPECT_EQ(index->maintenance_stats().key_inserts, 4u);
  EXPECT_EQ(index->maintenance_stats().key_deletes, 1u);

  auto hits = index->Search(ClassifierProbe::Equal("Disease", 2));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
  // Old key gone.
  hits = index->Search(ClassifierProbe::Equal("Disease", 1));
  EXPECT_TRUE(hits->empty());
}

TEST_F(SindexTest, AnnotationRemovalUpdatesIndex) {
  AnnId ann = *mgr_->AddAnnotation("diseaseword x", {{8, 1}});
  Annotate(8, "disease", 1);
  auto index = *SummaryBTree::Create(&storage_, &pool_, mgr_.get(),
                                     "ClassBird1", SummaryBTree::Options{});
  ASSERT_EQ(index->Search(ClassifierProbe::Equal("Disease", 2))->size(), 1u);
  ASSERT_TRUE(mgr_->RemoveAnnotation(ann).ok());
  EXPECT_TRUE(index->Search(ClassifierProbe::Equal("Disease", 2))->empty());
  EXPECT_EQ(index->Search(ClassifierProbe::Equal("Disease", 1))->size(), 1u);
}

TEST_F(SindexTest, TupleDeletionRemovesAllKeys) {
  Annotate(9, "disease", 2);
  auto index = *SummaryBTree::Create(&storage_, &pool_, mgr_.get(),
                                     "ClassBird1", SummaryBTree::Options{});
  EXPECT_EQ(index->num_entries(), 3u);
  ASSERT_TRUE(mgr_->OnTupleDeleted(9).ok());
  EXPECT_EQ(index->num_entries(), 0u);
}

TEST_F(SindexTest, BulkBuildMatchesIncrementalBuild) {
  Rng rng(5);
  std::map<Oid, int> expected_disease;
  for (int i = 0; i < 30; ++i) {
    const Oid oid = static_cast<Oid>(rng.Uniform(1, 20));
    const bool disease = rng.NextBool(0.6);
    Annotate(oid, disease ? "disease" : "behavior", 1);
    if (disease) ++expected_disease[oid];
  }
  // Bulk build after the fact.
  auto index = *SummaryBTree::Create(&storage_, &pool_, mgr_.get(),
                                     "ClassBird1", SummaryBTree::Options{});
  for (const auto& [oid, count] : expected_disease) {
    auto hits = index->Search(
        ClassifierProbe::Equal("Disease", count));
    ASSERT_TRUE(hits.ok());
    bool found = false;
    for (const auto& hit : *hits) {
      Oid got;
      ASSERT_TRUE(index->FetchDataTuple(hit, &got).ok());
      if (got == oid) found = true;
    }
    EXPECT_TRUE(found) << "oid " << oid << " count " << count;
  }
}

TEST_F(SindexTest, WidthExtensionRebuildsPast999) {
  SummaryBTree::Options opts;
  opts.count_width = 2;  // Rebuild already at count 100 to keep tests fast.
  auto index = *SummaryBTree::Create(&storage_, &pool_, mgr_.get(),
                                     "ClassBird1", opts);
  Annotate(10, "disease", 105);
  EXPECT_GE(index->maintenance_stats().rebuilds, 1u);
  EXPECT_EQ(index->count_width(), 3);
  auto hits = index->Search(ClassifierProbe::Equal("Disease", 105));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
  // Order across the old/new width boundary still correct.
  hits = index->Search(ClassifierProbe::GreaterThan("Disease", 99));
  EXPECT_EQ(hits->size(), 1u);
}

TEST_F(SindexTest, ConventionalPointersResolveThroughStorage) {
  Annotate(11, "disease", 4);
  SummaryBTree::Options opts;
  opts.pointer_mode = SummaryBTree::PointerMode::kConventional;
  auto index =
      *SummaryBTree::Create(&storage_, &pool_, mgr_.get(), "ClassBird1", opts);
  auto hits = index->Search(ClassifierProbe::Equal("Disease", 4));
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  Oid oid;
  auto tuple = index->FetchDataTuple((*hits)[0], &oid);
  ASSERT_TRUE(tuple.ok());
  EXPECT_EQ(oid, 11u);
  EXPECT_EQ(tuple->at(0).AsString(), "bird10");
}

TEST_F(SindexTest, BaselineIndexAnswersSameQueries) {
  Annotate(1, "disease", 3);
  Annotate(2, "disease", 5);
  Annotate(3, "behavior", 2);
  auto baseline = *BaselineClassifierIndex::Create(
      &catalog_, mgr_.get(), "ClassBird1", BaselineClassifierIndex::Options{});
  auto hits = baseline->Search(ClassifierProbe::Equal("Disease", 5));
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  Oid oid;
  auto tuple = baseline->FetchDataTuple((*hits)[0], &oid);
  ASSERT_TRUE(tuple.ok());
  EXPECT_EQ(oid, 2u);

  hits = baseline->Search(ClassifierProbe::GreaterThan("Disease", 2));
  EXPECT_EQ(hits->size(), 2u);
}

TEST_F(SindexTest, BaselineMaintainedIncrementally) {
  auto baseline = *BaselineClassifierIndex::Create(
      &catalog_, mgr_.get(), "ClassBird1", BaselineClassifierIndex::Options{});
  Annotate(12, "disease", 1);
  Annotate(12, "disease", 1);
  auto hits = baseline->Search(ClassifierProbe::Equal("Disease", 2));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
  EXPECT_TRUE(baseline->Search(ClassifierProbe::Equal("Disease", 1))->empty());
  ASSERT_TRUE(mgr_->OnTupleDeleted(12).ok());
  EXPECT_TRUE(baseline->Search(ClassifierProbe::Equal("Disease", 2))->empty());
}

TEST_F(SindexTest, BaselineReconstructsObjectFromNormalizedRows) {
  Annotate(13, "disease", 4);
  Annotate(13, "behavior", 2);
  auto baseline = *BaselineClassifierIndex::Create(
      &catalog_, mgr_.get(), "ClassBird1", BaselineClassifierIndex::Options{});
  auto obj = baseline->ReconstructObject(13);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(*obj->GetLabelValue("Disease"), 4);
  EXPECT_EQ(*obj->GetLabelValue("Behavior"), 2);
  EXPECT_EQ(*obj->GetLabelValue("Other"), 0);
  EXPECT_TRUE(baseline->ReconstructObject(999).status().IsNotFound());
}

TEST_F(SindexTest, BaselineReplicatesStorageSummaryBTreeDoesNot) {
  for (int i = 1; i <= 30; ++i) Annotate(static_cast<Oid>(i), "disease", 3);
  auto sbt = *SummaryBTree::Create(&storage_, &pool_, mgr_.get(),
                                   "ClassBird1", SummaryBTree::Options{});
  auto baseline = *BaselineClassifierIndex::Create(
      &catalog_, mgr_.get(), "ClassBird1", BaselineClassifierIndex::Options{});
  ASSERT_TRUE(pool_.FlushAll().ok());
  // The baseline replica duplicates the classifier content; the
  // Summary-BTree adds only its tree.
  EXPECT_GT(baseline->replica_bytes(), 0u);
  EXPECT_GT(baseline->index_bytes(), 0u);
  EXPECT_GT(sbt->size_bytes(), 0u);
}

// Both schemes agree with a brute-force reference across random workloads.
class SindexFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SindexFuzzTest, SchemesAgreeWithReference) {
  StorageManager storage(StorageManager::Backend::kMemory);
  BufferPool pool(&storage, 4096);
  Catalog catalog(&storage, &pool);
  Table* table = *catalog.CreateTable(
      "R", Schema({{"x", ValueType::kInt64}}));
  for (int i = 0; i < 40; ++i) {
    table->Insert(Tuple({Value::Int(i)})).status();
  }
  auto store = *AnnotationStore::Create(&catalog, "R", 1);
  auto mgr = *SummaryManager::Create(&catalog, table, store.get());
  auto model = KeywordClassifier();
  mgr->LinkInstance(SummaryInstance::Classifier(
                        "C", {"Disease", "Behavior", "Other"}, model))
      .ok();
  auto sbt = *SummaryBTree::Create(&storage, &pool, mgr.get(), "C",
                                   SummaryBTree::Options{});
  auto baseline = *BaselineClassifierIndex::Create(
      &catalog, mgr.get(), "C", BaselineClassifierIndex::Options{});

  Rng rng(GetParam());
  std::map<Oid, std::map<std::string, int64_t>> reference;
  const char* kinds[] = {"disease", "behavior", "other"};
  const char* labels[] = {"Disease", "Behavior", "Other"};
  for (int step = 0; step < 200; ++step) {
    const Oid oid = static_cast<Oid>(rng.Uniform(1, 40));
    const size_t k = static_cast<size_t>(rng.Uniform(0, 2));
    ASSERT_TRUE(mgr->AddAnnotation(std::string(kinds[k]) + "word note",
                                   {{oid, 1}})
                    .ok());
    auto& counts = reference[oid];
    for (const char* l : labels) counts.emplace(l, 0);
    ++counts[labels[k]];
  }

  // Random probes: equality and ranges on all labels.
  for (int q = 0; q < 60; ++q) {
    const std::string label = labels[rng.Uniform(0, 2)];
    int64_t lo = rng.Uniform(0, 8);
    int64_t hi = rng.Uniform(0, 8);
    if (lo > hi) std::swap(lo, hi);
    const ClassifierProbe probe = ClassifierProbe::Range(label, lo, hi);

    std::set<Oid> expected;
    for (const auto& [oid, counts] : reference) {
      const int64_t c = counts.at(label);
      if (c >= lo && c <= hi) expected.insert(oid);
    }
    std::set<Oid> got_sbt;
    for (const auto& hit : *sbt->Search(probe)) {
      Oid oid;
      auto tuple = sbt->FetchDataTuple(hit, &oid);
      ASSERT_TRUE(tuple.ok())
          << tuple.status().ToString() << " count=" << hit.count
          << " page=" << RowLocation::Unpack(hit.payload).page_id
          << " slot=" << RowLocation::Unpack(hit.payload).slot;
      got_sbt.insert(oid);
    }
    std::set<Oid> got_base;
    for (const auto& hit : *baseline->Search(probe)) got_base.insert(hit.oid);
    EXPECT_EQ(got_sbt, expected) << label << " in [" << lo << "," << hi << "]";
    EXPECT_EQ(got_base, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SindexFuzzTest,
                         ::testing::Values(3, 14, 159));

}  // namespace
}  // namespace insight
