#ifndef INSIGHTNOTES_TESTS_ENGINE_TEST_UTIL_H_
#define INSIGHTNOTES_TESTS_ENGINE_TEST_UTIL_H_

#include <memory>
#include <string>

#include "annotation/annotation_store.h"
#include "engine/operators.h"
#include "index/catalog.h"
#include "sindex/summary_btree.h"
#include "summary/summary_manager.h"

namespace insight {

/// Shared test database: a small annotated Birds table with one keyword-
/// steered classifier instance, a snippet instance, and a cluster
/// instance, mirroring the paper's setup at doll-house scale.
class TestDb {
 public:
  explicit TestDb(int num_birds = 20)
      : storage(StorageManager::Backend::kMemory),
        pool(&storage, 4096),
        catalog(&storage, &pool) {
    birds = *catalog.CreateTable("Birds",
                                 Schema({{"name", ValueType::kString},
                                         {"family", ValueType::kString},
                                         {"weight", ValueType::kDouble}}));
    for (int i = 0; i < num_birds; ++i) {
      birds
          ->Insert(Tuple({Value::String("bird" + std::to_string(i)),
                          Value::String("family" + std::to_string(i % 4)),
                          Value::Double(1.0 + i * 0.25)}))
          .status();
    }
    annotations = *AnnotationStore::Create(&catalog, "Birds", 3);
    mgr = *SummaryManager::Create(&catalog, birds, annotations.get());

    auto model = std::make_shared<NaiveBayesClassifier>(
        std::vector<std::string>{"Disease", "Behavior", "Other"});
    model->Train("diseaseword diseaseword", "Disease").ok();
    model->Train("behaviorword behaviorword", "Behavior").ok();
    model->Train("otherword otherword", "Other").ok();
    mgr->LinkInstance(SummaryInstance::Classifier(
                          "ClassBird1", {"Disease", "Behavior", "Other"},
                          model))
        .ok();
    SnippetSummarizer::Options snip;
    snip.min_chars = 80;
    snip.max_snippet_chars = 60;
    mgr->LinkInstance(SummaryInstance::Snippet("TextSummary1", snip)).ok();
    mgr->LinkInstance(SummaryInstance::Cluster("SimCluster", 0.4)).ok();
  }

  /// n annotations of the given kind ("disease"/"behavior"/"other") on
  /// one tuple, attached to column `col`.
  void Annotate(Oid oid, const std::string& kind, int n, size_t col = 0) {
    for (int i = 0; i < n; ++i) {
      mgr->AddAnnotation(kind + "word note " + std::to_string(i),
                         {{oid, CellMask(col)}})
          .status();
    }
  }

  OpPtr Scan(bool propagate = true) {
    return std::make_unique<SeqScanOp>(birds, mgr.get(), propagate);
  }

  StorageManager storage;
  BufferPool pool;
  Catalog catalog;
  Table* birds;
  std::unique_ptr<AnnotationStore> annotations;
  std::unique_ptr<SummaryManager> mgr;
};

}  // namespace insight

#endif  // INSIGHTNOTES_TESTS_ENGINE_TEST_UTIL_H_
