#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "engine_test_util.h"
#include "optimizer/optimizer.h"

namespace insight {
namespace {

// Fixture: Birds (annotated, with Summary-BTree) + Synonyms (data-only,
// indexed join column) + BirdsV2 (replica sharing the classifier).
class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() : db(30) {
    for (int i = 1; i <= 30; ++i) {
      db.Annotate(static_cast<Oid>(i), "disease", (i * 7) % 11);
      if (i % 3 == 0) db.Annotate(static_cast<Oid>(i), "behavior", i % 5);
    }
    sbt = *SummaryBTree::Create(&db.storage, &db.pool, db.mgr.get(),
                                "ClassBird1", SummaryBTree::Options{});
    // Synonyms(bird_name, synonym): several rows per bird, indexed.
    synonyms = *db.catalog.CreateTable(
        "Synonyms", Schema({{"bird_name", ValueType::kString},
                            {"synonym", ValueType::kString}}));
    for (int i = 0; i < 30; ++i) {
      for (int s = 0; s < 3; ++s) {
        synonyms
            ->Insert(Tuple({Value::String("bird" + std::to_string(i)),
                            Value::String("syn" + std::to_string(i) + "_" +
                                          std::to_string(s))}))
            .status();
      }
    }
    synonyms->CreateColumnIndex("bird_name").ok();

    ctx = std::make_unique<QueryContext>(&db.catalog, &db.storage, &db.pool);
    ctx->RegisterRelation(db.birds, db.mgr.get()).ok();
    ctx->RegisterRelation(synonyms, nullptr).ok();
    ctx->RegisterSummaryIndex("Birds", "ClassBird1", sbt.get()).ok();
    ctx->Analyze("Birds").ok();
    ctx->Analyze("Synonyms").ok();
  }

  // Plans lowered with and without optimization produce identical row
  // multisets.
  void ExpectSameResults(const LogicalNode& plan) {
    OptimizerOptions off;
    off.enable_rewrite_rules = false;
    off.use_summary_indexes = false;
    off.use_data_indexes = false;
    off.use_baseline_indexes = false;
    Optimizer baseline(ctx.get(), off);
    auto naive_op = baseline.Lower(plan);
    ASSERT_TRUE(naive_op.ok()) << naive_op.status().ToString();
    auto naive_rows = CollectRows(naive_op->get());
    ASSERT_TRUE(naive_rows.ok()) << naive_rows.status().ToString();

    Optimizer optimizer(ctx.get(), OptimizerOptions{});
    auto optimized = optimizer.Optimize(plan.Clone());
    ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
    auto opt_rows = CollectRows(optimized->get());
    ASSERT_TRUE(opt_rows.ok()) << opt_rows.status().ToString();

    auto render = [](const std::vector<Row>& rows) {
      std::vector<std::string> out;
      for (const Row& row : rows) out.push_back(row.data.ToString());
      std::sort(out.begin(), out.end());
      return out;
    };
    EXPECT_EQ(render(*naive_rows), render(*opt_rows));
  }

  TestDb db;
  std::unique_ptr<SummaryBTree> sbt;
  Table* synonyms;
  std::unique_ptr<QueryContext> ctx;
};

TEST_F(OptimizerTest, Rule1CanonicalizesSelectBelowSummarySelect) {
  // sigma above S swaps to S above sigma.
  LogicalPtr plan = LSelect(
      LSummarySelect(LScan("Birds"),
                     Cmp(LabelValue("ClassBird1", "Disease"), CompareOp::kGt,
                         Lit(Value::Int(3)))),
      Like(Col("family"), "family1"));
  Optimizer opt(ctx.get(), OptimizerOptions{});
  auto rewritten = opt.Rewrite(plan->Clone());
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ((*rewritten)->kind, LogicalKind::kSummarySelect);
  EXPECT_EQ((*rewritten)->children[0]->kind, LogicalKind::kSelect);
  ExpectSameResults(*plan);
}

TEST_F(OptimizerTest, Rule2PushesSummarySelectBelowJoin) {
  // S(Birds join Synonyms) with a ClassBird1 predicate: the instance is
  // linked only to Birds, so S pushes onto the Birds side.
  LogicalPtr plan = LSummarySelect(
      LJoin(LScan("Birds"), LScan("Synonyms", false),
            Cmp(Col("name"), CompareOp::kEq, Col("bird_name"))),
      Cmp(LabelValue("ClassBird1", "Disease"), CompareOp::kGt,
          Lit(Value::Int(5))));
  Optimizer opt(ctx.get(), OptimizerOptions{});
  auto rewritten = opt.Rewrite(plan->Clone());
  ASSERT_TRUE(rewritten.ok());
  // Top is now the join; S sits on its left (Birds) input.
  EXPECT_EQ((*rewritten)->kind, LogicalKind::kJoin);
  EXPECT_EQ((*rewritten)->children[0]->kind, LogicalKind::kSummarySelect);
  ExpectSameResults(*plan);
}

TEST_F(OptimizerTest, SigmaPushdownThroughJoin) {
  LogicalPtr plan = LSelect(
      LJoin(LScan("Birds"), LScan("Synonyms", false),
            Cmp(Col("name"), CompareOp::kEq, Col("bird_name"))),
      Like(Col("synonym"), "syn1_%"));
  Optimizer opt(ctx.get(), OptimizerOptions{});
  auto rewritten = opt.Rewrite(plan->Clone());
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ((*rewritten)->kind, LogicalKind::kJoin);
  EXPECT_EQ((*rewritten)->children[1]->kind, LogicalKind::kSelect);
  ExpectSameResults(*plan);
}

TEST_F(OptimizerTest, Rule8PushesStructuralFilterToBothSides) {
  // Both Birds and BirdsV2 carry ClassBird1... here only Birds does, so a
  // type-structural predicate still pushes to both sides legally.
  ObjectPredicate pred;
  pred.type = SummaryType::kClassifier;
  LogicalPtr plan = LSummaryFilter(
      LJoin(LScan("Birds"), LScan("Synonyms", false),
            Cmp(Col("name"), CompareOp::kEq, Col("bird_name"))),
      pred);
  Optimizer opt(ctx.get(), OptimizerOptions{});
  auto rewritten = opt.Rewrite(plan->Clone());
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ((*rewritten)->kind, LogicalKind::kJoin);
  EXPECT_EQ((*rewritten)->children[0]->kind, LogicalKind::kSummaryFilter);
  EXPECT_EQ((*rewritten)->children[1]->kind, LogicalKind::kSummaryFilter);
}

TEST_F(OptimizerTest, Rule7PushesInstanceFilterToOwningSide) {
  ObjectPredicate pred;
  pred.instance_name = "ClassBird1";
  LogicalPtr plan = LSummaryFilter(
      LJoin(LScan("Birds"), LScan("Synonyms", false),
            Cmp(Col("name"), CompareOp::kEq, Col("bird_name"))),
      pred);
  Optimizer opt(ctx.get(), OptimizerOptions{});
  auto rewritten = opt.Rewrite(plan->Clone());
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ((*rewritten)->kind, LogicalKind::kJoin);
  EXPECT_EQ((*rewritten)->children[0]->kind, LogicalKind::kSummaryFilter);
  // Synonyms side untouched (instance not linked there).
  EXPECT_EQ((*rewritten)->children[1]->kind, LogicalKind::kScan);
}

TEST_F(OptimizerTest, AccessPathUsesSummaryIndex) {
  LogicalPtr plan = LSummarySelect(
      LScan("Birds"), Cmp(LabelValue("ClassBird1", "Disease"), CompareOp::kEq,
                          Lit(Value::Int(7))));
  Optimizer opt(ctx.get(), OptimizerOptions{});
  auto op = opt.Optimize(plan->Clone());
  ASSERT_TRUE(op.ok());
  EXPECT_NE((*op)->ExplainTree().find("SummaryIndexScan"),
            std::string::npos)
      << (*op)->ExplainTree();
  ExpectSameResults(*plan);
}

TEST_F(OptimizerTest, AccessPathFallsBackToSeqScanWithoutIndex) {
  OptimizerOptions opts;
  opts.use_summary_indexes = false;
  opts.use_baseline_indexes = false;
  LogicalPtr plan = LSummarySelect(
      LScan("Birds"), Cmp(LabelValue("ClassBird1", "Disease"), CompareOp::kEq,
                          Lit(Value::Int(7))));
  Optimizer opt(ctx.get(), opts);
  auto op = opt.Optimize(std::move(plan));
  ASSERT_TRUE(op.ok());
  const std::string tree = (*op)->ExplainTree();
  EXPECT_NE(tree.find("SeqScan"), std::string::npos) << tree;
  EXPECT_NE(tree.find("SummarySelect"), std::string::npos) << tree;
}

TEST_F(OptimizerTest, ResidualPredicatesStayAboveIndexScan) {
  LogicalPtr plan = LSummarySelect(
      LSelect(LScan("Birds"), Like(Col("family"), "family1")),
      Cmp(LabelValue("ClassBird1", "Disease"), CompareOp::kGt,
          Lit(Value::Int(8))));
  Optimizer opt(ctx.get(), OptimizerOptions{});
  auto op = opt.Optimize(plan->Clone());
  ASSERT_TRUE(op.ok());
  const std::string tree = (*op)->ExplainTree();
  EXPECT_NE(tree.find("SummaryIndexScan"), std::string::npos) << tree;
  EXPECT_NE(tree.find("Select"), std::string::npos) << tree;
  ExpectSameResults(*plan);
}

TEST_F(OptimizerTest, IndexJoinChosenForIndexedInner) {
  LogicalPtr plan =
      LJoin(LScan("Birds"), LScan("Synonyms", false),
            Cmp(Col("name"), CompareOp::kEq, Col("bird_name")));
  Optimizer opt(ctx.get(), OptimizerOptions{});
  auto op = opt.Optimize(plan->Clone());
  ASSERT_TRUE(op.ok());
  EXPECT_NE((*op)->ExplainTree().find("IndexNLJoin"), std::string::npos)
      << (*op)->ExplainTree();
  ExpectSameResults(*plan);
}

TEST_F(OptimizerTest, SortEliminationViaInterestingOrder) {
  // S(disease > 5) then O(disease asc): the Summary-BTree provides the
  // order; the sort disappears (Rules 3-4).
  std::vector<SortKey> keys;
  keys.push_back(SortKey{LabelValue("ClassBird1", "Disease"), false});
  LogicalPtr plan = LSort(
      LSummarySelect(LScan("Birds"),
                     Cmp(LabelValue("ClassBird1", "Disease"), CompareOp::kGt,
                         Lit(Value::Int(5)))),
      std::move(keys));
  Optimizer opt(ctx.get(), OptimizerOptions{});
  auto op = opt.Optimize(plan->Clone());
  ASSERT_TRUE(op.ok());
  const std::string tree = (*op)->ExplainTree();
  EXPECT_EQ(tree.find("Sort"), std::string::npos) << tree;
  // Results still ordered.
  auto rows = CollectRows(op->get());
  ASSERT_TRUE(rows.ok());
  int64_t prev = -1;
  auto key = LabelValue("ClassBird1", "Disease");
  for (const Row& row : *rows) {
    const int64_t v = key->Eval(row, db.birds->schema())->AsInt();
    EXPECT_GE(v, prev);
    prev = v;
  }
  ExpectSameResults(*plan);
}

TEST_F(OptimizerTest, SortKeptWhenOrderDoesNotMatch) {
  // Descending order cannot come from the ascending index scan.
  std::vector<SortKey> keys;
  keys.push_back(SortKey{LabelValue("ClassBird1", "Disease"), true});
  LogicalPtr plan = LSort(
      LSummarySelect(LScan("Birds"),
                     Cmp(LabelValue("ClassBird1", "Disease"), CompareOp::kGt,
                         Lit(Value::Int(5)))),
      std::move(keys));
  Optimizer opt(ctx.get(), OptimizerOptions{});
  auto op = opt.Optimize(plan->Clone());
  ASSERT_TRUE(op.ok());
  EXPECT_NE((*op)->ExplainTree().find("SummarySort"), std::string::npos);
}

TEST_F(OptimizerTest, Rule5OrderSurvivesJoinWithForeignInstance) {
  // Index-ordered Birds joined with Synonyms (no ClassBird1 there):
  // order survives the join, so the sort is still eliminated (Rule 5).
  std::vector<SortKey> keys;
  keys.push_back(SortKey{LabelValue("ClassBird1", "Disease"), false});
  LogicalPtr plan = LSort(
      LJoin(LSummarySelect(LScan("Birds"),
                           Cmp(LabelValue("ClassBird1", "Disease"),
                               CompareOp::kGt, Lit(Value::Int(5)))),
            LScan("Synonyms", false),
            Cmp(Col("name"), CompareOp::kEq, Col("bird_name"))),
      std::move(keys));
  Optimizer opt(ctx.get(), OptimizerOptions{});
  auto op = opt.Optimize(plan->Clone());
  ASSERT_TRUE(op.ok());
  const std::string tree = (*op)->ExplainTree();
  EXPECT_EQ(tree.find("SummarySort"), std::string::npos) << tree;
  ExpectSameResults(*plan);
}

TEST_F(OptimizerTest, Rule11SwitchesJoinOrder) {
  // Join_c(J_p(Birds, BirdsV2-like), T): build with Synonyms as T and a
  // merged-form J between Birds and a second annotated table.
  // Simplified shape: data join on top of a summary join where the data
  // join's columns avoid the summary join's right side.
  SummaryJoinPredicate sjp;
  sjp.left_expr = LabelValue("ClassBird1", "Disease");
  sjp.op = CompareOp::kEq;
  sjp.right_expr = LabelValue("ClassBird1", "Disease");
  LogicalPtr plan = LJoin(
      LSummaryJoin(LScan("Birds"), LScan("Birds"), sjp.Clone()),
      LScan("Synonyms", false),
      Cmp(Col("name"), CompareOp::kEq, Col("bird_name")));
  Optimizer opt(ctx.get(), OptimizerOptions{});
  auto rewritten = opt.Rewrite(plan->Clone());
  ASSERT_TRUE(rewritten.ok());
  // Rule 11 cannot fire here: p's instance (ClassBird1) IS linked to the
  // right side of the data join? Synonyms has no instances, and c's
  // columns (name, bird_name) resolve in Birds+Synonyms without S... but
  // S is the second Birds scan which also has name. The rewrite is legal
  // and should produce SummaryJoin on top.
  EXPECT_EQ((*rewritten)->kind, LogicalKind::kSummaryJoin)
      << (*rewritten)->Explain();
}

TEST_F(OptimizerTest, EstimatesReflectSelectivity) {
  Optimizer opt(ctx.get(), OptimizerOptions{});
  LogicalPtr scan = LScan("Birds");
  auto scan_est = opt.Estimate(*scan);
  ASSERT_TRUE(scan_est.ok());
  EXPECT_DOUBLE_EQ(scan_est->rows, 30.0);

  // Equality on a label: far fewer rows than the scan.
  LogicalPtr select = LSummarySelect(
      LScan("Birds"), Cmp(LabelValue("ClassBird1", "Disease"), CompareOp::kEq,
                          Lit(Value::Int(7))));
  auto sel_est = opt.Estimate(*select);
  ASSERT_TRUE(sel_est.ok());
  EXPECT_LT(sel_est->rows, 12.0);
  EXPECT_GT(sel_est->rows, 0.0);

  // Impossible range estimates ~0.
  LogicalPtr none = LSummarySelect(
      LScan("Birds"), Cmp(LabelValue("ClassBird1", "Disease"), CompareOp::kGt,
                          Lit(Value::Int(1000))));
  auto none_est = opt.Estimate(*none);
  ASSERT_TRUE(none_est.ok());
  EXPECT_LT(none_est->rows, 0.5);
}

TEST_F(OptimizerTest, EstimateJoinUsesDistinctCounts) {
  Optimizer opt(ctx.get(), OptimizerOptions{});
  LogicalPtr join =
      LJoin(LScan("Birds"), LScan("Synonyms", false),
            Cmp(Col("name"), CompareOp::kEq, Col("bird_name")));
  auto est = opt.Estimate(*join);
  ASSERT_TRUE(est.ok());
  // 30 birds x 90 synonyms / ndv(30) = 90.
  EXPECT_NEAR(est->rows, 90.0, 20.0);
}

TEST_F(OptimizerTest, AggregationAndDistinctLowering) {
  std::vector<AggregateSpec> aggs;
  aggs.push_back(AggregateSpec{AggregateSpec::Kind::kCount, nullptr, "cnt"});
  LogicalPtr plan =
      LAggregate(LScan("Birds"), {"family"}, std::move(aggs));
  Optimizer opt(ctx.get(), OptimizerOptions{});
  auto op = opt.Optimize(plan->Clone());
  ASSERT_TRUE(op.ok());
  auto rows = CollectRows(op->get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 4u);
}

TEST_F(OptimizerTest, HistogramEstimates) {
  std::vector<int64_t> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i % 100);
  EquiWidthHistogram h = EquiWidthHistogram::Build(values);
  EXPECT_EQ(h.total(), 1000u);
  // Range [0, 49] holds ~half the values.
  EXPECT_NEAR(h.EstimateRange(0, 49), 500.0, 60.0);
  EXPECT_NEAR(h.EstimateRange(0, 99), 1000.0, 1.0);
  EXPECT_EQ(h.EstimateRange(200, 300), 0.0);
  // Equality ~ total/ndv = 10.
  EXPECT_NEAR(h.EstimateEquals(50, 100), 10.0, 8.0);
}

TEST_F(OptimizerTest, EmptyHistogram) {
  EquiWidthHistogram h;
  EXPECT_EQ(h.EstimateRange(0, 100), 0.0);
  EXPECT_EQ(h.EstimateEquals(5, 10), 0.0);
}

}  // namespace
}  // namespace insight
