#include <gtest/gtest.h>

#include <set>

#include "engine_test_util.h"

namespace insight {
namespace {

TEST(SeqScanTest, ScansAllRowsWithPropagation) {
  TestDb db(10);
  db.Annotate(1, "disease", 2);
  db.Annotate(5, "behavior", 1);
  auto scan = db.Scan(true);
  auto rows = CollectRows(scan.get());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 10u);
  int annotated = 0;
  for (const Row& row : *rows) {
    if (!row.summaries.empty()) ++annotated;
  }
  EXPECT_EQ(annotated, 2);
}

TEST(SeqScanTest, NoPropagationSkipsSummaries) {
  TestDb db(5);
  db.Annotate(1, "disease", 2);
  auto scan = db.Scan(false);
  auto rows = CollectRows(scan.get());
  ASSERT_TRUE(rows.ok());
  for (const Row& row : *rows) EXPECT_TRUE(row.summaries.empty());
}

TEST(IndexScanTest, RangeOverDataColumn) {
  TestDb db(20);
  ASSERT_TRUE(db.birds->CreateColumnIndex("weight").ok());
  IndexScanOp scan(db.birds, "weight", Value::Double(2.0), true,
                   Value::Double(3.0), true, db.mgr.get(), false);
  auto rows = CollectRows(&scan);
  ASSERT_TRUE(rows.ok());
  for (const Row& row : *rows) {
    const double w = row.data.at(2).AsDouble();
    EXPECT_GE(w, 2.0);
    EXPECT_LE(w, 3.0);
  }
  EXPECT_EQ(rows->size(), 5u);  // 2.0, 2.25, 2.5, 2.75, 3.0.
}

TEST(IndexScanTest, MissingIndexIsError) {
  TestDb db(5);
  IndexScanOp scan(db.birds, "name", std::nullopt, true,
                   std::nullopt, true, nullptr, false);
  EXPECT_TRUE(scan.Open().IsInvalidArgument());
}

TEST(SelectTest, DataPredicate) {
  TestDb db(10);
  SelectOp select(db.Scan(false),
                  Like(Col("family"), "family1"));
  auto rows = CollectRows(&select);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);  // Birds 1, 5, 9 of 10.
}

TEST(SummarySelectTest, LabelValuePredicate) {
  TestDb db(10);
  db.Annotate(2, "disease", 4);
  db.Annotate(3, "disease", 1);
  db.Annotate(4, "behavior", 5);
  SummarySelectOp select(
      db.Scan(true),
      Cmp(LabelValue("ClassBird1", "Disease"), CompareOp::kGt,
          Lit(Value::Int(2))));
  auto rows = CollectRows(&select);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].oid, 2u);
  // Qualifying rows keep ALL their summary objects (S semantics).
  EXPECT_EQ((*rows)[0].summaries.GetSize(), 3);
}

TEST(SummarySelectTest, KeywordPredicateOverSnippets) {
  TestDb db(10);
  // Every sentence carries the keywords, so whichever sentences the
  // summarizer elects, the snippet keeps them.
  std::string longtext =
      "Wikipedia hormone study one. Wikipedia hormone study two. "
      "Wikipedia hormone study three. Wikipedia hormone study four.";
  ASSERT_GT(longtext.size(), 80u);
  db.mgr->AddAnnotation(longtext, {{6, CellMask(0)}}).status();
  SummarySelectOp select(
      db.Scan(true),
      ContainsUnion("TextSummary1", {"wikipedia", "hormone"}));
  auto rows = CollectRows(&select);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].oid, 6u);
}

TEST(SummaryFilterTest, StructuralPredicateByName) {
  TestDb db(5);
  db.Annotate(1, "disease", 2);
  ObjectPredicate pred;
  pred.instance_name = "SimCluster";
  SummaryFilterOp filter(db.Scan(true), pred);
  auto rows = CollectRows(&filter);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 5u);  // F keeps every row.
  for (const Row& row : *rows) {
    if (row.oid == 1) {
      EXPECT_EQ(row.summaries.GetSize(), 1);
      EXPECT_EQ(row.summaries.GetSummaryObject(size_t{0})->instance_name,
                "SimCluster");
    } else {
      EXPECT_TRUE(row.summaries.empty());
    }
  }
}

TEST(SummaryFilterTest, StructuralPredicateByType) {
  TestDb db(3);
  db.Annotate(1, "disease", 1);
  ObjectPredicate pred;
  pred.type = SummaryType::kClassifier;
  SummaryFilterOp filter(db.Scan(true), pred);
  auto rows = CollectRows(&filter);
  ASSERT_TRUE(rows.ok());
  for (const Row& row : *rows) {
    for (const SummaryObject& obj : row.summaries.objects()) {
      EXPECT_EQ(obj.type, SummaryType::kClassifier);
    }
  }
}

TEST(ProjectTest, ReordersColumnsAndAdjustsSummaries) {
  TestDb db(5);
  // Annotation on column 0 (name) and another on column 2 (weight).
  db.mgr->AddAnnotation("diseaseword on name", {{1, CellMask(0)}}).status();
  db.mgr->AddAnnotation("diseaseword on weight", {{1, CellMask(2)}})
      .status();
  ProjectOp project(db.Scan(true), {"weight", "name"},
                    db.mgr->MakeResolver());
  auto rows = CollectRows(&project);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(project.schema().column(0).name, "weight");
  const Row* annotated = nullptr;
  for (const Row& row : *rows) {
    if (!row.summaries.empty()) annotated = &row;
  }
  ASSERT_NE(annotated, nullptr);
  // Both annotations survive (their columns are kept) with remapped masks.
  EXPECT_EQ(*annotated->summaries.GetSummaryObject("ClassBird1")
                 ->GetLabelValue("Disease"),
            2);
}

TEST(ProjectTest, DropsAnnotationEffectsOfRemovedColumns) {
  TestDb db(5);
  db.mgr->AddAnnotation("diseaseword on name", {{1, CellMask(0)}}).status();
  db.mgr->AddAnnotation("diseaseword on weight", {{1, CellMask(2)}})
      .status();
  ProjectOp project(db.Scan(true), {"name"}, db.mgr->MakeResolver());
  auto rows = CollectRows(&project);
  ASSERT_TRUE(rows.ok());
  for (const Row& row : *rows) {
    if (row.summaries.empty()) continue;
    EXPECT_EQ(*row.summaries.GetSummaryObject("ClassBird1")
                   ->GetLabelValue("Disease"),
              1);
  }
}

TEST(NestedLoopJoinTest, JoinsOnDataAndMergesSummaries) {
  TestDb db(6);
  db.Annotate(1, "disease", 2);

  // Second table: families with a region column, sharing no instances.
  Table* families = *db.catalog.CreateTable(
      "Families", Schema({{"fam", ValueType::kString},
                          {"region", ValueType::kString}}));
  for (int i = 0; i < 4; ++i) {
    families
        ->Insert(Tuple({Value::String("family" + std::to_string(i)),
                        Value::String(i % 2 == 0 ? "north" : "south")}))
        .status();
  }
  auto right = std::make_unique<SeqScanOp>(families, nullptr, false);
  NestedLoopJoinOp join(db.Scan(true), std::move(right),
                        Cmp(Col("family"), CompareOp::kEq, Col("fam")));
  auto rows = CollectRows(&join);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 6u);  // Every bird matches exactly one family.
  EXPECT_EQ(join.schema().num_columns(), 5u);
  int annotated = 0;
  for (const Row& row : *rows) {
    if (!row.summaries.empty()) {
      ++annotated;
      EXPECT_EQ(*row.summaries.GetSummaryObject("ClassBird1")
                     ->GetLabelValue("Disease"),
                2);
    }
  }
  EXPECT_EQ(annotated, 1);
}

TEST(IndexNLJoinTest, ProbesInnerIndexAndPreservesOuterOrder) {
  TestDb db(8);
  Table* families = *db.catalog.CreateTable(
      "Fam2", Schema({{"fam", ValueType::kString},
                      {"code", ValueType::kInt64}}));
  for (int i = 0; i < 4; ++i) {
    families
        ->Insert(Tuple({Value::String("family" + std::to_string(i)),
                        Value::Int(i)}))
        .status();
  }
  ASSERT_TRUE(families->CreateColumnIndex("fam").ok());
  IndexNLJoinOp join(db.Scan(false), families, "fam", Col("family"),
                     nullptr, false);
  auto rows = CollectRows(&join);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 8u);
  // Outer (heap) order preserved: bird0, bird1, ...
  for (size_t i = 0; i < rows->size(); ++i) {
    EXPECT_EQ((*rows)[i].data.at(0).AsString(),
              "bird" + std::to_string(i));
  }
}

TEST(SummaryJoinTest, NestedLoopComparisonForm) {
  // Two versions of the same table; join where disease counts differ.
  TestDb v1(5);
  v1.Annotate(1, "disease", 3);
  v1.Annotate(2, "disease", 2);

  std::vector<Row> v2_rows;
  {
    auto rows = CollectRows(v1.Scan(true).get());
    ASSERT_TRUE(rows.ok());
    v2_rows = *rows;
    // Tamper: bump bird1's disease count in "V2" by replacing its set.
    for (Row& row : v2_rows) {
      if (row.oid == 1) {
        SummaryObject* obj = row.summaries.GetSummaryObject("ClassBird1");
        obj->elements[0].push_back(ElementRef{9999, 1});
        obj->reps[0].count = 4;
      }
    }
  }
  SummaryJoinPredicate pred;
  pred.left_expr = And(Cmp(Col("name"), CompareOp::kEq, Col("name")),
                       Lit(Value::Bool(true)));  // Placeholder, replaced:
  pred.left_expr = LabelValue("ClassBird1", "Disease");
  pred.op = CompareOp::kNe;
  pred.right_expr = LabelValue("ClassBird1", "Disease");

  auto right = std::make_unique<VectorSourceOp>(v1.birds->schema(),
                                                std::move(v2_rows));
  SummaryJoinOp join(v1.Scan(true), std::move(right), std::move(pred));
  auto rows = CollectRows(&join);
  ASSERT_TRUE(rows.ok());
  // Pairs where counts differ. V1 counts: {1:3, 2:2}; V2: {1:4, 2:2}.
  // Un-annotated rows have NULL label values -> never join.
  // Differing pairs: (1,1):3 vs 4 yes; (1,2):3 vs 2 yes; (2,1):2 vs 4 yes;
  // (2,2) equal no.
  EXPECT_EQ(rows->size(), 3u);
}

TEST(SummaryJoinTest, IndexStrategyEqualityProbe) {
  TestDb left_db(5);
  left_db.Annotate(1, "disease", 3);
  left_db.Annotate(2, "disease", 1);

  TestDb right_db(5);
  right_db.Annotate(3, "disease", 3);
  right_db.Annotate(4, "disease", 2);
  auto right_index = *SummaryBTree::Create(
      &right_db.storage, &right_db.pool, right_db.mgr.get(), "ClassBird1",
      SummaryBTree::Options{});

  SummaryJoinOp join(left_db.Scan(true), right_db.birds,
                     right_db.mgr.get(), right_index.get(), "ClassBird1",
                     "Disease", true);
  auto rows = CollectRows(&join);
  ASSERT_TRUE(rows.ok());
  // Left bird1 (count 3) matches right bird3 (count 3); left bird2
  // (count 1) matches nothing; un-annotated left rows have no object.
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].data.at(0).AsString(), "bird0");  // left bird oid 1
  EXPECT_EQ((*rows)[0].data.at(3).AsString(), "bird2");  // right bird oid 3
}

TEST(SortTest, DataSortAscendingDescending) {
  TestDb db(10);
  std::vector<SortKey> keys;
  keys.push_back(SortKey{Col("weight"), true});
  SortOp sort(db.Scan(false), std::move(keys), SortOp::Mode::kMemory);
  auto rows = CollectRows(&sort);
  ASSERT_TRUE(rows.ok());
  for (size_t i = 1; i < rows->size(); ++i) {
    EXPECT_GE((*rows)[i - 1].data.at(2).AsDouble(),
              (*rows)[i].data.at(2).AsDouble());
  }
  EXPECT_FALSE(sort.summary_based());
}

TEST(SortTest, SummarySortByLabelValue) {
  TestDb db(6);
  db.Annotate(1, "disease", 5);
  db.Annotate(2, "disease", 1);
  db.Annotate(3, "disease", 9);
  std::vector<SortKey> keys;
  keys.push_back(SortKey{LabelValue("ClassBird1", "Disease"), true});
  SortOp sort(db.Scan(true), std::move(keys), SortOp::Mode::kMemory);
  EXPECT_TRUE(sort.summary_based());
  auto rows = CollectRows(&sort);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 6u);
  EXPECT_EQ((*rows)[0].oid, 3u);
  EXPECT_EQ((*rows)[1].oid, 1u);
  EXPECT_EQ((*rows)[2].oid, 2u);
  // NULL label values (no summaries) sort last under DESC.
}

TEST(SortTest, ExternalSortMatchesMemorySort) {
  TestDb db(50);
  for (int i = 1; i <= 50; ++i) {
    db.Annotate(static_cast<Oid>(i), "disease", (i * 13) % 7);
  }
  auto make_keys = [] {
    std::vector<SortKey> keys;
    keys.push_back(SortKey{LabelValue("ClassBird1", "Disease"), false});
    return keys;
  };
  SortOp mem(db.Scan(true), make_keys(), SortOp::Mode::kMemory);
  auto mem_rows = CollectRows(&mem);
  ASSERT_TRUE(mem_rows.ok());

  // Tiny budget forces several spilled runs.
  SortOp ext(db.Scan(true), make_keys(), SortOp::Mode::kExternal,
             &db.storage, &db.pool, /*memory_budget_bytes=*/4096);
  auto ext_rows = CollectRows(&ext);
  ASSERT_TRUE(ext_rows.ok());
  EXPECT_GT(ext.runs_spilled(), 1u);

  ASSERT_EQ(mem_rows->size(), ext_rows->size());
  const Schema& schema = db.birds->schema();
  auto key = LabelValue("ClassBird1", "Disease");
  for (size_t i = 0; i < mem_rows->size(); ++i) {
    EXPECT_EQ(key->Eval((*mem_rows)[i], schema)->ToString(),
              key->Eval((*ext_rows)[i], schema)->ToString())
        << "position " << i;
  }
}

TEST(HashAggregateTest, GroupCountsAndSummaryMerge) {
  TestDb db(8);
  db.Annotate(1, "disease", 2);   // bird0: family0
  db.Annotate(5, "disease", 3);   // bird4: family0
  db.Annotate(2, "behavior", 1);  // bird1: family1

  std::vector<AggregateSpec> aggs;
  aggs.push_back(AggregateSpec{AggregateSpec::Kind::kCount, nullptr, "cnt"});
  HashAggregateOp agg(db.Scan(true), {"family"}, std::move(aggs),
                      db.mgr->MakeResolver());
  auto rows = CollectRows(&agg);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 4u);
  for (const Row& row : *rows) {
    EXPECT_EQ(row.data.at(1).AsInt(), 2);  // 8 birds over 4 families.
    if (row.data.at(0).AsString() == "family0") {
      // The annotations were attached to column 0 (name); grouping on
      // family projects name out, eliminating their effects: the merged
      // classifier (if it survives) reports zero.
      const SummaryObject* obj =
          row.summaries.GetSummaryObject("ClassBird1");
      if (obj != nullptr) {
        EXPECT_EQ(*obj->GetLabelValue("Disease"), 0);
      }
    }
  }
}

TEST(HashAggregateTest, GroupedColumnAnnotationsSurviveMerge) {
  TestDb db(8);
  // Attach annotations to the FAMILY column so grouping keeps them.
  db.Annotate(1, "disease", 2, /*col=*/1);  // bird0: family0
  db.Annotate(5, "disease", 3, /*col=*/1);  // bird4: family0

  std::vector<AggregateSpec> aggs;
  aggs.push_back(AggregateSpec{AggregateSpec::Kind::kCount, nullptr, "cnt"});
  HashAggregateOp agg(db.Scan(true), {"family"}, std::move(aggs),
                      db.mgr->MakeResolver());
  auto rows = CollectRows(&agg);
  ASSERT_TRUE(rows.ok());
  bool found = false;
  for (const Row& row : *rows) {
    if (row.data.at(0).AsString() != "family0") continue;
    found = true;
    const SummaryObject* obj = row.summaries.GetSummaryObject("ClassBird1");
    ASSERT_NE(obj, nullptr);
    EXPECT_EQ(*obj->GetLabelValue("Disease"), 5);  // 2 + 3 merged.
  }
  EXPECT_TRUE(found);
}

TEST(HashAggregateTest, SumMinMaxAvg) {
  TestDb db(6);
  std::vector<AggregateSpec> aggs;
  aggs.push_back(AggregateSpec{AggregateSpec::Kind::kSum, Col("weight"),
                               "total"});
  aggs.push_back(AggregateSpec{AggregateSpec::Kind::kMin, Col("weight"),
                               "lightest"});
  aggs.push_back(AggregateSpec{AggregateSpec::Kind::kMax, Col("weight"),
                               "heaviest"});
  aggs.push_back(AggregateSpec{AggregateSpec::Kind::kAvg, Col("weight"),
                               "mean"});
  HashAggregateOp agg(db.Scan(false), {}, std::move(aggs),
                      NullResolver());
  auto rows = CollectRows(&agg);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  const Row& row = (*rows)[0];
  // Weights: 1.0, 1.25, ..., 2.25; sum = 9.75 (int-truncated to 9).
  EXPECT_EQ(row.data.at(0).AsInt(), 9);
  EXPECT_DOUBLE_EQ(row.data.at(1).AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(row.data.at(2).AsDouble(), 2.25);
  EXPECT_NEAR(row.data.at(3).AsDouble(), 9.75 / 6, 1e-9);
}

TEST(DistinctTest, CollapsesDuplicatesAndMergesSummaries) {
  TestDb db(4);
  db.Annotate(1, "disease", 1);
  db.Annotate(2, "disease", 2);
  // Project to family only -> birds 1 and 2 (family1, family2) stay
  // distinct; duplicates across the 4 families collapse pairwise? With 4
  // birds and 4 families all are distinct; instead project to a constant
  // shape: reuse family column (4 distinct) -> dedup on weight band.
  auto project = std::make_unique<ProjectOp>(
      db.Scan(true), std::vector<std::string>{"family"},
      db.mgr->MakeResolver());
  DistinctOp distinct{std::move(project)};
  auto rows = CollectRows(&distinct);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 4u);
}

TEST(LimitTest, StopsEarly) {
  TestDb db(10);
  LimitOp limit(db.Scan(false), 3);
  auto rows = CollectRows(&limit);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
}

TEST(ExplainTest, TreeRendering) {
  TestDb db(3);
  SummarySelectOp select(
      db.Scan(true), Cmp(LabelValue("ClassBird1", "Disease"), CompareOp::kGt,
                         Lit(Value::Int(0))));
  const std::string plan = select.ExplainTree();
  EXPECT_NE(plan.find("SummarySelect[S]"), std::string::npos);
  EXPECT_NE(plan.find("SeqScan(Birds"), std::string::npos);
}

// The paper's Example 1 (Figure 3) as an integration test: an SPJ query
// over two annotated relations with projection-before-merge semantics.
TEST(PaperExample1Test, SelectProjectJoinPropagation) {
  StorageManager storage(StorageManager::Backend::kMemory);
  BufferPool pool(&storage, 4096);
  Catalog catalog(&storage, &pool);

  // R(a, b, c, d): tuple r = (1, 2, 30, 40).
  Table* r_table = *catalog.CreateTable(
      "R", Schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64},
                   {"c", ValueType::kInt64}, {"d", ValueType::kInt64}}));
  Oid r = *r_table->Insert(Tuple({Value::Int(1), Value::Int(2),
                                  Value::Int(30), Value::Int(40)}));
  auto r_store = *AnnotationStore::Create(&catalog, "R", 4);
  auto r_mgr = *SummaryManager::Create(&catalog, r_table, r_store.get());

  // S(x, y, z): tuple s = (1, 7, 9).
  Table* s_table = *catalog.CreateTable(
      "S", Schema({{"x", ValueType::kInt64}, {"y", ValueType::kInt64},
                   {"z", ValueType::kInt64}}));
  Oid s = *s_table->Insert(
      Tuple({Value::Int(1), Value::Int(7), Value::Int(9)}));
  auto s_store = *AnnotationStore::Create(&catalog, "S", 3);
  auto s_mgr = *SummaryManager::Create(&catalog, s_table, s_store.get());

  // A classifier shared by both relations (ClassBird2-style: merged on
  // join) — untrained, so everything classifies as the last label.
  auto model = std::make_shared<NaiveBayesClassifier>(
      std::vector<std::string>{"Provenance", "Comment"});
  SummaryInstance shared = SummaryInstance::Classifier(
      "ClassBird2", {"Provenance", "Comment"}, model);
  r_mgr->LinkInstance(shared).ok();
  s_mgr->LinkInstance(shared).ok();
  // An instance only on R (ClassBird1-style: propagates unchanged).
  auto model2 = std::make_shared<NaiveBayesClassifier>(
      std::vector<std::string>{"Behavior"});
  r_mgr->LinkInstance(SummaryInstance::Classifier("ClassBird1", {"Behavior"},
                                                  model2))
      .ok();

  // Annotations on r: 2 comments on kept columns (a, b), 1 comment on the
  // projected-out column c.
  r_mgr->AddAnnotation("comment on a", {{r, CellMask(0)}}).status();
  r_mgr->AddAnnotation("comment on b", {{r, CellMask(1)}}).status();
  r_mgr->AddAnnotation("comment on c", {{r, CellMask(2)}}).status();
  // Annotations on s: 1 comment on kept column z, 1 on projected-out y,
  // and x is kept through the join then projected at the end.
  s_mgr->AddAnnotation("comment on z", {{s, CellMask(2)}}).status();
  s_mgr->AddAnnotation("comment on y", {{s, CellMask(1)}}).status();

  // Query: Select r.a, r.b, s.z From R, S Where r.a = s.x And r.b = 2.
  // Plan per Figure 3: project early (keep join column), select, join,
  // final project.
  auto r_scan = std::make_unique<SeqScanOp>(r_table, r_mgr.get(), true);
  auto r_proj = std::make_unique<ProjectOp>(
      std::move(r_scan), std::vector<std::string>{"a", "b"},
      r_mgr->MakeResolver());
  auto r_sel = std::make_unique<SelectOp>(
      std::move(r_proj), Cmp(Col("b"), CompareOp::kEq, Lit(Value::Int(2))));

  auto s_scan = std::make_unique<SeqScanOp>(s_table, s_mgr.get(), true);
  auto s_proj = std::make_unique<ProjectOp>(
      std::move(s_scan), std::vector<std::string>{"x", "z"},
      s_mgr->MakeResolver());

  auto join = std::make_unique<NestedLoopJoinOp>(
      std::move(r_sel), std::move(s_proj),
      Cmp(Col("a"), CompareOp::kEq, Col("x")));
  ProjectOp final_proj(std::move(join), {"a", "b", "z"},
                       r_mgr->MakeResolver());

  auto rows = CollectRows(&final_proj);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  const Row& out = (*rows)[0];
  EXPECT_EQ(out.data.at(0).AsInt(), 1);
  EXPECT_EQ(out.data.at(2).AsInt(), 9);

  // ClassBird2 merged across both sides: r contributes 2 surviving
  // comments (a, b), s contributes 1 (z); c's and y's were eliminated by
  // the early projections.
  const SummaryObject* merged = out.summaries.GetSummaryObject("ClassBird2");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(*merged->GetLabelValue("Comment"), 3);
  // ClassBird1 exists only on R: propagates unchanged (2 kept comments).
  const SummaryObject* solo = out.summaries.GetSummaryObject("ClassBird1");
  ASSERT_NE(solo, nullptr);
  EXPECT_EQ(*solo->GetLabelValue("Behavior"), 2);
}

// ---------------------------------------------------------------------------
// Batch executor: rewind and batch-vs-row equivalence, parameterized over
// the plan shapes that implement NextBatchImpl natively.
// ---------------------------------------------------------------------------

// Drives a plan strictly through the row-at-a-time interface.
Result<std::vector<Row>> CollectRowsOneAtATime(PhysicalOperator* op) {
  INSIGHT_RETURN_NOT_OK(op->Open());
  std::vector<Row> out;
  Row row;
  while (true) {
    INSIGHT_ASSIGN_OR_RETURN(bool has, op->Next(&row));
    if (!has) break;
    out.push_back(row);
  }
  op->Close();
  return out;
}

std::vector<std::string> Repr(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& row : rows) {
    out.push_back(std::to_string(row.oid) + "|" + row.data.ToString() + "|" +
                  row.summaries.ToString());
  }
  return out;
}

struct PlanCase {
  const char* name;
  OpPtr (*build)(TestDb&);
};

void PrintTo(const PlanCase& c, std::ostream* os) { *os << c.name; }

const PlanCase kPlanCases[] = {
    {"SeqScan", [](TestDb& db) { return db.Scan(true); }},
    {"IndexScan",
     [](TestDb& db) -> OpPtr {
       db.birds->CreateColumnIndex("weight").ok();
       return std::make_unique<IndexScanOp>(
           db.birds, "weight", Value::Double(1.5), true, Value::Double(5.0),
           true, db.mgr.get(), true);
     }},
    {"Select",
     [](TestDb& db) -> OpPtr {
       return std::make_unique<SelectOp>(db.Scan(false),
                                         Like(Col("family"), "family1"));
     }},
    {"SummarySelect",
     [](TestDb& db) -> OpPtr {
       return std::make_unique<SummarySelectOp>(
           db.Scan(true), Cmp(LabelValue("ClassBird1", "Disease"),
                              CompareOp::kGt, Lit(Value::Int(0))));
     }},
    {"SummaryFilter",
     [](TestDb& db) -> OpPtr {
       ObjectPredicate pred;
       pred.instance_name = "ClassBird1";
       return std::make_unique<SummaryFilterOp>(db.Scan(true), pred);
     }},
    {"Project",
     [](TestDb& db) -> OpPtr {
       return std::make_unique<ProjectOp>(
           db.Scan(true), std::vector<std::string>{"family", "name"},
           db.mgr->MakeResolver());
     }},
    {"HashJoin",
     [](TestDb& db) -> OpPtr {
       return std::make_unique<HashJoinOp>(db.Scan(true), db.Scan(false),
                                           "family", "family", nullptr);
     }},
    {"HashAggregate",
     [](TestDb& db) -> OpPtr {
       std::vector<AggregateSpec> aggs;
       aggs.push_back(
           AggregateSpec{AggregateSpec::Kind::kCount, nullptr, "cnt"});
       aggs.push_back(
           AggregateSpec{AggregateSpec::Kind::kSum, Col("weight"), "total"});
       return std::make_unique<HashAggregateOp>(
           db.Scan(true), std::vector<std::string>{"family"}, std::move(aggs),
           db.mgr->MakeResolver());
     }},
    {"SortMemory",
     [](TestDb& db) -> OpPtr {
       std::vector<SortKey> keys;
       keys.push_back(SortKey{Col("weight"), false});
       return std::make_unique<SortOp>(db.Scan(true), std::move(keys),
                                       SortOp::Mode::kMemory);
     }},
    {"SortExternal",
     [](TestDb& db) -> OpPtr {
       std::vector<SortKey> keys;
       keys.push_back(SortKey{Col("weight"), true});
       return std::make_unique<SortOp>(db.Scan(true), std::move(keys),
                                       SortOp::Mode::kExternal, &db.storage,
                                       &db.pool,
                                       /*memory_budget_bytes=*/2048);
     }},
    {"Limit",
     [](TestDb& db) -> OpPtr {
       return std::make_unique<LimitOp>(db.Scan(true), 7);
     }},
    // Legacy operators (default batch adapter); NestedLoopJoin's inner
    // rescan is the strongest rewind dependency in the tree.
    {"NestedLoopJoin",
     [](TestDb& db) -> OpPtr {
       return std::make_unique<NestedLoopJoinOp>(
           db.Scan(true), db.Scan(false),
           Cmp(Col("weight"), CompareOp::kLt, Lit(Value::Double(2.0))));
     }},
    {"Distinct",
     [](TestDb& db) -> OpPtr {
       auto project = std::make_unique<ProjectOp>(
           db.Scan(true), std::vector<std::string>{"family"},
           db.mgr->MakeResolver());
       return std::make_unique<DistinctOp>(std::move(project));
     }},
};

class BatchExecutorTest : public ::testing::TestWithParam<PlanCase> {
 protected:
  BatchExecutorTest() : db_(20) {
    db_.Annotate(1, "disease", 2);
    db_.Annotate(5, "behavior", 1);
    db_.Annotate(9, "disease", 4, /*col=*/1);
    db_.Annotate(14, "other", 3);
  }

  TestDb db_;
};

// Satellite: re-running an already-consumed plan (Open -> drain -> Close,
// twice) must produce identical output — Open fully rewinds operator state
// including the batch-execution buffers and counters.
TEST_P(BatchExecutorTest, DoubleExecutionMatches) {
  OpPtr op = GetParam().build(db_);
  auto first = CollectRows(op.get());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = CollectRows(op.get());
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(Repr(*first), Repr(*second));
  EXPECT_GT(first->size(), 0u);
  EXPECT_EQ(op->rows_produced(), second->size());
}

// The batch path (CollectRows drives NextBatch) must emit exactly the rows
// the row-at-a-time path emits, in the same order.
TEST_P(BatchExecutorTest, BatchMatchesRowAtATime) {
  OpPtr op = GetParam().build(db_);
  auto row_path = CollectRowsOneAtATime(op.get());
  ASSERT_TRUE(row_path.ok()) << row_path.status().ToString();
  auto batch_path = CollectRows(op.get());
  ASSERT_TRUE(batch_path.ok()) << batch_path.status().ToString();
  EXPECT_EQ(Repr(*row_path), Repr(*batch_path));
}

// Tiny batches force every operator through its partial-batch paths.
TEST_P(BatchExecutorTest, TinyBatchesMatchDefaultCapacity) {
  ExecutionContext ctx(&db_.storage, &db_.pool, /*batch_size=*/3);
  OpPtr op = GetParam().build(db_);
  auto baseline = CollectRows(op.get());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  op->AttachContext(&ctx);
  auto tiny = CollectRows(op.get());
  ASSERT_TRUE(tiny.ok()) << tiny.status().ToString();
  EXPECT_EQ(Repr(*baseline), Repr(*tiny));
}

INSTANTIATE_TEST_SUITE_P(Plans, BatchExecutorTest,
                         ::testing::ValuesIn(kPlanCases),
                         [](const ::testing::TestParamInfo<PlanCase>& info) {
                           return std::string(info.param.name);
                         });

// Satellite: an external sort under a tiny budget must spill, and its
// batch-mode output must equal the in-memory sort's output row-for-row.
// The sort key (weight) is unique per row, so the comparison is total.
TEST(SortTest, ExternalBatchOutputMatchesMemoryRowForRow) {
  TestDb db(64);
  for (int i = 1; i <= 64; ++i) {
    db.Annotate(static_cast<Oid>(i), "disease", (i * 7) % 5);
  }
  auto make_keys = [] {
    std::vector<SortKey> keys;
    keys.push_back(SortKey{Col("weight"), false});
    return keys;
  };
  SortOp mem(db.Scan(true), make_keys(), SortOp::Mode::kMemory);
  auto mem_rows = CollectRowsOneAtATime(&mem);
  ASSERT_TRUE(mem_rows.ok()) << mem_rows.status().ToString();

  SortOp ext(db.Scan(true), make_keys(), SortOp::Mode::kExternal, &db.storage,
             &db.pool, /*memory_budget_bytes=*/2048);
  auto ext_rows = CollectRows(&ext);  // Batch-mode drive.
  ASSERT_TRUE(ext_rows.ok()) << ext_rows.status().ToString();
  EXPECT_GT(ext.runs_spilled(), 0u);
  ASSERT_EQ(mem_rows->size(), ext_rows->size());
  EXPECT_EQ(Repr(*mem_rows), Repr(*ext_rows));
}

}  // namespace
}  // namespace insight
