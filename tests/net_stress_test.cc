// Network-layer stress tests:
//  1. N client threads run mixed statement streams concurrently against a
//     live server; the final state must equal a serial replay of the same
//     streams on an embedded database (statement-gate correctness).
//  2. A forked server process is killed at the net_before_reply crash
//     point mid-INSERT; a restarted server over the same directory must
//     serve every acknowledged statement back over the wire (end-to-end
//     WAL recovery through the protocol).

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "sql/database.h"
#include "wal/crash_point.h"

namespace insight {
namespace {

std::string MakeTempDir(const std::string& tag) {
  static std::atomic<int> counter{0};
  std::string dir = ::testing::TempDir() + "/insight_net_" + tag + "_" +
                    std::to_string(::getpid()) + "_" +
                    std::to_string(counter.fetch_add(1));
  std::filesystem::remove_all(dir);
  return dir;
}

/// The per-thread statement stream: each thread owns its own table, so a
/// serial replay in any thread order reaches the same state, while the
/// interleaved SELECTs against the shared table exercise the shared side
/// of the statement gate during writes.
std::vector<std::string> ThreadStatements(int tid, int statements) {
  const std::string table = "T" + std::to_string(tid);
  std::vector<std::string> out;
  out.push_back("CREATE TABLE " + table + " (n INT, tag STRING)");
  for (int i = 0; i < statements; ++i) {
    switch (i % 4) {
      case 0:
      case 1:
        out.push_back("INSERT INTO " + table + " VALUES (" +
                      std::to_string(i) + ", 'row" + std::to_string(i) +
                      "')");
        break;
      case 2:
        out.push_back("SELECT n FROM " + table + " WHERE n >= 0 ORDER BY n");
        break;
      default:
        out.push_back("SELECT tag FROM Shared ORDER BY tag LIMIT 5");
        break;
    }
  }
  return out;
}

TEST(NetStressTest, ConcurrentMixedWorkloadMatchesSerialReplay) {
  constexpr int kThreads = 4;
  constexpr int kStatementsPerThread = 32;

  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE Shared (tag STRING)").ok());
  ASSERT_TRUE(
      db.Execute("INSERT INTO Shared VALUES ('a'), ('b'), ('c')").ok());

  InsightServer::Options options;
  options.port = 0;
  options.io_threads = 4;
  InsightServer server(&db, options);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int tid = 0; tid < kThreads; ++tid) {
    workers.emplace_back([&, tid] {
      auto client = InsightClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (const std::string& sql :
           ThreadStatements(tid, kStatementsPerThread)) {
        auto result = (*client)->Execute(sql);
        if (!result.ok()) {
          ADD_FAILURE() << "thread " << tid << ": " << sql << " -> "
                        << result.status().ToString();
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  ASSERT_EQ(failures.load(), 0);

  // Serial replay of the same streams on an embedded database.
  Database replay;
  ASSERT_TRUE(replay.Execute("CREATE TABLE Shared (tag STRING)").ok());
  ASSERT_TRUE(
      replay.Execute("INSERT INTO Shared VALUES ('a'), ('b'), ('c')").ok());
  for (int tid = 0; tid < kThreads; ++tid) {
    for (const std::string& sql :
         ThreadStatements(tid, kStatementsPerThread)) {
      ASSERT_TRUE(replay.Execute(sql).ok()) << sql;
    }
  }

  // Diff every table, over the wire, against the replay.
  auto checker = InsightClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(checker.ok());
  std::vector<std::string> probes;
  for (int tid = 0; tid < kThreads; ++tid) {
    probes.push_back("SELECT n, tag FROM T" + std::to_string(tid) +
                     " ORDER BY n, tag");
  }
  probes.push_back("SELECT tag FROM Shared ORDER BY tag");
  for (const std::string& probe : probes) {
    auto live = (*checker)->Execute(probe);
    auto want = replay.Execute(probe);
    ASSERT_TRUE(live.ok()) << probe << ": " << live.status().ToString();
    ASSERT_TRUE(want.ok()) << probe;
    ASSERT_EQ(live->rows.size(), want->rows.size()) << probe;
    for (size_t r = 0; r < want->rows.size(); ++r) {
      for (size_t c = 0; c < want->rows[r].size(); ++c) {
        EXPECT_EQ(live->rows[r].at(c).ToString(),
                  want->rows[r].at(c).ToString())
            << probe << " row " << r << " col " << c;
      }
    }
  }

  server.NudgeShutdown();
  server.Shutdown();
}

// ---------- Kill -9 mid-write, recover, verify over the wire ----------

Database::Options DurableOptions(const std::string& dir) {
  Database::Options options;
  options.backend = StorageManager::Backend::kFile;
  options.directory = dir;
  options.wal_sync = Database::WalSyncMode::kGroupCommit;
  return options;
}

/// Child process body: serve `dir` on an ephemeral port, publish it to
/// `port_file`, and arm net_before_reply after a short delay so a handful
/// of client statements are acknowledged before the crash. Never returns.
[[noreturn]] void RunCrashingServer(const std::string& dir,
                                    const std::string& port_file) {
  auto opened = Database::Open(dir, DurableOptions(dir));
  if (!opened.ok()) ::_Exit(3);
  auto db = std::move(*opened);
  if (!db->Execute("CREATE TABLE Acked (n INT)").ok()) ::_Exit(4);
  if (!db->WalSync().ok()) ::_Exit(5);

  InsightServer::Options options;
  options.port = 0;
  options.io_threads = 2;
  options.port_file = port_file;
  InsightServer server(db.get(), options);
  if (!server.Start().ok()) ::_Exit(6);

  // Let some INSERTs commit and be acknowledged first; the next execute
  // after arming dies at net_before_reply (post-WAL-sync, pre-reply).
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ArmCrashPoint("net_before_reply");

  server.WaitForShutdownRequest();  // The crash point fires first.
  ::_Exit(7);
}

uint16_t WaitForPortFile(const std::string& port_file) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    FILE* f = std::fopen(port_file.c_str(), "r");
    if (f != nullptr) {
      unsigned port = 0;
      const bool got = std::fscanf(f, "%u", &port) == 1;
      std::fclose(f);
      if (got && port != 0) return static_cast<uint16_t>(port);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return 0;
}

TEST(NetStressTest, KillNineMidWriteRecoversEveryAcknowledgedInsert) {
  const std::string dir = MakeTempDir("kill");
  const std::string port_file = dir + ".port";
  std::remove(port_file.c_str());

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    RunCrashingServer(dir, port_file);  // _Exits, never returns.
  }

  const uint16_t port = WaitForPortFile(port_file);
  ASSERT_NE(port, 0) << "server child never published its port";
  auto connected = InsightClient::Connect("127.0.0.1", port);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  auto client = std::move(*connected);

  // Insert until the armed crash point kills the server mid-statement.
  // Every acknowledged INSERT ran its WAL sync before the reply, so all
  // of them must survive; the crashed statement itself committed before
  // the kill point, so at most one unacknowledged row may also appear.
  int acked = 0;
  for (int i = 0; i < 100000; ++i) {
    auto result =
        client->Execute("INSERT INTO Acked VALUES (" + std::to_string(i) +
                        ")");
    if (!result.ok()) break;
    ++acked;
  }
  ASSERT_GT(acked, 0) << "crash fired before any statement was acknowledged";

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), kCrashPointExitCode)
      << "child exited " << WEXITSTATUS(status) << ", not the crash code";

  // Restart a server over the same directory and verify over the wire.
  auto reopened = Database::Open(dir, DurableOptions(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto db = std::move(*reopened);
  InsightServer::Options options;
  options.port = 0;
  InsightServer server(db.get(), options);
  ASSERT_TRUE(server.Start().ok());

  auto verify = InsightClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(verify.ok());
  auto rows = (*verify)->Execute("SELECT n FROM Acked ORDER BY n");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  const int recovered = static_cast<int>(rows->rows.size());
  EXPECT_GE(recovered, acked);
  EXPECT_LE(recovered, acked + 1);
  // The acknowledged prefix is exactly 0..acked-1, in order.
  for (int i = 0; i < acked; ++i) {
    EXPECT_EQ(rows->rows[i].at(0).AsInt(), i);
  }

  server.NudgeShutdown();
  server.Shutdown();
  (*verify)->Close();
  db.reset();
  std::filesystem::remove_all(dir);
  std::remove(port_file.c_str());
}

TEST(NetStressTest, ServingCrashPointIsRegisteredSeparately) {
  // The serving-path point must be exercised by these tests, not by the
  // storage kill-point matrix (whose workload never opens a socket).
  const auto& serving = ServingCrashPoints();
  ASSERT_EQ(serving.size(), 4u);
  EXPECT_EQ(serving[0], "net_before_reply");
  EXPECT_EQ(serving[1], "repl_before_ship");
  EXPECT_EQ(serving[2], "repl_after_ship");
  EXPECT_EQ(serving[3], "repl_after_ack_read");
  for (const std::string& name : RegisteredCrashPoints()) {
    for (const std::string& sp : serving) EXPECT_NE(name, sp);
  }
}

}  // namespace
}  // namespace insight
