#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "mining/clustream.h"
#include "mining/naive_bayes.h"
#include "mining/snippet.h"

namespace insight {
namespace {

std::shared_ptr<NaiveBayesClassifier> TrainedBirdClassifier() {
  auto model = std::make_shared<NaiveBayesClassifier>(
      std::vector<std::string>{"Disease", "Anatomy", "Behavior", "Other"});
  // A handful of seed documents per label.
  model->Train("bird shows infection symptoms and avian flu disease",
               "Disease");
  model->Train("observed sick with parasite infection illness", "Disease");
  model->Train("avian influenza virus outbreak disease spread", "Disease");
  model->Train("wing span beak shape feather color anatomy", "Anatomy");
  model->Train("body weight plumage beak length measurements", "Anatomy");
  model->Train("large beak broad wings anatomy structure", "Anatomy");
  model->Train("eating stonewort foraging behavior at dawn", "Behavior");
  model->Train("migration flight pattern nesting behavior", "Behavior");
  model->Train("feeding on plants behavior during winter", "Behavior");
  model->Train("general note about the sighting location", "Other");
  model->Train("metadata comment provenance of this record", "Other");
  return model;
}

TEST(NaiveBayesTest, ClassifiesBySignalWords) {
  auto model = TrainedBirdClassifier();
  EXPECT_EQ(model->Classify("the bird had a nasty infection"), "Disease");
  EXPECT_EQ(model->Classify("its beak and wing measurements"), "Anatomy");
  EXPECT_EQ(model->Classify("seen foraging and eating at dawn"), "Behavior");
}

TEST(NaiveBayesTest, UntrainedFallsBackToLastLabel) {
  NaiveBayesClassifier model({"A", "B", "Other"});
  EXPECT_EQ(model.Classify("anything at all"), "Other");
}

TEST(NaiveBayesTest, RejectsUnknownLabel) {
  NaiveBayesClassifier model({"A", "B"});
  EXPECT_TRUE(model.Train("text", "C").IsInvalidArgument());
  EXPECT_TRUE(model.Train("text", "a").ok());  // Case-insensitive.
}

TEST(NaiveBayesTest, PriorsMatterForEmptyText) {
  NaiveBayesClassifier model({"Common", "Rare"});
  for (int i = 0; i < 9; ++i) model.Train("word", "Common").ok();
  model.Train("word", "Rare").ok();
  // No informative words: the prior should dominate.
  EXPECT_EQ(model.Classify(""), "Common");
}

TEST(FeaturizeTest, NormalizedAndDeterministic) {
  TextFeature f = FeaturizeText("swan goose eating stonewort");
  double norm = 0;
  for (double v : f) norm += v * v;
  EXPECT_NEAR(norm, 1.0, 1e-9);
  EXPECT_EQ(f, FeaturizeText("swan goose eating stonewort"));
}

TEST(FeaturizeTest, EmptyTextIsZeroVector) {
  TextFeature f = FeaturizeText("...");
  for (double v : f) EXPECT_EQ(v, 0.0);
  EXPECT_EQ(CosineSimilarity(f, FeaturizeText("words here")), 0.0);
}

TEST(CosineTest, SelfSimilarityIsOne) {
  TextFeature f = FeaturizeText("some text about birds");
  EXPECT_NEAR(CosineSimilarity(f, f), 1.0, 1e-9);
}

TEST(CosineTest, DisjointTextsLowSimilarity) {
  TextFeature a = FeaturizeText("alpha beta gamma");
  TextFeature b = FeaturizeText("delta epsilon zeta");
  EXPECT_LT(CosineSimilarity(a, b), 0.8);  // Hash collisions allow some.
}

TEST(CluStreamTest, SimilarPointsShareCluster) {
  CluStream cs;
  const uint64_t c1 = cs.AddText("swan eating stonewort plants in lake");
  const uint64_t c2 = cs.AddText("swan eating stonewort plants in river");
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(cs.num_clusters(), 1u);
}

TEST(CluStreamTest, DissimilarPointsSplit) {
  CluStream cs;
  const uint64_t c1 = cs.AddText("disease infection symptoms observed");
  const uint64_t c2 = cs.AddText("wingspan beak measurements anatomy");
  EXPECT_NE(c1, c2);
  EXPECT_EQ(cs.num_clusters(), 2u);
}

TEST(CluStreamTest, CapacityTriggersMerge) {
  CluStream::Options opts;
  opts.max_clusters = 4;
  opts.min_similarity = 0.99;  // Force every point into its own cluster.
  CluStream cs(opts);
  Rng rng(9);
  for (int i = 0; i < 40; ++i) {
    std::string text;
    for (int w = 0; w < 6; ++w) {
      text += "word" + std::to_string(rng.Uniform(0, 5000)) + " ";
    }
    cs.AddText(text);
  }
  EXPECT_LE(cs.num_clusters(), 4u);
  // Total mass is conserved across merges.
  uint64_t total = 0;
  for (const auto& c : cs.Clusters()) total += c.size;
  EXPECT_EQ(total, 40u);
}

TEST(CluStreamTest, ClusterIdsStableAcrossGrowth) {
  CluStream cs;
  const uint64_t first = cs.AddText("eating stonewort foraging lake");
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(cs.AddText("eating stonewort foraging lake"), first);
  }
}

TEST(SnippetTest, ShortTextReturnedVerbatim) {
  SnippetSummarizer s;
  EXPECT_EQ(s.Summarize("A short note."), "A short note.");
  EXPECT_FALSE(s.ShouldSummarize("A short note."));
}

TEST(SnippetTest, LongTextCompressedUnderBudget) {
  SnippetSummarizer::Options opts;
  opts.min_chars = 100;
  opts.max_snippet_chars = 120;
  SnippetSummarizer s(opts);
  std::string doc;
  for (int i = 0; i < 30; ++i) {
    doc += "Sentence number " + std::to_string(i) +
           " talks about swans and lakes. ";
  }
  doc += "The key finding is that swans swans swans dominate swans. ";
  ASSERT_TRUE(s.ShouldSummarize(doc));
  const std::string snippet = s.Summarize(doc);
  EXPECT_LE(snippet.size(), opts.max_snippet_chars);
  EXPECT_FALSE(snippet.empty());
}

TEST(SnippetTest, PrefersHighSalienceSentences) {
  SnippetSummarizer::Options opts;
  opts.max_snippet_chars = 80;
  SnippetSummarizer s(opts);
  std::string doc =
      "Filler alpha beta. Filler gamma delta. "
      "Swans swans swans swans swans swans. "
      "Filler epsilon zeta. Filler eta theta.";
  // Pad so it exceeds the budget and needs selection.
  doc += std::string(" More filler unrelated words here and there.");
  const std::string snippet = s.Summarize(doc);
  EXPECT_NE(snippet.find("Swans"), std::string::npos);
}

TEST(SnippetTest, SingleGiantSentenceTruncated) {
  SnippetSummarizer::Options opts;
  opts.max_snippet_chars = 50;
  SnippetSummarizer s(opts);
  const std::string doc(500, 'a');  // No sentence boundaries.
  const std::string snippet = s.Summarize(doc);
  EXPECT_EQ(snippet.size(), 50u);
}

}  // namespace
}  // namespace insight
