// Interleaved transaction stress: N writer threads run explicit
// BEGIN/.../COMMIT transactions (with deliberate rollbacks and
// first-writer-wins conflicts on shared tuples) against one Database
// while reader threads scan at latest snapshots. Afterwards the visible
// state must equal a serial replay of exactly the committed
// transactions — nothing from a rolled-back or conflict-aborted attempt
// may surface, and every committed effect must. Run under tsan this
// also exercises the retired statement gate: readers never block on the
// write path.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "sindex/summary_btree.h"
#include "sql/database.h"

namespace insight {
namespace {

constexpr int kWriterThreads = 4;
constexpr int kReaderThreads = 2;
constexpr int kTxnsPerThread = 24;
constexpr int kSharedTuples = 4;  // Seed rows all writers contend on.

struct CommittedTxn {
  std::string row_name;      // Empty when the txn inserted no row.
  Oid annotated_tuple = 0;   // 0 when the txn annotated nothing.
  std::string annotation;
};

void SetUpSchema(Database* db) {
  ASSERT_TRUE(
      db->Execute("CREATE TABLE Items (name TEXT, family TEXT)").ok());
  ASSERT_TRUE(db->DefineClassifier("C", {"Disease", "Other"},
                                   {{"diseaseword infection", "Disease"},
                                    {"otherword note", "Other"}})
                  .ok());
  ASSERT_TRUE(db->Execute("ALTER TABLE Items ADD INDEXABLE C").ok());
  for (int i = 0; i < kSharedTuples; ++i) {
    ASSERT_TRUE(db->Execute("INSERT INTO Items VALUES ('seed" +
                            std::to_string(i) + "', 'f0')")
                    .ok());
  }
}

std::vector<Oid> ProbeOids(const SummaryBTree& index,
                           const ClassifierProbe& probe) {
  auto hits = index.Search(probe);
  EXPECT_TRUE(hits.ok()) << hits.status().ToString();
  std::vector<Oid> oids;
  if (hits.ok()) {
    for (const SummaryIndexHit& hit : *hits) {
      Oid oid = kInvalidOid;
      auto tuple = index.FetchDataTuple(hit, &oid);
      EXPECT_TRUE(tuple.ok()) << tuple.status().ToString();
      oids.push_back(oid);
    }
  }
  std::sort(oids.begin(), oids.end());
  return oids;
}

/// One writer's workload: each iteration retries a whole transaction
/// from BEGIN until it commits (first-writer-wins losers back off and
/// retry), except every fifth iteration which deliberately rolls back.
void RunWriter(Database* db, int tid, std::vector<CommittedTxn>* committed,
               std::atomic<int>* conflicts) {
  for (int i = 0; i < kTxnsPerThread; ++i) {
    const std::string row_name =
        "t" + std::to_string(tid) + "-" + std::to_string(i);
    const Oid shared = 1 + static_cast<Oid>((tid + i) % kSharedTuples);
    const std::string annotation = "diseaseword stress " + row_name;
    const bool rollback = (i % 5 == 4);

    for (;;) {
      uint64_t txn = 0;
      ASSERT_TRUE(db->Execute("BEGIN", &txn).ok());
      auto inserted = db->Execute(
          "INSERT INTO Items VALUES ('" + row_name + "', 'f1')", &txn);
      if (!inserted.ok()) {
        ASSERT_TRUE(inserted.status().IsAborted())
            << inserted.status().ToString();
        conflicts->fetch_add(1);
        std::this_thread::yield();
        continue;  // Auto-aborted; retry from BEGIN.
      }
      auto annotated =
          db->Execute("ANNOTATE Items TUPLE " + std::to_string(shared) +
                          " WITH '" + annotation + "'",
                      &txn);
      if (!annotated.ok()) {
        ASSERT_TRUE(annotated.status().IsAborted())
            << annotated.status().ToString();
        conflicts->fetch_add(1);
        std::this_thread::yield();
        continue;
      }
      if (rollback) {
        ASSERT_TRUE(db->Execute("ROLLBACK", &txn).ok());
        break;  // Deliberate abort: nothing to record, no retry.
      }
      auto commit = db->Execute("COMMIT", &txn);
      if (!commit.ok()) {
        ASSERT_TRUE(commit.status().IsAborted())
            << commit.status().ToString();
        conflicts->fetch_add(1);
        std::this_thread::yield();
        continue;
      }
      committed->push_back(CommittedTxn{row_name, shared, annotation});
      break;
    }
  }
}

/// Readers hammer latest-snapshot SELECTs while writers commit. Each
/// result must be internally consistent (no torn rows) and row counts
/// must never move backwards across successive snapshots.
void RunReader(Database* db, std::atomic<bool>* stop) {
  size_t last_count = 0;
  while (!stop->load(std::memory_order_acquire)) {
    auto result = db->Execute("SELECT * FROM Items");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (const Tuple& row : result->rows) {
      ASSERT_FALSE(row.at(0).AsString().empty());
    }
    ASSERT_GE(result->rows.size(), last_count);
    last_count = result->rows.size();
  }
}

TEST(TxnStressTest, InterleavedTxnsEqualSerialReplayOfCommitted) {
  Database db;
  SetUpSchema(&db);

  std::vector<std::vector<CommittedTxn>> per_thread(kWriterThreads);
  std::atomic<int> conflicts{0};
  std::atomic<bool> stop{false};

  // Guarantee at least one first-writer-wins conflict: hold an intent on
  // tuple 1 until some writer has lost against it, then roll back so the
  // losers' retries can win.
  uint64_t blocker = 0;
  ASSERT_TRUE(db.Execute("BEGIN", &blocker).ok());
  ASSERT_TRUE(
      db.Execute("ANNOTATE Items TUPLE 1 WITH 'diseaseword blocker'",
                 &blocker)
          .ok());

  std::vector<std::thread> threads;
  for (int r = 0; r < kReaderThreads; ++r) {
    threads.emplace_back(RunReader, &db, &stop);
  }
  for (int t = 0; t < kWriterThreads; ++t) {
    threads.emplace_back(RunWriter, &db, t, &per_thread[t], &conflicts);
  }
  while (conflicts.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(db.Execute("ROLLBACK", &blocker).ok());
  for (size_t i = kReaderThreads; i < threads.size(); ++i) threads[i].join();
  stop.store(true, std::memory_order_release);
  for (int r = 0; r < kReaderThreads; ++r) threads[r].join();

  std::vector<CommittedTxn> committed;
  for (const auto& v : per_thread) {
    committed.insert(committed.end(), v.begin(), v.end());
  }
  // Every non-rollback iteration must eventually have committed: the
  // write gate serializes statements, so each retry round has a winner.
  const size_t expected =
      static_cast<size_t>(kWriterThreads) * (kTxnsPerThread -
                                             kTxnsPerThread / 5);
  ASSERT_EQ(committed.size(), expected);

  // (1) Visible rows = seeds + exactly the committed inserts.
  auto rows = db.Execute("SELECT * FROM Items").ValueOrDie();
  std::multiset<std::string> got_names;
  for (const Tuple& row : rows.rows) {
    got_names.insert(row.at(0).AsString());
  }
  std::multiset<std::string> want_names;
  for (int i = 0; i < kSharedTuples; ++i) {
    want_names.insert("seed" + std::to_string(i));
  }
  for (const CommittedTxn& txn : committed) want_names.insert(txn.row_name);
  EXPECT_EQ(got_names, want_names);

  // (2) Visible annotations = exactly the committed ones.
  auto* mgr = *db.GetManager("Items");
  std::multiset<std::string> got_annotations;
  ASSERT_TRUE(mgr->annotations()
                  ->ForEachAnnotation([&](const Annotation& ann) {
                    got_annotations.insert(ann.text);
                    return Status::OK();
                  })
                  .ok());
  std::multiset<std::string> want_annotations;
  for (const CommittedTxn& txn : committed) {
    want_annotations.insert(txn.annotation);
  }
  EXPECT_EQ(got_annotations, want_annotations);

  // (3) The Summary-BTree answers probes exactly like a database that
  // replayed only the committed transactions serially. The contended
  // tuples are the pre-stress seeds, so their OIDs agree across runs.
  Database reference;
  SetUpSchema(&reference);
  for (const CommittedTxn& txn : committed) {
    ASSERT_TRUE(reference
                    .Execute("ANNOTATE Items TUPLE " +
                             std::to_string(txn.annotated_tuple) + " WITH '" +
                             txn.annotation + "'")
                    .ok());
  }
  const SummaryBTree* got = *db.GetSummaryIndex("Items", "C");
  const SummaryBTree* want = *reference.GetSummaryIndex("Items", "C");
  const int64_t max_count =
      static_cast<int64_t>(kWriterThreads) * kTxnsPerThread + 1;
  for (const char* label : {"Disease", "Other"}) {
    EXPECT_EQ(ProbeOids(*got, ClassifierProbe::GreaterThan(label, 0)),
              ProbeOids(*want, ClassifierProbe::GreaterThan(label, 0)))
        << label;
    EXPECT_EQ(ProbeOids(*got, ClassifierProbe::Range(label, 1, max_count)),
              ProbeOids(*want, ClassifierProbe::Range(label, 1, max_count)))
        << label;
  }
  EXPECT_GT(conflicts.load(), 0)
      << "the workload never conflicted; contention is not being tested";
}

/// Snapshot stability under concurrent commits: a transaction opened
/// before a burst of writes must read the same row count throughout.
TEST(TxnStressTest, OpenSnapshotIsStableWhileWritersCommit) {
  Database db;
  SetUpSchema(&db);

  uint64_t reader = 0;
  ASSERT_TRUE(db.Execute("BEGIN", &reader).ok());
  auto before = db.Execute("SELECT * FROM Items", &reader).ValueOrDie();

  std::vector<std::thread> writers;
  for (int t = 0; t < kWriterThreads; ++t) {
    writers.emplace_back([&db, t] {
      for (int i = 0; i < 10; ++i) {
        auto st = db.Execute("INSERT INTO Items VALUES ('w" +
                             std::to_string(t) + "-" + std::to_string(i) +
                             "', 'f2')");
        ASSERT_TRUE(st.ok()) << st.status().ToString();
      }
    });
  }
  for (auto& w : writers) w.join();

  // The open snapshot still sees only its pinned state.
  auto during = db.Execute("SELECT * FROM Items", &reader).ValueOrDie();
  EXPECT_EQ(during.rows.size(), before.rows.size());
  ASSERT_TRUE(db.Execute("COMMIT", &reader).ok());

  // A fresh snapshot sees everything.
  auto after = db.Execute("SELECT * FROM Items").ValueOrDie();
  EXPECT_EQ(after.rows.size(),
            before.rows.size() + kWriterThreads * 10);
}

}  // namespace
}  // namespace insight
