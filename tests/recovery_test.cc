#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "sindex/summary_btree.h"
#include "sql/database.h"
#include "wal/crash_point.h"

namespace insight {
namespace {

std::string MakeTempDir(const std::string& tag) {
  static std::atomic<int> counter{0};
  std::string dir = ::testing::TempDir() + "/insight_rec_" + tag + "_" +
                    std::to_string(::getpid()) + "_" +
                    std::to_string(counter.fetch_add(1));
  std::filesystem::remove_all(dir);
  return dir;
}

Schema BirdsSchema() {
  return Schema({{"name", ValueType::kString},
                 {"family", ValueType::kString},
                 {"weight", ValueType::kDouble}});
}

Tuple MakeBird(const std::string& name, const std::string& family,
               double weight) {
  return Tuple({Value::String(name), Value::String(family),
                Value::Double(weight)});
}

Status DefineBirdClassifier(Database* db) {
  return db->DefineClassifier(
      "ClassBird1", {"Disease", "Behavior", "Other"},
      {{"diseaseword infection sick", "Disease"},
       {"behaviorword eating foraging", "Behavior"},
       {"otherword comment note", "Other"}});
}

/// Sorted data-tuple OIDs a probe returns — the unit of index agreement.
std::vector<Oid> ProbeOids(const SummaryBTree& index,
                           const ClassifierProbe& probe) {
  auto hits = index.Search(probe);
  EXPECT_TRUE(hits.ok()) << hits.status().ToString();
  std::vector<Oid> oids;
  if (hits.ok()) {
    for (const SummaryIndexHit& hit : *hits) {
      // Resolve the backward pointer to the data tuple's OID; a dangling
      // pointer here would itself be an index/heap divergence.
      Oid oid = kInvalidOid;
      auto tuple = index.FetchDataTuple(hit, &oid);
      EXPECT_TRUE(tuple.ok()) << tuple.status().ToString();
      oids.push_back(oid);
    }
  }
  std::sort(oids.begin(), oids.end());
  return oids;
}

/// Rebuilds the recovered database's logical content (tuples + raw
/// annotations, same OIDs and annotation ids) into a fresh in-memory
/// database and asserts the recovered Summary-BTree answers every
/// equality/range probe exactly like the from-scratch index.
void ExpectIndexMatchesFreshRebuild(Database* recovered,
                                    const std::string& context) {
  Table* birds = *recovered->GetTable("Birds");
  auto* mgr = *recovered->GetManager("Birds");

  Database reference;
  ASSERT_TRUE(reference.CreateTable("Birds", birds->schema()).ok());
  ASSERT_TRUE(DefineBirdClassifier(&reference).ok());
  ASSERT_TRUE(reference.LinkInstance("Birds", "ClassBird1", true).ok());

  Table* ref_birds = *reference.GetTable("Birds");
  auto it = birds->Scan();
  Oid oid;
  Tuple tuple;
  while (it.Next(&oid, &tuple)) {
    ASSERT_TRUE(ref_birds->InsertWithOid(oid, tuple).ok()) << context;
  }
  auto* ref_mgr = *reference.GetManager("Birds");
  ASSERT_TRUE(mgr->annotations()
                  ->ForEachAnnotation([&](const Annotation& ann) {
                    return ref_mgr->AddAnnotationWithId(ann.id, ann.text,
                                                        ann.targets);
                  })
                  .ok())
      << context;

  const SummaryBTree* got = *recovered->GetSummaryIndex("Birds", "ClassBird1");
  const SummaryBTree* want = *reference.GetSummaryIndex("Birds", "ClassBird1");
  EXPECT_EQ(got->num_entries(), want->num_entries()) << context;
  for (const char* label : {"Disease", "Behavior", "Other"}) {
    for (int64_t count = 0; count <= 6; ++count) {
      EXPECT_EQ(ProbeOids(*got, ClassifierProbe::Equal(label, count)),
                ProbeOids(*want, ClassifierProbe::Equal(label, count)))
          << context << ": Equal(" << label << ", " << count << ")";
    }
    EXPECT_EQ(ProbeOids(*got, ClassifierProbe::Range(label, 1, 5)),
              ProbeOids(*want, ClassifierProbe::Range(label, 1, 5)))
        << context << ": Range(" << label << ")";
    EXPECT_EQ(ProbeOids(*got, ClassifierProbe::GreaterThan(label, 0)),
              ProbeOids(*want, ClassifierProbe::GreaterThan(label, 0)))
        << context << ": GreaterThan(" << label << ")";
  }
}

// ---------- Clean close / reopen ----------

TEST(RecoveryTest, CleanCloseReopenRoundTrip) {
  const std::string dir = MakeTempDir("clean");
  {
    auto db = Database::Open(dir).ValueOrDie();
    ASSERT_TRUE(db->CreateTable("Birds", BirdsSchema()).ok());
    ASSERT_TRUE(DefineBirdClassifier(db.get()).ok());
    ASSERT_TRUE(db->LinkInstance("Birds", "ClassBird1", true).ok());
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(db->Insert("Birds", MakeBird("bird" + std::to_string(i),
                                               "family" + std::to_string(i % 2),
                                               1.0 + i))
                      .ok());
    }
    ASSERT_TRUE(
        db->Annotate("Birds", "diseaseword outbreak", {{1, CellMask(0)}})
            .ok());
    ASSERT_TRUE(
        db->Annotate("Birds", "diseaseword lesion", {{1, CellMask(0)}}).ok());
    ASSERT_TRUE(
        db->Annotate("Birds", "behaviorword foraging", {{2, CellMask(1)}})
            .ok());
  }

  auto db = Database::Open(dir).ValueOrDie();
  EXPECT_GT(db->recovery_stats().records_seen, 0u);
  Table* birds = *db->GetTable("Birds");
  EXPECT_EQ(birds->num_rows(), 6u);
  EXPECT_EQ((*birds->Get(3)).at(0).AsString(), "bird2");

  const SummaryBTree* index = *db->GetSummaryIndex("Birds", "ClassBird1");
  EXPECT_EQ(ProbeOids(*index, ClassifierProbe::Equal("Disease", 2)),
            std::vector<Oid>{1});
  EXPECT_EQ(ProbeOids(*index, ClassifierProbe::Equal("Behavior", 1)),
            std::vector<Oid>{2});
  ExpectIndexMatchesFreshRebuild(db.get(), "clean reopen");
  std::filesystem::remove_all(dir);
}

TEST(RecoveryTest, DeletesAndRemovalsReplayToo) {
  const std::string dir = MakeTempDir("deletes");
  AnnId removed_ann = 0;
  {
    auto db = Database::Open(dir).ValueOrDie();
    ASSERT_TRUE(db->CreateTable("Birds", BirdsSchema()).ok());
    ASSERT_TRUE(DefineBirdClassifier(db.get()).ok());
    ASSERT_TRUE(db->LinkInstance("Birds", "ClassBird1", true).ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(db->Insert("Birds", MakeBird("b" + std::to_string(i), "f",
                                               1.0))
                      .ok());
    }
    ASSERT_TRUE(db->DeleteTuple("Birds", 3).ok());
    removed_ann =
        *db->Annotate("Birds", "diseaseword doomed", {{1, CellMask(0)}});
    ASSERT_TRUE(
        db->Annotate("Birds", "diseaseword kept", {{1, CellMask(0)}}).ok());
    ASSERT_TRUE(db->RemoveAnnotation("Birds", removed_ann).ok());
  }

  auto db = Database::Open(dir).ValueOrDie();
  Table* birds = *db->GetTable("Birds");
  EXPECT_EQ(birds->num_rows(), 3u);
  EXPECT_TRUE(birds->Get(3).status().IsNotFound());
  // Only the surviving annotation counts toward the summary.
  const SummaryBTree* index = *db->GetSummaryIndex("Birds", "ClassBird1");
  EXPECT_EQ(ProbeOids(*index, ClassifierProbe::Equal("Disease", 1)),
            std::vector<Oid>{1});
  EXPECT_TRUE(
      ProbeOids(*index, ClassifierProbe::Equal("Disease", 2)).empty());
  std::filesystem::remove_all(dir);
}

TEST(RecoveryTest, AnnotationIdsNeverRepeatAcrossRestarts) {
  const std::string dir = MakeTempDir("annid");
  AnnId before = 0;
  {
    auto db = Database::Open(dir).ValueOrDie();
    ASSERT_TRUE(db->CreateTable("Birds", BirdsSchema()).ok());
    ASSERT_TRUE(db->Insert("Birds", MakeBird("b", "f", 1.0)).ok());
    before = *db->Annotate("Birds", "note one", {{1, CellMask(0)}});
  }
  auto db = Database::Open(dir).ValueOrDie();
  AnnId after = *db->Annotate("Birds", "note two", {{1, CellMask(0)}});
  EXPECT_GT(after, before);
  std::filesystem::remove_all(dir);
}

// ---------- Checkpoints ----------

TEST(RecoveryTest, CheckpointPlusTailReplay) {
  const std::string dir = MakeTempDir("ckpt");
  {
    auto db = Database::Open(dir).ValueOrDie();
    ASSERT_TRUE(db->CreateTable("Birds", BirdsSchema()).ok());
    ASSERT_TRUE(DefineBirdClassifier(db.get()).ok());
    ASSERT_TRUE(db->LinkInstance("Birds", "ClassBird1", true).ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(
          db->Insert("Birds", MakeBird("pre" + std::to_string(i), "f", 1.0))
              .ok());
    }
    ASSERT_TRUE(
        db->Annotate("Birds", "diseaseword early", {{1, CellMask(0)}}).ok());
    ASSERT_TRUE(db->Checkpoint().ok());
    // Tail past the checkpoint.
    ASSERT_TRUE(db->Insert("Birds", MakeBird("post", "f", 2.0)).ok());
    ASSERT_TRUE(
        db->Annotate("Birds", "behaviorword late", {{5, CellMask(0)}}).ok());
  }

  auto db = Database::Open(dir).ValueOrDie();
  const auto& stats = db->recovery_stats();
  EXPECT_NE(stats.checkpoint_begin_lsn, kInvalidLsn);
  EXPECT_GT(stats.snapshot_ops, 0u);
  EXPECT_GT(stats.records_applied, 0u);

  Table* birds = *db->GetTable("Birds");
  EXPECT_EQ(birds->num_rows(), 5u);
  EXPECT_EQ((*birds->Get(5)).at(0).AsString(), "post");
  const SummaryBTree* index = *db->GetSummaryIndex("Birds", "ClassBird1");
  EXPECT_EQ(ProbeOids(*index, ClassifierProbe::Equal("Disease", 1)),
            std::vector<Oid>{1});
  EXPECT_EQ(ProbeOids(*index, ClassifierProbe::Equal("Behavior", 1)),
            std::vector<Oid>{5});
  ExpectIndexMatchesFreshRebuild(db.get(), "checkpoint + tail");
  std::filesystem::remove_all(dir);
}

TEST(RecoveryTest, AutomaticCheckpointTriggersOnOpBudget) {
  const std::string dir = MakeTempDir("autockpt");
  Database::Options options;
  options.checkpoint_every_ops = 5;
  {
    auto db = Database::Open(dir, options).ValueOrDie();
    ASSERT_TRUE(db->CreateTable("Birds", BirdsSchema()).ok());
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(
          db->Insert("Birds", MakeBird("b" + std::to_string(i), "f", 1.0))
              .ok());
    }
    auto records = db->wal()->ReadAll().ValueOrDie();
    const bool has_checkpoint =
        std::any_of(records.begin(), records.end(), [](const WalRecord& r) {
          return r.type == WalRecordType::kCheckpointEnd;
        });
    EXPECT_TRUE(has_checkpoint);
  }
  auto db = Database::Open(dir, options).ValueOrDie();
  EXPECT_NE(db->recovery_stats().checkpoint_begin_lsn, kInvalidLsn);
  EXPECT_EQ((*db->GetTable("Birds"))->num_rows(), 12u);
  std::filesystem::remove_all(dir);
}

TEST(RecoveryTest, FileBackendSurvivesReopenWithStalePages) {
  // kFile backend: page files persist across the close but are derived
  // state; Open discards them and rebuilds from the log.
  const std::string dir = MakeTempDir("filepages");
  Database::Options options;
  options.backend = StorageManager::Backend::kFile;
  {
    auto db = Database::Open(dir, options).ValueOrDie();
    ASSERT_TRUE(db->CreateTable("Birds", BirdsSchema()).ok());
    ASSERT_TRUE(db->Insert("Birds", MakeBird("persisted", "f", 1.0)).ok());
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  auto db = Database::Open(dir, options).ValueOrDie();
  Table* birds = *db->GetTable("Birds");
  EXPECT_EQ(birds->num_rows(), 1u);
  EXPECT_EQ((*birds->Get(1)).at(0).AsString(), "persisted");
  std::filesystem::remove_all(dir);
}

// ---------- Kill-point matrix ----------
//
// For every registered crash point: a death-test child reopens the
// committed database, arms the point, and drives a workload that touches
// the full durability protocol (append, group-commit fsync, index
// maintenance, checkpoint, page flush + sync). The child must die at the
// armed point with the crash exit code. The parent then recovers the
// directory and asserts (a) all committed effects are visible, (b) no
// torn partial effects exist, and (c) the recovered Summary-BTree answers
// probes exactly like an index rebuilt from scratch.

constexpr int kCommittedRows = 6;

Database::Options CrashOptions(const std::string& dir) {
  Database::Options options;
  options.backend = StorageManager::Backend::kFile;
  options.directory = dir;
  options.buffer_pool_frames = 256;
  options.wal_sync = Database::WalSyncMode::kGroupCommit;
  return options;
}

void BuildCommittedState(const std::string& dir) {
  auto db = Database::Open(dir, CrashOptions(dir)).ValueOrDie();
  ASSERT_TRUE(db->CreateTable("Birds", BirdsSchema()).ok());
  ASSERT_TRUE(DefineBirdClassifier(db.get()).ok());
  ASSERT_TRUE(db->LinkInstance("Birds", "ClassBird1", true).ok());
  for (int i = 0; i < kCommittedRows; ++i) {
    ASSERT_TRUE(db->Insert("Birds", MakeBird("bird" + std::to_string(i),
                                             "family" + std::to_string(i % 2),
                                             1.0 + i))
                    .ok());
  }
  ASSERT_TRUE(
      db->Annotate("Birds", "diseaseword committed a", {{1, CellMask(0)}})
          .ok());
  ASSERT_TRUE(
      db->Annotate("Birds", "diseaseword committed b", {{1, CellMask(0)}})
          .ok());
  ASSERT_TRUE(
      db->Annotate("Birds", "behaviorword committed", {{2, CellMask(1)}})
          .ok());
  ASSERT_TRUE(db->Checkpoint().ok());
  ASSERT_TRUE(db->WalSync().ok());
}

/// Runs in the death-test child: every statement below may terminate the
/// process at the armed point. Reaching the end means the point was never
/// hit, which the death test reports as a failure (exit 0 != 86).
void RunCrashingWorkload(const std::string& dir, const std::string& point) {
  auto opened = Database::Open(dir, CrashOptions(dir));
  if (!opened.ok()) std::_Exit(11);
  std::unique_ptr<Database> db = std::move(*opened);
  ArmCrashPoint(point);

  // Appends (wal_append); buffered under group commit so several records
  // share the next fsync (wal_sync_partial needs a batch of >= 2).
  db->Insert("Birds", MakeBird("crash-a", "familyX", 9.1)).status();
  db->Insert("Birds", MakeBird("crash-b", "familyX", 9.2)).status();
  // Tuple 1 already has summaries: these updates traverse the
  // Summary-BTree delete+re-insert protocol (sbtree_maintenance).
  db->Annotate("Birds", "diseaseword in flight", {{1, CellMask(0)}}).status();
  db->Annotate("Birds", "diseaseword in flight 2", {{1, CellMask(0)}})
      .status();
  // Autocommit SQL DML runs as its own transaction: the commit hook
  // appends the commit record (txn_commit_appended) and forces it durable
  // (txn_commit_durable).
  db->Execute("INSERT INTO Birds VALUES ('crash-txn', 'familyX', 9.3)")
      .status();
  // An explicit transaction that rolls back crosses txn_abort_mid; its
  // row and its annotation must never surface after recovery no matter
  // where the crash lands.
  uint64_t txn = 0;
  db->Execute("BEGIN", &txn).status();
  db->Execute("INSERT INTO Birds VALUES ('rollback-row', 'familyX', 9.4)",
              &txn)
      .status();
  db->Execute("ANNOTATE Birds TUPLE 1 WITH 'rollbackword never lands'", &txn)
      .status();
  db->Execute("ROLLBACK", &txn).status();
  // Group-commit fsync (wal_sync_begin/partial/before_fsync/after_fsync).
  db->WalSync().ok();
  // Snapshot + page flush + data fsync (checkpoint_begin,
  // bufferpool_flush_page, pagestore_sync, checkpoint_after_flush,
  // checkpoint_end).
  db->Checkpoint().ok();
  std::_Exit(0);
}

void VerifyRecovered(const std::string& dir, const std::string& point) {
  auto db = Database::Open(dir, CrashOptions(dir)).ValueOrDie();
  Table* birds = *db->GetTable("Birds");

  // (a) Committed state is fully visible.
  ASSERT_GE(birds->num_rows(), static_cast<uint64_t>(kCommittedRows))
      << point;
  for (Oid oid = 1; oid <= kCommittedRows; ++oid) {
    auto tuple = birds->Get(oid);
    ASSERT_TRUE(tuple.ok()) << point << ": committed oid " << oid;
    EXPECT_EQ(tuple->at(0).AsString(), "bird" + std::to_string(oid - 1))
        << point;
  }

  // (b) No torn effects: every surviving row decodes, and only the two
  // in-flight facade inserts plus the autocommit txn insert may exist
  // beyond the committed ones. The rolled-back transaction's row must
  // never surface, at any crash point.
  uint64_t scanned = 0;
  bool saw_autocommit_txn_row = false;
  auto it = birds->Scan();
  Oid oid;
  Tuple tuple;
  while (it.Next(&oid, &tuple)) {
    EXPECT_FALSE(tuple.at(0).AsString().empty()) << point;
    EXPECT_NE(tuple.at(0).AsString(), "rollback-row") << point;
    if (tuple.at(0).AsString() == "crash-txn") saw_autocommit_txn_row = true;
    ++scanned;
  }
  EXPECT_EQ(scanned, birds->num_rows()) << point;
  EXPECT_LE(scanned, static_cast<uint64_t>(kCommittedRows + 3)) << point;
  if (point == "txn_commit_durable") {
    // The crash hit after the commit record was fsynced: the autocommit
    // transaction is committed and recovery must preserve it.
    EXPECT_TRUE(saw_autocommit_txn_row) << point;
  }

  // The rolled-back transaction's annotation never surfaces either (the
  // Summary-BTree rebuild check below would miss a leak that made it into
  // the store itself, so inspect the raw annotations directly).
  auto* mgr = *db->GetManager("Birds");
  ASSERT_TRUE(mgr->annotations()
                  ->ForEachAnnotation([&](const Annotation& ann) {
                    EXPECT_EQ(ann.text.find("rollbackword"),
                              std::string::npos)
                        << point;
                    return Status::OK();
                  })
                  .ok())
      << point;

  // Committed annotations survived: tuple 1 carries at least its two
  // committed Disease notes, tuple 2 its Behavior note.
  const SummaryBTree* index = *db->GetSummaryIndex("Birds", "ClassBird1");
  const std::vector<Oid> disease =
      ProbeOids(*index, ClassifierProbe::Range("Disease", 2, 4));
  EXPECT_TRUE(std::find(disease.begin(), disease.end(), 1u) != disease.end())
      << point;
  EXPECT_EQ(ProbeOids(*index, ClassifierProbe::Equal("Behavior", 1)),
            std::vector<Oid>{2})
      << point;

  // (c) Index agreement with a from-scratch rebuild.
  ExpectIndexMatchesFreshRebuild(db.get(), "kill point " + point);
}

class KillPointMatrixTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredPoints, KillPointMatrixTest,
    ::testing::ValuesIn(RegisteredCrashPoints()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

TEST_P(KillPointMatrixTest, CrashThenRecoverConverges) {
  const std::string point = GetParam();
  const std::string dir = MakeTempDir("kill_" + point);
  BuildCommittedState(dir);
  // "fast"-style death test: the child is forked right here, so it shares
  // `dir` and the on-disk committed state with this process.
  EXPECT_EXIT(RunCrashingWorkload(dir, point),
              ::testing::ExitedWithCode(kCrashPointExitCode), "")
      << point;
  VerifyRecovered(dir, point);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace insight
