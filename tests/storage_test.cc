#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "storage/storage_manager.h"

namespace insight {
namespace {

/// Fresh unique temp directory for one file-backed test case.
std::string MakeTempDir(const std::string& tag) {
  static std::atomic<int> counter{0};
  std::string dir = ::testing::TempDir() + "/insight_" + tag + "_" +
                    std::to_string(::getpid()) + "_" +
                    std::to_string(counter.fetch_add(1));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string BackendName(
    const ::testing::TestParamInfo<StorageManager::Backend>& info) {
  return info.param == StorageManager::Backend::kFile ? "File" : "Memory";
}

TEST(PageStoreTest, InMemoryReadWrite) {
  InMemoryPageStore store;
  ASSERT_EQ(*store.AllocatePage(), 0u);
  ASSERT_EQ(*store.AllocatePage(), 1u);
  Page page;
  page.Zero();
  page.data[0] = 'x';
  ASSERT_TRUE(store.WritePage(1, page).ok());
  Page out;
  ASSERT_TRUE(store.ReadPage(1, &out).ok());
  EXPECT_EQ(out.data[0], 'x');
  EXPECT_TRUE(store.ReadPage(2, &out).IsOutOfRange());
  EXPECT_EQ(store.size_bytes(), 2 * kPageSize);
}

TEST(PageStoreTest, FileBackedPersists) {
  const std::string path = ::testing::TempDir() + "/insight_fps_test.db";
  std::filesystem::remove(path);
  {
    auto store = FilePageStore::Open(path);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_EQ(*(*store)->AllocatePage(), 0u);
    Page page;
    page.Zero();
    std::snprintf(page.data, sizeof(page.data), "persisted");
    ASSERT_TRUE((*store)->WritePage(0, page).ok());
  }
  {
    auto store = FilePageStore::Open(path);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ((*store)->num_pages(), 1u);
    Page out;
    ASSERT_TRUE((*store)->ReadPage(0, &out).ok());
    EXPECT_STREQ(out.data, "persisted");
  }
  std::filesystem::remove(path);
}

TEST(RowLocationTest, PackUnpackRoundTrip) {
  RowLocation loc{12345, 678};
  RowLocation back = RowLocation::Unpack(loc.Pack());
  EXPECT_EQ(back, loc);
}

/// Runs every buffer-pool case on both backends: the in-memory store and
/// real page files in a temp directory.
class BufferPoolTest
    : public ::testing::TestWithParam<StorageManager::Backend> {
 protected:
  void SetUp() override {
    if (GetParam() == StorageManager::Backend::kFile) {
      dir_ = MakeTempDir("pool");
    }
    storage_ = std::make_unique<StorageManager>(GetParam(), dir_);
    pool_ = std::make_unique<BufferPool>(storage_.get(), 8);
  }
  void TearDown() override {
    pool_ = nullptr;
    storage_ = nullptr;
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  StorageManager& storage() { return *storage_; }
  BufferPool& pool() { return *pool_; }

  std::string dir_;
  std::unique_ptr<StorageManager> storage_;
  std::unique_ptr<BufferPool> pool_;
};

INSTANTIATE_TEST_SUITE_P(Backends, BufferPoolTest,
                         ::testing::Values(StorageManager::Backend::kMemory,
                                           StorageManager::Backend::kFile),
                         BackendName);

TEST_P(BufferPoolTest, NewFetchRoundTrip) {
  FileId file = *storage().CreateFile("f");
  PageId id;
  {
    auto guard = pool().NewPage(file, &id);
    ASSERT_TRUE(guard.ok());
    guard->data()[0] = 'a';
    guard->MarkDirty();
  }
  auto guard = pool().FetchPage(file, id);
  ASSERT_TRUE(guard.ok());
  EXPECT_EQ(guard->data()[0], 'a');
}

TEST_P(BufferPoolTest, EvictionWritesBackDirtyPages) {
  FileId file = *storage().CreateFile("f");
  // Create far more pages than frames; each gets a distinct first byte.
  std::vector<PageId> ids;
  for (int i = 0; i < 50; ++i) {
    PageId id;
    auto guard = pool().NewPage(file, &id);
    ASSERT_TRUE(guard.ok());
    guard->data()[0] = static_cast<char>('A' + (i % 26));
    guard->MarkDirty();
    ids.push_back(id);
  }
  // All pages readable with correct content after eviction churn.
  for (int i = 0; i < 50; ++i) {
    auto guard = pool().FetchPage(file, ids[i]);
    ASSERT_TRUE(guard.ok());
    EXPECT_EQ(guard->data()[0], static_cast<char>('A' + (i % 26)));
  }
  EXPECT_GT(pool().stats().writebacks, 0u);
  EXPECT_GT(pool().stats().misses, 0u);
}

TEST_P(BufferPoolTest, HitCounting) {
  FileId file = *storage().CreateFile("f");
  PageId id;
  pool().NewPage(file, &id)->Release();
  pool().ResetStats();
  for (int i = 0; i < 5; ++i) {
    auto g = pool().FetchPage(file, id);
    ASSERT_TRUE(g.ok());
  }
  EXPECT_EQ(pool().stats().hits, 5u);
  EXPECT_EQ(pool().stats().misses, 0u);
}

TEST_P(BufferPoolTest, AllFramesPinnedIsResourceExhausted) {
  FileId file = *storage().CreateFile("f");
  std::vector<PageGuard> guards;
  for (size_t i = 0; i < pool().capacity(); ++i) {
    PageId id;
    auto g = pool().NewPage(file, &id);
    ASSERT_TRUE(g.ok());
    guards.push_back(std::move(*g));
  }
  PageId id;
  auto g = pool().NewPage(file, &id);
  EXPECT_EQ(g.status().code(), StatusCode::kResourceExhausted);
}

// Regression: move-assigning onto a guard that already holds a pin must
// release that pin. A leak here permanently wedges a frame.
TEST_P(BufferPoolTest, MoveAssignReleasesHeldPin) {
  FileId file = *storage().CreateFile("f");
  std::vector<PageGuard> guards;
  for (size_t i = 0; i < pool().capacity(); ++i) {
    PageId id;
    auto g = pool().NewPage(file, &id);
    ASSERT_TRUE(g.ok());
    guards.push_back(std::move(*g));
  }
  PageId id;
  EXPECT_EQ(pool().NewPage(file, &id).status().code(),
            StatusCode::kResourceExhausted);
  // Overwriting guards[0] unpins its frame, so exactly one frame becomes
  // evictable and the pool can admit a new page again.
  guards[0] = std::move(guards[1]);
  EXPECT_TRUE(guards[0].valid());
  EXPECT_FALSE(guards[1].valid());
  auto admitted = pool().NewPage(file, &id);
  EXPECT_TRUE(admitted.ok()) << admitted.status().ToString();
}

// Regression: self-move-assignment must keep the guard intact — neither
// dropping the pin nor double-unpinning on destruction.
TEST_P(BufferPoolTest, SelfMoveAssignKeepsPin) {
  FileId file = *storage().CreateFile("f");
  PageId id;
  auto g = pool().NewPage(file, &id);
  ASSERT_TRUE(g.ok());
  PageGuard guard = std::move(*g);
  guard.data()[0] = 'z';
  guard.MarkDirty();
  PageGuard& alias = guard;
  guard = std::move(alias);
  ASSERT_TRUE(guard.valid());
  EXPECT_EQ(guard.data()[0], 'z');
  // Exactly one pin is held: this Release would CHECK-fail on an unpinned
  // frame if the self-move had already unpinned it.
  guard.Release();
  auto again = pool().FetchPage(file, id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->data()[0], 'z');
}

TEST_P(BufferPoolTest, FlushAllPersistsToStore) {
  FileId file = *storage().CreateFile("f");
  PageId id;
  {
    auto g = pool().NewPage(file, &id);
    g->data()[7] = 'z';
    g->MarkDirty();
  }
  ASSERT_TRUE(pool().FlushAll().ok());
  Page raw;
  ASSERT_TRUE(storage().GetStore(file)->ReadPage(id, &raw).ok());
  EXPECT_EQ(raw.data[7], 'z');
}

class HeapFileTest
    : public ::testing::TestWithParam<StorageManager::Backend> {
 protected:
  void SetUp() override {
    if (GetParam() == StorageManager::Backend::kFile) {
      dir_ = MakeTempDir("heap");
    }
    storage_ = std::make_unique<StorageManager>(GetParam(), dir_);
    pool_ = std::make_unique<BufferPool>(storage_.get(), 64);
    file_ = *storage_->CreateFile("heap");
    heap_ = std::make_unique<HeapFile>(pool_.get(), file_);
  }
  void TearDown() override {
    heap_ = nullptr;
    pool_ = nullptr;
    storage_ = nullptr;
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  StorageManager& storage() { return *storage_; }
  BufferPool& pool() { return *pool_; }

  std::string dir_;
  std::unique_ptr<StorageManager> storage_;
  std::unique_ptr<BufferPool> pool_;
  FileId file_;
  std::unique_ptr<HeapFile> heap_;
};

INSTANTIATE_TEST_SUITE_P(Backends, HeapFileTest,
                         ::testing::Values(StorageManager::Backend::kMemory,
                                           StorageManager::Backend::kFile),
                         BackendName);

TEST_P(HeapFileTest, InsertGetRoundTrip) {
  auto loc = heap_->Insert("hello world");
  ASSERT_TRUE(loc.ok());
  auto rec = heap_->Get(*loc);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(*rec, "hello world");
}

TEST_P(HeapFileTest, ManyRecordsSpanPages) {
  std::map<uint64_t, std::string> expected;
  for (int i = 0; i < 2000; ++i) {
    std::string rec = "record-" + std::to_string(i) +
                      std::string(static_cast<size_t>(i % 97), 'x');
    auto loc = heap_->Insert(rec);
    ASSERT_TRUE(loc.ok());
    expected[loc->Pack()] = rec;
  }
  for (const auto& [packed, rec] : expected) {
    auto got = heap_->Get(RowLocation::Unpack(packed));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, rec);
  }
}

TEST_P(HeapFileTest, OverflowRecordRoundTrip) {
  // Larger than one page: exercises the overflow chain.
  std::string big(3 * kPageSize + 123, 'q');
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<char>('a' + i % 26);
  auto loc = heap_->Insert(big);
  ASSERT_TRUE(loc.ok());
  auto rec = heap_->Get(*loc);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(*rec, big);
}

TEST_P(HeapFileTest, DeleteMakesRecordUnreachable) {
  auto loc = heap_->Insert("doomed");
  ASSERT_TRUE(loc.ok());
  ASSERT_TRUE(heap_->Delete(*loc).ok());
  EXPECT_TRUE(heap_->Get(*loc).status().IsNotFound());
  EXPECT_TRUE(heap_->Delete(*loc).IsNotFound());
}

TEST_P(HeapFileTest, UpdateInPlaceKeepsLocation) {
  auto loc = heap_->Insert("0123456789");
  ASSERT_TRUE(loc.ok());
  auto new_loc = heap_->Update(*loc, "01234");
  ASSERT_TRUE(new_loc.ok());
  EXPECT_EQ(*new_loc, *loc);
  EXPECT_EQ(*heap_->Get(*new_loc), "01234");
}

TEST_P(HeapFileTest, UpdateGrowingRecordStaysAddressable) {
  auto loc = heap_->Insert("tiny");
  ASSERT_TRUE(loc.ok());
  std::string bigger(500, 'b');
  auto new_loc = heap_->Update(*loc, bigger);
  ASSERT_TRUE(new_loc.ok());
  EXPECT_EQ(*heap_->Get(*new_loc), bigger);
  // The old location is either dead or (when the freed slot was reused
  // in place) now holds the new record — never the stale one.
  auto old = heap_->Get(*loc);
  EXPECT_TRUE(old.status().IsNotFound() || *old == bigger);
}

TEST_P(HeapFileTest, RepeatedGrowingUpdatesReuseSpace) {
  // The summary-storage pattern: one record rewritten slightly larger
  // hundreds of times. With slot headroom + compaction + overflow reuse,
  // the file stays near the final record size instead of the sum of all
  // intermediate sizes.
  auto loc = heap_->Insert("x");
  ASSERT_TRUE(loc.ok());
  RowLocation cur = *loc;
  std::string record;
  for (int i = 0; i < 400; ++i) {
    record.append(100, static_cast<char>('a' + i % 26));
    auto new_loc = heap_->Update(cur, record);
    ASSERT_TRUE(new_loc.ok());
    cur = *new_loc;
  }
  EXPECT_EQ(*heap_->Get(cur), record);
  // Final record ~40 KB; the sum of intermediates is ~8 MB. Allow a
  // generous 8x final-size footprint — far below the no-reuse blowup.
  const uint64_t file_bytes = storage().GetStore(file_)->size_bytes();
  EXPECT_LT(file_bytes, 8 * 400 * 100 + 64 * 1024) << file_bytes;
}

TEST_P(HeapFileTest, ScanSeesLiveRecordsOnly) {
  std::vector<RowLocation> locs;
  for (int i = 0; i < 100; ++i) {
    locs.push_back(*heap_->Insert("rec" + std::to_string(i)));
  }
  for (int i = 0; i < 100; i += 2) ASSERT_TRUE(heap_->Delete(locs[i]).ok());

  int count = 0;
  auto it = heap_->Scan();
  RowLocation loc;
  std::string rec;
  while (it.Next(&loc, &rec)) {
    EXPECT_EQ(rec.substr(0, 3), "rec");
    const int i = std::stoi(rec.substr(3));
    EXPECT_EQ(i % 2, 1) << "deleted record visible in scan";
    ++count;
  }
  EXPECT_EQ(count, 50);
}

TEST_P(HeapFileTest, ScanReassemblesOverflowRecords) {
  std::string big(2 * kPageSize, 'Z');
  heap_->Insert("small-one").status();
  heap_->Insert(big).status();
  heap_->Insert("small-two").status();

  int smalls = 0;
  int bigs = 0;
  auto it = heap_->Scan();
  RowLocation loc;
  std::string rec;
  while (it.Next(&loc, &rec)) {
    if (rec.size() == big.size()) {
      EXPECT_EQ(rec, big);
      ++bigs;
    } else {
      ++smalls;
    }
  }
  EXPECT_EQ(bigs, 1);
  EXPECT_EQ(smalls, 2);
}

// Property sweep: random interleavings of insert/update/delete mirror a
// std::map reference model.
class HeapFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HeapFuzzTest, MatchesReferenceModel) {
  StorageManager storage(StorageManager::Backend::kMemory);
  BufferPool pool(&storage, 128);
  FileId file = *storage.CreateFile("fuzz");
  HeapFile heap(&pool, file);

  Rng rng(GetParam());
  std::map<uint64_t, std::string> model;  // packed loc -> payload
  for (int step = 0; step < 3000; ++step) {
    const int op = static_cast<int>(rng.Uniform(0, 9));
    if (op < 5 || model.empty()) {
      std::string payload(static_cast<size_t>(rng.Uniform(0, 300)),
                          static_cast<char>('a' + rng.Uniform(0, 25)));
      auto loc = heap.Insert(payload);
      ASSERT_TRUE(loc.ok());
      ASSERT_EQ(model.count(loc->Pack()), 0u) << "location reused while live";
      model[loc->Pack()] = payload;
    } else if (op < 7) {
      auto it = model.begin();
      std::advance(it, rng.Uniform(0, static_cast<int64_t>(model.size()) - 1));
      ASSERT_TRUE(heap.Delete(RowLocation::Unpack(it->first)).ok());
      model.erase(it);
    } else {
      auto it = model.begin();
      std::advance(it, rng.Uniform(0, static_cast<int64_t>(model.size()) - 1));
      std::string payload(static_cast<size_t>(rng.Uniform(0, 600)), 'u');
      auto new_loc = heap.Update(RowLocation::Unpack(it->first), payload);
      ASSERT_TRUE(new_loc.ok());
      model.erase(it);
      model[new_loc->Pack()] = payload;
    }
  }
  // Final state: everything retrievable and scan count matches.
  for (const auto& [packed, payload] : model) {
    auto got = heap.Get(RowLocation::Unpack(packed));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, payload);
  }
  size_t scanned = 0;
  auto it = heap.Scan();
  RowLocation loc;
  std::string rec;
  while (it.Next(&loc, &rec)) {
    ++scanned;
    ASSERT_EQ(model.count(loc.Pack()), 1u);
    EXPECT_EQ(model[loc.Pack()], rec);
  }
  EXPECT_EQ(scanned, model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapFuzzTest,
                         ::testing::Values(1, 2, 3, 17, 99));

// ---------- Concurrency (sharded pool) ----------

TEST(BufferPoolConcurrencyTest, ParallelPinUnpinStress) {
  StorageManager storage(StorageManager::Backend::kMemory);
  BufferPool pool(&storage, 64);  // 64 frames -> 16 shards.
  FileId file = *storage.CreateFile("f");
  // 4x more pages than frames so threads continuously evict and reload.
  constexpr int kPages = 256;
  std::vector<PageId> ids;
  for (int i = 0; i < kPages; ++i) {
    PageId id;
    auto guard = pool.NewPage(file, &id);
    ASSERT_TRUE(guard.ok());
    std::snprintf(guard->data(), 16, "page-%d", i);
    guard->MarkDirty();
    ids.push_back(id);
  }

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(1000 + t));
      char expect[16];
      for (int op = 0; op < kOpsPerThread; ++op) {
        const int i = static_cast<int>(rng.Uniform(0, kPages - 1));
        auto guard = pool.FetchPage(file, ids[i], LatchMode::kShared);
        if (!guard.ok()) {  // Transient: own shard momentarily all-pinned.
          continue;
        }
        std::snprintf(expect, sizeof(expect), "page-%d", i);
        if (std::string_view(guard->data(), std::strlen(expect)) != expect) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  // Every page still intact after the churn.
  for (int i = 0; i < kPages; ++i) {
    auto guard = pool.FetchPage(file, ids[i]);
    ASSERT_TRUE(guard.ok());
    char expect[16];
    std::snprintf(expect, sizeof(expect), "page-%d", i);
    EXPECT_STREQ(guard->data(), expect);
  }
}

TEST(BufferPoolConcurrencyTest, ExclusiveLatchSerializesWriters) {
  StorageManager storage(StorageManager::Backend::kMemory);
  BufferPool pool(&storage, 16);
  FileId file = *storage.CreateFile("f");
  PageId id;
  {
    auto guard = pool.NewPage(file, &id);
    ASSERT_TRUE(guard.ok());
    std::memset(guard->data(), 0, kPageSize);
    guard->MarkDirty();
  }
  // Each writer overwrites the whole first 64 bytes with its own byte
  // under the exclusive latch; shared-latch readers must never observe a
  // torn mix.
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kOps = 500;
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int op = 0; op < kOps; ++op) {
        auto guard = pool.FetchPage(file, id, LatchMode::kExclusive);
        if (!guard.ok()) continue;
        std::memset(guard->data(), 'a' + w, 64);
        guard->MarkDirty();
      }
      stop.store(true);
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      while (!stop.load()) {
        auto guard = pool.FetchPage(file, id, LatchMode::kShared);
        if (!guard.ok()) continue;
        const char first = guard->data()[0];
        for (int i = 1; i < 64; ++i) {
          if (guard->data()[i] != first) {
            torn.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(torn.load(), 0);
}

}  // namespace
}  // namespace insight
