#include <gtest/gtest.h>

#include "types/schema.h"
#include "types/tuple.h"
#include "types/value.h"

namespace insight {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).type(), ValueType::kBool);
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
}

TEST(ValueTest, NullOrdering) {
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
  EXPECT_GT(Value::Int(0).Compare(Value::Null()), 0);
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value::Int(3).Compare(Value::Double(3.0)), 0);
  EXPECT_LT(Value::Int(3).Compare(Value::Double(3.5)), 0);
  EXPECT_GT(Value::Double(4.0).Compare(Value::Int(3)), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")), 0);
}

TEST(ValueTest, RoundTripSerialization) {
  const Value values[] = {Value::Null(), Value::Bool(false), Value::Int(-7),
                          Value::Double(3.125), Value::String("swan goose")};
  for (const Value& v : values) {
    std::string buf;
    v.Serialize(&buf);
    SerdeReader reader(buf);
    auto back = Value::Deserialize(&reader);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(v.Compare(*back), 0) << v.ToString();
    EXPECT_TRUE(reader.AtEnd());
  }
}

TEST(ValueTest, DeserializeRejectsTruncated) {
  std::string buf;
  Value::Int(99).Serialize(&buf);
  buf.resize(buf.size() - 1);
  SerdeReader reader(buf);
  EXPECT_FALSE(Value::Deserialize(&reader).ok());
}

TEST(ValueTest, EqualValuesHashEqually) {
  EXPECT_EQ(Value::Int(5).Hash(), Value::Double(5.0).Hash());
  EXPECT_EQ(Value::String("a").Hash(), Value::String("a").Hash());
}

TEST(SchemaTest, IndexOfQualifiedAndUnqualified) {
  Schema s({{"r.a", ValueType::kInt64}, {"r.b", ValueType::kString}});
  EXPECT_EQ(*s.IndexOf("r.a"), 0u);
  EXPECT_EQ(*s.IndexOf("a"), 0u);
  EXPECT_EQ(*s.IndexOf("B"), 1u);
  EXPECT_TRUE(s.IndexOf("c").status().IsNotFound());
}

TEST(SchemaTest, AmbiguousUnqualifiedName) {
  Schema s({{"r.a", ValueType::kInt64}, {"s.a", ValueType::kInt64}});
  EXPECT_TRUE(s.IndexOf("a").status().IsInvalidArgument());
  EXPECT_EQ(*s.IndexOf("r.a"), 0u);
}

TEST(SchemaTest, AddColumnRejectsDuplicates) {
  Schema s;
  EXPECT_TRUE(s.AddColumn({"x", ValueType::kInt64}).ok());
  EXPECT_EQ(s.AddColumn({"X", ValueType::kString}).code(),
            StatusCode::kAlreadyExists);
}

TEST(SchemaTest, ProjectAndConcat) {
  Schema s({{"a", ValueType::kInt64},
            {"b", ValueType::kString},
            {"c", ValueType::kDouble}});
  Schema p = s.Project({2, 0});
  ASSERT_EQ(p.num_columns(), 2u);
  EXPECT_EQ(p.column(0).name, "c");
  EXPECT_EQ(p.column(1).name, "a");

  Schema joined = Schema::Concat(s, p);
  EXPECT_EQ(joined.num_columns(), 5u);
}

TEST(TupleTest, ProjectConcatRoundTrip) {
  Tuple t({Value::Int(1), Value::String("two"), Value::Double(3.0)});
  Tuple p = t.Project({2, 0});
  EXPECT_EQ(p.at(0).AsDouble(), 3.0);
  EXPECT_EQ(p.at(1).AsInt(), 1);

  Tuple c = Tuple::Concat(t, p);
  EXPECT_EQ(c.size(), 5u);

  std::string buf;
  c.Serialize(&buf);
  auto back = Tuple::DeserializeFrom(buf);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(*back == c);
}

TEST(TupleTest, EqualityComparesValues) {
  Tuple a({Value::Int(1), Value::String("x")});
  Tuple b({Value::Int(1), Value::String("x")});
  Tuple c({Value::Int(2), Value::String("x")});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(TupleTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Tuple::DeserializeFrom("junk").ok());
}

}  // namespace
}  // namespace insight
