// Version diff: the paper's summary-based join example (Section 3.2 and
// Fig. 16 Q2) — join two revisions of a curated table and report the
// records whose provenance-related annotation counts changed between
// revisions. The join predicate lives entirely on the summaries.

#include <cstdio>

#include "common/rng.h"
#include "sql/database.h"

using insight::Database;
using insight::RowMask;
using insight::Rng;

int main() {
  Database db;
  // The shared classifier instance: linking the SAME instance to both
  // revisions is what makes their summary objects comparable (and
  // mergeable) across the join.
  db.DefineClassifier(
        "ClassBird2", {"Provenance", "Comment", "Question"},
        {{"imported from source dataset provenance record", "Provenance"},
         {"derived citation provenance origin", "Provenance"},
         {"general comment about the record", "Comment"},
         {"remark note comment", "Comment"},
         {"is this value correct question", "Question"},
         {"why does this look wrong question", "Question"}})
      .ok();

  const char* kVersions[] = {"RecordsV1", "RecordsV2"};
  for (const char* table : kVersions) {
    db.Execute(std::string("CREATE TABLE ") + table +
               " (rec_id INT, payload TEXT)")
        .ValueOrDie();
    db.Execute(std::string("ALTER TABLE ") + table +
               " ADD INDEXABLE ClassBird2")
        .ValueOrDie();
    for (int i = 1; i <= 8; ++i) {
      db.Execute(std::string("INSERT INTO ") + table + " VALUES (" +
                 std::to_string(i) + ", 'payload-" + std::to_string(i) + "')")
          .ValueOrDie();
    }
  }

  // Both revisions start with the same provenance annotations...
  Rng rng(17);
  for (int i = 1; i <= 8; ++i) {
    const int base = static_cast<int>(rng.Uniform(1, 3));
    for (const char* table : kVersions) {
      for (int a = 0; a < base; ++a) {
        db.Annotate(table,
                    "imported provenance record " + std::to_string(a),
                    {{static_cast<insight::Oid>(i), RowMask(2)}})
            .ValueOrDie();
      }
    }
  }
  // ...then curation adds provenance records to three rows of V2 only.
  for (insight::Oid changed : {2u, 5u, 7u}) {
    db.Annotate("RecordsV2", "new provenance source discovered during audit",
                {{changed, RowMask(2)}})
        .ValueOrDie();
  }
  db.Execute("ANALYZE RecordsV1").ValueOrDie();
  db.Execute("ANALYZE RecordsV2").ValueOrDie();

  // The paper's query: data-based join on the identifier plus a
  // summary-based join predicate on the provenance counts.
  const std::string sql =
      "SELECT v1.rec_id, "
      "v1.$.getSummaryObject('ClassBird2').getLabelValue('Provenance') "
      "AS v1_provenance, "
      "v2.$.getSummaryObject('ClassBird2').getLabelValue('Provenance') "
      "AS v2_provenance "
      "FROM RecordsV1 v1, RecordsV2 v2 "
      "WHERE v1.rec_id = v2.rec_id AND "
      "v1.$.getSummaryObject('ClassBird2').getLabelValue('Provenance') <> "
      "v2.$.getSummaryObject('ClassBird2').getLabelValue('Provenance')";

  std::printf("== plan ==\n%s\n", db.Explain(sql).ValueOrDie().c_str());
  auto result = db.Execute(sql);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("== records whose provenance changed between revisions ==\n%s",
              result->ToString().c_str());

  // NOTE on semantics: the select list reads label values from the
  // MERGED summary object (common annotations counted once), so the two
  // output columns can coincide even though the join predicate compared
  // the per-side values before the merge — exactly why the paper makes
  // J a first-class operator instead of a post-merge filter.
  return 0;
}
