// Annotation curation: the write-side life cycle of summaries and their
// indexes — incremental maintenance on adds/removes, cluster
// representative re-election, zoom-in, and instance administration.

#include <cstdio>

#include "sql/database.h"

using insight::AnnId;
using insight::CellMask;
using insight::Database;
using insight::RowMask;
using insight::SummaryManager;
using insight::SummarySet;

namespace {

void ShowSummaries(Database* db, insight::Oid oid) {
  SummaryManager* mgr = db->GetManager("Specimens").ValueOrDie();
  SummarySet set = mgr->GetSummaries(oid).ValueOrDie();
  std::printf("  tuple %llu: %s\n", static_cast<unsigned long long>(oid),
              set.empty() ? "(no summaries)" : set.ToString().c_str());
}

}  // namespace

int main() {
  Database db;
  db.Execute("CREATE TABLE Specimens (tag TEXT, site TEXT)").ValueOrDie();
  db.DefineClassifier(
        "TopicClass", {"Disease", "Habitat", "Other"},
        {{"infection disease sick parasite", "Disease"},
         {"wetland lake habitat territory nesting site", "Habitat"},
         {"note comment misc", "Other"}})
      .ok();
  db.DefineCluster("SimCluster", 0.4).ok();
  db.Execute("ALTER TABLE Specimens ADD INDEXABLE TopicClass").ValueOrDie();
  db.Execute("ALTER TABLE Specimens ADD SimCluster").ValueOrDie();
  db.Execute("INSERT INTO Specimens VALUES ('A-17', 'north-lake'), "
             "('B-03', 'east-marsh')")
      .ValueOrDie();

  std::printf("1. Incremental maintenance: summaries grow as annotations "
              "arrive.\n");
  AnnId first =
      db.Annotate("Specimens", "possible infection on the left wing",
                  {{1, RowMask(2)}})
          .ValueOrDie();
  ShowSummaries(&db, 1);
  db.Annotate("Specimens", "confirmed disease, parasite found",
              {{1, CellMask(0)}})
      .ValueOrDie();
  db.Annotate("Specimens", "prefers the wetland habitat near the lake",
              {{1, CellMask(1)}})
      .ValueOrDie();
  ShowSummaries(&db, 1);

  std::printf("\n2. The Summary-BTree tracks every change (delete + "
              "re-insert of the modified label only):\n");
  const insight::SummaryBTree* index =
      db.GetSummaryIndex("Specimens", "TopicClass").ValueOrDie();
  std::printf("  index entries=%llu inserts=%llu deletes=%llu\n",
              static_cast<unsigned long long>(index->num_entries()),
              static_cast<unsigned long long>(
                  index->maintenance_stats().key_inserts),
              static_cast<unsigned long long>(
                  index->maintenance_stats().key_deletes));

  std::printf("\n3. Removing an annotation rolls its effects back");
  std::printf(" (cluster representatives re-elect when needed).\n");
  db.RemoveAnnotation("Specimens", first).ok();
  ShowSummaries(&db, 1);

  std::printf("\n4. Zoom-in: from summaries back to raw annotations.\n");
  for (const auto& ann :
       db.ZoomIn("Specimens", 1, "TopicClass").ValueOrDie()) {
    std::printf("  [%llu] %s\n", static_cast<unsigned long long>(ann.id),
                ann.text.c_str());
  }

  std::printf("\n5. Queries see the curated state immediately.\n");
  auto result = db.Execute(
      "SELECT tag FROM Specimens WHERE "
      "$.getSummaryObject('TopicClass').getLabelValue('Disease') > 0");
  std::printf("%s", result->ToString().c_str());

  std::printf("\n6. Unlinking an instance strips its objects and index "
              "entries.\n");
  db.Execute("ALTER TABLE Specimens DROP SimCluster").ValueOrDie();
  ShowSummaries(&db, 1);
  return 0;
}
