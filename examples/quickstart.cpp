// Quickstart: create an annotated relation, define summary instances,
// load annotations, and query the summaries as first-class citizens.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "sql/database.h"

using insight::Database;
using insight::QueryResult;

namespace {

void Run(Database* db, const std::string& sql) {
  std::printf("sql> %s\n", sql.c_str());
  auto result = db->Execute(sql);
  if (!result.ok()) {
    std::printf("error: %s\n\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s\n", result->ToString().c_str());
}

}  // namespace

int main() {
  Database db;

  // 1. A relation, like any SQL table.
  Run(&db, "CREATE TABLE Birds (name TEXT, family TEXT, weight DOUBLE)");
  Run(&db,
      "INSERT INTO Birds VALUES "
      "('Swan Goose', 'Anatidae', 3.5), "
      "('Mute Swan', 'Anatidae', 11.0), "
      "('Grey Heron', 'Ardeidae', 1.5)");

  // 2. Summary instances: a classifier over annotation topics and a
  //    snippet summarizer for long annotations. The classifier is a
  //    Naive Bayes model seeded with a few labeled examples.
  db.DefineClassifier(
        "ClassBird1", {"Disease", "Behavior", "Other"},
        {{"avian influenza infection observed, the bird looked sick",
          "Disease"},
         {"parasite outbreak disease symptoms on the wing", "Disease"},
         {"seen eating stonewort while foraging at dawn", "Behavior"},
         {"migration and nesting behavior in spring", "Behavior"},
         {"general note about data provenance", "Other"}})
      .ok();
  insight::SnippetSummarizer::Options snip;
  snip.min_chars = 120;
  snip.max_snippet_chars = 60;
  db.DefineSnippet("TextSummary1", snip).ok();

  // 3. Link them to the relation. INDEXABLE builds the Summary-BTree
  //    (the paper's Section 4 command).
  Run(&db, "ALTER TABLE Birds ADD INDEXABLE ClassBird1");
  Run(&db, "ALTER TABLE Birds ADD TextSummary1");

  // 4. Attach raw annotations: to cells, rows, or column sets.
  Run(&db, "ANNOTATE Birds TUPLE 1 WITH 'found eating stonewort in the lake'");
  Run(&db, "ANNOTATE Birds TUPLE 1 COLUMN weight WITH 'size seems wrong'");
  Run(&db,
      "ANNOTATE Birds TUPLE 1 WITH 'clear avian influenza infection "
      "symptoms, bird visibly sick'");
  Run(&db, "ANNOTATE Birds TUPLE 2 WITH 'observed foraging behavior at dusk'");
  Run(&db,
      "ANNOTATE Birds TUPLE 2 WITH 'This very long field report describes "
      "the mute swan colony near the northern lake shore in detail, "
      "including feeding behavior and seasonal movement patterns.'");

  // 5. Summaries propagate with query answers; summary functions work in
  //    WHERE, ORDER BY, and the select list.
  Run(&db,
      "SELECT name, "
      "$.getSummaryObject('ClassBird1').getLabelValue('Disease') AS diseases "
      "FROM Birds "
      "ORDER BY $.getSummaryObject('ClassBird1').getLabelValue('Disease') "
      "DESC");

  Run(&db,
      "SELECT name FROM Birds WHERE "
      "$.getSummaryObject('ClassBird1').getLabelValue('Behavior') > 0");

  // 6. Zoom in: from a summary of interest back to the raw annotations.
  Run(&db, "ZOOM IN ON Birds TUPLE 1 INSTANCE 'ClassBird1'");

  // 7. EXPLAIN shows the optimizer picking the Summary-BTree access path.
  auto plan = db.Explain(
      "SELECT name FROM Birds WHERE "
      "$.getSummaryObject('ClassBird1').getLabelValue('Disease') = 1");
  if (plan.ok()) std::printf("%s\n", plan->c_str());

  // 8. EXPLAIN ANALYZE executes the plan batch-at-a-time and reports each
  //    operator's rows, batches, and inclusive wall-time.
  auto analyzed = db.ExplainAnalyze(
      "SELECT name FROM Birds WHERE weight > 1.0 "
      "ORDER BY $.getSummaryObject('ClassBird1').getLabelValue('Disease') "
      "DESC");
  if (analyzed.ok()) std::printf("%s\n", analyzed->c_str());
  return 0;
}
