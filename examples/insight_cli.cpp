// insight_cli — interactive shell (and one-shot runner) for a live
// insightd server. Speaks the binary wire protocol via InsightClient.
//
//   insight_cli --host 127.0.0.1 --port 8471          # interactive
//   insight_cli --port-file /tmp/insightd.port        # port from file
//   insight_cli --port 8471 -e "SELECT * FROM Birds"  # one-shot, exits
//   insight_cli --port 8473 --promote                 # failover: promote
//   insight_cli --endpoints 127.0.0.1:8471,127.0.0.1:8473 -e "SELECT ..."
//                                                     # routed cluster mode
//
// Routed mode discovers the primary by probing (replicas answer writes
// with a read-only redirect), load-balances reads across replicas, and
// passes the last write's commit LSN as wait_lsn so every read observes
// the client's own writes.
//
// Interactive commands beyond SQL:
//   \ping       round-trip liveness probe
//   \metrics    print the server's Prometheus metrics text
//   \promote    promote the connected replica to primary
//   \shutdown   ask the server to drain and exit
//   \q          quit the shell (server keeps running)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "net/client.h"

using insight::InsightClient;
using insight::RoutedClient;

namespace {

struct CliArgs {
  std::string host = "127.0.0.1";
  uint16_t port = 8471;
  std::string port_file;
  std::vector<std::string> one_shots;  // -e STATEMENT (repeatable).
  std::vector<RoutedClient::Endpoint> endpoints;  // --endpoints list.
  bool promote = false;                // --promote: send Promote, exit.
};

void Usage() {
  std::printf(
      "usage: insight_cli [--host H] [--port P | --port-file FILE]\n"
      "                   [--endpoints H:P,H:P,...] [--promote]\n"
      "                   [-e STATEMENT]...\n"
      "interactive commands: \\ping \\metrics \\promote \\shutdown \\q\n");
}

bool ParseEndpoints(const std::string& list,
                    std::vector<RoutedClient::Endpoint>* out) {
  size_t begin = 0;
  while (begin <= list.size()) {
    size_t end = list.find(',', begin);
    if (end == std::string::npos) end = list.size();
    const std::string item = list.substr(begin, end - begin);
    const size_t colon = item.rfind(':');
    if (colon == std::string::npos || colon == 0) return false;
    const int port = std::atoi(item.c_str() + colon + 1);
    if (port <= 0 || port > 65535) return false;
    out->push_back({item.substr(0, colon), static_cast<uint16_t>(port)});
    begin = end + 1;
  }
  return !out->empty();
}

bool ParseCliArgs(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--host") {
      const char* v = next();
      if (v == nullptr) return false;
      args->host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return false;
      args->port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--port-file") {
      const char* v = next();
      if (v == nullptr) return false;
      args->port_file = v;
    } else if (arg == "--endpoints") {
      const char* v = next();
      if (v == nullptr || !ParseEndpoints(v, &args->endpoints)) return false;
    } else if (arg == "--promote") {
      args->promote = true;
    } else if (arg == "-e") {
      const char* v = next();
      if (v == nullptr) return false;
      args->one_shots.push_back(v);
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (!args->port_file.empty()) {
    std::ifstream in(args->port_file);
    unsigned port = 0;
    if (!(in >> port) || port == 0 || port > 65535) {
      std::fprintf(stderr, "could not read a port from %s\n",
                   args->port_file.c_str());
      return false;
    }
    args->port = static_cast<uint16_t>(port);
  }
  return true;
}

/// Runs one line of shell input. Returns false when the shell should
/// exit (quit command, shutdown, or a dead connection).
bool RunLine(InsightClient* client, const std::string& line) {
  if (line == "\\q" || line == "\\quit" || line == "exit") return false;
  if (line == "\\ping") {
    auto status = client->Ping();
    std::printf("%s\n", status.ok() ? "pong" : status.ToString().c_str());
    return status.ok();
  }
  if (line == "\\metrics") {
    auto text = client->Metrics();
    if (!text.ok()) {
      std::printf("error: %s\n", text.status().ToString().c_str());
      return false;
    }
    std::fputs(text->c_str(), stdout);
    return true;
  }
  if (line == "\\promote") {
    auto status = client->Promote();
    std::printf("%s\n", status.ok() ? "promoted to primary"
                                    : status.ToString().c_str());
    return true;
  }
  if (line == "\\shutdown") {
    auto status = client->RequestShutdown();
    std::printf("%s\n",
                status.ok() ? "server draining" : status.ToString().c_str());
    return false;
  }
  if (!line.empty() && line[0] == '\\') {
    std::printf(
        "unknown command %s (try \\ping \\metrics \\promote \\shutdown "
        "\\q)\n",
        line.c_str());
    return true;
  }
  auto result = client->Execute(line);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    // Statement errors keep the session; only a dead socket ends it.
    return client->connected();
  }
  std::fputs(result->ToString().c_str(), stdout);
  return true;
}

/// Cluster mode: every line is a statement routed by RoutedClient;
/// shell commands other than \q need a direct --port connection.
bool RunRoutedLine(RoutedClient* routed, const std::string& line) {
  if (line == "\\q" || line == "\\quit" || line == "exit") return false;
  if (!line.empty() && line[0] == '\\') {
    std::printf("%s needs a direct connection (drop --endpoints)\n",
                line.c_str());
    return true;
  }
  auto result = routed->Execute(line);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return true;
  }
  std::fputs(result->ToString().c_str(), stdout);
  return true;
}

int RunRouted(const CliArgs& args) {
  auto made = RoutedClient::Make(args.endpoints);
  if (!made.ok()) {
    std::fprintf(stderr, "routed connect failed: %s\n",
                 made.status().ToString().c_str());
    return 1;
  }
  auto routed = std::move(*made);
  if (!args.one_shots.empty()) {
    for (const std::string& sql : args.one_shots) {
      auto result = routed->Execute(sql);
      if (!result.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      std::fputs(result->ToString().c_str(), stdout);
    }
    return 0;
  }
  std::printf("routed across %zu endpoints — SQL statements, or \\q\n",
              args.endpoints.size());
  std::string line;
  while (true) {
    std::fputs("insight> ", stdout);
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (!RunRoutedLine(routed.get(), line)) break;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!ParseCliArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }
  if (!args.endpoints.empty()) return RunRouted(args);

  auto connected = InsightClient::Connect(args.host, args.port);
  if (!connected.ok()) {
    std::fprintf(stderr, "connect %s:%u failed: %s\n", args.host.c_str(),
                 args.port, connected.status().ToString().c_str());
    return 1;
  }
  auto client = std::move(*connected);

  if (args.promote) {
    auto status = client->Promote();
    if (!status.ok()) {
      std::fprintf(stderr, "promote failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("promoted to primary\n");
    return 0;
  }

  if (!args.one_shots.empty()) {
    for (const std::string& sql : args.one_shots) {
      auto result = client->Execute(sql);
      if (!result.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      std::fputs(result->ToString().c_str(), stdout);
    }
    return 0;
  }

  std::printf("connected to %s:%u — SQL statements, or \\ping \\metrics "
              "\\promote \\shutdown \\q\n",
              args.host.c_str(), args.port);
  std::string line;
  while (true) {
    std::fputs("insight> ", stdout);
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    // Trim surrounding whitespace and a trailing semicolon.
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    auto last = line.find_last_not_of(" \t\r");
    if (line[last] == ';' && last > first) --last;
    line = line.substr(first, last - first + 1);
    if (line.empty()) continue;
    if (!RunLine(client.get(), line)) break;
  }
  return 0;
}
