// Birds analytics: the paper's usability case-study queries (Figures 2
// and 16) running natively over a generated ornithological corpus.
//
//   Q1  report data tuples sorted by their disease-related annotations
//   Q2  aggregate per family, counting behavior-related information
//   Q3  select birds with more than N question/disease annotations
//
// Each query prints its optimized plan and its top results.

#include <cstdio>

#include "common/stopwatch.h"
#include "workload/birds_workload.h"

using insight::BirdsWorkloadOptions;
using insight::Database;
using insight::GenerateBirdsWorkload;
using insight::Stopwatch;

namespace {

void RunQuery(Database* db, const char* title, const std::string& sql) {
  std::printf("== %s ==\n", title);
  auto plan = db->Explain(sql);
  if (plan.ok()) std::printf("%s", plan->c_str());
  Stopwatch timer;
  auto result = db->Execute(sql);
  if (!result.ok()) {
    std::printf("error: %s\n\n", result.status().ToString().c_str());
    return;
  }
  std::printf("-- %.1f ms --\n%s\n", timer.ElapsedMillis(),
              result->ToString(8).c_str());
}

}  // namespace

int main() {
  Database db;
  BirdsWorkloadOptions opts;
  opts.num_birds = 800;
  opts.annotations_per_bird = 20;
  opts.synonyms_per_bird = 3;
  std::printf("generating corpus (%zu birds x %zu annotations)...\n",
              opts.num_birds, opts.annotations_per_bird);
  auto workload = GenerateBirdsWorkload(&db, opts);
  if (!workload.ok()) {
    std::printf("workload failed: %s\n", workload.status().ToString().c_str());
    return 1;
  }
  db.Execute("ANALYZE Birds").ValueOrDie();
  db.Execute("ANALYZE Synonyms").ValueOrDie();

  // Q1 (Fig. 16): tuples sorted by the number of disease annotations.
  // Pre-extension InsightNotes required manual post-sorting of 100s of
  // rows; the summary-based sort operator answers it directly.
  RunQuery(&db, "Q1: sort by disease annotations",
           "SELECT common_name, "
           "$.getSummaryObject('ClassBird1').getLabelValue('Disease') "
           "AS diseases FROM Birds "
           "ORDER BY $.getSummaryObject('ClassBird1')"
           ".getLabelValue('Disease') DESC LIMIT 10");

  // Q2 (Fig. 2): per-family behavior-related annotation counts. The
  // group's summary objects merge across members (common annotations
  // counted once), so the count reads straight off the merged object.
  RunQuery(&db, "Q2: behavior annotations per family",
           "SELECT family, COUNT(*) AS birds, "
           "$.getSummaryObject('ClassBird1').getLabelValue('Behavior') "
           "AS behavior_notes "
           "FROM Birds GROUP BY family ORDER BY family LIMIT 12");

  // Q3 (Fig. 16): summary-based selection with the Summary-BTree.
  RunQuery(&db, "Q3: birds with > 3 disease annotations",
           "SELECT common_name, family FROM Birds WHERE "
           "$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 3 "
           "LIMIT 10");

  // Bonus: mixing data predicates, summary predicates, and a join with
  // the synonyms table in one statement (Section 3.2's seamless mixing).
  RunQuery(&db, "Mixed: swans with disease annotations and their synonyms",
           "SELECT common_name, synonym FROM Birds, Synonyms "
           "WHERE common_name = bird_name "
           "AND $.getSummaryObject('ClassBird1')"
           ".getLabelValue('Disease') > 2 "
           "AND family = 'Anatidae' LIMIT 10");
  return 0;
}
