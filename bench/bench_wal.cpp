// Durability ablation — what the write-ahead log costs on the insert
// path and what recovery costs at restart.
//
//   1. Per-insert commit latency: no WAL at all, WAL without forcing
//      (append only), WAL with an fsync per operation, and group commit
//      at several batch sizes (one WalSync per batch).
//   2. Recovery time against log size: replaying logs of growing length
//      through Database::Open, with and without a checkpoint covering
//      most of the log.
//
// Expectation: group commit amortizes the fsync, so per-insert overhead
// approaches the append-only floor as the batch grows (< 2x the no-WAL
// baseline by batch 64 on a local filesystem). Recovery time is linear
// in the replayed tail, and a checkpoint cuts it to the tail length.
//
// Emits BENCH_wal.json. With --smoke the process exits nonzero when a
// recovered database loses rows — a cheap end-to-end durability gate.

#include <unistd.h>

#include <filesystem>
#include <string>

#include "bench_util.h"
#include "sql/database.h"

using namespace insight;
using namespace insight::bench;

namespace {

std::string FreshDir(std::string tag) {
  for (char& c : tag) {
    if (c == '/') c = '-';
  }
  const std::string dir = "/tmp/insight_bench_wal_" + tag + "_" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

Schema BirdsSchema() {
  return Schema({{"name", ValueType::kString},
                 {"family", ValueType::kString},
                 {"weight", ValueType::kDouble}});
}

Tuple MakeBird(size_t i) {
  return Tuple({Value::String("bird" + std::to_string(i)),
                Value::String("family" + std::to_string(i % 16)),
                Value::Double(static_cast<double>(i % 100))});
}

/// Microseconds per insert for one arm. `sync_batch` == 0 means "let the
/// configured sync mode decide" (kEveryOp forces inside Insert's LogOp);
/// > 0 issues one WalSync per that many inserts (group commit).
double InsertMicros(Database* db, size_t inserts, size_t sync_batch) {
  Stopwatch timer;
  for (size_t i = 0; i < inserts; ++i) {
    db->Insert("Birds", MakeBird(i)).ValueOrDie();
    if (sync_batch > 0 && (i + 1) % sync_batch == 0) {
      INSIGHT_CHECK(db->WalSync().ok());
    }
  }
  if (sync_batch > 0) INSIGHT_CHECK(db->WalSync().ok());
  return timer.ElapsedMillis() * 1000.0 / static_cast<double>(inserts);
}

struct RecoveryPoint {
  size_t ops = 0;
  bool checkpointed = false;
  uint64_t log_bytes = 0;
  size_t records_seen = 0;
  double open_ms = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config = ParseArgs(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  PrintHeader("Durability: WAL commit latency and recovery time",
              "group commit < 2x no-WAL per insert by batch 64; "
              "recovery linear in the replayed tail",
              config);

  const size_t inserts = static_cast<size_t>(200000 * config.scale);
  bool smoke_failed = false;

  // ---- 1. Per-insert commit latency ----

  double no_wal_us = 0.0;
  {
    Database db;  // No directory, no log.
    db.CreateTable("Birds", BirdsSchema()).ValueOrDie();
    no_wal_us = InsertMicros(&db, inserts, 0);
  }
  std::printf("%-22s %8zu inserts %10.2f us/insert (1.00x)\n", "no-wal",
              inserts, no_wal_us);

  auto timed_arm = [&](const char* label, Database::WalSyncMode mode,
                       size_t sync_batch) {
    const std::string dir = FreshDir(label);
    Database::Options options;
    options.wal_sync = mode;
    auto db = Database::Open(dir, options).ValueOrDie();
    db->CreateTable("Birds", BirdsSchema()).ValueOrDie();
    const double us = InsertMicros(db.get(), inserts, sync_batch);
    std::printf("%-22s %8zu inserts %10.2f us/insert (%.2fx)\n", label,
                inserts, us, us / no_wal_us);
    db.reset();
    std::filesystem::remove_all(dir);
    return us;
  };

  const double never_us =
      timed_arm("wal-append-only", Database::WalSyncMode::kNever, 0);
  const double every_op_us =
      timed_arm("wal-fsync-every-op", Database::WalSyncMode::kEveryOp, 0);

  struct GroupArm {
    size_t batch;
    double us;
  };
  std::vector<GroupArm> group_arms;
  for (size_t batch : {8u, 64u, 256u}) {
    const std::string label = "group-commit/" + std::to_string(batch);
    const double us = timed_arm(label.c_str(),
                                Database::WalSyncMode::kGroupCommit, batch);
    group_arms.push_back({batch, us});
  }

  // ---- 2. Recovery time vs log size ----

  std::printf("--- recovery time vs log size\n");
  std::vector<RecoveryPoint> recovery;
  const size_t base_ops = inserts / 4 < 250 ? 250 : inserts / 4;
  for (size_t ops : {base_ops, base_ops * 4, base_ops * 8}) {
    for (bool checkpointed : {false, true}) {
      RecoveryPoint point;
      point.ops = ops;
      point.checkpointed = checkpointed;
      const std::string dir =
          FreshDir("rec_" + std::to_string(ops) +
                   (checkpointed ? "_ckpt" : "_plain"));
      {
        Database::Options options;
        options.wal_sync = Database::WalSyncMode::kGroupCommit;
        auto db = Database::Open(dir, options).ValueOrDie();
        db->CreateTable("Birds", BirdsSchema()).ValueOrDie();
        for (size_t i = 0; i < ops; ++i) {
          db->Insert("Birds", MakeBird(i)).ValueOrDie();
        }
        INSIGHT_CHECK(db->WalSync().ok());
        // Checkpoint near the end: recovery restores the snapshot and
        // replays only the short tail after it.
        if (checkpointed) INSIGHT_CHECK(db->Checkpoint().ok());
      }
      point.log_bytes = std::filesystem::file_size(dir + "/wal.log");
      Stopwatch timer;
      auto db = Database::Open(dir).ValueOrDie();
      point.open_ms = timer.ElapsedMillis();
      point.records_seen = db->recovery_stats().records_seen;
      const uint64_t rows = (*db->GetTable("Birds"))->num_rows();
      if (rows != ops) {
        std::fprintf(stderr, "FAIL: recovered %llu of %zu rows\n",
                     static_cast<unsigned long long>(rows), ops);
        smoke_failed = true;
      }
      std::printf("ops=%-8zu %-6s log=%8.2f KB  recover %8.2f ms "
                  "(%zu records)\n",
                  ops, checkpointed ? "ckpt" : "plain",
                  point.log_bytes / 1024.0, point.open_ms,
                  point.records_seen);
      db.reset();
      std::filesystem::remove_all(dir);
      recovery.push_back(point);
    }
  }

  // ---- JSON artifact ----

  FILE* json = std::fopen("BENCH_wal.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"wal_durability\",\n"
                 "  \"inserts\": %zu,\n"
                 "  \"insert_latency_us\": {\n"
                 "    \"no_wal\": %.3f,\n"
                 "    \"wal_append_only\": %.3f,\n"
                 "    \"wal_fsync_every_op\": %.3f,\n"
                 "    \"group_commit\": [",
                 inserts, no_wal_us, never_us, every_op_us);
    for (size_t i = 0; i < group_arms.size(); ++i) {
      std::fprintf(json,
                   "%s\n      {\"batch\": %zu, \"us_per_insert\": %.3f, "
                   "\"overhead_vs_no_wal\": %.3f}",
                   i == 0 ? "" : ",", group_arms[i].batch, group_arms[i].us,
                   group_arms[i].us / no_wal_us);
    }
    std::fprintf(json, "\n    ]\n  },\n  \"recovery\": [");
    for (size_t i = 0; i < recovery.size(); ++i) {
      const RecoveryPoint& point = recovery[i];
      std::fprintf(json,
                   "%s\n    {\"ops\": %zu, \"checkpointed\": %s, "
                   "\"log_bytes\": %llu, \"records_seen\": %zu, "
                   "\"recover_ms\": %.3f}",
                   i == 0 ? "" : ",", point.ops,
                   point.checkpointed ? "true" : "false",
                   static_cast<unsigned long long>(point.log_bytes),
                   point.records_seen, point.open_ms);
    }
    std::fprintf(json, "\n  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_wal.json\n");
  }

  if (smoke && smoke_failed) return 1;
  return 0;
}
