// Ablation — Section 4.1.3's theoretical bounds for the Summary-BTree:
//
//   adding an annotation (insertion)  O(k log_B kN + log_B M)
//   adding an annotation (update)     O(2 log_B kN + log_B M)
//   equality search                   O(log_B kN)
//
// The harness grows N geometrically and reports per-operation times; a
// logarithmic bound shows as near-constant cost per doubling (the last
// column: time ratio between consecutive sizes, expected ~1.0-1.3, far
// from the ~4x a linear structure would show).

#include "bench_util.h"

using namespace insight;
using namespace insight::bench;

int main(int argc, char** argv) {
  BenchConfig config = ParseArgs(argc, argv);
  PrintHeader("Theory bounds: Summary-BTree operation costs vs N",
              "logarithmic growth for insert/update/search "
              "(Theorem, Section 4.1.3)",
              config);
  std::printf("%-8s %8s %12s %12s %12s %10s\n", "N birds", "entries",
              "update(us)", "search(us)", "delete(us)", "upd-ratio");
  double prev_update = 0;
  for (size_t birds : std::vector<size_t>{500, 2000, 8000, 32000}) {
    Database db;
    BirdsWorkloadOptions opts;
    opts.seed = config.seed;
    opts.num_birds = birds;
    opts.annotations_per_bird = 4;
    opts.synonyms_per_bird = 0;
    opts.max_ann_chars = 400;
    opts.long_annotation_fraction = 0;
    opts.link_snippet = false;
    GenerateBirdsWorkload(&db, opts).ValueOrDie();
    const SummaryBTree* index = *db.GetSummaryIndex("Birds", "ClassBird1");

    // Update path: each new annotation triggers delete+re-insert of one
    // label key (plus the summary-storage write, shared by all arms).
    Rng rng(config.seed + 1);
    constexpr int kOps = 200;
    Stopwatch update_timer;
    AddRandomAnnotations(&db, "Birds", birds, kOps, &rng, opts)
        .ValueOrDie();
    const double update_us = update_timer.ElapsedMicros() / double(kOps);

    // Pure index search.
    Stopwatch search_timer;
    size_t total_hits = 0;
    for (int i = 0; i < kOps; ++i) {
      auto hits = index->Search(
          ClassifierProbe::Equal("Disease", rng.Uniform(0, 6)));
      total_hits += hits.ValueOrDie().size();
    }
    const double search_us =
        search_timer.ElapsedMicros() / double(kOps) -
        // Subtract nothing; hits vary with N, keep the raw number.
        0.0;

    // Tuple deletion: all k label keys leave the index.
    Stopwatch delete_timer;
    SummaryManager* mgr = *db.GetManager("Birds");
    for (int i = 0; i < kOps; ++i) {
      (void)mgr->OnTupleDeleted(static_cast<Oid>(i + 1));
    }
    const double delete_us = delete_timer.ElapsedMicros() / double(kOps);

    std::printf("%-8zu %8llu %12.1f %12.1f %12.1f %10.2f\n", birds,
                static_cast<unsigned long long>(index->num_entries()),
                update_us, search_us, delete_us,
                prev_update > 0 ? update_us / prev_update : 0.0);
    (void)total_hits;
    prev_update = update_us;
  }
  std::printf("\n(search times include materializing the hit lists, whose "
              "sizes grow with N; the probe itself is the logarithmic "
              "part)\n");
  return 0;
}
