// Figure 14 — Effectiveness of optimization Rules 2 and 5 on Example 4:
//
//   SELECT ... FROM Birds R JOIN Synonyms S ON R.common_name = S.bird_name
//   WHERE  ClassBird1.Disease > 5        (summary-based selection S)
//   ORDER BY ClassBird1.Disease          (summary-based sort O)
//
// Synonyms does not carry ClassBird1, so Rule 2 legally pushes the S
// operator below the join (where the Summary-BTree answers it in sorted
// order) and Rule 5 lets that order survive the join, eliminating O.
//
// Arms follow the paper: {NLoop, Index} join x {Mem, Disk} sort, each
// with the optimizations disabled vs enabled.
//
// Paper result: ~15x speedup in all four combinations.

#include "bench_util.h"

using namespace insight;
using namespace insight::bench;

namespace {

LogicalPtr BuildExample4Plan(int64_t threshold) {
  LogicalPtr join =
      LJoin(LScan("Birds"), LScan("Synonyms", /*propagate=*/false),
            Cmp(Col("common_name"), CompareOp::kEq, Col("bird_name")));
  LogicalPtr select = LSummarySelect(
      std::move(join), Cmp(LabelValue("ClassBird1", "Disease"),
                           CompareOp::kGt, Lit(Value::Int(threshold))));
  std::vector<SortKey> keys;
  keys.push_back(SortKey{LabelValue("ClassBird1", "Disease"), false});
  return LSort(std::move(select), std::move(keys));
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config = ParseArgs(argc, argv);
  PrintHeader("Figure 14: transformation Rules 2 & 5 "
              "(S pushdown + order-preserving join)",
              "optimized plan ~15x faster across {NLoop, Index} join x "
              "{Mem, Disk} sort",
              config);
  Database db;
  BirdsWorkloadOptions opts = CorpusOptions(config, 200);  // The 9M point.
  GenerateBirdsWorkload(&db, opts).ValueOrDie();
  (void)db.Analyze("Birds");
  (void)db.Analyze("Synonyms");

  // Threshold sized so a handful of percent of birds qualify.
  const int64_t threshold =
      PickThresholdConstant(&db, "Birds", "ClassBird1", "Disease", 0.03);

  struct Arm {
    const char* name;
    bool index_join;
    SortOp::Mode sort_mode;
  };
  const Arm arms[] = {
      {"NLoop-Mem", false, SortOp::Mode::kMemory},
      {"NLoop-Disk", false, SortOp::Mode::kExternal},
      {"Index-Mem", true, SortOp::Mode::kMemory},
      {"Index-Disk", true, SortOp::Mode::kExternal},
  };
  std::printf("%-12s %6s %14s %14s %8s\n", "join/sort", "rows",
              "disabled(ms)", "enabled(ms)", "speedup");
  for (const Arm& arm : arms) {
    size_t rows = 0;
    auto run = [&](bool optimizations) {
      db.optimizer_options().enable_rewrite_rules = optimizations;
      db.optimizer_options().use_summary_indexes = optimizations;
      db.optimizer_options().use_baseline_indexes = false;
      db.optimizer_options().use_data_indexes = arm.index_join;
      // The paper's engine implements only NL and index joins.
      db.optimizer_options().enable_hash_join = false;
      db.optimizer_options().sort_mode = arm.sort_mode;
      // A tight budget so the Disk arms really spill.
      db.optimizer_options().sort_memory_budget = 64 * 1024;
      return MedianMillis(std::max(1, config.query_repeats / 2), [&] {
        rows = db.Run(BuildExample4Plan(threshold)).ValueOrDie().size();
      });
    };
    const double disabled_ms = run(false);
    const double enabled_ms = run(true);
    std::printf("%-12s %6zu %14.1f %14.1f %7.1fx\n", arm.name, rows,
                disabled_ms, enabled_ms, disabled_ms / enabled_ms);
  }
  return 0;
}
