// Online statistics subsystem — estimation quality and DML overhead.
//
//   Q-error arms: build the birds corpus, ANALYZE, then churn the table
//   (5x row growth concentrated on previously-unseen column values) so
//   the histograms go stale. A fixed query battery then runs twice via
//   EXPLAIN ANALYZE — once with the sketch tier disabled (histogram-only
//   planning, the pre-src/stats engine) and once with it enabled — and
//   the per-operator q-errors the executor reports are compared. The
//   sketches answer from the live row counter and Count-Min frequencies,
//   so the stale-denominator and unseen-value misestimates disappear.
//
//   Plan-flip arm: the same churn flips the cheapest access path for
//   skewed predicates (an equality that matches 83% of the fresh table
//   reads like 0.1% to the stale histograms). EXPLAIN under both arms
//   must disagree on at least one battery query — the sketch tier is
//   actually steering plans, not just annotating them.
//
//   DML overhead arm: identical insert+annotate bursts with the stats
//   gate off and on (interleaved, best-of-N). The inline sketch updates
//   are a few atomic adds per op, so the on/off ratio must stay within
//   10% at smoke scale.
//
// Expectation: sketch-arm median and p95 q-error no worse than the
// histogram arm, tail (max) strictly better, >= 1 plan flip, DML
// overhead <= 1.10x. --smoke gates all four.
//
// Emits BENCH_stats.json.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "stats/sketch.h"
#include "stats/sketch_registry.h"

using namespace insight;
using namespace insight::bench;

namespace {

/// Largest per-operator q-error in an EXPLAIN ANALYZE rendering (the
/// executor prints "q-err=%.2f" on every estimated operator).
double MaxQError(const std::string& plan) {
  double worst = 1.0;
  size_t pos = 0;
  while ((pos = plan.find("q-err=", pos)) != std::string::npos) {
    pos += std::strlen("q-err=");
    const double q = std::atof(plan.c_str() + pos);
    if (q > worst) worst = q;
  }
  return worst;
}

double Percentile(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  const size_t idx = static_cast<size_t>(p * (values.size() - 1) + 0.5);
  return values[idx];
}

/// One churn row: ids continue past the generated corpus, every string
/// column gets a value ANALYZE never saw.
Tuple ChurnRow(int64_t id) {
  return Tuple({Value::Int(id), Value::String("petrel_sci"),
                Value::String("storm petrel"), Value::String("Hydrobates"),
                Value::String("Stormpetrels"), Value::String("Procell"),
                Value::String("pelagic"), Value::String("churn row"),
                Value::String("offshore"), Value::String("LC"),
                Value::Double(0.4), Value::Double(0.03)});
}

struct QueryResultRow {
  std::string name;
  double hist_qerr = 1.0;
  double sketch_qerr = 1.0;
  bool plan_flipped = false;
};

struct DmlArm {
  double off_ms = 0.0;
  double on_ms = 0.0;
  double ratio() const { return off_ms > 0 ? on_ms / off_ms : 1.0; }
};

/// Interleaved best-of-`reps` insert+annotate bursts, gate off vs on.
DmlArm MeasureDmlOverhead(const BenchConfig& config, size_t ops, int reps) {
  DmlArm arm;
  arm.off_ms = 1e30;
  arm.on_ms = 1e30;
  Rng rng(config.seed + 99);
  for (int rep = 0; rep < reps; ++rep) {
    for (const bool enabled : {false, true}) {
      SetStatsEnabled(enabled);
      Database db;
      BirdsWorkloadOptions opts = CorpusOptions(config, /*per_bird=*/2);
      opts.num_birds = 50;
      opts.synonyms_per_bird = 0;
      GenerateBirdsWorkload(&db, opts).ValueOrDie();
      Stopwatch timer;
      for (size_t i = 0; i < ops; ++i) {
        db.Insert("Birds", ChurnRow(static_cast<int64_t>(100000 + i)))
            .ValueOrDie();
        const std::string text = GenerateAnnotationText(
            DrawTopic(&rng), /*target_chars=*/180, &rng);
        db.Annotate("Birds", text,
                    {{static_cast<Oid>(1 + i % opts.num_birds),
                      RowMask(12)}})
            .ValueOrDie();
      }
      const double ms = timer.ElapsedMillis();
      double& slot = enabled ? arm.on_ms : arm.off_ms;
      if (ms < slot) slot = ms;
    }
  }
  SetStatsEnabled(true);
  return arm;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config = ParseArgs(argc, argv);
  bool smoke = false;
  bool dump_plans = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--dump-plans") == 0) dump_plans = true;
  }
  PrintHeader("bench_stats: online sketch statistics vs stale histograms",
              "sketch tier removes stale-denominator and unseen-value "
              "misestimates; inline maintenance <= 1.10x DML",
              config);

  Database db;
  BirdsWorkloadOptions opts = CorpusOptions(config, /*per_bird=*/10);
  opts.synonyms_per_bird = 0;
  GenerateBirdsWorkload(&db, opts).ValueOrDie();
  INSIGHT_CHECK(db.CreateColumnIndex("Birds", "family").ok());
  INSIGHT_CHECK(db.Analyze("Birds").ok());

  const int64_t eq_const =
      PickEqualityConstant(&db, "Birds", "ClassBird1", "Disease", 0.10);
  const int64_t gt_const =
      PickThresholdConstant(&db, "Birds", "ClassBird1", "Disease", 0.20);

  // Churn: 5x row growth, all of it on column values the histograms have
  // never seen. The label numerators stay live (Section 5.2 maintenance);
  // the row denominator and the family histogram are now 6x stale.
  const size_t base_rows = opts.num_birds;
  const size_t churn_rows = base_rows * 5;
  for (size_t i = 0; i < churn_rows; ++i) {
    db.Insert("Birds", ChurnRow(static_cast<int64_t>(base_rows + 1 + i)))
        .ValueOrDie();
  }

  const std::string label_pred =
      "$.getSummaryObject('ClassBird1').getLabelValue('Disease')";
  struct Query {
    const char* name;
    std::string sql;
  };
  const std::vector<Query> battery = {
      {"full_scan", "SELECT id FROM Birds WHERE id >= 0"},
      {"churn_family_eq",
       "SELECT id FROM Birds WHERE family = 'Stormpetrels'"},
      {"stale_family_eq", "SELECT id FROM Birds WHERE family = 'Anatidae'"},
      {"label_eq", "SELECT id FROM Birds WHERE " + label_pred + " = " +
                       std::to_string(eq_const)},
      {"label_gt", "SELECT id FROM Birds WHERE " + label_pred + " > " +
                       std::to_string(gt_const)},
      {"churn_habitat_eq",
       "SELECT id FROM Birds WHERE habitat = 'pelagic'"},
  };

  std::vector<QueryResultRow> results;
  std::vector<double> hist_qerrs;
  std::vector<double> sketch_qerrs;
  size_t plan_flips = 0;
  for (const Query& q : battery) {
    QueryResultRow row;
    row.name = q.name;

    db.optimizer_options().use_sketch_statistics = false;
    const std::string hist_plan = db.Explain(q.sql).ValueOrDie();
    const std::string hist_analyzed = db.ExplainAnalyze(q.sql).ValueOrDie();
    row.hist_qerr = MaxQError(hist_analyzed);

    db.optimizer_options().use_sketch_statistics = true;
    const std::string sketch_plan = db.Explain(q.sql).ValueOrDie();
    const std::string sketch_analyzed =
        db.ExplainAnalyze(q.sql).ValueOrDie();
    row.sketch_qerr = MaxQError(sketch_analyzed);
    if (dump_plans) {
      std::printf("---- %s [histogram arm]\n%s---- %s [sketch arm]\n%s",
                  q.name, hist_analyzed.c_str(), q.name,
                  sketch_analyzed.c_str());
    }

    row.plan_flipped = hist_plan != sketch_plan;
    if (row.plan_flipped) ++plan_flips;
    hist_qerrs.push_back(row.hist_qerr);
    sketch_qerrs.push_back(row.sketch_qerr);
    results.push_back(row);
  }

  std::printf("%-18s %14s %14s %6s\n", "query", "hist q-err",
              "sketch q-err", "flip");
  for (const QueryResultRow& row : results) {
    std::printf("%-18s %14.2f %14.2f %6s\n", row.name.c_str(),
                row.hist_qerr, row.sketch_qerr,
                row.plan_flipped ? "yes" : "");
  }

  const double hist_median = Percentile(hist_qerrs, 0.5);
  const double hist_p95 = Percentile(hist_qerrs, 0.95);
  const double hist_max = *std::max_element(hist_qerrs.begin(),
                                            hist_qerrs.end());
  const double sketch_median = Percentile(sketch_qerrs, 0.5);
  const double sketch_p95 = Percentile(sketch_qerrs, 0.95);
  const double sketch_max = *std::max_element(sketch_qerrs.begin(),
                                              sketch_qerrs.end());
  std::printf("q-error summary: median %.2f -> %.2f, p95 %.2f -> %.2f, "
              "max %.2f -> %.2f, plan flips %zu/%zu\n",
              hist_median, sketch_median, hist_p95, sketch_p95, hist_max,
              sketch_max, plan_flips, battery.size());

  const size_t dml_ops = smoke ? 300 : 1500;
  const DmlArm dml = MeasureDmlOverhead(config, dml_ops, /*reps=*/3);
  std::printf("DML overhead: %zu insert+annotate ops, stats off %.1f ms, "
              "on %.1f ms -> %.3fx\n",
              dml_ops, dml.off_ms, dml.on_ms, dml.ratio());

  FILE* json = std::fopen("BENCH_stats.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"stats_qerror_and_dml_overhead\",\n"
                 "  \"base_rows\": %zu,\n  \"churn_rows\": %zu,\n"
                 "  \"queries\": [",
                 base_rows, churn_rows);
    for (size_t i = 0; i < results.size(); ++i) {
      std::fprintf(json,
                   "%s\n    {\"name\": \"%s\", \"hist_qerr\": %.3f, "
                   "\"sketch_qerr\": %.3f, \"plan_flipped\": %s}",
                   i == 0 ? "" : ",", results[i].name.c_str(),
                   results[i].hist_qerr, results[i].sketch_qerr,
                   results[i].plan_flipped ? "true" : "false");
    }
    std::fprintf(json,
                 "\n  ],\n"
                 "  \"hist\": {\"median\": %.3f, \"p95\": %.3f, "
                 "\"max\": %.3f},\n"
                 "  \"sketch\": {\"median\": %.3f, \"p95\": %.3f, "
                 "\"max\": %.3f},\n"
                 "  \"plan_flips\": %zu,\n"
                 "  \"dml\": {\"ops\": %zu, \"stats_off_ms\": %.3f, "
                 "\"stats_on_ms\": %.3f, \"overhead\": %.4f}\n}\n",
                 hist_median, hist_p95, hist_max, sketch_median, sketch_p95,
                 sketch_max, plan_flips, dml_ops, dml.off_ms, dml.on_ms,
                 dml.ratio());
    std::fclose(json);
    std::printf("wrote BENCH_stats.json\n");
  }

  if (smoke) {
    bool ok = true;
    if (sketch_median > hist_median * 1.05) {
      std::printf("SMOKE FAILURE: sketch median q-error regressed "
                  "(%.2f > %.2f)\n",
                  sketch_median, hist_median);
      ok = false;
    }
    if (sketch_p95 > hist_p95 * 1.05) {
      std::printf("SMOKE FAILURE: sketch p95 q-error regressed "
                  "(%.2f > %.2f)\n",
                  sketch_p95, hist_p95);
      ok = false;
    }
    if (sketch_max >= hist_max) {
      std::printf("SMOKE FAILURE: q-error tail did not improve "
                  "(%.2f >= %.2f)\n",
                  sketch_max, hist_max);
      ok = false;
    }
    if (plan_flips == 0) {
      std::printf("SMOKE FAILURE: no plan flip on the skewed battery\n");
      ok = false;
    }
    if (dml.ratio() > 1.10) {
      std::printf("SMOKE FAILURE: DML overhead %.3fx > 1.10x\n",
                  dml.ratio());
      ok = false;
    }
    if (!ok) return 1;
    std::printf("smoke OK\n");
  }
  return 0;
}
