// Figure 13 — Effectiveness of backward pointers: Summary-BTree leaves
// point straight into the user relation's heap rather than at the indexed
// summary objects.
//
// Four arms, as in the paper: {backward, conventional} pointers x
// {propagation, no propagation}.
//
// Paper result: with propagation both pointer kinds cost about the same
// (the 1-1 join with SummaryStorage happens either way); without
// propagation the backward pointers skip that join entirely, ~4x faster.

#include "bench_util.h"
#include "engine/operators.h"

using namespace insight;
using namespace insight::bench;

int main(int argc, char** argv) {
  BenchConfig config = ParseArgs(argc, argv);
  PrintHeader("Figure 13: backward vs conventional index pointers",
              "equal cost when propagating; backward ~4x faster when not",
              config);
  std::printf("%-10s %6s | %11s %11s | %11s %11s | %6s\n", "x-axis", "hits",
              "bwd+prop", "conv+prop", "bwd-noprop", "conv-noprop",
              "gain");
  for (size_t per_bird : BenchConfig::AnnotationSweep()) {
    Database db;
    BirdsWorkloadOptions opts = CorpusOptions(config, per_bird);
    opts.synonyms_per_bird = 0;
    opts.classifier_indexable = false;  // Built manually, twice.
    GenerateBirdsWorkload(&db, opts).ValueOrDie();
    SummaryManager* mgr = *db.GetManager("Birds");

    SummaryBTree::Options backward_opts;
    backward_opts.pointer_mode = SummaryBTree::PointerMode::kBackward;
    auto backward = SummaryBTree::Create(db.storage(), db.pool(), mgr,
                                         "ClassBird1", backward_opts)
                        .ValueOrDie();
    SummaryBTree::Options conventional_opts;
    conventional_opts.pointer_mode =
        SummaryBTree::PointerMode::kConventional;
    auto conventional = SummaryBTree::Create(db.storage(), db.pool(), mgr,
                                             "ClassBird1",
                                             conventional_opts)
                            .ValueOrDie();

    const int64_t mid =
        PickEqualityConstant(&db, "Birds", "ClassBird1", "Disease", 0.05);
    const ClassifierProbe probe =
        ClassifierProbe::Range("Disease", mid, mid + 2);

    size_t hits = 0;
    auto run = [&](const SummaryBTree* index, bool propagate) {
      return MedianMillis(config.query_repeats, [&] {
        SummaryIndexScanOp scan(index, probe, mgr, propagate);
        hits = CollectRows(&scan).ValueOrDie().size();
      });
    };
    const double bwd_prop = run(backward.get(), true);
    const double conv_prop = run(conventional.get(), true);
    const double bwd_noprop = run(backward.get(), false);
    const double conv_noprop = run(conventional.get(), false);
    std::printf("%-10s %6zu | %11.2f %11.2f | %11.2f %11.2f | %5.1fx\n",
                BenchConfig::PaperAxisLabel(per_bird).c_str(), hits,
                bwd_prop, conv_prop, bwd_noprop, conv_noprop,
                conv_noprop / bwd_noprop);
  }
  return 0;
}
