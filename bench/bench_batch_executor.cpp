// Batch executor ablation — the same scan+select plan driven through the
// row-at-a-time interface (Next) and the batch interface (NextBatch), at
// several batch capacities.
//
// Expectation: batch throughput >= row throughput (the batch path
// amortizes virtual dispatch, Result construction, and per-row column
// lookup in the predicate), converging as capacity grows.

#include "bench_util.h"
#include "engine/execution_context.h"
#include "engine/operators.h"
#include "engine/row_batch.h"

using namespace insight;
using namespace insight::bench;

namespace {

OpPtr BuildPlan(Table* table) {
  auto scan = std::make_unique<SeqScanOp>(table, nullptr, false);
  // ~25% selectivity over the generated weights.
  return std::make_unique<SelectOp>(
      std::move(scan),
      Cmp(Col("weight"), CompareOp::kLt, Lit(Value::Double(25.0))));
}

size_t DriveRows(PhysicalOperator* op) {
  INSIGHT_CHECK(op->Open().ok());
  size_t n = 0;
  Row row;
  while (op->Next(&row).ValueOrDie()) ++n;
  op->Close();
  return n;
}

size_t DriveBatches(PhysicalOperator* op, RowBatch* batch) {
  INSIGHT_CHECK(op->Open().ok());
  size_t n = 0;
  while (op->NextBatch(batch).ValueOrDie()) n += batch->size();
  op->Close();
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config = ParseArgs(argc, argv);
  PrintHeader("Ablation: batch-at-a-time vs row-at-a-time scan+select",
              "batch >= 1.0x row throughput at every capacity", config);

  const size_t num_rows = static_cast<size_t>(200000 * config.scale);
  StorageManager storage(StorageManager::Backend::kMemory);
  BufferPool pool(&storage, 4096);
  Catalog catalog(&storage, &pool);
  Table* table = *catalog.CreateTable(
      "Birds", Schema({{"name", ValueType::kString},
                       {"family", ValueType::kString},
                       {"weight", ValueType::kDouble}}));
  for (size_t i = 0; i < num_rows; ++i) {
    table
        ->Insert(Tuple({Value::String("bird" + std::to_string(i)),
                        Value::String("family" + std::to_string(i % 64)),
                        Value::Double(static_cast<double>(i % 100))}))
        .ValueOrDie();
  }

  OpPtr plan = BuildPlan(table);
  size_t hits = 0;
  const double row_ms =
      MedianMillis(config.query_repeats, [&] { hits = DriveRows(plan.get()); });
  std::printf("%-12s %10zu rows -> %8zu hits %10.2f ms (1.00x)\n", "row",
              num_rows, hits, row_ms);

  for (size_t capacity : {64u, 256u, 1024u, 4096u}) {
    ExecutionContext ctx(&storage, &pool, capacity);
    plan->AttachContext(&ctx);
    RowBatch batch;
    batch.set_capacity(capacity);
    const double batch_ms = MedianMillis(
        config.query_repeats, [&] { hits = DriveBatches(plan.get(), &batch); });
    std::printf("batch=%-6zu %10zu rows -> %8zu hits %10.2f ms (%.2fx)\n",
                capacity, num_rows, hits, batch_ms, row_ms / batch_ms);
  }
  return 0;
}
