// Batch executor ablation — the same scan+select plan driven through the
// row-at-a-time interface (Next) and the batch interface (NextBatch), at
// several batch capacities; then the batch plan against its morsel-driven
// parallel form at several worker counts.
//
// Expectation: batch throughput >= row throughput (the batch path
// amortizes virtual dispatch, Result construction, and per-row column
// lookup in the predicate), converging as capacity grows. Parallel
// speedup tracks the host's core count (a 1-core machine shows ~1.0x).
//
// Emits BENCH_parallel.json with the parallel-vs-serial numbers,
// BENCH_obs.json with the metrics-overhead arm (the same batch plan with
// engine instrumentation on vs off), and BENCH_scan.json with the
// zone-map data-skipping arm (a selective predicate over a clustered
// column, zone pruning on vs off, plus a full-scan arm where pruning
// cannot help and must not hurt). With --smoke the process exits
// nonzero when any worker count regresses to more than 2x the serial
// time, a wrong row count is returned, the instrumented run exceeds
// 1.10x the uninstrumented one, the zone-pruned scan returns different
// hits or skips zero pages, or the pruned full scan exceeds 2x the
// unpruned one — the CI bench-smoke gates.

#include <thread>

#include "bench_util.h"
#include "engine/execution_context.h"
#include "engine/operators.h"
#include "engine/parallel_ops.h"
#include "engine/row_batch.h"
#include "obs/metrics.h"

using namespace insight;
using namespace insight::bench;

namespace {

ExprPtr WeightPredicate() {
  // ~25% selectivity over the generated weights.
  return Cmp(Col("weight"), CompareOp::kLt, Lit(Value::Double(25.0)));
}

OpPtr BuildPlan(Table* table) {
  auto scan = std::make_unique<SeqScanOp>(table, nullptr, false);
  return std::make_unique<SelectOp>(std::move(scan), WeightPredicate());
}

// The same plan in morsel-parallel form: N partition pipelines (parallel
// scan + the cloned selection) under one gather.
OpPtr BuildParallelPlan(Table* table, size_t workers) {
  auto morsels = std::make_shared<MorselSource>(table->heap_pages());
  std::vector<OpPtr> partitions;
  partitions.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    OpPtr part =
        std::make_unique<ParallelScanOp>(table, nullptr, false, morsels);
    part = std::make_unique<SelectOp>(std::move(part), WeightPredicate());
    partitions.push_back(std::make_unique<ExchangeOp>(std::move(part), w));
  }
  return std::make_unique<GatherOp>(std::move(partitions), morsels);
}

size_t DriveRows(PhysicalOperator* op) {
  INSIGHT_CHECK(op->Open().ok());
  size_t n = 0;
  Row row;
  while (op->Next(&row).ValueOrDie()) ++n;
  op->Close();
  return n;
}

size_t DriveBatches(PhysicalOperator* op, RowBatch* batch) {
  INSIGHT_CHECK(op->Open().ok());
  size_t n = 0;
  while (op->NextBatch(batch).ValueOrDie()) n += batch->size();
  op->Close();
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config = ParseArgs(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  PrintHeader("Ablation: batch-at-a-time vs row-at-a-time scan+select",
              "batch >= 1.0x row throughput at every capacity", config);

  const size_t num_rows = static_cast<size_t>(200000 * config.scale);
  StorageManager storage(StorageManager::Backend::kMemory);
  BufferPool pool(&storage, 4096);
  Catalog catalog(&storage, &pool);
  Table* table = *catalog.CreateTable(
      "Birds", Schema({{"name", ValueType::kString},
                       {"family", ValueType::kString},
                       {"weight", ValueType::kDouble}}));
  for (size_t i = 0; i < num_rows; ++i) {
    table
        ->Insert(Tuple({Value::String("bird" + std::to_string(i)),
                        Value::String("family" + std::to_string(i % 64)),
                        Value::Double(static_cast<double>(i % 100))}))
        .ValueOrDie();
  }

  OpPtr plan = BuildPlan(table);
  size_t hits = 0;
  const double row_ms =
      MedianMillis(config.query_repeats, [&] { hits = DriveRows(plan.get()); });
  std::printf("%-12s %10zu rows -> %8zu hits %10.2f ms (1.00x)\n", "row",
              num_rows, hits, row_ms);

  double serial_ms = row_ms;
  for (size_t capacity : {64u, 256u, 1024u, 4096u}) {
    ExecutionContext ctx(&storage, &pool, capacity);
    plan->AttachContext(&ctx);
    RowBatch batch;
    batch.set_capacity(capacity);
    const double batch_ms = MedianMillis(
        config.query_repeats, [&] { hits = DriveBatches(plan.get(), &batch); });
    std::printf("batch=%-6zu %10zu rows -> %8zu hits %10.2f ms (%.2fx)\n",
                capacity, num_rows, hits, batch_ms, row_ms / batch_ms);
    if (capacity == 1024u) serial_ms = batch_ms;  // Parallel baseline.
  }
  const size_t serial_hits = hits;

  std::printf("--- morsel-driven parallel vs serial (batch=1024, %u cores)\n",
              std::thread::hardware_concurrency());
  FILE* json = std::fopen("BENCH_parallel.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"parallel_scan_select\",\n"
                 "  \"rows\": %zu,\n  \"hardware_threads\": %u,\n"
                 "  \"serial_ms\": %.3f,\n  \"arms\": [",
                 num_rows, std::thread::hardware_concurrency(), serial_ms);
  }
  bool smoke_failed = false;
  bool first_arm = true;
  for (size_t workers : {1u, 2u, 4u}) {
    TaskScheduler scheduler(workers);
    ExecutionContext ctx(&storage, &pool, 1024);
    ctx.set_parallelism(workers);
    ctx.set_scheduler(&scheduler);
    OpPtr parallel = BuildParallelPlan(table, workers);
    parallel->AttachContext(&ctx);
    RowBatch batch;
    batch.set_capacity(1024);
    size_t parallel_hits = 0;
    const double parallel_ms = MedianMillis(config.query_repeats, [&] {
      parallel_hits = DriveBatches(parallel.get(), &batch);
    });
    const double speedup = parallel_ms > 0 ? serial_ms / parallel_ms : 0.0;
    std::printf("workers=%-4zu %10zu rows -> %8zu hits %10.2f ms (%.2fx)\n",
                workers, num_rows, parallel_hits, parallel_ms, speedup);
    if (json != nullptr) {
      std::fprintf(json, "%s\n    {\"workers\": %zu, \"ms\": %.3f, "
                         "\"speedup\": %.3f}",
                   first_arm ? "" : ",", workers, parallel_ms, speedup);
      first_arm = false;
    }
    if (parallel_hits != serial_hits) {
      std::fprintf(stderr, "FAIL: workers=%zu returned %zu hits, serial %zu\n",
                   workers, parallel_hits, serial_hits);
      smoke_failed = true;
    }
    if (parallel_ms > 2.0 * serial_ms) {
      std::fprintf(stderr,
                   "FAIL: workers=%zu is %.2fx slower than serial (>2x)\n",
                   workers, parallel_ms / serial_ms);
      smoke_failed = true;
    }
  }
  if (json != nullptr) {
    std::fprintf(json, "\n  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_parallel.json\n");
  }

  // --- metrics overhead: the serial batch=1024 plan with the engine
  // instrumentation enabled vs disabled. The observability layer promises
  // near-zero cost; gate it at 1.10x (with a small absolute-delta escape
  // hatch so sub-millisecond timing noise cannot fail a tiny --scale run).
  std::printf("--- metrics overhead (batch=1024, enabled vs disabled)\n");
  {
    ExecutionContext ctx(&storage, &pool, 1024);
    plan->AttachContext(&ctx);
    RowBatch batch;
    batch.set_capacity(1024);
    SetMetricsEnabled(true);
    size_t on_hits = 0;
    const double on_ms = MedianMillis(config.query_repeats, [&] {
      on_hits = DriveBatches(plan.get(), &batch);
    });
    SetMetricsEnabled(false);
    size_t off_hits = 0;
    const double off_ms = MedianMillis(config.query_repeats, [&] {
      off_hits = DriveBatches(plan.get(), &batch);
    });
    SetMetricsEnabled(true);
    const double ratio = off_ms > 0 ? on_ms / off_ms : 1.0;
    std::printf("metrics=on   %10zu rows -> %8zu hits %10.2f ms\n", num_rows,
                on_hits, on_ms);
    std::printf("metrics=off  %10zu rows -> %8zu hits %10.2f ms (%.3fx)\n",
                num_rows, off_hits, off_ms, ratio);
    FILE* obs_json = std::fopen("BENCH_obs.json", "w");
    if (obs_json != nullptr) {
      std::fprintf(obs_json,
                   "{\n  \"bench\": \"metrics_overhead\",\n"
                   "  \"rows\": %zu,\n  \"batch_capacity\": 1024,\n"
                   "  \"metrics_on_ms\": %.3f,\n  \"metrics_off_ms\": %.3f,\n"
                   "  \"ratio\": %.4f,\n  \"gate\": 1.10\n}\n",
                   num_rows, on_ms, off_ms, ratio);
      std::fclose(obs_json);
      std::printf("wrote BENCH_obs.json\n");
    }
    if (on_hits != off_hits) {
      std::fprintf(stderr, "FAIL: metrics arm returned %zu hits vs %zu\n",
                   on_hits, off_hits);
      smoke_failed = true;
    }
    if (ratio > 1.10 && on_ms - off_ms > 1.0) {
      std::fprintf(stderr,
                   "FAIL: instrumentation overhead %.3fx (> 1.10x gate, "
                   "+%.2f ms)\n",
                   ratio, on_ms - off_ms);
      smoke_failed = true;
    }
  }
  // --- zone-map data skipping: a selective predicate over a clustered
  // int column (ids inserted in increasing order, so every heap page
  // covers a narrow id range). The pruned scan should touch only the
  // tail pages; the unpruned scan reads everything. The full-scan arm
  // (id >= 0) prunes nothing and gates the probe overhead at 2x.
  std::printf("--- zone-map skipping (selective scan, batch=1024)\n");
  {
    const size_t scan_rows = static_cast<size_t>(1000000 * config.scale);
    Table* events = *catalog.CreateTable(
        "Events", Schema({{"id", ValueType::kInt64},
                          {"grp", ValueType::kInt64},
                          {"payload", ValueType::kString}}));
    for (size_t i = 0; i < scan_rows; ++i) {
      events
          ->Insert(Tuple({Value::Int(static_cast<int64_t>(i)),
                          Value::Int(static_cast<int64_t>(i % 97)),
                          Value::String("ev" + std::to_string(i % 1000))}))
          .ValueOrDie();
    }
    const int64_t hi =
        static_cast<int64_t>(scan_rows) - 1000;  // ~0.1% selectivity.
    ExecutionContext ctx(&storage, &pool, 1024);

    // One plan per arm: selective / full, each pruned / unpruned.
    auto build = [&](int64_t bound, bool prune, SeqScanOp** scan_out) {
      auto scan = std::make_unique<SeqScanOp>(events, nullptr, false);
      if (prune) {
        ZoneProbe probe;
        probe.kind = ZoneProbe::Kind::kColumn;
        probe.column = 0;  // "id"
        probe.op = ZoneOp::kGe;
        probe.constant = Value::Int(bound);
        ZonePredicate pred;
        pred.probes.push_back(std::move(probe));
        scan->SetZonePredicate(std::move(pred));
      }
      *scan_out = scan.get();
      OpPtr plan = std::make_unique<SelectOp>(
          std::move(scan),
          Cmp(Col("id"), CompareOp::kGe, Lit(Value::Int(bound))));
      plan->AttachContext(&ctx);
      return plan;
    };

    RowBatch batch;
    batch.set_capacity(1024);
    struct Arm {
      const char* name;
      int64_t bound;
      bool prune;
      double ms = 0;
      size_t hits = 0;
      uint64_t pages_skipped = 0;
    };
    Arm arms[] = {{"selective zone=off", hi, false},
                  {"selective zone=on", hi, true},
                  {"full zone=off", 0, false},
                  {"full zone=on", 0, true}};
    for (Arm& arm : arms) {
      SeqScanOp* scan = nullptr;
      OpPtr plan = build(arm.bound, arm.prune, &scan);
      arm.ms = MedianMillis(config.query_repeats, [&] {
        arm.hits = DriveBatches(plan.get(), &batch);
      });
      arm.pages_skipped = scan->pages_skipped();
      std::printf("%-20s %10zu rows -> %8zu hits %10.2f ms (%zu/%zu pages "
                  "skipped)\n",
                  arm.name, scan_rows, arm.hits, arm.ms,
                  static_cast<size_t>(arm.pages_skipped),
                  static_cast<size_t>(events->heap_pages()));
    }
    const double skip_speedup = arms[1].ms > 0 ? arms[0].ms / arms[1].ms : 0.0;
    const double full_ratio = arms[2].ms > 0 ? arms[3].ms / arms[2].ms : 1.0;
    std::printf("selective speedup %.2fx, full-scan overhead %.3fx\n",
                skip_speedup, full_ratio);

    FILE* scan_json = std::fopen("BENCH_scan.json", "w");
    if (scan_json != nullptr) {
      std::fprintf(scan_json,
                   "{\n  \"bench\": \"zone_map_selective_scan\",\n"
                   "  \"rows\": %zu,\n  \"heap_pages\": %zu,\n"
                   "  \"selectivity\": %.6f,\n  \"arms\": [",
                   scan_rows, static_cast<size_t>(events->heap_pages()),
                   scan_rows > 0
                       ? static_cast<double>(arms[1].hits) / scan_rows
                       : 0.0);
      for (size_t i = 0; i < 4; ++i) {
        std::fprintf(scan_json,
                     "%s\n    {\"name\": \"%s\", \"ms\": %.3f, "
                     "\"hits\": %zu, \"pages_skipped\": %zu}",
                     i == 0 ? "" : ",", arms[i].name, arms[i].ms,
                     arms[i].hits,
                     static_cast<size_t>(arms[i].pages_skipped));
      }
      std::fprintf(scan_json,
                   "\n  ],\n  \"selective_speedup\": %.3f,\n"
                   "  \"full_scan_ratio\": %.4f,\n"
                   "  \"full_scan_gate\": 2.0\n}\n",
                   skip_speedup, full_ratio);
      std::fclose(scan_json);
      std::printf("wrote BENCH_scan.json\n");
    }
    if (arms[0].hits != arms[1].hits || arms[2].hits != arms[3].hits) {
      std::fprintf(stderr,
                   "FAIL: zone pruning changed hit counts (%zu vs %zu "
                   "selective, %zu vs %zu full)\n",
                   arms[0].hits, arms[1].hits, arms[2].hits, arms[3].hits);
      smoke_failed = true;
    }
    if (arms[1].pages_skipped == 0) {
      std::fprintf(stderr, "FAIL: selective zone=on skipped zero pages\n");
      smoke_failed = true;
    }
    if (full_ratio > 2.0 && arms[3].ms - arms[2].ms > 1.0) {
      std::fprintf(stderr,
                   "FAIL: pruned full scan %.3fx unpruned (> 2x gate)\n",
                   full_ratio);
      smoke_failed = true;
    }
  }

  if (smoke && smoke_failed) return 1;
  return 0;
}
