// Micro-benchmarks of the substrate primitives (google-benchmark):
// B-Tree insert/lookup, heap insert/fetch, tuple serialization, Naive
// Bayes classification, and the summary merge kernel. These put numbers
// on the cost-model constants in src/optimizer/optimizer.cc.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/string_util.h"
#include "index/btree.h"
#include "mining/naive_bayes.h"
#include "storage/heap_file.h"
#include "summary/summary_algebra.h"
#include "workload/birds_workload.h"

namespace insight {
namespace {

void BM_BTreeInsert(benchmark::State& state) {
  StorageManager storage(StorageManager::Backend::kMemory);
  BufferPool pool(&storage, 4096);
  FileId file = *storage.CreateFile("bt");
  BTree tree = std::move(BTree::Create(&pool, file)).ValueOrDie();
  Rng rng(1);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.Insert("key:" + ZeroPad(rng.Uniform(0, 999999), 6), i++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeInsert);

void BM_BTreeLookup(benchmark::State& state) {
  StorageManager storage(StorageManager::Backend::kMemory);
  BufferPool pool(&storage, 4096);
  FileId file = *storage.CreateFile("bt");
  BTree tree = std::move(BTree::Create(&pool, file)).ValueOrDie();
  for (int64_t i = 0; i < state.range(0); ++i) {
    (void)tree.Insert("key:" + ZeroPad(i, 6), static_cast<uint64_t>(i));
  }
  Rng rng(2);
  for (auto _ : state) {
    auto hits =
        tree.Lookup("key:" + ZeroPad(rng.Uniform(0, state.range(0) - 1), 6));
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeLookup)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_HeapInsert(benchmark::State& state) {
  StorageManager storage(StorageManager::Backend::kMemory);
  BufferPool pool(&storage, 4096);
  FileId file = *storage.CreateFile("heap");
  HeapFile heap(&pool, file);
  const std::string record(static_cast<size_t>(state.range(0)), 'r');
  for (auto _ : state) {
    benchmark::DoNotOptimize(heap.Insert(record));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HeapInsert)->Arg(100)->Arg(2000);

void BM_HeapGet(benchmark::State& state) {
  StorageManager storage(StorageManager::Backend::kMemory);
  BufferPool pool(&storage, 4096);
  FileId file = *storage.CreateFile("heap");
  HeapFile heap(&pool, file);
  std::vector<RowLocation> locations;
  for (int i = 0; i < 10000; ++i) {
    locations.push_back(
        std::move(heap.Insert("record-" + std::to_string(i))).ValueOrDie());
  }
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        heap.Get(locations[static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(locations.size()) - 1))]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeapGet);

void BM_NaiveBayesClassify(benchmark::State& state) {
  NaiveBayesClassifier model({"Disease", "Anatomy", "Behavior", "Other"});
  Rng rng(4);
  for (size_t topic = 0; topic < kNumTopics; ++topic) {
    for (int i = 0; i < 6; ++i) {
      (void)model.Train(
          GenerateAnnotationText(static_cast<AnnotationTopic>(topic), 150,
                                 &rng),
          AnnotationTopicLabel(static_cast<AnnotationTopic>(topic)));
    }
  }
  const std::string doc =
      GenerateAnnotationText(AnnotationTopic::kDisease, 400, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.ClassifyIndex(doc));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NaiveBayesClassify);

SummaryObject MakeClassifierObject(uint32_t instance, int elements,
                                   Rng* rng) {
  SummaryObject obj;
  obj.instance_id = instance;
  obj.type = SummaryType::kClassifier;
  obj.instance_name = "C";
  obj.reps = {{"A", 0, 0}, {"B", 0, 0}};
  obj.elements.resize(2);
  for (int i = 0; i < elements; ++i) {
    const size_t label = static_cast<size_t>(rng->Uniform(0, 1));
    obj.elements[label].push_back(
        {static_cast<AnnId>(rng->Uniform(1, 10000)), 0x1});
  }
  for (size_t i = 0; i < 2; ++i) {
    std::map<AnnId, uint64_t> dedup;
    for (auto& e : obj.elements[i]) dedup[e.ann_id] |= e.column_mask;
    obj.elements[i].clear();
    for (auto& [id, mask] : dedup) obj.elements[i].push_back({id, mask});
    obj.reps[i].count = static_cast<int64_t>(obj.elements[i].size());
  }
  return obj;
}

void BM_MergeSummaries(benchmark::State& state) {
  Rng rng(5);
  SummarySet left({MakeClassifierObject(1, static_cast<int>(state.range(0)),
                                        &rng)});
  SummarySet right({MakeClassifierObject(1, static_cast<int>(state.range(0)),
                                         &rng)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(MergeSummaries(left, right, 4));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MergeSummaries)->Arg(10)->Arg(100)->Arg(1000);

void BM_SummaryObjectSerialize(benchmark::State& state) {
  Rng rng(6);
  SummaryObject obj = MakeClassifierObject(1, 200, &rng);
  for (auto _ : state) {
    std::string buf;
    obj.Serialize(&buf);
    benchmark::DoNotOptimize(buf);
  }
}
BENCHMARK(BM_SummaryObjectSerialize);

}  // namespace
}  // namespace insight

BENCHMARK_MAIN();
