// Figure 7 — Storage overhead of the two indexing schemes.
//
// Paper result: the Baseline scheme roughly doubles the summary storage
// (normalized replica) while its B-Tree is about the same size as the
// Summary-BTree; the Summary-BTree scheme saves ~65% total overhead, and
// the footprint stays flat as raw annotations grow (only label counts
// change, not object sizes).

#include "bench_util.h"

using namespace insight;
using namespace insight::bench;

int main(int argc, char** argv) {
  BenchConfig config = ParseArgs(argc, argv);
  PrintHeader("Figure 7: storage overhead (summary objects + index)",
              "Baseline ~= 2x summary bytes + index; Summary-BTree adds "
              "only the index (~65% savings); both flat in #annotations",
              config);
  std::printf("%-10s %14s %14s | %14s %14s | %8s\n", "x-axis",
              "summaries(MB)", "sbt-index(MB)", "replica(MB)",
              "base-idx(MB)", "savings");
  for (size_t per_bird : BenchConfig::AnnotationSweep()) {
    Database db;
    BirdsWorkloadOptions opts = CorpusOptions(config, per_bird);
    opts.synonyms_per_bird = 0;
    opts.classifier_indexable = true;
    opts.build_baseline_index = true;
    auto workload = GenerateBirdsWorkload(&db, opts);
    if (!workload.ok()) {
      std::printf("workload failed: %s\n",
                  workload.status().ToString().c_str());
      return 1;
    }
    (void)db.pool()->FlushAll();

    SummaryManager* mgr = *db.GetManager("Birds");
    const SummaryBTree* sbt = *db.GetSummaryIndex("Birds", "ClassBird1");
    // The baseline handles live inside the database; expose footprints
    // through the context registry.
    const BaselineClassifierIndex* baseline =
        (*db.context()->Get("Birds"))->BaselineIndexFor("ClassBird1");

    const double summary_mb = Mb(mgr->summary_storage_bytes());
    const double sbt_mb = Mb(sbt->size_bytes());
    const double replica_mb = Mb(baseline->replica_bytes());
    const double base_idx_mb = Mb(baseline->index_bytes());
    const double baseline_total = replica_mb + base_idx_mb;
    const double sbt_total = sbt_mb;
    std::printf("%-10s %14.2f %14.2f | %14.2f %14.2f | %7.0f%%\n",
                BenchConfig::PaperAxisLabel(per_bird).c_str(), summary_mb,
                sbt_mb, replica_mb, base_idx_mb,
                baseline_total > 0
                    ? 100.0 * (baseline_total - sbt_total) / baseline_total
                    : 0.0);
  }
  std::printf("\n(savings = 1 - SummaryBTree-added-bytes / "
              "Baseline-added-bytes; the paper reports up to 65%%)\n");
  return 0;
}
