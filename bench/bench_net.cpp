// Network service throughput — aggregate statements/sec against a live
// insightd serving core as the client count grows.
//
//   Read arms: 1, 4, and 16 concurrent clients, each on its own
//   connection, all running the same read-only SELECT mix against one
//   table. Every client verifies each reply (row count and first-row
//   contents), so the measured path is the full stack: frame parse,
//   snapshot acquisition, execution, result encode, socket write.
//
//   Mixed arms: the same client counts running a 90/10 read/write mix
//   (every tenth statement is an autocommit INSERT). Writers serialize
//   on the transaction manager's write gate while the reads between
//   them run gate-free on MVCC snapshots, so mixed aggregate throughput
//   should keep scaling with clients instead of convoying behind the
//   writers the way the retired whole-statement gate did.
//
// Expectation: on a multi-core host the 16-client arms should reach
// >= 2x the aggregate throughput of the 1-client arm. On a 1-core CI
// box there is no parallel speedup to claim; --smoke therefore gates
// correctness only, plus a regression backstop: 16 clients must not be
// more than 2x SLOWER in aggregate than a single client (fairness /
// lock-convoy check), and shrinks the statement counts to CI size.
//
// Emits BENCH_net.json. With --smoke the process exits nonzero when any
// statement fails, any reply is wrong, or the backstop ratio is missed.

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "net/client.h"
#include "net/server.h"
#include "sql/database.h"

using namespace insight;
using namespace insight::bench;

namespace {

constexpr const char* kTable = "Birds";

/// The read-only statement mix. Rotating through several shapes keeps
/// the per-statement cost from collapsing into one cached plan while
/// staying cheap enough that the wire + gate overhead is visible.
std::string MixedSelect(size_t i, size_t rows) {
  switch (i % 3) {
    case 0:
      return "SELECT name FROM " + std::string(kTable) + " WHERE n = " +
             std::to_string(i % rows);
    case 1:
      return "SELECT n, name FROM " + std::string(kTable) +
             " WHERE n < 8 ORDER BY n";
    default:
      return "SELECT n FROM " + std::string(kTable) + " ORDER BY n LIMIT 4";
  }
}

/// Expected row count for MixedSelect(i, rows); replies are verified so
/// the bench cannot quietly measure a stream of Error frames.
size_t ExpectedRows(size_t i, size_t rows) {
  switch (i % 3) {
    case 0:
      return 1;
    case 1:
      return rows < 8 ? rows : 8;
    default:
      return rows < 4 ? rows : 4;
  }
}

struct ArmResult {
  size_t clients = 0;
  size_t statements = 0;  // Aggregate across all clients.
  double wall_ms = 0.0;
  double stmts_per_sec = 0.0;
  size_t errors = 0;
};

/// `write_every` = 0 runs read-only; N > 0 makes every Nth statement an
/// autocommit INSERT (the 90/10 mixed arm uses 10). Writes land in a
/// disjoint key range (n >= 1'000'000) so the read mix's expected row
/// counts stay exact.
ArmResult RunArm(uint16_t port, size_t clients, size_t per_client,
                 size_t rows, size_t write_every) {
  ArmResult arm;
  arm.clients = clients;
  arm.statements = clients * per_client;

  // Connect everyone first so the timed region is statements only.
  std::vector<std::unique_ptr<InsightClient>> conns;
  for (size_t c = 0; c < clients; ++c) {
    auto conn = InsightClient::Connect("127.0.0.1", port);
    INSIGHT_CHECK(conn.ok());
    conns.push_back(std::move(*conn));
  }

  std::atomic<size_t> errors{0};
  Stopwatch timer;
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      InsightClient* client = conns[c].get();
      for (size_t i = 0; i < per_client; ++i) {
        // Offset per client so the arms don't run in lockstep.
        const size_t stmt = i + c * 7;
        if (write_every != 0 && i % write_every == write_every - 1) {
          const size_t key = 1'000'000 + c * per_client + i;
          auto written = client->Execute(
              "INSERT INTO " + std::string(kTable) + " VALUES (" +
              std::to_string(key) + ", 'w" + std::to_string(key) + "')");
          if (!written.ok()) errors.fetch_add(1);
          continue;
        }
        auto result = client->Execute(MixedSelect(stmt, rows));
        if (!result.ok() ||
            result->rows.size() != ExpectedRows(stmt, rows)) {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  arm.wall_ms = timer.ElapsedMillis();
  arm.errors = errors.load();
  arm.stmts_per_sec =
      static_cast<double>(arm.statements) / (arm.wall_ms / 1000.0);
  return arm;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config = ParseArgs(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  PrintHeader("bench_net: concurrent clients vs aggregate throughput",
              "read + mixed scaling across connections (MVCC snapshots)",
              config);

  const size_t rows = 512;
  const size_t per_client = smoke ? 50 : 400;

  Database db;
  INSIGHT_CHECK(
      db.Execute("CREATE TABLE " + std::string(kTable) +
                 " (n INT, name STRING)")
          .ok());
  for (size_t i = 0; i < rows; i += 64) {
    std::string insert = "INSERT INTO " + std::string(kTable) + " VALUES ";
    for (size_t j = i; j < i + 64 && j < rows; ++j) {
      if (j > i) insert += ", ";
      insert += "(" + std::to_string(j) + ", 'bird" + std::to_string(j) +
                "')";
    }
    INSIGHT_CHECK(db.Execute(insert).ok());
  }

  InsightServer::Options options;
  options.port = 0;
  options.io_threads = 4;
  InsightServer server(&db, options);
  INSIGHT_CHECK(server.Start().ok());

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("server on 127.0.0.1:%u, %u hardware threads\n",
              server.port(), cores);

  std::printf("-- read-only arms --\n");
  std::vector<ArmResult> arms;
  for (size_t clients : {1u, 4u, 16u}) {
    ArmResult arm =
        RunArm(server.port(), clients, per_client, rows, /*write_every=*/0);
    std::printf("%2zu clients: %6zu stmts in %8.1f ms -> %9.0f stmts/sec "
                "(%zu errors)\n",
                arm.clients, arm.statements, arm.wall_ms,
                arm.stmts_per_sec, arm.errors);
    arms.push_back(arm);
  }

  std::printf("-- mixed 90/10 read/write arms --\n");
  std::vector<ArmResult> mixed;
  for (size_t clients : {1u, 4u, 16u}) {
    ArmResult arm =
        RunArm(server.port(), clients, per_client, rows, /*write_every=*/10);
    std::printf("%2zu clients: %6zu stmts in %8.1f ms -> %9.0f stmts/sec "
                "(%zu errors)\n",
                arm.clients, arm.statements, arm.wall_ms,
                arm.stmts_per_sec, arm.errors);
    mixed.push_back(arm);
  }

  server.NudgeShutdown();
  server.Shutdown();

  const double speedup_16 = arms[2].stmts_per_sec / arms[0].stmts_per_sec;
  const double mixed_speedup_16 =
      mixed[2].stmts_per_sec / mixed[0].stmts_per_sec;
  std::printf("16-client aggregate speedup over 1 client: %.2fx read-only, "
              "%.2fx mixed\n",
              speedup_16, mixed_speedup_16);

  FILE* json = std::fopen("BENCH_net.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"net_concurrent_clients\",\n"
                 "  \"rows\": %zu,\n  \"statements_per_client\": %zu,\n"
                 "  \"hardware_threads\": %u,\n  \"arms\": [",
                 rows, per_client, cores);
    for (size_t i = 0; i < arms.size(); ++i) {
      std::fprintf(json,
                   "%s\n    {\"clients\": %zu, \"statements\": %zu, "
                   "\"wall_ms\": %.3f, \"stmts_per_sec\": %.1f, "
                   "\"errors\": %zu}",
                   i == 0 ? "" : ",", arms[i].clients, arms[i].statements,
                   arms[i].wall_ms, arms[i].stmts_per_sec, arms[i].errors);
    }
    std::fprintf(json, "\n  ],\n  \"mixed_write_every\": 10,\n"
                 "  \"mixed_arms\": [");
    for (size_t i = 0; i < mixed.size(); ++i) {
      std::fprintf(json,
                   "%s\n    {\"clients\": %zu, \"statements\": %zu, "
                   "\"wall_ms\": %.3f, \"stmts_per_sec\": %.1f, "
                   "\"errors\": %zu}",
                   i == 0 ? "" : ",", mixed[i].clients, mixed[i].statements,
                   mixed[i].wall_ms, mixed[i].stmts_per_sec,
                   mixed[i].errors);
    }
    std::fprintf(json,
                 "\n  ],\n  \"speedup_16_over_1\": %.3f,\n"
                 "  \"mixed_speedup_16_over_1\": %.3f\n}\n",
                 speedup_16, mixed_speedup_16);
    std::fclose(json);
    std::printf("wrote BENCH_net.json\n");
  }

  bool failed = false;
  for (const std::vector<ArmResult>* group : {&arms, &mixed}) {
    for (const ArmResult& arm : *group) {
      if (arm.errors != 0) {
        std::fprintf(stderr, "FAIL: %zu-client arm had %zu errors\n",
                     arm.clients, arm.errors);
        failed = true;
      }
    }
  }
  // Correctness backstop for 1-core CI; the >= 2x multi-core expectation
  // is reported, not gated, since CI runners may be single-core.
  if (speedup_16 < 0.5 || mixed_speedup_16 < 0.5) {
    std::fprintf(stderr,
                 "FAIL: 16 clients reached only %.2fx read-only / %.2fx "
                 "mixed of 1-client aggregate throughput (>2x slowdown)\n",
                 speedup_16, mixed_speedup_16);
    failed = true;
  }
  if (smoke && failed) return 1;
  return 0;
}
