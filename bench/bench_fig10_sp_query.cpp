// Figure 10 — Select-Project query with a classifier equality predicate:
//   SELECT * FROM Birds WHERE ClassBird1.Disease = constant
// under (1) no index, (2) the Baseline standard-B-Tree scheme, and
// (3) the Summary-BTree.
//
// Paper result (log-scale): both indexes beat the no-index plan by about
// two orders of magnitude; the Summary-BTree is ~3x faster than the
// Baseline because it skips the extra levels of indirection.

#include "bench_util.h"

using namespace insight;
using namespace insight::bench;

int main(int argc, char** argv) {
  BenchConfig config = ParseArgs(argc, argv);
  PrintHeader("Figure 10: SP query, classifier equality predicate "
              "(~1% selectivity)",
              "NoIndex >> Baseline (~2 orders); Summary-BTree ~3x over "
              "Baseline",
              config);
  std::printf("%-10s %6s %12s %12s %12s %8s %8s\n", "x-axis", "hits",
              "noindex(ms)", "baseline(ms)", "sbt(ms)", "no/sbt",
              "base/sbt");
  for (size_t per_bird : BenchConfig::AnnotationSweep()) {
    Database db;
    BirdsWorkloadOptions opts = CorpusOptions(config, per_bird);
    opts.synonyms_per_bird = 0;
    opts.build_baseline_index = true;  // Plus the Summary-BTree (default).
    GenerateBirdsWorkload(&db, opts).ValueOrDie();
    (void)db.Analyze("Birds");

    const int64_t constant =
        PickEqualityConstant(&db, "Birds", "ClassBird1", "Disease", 0.01);
    const std::string sql =
        "SELECT id FROM Birds WHERE "
        "$.getSummaryObject('ClassBird1').getLabelValue('Disease') = " +
        std::to_string(constant);

    size_t hits = 0;
    auto run = [&](bool use_sbt, bool use_baseline) {
      db.optimizer_options().use_summary_indexes = use_sbt;
      db.optimizer_options().use_baseline_indexes = use_baseline;
      return MedianMillis(config.query_repeats, [&] {
        hits = db.Execute(sql).ValueOrDie().rows.size();
      });
    };
    const double noindex_ms = run(false, false);
    const double baseline_ms = run(false, true);
    const double sbt_ms = run(true, false);
    std::printf("%-10s %6zu %12.2f %12.2f %12.2f %8.1f %8.1f\n",
                BenchConfig::PaperAxisLabel(per_bird).c_str(), hits,
                noindex_ms, baseline_ms, sbt_ms, noindex_ms / sbt_ms,
                baseline_ms / sbt_ms);
  }
  return 0;
}
