// Figure 8 — Bulk index creation overhead, relative to data loading.
//
// Paper result: building either index after a bulk load costs a few
// percent of the load time, with the Summary-BTree ~35% cheaper than the
// Baseline scheme (no de-normalization pass, no replica writes).

#include "bench_util.h"

using namespace insight;
using namespace insight::bench;

int main(int argc, char** argv) {
  BenchConfig config = ParseArgs(argc, argv);
  PrintHeader("Figure 8: bulk index creation (% of data-loading time)",
              "both ~4-10% of loading time; Summary-BTree up to ~35% "
              "cheaper than Baseline",
              config);
  std::printf("%-10s %12s %16s %16s %9s\n", "x-axis", "load(s)",
              "sbt (% of load)", "base (% of load)", "sbt/base");
  for (size_t per_bird : BenchConfig::AnnotationSweep()) {
    Database db;
    BirdsWorkloadOptions opts = CorpusOptions(config, per_bird);
    opts.synonyms_per_bird = 0;
    opts.classifier_indexable = false;  // Indexes built afterwards, timed.
    opts.build_baseline_index = false;
    Stopwatch load_timer;
    auto workload = GenerateBirdsWorkload(&db, opts);
    if (!workload.ok()) {
      std::printf("workload failed: %s\n",
                  workload.status().ToString().c_str());
      return 1;
    }
    const double load_s = load_timer.ElapsedSeconds();

    SummaryManager* mgr = *db.GetManager("Birds");
    Stopwatch sbt_timer;
    auto sbt = SummaryBTree::Create(db.storage(), db.pool(), mgr,
                                    "ClassBird1", SummaryBTree::Options{});
    const double sbt_s = sbt_timer.ElapsedSeconds();
    if (!sbt.ok()) {
      std::printf("sbt failed: %s\n", sbt.status().ToString().c_str());
      return 1;
    }

    Stopwatch base_timer;
    auto baseline = BaselineClassifierIndex::Create(
        db.catalog(), mgr, "ClassBird1", BaselineClassifierIndex::Options{});
    const double base_s = base_timer.ElapsedSeconds();
    if (!baseline.ok()) {
      std::printf("baseline failed: %s\n",
                  baseline.status().ToString().c_str());
      return 1;
    }

    std::printf("%-10s %12.2f %15.1f%% %15.1f%% %9.2f\n",
                BenchConfig::PaperAxisLabel(per_bird).c_str(), load_s,
                100.0 * sbt_s / load_s, 100.0 * base_s / load_s,
                base_s > 0 ? sbt_s / base_s : 0.0);
  }
  return 0;
}
