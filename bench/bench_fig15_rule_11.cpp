// Figure 15 — Effectiveness of Rule 11: switching the order between a
// data-based join and a summary-based join.
//
// Setup mirrors the paper: R = Birds, S = Reports (sharing the
// TextSummary1 instance, so the summary-based join J runs a keyword
// search over their combined snippet objects — no summary index can
// help), and T = a replica of R joined 1-1 through an indexed id column.
//
//   default plan:    (J(R, S))  then  NL-join with T
//   optimized plan:  (R index-join T)  then  J with S      [Rule 11]
//
// Paper result: ~3.5x speedup.

#include "bench_util.h"

using namespace insight;
using namespace insight::bench;

int main(int argc, char** argv) {
  BenchConfig config = ParseArgs(argc, argv);
  PrintHeader("Figure 15: Rule 11 (swap data-join and summary-join order)",
              "optimized order ~3.5x faster", config);

  std::printf("%-10s %6s %14s %14s %8s\n", "x-axis", "rows",
              "default(ms)", "optimized(ms)", "speedup");
  for (size_t per_bird : std::vector<size_t>{10, 50, 200}) {
    Database db;
    BirdsWorkloadOptions opts = CorpusOptions(config, per_bird);
    opts.synonyms_per_bird = 0;
    GenerateBirdsWorkload(&db, opts).ValueOrDie();

    // S: Reports, sharing TextSummary1 (linked from the same prototype).
    db.Execute("CREATE TABLE Reports (rep_id INT, title TEXT)")
        .ValueOrDie();
    db.Execute("ALTER TABLE Reports ADD TextSummary1").ValueOrDie();
    Rng rng(config.seed + 5);
    const size_t num_reports = std::max<size_t>(20, config.birds() / 10);
    for (size_t i = 0; i < num_reports; ++i) {
      db.Execute("INSERT INTO Reports VALUES (" + std::to_string(i + 1) +
                 ", 'report" + std::to_string(i) + "')")
          .ValueOrDie();
      // One long annotation per report so it has snippet objects.
      db.Annotate("Reports",
                  GenerateAnnotationText(
                      static_cast<AnnotationTopic>(i % kNumTopics), 1400,
                      &rng),
                  {{static_cast<Oid>(i + 1), RowMask(2)}})
          .ValueOrDie();
    }

    // T: replica of Birds ids, indexed.
    db.Execute("CREATE TABLE BirdsT (tid INT, tag TEXT)").ValueOrDie();
    for (size_t i = 0; i < config.birds(); ++i) {
      db.Execute("INSERT INTO BirdsT VALUES (" + std::to_string(i + 1) +
                 ", 'tag" + std::to_string(i) + "')")
          .ValueOrDie();
    }
    db.Execute("CREATE INDEX ON BirdsT (tid)").ValueOrDie();
    (void)db.Analyze("Birds");
    (void)db.Analyze("Reports");
    (void)db.Analyze("BirdsT");

    // J: keyword search over the COMBINED TextSummary1 objects.
    auto build_plan = [&] {
      SummaryJoinPredicate pred;
      pred.merged_expr =
          ContainsUnion("TextSummary1", {"wingspan", "station"});
      LogicalPtr sjoin =
          LSummaryJoin(LScan("Birds"), LScan("Reports"), std::move(pred));
      return LJoin(std::move(sjoin), LScan("BirdsT", false),
                   Cmp(Col("id"), CompareOp::kEq, Col("tid")));
    };

    size_t rows = 0;
    auto run = [&](bool optimizations) {
      db.optimizer_options().enable_rewrite_rules = optimizations;
      db.optimizer_options().use_data_indexes = optimizations;
      db.optimizer_options().use_summary_indexes = false;
      db.optimizer_options().use_baseline_indexes = false;
      // The paper's engine implements only NL and index joins.
      db.optimizer_options().enable_hash_join = false;
      return MedianMillis(std::max(1, config.query_repeats / 2), [&] {
        rows = db.Run(build_plan()).ValueOrDie().size();
      });
    };
    const double default_ms = run(false);
    const double optimized_ms = run(true);
    std::printf("%-10s %6zu %14.1f %14.1f %7.1fx\n",
                BenchConfig::PaperAxisLabel(per_bird).c_str(), rows,
                default_ms, optimized_ms, default_ms / optimized_ms);
  }
  return 0;
}
