// Figure 9 — Incremental indexing overhead per annotation insertion.
//
// Paper result: with the Summary-BTree subscribed, inserting an
// annotation costs ~10-15% more than with no index; the Baseline scheme
// adds ~20-37% because every update also maintains the normalized
// replica. (The paper's Fig. 9 uses the {450K, 2.25M, 9M} points.)

#include "bench_util.h"

using namespace insight;
using namespace insight::bench;

namespace {

enum class IndexArm { kNone, kSummaryBTree, kBaseline };

// Builds a corpus with the chosen index arm subscribed, then measures the
// average time of 100 further annotation insertions.
double MeasureInsertMs(const BenchConfig& config, size_t per_bird,
                       IndexArm arm) {
  Database db;
  BirdsWorkloadOptions opts = CorpusOptions(config, per_bird);
  opts.synonyms_per_bird = 0;
  opts.classifier_indexable = arm == IndexArm::kSummaryBTree;
  opts.build_baseline_index = arm == IndexArm::kBaseline;
  GenerateBirdsWorkload(&db, opts).ValueOrDie();

  Rng rng(config.seed + 99);
  Stopwatch timer;
  constexpr size_t kInserts = 100;
  AddRandomAnnotations(&db, "Birds", opts.num_birds, kInserts, &rng, opts)
      .ValueOrDie();
  return timer.ElapsedMillis() / kInserts;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config = ParseArgs(argc, argv);
  PrintHeader(
      "Figure 9: incremental indexing (avg ms per annotation insert)",
      "Summary-BTree adds ~10-15% over no-index; Baseline ~20-37%",
      config);
  std::printf("%-10s %12s %12s %12s %12s %12s\n", "x-axis", "none(ms)",
              "sbt(ms)", "base(ms)", "sbt-ovhd", "base-ovhd");
  for (size_t per_bird : std::vector<size_t>{10, 50, 200}) {
    const double none_ms = MeasureInsertMs(config, per_bird, IndexArm::kNone);
    const double sbt_ms =
        MeasureInsertMs(config, per_bird, IndexArm::kSummaryBTree);
    const double base_ms =
        MeasureInsertMs(config, per_bird, IndexArm::kBaseline);
    std::printf("%-10s %12.3f %12.3f %12.3f %11.0f%% %11.0f%%\n",
                BenchConfig::PaperAxisLabel(per_bird).c_str(), none_ms,
                sbt_ms, base_ms, 100.0 * (sbt_ms - none_ms) / none_ms,
                100.0 * (base_ms - none_ms) / none_ms);
  }
  return 0;
}
