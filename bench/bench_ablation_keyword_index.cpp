// Ablation (extension beyond the paper) — the inverted keyword index over
// Snippet instances. The paper indexes only Classifier-type objects and
// evaluates keyword predicates with a summary-based selection over a
// scan; its companion technical report [16] studies snippet keyword
// search. This ablation measures what the paper's "more implementation
// choices for the summary-based operators" future work buys:
//
//   SELECT ... WHERE TextSummary1.containsUnion(kw1, kw2)
//
// evaluated by (a) table scan + S operator and (b) the keyword index.

#include "bench_util.h"

using namespace insight;
using namespace insight::bench;

int main(int argc, char** argv) {
  BenchConfig config = ParseArgs(argc, argv);
  PrintHeader("Ablation: snippet keyword index (extension)",
              "no paper counterpart; expectation: index >> scan+S, gap "
              "growing with corpus size",
              config);
  std::printf("%-10s %6s %12s %12s %8s\n", "x-axis", "hits", "scan+S(ms)",
              "kw-index(ms)", "speedup");
  for (size_t per_bird : BenchConfig::AnnotationSweep()) {
    Database db;
    BirdsWorkloadOptions opts = CorpusOptions(config, per_bird);
    opts.synonyms_per_bird = 0;
    opts.long_annotation_fraction = 0.08;
    GenerateBirdsWorkload(&db, opts).ValueOrDie();
    // Index the snippet instance (the workload links it un-indexed; the
    // index subscribes and bulk-builds here).
    auto index = SnippetKeywordIndex::Create(
                     db.storage(), db.pool(), *db.GetManager("Birds"),
                     "TextSummary1", SnippetKeywordIndex::Options{})
                     .ValueOrDie();
    (void)db.context()->RegisterKeywordIndex("Birds", "TextSummary1",
                                             index.get());
    (void)db.Analyze("Birds");

    const std::string sql =
        "SELECT id FROM Birds WHERE "
        "$.getSummaryObject('TextSummary1').containsUnion('stonewort', "
        "'lesion', 'wingspan')";
    size_t hits = 0;
    auto run = [&](bool use_index) {
      db.optimizer_options().use_summary_indexes = use_index;
      return MedianMillis(config.query_repeats, [&] {
        hits = db.Execute(sql).ValueOrDie().rows.size();
      });
    };
    const double scan_ms = run(false);
    const double index_ms = run(true);
    std::printf("%-10s %6zu %12.2f %12.2f %7.1fx\n",
                BenchConfig::PaperAxisLabel(per_bird).c_str(), hits, scan_ms,
                index_ms, scan_ms / index_ms);
  }
  return 0;
}
