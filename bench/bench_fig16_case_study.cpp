// Figure 16 — Usability case study of the NEW extensions: basic
// InsightNotes (summaries propagate but cannot be queried; post-
// processing happens client-side) vs InsightNotes+ (summary-based
// operators + indexes + optimizer).
//
// The paper's times include human query-writing; the engine-side
// comparison here isolates the automatable part: the basic arm runs the
// closest expressible query and post-processes its result client-side,
// the plus arm runs the native summary-based query.
//
// Paper result: Q1 5.2 min -> 40 s; Q2 8.1 min -> 54 s; Q3 infeasible
// (45,000 reported tuples) -> 52 s. All 100% accurate.

#include <algorithm>

#include "bench_util.h"

using namespace insight;
using namespace insight::bench;

namespace {

int64_t DiseaseOf(const Row& row) {
  const SummaryObject* obj = row.summaries.GetSummaryObject("ClassBird1");
  if (obj == nullptr) return 0;
  auto value = obj->GetLabelValue("Disease");
  return value.ok() ? *value : 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config = ParseArgs(argc, argv);
  PrintHeader("Figure 16: usability study, basic InsightNotes vs "
              "InsightNotes+",
              "Q1 5.2min->40s, Q2 8.1min->54s, Q3 infeasible->52s "
              "(manual-minutes are human time; here both arms are "
              "machine-run, so ratios are conservative)",
              config);
  Database db;
  BirdsWorkloadOptions opts = CorpusOptions(config, 100);
  opts.synonyms_per_bird = 0;
  GenerateBirdsWorkload(&db, opts).ValueOrDie();
  // Second version of the table for Q2 (divergent annotations).
  db.Execute("CREATE TABLE BirdsV2 (id INT, common_name TEXT)").ValueOrDie();
  db.Execute("ALTER TABLE BirdsV2 ADD INDEXABLE ClassBird1").ValueOrDie();
  {
    Rng rng(config.seed + 3);
    for (size_t i = 0; i < config.birds(); ++i) {
      db.Execute("INSERT INTO BirdsV2 VALUES (" + std::to_string(i + 1) +
                 ", 'bird" + std::to_string(i) + "')")
          .ValueOrDie();
      const int notes = static_cast<int>(rng.Uniform(0, 4));
      for (int a = 0; a < notes; ++a) {
        db.Annotate("BirdsV2",
                    GenerateAnnotationText(AnnotationTopic::kDisease, 200,
                                           &rng),
                    {{static_cast<Oid>(i + 1), RowMask(2)}})
            .ValueOrDie();
      }
    }
  }
  (void)db.Analyze("Birds");
  (void)db.Analyze("BirdsV2");
  SummaryManager* mgr = *db.GetManager("Birds");
  Table* birds = *db.GetTable("Birds");

  std::printf("%-34s %14s %14s %8s\n", "query", "basic(ms)", "plus(ms)",
              "speedup");

  // --- Q1: sort by disease-annotation count. Basic InsightNotes cannot
  // sort on summaries: it retrieves everything (with summaries) and the
  // client sorts. ---
  {
    const double basic_ms = MedianMillis(config.query_repeats, [&] {
      SeqScanOp scan(birds, mgr, true);
      std::vector<Row> rows = CollectRows(&scan).ValueOrDie();
      std::stable_sort(rows.begin(), rows.end(),
                       [](const Row& a, const Row& b) {
                         return DiseaseOf(a) < DiseaseOf(b);
                       });
    });
    const double plus_ms = MedianMillis(config.query_repeats, [&] {
      db.Execute(
            "SELECT common_name FROM Birds ORDER BY "
            "$.getSummaryObject('ClassBird1').getLabelValue('Disease')")
          .ValueOrDie();
    });
    std::printf("%-34s %14.1f %14.1f %7.1fx\n",
                "Q1 summary-based sort", basic_ms, plus_ms,
                basic_ms / plus_ms);
  }

  // --- Q2: join V1 x V2 on id, keep pairs whose provenance/disease
  // counts differ. Basic: data join (all pairs with summaries), client
  // checks the summary predicate over 450 joined tuples. ---
  {
    SummaryManager* mgr2 = *db.GetManager("BirdsV2");
    Table* birds2 = *db.GetTable("BirdsV2");
    const double basic_ms = MedianMillis(config.query_repeats, [&] {
      // Engine does the data join; the summary predicate is manual.
      auto left = std::make_unique<SeqScanOp>(birds, mgr, true);
      auto right = std::make_unique<SeqScanOp>(birds2, mgr2, true);
      // Basic InsightNotes merges summaries in the join, after which the
      // per-side counts are gone — the student had to re-query each side
      // tuple-by-tuple. Emulate with per-pair summary lookups.
      NestedLoopJoinOp join(std::move(left), std::move(right),
                            Cmp(Col("id"), CompareOp::kEq, Col("id")));
      size_t differing = 0;
      (void)join.Open();
      Row row;
      while (join.Next(&row).ValueOrDie()) {
        const int64_t joined_id = row.data.at(0).AsInt();
        SummarySet v1 =
            mgr->GetSummaries(static_cast<Oid>(joined_id)).ValueOrDie();
        SummarySet v2 =
            mgr2->GetSummaries(static_cast<Oid>(joined_id)).ValueOrDie();
        auto count = [](const SummarySet& set) -> int64_t {
          const SummaryObject* obj = set.GetSummaryObject("ClassBird1");
          if (obj == nullptr) return 0;
          auto v = obj->GetLabelValue("Disease");
          return v.ok() ? *v : 0;
        };
        if (count(v1) != count(v2)) ++differing;
      }
      join.Close();
    });
    const double plus_ms = MedianMillis(config.query_repeats, [&] {
      db.Execute(
            "SELECT v1.id FROM Birds v1, BirdsV2 v2 WHERE v1.id = v2.id "
            "AND v1.$.getSummaryObject('ClassBird1')"
            ".getLabelValue('Disease') <> "
            "v2.$.getSummaryObject('ClassBird1')"
            ".getLabelValue('Disease')")
          .ValueOrDie();
    });
    std::printf("%-34s %14.1f %14.1f %7.1fx\n",
                "Q2 summary-based version join", basic_ms, plus_ms,
                basic_ms / plus_ms);
  }

  // --- Q3: select birds with more than N disease annotations (a
  // handful qualify, as in the paper's 10-of-45,000). Basic: ALL tuples
  // come back and the client filters. ---
  {
    const int64_t threshold =
        PickThresholdConstant(&db, "Birds", "ClassBird1", "Disease", 0.02);
    const double basic_ms = MedianMillis(config.query_repeats, [&] {
      SeqScanOp scan(birds, mgr, true);
      std::vector<Row> rows = CollectRows(&scan).ValueOrDie();
      size_t kept = 0;
      for (const Row& row : rows) {
        if (DiseaseOf(row) > threshold) ++kept;
      }
    });
    const double plus_ms = MedianMillis(config.query_repeats, [&] {
      db.Execute(
            "SELECT common_name FROM Birds WHERE "
            "$.getSummaryObject('ClassBird1').getLabelValue('Disease') > " +
            std::to_string(threshold))
          .ValueOrDie();
    });
    std::printf("%-34s %14.1f %14.1f %7.1fx\n",
                "Q3 summary-based selection", basic_ms, plus_ms,
                basic_ms / plus_ms);
  }
  return 0;
}
