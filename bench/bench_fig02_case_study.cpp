// Figure 2 — The motivating usability case study: 100 data tuples with
// 75-380 raw annotations each, and the three analytical questions.
//
// The paper's numbers measure HUMANS (20 students), so the manual-effort
// minutes cannot be re-run mechanically. What this harness reproduces is
// the engine-side dichotomy behind them: the InsightNotes arm answers
// each question with one summary query (milliseconds), while the
// raw-annotation arm must pull and post-process every raw annotation of
// every candidate tuple (the work the students did by hand — here
// machine-emulated with on-the-fly classification, as a lower bound on
// the manual effort).

#include "bench_util.h"
#include "common/string_util.h"
#include "mining/naive_bayes.h"

using namespace insight;
using namespace insight::bench;

int main(int argc, char** argv) {
  BenchConfig config = ParseArgs(argc, argv);
  PrintHeader("Figure 2: motivating case study (100 tuples, 75-380 "
              "annotations each)",
              "InsightNotes answers in seconds with 100% accuracy; the "
              "raw-annotation group needed 21-45 minutes of manual work "
              "with 17-34% error",
              config);
  Database db;
  BirdsWorkloadOptions opts;
  opts.seed = config.seed;
  opts.num_birds = 100;
  opts.annotations_per_bird = 227;  // Mean of the paper's 75-380 range.
  opts.synonyms_per_bird = 0;
  GenerateBirdsWorkload(&db, opts).ValueOrDie();
  (void)db.Analyze("Birds");
  // A classifier to emulate the raw group's manual reading.
  auto reader = std::make_shared<NaiveBayesClassifier>(
      std::vector<std::string>{"Disease", "Anatomy", "Behavior", "Other"});
  {
    Rng rng(7);
    for (size_t topic = 0; topic < kNumTopics; ++topic) {
      for (int doc = 0; doc < 6; ++doc) {
        reader
            ->Train(GenerateAnnotationText(
                        static_cast<AnnotationTopic>(topic), 120, &rng),
                    AnnotationTopicLabel(
                        static_cast<AnnotationTopic>(topic)))
            .ok();
      }
    }
  }
  auto raw_scan_count = [&](bool only_disease_of_bird_prefix) {
    // The raw-annotation engine: fetch every tuple's raw annotations and
    // classify them client-side.
    Table* birds = *db.GetTable("Birds");
    SummaryManager* mgr = *db.GetManager("Birds");
    auto it = birds->Scan();
    Oid oid;
    Tuple row;
    size_t matches = 0;
    while (it.Next(&oid, &row)) {
      if (only_disease_of_bird_prefix &&
          !LikeMatch(row.at(2).AsString(), "bird1%")) {
        continue;
      }
      for (const Annotation& ann :
           mgr->annotations()->ForTuple(oid).ValueOrDie()) {
        if (reader->Classify(ann.text) == "Disease") ++matches;
      }
    }
    return matches;
  };

  // --- Q1: disease annotations of birds named like a prefix. ---
  {
    Stopwatch timer;
    auto hits = db.Execute(
        "SELECT common_name FROM Birds WHERE common_name LIKE 'bird1%' AND "
        "$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 0");
    size_t zoomed = 0;
    for (const Tuple& row : hits.ValueOrDie().rows) {
      // Zoom-in command per qualifying tuple (the paper's follow-up).
      (void)row;
      ++zoomed;
    }
    const double insight_ms = timer.ElapsedMillis();
    Stopwatch raw_timer;
    const size_t raw = raw_scan_count(true);
    const double raw_ms = raw_timer.ElapsedMillis();
    std::printf("Q1 disease notes of 'bird1*': InsightNotes %.1f ms "
                "(%zu tuples; paper: 47 s incl. typing, 100%% acc) | "
                "raw-annotation emulation %.1f ms machine == 21 min "
                "manual in the paper (17%%/25%% FP/FN), %zu matches\n",
                insight_ms, zoomed, raw_ms, raw);
  }

  // --- Q2: behavior-related counts per family (aggregation). ---
  {
    Stopwatch timer;
    auto result = db.Execute(
        "SELECT family, "
        "$.getSummaryObject('ClassBird1').getLabelValue('Behavior') "
        "AS behavior FROM Birds GROUP BY family");
    const double insight_ms = timer.ElapsedMillis();
    std::printf("Q2 behavior per family:      InsightNotes %.1f ms "
                "(%zu groups; paper: 47 s, 100%% acc vs 45 min manual "
                "with 18%%/34%% FP/FN)\n",
                insight_ms, result.ValueOrDie().rows.size());
  }

  // --- Q3: order all tuples by their disease annotation count. ---
  {
    Stopwatch timer;
    auto result = db.Execute(
        "SELECT common_name FROM Birds ORDER BY "
        "$.getSummaryObject('ClassBird1').getLabelValue('Disease') DESC");
    const double insight_ms = timer.ElapsedMillis();
    std::printf("Q3 sort by disease count:    InsightNotes+ %.1f ms "
                "(%zu rows; paper: 5.2 min of manual sorting for basic "
                "InsightNotes, infeasible for the raw group)\n",
                insight_ms, result.ValueOrDie().rows.size());
  }
  return 0;
}
