// Figure 12 — Propagation cost when the Baseline scheme must re-form the
// summary objects from its normalized replica instead of reading the
// de-normalized SummaryStorage rows.
//
// Same two-predicate query as Figure 11, but the Baseline arm both
// evaluates the predicate AND reconstructs the Classifier objects from
// their primitive (tuple, label, cnt) rows for propagation.
//
// Paper result: the Baseline arm becomes ~7x slower than the
// Summary-BTree arm.

#include "bench_util.h"
#include "engine/operators.h"

using namespace insight;
using namespace insight::bench;

int main(int argc, char** argv) {
  BenchConfig config = ParseArgs(argc, argv);
  PrintHeader("Figure 12: propagation from normalized vs de-normalized "
              "storage",
              "Baseline (reconstructing objects) ~7x slower than "
              "Summary-BTree (de-normalized reads)",
              config);
  std::printf("%-10s %6s %18s %18s %8s\n", "x-axis", "hits",
              "base-reconstr(ms)", "sbt-denorm(ms)", "ratio");
  for (size_t per_bird : BenchConfig::AnnotationSweep()) {
    Database db;
    BirdsWorkloadOptions opts = CorpusOptions(config, per_bird);
    opts.synonyms_per_bird = 0;
    opts.build_baseline_index = true;
    GenerateBirdsWorkload(&db, opts).ValueOrDie();

    SummaryManager* mgr = *db.GetManager("Birds");
    const SummaryBTree* sbt = *db.GetSummaryIndex("Birds", "ClassBird1");
    const BaselineClassifierIndex* baseline =
        (*db.context()->Get("Birds"))->BaselineIndexFor("ClassBird1");

    // A wider range than Figs. 10/11 so propagation dominates: ~10% of
    // the tuples flow to the client with their summaries.
    const int64_t mid =
        PickEqualityConstant(&db, "Birds", "ClassBird1", "Anatomy", 0.05);
    const ClassifierProbe probe =
        ClassifierProbe::Range("Anatomy", mid, mid + 2);

    size_t hits = 0;
    const double base_ms = MedianMillis(config.query_repeats, [&] {
      BaselineIndexScanOp scan(baseline, probe, mgr, /*propagate=*/true,
                               /*reconstruct_summaries=*/true);
      hits = CollectRows(&scan).ValueOrDie().size();
    });
    const double sbt_ms = MedianMillis(config.query_repeats, [&] {
      SummaryIndexScanOp scan(sbt, probe, mgr, /*propagate=*/true);
      hits = CollectRows(&scan).ValueOrDie().size();
    });
    std::printf("%-10s %6zu %18.2f %18.2f %8.1f\n",
                BenchConfig::PaperAxisLabel(per_bird).c_str(), hits, base_ms,
                sbt_ms, base_ms / sbt_ms);
  }
  std::printf("\n(both arms return the same tuples; the baseline arm "
              "re-forms each Classifier object from its normalized rows, "
              "and cannot reconstruct Elements[][] at all — see "
              "EXPERIMENTS.md)\n");
  return 0;
}
