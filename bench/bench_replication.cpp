// Replication service characteristics — WAL-shipping apply lag and
// read scaling across replicas.
//
//   Lag arm: a burst of autocommit INSERTs through the primary with one
//   subscribed replica; measured quantities are the wall time of the
//   write burst and the extra time until the replica's applied frontier
//   reaches the last acked commit LSN (apply lag at burst end).
//
//   Read arms: 4 routed clients running verified SELECTs against a
//   cluster with 1 and then 2 replicas. RoutedClient load-balances
//   reads round-robin across replicas with wait_lsn read-your-writes,
//   so aggregate throughput should not degrade when the second replica
//   joins (and on multi-core hosts should improve).
//
// Expectation: shipping is asynchronous but the 256-record LogFrame
// batches keep the replica within one poll interval of the primary, so
// end-of-burst lag stays in the tens of milliseconds at smoke scale.
// --smoke gates correctness only: zero statement errors, zero read
// verification failures, and the lag catch-up completing inside the
// 10-second wait budget.
//
// Emits BENCH_replication.json.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "net/client.h"
#include "net/replication.h"
#include "net/server.h"
#include "sql/database.h"

using namespace insight;
using namespace insight::bench;

namespace {

Database::Options DurableOptions(const std::string& dir) {
  Database::Options options;
  options.backend = StorageManager::Backend::kFile;
  options.directory = dir;
  options.wal_sync = Database::WalSyncMode::kGroupCommit;
  return options;
}

struct Node {
  std::string dir;
  std::unique_ptr<Database> db;
  std::unique_ptr<ReplicaFeed> feed;
  std::unique_ptr<InsightServer> server;
};

std::unique_ptr<Node> BootNode(const std::string& tag, uint16_t primary) {
  auto node = std::make_unique<Node>();
  node->dir = std::filesystem::temp_directory_path() /
              ("bench_repl_" + tag + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(node->dir);
  auto opened = Database::Open(node->dir, DurableOptions(node->dir));
  INSIGHT_CHECK(opened.ok());
  node->db = std::move(*opened);
  if (primary != 0) {
    node->feed =
        std::make_unique<ReplicaFeed>(node->db.get(), "127.0.0.1", primary);
    INSIGHT_CHECK(node->feed->Start().ok());
  }
  InsightServer::Options options;
  options.port = 0;
  options.io_threads = 2;
  node->server = std::make_unique<InsightServer>(node->db.get(), options);
  if (node->feed != nullptr) node->server->SetReplicaFeed(node->feed.get());
  INSIGHT_CHECK(node->server->Start().ok());
  return node;
}

void TearDown(std::vector<std::unique_ptr<Node>>* nodes) {
  for (auto& node : *nodes) {
    if (node->feed != nullptr) node->feed->Stop();
    node->server->Shutdown();
    node->db.reset();
    std::filesystem::remove_all(node->dir);
  }
  nodes->clear();
}

struct ReadArm {
  size_t replicas = 0;
  size_t statements = 0;
  double wall_ms = 0.0;
  double stmts_per_sec = 0.0;
  size_t errors = 0;
};

ReadArm RunReadArm(const std::vector<RoutedClient::Endpoint>& endpoints,
                   size_t replicas, size_t clients, size_t per_client,
                   size_t rows) {
  ReadArm arm;
  arm.replicas = replicas;
  arm.statements = clients * per_client;

  std::vector<std::unique_ptr<RoutedClient>> conns;
  for (size_t c = 0; c < clients; ++c) {
    auto made = RoutedClient::Make(endpoints);
    INSIGHT_CHECK(made.ok());
    conns.push_back(std::move(*made));
  }

  std::atomic<size_t> errors{0};
  Stopwatch timer;
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      RoutedClient* routed = conns[c].get();
      for (size_t i = 0; i < per_client; ++i) {
        const size_t key = (i + c * 13) % rows;
        auto result = routed->Execute("SELECT name FROM Birds WHERE n = " +
                                      std::to_string(key));
        if (!result.ok() || result->rows.size() != 1) errors.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  arm.wall_ms = timer.ElapsedMillis();
  arm.errors = errors.load();
  arm.stmts_per_sec =
      static_cast<double>(arm.statements) / (arm.wall_ms / 1000.0);
  return arm;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config = ParseArgs(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  PrintHeader("bench_replication: WAL shipping lag and read scaling",
              "async apply lag within one poll interval; reads scale "
              "across replicas",
              config);

  const size_t rows = smoke ? 128 : 1024;
  const size_t per_client = smoke ? 50 : 400;
  const size_t read_clients = 4;
  bool ok = true;

  std::vector<std::unique_ptr<Node>> nodes;
  nodes.push_back(BootNode("pri", 0));
  const uint16_t pri_port = nodes[0]->server->port();
  nodes.push_back(BootNode("rep1", pri_port));

  auto client = InsightClient::Connect("127.0.0.1", pri_port);
  INSIGHT_CHECK(client.ok());
  INSIGHT_CHECK(
      (*client)->Execute("CREATE TABLE Birds (n INT, name STRING)").ok());

  // ---- Apply-lag arm: write burst, then time the replica catch-up ----
  Stopwatch burst;
  size_t write_errors = 0;
  for (size_t i = 0; i < rows; ++i) {
    auto written = (*client)->Execute(
        "INSERT INTO Birds VALUES (" + std::to_string(i) + ", 'bird" +
        std::to_string(i) + "')");
    if (!written.ok()) ++write_errors;
  }
  const double burst_ms = burst.ElapsedMillis();
  const uint64_t last_commit = (*client)->last_commit_lsn();

  Stopwatch catchup;
  const bool caught_up = nodes[1]->db->WaitForAppliedLsn(
      last_commit, std::chrono::seconds(10));
  const double lag_ms = catchup.ElapsedMillis();
  ok = ok && caught_up && write_errors == 0;
  std::printf("write burst: %zu inserts in %.1f ms; replica lag at burst "
              "end: %.2f ms (%s)\n",
              rows, burst_ms, lag_ms, caught_up ? "caught up" : "TIMEOUT");

  // ---- Read arms at 1 and 2 replicas ----
  std::vector<ReadArm> arms;
  std::vector<RoutedClient::Endpoint> endpoints = {
      {"127.0.0.1", pri_port},
      {"127.0.0.1", nodes[1]->server->port()},
  };
  arms.push_back(
      RunReadArm(endpoints, 1, read_clients, per_client, rows));

  nodes.push_back(BootNode("rep2", pri_port));
  INSIGHT_CHECK(nodes[2]->db->WaitForAppliedLsn(last_commit,
                                                std::chrono::seconds(10)));
  endpoints.push_back({"127.0.0.1", nodes[2]->server->port()});
  arms.push_back(
      RunReadArm(endpoints, 2, read_clients, per_client, rows));

  for (const ReadArm& arm : arms) {
    std::printf("%zu replica(s): %5zu reads in %8.1f ms -> %9.0f "
                "reads/sec (%zu errors)\n",
                arm.replicas, arm.statements, arm.wall_ms,
                arm.stmts_per_sec, arm.errors);
    ok = ok && arm.errors == 0;
  }

  TearDown(&nodes);

  FILE* json = std::fopen("BENCH_replication.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"replication_lag_and_read_scaling\",\n"
                 "  \"rows\": %zu,\n  \"reads_per_client\": %zu,\n"
                 "  \"read_clients\": %zu,\n"
                 "  \"write_burst_ms\": %.3f,\n"
                 "  \"apply_lag_ms\": %.3f,\n"
                 "  \"caught_up\": %s,\n  \"read_arms\": [",
                 rows, per_client, read_clients, burst_ms, lag_ms,
                 caught_up ? "true" : "false");
    for (size_t i = 0; i < arms.size(); ++i) {
      std::fprintf(json,
                   "%s\n    {\"replicas\": %zu, \"statements\": %zu, "
                   "\"wall_ms\": %.3f, \"reads_per_sec\": %.1f, "
                   "\"errors\": %zu}",
                   i == 0 ? "" : ",", arms[i].replicas, arms[i].statements,
                   arms[i].wall_ms, arms[i].stmts_per_sec, arms[i].errors);
    }
    std::fprintf(json, "\n  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_replication.json\n");
  }

  if (smoke && !ok) {
    std::printf("SMOKE FAILURE: errors or replication lag timeout\n");
    return 1;
  }
  return 0;
}
