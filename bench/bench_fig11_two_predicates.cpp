// Figure 11 — SP query with two conjunctive predicates:
//   (1) a range predicate on ClassBird1.Anatomy, and
//   (2) a keyword-search predicate over the TextSummary1 snippets.
// Without an index the engine table-scans and applies both through a
// summary-based selection S; with an index it evaluates the range via the
// index and applies the keyword predicate as a residual S.
//
// Paper result: Summary-BTree ~2x faster than the Baseline scheme.

#include "bench_util.h"

using namespace insight;
using namespace insight::bench;

int main(int argc, char** argv) {
  BenchConfig config = ParseArgs(argc, argv);
  PrintHeader("Figure 11: two-predicate SP query (range + keyword)",
              "Summary-BTree ~2x Baseline; both >> NoIndex", config);
  std::printf("%-10s %6s %12s %12s %12s %8s\n", "x-axis", "hits",
              "noindex(ms)", "baseline(ms)", "sbt(ms)", "base/sbt");
  for (size_t per_bird : BenchConfig::AnnotationSweep()) {
    Database db;
    BirdsWorkloadOptions opts = CorpusOptions(config, per_bird);
    opts.synonyms_per_bird = 0;
    opts.build_baseline_index = true;
    GenerateBirdsWorkload(&db, opts).ValueOrDie();
    (void)db.Analyze("Birds");

    // Range sized around the Anatomy count distribution (~5% of rows).
    const int64_t mid =
        PickEqualityConstant(&db, "Birds", "ClassBird1", "Anatomy", 0.02);
    const std::string sql =
        "SELECT id FROM Birds WHERE "
        "$.getSummaryObject('ClassBird1').getLabelValue('Anatomy') >= " +
        std::to_string(mid) +
        " AND "
        "$.getSummaryObject('ClassBird1').getLabelValue('Anatomy') <= " +
        std::to_string(mid + 1) +
        " AND "
        "$.getSummaryObject('TextSummary1').containsUnion('wingspan', "
        "'station')";

    size_t hits = 0;
    auto run = [&](bool use_sbt, bool use_baseline) {
      db.optimizer_options().use_summary_indexes = use_sbt;
      db.optimizer_options().use_baseline_indexes = use_baseline;
      return MedianMillis(config.query_repeats, [&] {
        hits = db.Execute(sql).ValueOrDie().rows.size();
      });
    };
    const double noindex_ms = run(false, false);
    const double baseline_ms = run(false, true);
    const double sbt_ms = run(true, false);
    std::printf("%-10s %6zu %12.2f %12.2f %12.2f %8.1f\n",
                BenchConfig::PaperAxisLabel(per_bird).c_str(), hits,
                noindex_ms, baseline_ms, sbt_ms, baseline_ms / sbt_ms);
  }
  return 0;
}
