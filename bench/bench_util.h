#ifndef INSIGHTNOTES_BENCH_BENCH_UTIL_H_
#define INSIGHTNOTES_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "workload/birds_workload.h"

namespace insight {
namespace bench {

/// Shared bench configuration. The paper's corpus is 45,000 birds with
/// 10..200 annotations each (450K..9M annotations); `scale` shrinks the
/// bird count while keeping every sweep axis intact, so shapes (ratios,
/// crossovers) are preserved at laptop cost.
struct BenchConfig {
  double scale = 0.01;  // 450 birds by default.
  uint64_t seed = 42;
  int query_repeats = 5;

  size_t birds() const {
    const double n = 45000.0 * scale;
    return n < 50 ? 50 : static_cast<size_t>(n);
  }

  /// The paper's x-axis: average annotations per tuple.
  static const std::vector<size_t>& AnnotationSweep() {
    static const std::vector<size_t> kSweep = {10, 25, 50, 100, 200};
    return kSweep;
  }

  /// Label for a sweep point, scaled to the paper's axis names.
  static std::string PaperAxisLabel(size_t per_bird) {
    switch (per_bird) {
      case 10:
        return "450K";
      case 25:
        return "1.125M";
      case 50:
        return "2.25M";
      case 100:
        return "4.5M";
      case 200:
        return "9M";
      default:
        return std::to_string(per_bird) + "/tuple";
    }
  }
};

inline BenchConfig ParseArgs(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      config.scale = std::atof(arg.c_str() + 8);
    } else if (arg.rfind("--seed=", 0) == 0) {
      config.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--repeats=", 0) == 0) {
      config.query_repeats = std::atoi(arg.c_str() + 10);
    } else if (arg == "--help") {
      std::printf("flags: --scale=F (default 0.01; 1.0 = the paper's "
                  "45,000-bird corpus) --seed=N --repeats=N\n");
      std::exit(0);
    }
  }
  return config;
}

inline void PrintHeader(const char* figure, const char* paper_expectation,
                        const BenchConfig& config) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure);
  std::printf("paper: %s\n", paper_expectation);
  std::printf("config: %zu birds (scale %.3g), seed %llu\n", config.birds(),
              config.scale, static_cast<unsigned long long>(config.seed));
  std::printf("==============================================================\n");
}

/// Median wall-clock milliseconds of `repeats` runs of `fn`.
template <typename Fn>
double MedianMillis(int repeats, Fn&& fn) {
  std::vector<double> times;
  for (int i = 0; i < repeats; ++i) {
    Stopwatch timer;
    fn();
    times.push_back(timer.ElapsedMillis());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// Builds the standard bench corpus at one sweep point.
inline BirdsWorkloadOptions CorpusOptions(const BenchConfig& config,
                                          size_t per_bird) {
  BirdsWorkloadOptions opts;
  opts.seed = config.seed;
  opts.num_birds = config.birds();
  opts.annotations_per_bird = per_bird;
  opts.synonyms_per_bird = 5;
  return opts;
}

/// Picks the label-count constant whose equality selectivity is closest
/// to `target` (fraction of table rows), by scanning the summary storage.
inline int64_t PickEqualityConstant(Database* db, const std::string& table,
                                    const std::string& instance,
                                    const std::string& label, double target) {
  SummaryManager* mgr = db->GetManager(table).ValueOrDie();
  std::map<int64_t, size_t> freq;
  (void)mgr->ForEachSummaryRow([&](Oid, const SummarySet& set) {
    const SummaryObject* obj = set.GetSummaryObject(instance);
    if (obj != nullptr) {
      auto value = obj->GetLabelValue(label);
      if (value.ok()) ++freq[*value];
    }
    return Status::OK();
  });
  const double rows = static_cast<double>(
      db->GetTable(table).ValueOrDie()->num_rows());
  int64_t best = 1;
  double best_gap = 1e9;
  for (const auto& [value, count] : freq) {
    const double gap = std::abs(count / rows - target);
    if (gap < best_gap) {
      best_gap = gap;
      best = value;
    }
  }
  return best;
}

/// Picks a threshold t so that roughly `target` of the rows have
/// "label count > t" (quantile of the per-tuple count distribution).
inline int64_t PickThresholdConstant(Database* db, const std::string& table,
                                     const std::string& instance,
                                     const std::string& label,
                                     double target) {
  SummaryManager* mgr = db->GetManager(table).ValueOrDie();
  std::vector<int64_t> counts;
  (void)mgr->ForEachSummaryRow([&](Oid, const SummarySet& set) {
    const SummaryObject* obj = set.GetSummaryObject(instance);
    if (obj != nullptr) {
      auto value = obj->GetLabelValue(label);
      if (value.ok()) counts.push_back(*value);
    }
    return Status::OK();
  });
  const size_t rows = db->GetTable(table).ValueOrDie()->num_rows();
  if (counts.empty()) return 0;
  std::sort(counts.begin(), counts.end());
  // Un-annotated tuples count as 0 (they never exceed any threshold).
  const size_t want_above = static_cast<size_t>(target * rows);
  if (want_above >= counts.size()) return 0;
  return counts[counts.size() - 1 - want_above];
}

inline double Mb(uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace bench
}  // namespace insight

#endif  // INSIGHTNOTES_BENCH_BENCH_UTIL_H_
