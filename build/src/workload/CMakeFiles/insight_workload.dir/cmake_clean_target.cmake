file(REMOVE_RECURSE
  "libinsight_workload.a"
)
