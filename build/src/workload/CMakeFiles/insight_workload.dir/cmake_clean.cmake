file(REMOVE_RECURSE
  "CMakeFiles/insight_workload.dir/birds_workload.cc.o"
  "CMakeFiles/insight_workload.dir/birds_workload.cc.o.d"
  "libinsight_workload.a"
  "libinsight_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insight_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
