# Empty compiler generated dependencies file for insight_workload.
# This may be replaced when dependencies are built.
