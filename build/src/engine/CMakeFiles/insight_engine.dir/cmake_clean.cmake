file(REMOVE_RECURSE
  "CMakeFiles/insight_engine.dir/expression.cc.o"
  "CMakeFiles/insight_engine.dir/expression.cc.o.d"
  "CMakeFiles/insight_engine.dir/join_sort_agg_ops.cc.o"
  "CMakeFiles/insight_engine.dir/join_sort_agg_ops.cc.o.d"
  "CMakeFiles/insight_engine.dir/scan_select_ops.cc.o"
  "CMakeFiles/insight_engine.dir/scan_select_ops.cc.o.d"
  "libinsight_engine.a"
  "libinsight_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insight_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
