file(REMOVE_RECURSE
  "libinsight_engine.a"
)
