# Empty dependencies file for insight_engine.
# This may be replaced when dependencies are built.
