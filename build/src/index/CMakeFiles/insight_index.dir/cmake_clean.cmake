file(REMOVE_RECURSE
  "CMakeFiles/insight_index.dir/btree.cc.o"
  "CMakeFiles/insight_index.dir/btree.cc.o.d"
  "CMakeFiles/insight_index.dir/catalog.cc.o"
  "CMakeFiles/insight_index.dir/catalog.cc.o.d"
  "CMakeFiles/insight_index.dir/key_codec.cc.o"
  "CMakeFiles/insight_index.dir/key_codec.cc.o.d"
  "CMakeFiles/insight_index.dir/table.cc.o"
  "CMakeFiles/insight_index.dir/table.cc.o.d"
  "libinsight_index.a"
  "libinsight_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insight_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
