# Empty compiler generated dependencies file for insight_index.
# This may be replaced when dependencies are built.
