
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/btree.cc" "src/index/CMakeFiles/insight_index.dir/btree.cc.o" "gcc" "src/index/CMakeFiles/insight_index.dir/btree.cc.o.d"
  "/root/repo/src/index/catalog.cc" "src/index/CMakeFiles/insight_index.dir/catalog.cc.o" "gcc" "src/index/CMakeFiles/insight_index.dir/catalog.cc.o.d"
  "/root/repo/src/index/key_codec.cc" "src/index/CMakeFiles/insight_index.dir/key_codec.cc.o" "gcc" "src/index/CMakeFiles/insight_index.dir/key_codec.cc.o.d"
  "/root/repo/src/index/table.cc" "src/index/CMakeFiles/insight_index.dir/table.cc.o" "gcc" "src/index/CMakeFiles/insight_index.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/insight_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/insight_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/insight_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
