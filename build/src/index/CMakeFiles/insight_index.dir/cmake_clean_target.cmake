file(REMOVE_RECURSE
  "libinsight_index.a"
)
