file(REMOVE_RECURSE
  "libinsight_sindex.a"
)
