file(REMOVE_RECURSE
  "CMakeFiles/insight_sindex.dir/baseline_index.cc.o"
  "CMakeFiles/insight_sindex.dir/baseline_index.cc.o.d"
  "CMakeFiles/insight_sindex.dir/keyword_index.cc.o"
  "CMakeFiles/insight_sindex.dir/keyword_index.cc.o.d"
  "CMakeFiles/insight_sindex.dir/summary_btree.cc.o"
  "CMakeFiles/insight_sindex.dir/summary_btree.cc.o.d"
  "libinsight_sindex.a"
  "libinsight_sindex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insight_sindex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
