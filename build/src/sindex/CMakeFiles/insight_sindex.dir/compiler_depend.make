# Empty compiler generated dependencies file for insight_sindex.
# This may be replaced when dependencies are built.
