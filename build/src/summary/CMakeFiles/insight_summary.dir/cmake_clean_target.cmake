file(REMOVE_RECURSE
  "libinsight_summary.a"
)
