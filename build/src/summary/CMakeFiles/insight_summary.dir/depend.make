# Empty dependencies file for insight_summary.
# This may be replaced when dependencies are built.
