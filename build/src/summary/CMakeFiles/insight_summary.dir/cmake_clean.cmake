file(REMOVE_RECURSE
  "CMakeFiles/insight_summary.dir/summary_algebra.cc.o"
  "CMakeFiles/insight_summary.dir/summary_algebra.cc.o.d"
  "CMakeFiles/insight_summary.dir/summary_instance.cc.o"
  "CMakeFiles/insight_summary.dir/summary_instance.cc.o.d"
  "CMakeFiles/insight_summary.dir/summary_manager.cc.o"
  "CMakeFiles/insight_summary.dir/summary_manager.cc.o.d"
  "CMakeFiles/insight_summary.dir/summary_object.cc.o"
  "CMakeFiles/insight_summary.dir/summary_object.cc.o.d"
  "libinsight_summary.a"
  "libinsight_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insight_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
