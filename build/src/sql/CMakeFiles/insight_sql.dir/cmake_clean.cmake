file(REMOVE_RECURSE
  "CMakeFiles/insight_sql.dir/database.cc.o"
  "CMakeFiles/insight_sql.dir/database.cc.o.d"
  "CMakeFiles/insight_sql.dir/lexer.cc.o"
  "CMakeFiles/insight_sql.dir/lexer.cc.o.d"
  "CMakeFiles/insight_sql.dir/parser.cc.o"
  "CMakeFiles/insight_sql.dir/parser.cc.o.d"
  "libinsight_sql.a"
  "libinsight_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insight_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
