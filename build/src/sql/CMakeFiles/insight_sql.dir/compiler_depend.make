# Empty compiler generated dependencies file for insight_sql.
# This may be replaced when dependencies are built.
