file(REMOVE_RECURSE
  "libinsight_sql.a"
)
