# Empty dependencies file for insight_annotation.
# This may be replaced when dependencies are built.
