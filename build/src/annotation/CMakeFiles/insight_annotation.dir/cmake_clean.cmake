file(REMOVE_RECURSE
  "CMakeFiles/insight_annotation.dir/annotation_store.cc.o"
  "CMakeFiles/insight_annotation.dir/annotation_store.cc.o.d"
  "libinsight_annotation.a"
  "libinsight_annotation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insight_annotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
