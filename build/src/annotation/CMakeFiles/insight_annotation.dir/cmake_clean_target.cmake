file(REMOVE_RECURSE
  "libinsight_annotation.a"
)
