file(REMOVE_RECURSE
  "libinsight_common.a"
)
