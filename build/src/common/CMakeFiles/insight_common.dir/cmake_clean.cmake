file(REMOVE_RECURSE
  "CMakeFiles/insight_common.dir/logging.cc.o"
  "CMakeFiles/insight_common.dir/logging.cc.o.d"
  "CMakeFiles/insight_common.dir/rng.cc.o"
  "CMakeFiles/insight_common.dir/rng.cc.o.d"
  "CMakeFiles/insight_common.dir/status.cc.o"
  "CMakeFiles/insight_common.dir/status.cc.o.d"
  "CMakeFiles/insight_common.dir/string_util.cc.o"
  "CMakeFiles/insight_common.dir/string_util.cc.o.d"
  "libinsight_common.a"
  "libinsight_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insight_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
