# Empty compiler generated dependencies file for insight_common.
# This may be replaced when dependencies are built.
