
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mining/clustream.cc" "src/mining/CMakeFiles/insight_mining.dir/clustream.cc.o" "gcc" "src/mining/CMakeFiles/insight_mining.dir/clustream.cc.o.d"
  "/root/repo/src/mining/naive_bayes.cc" "src/mining/CMakeFiles/insight_mining.dir/naive_bayes.cc.o" "gcc" "src/mining/CMakeFiles/insight_mining.dir/naive_bayes.cc.o.d"
  "/root/repo/src/mining/snippet.cc" "src/mining/CMakeFiles/insight_mining.dir/snippet.cc.o" "gcc" "src/mining/CMakeFiles/insight_mining.dir/snippet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/insight_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
