# Empty compiler generated dependencies file for insight_mining.
# This may be replaced when dependencies are built.
