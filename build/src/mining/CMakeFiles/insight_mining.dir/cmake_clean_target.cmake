file(REMOVE_RECURSE
  "libinsight_mining.a"
)
