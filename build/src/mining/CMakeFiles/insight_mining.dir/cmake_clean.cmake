file(REMOVE_RECURSE
  "CMakeFiles/insight_mining.dir/clustream.cc.o"
  "CMakeFiles/insight_mining.dir/clustream.cc.o.d"
  "CMakeFiles/insight_mining.dir/naive_bayes.cc.o"
  "CMakeFiles/insight_mining.dir/naive_bayes.cc.o.d"
  "CMakeFiles/insight_mining.dir/snippet.cc.o"
  "CMakeFiles/insight_mining.dir/snippet.cc.o.d"
  "libinsight_mining.a"
  "libinsight_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insight_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
