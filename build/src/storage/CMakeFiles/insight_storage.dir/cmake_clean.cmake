file(REMOVE_RECURSE
  "CMakeFiles/insight_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/insight_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/insight_storage.dir/heap_file.cc.o"
  "CMakeFiles/insight_storage.dir/heap_file.cc.o.d"
  "CMakeFiles/insight_storage.dir/page_store.cc.o"
  "CMakeFiles/insight_storage.dir/page_store.cc.o.d"
  "CMakeFiles/insight_storage.dir/storage_manager.cc.o"
  "CMakeFiles/insight_storage.dir/storage_manager.cc.o.d"
  "libinsight_storage.a"
  "libinsight_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insight_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
