file(REMOVE_RECURSE
  "libinsight_types.a"
)
