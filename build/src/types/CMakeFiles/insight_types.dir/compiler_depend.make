# Empty compiler generated dependencies file for insight_types.
# This may be replaced when dependencies are built.
