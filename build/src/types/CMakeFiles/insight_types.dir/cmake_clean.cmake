file(REMOVE_RECURSE
  "CMakeFiles/insight_types.dir/schema.cc.o"
  "CMakeFiles/insight_types.dir/schema.cc.o.d"
  "CMakeFiles/insight_types.dir/tuple.cc.o"
  "CMakeFiles/insight_types.dir/tuple.cc.o.d"
  "CMakeFiles/insight_types.dir/value.cc.o"
  "CMakeFiles/insight_types.dir/value.cc.o.d"
  "libinsight_types.a"
  "libinsight_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insight_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
