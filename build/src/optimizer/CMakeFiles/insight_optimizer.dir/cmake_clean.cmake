file(REMOVE_RECURSE
  "CMakeFiles/insight_optimizer.dir/logical_plan.cc.o"
  "CMakeFiles/insight_optimizer.dir/logical_plan.cc.o.d"
  "CMakeFiles/insight_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/insight_optimizer.dir/optimizer.cc.o.d"
  "CMakeFiles/insight_optimizer.dir/query_context.cc.o"
  "CMakeFiles/insight_optimizer.dir/query_context.cc.o.d"
  "CMakeFiles/insight_optimizer.dir/statistics.cc.o"
  "CMakeFiles/insight_optimizer.dir/statistics.cc.o.d"
  "libinsight_optimizer.a"
  "libinsight_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insight_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
