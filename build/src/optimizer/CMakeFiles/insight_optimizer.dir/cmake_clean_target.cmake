file(REMOVE_RECURSE
  "libinsight_optimizer.a"
)
