# Empty dependencies file for insight_optimizer.
# This may be replaced when dependencies are built.
