# Empty dependencies file for annotation_curation.
# This may be replaced when dependencies are built.
