file(REMOVE_RECURSE
  "CMakeFiles/annotation_curation.dir/annotation_curation.cpp.o"
  "CMakeFiles/annotation_curation.dir/annotation_curation.cpp.o.d"
  "annotation_curation"
  "annotation_curation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annotation_curation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
