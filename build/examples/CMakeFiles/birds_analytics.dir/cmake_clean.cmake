file(REMOVE_RECURSE
  "CMakeFiles/birds_analytics.dir/birds_analytics.cpp.o"
  "CMakeFiles/birds_analytics.dir/birds_analytics.cpp.o.d"
  "birds_analytics"
  "birds_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birds_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
