# Empty dependencies file for birds_analytics.
# This may be replaced when dependencies are built.
