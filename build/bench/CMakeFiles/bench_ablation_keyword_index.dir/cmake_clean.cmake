file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_keyword_index.dir/bench_ablation_keyword_index.cpp.o"
  "CMakeFiles/bench_ablation_keyword_index.dir/bench_ablation_keyword_index.cpp.o.d"
  "bench_ablation_keyword_index"
  "bench_ablation_keyword_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_keyword_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
