# Empty dependencies file for bench_ablation_keyword_index.
# This may be replaced when dependencies are built.
