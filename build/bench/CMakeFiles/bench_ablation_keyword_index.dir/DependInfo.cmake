
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_keyword_index.cpp" "bench/CMakeFiles/bench_ablation_keyword_index.dir/bench_ablation_keyword_index.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_keyword_index.dir/bench_ablation_keyword_index.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/insight_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/insight_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/insight_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/insight_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sindex/CMakeFiles/insight_sindex.dir/DependInfo.cmake"
  "/root/repo/build/src/summary/CMakeFiles/insight_summary.dir/DependInfo.cmake"
  "/root/repo/build/src/annotation/CMakeFiles/insight_annotation.dir/DependInfo.cmake"
  "/root/repo/build/src/mining/CMakeFiles/insight_mining.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/insight_index.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/insight_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/insight_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/insight_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
