# Empty dependencies file for bench_fig13_backward_ptrs.
# This may be replaced when dependencies are built.
