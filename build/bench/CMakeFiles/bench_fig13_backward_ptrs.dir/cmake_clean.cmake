file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_backward_ptrs.dir/bench_fig13_backward_ptrs.cpp.o"
  "CMakeFiles/bench_fig13_backward_ptrs.dir/bench_fig13_backward_ptrs.cpp.o.d"
  "bench_fig13_backward_ptrs"
  "bench_fig13_backward_ptrs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_backward_ptrs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
