# Empty dependencies file for bench_fig12_denorm_propagation.
# This may be replaced when dependencies are built.
