file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_denorm_propagation.dir/bench_fig12_denorm_propagation.cpp.o"
  "CMakeFiles/bench_fig12_denorm_propagation.dir/bench_fig12_denorm_propagation.cpp.o.d"
  "bench_fig12_denorm_propagation"
  "bench_fig12_denorm_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_denorm_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
