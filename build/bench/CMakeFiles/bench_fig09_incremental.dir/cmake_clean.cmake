file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_incremental.dir/bench_fig09_incremental.cpp.o"
  "CMakeFiles/bench_fig09_incremental.dir/bench_fig09_incremental.cpp.o.d"
  "bench_fig09_incremental"
  "bench_fig09_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
