# Empty dependencies file for bench_fig11_two_predicates.
# This may be replaced when dependencies are built.
