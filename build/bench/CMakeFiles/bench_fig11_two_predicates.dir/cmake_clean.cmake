file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_two_predicates.dir/bench_fig11_two_predicates.cpp.o"
  "CMakeFiles/bench_fig11_two_predicates.dir/bench_fig11_two_predicates.cpp.o.d"
  "bench_fig11_two_predicates"
  "bench_fig11_two_predicates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_two_predicates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
