# Empty dependencies file for bench_fig14_rules_2_5.
# This may be replaced when dependencies are built.
