# Empty dependencies file for bench_fig10_sp_query.
# This may be replaced when dependencies are built.
