# Empty compiler generated dependencies file for bench_fig15_rule_11.
# This may be replaced when dependencies are built.
