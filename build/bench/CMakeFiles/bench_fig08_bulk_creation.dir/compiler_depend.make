# Empty compiler generated dependencies file for bench_fig08_bulk_creation.
# This may be replaced when dependencies are built.
