file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_bulk_creation.dir/bench_fig08_bulk_creation.cpp.o"
  "CMakeFiles/bench_fig08_bulk_creation.dir/bench_fig08_bulk_creation.cpp.o.d"
  "bench_fig08_bulk_creation"
  "bench_fig08_bulk_creation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_bulk_creation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
