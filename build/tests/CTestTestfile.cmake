# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/types_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/table_test[1]_include.cmake")
include("/root/repo/build/tests/mining_test[1]_include.cmake")
include("/root/repo/build/tests/annotation_test[1]_include.cmake")
include("/root/repo/build/tests/summary_object_test[1]_include.cmake")
include("/root/repo/build/tests/summary_algebra_test[1]_include.cmake")
include("/root/repo/build/tests/summary_manager_test[1]_include.cmake")
include("/root/repo/build/tests/sindex_test[1]_include.cmake")
include("/root/repo/build/tests/expression_test[1]_include.cmake")
include("/root/repo/build/tests/operators_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/hierarchy_test[1]_include.cmake")
include("/root/repo/build/tests/statistics_test[1]_include.cmake")
include("/root/repo/build/tests/functions_test[1]_include.cmake")
