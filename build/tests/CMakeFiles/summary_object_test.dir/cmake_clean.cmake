file(REMOVE_RECURSE
  "CMakeFiles/summary_object_test.dir/summary_object_test.cc.o"
  "CMakeFiles/summary_object_test.dir/summary_object_test.cc.o.d"
  "summary_object_test"
  "summary_object_test.pdb"
  "summary_object_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary_object_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
