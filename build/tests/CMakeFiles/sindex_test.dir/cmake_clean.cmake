file(REMOVE_RECURSE
  "CMakeFiles/sindex_test.dir/sindex_test.cc.o"
  "CMakeFiles/sindex_test.dir/sindex_test.cc.o.d"
  "sindex_test"
  "sindex_test.pdb"
  "sindex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sindex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
