# Empty compiler generated dependencies file for sindex_test.
# This may be replaced when dependencies are built.
