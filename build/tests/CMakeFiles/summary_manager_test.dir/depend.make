# Empty dependencies file for summary_manager_test.
# This may be replaced when dependencies are built.
