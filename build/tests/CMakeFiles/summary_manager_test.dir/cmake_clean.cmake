file(REMOVE_RECURSE
  "CMakeFiles/summary_manager_test.dir/summary_manager_test.cc.o"
  "CMakeFiles/summary_manager_test.dir/summary_manager_test.cc.o.d"
  "summary_manager_test"
  "summary_manager_test.pdb"
  "summary_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
