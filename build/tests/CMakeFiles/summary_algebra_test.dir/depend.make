# Empty dependencies file for summary_algebra_test.
# This may be replaced when dependencies are built.
