file(REMOVE_RECURSE
  "CMakeFiles/summary_algebra_test.dir/summary_algebra_test.cc.o"
  "CMakeFiles/summary_algebra_test.dir/summary_algebra_test.cc.o.d"
  "summary_algebra_test"
  "summary_algebra_test.pdb"
  "summary_algebra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary_algebra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
