#!/usr/bin/env bash
# Tier-1 gate: build the default and asan presets and run the full test
# suite under both. Everything must pass before a change merges.
#
#   ./scripts/check.sh          # default + asan
#   ./scripts/check.sh default  # one preset only
#   ./scripts/check.sh tsan     # ThreadSanitizer pass (parallel executor)
#
# CI runs all three presets; tsan is opt-in locally because it is the
# slowest of the three.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)
presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default asan)
fi

for preset in "${presets[@]}"; do
  echo "==> configure (${preset})"
  cmake --preset "${preset}"
  echo "==> build (${preset})"
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "==> test (${preset})"
  ctest --preset "${preset}" -j "${jobs}"
done

echo "==> all checks passed"
