#!/usr/bin/env bash
# Tier-1 gate: build the default and asan presets and run the full test
# suite under both. Everything must pass before a change merges.
#
#   ./scripts/check.sh          # default + asan
#   ./scripts/check.sh default  # one preset only
#   ./scripts/check.sh tsan     # ThreadSanitizer pass (parallel executor)
#
# CI runs all three presets; tsan is opt-in locally because it is the
# slowest of the three.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)
presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default asan)
fi

for preset in "${presets[@]}"; do
  echo "==> configure (${preset})"
  cmake --preset "${preset}"
  echo "==> build (${preset})"
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "==> test (${preset})"
  ctest --preset "${preset}" -j "${jobs}"
  echo "==> recovery smoke (${preset}: kill-point matrix + WAL suite)"
  ctest --preset "${preset}" \
    -R 'KillPointMatrixTest|RecoveryTest|LogManagerTest|WalBeforeDataTest' \
    -j "${jobs}" --output-on-failure
  echo "==> transaction smoke (${preset}: MVCC stress + durability)"
  ctest --preset "${preset}" \
    -R 'TxnSqlTest|TxnStressTest|TxnDurabilityTest' \
    -j "${jobs}" --output-on-failure
done

# End-to-end durability smoke: journal a workload, reopen, and fail if
# the recovered database lost rows (bench_wal --smoke exits nonzero).
if [ -x build/bench/bench_wal ]; then
  echo "==> durability smoke (bench_wal --smoke)"
  (cd build/bench && ./bench_wal --scale=0.01 --smoke > /dev/null)
fi

# Metrics-overhead + zone-map smoke: the instrumented batch scan must
# stay within 1.10x of the same plan with metrics disabled, the
# selective zone-map arm must return identical hits while skipping at
# least one page, and zone maps must not slow an unselective full scan
# by more than the committed gate (bench_batch_executor --smoke exits
# nonzero and prints the offending arm).
if [ -x build/bench/bench_batch_executor ]; then
  echo "==> metrics + zone-map smoke (bench_batch_executor --smoke)"
  (cd build/bench && ./bench_batch_executor --scale=0.05 --repeats=3 --smoke \
    > /dev/null)
fi

# Server smoke: boot insightd, run statements through insight_cli over
# the wire, scrape the Metrics frame, and require a clean drain exit.
if [ -x build/src/net/insightd ]; then
  echo "==> server smoke (insightd + insight_cli)"
  ./scripts/server_smoke.sh build
fi

# Network throughput smoke: 1/4/16 concurrent clients, every reply
# verified; 16 clients must not fall below half the single-client
# aggregate (bench_net --smoke exits nonzero).
if [ -x build/bench/bench_net ]; then
  echo "==> network smoke (bench_net --smoke)"
  (cd build/bench && ./bench_net --smoke > /dev/null)
fi

# Replication smoke: primary + two replica processes, read-your-writes
# through the routed CLI, kill -9 the primary, promote, verify rows.
if [ -x build/src/net/insightd ]; then
  echo "==> replication smoke (primary + replicas + failover)"
  ./scripts/replica_smoke.sh build
fi

# Replication bench smoke: apply lag must catch up and every routed read
# against 1 and 2 replicas must verify (bench_replication --smoke exits
# nonzero).
if [ -x build/bench/bench_replication ]; then
  echo "==> replication smoke (bench_replication --smoke)"
  (cd build/bench && ./bench_replication --smoke > /dev/null)
fi

# Statistics smoke: against a churned corpus the sketch tier's q-errors
# must be no worse at the median/p95 and strictly better at the tail, at
# least one plan must flip, and inline sketch maintenance must stay
# within 1.10x of stats-off DML (bench_stats --smoke exits nonzero).
if [ -x build/bench/bench_stats ]; then
  echo "==> statistics smoke (bench_stats --smoke)"
  (cd build/bench && ./bench_stats --smoke > /dev/null)
fi

# Reference bench artifacts are committed at the repo root so estimate
# regressions show up as diffs; a bench that stops emitting its JSON (or
# a new bench that never committed one) fails here, not in review.
echo "==> committed bench artifacts present"
for artifact in BENCH_net.json BENCH_obs.json BENCH_parallel.json \
    BENCH_wal.json BENCH_replication.json BENCH_stats.json \
    BENCH_scan.json; do
  if [ ! -f "${artifact}" ]; then
    echo "missing committed bench artifact: ${artifact}" >&2
    exit 1
  fi
done

echo "==> all checks passed"
