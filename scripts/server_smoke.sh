#!/usr/bin/env bash
# Server smoke: boot a real insightd process, drive it with insight_cli
# over the wire (DDL, DML, SELECT, Ping, Metrics), and ask it to drain.
# Fails when any statement errors, the Metrics frame is missing the
# insight_net_* series, or the server does not exit 0 from the drain.
#
#   ./scripts/server_smoke.sh [build-dir]   # default: build
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"

insightd="${build_dir}/src/net/insightd"
cli="${build_dir}/examples/insight_cli"
for bin in "${insightd}" "${cli}"; do
  if [ ! -x "${bin}" ]; then
    echo "server_smoke: missing ${bin} (build the '${build_dir}' tree first)" >&2
    exit 2
  fi
done

workdir=$(mktemp -d)
port_file="${workdir}/insightd.port"
server_log="${workdir}/insightd.log"

cleanup() {
  if [ -n "${server_pid:-}" ] && kill -0 "${server_pid}" 2>/dev/null; then
    kill "${server_pid}" 2>/dev/null || true
    wait "${server_pid}" 2>/dev/null || true
  fi
  rm -rf "${workdir}"
}
trap cleanup EXIT

echo "==> starting insightd (--port 0 --port-file)"
"${insightd}" --port 0 --port-file "${port_file}" \
  --idle-timeout-ms 30000 > "${server_log}" 2>&1 &
server_pid=$!

for _ in $(seq 1 200); do
  [ -s "${port_file}" ] && break
  if ! kill -0 "${server_pid}" 2>/dev/null; then
    echo "server_smoke: insightd died during startup" >&2
    cat "${server_log}" >&2
    exit 1
  fi
  sleep 0.05
done
[ -s "${port_file}" ] || { echo "server_smoke: no port file" >&2; exit 1; }
port=$(cat "${port_file}")
echo "    listening on port ${port}"

echo "==> statements over the wire"
"${cli}" --port "${port}" -e "CREATE TABLE Birds (n INT, name STRING)"
"${cli}" --port "${port}" -e \
  "INSERT INTO Birds VALUES (1, 'crow'), (2, 'wren'), (3, 'owl')"
rows=$("${cli}" --port "${port}" -e "SELECT name FROM Birds ORDER BY n")
echo "${rows}"
echo "${rows}" | grep -q "crow" || {
  echo "server_smoke: SELECT did not return the inserted rows" >&2
  exit 1
}

# A statement error must come back as an Error frame, not kill the session.
if "${cli}" --port "${port}" -e "SELECT * FROM NoSuchTable" 2>/dev/null; then
  echo "server_smoke: bad statement unexpectedly succeeded" >&2
  exit 1
fi

echo "==> metrics scrape"
metrics=$(printf '\\metrics\n\\q\n' | "${cli}" --port "${port}")
for series in insight_net_requests_total insight_net_connections_opened_total \
              insight_net_bytes_sent_total; do
  value=$(echo "${metrics}" | awk -v s="${series}" '$1 == s {print $2}')
  if [ -z "${value}" ] || [ "${value}" = "0" ]; then
    echo "server_smoke: metrics missing nonzero ${series}" >&2
    exit 1
  fi
  echo "    ${series} = ${value}"
done
echo "${metrics}" | grep -q "# TYPE insight_net_requests_total counter" || {
  echo "server_smoke: Prometheus TYPE line missing" >&2
  exit 1
}

echo "==> drain"
printf '\\shutdown\n' | "${cli}" --port "${port}" > /dev/null
if ! wait "${server_pid}"; then
  echo "server_smoke: insightd did not exit cleanly from the drain" >&2
  cat "${server_log}" >&2
  exit 1
fi
server_pid=""
grep -q "clean exit" "${server_log}" || {
  echo "server_smoke: drain did not log a clean exit" >&2
  cat "${server_log}" >&2
  exit 1
}

echo "==> server smoke passed"
