#!/usr/bin/env bash
# Replication smoke: boot a real primary and two insightd replicas,
# write through the primary, prove read-your-writes through the routed
# CLI, kill -9 the primary mid-flight, promote a replica, and verify the
# promoted node serves every acked row and accepts new writes.
# Fails when any statement errors, a replica accepts a write before
# promotion, or the promoted node lost rows.
#
#   ./scripts/replica_smoke.sh [build-dir]   # default: build
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"

insightd="${build_dir}/src/net/insightd"
cli="${build_dir}/examples/insight_cli"
for bin in "${insightd}" "${cli}"; do
  if [ ! -x "${bin}" ]; then
    echo "replica_smoke: missing ${bin} (build the '${build_dir}' tree first)" >&2
    exit 2
  fi
done

workdir=$(mktemp -d)
pids=()

cleanup() {
  for pid in "${pids[@]:-}"; do
    if [ -n "${pid}" ] && kill -0 "${pid}" 2>/dev/null; then
      kill -9 "${pid}" 2>/dev/null || true
      wait "${pid}" 2>/dev/null || true
    fi
  done
  rm -rf "${workdir}"
}
trap cleanup EXIT

# boot_node NAME EXTRA_ARGS... -> sets ${NAME}_pid and ${NAME}_port.
boot_node() {
  local name="$1"
  shift
  local port_file="${workdir}/${name}.port"
  "${insightd}" --port 0 --port-file "${port_file}" \
    --dir "${workdir}/${name}_data" "$@" \
    > "${workdir}/${name}.log" 2>&1 &
  local pid=$!
  pids+=("${pid}")
  for _ in $(seq 1 200); do
    [ -s "${port_file}" ] && break
    if ! kill -0 "${pid}" 2>/dev/null; then
      echo "replica_smoke: ${name} died during startup" >&2
      cat "${workdir}/${name}.log" >&2
      exit 1
    fi
    sleep 0.05
  done
  [ -s "${port_file}" ] || {
    echo "replica_smoke: ${name} wrote no port file" >&2
    exit 1
  }
  eval "${name}_pid=${pid}"
  eval "${name}_port=$(cat "${port_file}")"
}

echo "==> starting primary + two replicas"
boot_node primary
boot_node replica1 --replica-of "127.0.0.1:${primary_port}"
boot_node replica2 --replica-of "127.0.0.1:${primary_port}"
echo "    primary :${primary_port}  replicas :${replica1_port} :${replica2_port}"

echo "==> writes through the primary"
"${cli}" --port "${primary_port}" -e "CREATE TABLE Birds (n INT, name STRING)"
for i in 1 2 3 4 5; do
  "${cli}" --port "${primary_port}" -e \
    "INSERT INTO Birds VALUES (${i}, 'bird${i}')" > /dev/null
done

echo "==> read-your-writes through the routed client"
endpoints="127.0.0.1:${primary_port},127.0.0.1:${replica1_port},127.0.0.1:${replica2_port}"
routed=$("${cli}" --endpoints "${endpoints}" \
  -e "INSERT INTO Birds VALUES (6, 'bird6')" \
  -e "SELECT name FROM Birds ORDER BY n")
echo "${routed}" | grep -q "bird6" || {
  echo "replica_smoke: routed read missed the client's own write" >&2
  exit 1
}

echo "==> replicas reject direct writes before promotion"
for port in "${replica1_port}" "${replica2_port}"; do
  if "${cli}" --port "${port}" -e "INSERT INTO Birds VALUES (99, 'x')" \
      2>/dev/null; then
    echo "replica_smoke: replica :${port} accepted a write" >&2
    exit 1
  fi
done

echo "==> replicas serve reads once caught up"
for port in "${replica1_port}" "${replica2_port}"; do
  caught_up=""
  for _ in $(seq 1 100); do
    rows=$("${cli}" --port "${port}" -e "SELECT name FROM Birds ORDER BY n" \
      2>/dev/null || true)
    if echo "${rows}" | grep -q "bird6"; then
      caught_up=yes
      break
    fi
    sleep 0.05
  done
  [ -n "${caught_up}" ] || {
    echo "replica_smoke: replica :${port} never applied the writes" >&2
    exit 1
  }
done

echo "==> kill -9 the primary, promote replica1"
kill -9 "${primary_pid}"
wait "${primary_pid}" 2>/dev/null || true
primary_pid=""
"${cli}" --port "${replica1_port}" --promote

echo "==> promoted node serves the acked rows and accepts new writes"
"${cli}" --port "${replica1_port}" -e \
  "INSERT INTO Birds VALUES (7, 'bird7')" > /dev/null
rows=$("${cli}" --port "${replica1_port}" -e "SELECT name FROM Birds ORDER BY n")
for bird in bird1 bird6 bird7; do
  echo "${rows}" | grep -q "${bird}" || {
    echo "replica_smoke: promoted node is missing ${bird}" >&2
    cat "${workdir}/replica1.log" >&2
    exit 1
  }
done

echo "==> drain the survivors"
for port in "${replica1_port}" "${replica2_port}"; do
  printf '\\shutdown\n' | "${cli}" --port "${port}" > /dev/null
done
for pid in "${replica1_pid}" "${replica2_pid}"; do
  if ! wait "${pid}"; then
    echo "replica_smoke: a replica did not exit cleanly from the drain" >&2
    exit 1
  fi
done
pids=()

echo "==> replica smoke passed"
