#ifndef INSIGHTNOTES_INDEX_CATALOG_H_
#define INSIGHTNOTES_INDEX_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "index/table.h"

namespace insight {

/// Name -> Table registry. Owns all user relations; the annotation and
/// summary layers register their side tables here too (the paper's
/// R_SummaryStorage lives next to R).
class Catalog {
 public:
  Catalog(StorageManager* storage, BufferPool* pool)
      : storage_(storage), pool_(pool) {}

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// NotFound when absent. Lookup is case-insensitive.
  Result<Table*> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;

  std::vector<std::string> TableNames() const;

  StorageManager* storage() const { return storage_; }
  BufferPool* buffer_pool() const { return pool_; }

 private:
  StorageManager* storage_;
  BufferPool* pool_;
  std::map<std::string, std::unique_ptr<Table>> tables_;  // Lower-case key.
};

}  // namespace insight

#endif  // INSIGHTNOTES_INDEX_CATALOG_H_
