#ifndef INSIGHTNOTES_INDEX_KEY_CODEC_H_
#define INSIGHTNOTES_INDEX_KEY_CODEC_H_

#include <string>

#include "types/value.h"

namespace insight {

/// Encodes a scalar Value into a byte string whose lexicographic order
/// matches Value::Compare within one type (and across int64/double).
/// Layout: 1 type-class byte, then an order-preserving payload:
///   NULL   -> 0x00
///   number -> 0x01 + 8-byte big-endian IEEE-754 image with the sign bit
///             flipped (negatives additionally bit-inverted)
///   bool   -> 0x02 + {0, 1}
///   string -> 0x03 + raw bytes
/// Numbers encode through double, so int64 and double that compare equal
/// produce the same key — matching the engine's cross-type comparisons.
std::string EncodeIndexKey(const Value& v);

/// Smallest/largest possible keys for a type class, used as open-range
/// endpoints ("label:000" / "label:999" analogues for data columns).
std::string MinNumericKey();
std::string MaxNumericKey();
std::string MinStringKey();
std::string MaxStringKey();

}  // namespace insight

#endif  // INSIGHTNOTES_INDEX_KEY_CODEC_H_
