#include "index/table.h"

#include "common/serde.h"
#include "common/string_util.h"
#include "index/key_codec.h"

namespace insight {

Result<std::unique_ptr<Table>> Table::Create(StorageManager* storage,
                                             BufferPool* pool,
                                             std::string name,
                                             Schema schema) {
  auto table = std::unique_ptr<Table>(
      new Table(storage, pool, std::move(name), std::move(schema)));
  INSIGHT_ASSIGN_OR_RETURN(table->heap_file_,
                           storage->CreateFile(table->name_ + ".heap"));
  table->heap_ = std::make_unique<HeapFile>(pool, table->heap_file_);
  INSIGHT_ASSIGN_OR_RETURN(table->oid_index_file_,
                           storage->CreateFile(table->name_ + ".oid.idx"));
  INSIGHT_ASSIGN_OR_RETURN(BTree tree,
                           BTree::Create(pool, table->oid_index_file_));
  table->oid_index_ = std::make_unique<BTree>(std::move(tree));
  return table;
}

std::string Table::EncodeRecord(Oid oid, const Tuple& tuple) {
  std::string rec;
  PutU64(&rec, oid);
  tuple.Serialize(&rec);
  return rec;
}

Result<std::pair<Oid, Tuple>> Table::DecodeRecord(std::string_view rec) {
  SerdeReader reader(rec);
  uint64_t oid;
  if (!reader.ReadU64(&oid)) return Status::Corruption("record: missing oid");
  INSIGHT_ASSIGN_OR_RETURN(Tuple tuple, Tuple::Deserialize(&reader));
  return std::make_pair(oid, std::move(tuple));
}

namespace {
std::string OidKey(Oid oid) {
  // Big-endian so lexicographic order equals numeric order.
  std::string key(8, '\0');
  for (int i = 0; i < 8; ++i) {
    key[i] = static_cast<char>((oid >> ((7 - i) * 8)) & 0xFF);
  }
  return key;
}
}  // namespace

Result<Oid> Table::Insert(const Tuple& tuple) {
  if (tuple.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) + " vs schema " +
        std::to_string(schema_.num_columns()));
  }
  const Oid oid = next_oid_++;
  INSIGHT_ASSIGN_OR_RETURN(RowLocation loc,
                           heap_->Insert(EncodeRecord(oid, tuple)));
  INSIGHT_RETURN_NOT_OK(oid_index_->Insert(OidKey(oid), loc.Pack()));
  INSIGHT_RETURN_NOT_OK(IndexInsert(oid, tuple));
  ++num_rows_;
  return oid;
}

Status Table::InsertWithOid(Oid oid, const Tuple& tuple) {
  if (tuple.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) + " vs schema " +
        std::to_string(schema_.num_columns()));
  }
  if (oid == kInvalidOid) {
    return Status::InvalidArgument("InsertWithOid: invalid oid");
  }
  INSIGHT_ASSIGN_OR_RETURN(RowLocation loc,
                           heap_->Insert(EncodeRecord(oid, tuple)));
  INSIGHT_RETURN_NOT_OK(oid_index_->Insert(OidKey(oid), loc.Pack()));
  INSIGHT_RETURN_NOT_OK(IndexInsert(oid, tuple));
  ++num_rows_;
  if (oid >= next_oid_) next_oid_ = oid + 1;
  return Status::OK();
}

std::vector<std::string> Table::IndexedColumns() const {
  std::vector<std::string> columns;
  columns.reserve(column_indexes_.size());
  for (const auto& entry : column_indexes_) columns.push_back(entry.first);
  return columns;
}

Result<RowLocation> Table::DiskTupleLoc(Oid oid) const {
  INSIGHT_ASSIGN_OR_RETURN(std::vector<uint64_t> hits,
                           oid_index_->Lookup(OidKey(oid)));
  if (hits.empty()) {
    return Status::NotFound("oid " + std::to_string(oid));
  }
  return RowLocation::Unpack(hits.front());
}

Result<Tuple> Table::Get(Oid oid) const {
  INSIGHT_ASSIGN_OR_RETURN(RowLocation loc, DiskTupleLoc(oid));
  return GetAt(loc);
}

Result<Tuple> Table::GetAt(RowLocation loc, Oid* oid_out) const {
  INSIGHT_ASSIGN_OR_RETURN(std::string rec, heap_->Get(loc));
  INSIGHT_ASSIGN_OR_RETURN(auto decoded, DecodeRecord(rec));
  if (oid_out != nullptr) *oid_out = decoded.first;
  return std::move(decoded.second);
}

Status Table::Delete(Oid oid) {
  INSIGHT_ASSIGN_OR_RETURN(RowLocation loc, DiskTupleLoc(oid));
  INSIGHT_ASSIGN_OR_RETURN(Tuple old, GetAt(loc));
  INSIGHT_RETURN_NOT_OK(heap_->Delete(loc));
  INSIGHT_RETURN_NOT_OK(oid_index_->Delete(OidKey(oid), loc.Pack()));
  INSIGHT_RETURN_NOT_OK(IndexDelete(oid, old));
  --num_rows_;
  return Status::OK();
}

Status Table::Update(Oid oid, const Tuple& tuple) {
  INSIGHT_ASSIGN_OR_RETURN(RowLocation loc, DiskTupleLoc(oid));
  INSIGHT_ASSIGN_OR_RETURN(Tuple old, GetAt(loc));
  INSIGHT_ASSIGN_OR_RETURN(RowLocation new_loc,
                           heap_->Update(loc, EncodeRecord(oid, tuple)));
  if (!(new_loc == loc)) {
    INSIGHT_RETURN_NOT_OK(oid_index_->Delete(OidKey(oid), loc.Pack()));
    INSIGHT_RETURN_NOT_OK(oid_index_->Insert(OidKey(oid), new_loc.Pack()));
  }
  INSIGHT_RETURN_NOT_OK(IndexDelete(oid, old));
  INSIGHT_RETURN_NOT_OK(IndexInsert(oid, tuple));
  return Status::OK();
}

Status Table::IndexInsert(Oid oid, const Tuple& tuple) {
  for (auto& [col, idx] : column_indexes_) {
    INSIGHT_RETURN_NOT_OK(
        idx.tree->Insert(EncodeIndexKey(tuple.at(idx.column_pos)), oid));
  }
  return Status::OK();
}

Status Table::IndexDelete(Oid oid, const Tuple& tuple) {
  for (auto& [col, idx] : column_indexes_) {
    INSIGHT_RETURN_NOT_OK(
        idx.tree->Delete(EncodeIndexKey(tuple.at(idx.column_pos)), oid));
  }
  return Status::OK();
}

Status Table::CreateColumnIndex(const std::string& column) {
  const std::string key = ToLower(column);
  if (column_indexes_.count(key) > 0) {
    return Status::AlreadyExists("index on " + column);
  }
  INSIGHT_ASSIGN_OR_RETURN(size_t pos, schema_.IndexOf(column));
  ColumnIndex idx;
  idx.column_pos = pos;
  INSIGHT_ASSIGN_OR_RETURN(
      idx.file, storage_->CreateFile(name_ + ".col." + key + ".idx"));
  INSIGHT_ASSIGN_OR_RETURN(BTree tree, BTree::Create(pool_, idx.file));
  idx.tree = std::make_unique<BTree>(std::move(tree));
  // Backfill.
  Iterator it = Scan();
  Oid oid;
  Tuple tuple;
  while (it.Next(&oid, &tuple)) {
    INSIGHT_RETURN_NOT_OK(
        idx.tree->Insert(EncodeIndexKey(tuple.at(pos)), oid));
  }
  column_indexes_.emplace(key, std::move(idx));
  return Status::OK();
}

bool Table::HasColumnIndex(const std::string& column) const {
  return column_indexes_.count(ToLower(column)) > 0;
}

const BTree* Table::GetColumnIndex(const std::string& column) const {
  auto it = column_indexes_.find(ToLower(column));
  return it == column_indexes_.end() ? nullptr : it->second.tree.get();
}

bool Table::Iterator::Next(Oid* oid, Tuple* tuple) {
  RowLocation loc;
  std::string rec;
  if (!it_.Next(&loc, &rec)) return false;
  auto decoded = DecodeRecord(rec);
  if (!decoded.ok()) return false;
  *oid = decoded.ValueOrDie().first;
  *tuple = std::move(decoded.ValueOrDie().second);
  return true;
}

uint64_t Table::heap_bytes() const {
  PageStore* store = storage_->GetStore(heap_file_);
  return store != nullptr ? store->size_bytes() : 0;
}

uint64_t Table::oid_index_bytes() const {
  PageStore* store = storage_->GetStore(oid_index_file_);
  return store != nullptr ? store->size_bytes() : 0;
}

uint64_t Table::column_index_bytes(const std::string& column) const {
  auto it = column_indexes_.find(ToLower(column));
  if (it == column_indexes_.end()) return 0;
  PageStore* store = storage_->GetStore(it->second.file);
  return store != nullptr ? store->size_bytes() : 0;
}

}  // namespace insight
