#include "index/table.h"

#include <algorithm>

#include "common/logging.h"
#include "common/serde.h"
#include "common/string_util.h"
#include "index/key_codec.h"
#include "obs/metrics.h"
#include "wal/crash_point.h"

namespace insight {

namespace {

// Byte offsets of the version stamps inside an encoded record
// (`oid || begin || end || tuple`, all u64 little-endian).
constexpr size_t kBeginOffset = 8;
constexpr size_t kEndOffset = 16;

std::string TsBytes(Ts ts) {
  std::string out;
  PutU64(&out, ts);
  return out;
}

std::string OidKey(Oid oid) {
  // Big-endian so lexicographic order equals numeric order.
  std::string key(8, '\0');
  for (int i = 0; i < 8; ++i) {
    key[i] = static_cast<char>((oid >> ((7 - i) * 8)) & 0xFF);
  }
  return key;
}

}  // namespace

Result<std::unique_ptr<Table>> Table::Create(StorageManager* storage,
                                             BufferPool* pool,
                                             std::string name,
                                             Schema schema) {
  auto table = std::unique_ptr<Table>(
      new Table(storage, pool, std::move(name), std::move(schema)));
  INSIGHT_ASSIGN_OR_RETURN(table->heap_file_,
                           storage->CreateFile(table->name_ + ".heap"));
  table->heap_ = std::make_unique<HeapFile>(pool, table->heap_file_);
  INSIGHT_ASSIGN_OR_RETURN(table->oid_index_file_,
                           storage->CreateFile(table->name_ + ".oid.idx"));
  INSIGHT_ASSIGN_OR_RETURN(BTree tree,
                           BTree::Create(pool, table->oid_index_file_));
  table->oid_index_ = std::make_unique<BTree>(std::move(tree));
  table->zones_ =
      std::make_unique<ZoneMapStore>(table->schema_.num_columns());
  return table;
}

std::string Table::EncodeRecord(Oid oid, Ts begin, Ts end,
                                const Tuple& tuple) {
  std::string rec;
  PutU64(&rec, oid);
  PutU64(&rec, begin);
  PutU64(&rec, end);
  tuple.Serialize(&rec);
  return rec;
}

Result<Table::DecodedRecord> Table::DecodeRecord(std::string_view rec) {
  SerdeReader reader(rec);
  DecodedRecord out;
  uint64_t oid;
  uint64_t begin;
  uint64_t end;
  if (!reader.ReadU64(&oid) || !reader.ReadU64(&begin) ||
      !reader.ReadU64(&end)) {
    return Status::Corruption("record: missing version header");
  }
  INSIGHT_ASSIGN_OR_RETURN(out.tuple, Tuple::Deserialize(&reader));
  out.oid = oid;
  out.begin = begin;
  out.end = end;
  return out;
}

Result<std::vector<std::pair<Table::DecodedRecord, RowLocation>>>
Table::LoadVersions(Oid oid) const {
  INSIGHT_ASSIGN_OR_RETURN(std::vector<uint64_t> hits,
                           oid_index_->Lookup(OidKey(oid)));
  std::vector<std::pair<DecodedRecord, RowLocation>> out;
  out.reserve(hits.size());
  for (uint64_t packed : hits) {
    const RowLocation loc = RowLocation::Unpack(packed);
    auto rec = heap_->Get(loc);
    if (!rec.ok()) {
      // A concurrent GC/undo may have reclaimed this version between the
      // index probe and the heap read; it was invisible to us anyway.
      if (rec.status().IsNotFound()) continue;
      return rec.status();
    }
    INSIGHT_ASSIGN_OR_RETURN(DecodedRecord decoded,
                             DecodeRecord(rec.ValueOrDie()));
    if (decoded.oid != oid) {
      // Same race as NotFound, one step later: an aborted txn's undo freed
      // the slot and a concurrent insert reused it before our stale index
      // entry was pruned. The version that used to live here was never
      // committed, so it is invisible to every snapshot — skip it.
      continue;
    }
    out.emplace_back(std::move(decoded), loc);
  }
  return out;
}

Result<std::vector<Table::VersionInfo>> Table::GetVersions(Oid oid) const {
  INSIGHT_ASSIGN_OR_RETURN(auto versions, LoadVersions(oid));
  std::vector<VersionInfo> out;
  out.reserve(versions.size());
  for (const auto& [rec, loc] : versions) {
    out.push_back(VersionInfo{loc, rec.begin, rec.end});
  }
  return out;
}

Result<std::vector<Tuple>> Table::GetVersionTuples(Oid oid) const {
  INSIGHT_ASSIGN_OR_RETURN(auto versions, LoadVersions(oid));
  std::vector<Tuple> out;
  out.reserve(versions.size());
  for (auto& [rec, loc] : versions) {
    out.push_back(std::move(rec.tuple));
  }
  return out;
}

Status Table::CheckInsertConflict(Oid oid, const Snapshot& snap) const {
  INSIGHT_ASSIGN_OR_RETURN(auto versions, LoadVersions(oid));
  for (const auto& [rec, loc] : versions) {
    if (IsTxnStamp(rec.begin)) {
      if (StampTxnId(rec.begin) != snap.txn_id) {
        return Status::Aborted("row " + std::to_string(oid) + " in " + name_ +
                               " is being written by another transaction");
      }
    } else if (rec.begin > snap.read_ts) {
      return Status::Aborted("row " + std::to_string(oid) + " in " + name_ +
                             " was written after this snapshot");
    }
  }
  return Status::OK();
}

Result<Oid> Table::Insert(const Tuple& tuple) {
  if (tuple.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) + " vs schema " +
        std::to_string(schema_.num_columns()));
  }
  const Oid oid = next_oid_.fetch_add(1, std::memory_order_relaxed);
  INSIGHT_RETURN_NOT_OK(InsertRecord(oid, tuple));
  return oid;
}

Status Table::InsertWithOid(Oid oid, const Tuple& tuple) {
  if (tuple.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) + " vs schema " +
        std::to_string(schema_.num_columns()));
  }
  if (oid == kInvalidOid) {
    return Status::InvalidArgument("InsertWithOid: invalid oid");
  }
  INSIGHT_RETURN_NOT_OK(InsertRecord(oid, tuple));
  Oid cur = next_oid_.load(std::memory_order_relaxed);
  while (oid >= cur &&
         !next_oid_.compare_exchange_weak(cur, oid + 1,
                                          std::memory_order_relaxed)) {
  }
  return Status::OK();
}

Status Table::InsertRecord(Oid oid, const Tuple& tuple) {
  Transaction* txn = CurrentTxn();
  const Ts begin = txn != nullptr ? txn->stamp() : 0;
  INSIGHT_ASSIGN_OR_RETURN(
      RowLocation loc,
      heap_->Insert(EncodeRecord(oid, begin, kTsInfinity, tuple)));
  zones_->WidenTuple(loc.page_id, tuple);
  INSIGHT_RETURN_NOT_OK(oid_index_->Insert(OidKey(oid), loc.Pack()));
  if (txn != nullptr) {
    INSIGHT_RETURN_NOT_OK(IndexInsertVersioned(oid, tuple, loc));
    const Ts marker = txn->stamp();
    txn->OnCommit([this, oid, marker](Ts commit_ts) {
      const Status st = RestampBegin(oid, marker, commit_ts);
      if (!st.ok()) {
        INSIGHT_LOG(Error) << name_ << ": commit restamp of row " << oid
                           << ": " << st.ToString();
      }
    });
    txn->OnAbort([this, oid, marker]() {
      const Status st = RemoveVersionWithBegin(oid, marker);
      if (!st.ok()) {
        INSIGHT_LOG(Error) << name_ << ": insert undo of row " << oid << ": "
                           << st.ToString();
      }
    });
  } else {
    INSIGHT_RETURN_NOT_OK(IndexInsert(oid, tuple));
  }
  num_rows_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

std::vector<std::string> Table::IndexedColumns() const {
  std::vector<std::string> columns;
  columns.reserve(column_indexes_.size());
  for (const auto& entry : column_indexes_) columns.push_back(entry.first);
  return columns;
}

Result<RowLocation> Table::DiskTupleLoc(Oid oid, const Snapshot& snap) const {
  INSIGHT_ASSIGN_OR_RETURN(auto versions, LoadVersions(oid));
  for (const auto& [rec, loc] : versions) {
    if (VersionVisible(rec.begin, rec.end, snap)) return loc;
  }
  return Status::NotFound("oid " + std::to_string(oid));
}

Result<Tuple> Table::Get(Oid oid, const Snapshot& snap) const {
  INSIGHT_ASSIGN_OR_RETURN(auto versions, LoadVersions(oid));
  for (auto& [rec, loc] : versions) {
    if (VersionVisible(rec.begin, rec.end, snap)) {
      return std::move(rec.tuple);
    }
  }
  return Status::NotFound("oid " + std::to_string(oid));
}

Result<Tuple> Table::GetAt(RowLocation loc, Oid* oid_out,
                           const Snapshot& snap) const {
  INSIGHT_ASSIGN_OR_RETURN(std::string rec, heap_->Get(loc));
  INSIGHT_ASSIGN_OR_RETURN(DecodedRecord decoded, DecodeRecord(rec));
  if (oid_out != nullptr) *oid_out = decoded.oid;
  if (VersionVisible(decoded.begin, decoded.end, snap)) {
    return std::move(decoded.tuple);
  }
  // The version at `loc` is not ours to see; the visible sibling version
  // of the same row (if any) is.
  return Get(decoded.oid, snap);
}

Status Table::Delete(Oid oid) {
  Transaction* txn = CurrentTxn();
  INSIGHT_ASSIGN_OR_RETURN(auto versions, LoadVersions(oid));
  if (txn == nullptr) {
    // Immediate physical delete (replay / embedded single-writer mode).
    for (auto& [rec, loc] : versions) {
      if (!VersionVisible(rec.begin, rec.end, Snapshot::Latest())) continue;
      INSIGHT_RETURN_NOT_OK(IndexDeleteVersioned(oid, rec.tuple, loc));
      INSIGHT_RETURN_NOT_OK(heap_->Delete(loc));
      // Deletes never tighten zone bounds — the page keeps its (now
      // loose) superset bounds until maintenance re-derives them.
      zones_->MarkStale(loc.page_id);
      INSIGHT_RETURN_NOT_OK(oid_index_->Delete(OidKey(oid), loc.Pack()));
      num_rows_.fetch_sub(1, std::memory_order_relaxed);
      return Status::OK();
    }
    return Status::NotFound("oid " + std::to_string(oid));
  }

  const Snapshot snap = txn->snapshot();
  bool conflict = false;
  bool deleted_by_self = false;
  for (auto& [rec, loc] : versions) {
    if (!VersionVisible(rec.begin, rec.end, snap)) {
      // Classify WHY it is invisible: only evidence of a concurrent or
      // later writer is a (retryable) conflict. A version whose committed
      // end precedes the snapshot is simply a dead row kept alive by an
      // older lease — deterministically NotFound, never worth retrying.
      if (IsTxnStamp(rec.begin) && StampTxnId(rec.begin) != txn->id()) {
        conflict = true;  // Another transaction's uncommitted version.
      } else if (!IsTxnStamp(rec.begin) && rec.begin > snap.read_ts) {
        conflict = true;  // Committed after our snapshot: we lost the race.
      } else if (IsTxnStamp(rec.end)) {
        // Begin is visible to us, so the end stamp must be our own
        // (another txn's delete intent leaves the version visible).
        deleted_by_self = true;
      }
      continue;
    }
    // Writability (first-writer-wins): the visible version must still be
    // the live chain head.
    if (IsTxnStamp(rec.end)) {
      return StampTxnId(rec.end) == txn->id()
                 ? Status::NotFound("row deleted in this transaction")
                 : Status::Aborted("row " + std::to_string(oid) + " in " +
                                   name_ +
                                   " is being written by another transaction");
    }
    if (rec.end != kTsInfinity) {
      return Status::Aborted("row " + std::to_string(oid) + " in " + name_ +
                             " was superseded after this snapshot");
    }
    const Ts marker = txn->stamp();
    INSIGHT_RETURN_NOT_OK(
        heap_->OverwriteRecordBytes(loc, kEndOffset, TsBytes(marker)));
    num_rows_.fetch_sub(1, std::memory_order_relaxed);
    txn->OnAbort([this, oid, marker]() {
      const Status st = RestampEnd(oid, marker, kTsInfinity);
      if (!st.ok()) {
        INSIGHT_LOG(Error) << name_ << ": delete undo of row " << oid << ": "
                           << st.ToString();
      }
      num_rows_.fetch_add(1, std::memory_order_relaxed);
    });
    txn->OnCommit([this, oid, marker](Ts commit_ts) {
      const Status st = RestampEnd(oid, marker, commit_ts);
      if (!st.ok()) {
        INSIGHT_LOG(Error) << name_ << ": commit restamp of row " << oid
                           << ": " << st.ToString();
      }
    });
    txn->OnGc([this, oid](Ts horizon) { return VacuumOid(oid, horizon); });
    return Status::OK();
  }
  if (conflict) {
    return Status::Aborted("row " + std::to_string(oid) + " in " + name_ +
                           " is being written by another transaction");
  }
  if (deleted_by_self) {
    return Status::NotFound("row deleted in this transaction");
  }
  return Status::NotFound("oid " + std::to_string(oid));
}

Status Table::Update(Oid oid, const Tuple& tuple) {
  Transaction* txn = CurrentTxn();
  INSIGHT_ASSIGN_OR_RETURN(auto versions, LoadVersions(oid));
  if (txn == nullptr) {
    // In-place rewrite (replay / embedded single-writer mode).
    for (auto& [rec, loc] : versions) {
      if (!VersionVisible(rec.begin, rec.end, Snapshot::Latest())) continue;
      INSIGHT_ASSIGN_OR_RETURN(
          RowLocation new_loc,
          heap_->Update(loc,
                        EncodeRecord(oid, rec.begin, rec.end, tuple)));
      zones_->WidenTuple(new_loc.page_id, tuple);
      if (!(new_loc == loc)) {
        zones_->MarkStale(loc.page_id);  // Record moved away; widen-only.
        WidenOidLabels(new_loc.page_id, oid);
        INSIGHT_RETURN_NOT_OK(oid_index_->Delete(OidKey(oid), loc.Pack()));
        INSIGHT_RETURN_NOT_OK(oid_index_->Insert(OidKey(oid), new_loc.Pack()));
      }
      INSIGHT_RETURN_NOT_OK(IndexDeleteVersioned(oid, rec.tuple, new_loc));
      INSIGHT_RETURN_NOT_OK(IndexInsertVersioned(oid, tuple, new_loc));
      return Status::OK();
    }
    return Status::NotFound("oid " + std::to_string(oid));
  }

  const Snapshot snap = txn->snapshot();
  bool conflict = false;
  bool deleted_by_self = false;
  for (auto& [rec, loc] : versions) {
    if (!VersionVisible(rec.begin, rec.end, snap)) {
      // Same classification as Delete: only concurrent/later writers are
      // conflicts; committed-dead-before-snapshot versions are NotFound.
      if (IsTxnStamp(rec.begin) && StampTxnId(rec.begin) != txn->id()) {
        conflict = true;
      } else if (!IsTxnStamp(rec.begin) && rec.begin > snap.read_ts) {
        conflict = true;
      } else if (IsTxnStamp(rec.end)) {
        deleted_by_self = true;
      }
      continue;
    }
    if (IsTxnStamp(rec.end)) {
      return StampTxnId(rec.end) == txn->id()
                 ? Status::NotFound("row deleted in this transaction")
                 : Status::Aborted("row " + std::to_string(oid) + " in " +
                                   name_ +
                                   " is being written by another transaction");
    }
    if (rec.end != kTsInfinity) {
      return Status::Aborted("row " + std::to_string(oid) + " in " + name_ +
                             " was superseded after this snapshot");
    }
    if (IsTxnStamp(rec.begin)) {
      // This transaction created the visible version (insert or earlier
      // update): rewrite it in place, no new version.
      INSIGHT_ASSIGN_OR_RETURN(
          RowLocation new_loc,
          heap_->Update(loc, EncodeRecord(oid, rec.begin, kTsInfinity,
                                          tuple)));
      zones_->WidenTuple(new_loc.page_id, tuple);
      if (!(new_loc == loc)) {
        zones_->MarkStale(loc.page_id);
        WidenOidLabels(new_loc.page_id, oid);
        INSIGHT_RETURN_NOT_OK(oid_index_->Delete(OidKey(oid), loc.Pack()));
        INSIGHT_RETURN_NOT_OK(oid_index_->Insert(OidKey(oid), new_loc.Pack()));
      }
      INSIGHT_RETURN_NOT_OK(IndexDeleteVersioned(oid, rec.tuple, new_loc));
      INSIGHT_RETURN_NOT_OK(IndexInsertVersioned(oid, tuple, new_loc));
      return Status::OK();
    }
    // First write of a committed row by this transaction: end-stamp the
    // old version (write intent) and install the successor.
    const Ts marker = txn->stamp();
    INSIGHT_RETURN_NOT_OK(
        heap_->OverwriteRecordBytes(loc, kEndOffset, TsBytes(marker)));
    INSIGHT_ASSIGN_OR_RETURN(
        RowLocation new_loc,
        heap_->Insert(EncodeRecord(oid, marker, kTsInfinity, tuple)));
    zones_->WidenTuple(new_loc.page_id, tuple);
    // An annotated row's new version may land on a page that has never
    // seen its labels; carry the label bounds along.
    WidenOidLabels(new_loc.page_id, oid);
    INSIGHT_RETURN_NOT_OK(oid_index_->Insert(OidKey(oid), new_loc.Pack()));
    INSIGHT_RETURN_NOT_OK(IndexInsertVersioned(oid, tuple, new_loc));
    txn->OnAbort([this, oid, marker]() {
      Status st = RemoveVersionWithBegin(oid, marker);
      if (st.ok()) {
        // RemoveVersionWithBegin counts the version as a lost row; the
        // old version comes back below, so the row never went away.
        num_rows_.fetch_add(1, std::memory_order_relaxed);
        st = RestampEnd(oid, marker, kTsInfinity);
      }
      if (!st.ok()) {
        INSIGHT_LOG(Error) << name_ << ": update undo of row " << oid << ": "
                           << st.ToString();
      }
    });
    txn->OnCommit([this, oid, marker](Ts commit_ts) {
      Status st = RestampBegin(oid, marker, commit_ts);
      if (st.ok()) st = RestampEnd(oid, marker, commit_ts);
      if (!st.ok()) {
        INSIGHT_LOG(Error) << name_ << ": commit restamp of row " << oid
                           << ": " << st.ToString();
      }
    });
    txn->OnGc([this, oid](Ts horizon) { return VacuumOid(oid, horizon); });
    return Status::OK();
  }
  if (conflict) {
    return Status::Aborted("row " + std::to_string(oid) + " in " + name_ +
                           " is being written by another transaction");
  }
  if (deleted_by_self) {
    return Status::NotFound("row deleted in this transaction");
  }
  return Status::NotFound("oid " + std::to_string(oid));
}

Status Table::RestampBegin(Oid oid, Ts marker, Ts new_begin) {
  INSIGHT_ASSIGN_OR_RETURN(auto versions, LoadVersions(oid));
  bool found = false;
  for (const auto& [rec, loc] : versions) {
    if (rec.begin != marker) continue;
    INSIGHT_RETURN_NOT_OK(
        heap_->OverwriteRecordBytes(loc, kBeginOffset, TsBytes(new_begin)));
    found = true;
  }
  return found ? Status::OK()
               : Status::NotFound("no version of oid " + std::to_string(oid) +
                                  " carries the stamp");
}

Status Table::RestampEnd(Oid oid, Ts marker, Ts new_end) {
  INSIGHT_ASSIGN_OR_RETURN(auto versions, LoadVersions(oid));
  bool found = false;
  for (const auto& [rec, loc] : versions) {
    if (rec.end != marker) continue;
    INSIGHT_RETURN_NOT_OK(
        heap_->OverwriteRecordBytes(loc, kEndOffset, TsBytes(new_end)));
    found = true;
  }
  return found ? Status::OK()
               : Status::NotFound("no version of oid " + std::to_string(oid) +
                                  " carries the stamp");
}

Status Table::RemoveVersionWithBegin(Oid oid, Ts marker) {
  INSIGHT_ASSIGN_OR_RETURN(auto versions, LoadVersions(oid));
  bool found = false;
  for (const auto& [rec, loc] : versions) {
    if (rec.begin != marker) continue;
    INSIGHT_RETURN_NOT_OK(IndexDeleteVersioned(oid, rec.tuple, loc));
    INSIGHT_RETURN_NOT_OK(heap_->Delete(loc));
    // Abort undo never tightens bounds (widen-only invariant): the page
    // keeps the aborted version's superset bounds until maintenance.
    zones_->MarkStale(loc.page_id);
    INSIGHT_RETURN_NOT_OK(oid_index_->Delete(OidKey(oid), loc.Pack()));
    num_rows_.fetch_sub(1, std::memory_order_relaxed);
    found = true;
  }
  return found ? Status::OK()
               : Status::NotFound("no version of oid " + std::to_string(oid) +
                                  " carries the stamp");
}

Status Table::VacuumOid(Oid oid, Ts horizon) {
  INSIGHT_ASSIGN_OR_RETURN(auto versions, LoadVersions(oid));
  for (const auto& [rec, loc] : versions) {
    if (IsTxnStamp(rec.end) || rec.end == kTsInfinity || rec.end > horizon) {
      continue;
    }
    INSIGHT_RETURN_NOT_OK(IndexDeleteVersioned(oid, rec.tuple, loc));
    INSIGHT_RETURN_NOT_OK(heap_->Delete(loc));
    zones_->MarkStale(loc.page_id);  // GC vacuums; maintenance tightens.
    INSIGHT_RETURN_NOT_OK(oid_index_->Delete(OidKey(oid), loc.Pack()));
  }
  return Status::OK();
}

void Table::WidenOidLabels(PageId page, Oid oid) {
  if (!zone_label_source_) return;
  std::vector<std::pair<std::string, int64_t>> counts;
  if (!zone_label_source_(oid, &counts).ok()) return;
  zones_->WidenLabels(page, counts);
}

Status Table::MaintainZoneMaps() {
  for (PageId page : zones_->StalePages()) {
    INSIGHT_CRASH_POINT("zonemap_maintain");
    PageZone zone;
    zone.columns.resize(schema_.num_columns());
    std::vector<Oid> oids;
    HeapFile::Iterator it = heap_->ScanRange(page, page + 1);
    RowLocation loc;
    std::string raw;
    while (it.Next(&loc, &raw)) {
      auto decoded = DecodeRecord(raw);
      if (!decoded.ok()) continue;
      const DecodedRecord& rec = decoded.ValueOrDie();
      // Bounds cover EVERY stored version, whatever its stamp, so the
      // rebuilt zone is conservative for any snapshot still reading the
      // page. A page whose versions were all GC'd ends up any_rows=false
      // and is skippable by every probe.
      zone.Widen(rec.tuple);
      oids.push_back(rec.oid);
    }
    if (zone_label_source_ && !oids.empty()) {
      std::sort(oids.begin(), oids.end());
      oids.erase(std::unique(oids.begin(), oids.end()), oids.end());
      std::vector<std::pair<std::string, int64_t>> counts;
      for (Oid oid : oids) {
        counts.clear();
        if (!zone_label_source_(oid, &counts).ok()) continue;
        for (const auto& [key, count] : counts) {
          zone.WidenLabel(key, count);
        }
      }
    }
    zones_->ReplacePage(page, std::move(zone));
  }
  return Status::OK();
}

void Table::Iterator::EnableZonePruning(const ZoneMapStore* zones,
                                        ZonePredicate pred,
                                        uint64_t* pages_skipped) {
  if (zones == nullptr || pred.empty()) return;
  it_.set_page_filter(
      [zones, pred = std::move(pred), pages_skipped](PageId page) {
        if (!zones->CanSkip(page, pred)) return false;
        if (pages_skipped != nullptr) ++*pages_skipped;
        EngineMetrics::Get().scan_pages_skipped->Add(1);
        return true;
      });
}

Result<bool> Table::ValueInOtherVersion(Oid oid, size_t column_pos,
                                        const Value& value,
                                        RowLocation exclude) const {
  INSIGHT_ASSIGN_OR_RETURN(auto versions, LoadVersions(oid));
  const std::string key = EncodeIndexKey(value);
  for (const auto& [rec, loc] : versions) {
    if (loc == exclude) continue;
    if (EncodeIndexKey(rec.tuple.at(column_pos)) == key) return true;
  }
  return false;
}

Status Table::IndexInsert(Oid oid, const Tuple& tuple) {
  for (auto& [col, idx] : column_indexes_) {
    INSIGHT_RETURN_NOT_OK(
        idx.tree->Insert(EncodeIndexKey(tuple.at(idx.column_pos)), oid));
  }
  return Status::OK();
}

Status Table::IndexDelete(Oid oid, const Tuple& tuple) {
  for (auto& [col, idx] : column_indexes_) {
    INSIGHT_RETURN_NOT_OK(
        idx.tree->Delete(EncodeIndexKey(tuple.at(idx.column_pos)), oid));
  }
  return Status::OK();
}

Status Table::IndexInsertVersioned(Oid oid, const Tuple& tuple,
                                   RowLocation loc) {
  // Invariant: a column index holds (value, oid) iff SOME stored version
  // of `oid` has `value` — probes re-check visibility and value on the
  // fetched version, so surplus entries are only extra work, but a
  // missing entry would lose rows. Skip the insert when a sibling
  // version already put the pair in place.
  for (auto& [col, idx] : column_indexes_) {
    const Value& v = tuple.at(idx.column_pos);
    INSIGHT_ASSIGN_OR_RETURN(
        bool shared, ValueInOtherVersion(oid, idx.column_pos, v, loc));
    if (shared) continue;
    INSIGHT_RETURN_NOT_OK(idx.tree->Insert(EncodeIndexKey(v), oid));
  }
  return Status::OK();
}

Status Table::IndexDeleteVersioned(Oid oid, const Tuple& tuple,
                                   RowLocation loc) {
  for (auto& [col, idx] : column_indexes_) {
    const Value& v = tuple.at(idx.column_pos);
    INSIGHT_ASSIGN_OR_RETURN(
        bool shared, ValueInOtherVersion(oid, idx.column_pos, v, loc));
    if (shared) continue;  // Another version still needs the entry.
    INSIGHT_RETURN_NOT_OK(idx.tree->Delete(EncodeIndexKey(v), oid));
  }
  return Status::OK();
}

Status Table::CreateColumnIndex(const std::string& column) {
  const std::string key = ToLower(column);
  if (column_indexes_.count(key) > 0) {
    return Status::AlreadyExists("index on " + column);
  }
  INSIGHT_ASSIGN_OR_RETURN(size_t pos, schema_.IndexOf(column));
  ColumnIndex idx;
  idx.column_pos = pos;
  INSIGHT_ASSIGN_OR_RETURN(
      idx.file, storage_->CreateFile(name_ + ".col." + key + ".idx"));
  INSIGHT_ASSIGN_OR_RETURN(BTree tree, BTree::Create(pool_, idx.file));
  idx.tree = std::make_unique<BTree>(std::move(tree));
  // Backfill from the raw heap — every version of every row, so probes at
  // any snapshot resolve. Duplicate (value, oid) pairs from sibling
  // versions with equal values are collapsed.
  HeapFile::Iterator it = heap_->Scan();
  RowLocation loc;
  std::string raw;
  while (it.Next(&loc, &raw)) {
    auto decoded = DecodeRecord(raw);
    if (!decoded.ok()) continue;
    const DecodedRecord& rec = decoded.ValueOrDie();
    const std::string ekey = EncodeIndexKey(rec.tuple.at(pos));
    INSIGHT_ASSIGN_OR_RETURN(std::vector<uint64_t> existing,
                             idx.tree->Lookup(ekey));
    bool present = false;
    for (uint64_t v : existing) {
      if (v == rec.oid) {
        present = true;
        break;
      }
    }
    if (present) continue;
    INSIGHT_RETURN_NOT_OK(idx.tree->Insert(ekey, rec.oid));
  }
  column_indexes_.emplace(key, std::move(idx));
  return Status::OK();
}

bool Table::HasColumnIndex(const std::string& column) const {
  return column_indexes_.count(ToLower(column)) > 0;
}

const BTree* Table::GetColumnIndex(const std::string& column) const {
  auto it = column_indexes_.find(ToLower(column));
  return it == column_indexes_.end() ? nullptr : it->second.tree.get();
}

bool Table::Iterator::Next(Oid* oid, Tuple* tuple) {
  RowLocation loc;
  std::string rec;
  while (it_.Next(&loc, &rec)) {
    auto decoded = DecodeRecord(rec);
    if (!decoded.ok()) return false;
    DecodedRecord& d = decoded.ValueOrDie();
    if (!VersionVisible(d.begin, d.end, snap_)) continue;
    *oid = d.oid;
    *tuple = std::move(d.tuple);
    return true;
  }
  return false;
}

uint64_t Table::heap_bytes() const {
  PageStore* store = storage_->GetStore(heap_file_);
  return store != nullptr ? store->size_bytes() : 0;
}

uint64_t Table::oid_index_bytes() const {
  PageStore* store = storage_->GetStore(oid_index_file_);
  return store != nullptr ? store->size_bytes() : 0;
}

uint64_t Table::column_index_bytes(const std::string& column) const {
  auto it = column_indexes_.find(ToLower(column));
  if (it == column_indexes_.end()) return 0;
  PageStore* store = storage_->GetStore(it->second.file);
  return store != nullptr ? store->size_bytes() : 0;
}

}  // namespace insight
