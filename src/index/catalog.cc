#include "index/catalog.h"

#include "common/string_util.h"

namespace insight {

Result<Table*> Catalog::CreateTable(const std::string& name, Schema schema) {
  const std::string key = ToLower(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table " + name);
  }
  INSIGHT_ASSIGN_OR_RETURN(
      auto table, Table::Create(storage_, pool_, name, std::move(schema)));
  Table* raw = table.get();
  tables_.emplace(key, std::move(table));
  return raw;
}

Result<Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) return Status::NotFound("table " + name);
  return it->second.get();
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(ToLower(name)) > 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(table->name());
  return names;
}

}  // namespace insight
