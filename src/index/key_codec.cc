#include "index/key_codec.h"

#include <cmath>
#include <cstring>
#include <limits>

namespace insight {

namespace {

void AppendOrderedDouble(std::string* out, double d) {
  if (d == 0.0) d = 0.0;  // Collapse -0.0 and +0.0 to one encoding.
  if (std::isnan(d)) {
    // Canonicalize every NaN payload (sign bit included) to one positive
    // quiet NaN, so all NaNs share a single key that sorts above +inf —
    // matching Value::Compare's NaN ordering. Without this, a sign-bit
    // NaN would bit-invert and sort below -inf while a positive NaN
    // sorted above +inf, and equal-comparing NaNs got distinct keys.
    d = std::numeric_limits<double>::quiet_NaN();
  }
  uint64_t bits;
  std::memcpy(&bits, &d, 8);
  if (bits & (1ULL << 63)) {
    bits = ~bits;  // Negative: invert all bits so more-negative sorts lower.
  } else {
    bits |= (1ULL << 63);  // Positive: set sign bit so it sorts above.
  }
  for (int i = 7; i >= 0; --i) {
    out->push_back(static_cast<char>((bits >> (i * 8)) & 0xFF));
  }
}

}  // namespace

std::string EncodeIndexKey(const Value& v) {
  std::string out;
  switch (v.type()) {
    case ValueType::kNull:
      out.push_back('\x00');
      break;
    case ValueType::kInt64:
    case ValueType::kDouble:
      out.push_back('\x01');
      AppendOrderedDouble(&out, v.AsDouble());
      break;
    case ValueType::kBool:
      out.push_back('\x02');
      out.push_back(v.AsBool() ? '\x01' : '\x00');
      break;
    case ValueType::kString:
      out.push_back('\x03');
      out += v.AsString();
      break;
  }
  return out;
}

std::string MinNumericKey() {
  std::string out;
  out.push_back('\x01');
  return out;  // Prefix of every numeric key; sorts before all of them.
}

std::string MaxNumericKey() {
  std::string out;
  out.push_back('\x01');
  out.append(8, '\xFF');
  return out;
}

std::string MinStringKey() {
  std::string out;
  out.push_back('\x03');
  return out;
}

std::string MaxStringKey() {
  std::string out;
  out.push_back('\x04');  // Type byte past kString: after every string key.
  return out;
}

}  // namespace insight
