#include "index/btree.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "common/serde.h"
#include "obs/metrics.h"

namespace insight {

// Page layouts (all little-endian):
//   Meta page (page 0):  u8 type=3, u32 root, u64 num_entries, u32 height
//   Node page:           u8 type (4=internal, 5=leaf), u16 count,
//                        u32 next_leaf (leaves only),
//     leaf entries:      count x { u16 key_len, key bytes, u64 value }
//     internal:          u32 child0, then count x
//                        { u16 key_len, key bytes, u64 value, u32 child }
namespace {
constexpr uint8_t kMetaType = 3;
constexpr uint8_t kInternalType = 4;
constexpr uint8_t kLeafType = 5;

// Split when a node's serialized size exceeds this. Leaves room so the
// post-split halves accept a few more entries before resplitting.
constexpr size_t kNodeSizeLimit = kPageSize - 64;

}  // namespace

int CompareEntries(std::string_view a_key, uint64_t a_val,
                   std::string_view b_key, uint64_t b_val) {
  const int c = a_key.compare(b_key);
  if (c != 0) return c < 0 ? -1 : 1;
  if (a_val != b_val) return a_val < b_val ? -1 : 1;
  return 0;
}

size_t BTree::Node::SerializedSize() const {
  size_t size = 1 + 2 + 4;  // type + count + next_leaf slot.
  if (is_leaf) {
    for (const std::string& k : keys) size += 2 + k.size() + 8;
  } else {
    size += 4;  // child0
    for (const std::string& k : keys) size += 2 + k.size() + 8 + 4;
  }
  return size;
}

Result<BTree> BTree::Create(BufferPool* pool, FileId file) {
  BTree tree(pool, file);
  // Page 0: meta. Page 1: empty root leaf.
  PageId meta_page;
  {
    INSIGHT_ASSIGN_OR_RETURN(PageGuard guard, pool->NewPage(file, &meta_page));
    guard.MarkDirty();
  }
  if (meta_page != 0) {
    return Status::InvalidArgument("BTree::Create needs an empty file");
  }
  Node root;
  root.is_leaf = true;
  INSIGHT_ASSIGN_OR_RETURN(tree.root_, tree.AllocNode(root));
  tree.num_entries_ = 0;
  tree.height_ = 1;
  INSIGHT_RETURN_NOT_OK(tree.WriteMeta());
  return tree;
}

Result<BTree> BTree::Open(BufferPool* pool, FileId file) {
  BTree tree(pool, file);
  INSIGHT_RETURN_NOT_OK(tree.ReadMeta());
  return tree;
}

Status BTree::ReadMeta() {
  INSIGHT_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(file_, 0));
  const char* p = guard.data();
  if (p[0] != static_cast<char>(kMetaType)) {
    return Status::Corruption("btree: bad meta page");
  }
  std::memcpy(&root_, p + 1, 4);
  std::memcpy(&num_entries_, p + 5, 8);
  std::memcpy(&height_, p + 13, 4);
  return Status::OK();
}

Status BTree::WriteMeta() {
  INSIGHT_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(file_, 0));
  char* p = guard.data();
  p[0] = static_cast<char>(kMetaType);
  std::memcpy(p + 1, &root_, 4);
  std::memcpy(p + 5, &num_entries_, 8);
  std::memcpy(p + 13, &height_, 4);
  guard.MarkDirty();
  return Status::OK();
}

Result<BTree::Node> BTree::ReadNode(PageId page) const {
  INSIGHT_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(file_, page));
  const char* p = guard.data();
  Node node;
  const uint8_t type = static_cast<uint8_t>(p[0]);
  if (type != kInternalType && type != kLeafType) {
    return Status::Corruption("btree: bad node type on page " +
                              std::to_string(page));
  }
  node.is_leaf = (type == kLeafType);
  uint16_t count;
  std::memcpy(&count, p + 1, 2);
  std::memcpy(&node.next_leaf, p + 3, 4);
  size_t pos = 7;
  auto read_u16 = [&](uint16_t* v) {
    std::memcpy(v, p + pos, 2);
    pos += 2;
  };
  auto read_u32 = [&](uint32_t* v) {
    std::memcpy(v, p + pos, 4);
    pos += 4;
  };
  auto read_u64 = [&](uint64_t* v) {
    std::memcpy(v, p + pos, 8);
    pos += 8;
  };
  if (!node.is_leaf) {
    uint32_t child0;
    read_u32(&child0);
    node.children.push_back(child0);
  }
  node.keys.reserve(count);
  node.values.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    uint16_t klen;
    read_u16(&klen);
    node.keys.emplace_back(p + pos, klen);
    pos += klen;
    uint64_t v;
    read_u64(&v);
    node.values.push_back(v);
    if (!node.is_leaf) {
      uint32_t child;
      read_u32(&child);
      node.children.push_back(child);
    }
  }
  return node;
}

Status BTree::WriteNode(PageId page, const Node& node) {
  INSIGHT_CHECK(node.SerializedSize() <= kPageSize)
      << "btree node overflows page";
  INSIGHT_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(file_, page));
  char* p = guard.data();
  p[0] = static_cast<char>(node.is_leaf ? kLeafType : kInternalType);
  const uint16_t count = static_cast<uint16_t>(node.keys.size());
  std::memcpy(p + 1, &count, 2);
  std::memcpy(p + 3, &node.next_leaf, 4);
  size_t pos = 7;
  auto put_u16 = [&](uint16_t v) {
    std::memcpy(p + pos, &v, 2);
    pos += 2;
  };
  auto put_u32 = [&](uint32_t v) {
    std::memcpy(p + pos, &v, 4);
    pos += 4;
  };
  auto put_u64 = [&](uint64_t v) {
    std::memcpy(p + pos, &v, 8);
    pos += 8;
  };
  if (!node.is_leaf) put_u32(node.children[0]);
  for (size_t i = 0; i < node.keys.size(); ++i) {
    put_u16(static_cast<uint16_t>(node.keys[i].size()));
    std::memcpy(p + pos, node.keys[i].data(), node.keys[i].size());
    pos += node.keys[i].size();
    put_u64(node.values[i]);
    if (!node.is_leaf) put_u32(node.children[i + 1]);
  }
  guard.MarkDirty();
  return Status::OK();
}

Result<PageId> BTree::AllocNode(const Node& node) {
  PageId page;
  INSIGHT_ASSIGN_OR_RETURN(PageGuard guard, pool_->NewPage(file_, &page));
  guard.Release();
  INSIGHT_RETURN_NOT_OK(WriteNode(page, node));
  return page;
}

namespace {

// Index of the first entry in (keys, values) that is >= (key, value).
size_t LowerBound(const std::vector<std::string>& keys,
                  const std::vector<uint64_t>& values, std::string_view key,
                  uint64_t value) {
  size_t lo = 0;
  size_t hi = keys.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (CompareEntries(keys[mid], values[mid], key, value) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Child slot to descend into for (key, value): the first separator that is
// greater than the probe routes left of itself.
size_t ChildIndex(const std::vector<std::string>& keys,
                  const std::vector<uint64_t>& values, std::string_view key,
                  uint64_t value) {
  size_t lo = 0;
  size_t hi = keys.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (CompareEntries(key, value, keys[mid], values[mid]) < 0) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace

Result<std::optional<BTree::SplitResult>> BTree::InsertRec(
    PageId page, std::string_view key, uint64_t value) {
  INSIGHT_ASSIGN_OR_RETURN(Node node, ReadNode(page));
  if (node.is_leaf) {
    const size_t pos = LowerBound(node.keys, node.values, key, value);
    node.keys.insert(node.keys.begin() + pos, std::string(key));
    node.values.insert(node.values.begin() + pos, value);
  } else {
    const size_t child_idx = ChildIndex(node.keys, node.values, key, value);
    INSIGHT_ASSIGN_OR_RETURN(auto child_split,
                             InsertRec(node.children[child_idx], key, value));
    if (!child_split.has_value()) return std::optional<SplitResult>{};
    node.keys.insert(node.keys.begin() + child_idx, child_split->sep_key);
    node.values.insert(node.values.begin() + child_idx,
                       child_split->sep_value);
    node.children.insert(node.children.begin() + child_idx + 1,
                         child_split->new_page);
  }

  if (node.SerializedSize() <= kNodeSizeLimit) {
    INSIGHT_RETURN_NOT_OK(WriteNode(page, node));
    return std::optional<SplitResult>{};
  }

  // Split: right half moves to a new node.
  const size_t mid = node.keys.size() / 2;
  Node right;
  right.is_leaf = node.is_leaf;
  SplitResult split;
  if (node.is_leaf) {
    right.keys.assign(node.keys.begin() + mid, node.keys.end());
    right.values.assign(node.values.begin() + mid, node.values.end());
    node.keys.resize(mid);
    node.values.resize(mid);
    split.sep_key = right.keys.front();
    split.sep_value = right.values.front();
    right.next_leaf = node.next_leaf;
    INSIGHT_ASSIGN_OR_RETURN(split.new_page, AllocNode(right));
    node.next_leaf = split.new_page;
  } else {
    // The middle separator moves up; it is not duplicated in either half.
    split.sep_key = node.keys[mid];
    split.sep_value = node.values[mid];
    right.keys.assign(node.keys.begin() + mid + 1, node.keys.end());
    right.values.assign(node.values.begin() + mid + 1, node.values.end());
    right.children.assign(node.children.begin() + mid + 1,
                          node.children.end());
    node.keys.resize(mid);
    node.values.resize(mid);
    node.children.resize(mid + 1);
    INSIGHT_ASSIGN_OR_RETURN(split.new_page, AllocNode(right));
  }
  INSIGHT_RETURN_NOT_OK(WriteNode(page, node));
  return std::optional<SplitResult>(std::move(split));
}

Status BTree::Insert(std::string_view key, uint64_t value) {
  if (key.size() > 4096) {
    return Status::InvalidArgument("btree key too large");
  }
  std::unique_lock<std::shared_mutex> lk(*latch_);
  INSIGHT_ASSIGN_OR_RETURN(auto split, InsertRec(root_, key, value));
  if (split.has_value()) {
    Node new_root;
    new_root.is_leaf = false;
    new_root.keys.push_back(split->sep_key);
    new_root.values.push_back(split->sep_value);
    new_root.children.push_back(root_);
    new_root.children.push_back(split->new_page);
    INSIGHT_ASSIGN_OR_RETURN(root_, AllocNode(new_root));
    ++height_;
  }
  ++num_entries_;
  return WriteMeta();
}

Result<PageId> BTree::FindLeaf(std::string_view key, uint64_t value) const {
  PageId page = root_;
  while (true) {
    INSIGHT_ASSIGN_OR_RETURN(Node node, ReadNode(page));
    if (node.is_leaf) return page;
    page = node.children[ChildIndex(node.keys, node.values, key, value)];
  }
}

Status BTree::Delete(std::string_view key, uint64_t value) {
  std::unique_lock<std::shared_mutex> lk(*latch_);
  INSIGHT_ASSIGN_OR_RETURN(PageId leaf_page, FindLeaf(key, value));
  INSIGHT_ASSIGN_OR_RETURN(Node leaf, ReadNode(leaf_page));
  const size_t pos = LowerBound(leaf.keys, leaf.values, key, value);
  if (pos >= leaf.keys.size() ||
      CompareEntries(leaf.keys[pos], leaf.values[pos], key, value) != 0) {
    return Status::NotFound("btree: entry not found");
  }
  leaf.keys.erase(leaf.keys.begin() + pos);
  leaf.values.erase(leaf.values.begin() + pos);
  INSIGHT_RETURN_NOT_OK(WriteNode(leaf_page, leaf));
  --num_entries_;
  return WriteMeta();
}

Result<bool> BTree::Contains(std::string_view key) const {
  INSIGHT_ASSIGN_OR_RETURN(Iterator it,
                           RangeScan(key, true, key, true));
  return it.Valid();
}

Result<std::vector<uint64_t>> BTree::Lookup(std::string_view key) const {
  std::vector<uint64_t> out;
  INSIGHT_ASSIGN_OR_RETURN(Iterator it, RangeScan(key, true, key, true));
  for (; it.Valid(); it.Next()) out.push_back(it.value());
  INSIGHT_RETURN_NOT_OK(it.status());
  return out;
}

Result<BTree::Iterator> BTree::RangeScan(std::string_view lower,
                                         bool lower_inclusive,
                                         std::string_view upper,
                                         bool upper_inclusive) const {
  EngineMetrics::Get().btree_probes->Add(1);
  std::shared_lock<std::shared_mutex> lk(*latch_);
  Iterator it;
  // Position at the first entry >= (lower, 0) (or > (lower, MAX) when the
  // lower bound is strict), then collect leaf entries until the upper
  // bound cuts the walk off.
  const uint64_t probe_val = lower_inclusive ? 0 : UINT64_MAX;
  INSIGHT_ASSIGN_OR_RETURN(PageId leaf, FindLeaf(lower, probe_val));
  auto past_lower = [&](const std::string& key) {
    const int c = key.compare(std::string(lower));
    return lower_inclusive ? c >= 0 : c > 0;
  };
  auto within_upper = [&](const std::string& key) {
    const int c = key.compare(std::string(upper));
    return upper_inclusive ? c <= 0 : c < 0;
  };
  PageId page = leaf;
  while (page != kInvalidPageId) {
    INSIGHT_ASSIGN_OR_RETURN(Node node, ReadNode(page));
    for (size_t i = 0; i < node.keys.size(); ++i) {
      if (!past_lower(node.keys[i])) continue;
      if (!within_upper(node.keys[i])) return it;
      it.entries_.push_back(BTreeEntry{node.keys[i], node.values[i]});
    }
    page = node.next_leaf;
  }
  return it;
}

Result<BTree::Iterator> BTree::ScanAll() const {
  EngineMetrics::Get().btree_probes->Add(1);
  std::shared_lock<std::shared_mutex> lk(*latch_);
  Iterator it;
  it.entries_.reserve(num_entries_);
  PageId page = root_;
  while (true) {
    INSIGHT_ASSIGN_OR_RETURN(Node node, ReadNode(page));
    if (node.is_leaf) break;
    page = node.children[0];
  }
  while (page != kInvalidPageId) {
    INSIGHT_ASSIGN_OR_RETURN(Node node, ReadNode(page));
    for (size_t i = 0; i < node.keys.size(); ++i) {
      it.entries_.push_back(BTreeEntry{node.keys[i], node.values[i]});
    }
    page = node.next_leaf;
  }
  return it;
}

}  // namespace insight
