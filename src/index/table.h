#ifndef INSIGHTNOTES_INDEX_TABLE_H_
#define INSIGHTNOTES_INDEX_TABLE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "index/btree.h"
#include "storage/heap_file.h"
#include "storage/storage_manager.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace insight {

/// A user relation: slotted heap file + a B-Tree on the OID column (the
/// paper's `diskTupleLoc()` helper with cost O(log_B M)) + optional
/// secondary B-Tree indexes on data columns.
///
/// Heap records are `oid || tuple` so scans recover OIDs without an index.
class Table {
 public:
  /// Creates the heap and OID-index files under `name.*` in `storage`.
  static Result<std::unique_ptr<Table>> Create(StorageManager* storage,
                                               BufferPool* pool,
                                               std::string name,
                                               Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  uint64_t num_rows() const { return num_rows_; }

  /// Inserts a tuple; assigns and returns its OID.
  Result<Oid> Insert(const Tuple& tuple);

  /// Inserts a tuple under a caller-chosen OID and bumps the allocator
  /// past it. WAL replay uses this to reproduce the original OIDs; the
  /// OID must not already be present.
  Status InsertWithOid(Oid oid, const Tuple& tuple);

  /// Next OID Insert would assign (checkpoint snapshots record it).
  Oid next_oid() const { return next_oid_; }

  /// Names of columns that have a secondary index, in index order.
  std::vector<std::string> IndexedColumns() const;

  /// Fetches by OID (OID index probe + heap read).
  Result<Tuple> Get(Oid oid) const;

  /// The paper's diskTupleLoc(): heap location of a tuple given its OID.
  Result<RowLocation> DiskTupleLoc(Oid oid) const;

  /// Direct heap fetch by location (Summary-BTree backward pointers land
  /// here without touching the OID index).
  Result<Tuple> GetAt(RowLocation loc, Oid* oid_out = nullptr) const;

  Status Delete(Oid oid);

  /// Rewrites a tuple in place (heap may relocate; indexes follow).
  Status Update(Oid oid, const Tuple& tuple);

  /// Builds a secondary B-Tree index on one data column. Key = encoded
  /// column value, payload = OID. Backfills existing rows.
  Status CreateColumnIndex(const std::string& column);

  bool HasColumnIndex(const std::string& column) const;
  const BTree* GetColumnIndex(const std::string& column) const;

  /// Scan yielding (oid, tuple) in heap order. The page-range form backs
  /// morsel-driven parallel scans: workers walk disjoint ranges.
  class Iterator {
   public:
    explicit Iterator(const Table* table) : it_(table->heap_->Scan()) {}
    Iterator(const Table* table, PageId begin, PageId end)
        : it_(table->heap_->ScanRange(begin, end)) {}
    bool Next(Oid* oid, Tuple* tuple);

   private:
    HeapFile::Iterator it_;
  };
  Iterator Scan() const { return Iterator(this); }
  Iterator ScanRange(PageId begin, PageId end) const {
    return Iterator(this, begin, end);
  }

  /// Heap-file scan extent in pages (the domain morsel sources split).
  PageId heap_pages() const { return heap_->num_pages(); }

  /// Storage footprint of the heap file in bytes.
  uint64_t heap_bytes() const;
  /// Storage footprint of the OID index in bytes.
  uint64_t oid_index_bytes() const;
  /// Storage footprint of one secondary column index (0 when absent).
  uint64_t column_index_bytes(const std::string& column) const;

 private:
  Table(StorageManager* storage, BufferPool* pool, std::string name,
        Schema schema)
      : storage_(storage),
        pool_(pool),
        name_(std::move(name)),
        schema_(std::move(schema)) {}

  static std::string EncodeRecord(Oid oid, const Tuple& tuple);
  static Result<std::pair<Oid, Tuple>> DecodeRecord(std::string_view rec);

  Status IndexInsert(Oid oid, const Tuple& tuple);
  Status IndexDelete(Oid oid, const Tuple& tuple);

  StorageManager* storage_;
  BufferPool* pool_;
  std::string name_;
  Schema schema_;
  std::unique_ptr<HeapFile> heap_;
  std::unique_ptr<BTree> oid_index_;
  FileId heap_file_ = 0;
  FileId oid_index_file_ = 0;

  struct ColumnIndex {
    size_t column_pos;
    FileId file;
    std::unique_ptr<BTree> tree;
  };
  std::map<std::string, ColumnIndex> column_indexes_;

  Oid next_oid_ = 1;
  uint64_t num_rows_ = 0;
};

}  // namespace insight

#endif  // INSIGHTNOTES_INDEX_TABLE_H_
