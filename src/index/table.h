#ifndef INSIGHTNOTES_INDEX_TABLE_H_
#define INSIGHTNOTES_INDEX_TABLE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "index/btree.h"
#include "storage/heap_file.h"
#include "storage/storage_manager.h"
#include "storage/zone_map.h"
#include "txn/txn.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace insight {

/// A user relation: slotted heap file + a B-Tree on the OID column (the
/// paper's `diskTupleLoc()` helper with cost O(log_B M)) + optional
/// secondary B-Tree indexes on data columns.
///
/// Heap records are versioned: `oid || begin_ts || end_ts || tuple`. A row
/// may have several versions (same OID, disjoint [begin, end) lifetimes);
/// reads carry a Snapshot and see exactly one. When the calling thread has
/// a current transaction (CurrentTxn()), writes create/stamp versions and
/// register restamp/undo/GC closures on it; without one they apply with
/// begin=0 / end=forever — immediately visible to every snapshot — which
/// is the WAL-replay and embedded single-writer mode.
///
/// First-writer-wins: a transactional write to a row whose newest version
/// is uncommitted-by-another or committed past the writer's snapshot
/// returns kAborted.
class Table {
 public:
  /// Creates the heap and OID-index files under `name.*` in `storage`.
  static Result<std::unique_ptr<Table>> Create(StorageManager* storage,
                                               BufferPool* pool,
                                               std::string name,
                                               Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  uint64_t num_rows() const {
    return num_rows_.load(std::memory_order_relaxed);
  }

  /// Inserts a tuple; assigns and returns its OID.
  Result<Oid> Insert(const Tuple& tuple);

  /// Inserts a tuple under a caller-chosen OID and bumps the allocator
  /// past it. WAL replay uses this to reproduce the original OIDs; the
  /// OID must not already be present.
  Status InsertWithOid(Oid oid, const Tuple& tuple);

  /// Next OID Insert would assign (checkpoint snapshots record it).
  Oid next_oid() const { return next_oid_.load(std::memory_order_relaxed); }

  /// Names of columns that have a secondary index, in index order.
  std::vector<std::string> IndexedColumns() const;

  /// Fetches the version visible to `snap` by OID.
  Result<Tuple> Get(Oid oid, const Snapshot& snap = Snapshot::Latest()) const;

  /// The paper's diskTupleLoc(): heap location of the tuple version
  /// visible to `snap`, given its OID.
  Result<RowLocation> DiskTupleLoc(
      Oid oid, const Snapshot& snap = Snapshot::Latest()) const;

  /// Direct heap fetch by location (Summary-BTree backward pointers land
  /// here without touching the OID index). If the version at `loc` is not
  /// visible to `snap`, falls back to the visible sibling version of the
  /// same OID (NotFound when none).
  Result<Tuple> GetAt(RowLocation loc, Oid* oid_out = nullptr,
                      const Snapshot& snap = Snapshot::Latest()) const;

  /// Deletes the row (end-stamps its visible version under a transaction;
  /// physically removes it otherwise).
  Status Delete(Oid oid);

  /// Rewrites a tuple. Under a transaction this installs a new version
  /// and end-stamps the old one (first-writer-wins on conflicts); without
  /// one it rewrites in place.
  Status Update(Oid oid, const Tuple& tuple);

  /// Builds a secondary B-Tree index on one data column. Key = encoded
  /// column value, payload = OID. Backfills every existing version, so
  /// index probes at any snapshot find their rows (probes re-check
  /// visibility against the fetched version).
  Status CreateColumnIndex(const std::string& column);

  bool HasColumnIndex(const std::string& column) const;
  const BTree* GetColumnIndex(const std::string& column) const;

  /// One stored version of a row (diagnostics, conflict checks, GC).
  struct VersionInfo {
    RowLocation loc;
    Ts begin = 0;
    Ts end = kTsInfinity;
  };

  /// Every stored version of `oid`, any stamp (empty when unknown).
  Result<std::vector<VersionInfo>> GetVersions(Oid oid) const;

  /// Every stored version's tuple for `oid`, any stamp. Zone-map label
  /// maintenance unions label counts over these so rebuilt bounds stay
  /// conservative for every snapshot.
  Result<std::vector<Tuple>> GetVersionTuples(Oid oid) const;

  /// First-writer-wins admission check for inserting a row that `snap`
  /// believes absent but an index says may exist: kAborted when any
  /// version of `oid` was written by another open transaction or
  /// committed after the snapshot; OK when every version is dead history.
  Status CheckInsertConflict(Oid oid, const Snapshot& snap) const;

  /// Scan yielding (oid, tuple) versions visible to the iterator's
  /// snapshot, in heap order. The page-range form backs morsel-driven
  /// parallel scans: workers walk disjoint ranges.
  class Iterator {
   public:
    Iterator(const Table* table, Snapshot snap)
        : it_(table->heap_->Scan()), snap_(snap) {}
    Iterator(const Table* table, PageId begin, PageId end, Snapshot snap)
        : it_(table->heap_->ScanRange(begin, end)), snap_(snap) {}
    bool Next(Oid* oid, Tuple* tuple);

    /// Installs zone-map pruning: pages `zones` can refute under `pred`
    /// are skipped before they are pinned. `pages_skipped` (optional)
    /// is bumped per pruned page and must outlive the iterator.
    void EnableZonePruning(const ZoneMapStore* zones, ZonePredicate pred,
                           uint64_t* pages_skipped);

   private:
    HeapFile::Iterator it_;
    Snapshot snap_;
  };
  Iterator Scan(const Snapshot& snap = Snapshot::Latest()) const {
    return Iterator(this, snap);
  }
  Iterator ScanRange(PageId begin, PageId end,
                     const Snapshot& snap = Snapshot::Latest()) const {
    return Iterator(this, begin, end, snap);
  }

  /// Heap-file scan extent in pages (the domain morsel sources split).
  PageId heap_pages() const { return heap_->num_pages(); }

  // ---- Zone maps (per-page min/max pruning state) ----
  /// Derived, memory-resident per-page bounds. Writes widen them, deletes
  /// and undo only mark pages stale (widen-only invariant), so scans may
  /// consult them at any time without false skips. Repopulated by
  /// recovery/replication replay through the ordinary write paths.
  ZoneMapStore* zone_maps() const { return zones_.get(); }

  /// Callback providing one row's summary-label counts (lowercased
  /// "instance.label" -> count, unioned over every stored summary
  /// version). SummaryManager installs it so label bounds follow a row to
  /// whatever page its versions land on.
  using ZoneLabelSource =
      std::function<Status(Oid, std::vector<std::pair<std::string, int64_t>>*)>;
  void SetZoneLabelSource(ZoneLabelSource source) {
    zone_label_source_ = std::move(source);
  }
  bool HasZoneLabelSource() const { return zone_label_source_ != nullptr; }

  /// Re-derives bounds for every stale page from ALL stored versions
  /// (conservative for every snapshot). Callers serialize with writers —
  /// the engine runs it from its maintenance/checkpoint path.
  Status MaintainZoneMaps();

  /// Storage footprint of the heap file in bytes.
  uint64_t heap_bytes() const;
  /// Storage footprint of the OID index in bytes.
  uint64_t oid_index_bytes() const;
  /// Storage footprint of one secondary column index (0 when absent).
  uint64_t column_index_bytes(const std::string& column) const;

 private:
  Table(StorageManager* storage, BufferPool* pool, std::string name,
        Schema schema)
      : storage_(storage),
        pool_(pool),
        name_(std::move(name)),
        schema_(std::move(schema)) {}

  static std::string EncodeRecord(Oid oid, Ts begin, Ts end,
                                  const Tuple& tuple);
  struct DecodedRecord {
    Oid oid;
    Ts begin;
    Ts end;
    Tuple tuple;
  };
  static Result<DecodedRecord> DecodeRecord(std::string_view rec);

  /// Shared insert path: stamps per CurrentTxn() and registers closures.
  Status InsertRecord(Oid oid, const Tuple& tuple);

  /// Loads and decodes every version of `oid` (with tuples).
  Result<std::vector<std::pair<DecodedRecord, RowLocation>>> LoadVersions(
      Oid oid) const;

  // ---- Version plumbing used by transaction closures ----
  /// Overwrites the begin stamp of the version currently stamped
  /// `marker`.
  Status RestampBegin(Oid oid, Ts marker, Ts new_begin);
  /// Overwrites the end stamp of the version currently stamped `marker`.
  Status RestampEnd(Oid oid, Ts marker, Ts new_end);
  /// Physically removes the version whose begin stamp is `marker`
  /// (insert undo).
  Status RemoveVersionWithBegin(Oid oid, Ts marker);
  /// Physically removes every version of `oid` whose committed end stamp
  /// is <= horizon (epoch GC of dead versions).
  Status VacuumOid(Oid oid, Ts horizon);

  /// True when another stored version of `oid` (excluding `exclude`) has
  /// `value` in column `column_pos` — guards column-index entry reuse.
  Result<bool> ValueInOtherVersion(Oid oid, size_t column_pos,
                                   const Value& value,
                                   RowLocation exclude) const;

  /// Widens `page`'s label bounds with the oid's summary counts (no-op
  /// without an installed label source).
  void WidenOidLabels(PageId page, Oid oid);

  Status IndexInsert(Oid oid, const Tuple& tuple);
  Status IndexDelete(Oid oid, const Tuple& tuple);
  /// Index maintenance that keeps entries shared by other versions.
  Status IndexInsertVersioned(Oid oid, const Tuple& tuple, RowLocation loc);
  Status IndexDeleteVersioned(Oid oid, const Tuple& tuple, RowLocation loc);

  StorageManager* storage_;
  BufferPool* pool_;
  std::string name_;
  Schema schema_;
  std::unique_ptr<HeapFile> heap_;
  std::unique_ptr<BTree> oid_index_;
  FileId heap_file_ = 0;
  FileId oid_index_file_ = 0;

  struct ColumnIndex {
    size_t column_pos;
    FileId file;
    std::unique_ptr<BTree> tree;
  };
  std::map<std::string, ColumnIndex> column_indexes_;

  std::unique_ptr<ZoneMapStore> zones_;
  ZoneLabelSource zone_label_source_;

  std::atomic<Oid> next_oid_{1};
  std::atomic<uint64_t> num_rows_{0};
};

}  // namespace insight

#endif  // INSIGHTNOTES_INDEX_TABLE_H_
