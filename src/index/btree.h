#ifndef INSIGHTNOTES_INDEX_BTREE_H_
#define INSIGHTNOTES_INDEX_BTREE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace insight {

/// An entry in the tree: a byte-string key plus a 64-bit payload (packed
/// RowLocation or OID). Duplicate keys are supported; entries order by
/// (key, value) so every stored entry is unique and deletion is exact.
struct BTreeEntry {
  std::string key;
  uint64_t value = 0;
};

/// Three-way comparison on (key, value).
int CompareEntries(std::string_view a_key, uint64_t a_val,
                   std::string_view b_key, uint64_t b_val);

/// Disk-resident B+Tree over the buffer pool. One tree per page file.
/// Page 0 is a meta page (root pointer, entry count, height); leaves are
/// chained for range scans.
///
/// Deletion is lazy (no merge/borrow): removing entries never shrinks the
/// tree, matching the paper's workload where class-label counts are
/// deleted and immediately re-inserted on every annotation update.
///
/// Thread-safe via one internal reader/writer latch per tree: mutators
/// are exclusive, probes shared. Scans materialize their result set
/// under the shared latch and release it before returning, so no latch
/// is ever held across query execution.
class BTree {
 public:
  /// Creates a fresh tree in an empty page file.
  static Result<BTree> Create(BufferPool* pool, FileId file);

  /// Opens an existing tree.
  static Result<BTree> Open(BufferPool* pool, FileId file);

  BTree(BTree&&) = default;
  BTree& operator=(BTree&&) = default;

  Status Insert(std::string_view key, uint64_t value);

  /// Removes the exact (key, value) entry; NotFound if absent.
  Status Delete(std::string_view key, uint64_t value);

  /// True if at least one entry with this key exists.
  Result<bool> Contains(std::string_view key) const;

  /// Collects the payloads of all entries with exactly this key.
  Result<std::vector<uint64_t>> Lookup(std::string_view key) const;

  /// Forward iterator over a [lower, upper] key range. The range is
  /// materialized when the iterator is created (under the tree latch);
  /// iteration itself touches no shared state, so concurrent mutators
  /// cannot invalidate a live iterator.
  class Iterator {
   public:
    bool Valid() const { return pos_ < entries_.size(); }
    const std::string& key() const { return entries_[pos_].key; }
    uint64_t value() const { return entries_[pos_].value; }

    /// Advances; clears Valid() at the end of the range.
    void Next() {
      if (pos_ < entries_.size()) ++pos_;
    }

    const Status& status() const { return status_; }

   private:
    friend class BTree;
    Iterator() = default;

    std::vector<BTreeEntry> entries_;  // Materialized result set.
    size_t pos_ = 0;
    Status status_;
  };

  /// Entries with lower <= key <= upper (flags make either bound strict).
  /// Matches the paper's range probe: start key "label:c1", stop key
  /// "label:c2".
  Result<Iterator> RangeScan(std::string_view lower, bool lower_inclusive,
                             std::string_view upper,
                             bool upper_inclusive) const;

  /// All entries in key order.
  Result<Iterator> ScanAll() const;

  uint64_t num_entries() const {
    std::shared_lock<std::shared_mutex> lk(*latch_);
    return num_entries_;
  }
  uint32_t height() const {
    std::shared_lock<std::shared_mutex> lk(*latch_);
    return height_;
  }

 private:
  BTree(BufferPool* pool, FileId file)
      : pool_(pool),
        file_(file),
        latch_(std::make_unique<std::shared_mutex>()) {}

  // In-memory image of one node; (de)serialized to a page on each access.
  struct Node {
    bool is_leaf = true;
    // Leaf: keys/values parallel. Internal: keys/values are separators
    // ((key, value) of the smallest entry of children[i + 1]).
    std::vector<std::string> keys;
    std::vector<uint64_t> values;
    std::vector<PageId> children;  // Internal only: keys.size() + 1.
    PageId next_leaf = kInvalidPageId;

    size_t SerializedSize() const;
  };

  struct SplitResult {
    std::string sep_key;
    uint64_t sep_value;
    PageId new_page;
  };

  Result<Node> ReadNode(PageId page) const;
  Status WriteNode(PageId page, const Node& node);
  Result<PageId> AllocNode(const Node& node);

  Status ReadMeta();
  Status WriteMeta();

  /// Recursive insert; returns a split descriptor when `page` split.
  Result<std::optional<SplitResult>> InsertRec(PageId page,
                                               std::string_view key,
                                               uint64_t value);

  /// Leaf page that may contain (key, value); descends the tree.
  Result<PageId> FindLeaf(std::string_view key, uint64_t value) const;

  BufferPool* pool_;
  FileId file_;
  // unique_ptr keeps BTree movable (shared_mutex is not).
  mutable std::unique_ptr<std::shared_mutex> latch_;
  PageId root_ = kInvalidPageId;
  uint64_t num_entries_ = 0;
  uint32_t height_ = 1;
};

}  // namespace insight

#endif  // INSIGHTNOTES_INDEX_BTREE_H_
