#ifndef INSIGHTNOTES_WAL_FAULT_INJECTION_H_
#define INSIGHTNOTES_WAL_FAULT_INJECTION_H_

#include <atomic>
#include <memory>
#include <string>

#include "storage/page_store.h"

namespace insight {

/// PageStore decorator that injects faults on the data-page path:
///   - kill-point crashes: hits a named CrashPoint before every write /
///     sync, so a test can die between the log fsync and the page write;
///   - deterministic I/O errors: after `fail_writes_after` successful
///     writes, every further write returns IOError (Status-propagation
///     coverage for the flush paths);
///   - torn page writes: the first failing write persists only the first
///     half of the page before reporting the error, like a real partial
///     sector write.
///
/// Install via StorageManager::set_store_interceptor so every page file a
/// Database creates is wrapped.
class FaultInjectingPageStore : public PageStore {
 public:
  struct Options {
    std::string crash_point_on_write;  // Hit before each WritePage.
    std::string crash_point_on_sync;   // Hit before each Sync.
    int fail_writes_after = -1;        // <0 disables error injection.
    bool torn_write = false;           // Half-write on the failing write.
  };

  FaultInjectingPageStore(std::unique_ptr<PageStore> base, Options options)
      : base_(std::move(base)), options_(std::move(options)) {}

  Result<PageId> AllocatePage() override { return base_->AllocatePage(); }
  Status ReadPage(PageId id, Page* out) override;
  Status WritePage(PageId id, const Page& page) override;
  Status Sync() override;
  PageId num_pages() const override { return base_->num_pages(); }

  uint64_t reads() const { return reads_.load(); }
  uint64_t writes() const { return writes_.load(); }
  uint64_t syncs() const { return syncs_.load(); }

  PageStore* base() { return base_.get(); }

 private:
  std::unique_ptr<PageStore> base_;
  Options options_;
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> syncs_{0};
};

}  // namespace insight

#endif  // INSIGHTNOTES_WAL_FAULT_INJECTION_H_
