#include "wal/crash_point.h"

#include <unistd.h>

#include <atomic>
#include <mutex>
#include <set>

namespace insight {

namespace {
std::mutex g_mu;
std::set<std::string> g_armed;
// Fast path: DML and flush loops cross crash points constantly; skip the
// lock entirely while nothing is armed.
std::atomic<bool> g_any_armed{false};
}  // namespace

void ArmCrashPoint(const std::string& name) {
  std::lock_guard<std::mutex> lk(g_mu);
  g_armed.insert(name);
  g_any_armed.store(true, std::memory_order_release);
}

void DisarmCrashPoints() {
  std::lock_guard<std::mutex> lk(g_mu);
  g_armed.clear();
  g_any_armed.store(false, std::memory_order_release);
}

bool CrashPointArmed(const std::string& name) {
  if (!g_any_armed.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lk(g_mu);
  return g_armed.count(name) > 0;
}

void HitCrashPoint(const char* name) {
  if (CrashPointArmed(name)) {
    // _Exit: no atexit handlers, no stream flushes, no destructors — the
    // process dies with whatever it managed to fsync, like a crash.
    ::_Exit(kCrashPointExitCode);
  }
}

const std::vector<std::string>& RegisteredCrashPoints() {
  static const std::vector<std::string> kPoints = {
      "wal_append",               // Logical record enters the log buffer.
      "wal_sync_begin",           // Group commit before any byte reaches the file.
      "wal_sync_partial",         // Mid-batch: a torn record tail on disk.
      "wal_sync_before_fsync",    // Bytes written, durability not yet forced.
      "wal_sync_after_fsync",     // Batch durable, waiters not yet released.
      "bufferpool_flush_page",    // Checkpoint page writeback, per page.
      "pagestore_sync",           // Data-file fsync during checkpoint.
      "checkpoint_begin",         // Snapshot record appended, not yet synced.
      "checkpoint_after_flush",   // Pages flushed, end record not written.
      "checkpoint_end",           // Checkpoint sealed and durable.
      "sbtree_maintenance",       // Summary-BTree upkeep mid-flight.
      "txn_commit_appended",      // Commit record buffered, not yet durable:
                                  // recovery must drop the whole txn unless
                                  // the record reached the disk.
      "txn_commit_durable",       // Commit record fsynced, ack unsent: the
                                  // txn is committed and must survive.
      "txn_abort_mid",            // In-memory undo done, abort record not
                                  // yet appended; replay must still skip
                                  // every op of the unfinished txn.
      "zonemap_maintain",         // Mid zone-map re-derivation (checkpoint
                                  // runs it after sealing): zone maps are
                                  // derived state, recovery must rebuild
                                  // them with no false skips.
  };
  return kPoints;
}

const std::vector<std::string>& ServingCrashPoints() {
  static const std::vector<std::string> kPoints = {
      "net_before_reply",     // Statement executed + WAL-synced, reply unsent:
                              // the client sees a dropped connection for a
                              // change that recovery must preserve.
      "repl_before_ship",     // Commit durable on the primary, log frame not
                              // yet handed to any subscriber: replicas catch
                              // up from their own log after promotion.
      "repl_after_ship",      // Log frame queued to subscribers, client ack
                              // unsent: a promoted replica may hold commits
                              // the client never saw acknowledged.
      "repl_after_ack_read",  // Primary consumed a ReplicaAck, then died:
                              // acked state must survive on the replica.
  };
  return kPoints;
}

}  // namespace insight
