#include "wal/wal_record.h"

#include <array>

#include "common/serde.h"

namespace insight {

const char* WalRecordTypeToString(WalRecordType type) {
  switch (type) {
    case WalRecordType::kNoop:
      return "Noop";
    case WalRecordType::kCreateTable:
      return "CreateTable";
    case WalRecordType::kInsert:
      return "Insert";
    case WalRecordType::kDelete:
      return "Delete";
    case WalRecordType::kDefineInstance:
      return "DefineInstance";
    case WalRecordType::kLinkInstance:
      return "LinkInstance";
    case WalRecordType::kUnlinkInstance:
      return "UnlinkInstance";
    case WalRecordType::kAnnotate:
      return "Annotate";
    case WalRecordType::kRemoveAnnotation:
      return "RemoveAnnotation";
    case WalRecordType::kCreateIndex:
      return "CreateIndex";
    case WalRecordType::kCheckpointBegin:
      return "CheckpointBegin";
    case WalRecordType::kCheckpointEnd:
      return "CheckpointEnd";
    case WalRecordType::kTxnCommit:
      return "TxnCommit";
    case WalRecordType::kTxnAbort:
      return "TxnAbort";
    case WalRecordType::kTxnOp:
      return "TxnOp";
    case WalRecordType::kTxnBegin:
      return "TxnBegin";
    case WalRecordType::kStatsSketch:
      return "StatsSketch";
  }
  return "Unknown";
}

uint32_t Crc32(std::string_view data, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      table[i] = c;
    }
    return table;
  }();
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    crc = kTable[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

namespace {

Status CorruptPayload(const char* what) {
  return Status::Corruption(std::string("wal payload: ") + what);
}

void PutSchema(std::string* dst, const Schema& schema) {
  PutU32(dst, static_cast<uint32_t>(schema.num_columns()));
  for (const Column& col : schema.columns()) {
    PutString(dst, col.name);
    PutU8(dst, static_cast<uint8_t>(col.type));
  }
}

bool ReadSchema(SerdeReader* reader, Schema* out) {
  uint32_t n;
  if (!reader->ReadU32(&n)) return false;
  std::vector<Column> columns;
  columns.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Column col;
    uint8_t type;
    if (!reader->ReadString(&col.name) || !reader->ReadU8(&type)) {
      return false;
    }
    col.type = static_cast<ValueType>(type);
    columns.push_back(std::move(col));
  }
  *out = Schema(std::move(columns));
  return true;
}

}  // namespace

std::string WalCreateTable::Encode() const {
  std::string out;
  PutString(&out, table);
  PutSchema(&out, schema);
  return out;
}

Result<WalCreateTable> WalCreateTable::Decode(std::string_view payload) {
  SerdeReader reader(payload);
  WalCreateTable rec;
  if (!reader.ReadString(&rec.table) || !ReadSchema(&reader, &rec.schema)) {
    return CorruptPayload("CreateTable");
  }
  return rec;
}

std::string WalInsert::Encode() const {
  std::string out;
  PutString(&out, table);
  PutU64(&out, oid);
  tuple.Serialize(&out);
  return out;
}

Result<WalInsert> WalInsert::Decode(std::string_view payload) {
  SerdeReader reader(payload);
  WalInsert rec;
  if (!reader.ReadString(&rec.table) || !reader.ReadU64(&rec.oid)) {
    return CorruptPayload("Insert");
  }
  INSIGHT_ASSIGN_OR_RETURN(rec.tuple, Tuple::Deserialize(&reader));
  return rec;
}

std::string WalDelete::Encode() const {
  std::string out;
  PutString(&out, table);
  PutU64(&out, oid);
  return out;
}

Result<WalDelete> WalDelete::Decode(std::string_view payload) {
  SerdeReader reader(payload);
  WalDelete rec;
  if (!reader.ReadString(&rec.table) || !reader.ReadU64(&rec.oid)) {
    return CorruptPayload("Delete");
  }
  return rec;
}

std::string WalInstanceDef::Encode() const {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(kind));
  PutString(&out, name);
  PutU32(&out, static_cast<uint32_t>(labels.size()));
  for (const std::string& label : labels) PutString(&out, label);
  PutU32(&out, static_cast<uint32_t>(training.size()));
  for (const auto& [text, label] : training) {
    PutString(&out, text);
    PutString(&out, label);
  }
  PutU64(&out, snippet_min_chars);
  PutU64(&out, snippet_max_chars);
  PutDouble(&out, cluster_min_similarity);
  return out;
}

Result<WalInstanceDef> WalInstanceDef::Decode(std::string_view payload) {
  SerdeReader reader(payload);
  WalInstanceDef def;
  uint8_t kind;
  if (!reader.ReadU8(&kind) || !reader.ReadString(&def.name)) {
    return CorruptPayload("DefineInstance");
  }
  if (kind > static_cast<uint8_t>(Kind::kCluster)) {
    return CorruptPayload("DefineInstance kind");
  }
  def.kind = static_cast<Kind>(kind);
  uint32_t n;
  if (!reader.ReadU32(&n)) return CorruptPayload("DefineInstance labels");
  for (uint32_t i = 0; i < n; ++i) {
    std::string label;
    if (!reader.ReadString(&label)) {
      return CorruptPayload("DefineInstance labels");
    }
    def.labels.push_back(std::move(label));
  }
  if (!reader.ReadU32(&n)) return CorruptPayload("DefineInstance training");
  for (uint32_t i = 0; i < n; ++i) {
    std::string text, label;
    if (!reader.ReadString(&text) || !reader.ReadString(&label)) {
      return CorruptPayload("DefineInstance training");
    }
    def.training.emplace_back(std::move(text), std::move(label));
  }
  if (!reader.ReadU64(&def.snippet_min_chars) ||
      !reader.ReadU64(&def.snippet_max_chars) ||
      !reader.ReadDouble(&def.cluster_min_similarity)) {
    return CorruptPayload("DefineInstance params");
  }
  return def;
}

std::string WalLinkInstance::Encode() const {
  std::string out;
  PutString(&out, table);
  PutString(&out, instance);
  PutU8(&out, indexable ? 1 : 0);
  return out;
}

Result<WalLinkInstance> WalLinkInstance::Decode(std::string_view payload) {
  SerdeReader reader(payload);
  WalLinkInstance rec;
  uint8_t indexable;
  if (!reader.ReadString(&rec.table) || !reader.ReadString(&rec.instance) ||
      !reader.ReadU8(&indexable)) {
    return CorruptPayload("LinkInstance");
  }
  rec.indexable = indexable != 0;
  return rec;
}

std::string WalUnlinkInstance::Encode() const {
  std::string out;
  PutString(&out, table);
  PutString(&out, instance);
  return out;
}

Result<WalUnlinkInstance> WalUnlinkInstance::Decode(
    std::string_view payload) {
  SerdeReader reader(payload);
  WalUnlinkInstance rec;
  if (!reader.ReadString(&rec.table) || !reader.ReadString(&rec.instance)) {
    return CorruptPayload("UnlinkInstance");
  }
  return rec;
}

std::string WalAnnotate::Encode() const {
  std::string out;
  PutString(&out, table);
  PutU64(&out, ann_id);
  PutString(&out, text);
  PutU32(&out, static_cast<uint32_t>(targets.size()));
  for (const auto& [oid, mask] : targets) {
    PutU64(&out, oid);
    PutU64(&out, mask);
  }
  return out;
}

Result<WalAnnotate> WalAnnotate::Decode(std::string_view payload) {
  SerdeReader reader(payload);
  WalAnnotate rec;
  uint32_t n;
  if (!reader.ReadString(&rec.table) || !reader.ReadU64(&rec.ann_id) ||
      !reader.ReadString(&rec.text) || !reader.ReadU32(&n)) {
    return CorruptPayload("Annotate");
  }
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t oid, mask;
    if (!reader.ReadU64(&oid) || !reader.ReadU64(&mask)) {
      return CorruptPayload("Annotate targets");
    }
    rec.targets.emplace_back(oid, mask);
  }
  return rec;
}

std::string WalRemoveAnnotation::Encode() const {
  std::string out;
  PutString(&out, table);
  PutU64(&out, ann_id);
  return out;
}

Result<WalRemoveAnnotation> WalRemoveAnnotation::Decode(
    std::string_view payload) {
  SerdeReader reader(payload);
  WalRemoveAnnotation rec;
  if (!reader.ReadString(&rec.table) || !reader.ReadU64(&rec.ann_id)) {
    return CorruptPayload("RemoveAnnotation");
  }
  return rec;
}

std::string WalCreateIndex::Encode() const {
  std::string out;
  PutString(&out, table);
  PutString(&out, column);
  return out;
}

Result<WalCreateIndex> WalCreateIndex::Decode(std::string_view payload) {
  SerdeReader reader(payload);
  WalCreateIndex rec;
  if (!reader.ReadString(&rec.table) || !reader.ReadString(&rec.column)) {
    return CorruptPayload("CreateIndex");
  }
  return rec;
}

std::string WalCheckpointEnd::Encode() const {
  std::string out;
  PutU64(&out, begin_lsn);
  return out;
}

Result<WalCheckpointEnd> WalCheckpointEnd::Decode(std::string_view payload) {
  SerdeReader reader(payload);
  WalCheckpointEnd rec;
  if (!reader.ReadU64(&rec.begin_lsn)) return CorruptPayload("CheckpointEnd");
  return rec;
}

namespace {

std::string EncodeTxnId(uint64_t txn_id) {
  std::string out;
  PutU64(&out, txn_id);
  return out;
}

bool DecodeTxnId(std::string_view payload, uint64_t* txn_id) {
  SerdeReader reader(payload);
  return reader.ReadU64(txn_id);
}

}  // namespace

std::string WalTxnBegin::Encode() const { return EncodeTxnId(txn_id); }

Result<WalTxnBegin> WalTxnBegin::Decode(std::string_view payload) {
  WalTxnBegin rec;
  if (!DecodeTxnId(payload, &rec.txn_id)) return CorruptPayload("TxnBegin");
  return rec;
}

std::string WalTxnCommit::Encode() const { return EncodeTxnId(txn_id); }

Result<WalTxnCommit> WalTxnCommit::Decode(std::string_view payload) {
  WalTxnCommit rec;
  if (!DecodeTxnId(payload, &rec.txn_id)) return CorruptPayload("TxnCommit");
  return rec;
}

std::string WalTxnAbort::Encode() const { return EncodeTxnId(txn_id); }

Result<WalTxnAbort> WalTxnAbort::Decode(std::string_view payload) {
  WalTxnAbort rec;
  if (!DecodeTxnId(payload, &rec.txn_id)) return CorruptPayload("TxnAbort");
  return rec;
}

std::string WalTxnOp::Encode() const {
  std::string out;
  PutU64(&out, txn_id);
  PutU8(&out, static_cast<uint8_t>(inner_type));
  PutString(&out, inner_payload);
  return out;
}

Result<WalTxnOp> WalTxnOp::Decode(std::string_view payload) {
  SerdeReader reader(payload);
  WalTxnOp rec;
  uint8_t inner;
  if (!reader.ReadU64(&rec.txn_id) || !reader.ReadU8(&inner) ||
      !reader.ReadString(&rec.inner_payload)) {
    return CorruptPayload("TxnOp");
  }
  if (inner > static_cast<uint8_t>(WalRecordType::kTxnBegin)) {
    return CorruptPayload("TxnOp inner type");
  }
  rec.inner_type = static_cast<WalRecordType>(inner);
  return rec;
}

std::string WalStatsSketch::Encode() const {
  std::string out;
  PutString(&out, image);
  return out;
}

Result<WalStatsSketch> WalStatsSketch::Decode(std::string_view payload) {
  SerdeReader reader(payload);
  WalStatsSketch rec;
  if (!reader.ReadString(&rec.image)) return CorruptPayload("StatsSketch");
  return rec;
}

std::string WalSnapshot::Encode() const {
  std::string out;
  PutU64(&out, next_ann_id);
  PutU32(&out, static_cast<uint32_t>(ops.size()));
  for (const auto& [type, payload] : ops) {
    PutU8(&out, static_cast<uint8_t>(type));
    PutString(&out, payload);
  }
  return out;
}

Result<WalSnapshot> WalSnapshot::Decode(std::string_view payload) {
  SerdeReader reader(payload);
  WalSnapshot snap;
  uint32_t n;
  if (!reader.ReadU64(&snap.next_ann_id) || !reader.ReadU32(&n)) {
    return CorruptPayload("Snapshot header");
  }
  for (uint32_t i = 0; i < n; ++i) {
    uint8_t type;
    std::string op;
    if (!reader.ReadU8(&type) || !reader.ReadString(&op)) {
      return CorruptPayload("Snapshot op");
    }
    snap.ops.emplace_back(static_cast<WalRecordType>(type), std::move(op));
  }
  return snap;
}

}  // namespace insight
