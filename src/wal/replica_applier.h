#ifndef INSIGHTNOTES_WAL_REPLICA_APPLIER_H_
#define INSIGHTNOTES_WAL_REPLICA_APPLIER_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "wal/wal_record.h"

namespace insight {

/// Turns a live, in-order WAL stream into atomic apply units — the
/// stream-order analogue of RecoveryManager's two-pass replay. Recovery
/// can see the whole log and buffer ops before deciding; a replica sees
/// records one at a time, so this class buffers kTxnOp records per txn
/// *incarnation* (a kTxnBegin reopens its id) and seals a unit at each
/// kTxnCommit. Plain autocommit records seal immediately as one-op
/// units. kTxnAbort drops the incarnation's buffer; checkpoint records
/// are skipped (the replica already holds the state they snapshot — its
/// own restart recovery consumes them from the local log instead).
///
/// The primary ships only *durable* records, which is what makes commit
/// irrevocable here: the abort-revokes-commit pair recovery handles
/// (commit appended, fsync failed, rolled back) never becomes durable,
/// so it never reaches a replica.
class StreamingReplay {
 public:
  /// One (type, payload) op, dispatchable via RecoveryManager::ApplyOne.
  struct Op {
    WalRecordType type = WalRecordType::kNoop;
    std::string payload;
  };

  /// An atomically-visible batch: all ops of one committed txn, or one
  /// autocommit record. The replica wraps each unit in a local MVCC
  /// transaction so concurrent readers see it all-or-nothing.
  struct Unit {
    Lsn last_lsn = kInvalidLsn;  // LSN of the record that sealed the unit.
    bool ddl = false;            // Needs the exclusive DDL gate to apply.
    std::vector<Op> ops;
  };

  /// Feeds one record in LSN order; appends zero or one sealed unit to
  /// `*out`. Errors on undecodable txn wrappers.
  Status Feed(const WalRecord& rec, std::vector<Unit>* out);

  /// Rebuilds in-flight txn buffers from `records` (a replica's local
  /// log at startup), discarding sealed units — recovery already applied
  /// those. A txn that began before a replica restart and commits after
  /// resumes exactly where the log left it.
  Status Prime(const std::vector<WalRecord>& records);

  /// Transactions currently buffered (began, not yet committed/aborted).
  size_t open_txns() const { return buffered_.size(); }

 private:
  std::unordered_map<uint64_t, std::vector<Op>> buffered_;
};

}  // namespace insight

#endif  // INSIGHTNOTES_WAL_REPLICA_APPLIER_H_
