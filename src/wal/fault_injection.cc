#include "wal/fault_injection.h"

#include <cstring>

#include "wal/crash_point.h"

namespace insight {

Status FaultInjectingPageStore::ReadPage(PageId id, Page* out) {
  reads_.fetch_add(1);
  return base_->ReadPage(id, out);
}

Status FaultInjectingPageStore::WritePage(PageId id, const Page& page) {
  if (!options_.crash_point_on_write.empty()) {
    HitCrashPoint(options_.crash_point_on_write.c_str());
  }
  const uint64_t n = writes_.fetch_add(1);
  if (options_.fail_writes_after >= 0 &&
      n >= static_cast<uint64_t>(options_.fail_writes_after)) {
    if (options_.torn_write) {
      // Persist a half page so readers observe the tear, then fail.
      Page torn;
      Status read = base_->ReadPage(id, &torn);
      if (read.ok()) {
        std::memcpy(torn.data, page.data, kPageSize / 2);
        base_->WritePage(id, torn).ok();
      }
    }
    return Status::IOError("injected write fault on page " +
                           std::to_string(id));
  }
  return base_->WritePage(id, page);
}

Status FaultInjectingPageStore::Sync() {
  if (!options_.crash_point_on_sync.empty()) {
    HitCrashPoint(options_.crash_point_on_sync.c_str());
  }
  syncs_.fetch_add(1);
  return base_->Sync();
}

}  // namespace insight
