#ifndef INSIGHTNOTES_WAL_RECOVERY_MANAGER_H_
#define INSIGHTNOTES_WAL_RECOVERY_MANAGER_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "wal/wal_record.h"

namespace insight {

/// What recovery replays *into*. The Database implements this against its
/// internal (non-logging) apply paths; keeping the interface here lets
/// the wal layer stay below the sql layer.
class ReplayTarget {
 public:
  virtual ~ReplayTarget() = default;

  /// Raises the process-global annotation-id floor (snapshot restore).
  virtual Status ReplayAnnIdFloor(uint64_t next_ann_id) = 0;

  virtual Status ReplayCreateTable(const WalCreateTable& op) = 0;
  virtual Status ReplayCreateIndex(const WalCreateIndex& op) = 0;
  virtual Status ReplayInsert(const WalInsert& op) = 0;
  virtual Status ReplayDelete(const WalDelete& op) = 0;
  virtual Status ReplayDefineInstance(const WalInstanceDef& op) = 0;
  virtual Status ReplayLinkInstance(const WalLinkInstance& op) = 0;
  virtual Status ReplayUnlinkInstance(const WalUnlinkInstance& op) = 0;
  virtual Status ReplayAnnotate(const WalAnnotate& op) = 0;
  virtual Status ReplayRemoveAnnotation(const WalRemoveAnnotation& op) = 0;
  /// Installs a checkpointed online-statistics image (snapshot restore);
  /// the replay hooks above keep the sketches current for the WAL tail.
  virtual Status ReplayStatsSketch(const WalStatsSketch& op) = 0;
};

/// Drives crash recovery over a decoded log: locates the last *complete*
/// checkpoint (a CheckpointEnd whose matching CheckpointBegin is present),
/// restores its snapshot, then replays the tail past the checkpoint in
/// log order. With no complete checkpoint the whole log replays from the
/// beginning. Summary storage and summary indexes are rebuilt by the
/// replayed maintenance itself (Section 4.3's protocol re-applied).
///
/// Transactions make replay two-pass. Pass 1 buffers every kTxnOp by its
/// owning txn *incarnation* across the whole valid log (a txn may start
/// before a checkpoint and commit after it; txn ids restart after a
/// reboot, so a kTxnBegin opens a fresh incarnation of its id). Pass 2
/// walks the tail: plain records apply directly; a kTxnCommit record
/// flushes its incarnation's buffered ops, in original log order,
/// through the same dispatch. Txns with no commit record on disk —
/// explicitly aborted or cut off by the crash — are never applied, and a
/// kTxnAbort that follows a kTxnCommit for the same incarnation revokes
/// it (the commit hook failed before the record was known durable and
/// the txn was rolled back in memory), so recovery surfaces only state
/// that was actually reported committed.
class RecoveryManager {
 public:
  struct Stats {
    size_t records_seen = 0;      // Valid records in the log.
    size_t records_applied = 0;   // Replayed after the checkpoint.
    size_t snapshot_ops = 0;      // Ops restored from the snapshot.
    Lsn checkpoint_begin_lsn = kInvalidLsn;  // 0 = no complete checkpoint.
    size_t txns_committed = 0;    // Txns whose ops were replayed.
    size_t txns_discarded = 0;    // Aborted or dangling txns dropped.
    size_t txn_ops_applied = 0;   // Buffered ops replayed at commits.
  };

  /// Replays `records` (the log's valid prefix, in LSN order) into
  /// `target`. Checkpoint records steer recovery and are never forwarded
  /// to the target themselves.
  static Result<Stats> Replay(const std::vector<WalRecord>& records,
                              ReplayTarget* target);

  /// Decodes and dispatches one (type, payload) op. Shared by tail replay
  /// and snapshot restore — a snapshot is a sequence of embedded ops.
  static Status ApplyOne(WalRecordType type, std::string_view payload,
                         ReplayTarget* target);
};

}  // namespace insight

#endif  // INSIGHTNOTES_WAL_RECOVERY_MANAGER_H_
