#ifndef INSIGHTNOTES_WAL_CRASH_POINT_H_
#define INSIGHTNOTES_WAL_CRASH_POINT_H_

#include <string>
#include <vector>

namespace insight {

/// Kill-point fault injection: recovery tests arm a named point and run a
/// workload; the first code path that reaches the armed point terminates
/// the process immediately (`_Exit`, no destructors, no flushes), which is
/// the closest in-process approximation of a crash. The harness then
/// reopens the database directory and asserts recovery converges.
///
/// Note the fidelity limit of process-kill testing: bytes already handed
/// to the OS (written but not fsynced) survive a process kill even though
/// they would not survive a power cut, so the pre-/post-fsync points
/// differ in protocol coverage, not in observable loss.

/// Exit code used by HitCrashPoint so harnesses can tell an injected
/// crash from an ordinary failure.
inline constexpr int kCrashPointExitCode = 86;

/// Arms one crash point (process-wide). Points survive fork, so a test
/// can arm in a child before driving the workload.
void ArmCrashPoint(const std::string& name);

/// Disarms everything (test teardown).
void DisarmCrashPoints();

bool CrashPointArmed(const std::string& name);

/// Terminates the process with kCrashPointExitCode when `name` is armed;
/// no-op otherwise. Never returns after an armed hit.
void HitCrashPoint(const char* name);

/// Every point name the code base registers, for kill-point matrix tests
/// (a point is "registered" by appearing in this list AND being reachable
/// through the public API).
const std::vector<std::string>& RegisteredCrashPoints();

/// Crash points that only fire while serving network traffic (insightd).
/// Kept out of RegisteredCrashPoints() because the storage-level matrix
/// workload never opens a socket; the net stress tests exercise these.
const std::vector<std::string>& ServingCrashPoints();

}  // namespace insight

/// Annotates a kill point in durability-critical code. Zero-cost when
/// nothing is armed beyond one set lookup guarded by an atomic emptiness
/// flag.
#define INSIGHT_CRASH_POINT(name) ::insight::HitCrashPoint(name)

#endif  // INSIGHTNOTES_WAL_CRASH_POINT_H_
