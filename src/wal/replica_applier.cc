#include "wal/replica_applier.h"

#include <utility>

namespace insight {

namespace {

bool IsDdl(WalRecordType type) {
  switch (type) {
    case WalRecordType::kCreateTable:
    case WalRecordType::kCreateIndex:
    case WalRecordType::kDefineInstance:
    case WalRecordType::kLinkInstance:
    case WalRecordType::kUnlinkInstance:
      return true;
    default:
      return false;
  }
}

}  // namespace

Status StreamingReplay::Feed(const WalRecord& rec, std::vector<Unit>* out) {
  switch (rec.type) {
    case WalRecordType::kNoop:
    case WalRecordType::kCheckpointBegin:
    case WalRecordType::kCheckpointEnd:
      return Status::OK();
    case WalRecordType::kTxnBegin: {
      INSIGHT_ASSIGN_OR_RETURN(WalTxnBegin begin,
                               WalTxnBegin::Decode(rec.payload));
      buffered_[begin.txn_id].clear();  // Fresh incarnation of the id.
      return Status::OK();
    }
    case WalRecordType::kTxnOp: {
      INSIGHT_ASSIGN_OR_RETURN(WalTxnOp op, WalTxnOp::Decode(rec.payload));
      buffered_[op.txn_id].push_back(
          Op{op.inner_type, std::move(op.inner_payload)});
      return Status::OK();
    }
    case WalRecordType::kTxnCommit: {
      INSIGHT_ASSIGN_OR_RETURN(WalTxnCommit commit,
                               WalTxnCommit::Decode(rec.payload));
      auto it = buffered_.find(commit.txn_id);
      if (it == buffered_.end() || it->second.empty()) {
        if (it != buffered_.end()) buffered_.erase(it);
        return Status::OK();  // Read-only or unknown txn: nothing to apply.
      }
      Unit unit;
      unit.last_lsn = rec.lsn;
      unit.ops = std::move(it->second);
      for (const Op& op : unit.ops) {
        if (IsDdl(op.type)) {
          unit.ddl = true;
          break;
        }
      }
      buffered_.erase(it);
      out->push_back(std::move(unit));
      return Status::OK();
    }
    case WalRecordType::kTxnAbort: {
      INSIGHT_ASSIGN_OR_RETURN(WalTxnAbort abort,
                               WalTxnAbort::Decode(rec.payload));
      buffered_.erase(abort.txn_id);
      return Status::OK();
    }
    default: {
      // Autocommit DML/DDL: one record, one unit.
      Unit unit;
      unit.last_lsn = rec.lsn;
      unit.ddl = IsDdl(rec.type);
      unit.ops.push_back(Op{rec.type, rec.payload});
      out->push_back(std::move(unit));
      return Status::OK();
    }
  }
}

Status StreamingReplay::Prime(const std::vector<WalRecord>& records) {
  std::vector<Unit> discard;
  for (const WalRecord& rec : records) {
    INSIGHT_RETURN_NOT_OK(Feed(rec, &discard));
    discard.clear();  // Recovery already applied everything sealed here.
  }
  return Status::OK();
}

}  // namespace insight
