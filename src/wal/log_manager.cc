#include "wal/log_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/serde.h"
#include "obs/metrics.h"
#include "storage/page_store.h"
#include "wal/crash_point.h"

namespace insight {

namespace {

Status IOErrorFor(const std::string& what, const std::string& path) {
  return Status::IOError(what + " " + path + ": " + std::strerror(errno));
}

/// Reads the entire file into `out` (pread loop, EINTR-safe).
Status ReadWholeFile(int fd, const std::string& path, std::string* out) {
  struct stat st;
  if (::fstat(fd, &st) != 0) return IOErrorFor("fstat", path);
  out->resize(static_cast<size_t>(st.st_size));
  size_t done = 0;
  while (done < out->size()) {
    const ssize_t n =
        ::pread(fd, out->data() + done, out->size() - done, done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IOErrorFor("pread", path);
    }
    if (n == 0) {  // Concurrent truncation; treat the rest as missing.
      out->resize(done);
      break;
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

constexpr size_t kFrameHeaderBytes = 8;  // u32 len + u32 crc.
constexpr uint32_t kMaxRecordBytes = 1u << 30;

void FrameRecord(std::string* dst, Lsn lsn, WalRecordType type,
                 std::string_view payload) {
  std::string body;
  body.reserve(9 + payload.size());
  PutU64(&body, lsn);
  PutU8(&body, static_cast<uint8_t>(type));
  body.append(payload);
  PutU32(dst, static_cast<uint32_t>(body.size()));
  PutU32(dst, Crc32(body));
  dst->append(body);
}

}  // namespace

std::vector<WalRecord> LogManager::ScanValidPrefix(std::string_view data,
                                                   uint64_t* valid_end) {
  std::vector<WalRecord> records;
  size_t pos = 0;
  Lsn expected = 1;
  while (pos + kFrameHeaderBytes <= data.size()) {
    uint32_t len, crc;
    std::memcpy(&len, data.data() + pos, 4);
    std::memcpy(&crc, data.data() + pos + 4, 4);
    if (len < 9 || len > kMaxRecordBytes) break;
    if (pos + kFrameHeaderBytes + len > data.size()) break;  // Torn tail.
    const std::string_view body =
        data.substr(pos + kFrameHeaderBytes, len);
    if (Crc32(body) != crc) break;  // Bit rot or torn overwrite.
    SerdeReader reader(body);
    WalRecord record;
    uint8_t type;
    if (!reader.ReadU64(&record.lsn) || !reader.ReadU8(&type)) break;
    if (type > static_cast<uint8_t>(WalRecordType::kTxnBegin)) break;
    if (record.lsn != expected) break;  // LSNs are dense by construction.
    record.type = static_cast<WalRecordType>(type);
    record.payload.assign(body.substr(9));
    records.push_back(std::move(record));
    pos += kFrameHeaderBytes + len;
    ++expected;
  }
  if (valid_end != nullptr) *valid_end = pos;
  return records;
}

Result<std::unique_ptr<LogManager>> LogManager::Open(
    const std::string& path) {
  const bool existed = ::access(path.c_str(), F_OK) == 0;
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return IOErrorFor("open", path);
  if (!existed) {
    // A crash right after creation must not lose the directory entry, or
    // the next recovery would silently start an empty log.
    Status synced = SyncContainingDirectory(path);
    if (!synced.ok()) {
      ::close(fd);
      return synced;
    }
  }
  std::string data;
  Status read = ReadWholeFile(fd, path, &data);
  if (!read.ok()) {
    ::close(fd);
    return read;
  }
  uint64_t valid_end = 0;
  std::vector<WalRecord> records = ScanValidPrefix(data, &valid_end);
  if (valid_end < data.size()) {
    // Torn tail from a crash mid-append: discard it so future appends
    // start at a record boundary.
    if (::ftruncate(fd, static_cast<off_t>(valid_end)) != 0 ||
        ::fsync(fd) != 0) {
      Status st = IOErrorFor("truncate torn tail of", path);
      ::close(fd);
      return st;
    }
  }
  const Lsn next = records.empty() ? 1 : records.back().lsn + 1;
  return std::unique_ptr<LogManager>(
      new LogManager(fd, path, next, valid_end));
}

LogManager::~LogManager() {
  Sync().ok();  // Best effort; a failure here is a failure at close time.
  ::close(fd_);
}

Result<Lsn> LogManager::Append(WalRecordType type, std::string payload) {
  INSIGHT_CRASH_POINT("wal_append");
  std::lock_guard<std::mutex> lk(append_mu_);
  const Lsn lsn = next_lsn_++;
  const size_t framed_before = pending_.size();
  FrameRecord(&pending_, lsn, type, payload);
  last_lsn_ = lsn;
  EngineMetrics& m = EngineMetrics::Get();
  m.wal_appends->Add(1);
  m.wal_append_bytes->Add(pending_.size() - framed_before);
  // Approximate between syncs; Commit re-stamps the exact lag.
  m.wal_durable_lag->Add(1);
  return lsn;
}

Status LogManager::WriteFully(std::string_view data) {
  size_t done = 0;
  uint64_t offset = file_bytes_.load(std::memory_order_relaxed);
  while (done < data.size()) {
    const ssize_t n = ::pwrite(fd_, data.data() + done, data.size() - done,
                               static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return IOErrorFor("pwrite", path_);
    }
    done += static_cast<size_t>(n);
    offset += static_cast<uint64_t>(n);
  }
  file_bytes_.store(offset, std::memory_order_relaxed);
  return Status::OK();
}

Status LogManager::Commit(Lsn lsn) {
  if (lsn == kInvalidLsn) return Status::OK();
  std::unique_lock<std::mutex> lk(sync_mu_);
  for (;;) {
    if (!poisoned_.ok()) return poisoned_;
    if (durable_lsn_ >= lsn) return Status::OK();
    if (sync_in_progress_) {
      sync_cv_.wait(lk);
      continue;
    }
    // This thread leads one group-commit round: it flushes every record
    // buffered so far (its own and any concurrent appenders') with a
    // single write + fsync.
    sync_in_progress_ = true;
    const Lsn prev_durable = durable_lsn_;
    std::string batch;
    Lsn batch_last;
    {
      std::lock_guard<std::mutex> alk(append_mu_);
      batch.swap(pending_);
      batch_last = last_lsn_;
      if (lsn > last_lsn_) lsn = last_lsn_;  // Never wait on the future.
    }
    lk.unlock();
    INSIGHT_CRASH_POINT("wal_sync_begin");
    Status st = Status::OK();
    if (!batch.empty()) {
      if (CrashPointArmed("wal_sync_partial") && batch.size() >= 2) {
        // Simulate a crash that tears the batch: half the bytes reach the
        // file (and the device), the rest never will.
        WriteFully(batch.substr(0, batch.size() / 2)).ok();
        ::fsync(fd_);
        HitCrashPoint("wal_sync_partial");
      }
      const auto sync_start = std::chrono::steady_clock::now();
      st = WriteFully(batch);
      INSIGHT_CRASH_POINT("wal_sync_before_fsync");
      if (st.ok() && ::fsync(fd_) != 0) st = IOErrorFor("fsync", path_);
      INSIGHT_CRASH_POINT("wal_sync_after_fsync");
      if (st.ok()) {
        EngineMetrics& m = EngineMetrics::Get();
        m.wal_fsyncs->Add(1);
        m.wal_sync_micros->Observe(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - sync_start)
                .count());
        if (batch_last > prev_durable) {
          m.wal_group_commit_records->Observe(
              static_cast<double>(batch_last - prev_durable));
        }
      }
    }
    lk.lock();
    if (st.ok()) {
      if (batch_last > durable_lsn_) durable_lsn_ = batch_last;
      // sync_mu_ -> append_mu_ matches the batch-swap order above.
      std::lock_guard<std::mutex> alk(append_mu_);
      EngineMetrics::Get().wal_durable_lag->Set(
          static_cast<int64_t>(last_lsn_ - durable_lsn_));
    } else {
      // A half-written batch leaves the durable frontier ambiguous; fail
      // every future commit rather than risk reporting false durability.
      poisoned_ = st;
    }
    sync_in_progress_ = false;
    sync_cv_.notify_all();
    if (!st.ok()) return st;
    // Loop: our lsn may have been appended after the batch swap, in which
    // case the next round covers it.
  }
}

Status LogManager::Sync() { return Commit(last_lsn()); }

Status LogManager::SyncToLsn(uint64_t lsn) {
  Lsn target;
  {
    std::lock_guard<std::mutex> lk(append_mu_);
    // A page may carry a reserved stamp whose operation failed before its
    // record was appended; everything that exists below it still syncs.
    target = std::min<Lsn>(lsn, last_lsn_);
  }
  return Commit(target);
}

Lsn LogManager::last_lsn() const {
  std::lock_guard<std::mutex> lk(append_mu_);
  return last_lsn_;
}

Lsn LogManager::next_lsn() const {
  std::lock_guard<std::mutex> lk(append_mu_);
  return next_lsn_;
}

Lsn LogManager::durable_lsn() const {
  std::lock_guard<std::mutex> lk(sync_mu_);
  return durable_lsn_;
}

uint64_t LogManager::size_bytes() const {
  std::lock_guard<std::mutex> lk(append_mu_);
  return file_bytes_.load(std::memory_order_relaxed) + pending_.size();
}

Result<std::vector<WalRecord>> LogManager::ReadAll() const {
  std::string data;
  INSIGHT_RETURN_NOT_OK(ReadWholeFile(fd_, path_, &data));
  data.resize(std::min<size_t>(
      data.size(), file_bytes_.load(std::memory_order_relaxed)));
  return ScanValidPrefix(data, nullptr);
}

namespace {

/// pread exactly `len` bytes at `offset` (EINTR-safe); a short file is
/// an error — callers only read below the durable frontier.
Status PreadExact(int fd, const std::string& path, uint64_t offset,
                  char* dst, size_t len) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pread(fd, dst + done, len - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return IOErrorFor("pread", path);
    }
    if (n == 0) {
      return Status::Corruption("log truncated below the durable frontier");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<LogManager::TailCursor> LogManager::SeekTo(Lsn first_lsn) const {
  if (first_lsn == kInvalidLsn) {
    return Status::InvalidArgument("cannot seek a tail cursor to LSN 0");
  }
  if (first_lsn > durable_lsn() + 1) {
    return Status::OutOfRange(
        "tail cursor start " + std::to_string(first_lsn) +
        " is past the durable end " + std::to_string(durable_lsn()));
  }
  TailCursor cur;
  while (cur.next_lsn < first_lsn) {
    char header[kFrameHeaderBytes];
    INSIGHT_RETURN_NOT_OK(
        PreadExact(fd_, path_, cur.offset, header, sizeof(header)));
    uint32_t len;
    std::memcpy(&len, header, 4);
    if (len < 9 || len > kMaxRecordBytes) {
      return Status::Corruption("bad record length below durable frontier");
    }
    cur.offset += kFrameHeaderBytes + len;
    ++cur.next_lsn;
  }
  return cur;
}

Result<std::vector<WalRecord>> LogManager::ReadDurableFrom(
    TailCursor* cursor, size_t max_records, size_t max_bytes) const {
  std::vector<WalRecord> out;
  const Lsn durable = durable_lsn();
  size_t bytes = 0;
  while (out.size() < max_records && bytes < max_bytes &&
         cursor->next_lsn <= durable) {
    char header[kFrameHeaderBytes];
    INSIGHT_RETURN_NOT_OK(
        PreadExact(fd_, path_, cursor->offset, header, sizeof(header)));
    uint32_t len, crc;
    std::memcpy(&len, header, 4);
    std::memcpy(&crc, header + 4, 4);
    if (len < 9 || len > kMaxRecordBytes) {
      return Status::Corruption("bad record length below durable frontier");
    }
    std::string body(len, '\0');
    INSIGHT_RETURN_NOT_OK(
        PreadExact(fd_, path_, cursor->offset + kFrameHeaderBytes,
                   body.data(), body.size()));
    if (Crc32(body) != crc) {
      return Status::Corruption("record checksum mismatch below durable "
                                "frontier");
    }
    SerdeReader reader(body);
    WalRecord record;
    uint8_t type;
    if (!reader.ReadU64(&record.lsn) || !reader.ReadU8(&type) ||
        type > static_cast<uint8_t>(WalRecordType::kTxnBegin) ||
        record.lsn != cursor->next_lsn) {
      return Status::Corruption("malformed record below durable frontier");
    }
    record.type = static_cast<WalRecordType>(type);
    record.payload.assign(body.substr(9));
    out.push_back(std::move(record));
    cursor->offset += kFrameHeaderBytes + len;
    bytes += kFrameHeaderBytes + len;
    ++cursor->next_lsn;
  }
  return out;
}

}  // namespace insight
