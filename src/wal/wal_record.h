#ifndef INSIGHTNOTES_WAL_WAL_RECORD_H_
#define INSIGHTNOTES_WAL_WAL_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace insight {

/// Log sequence number: the 1-based position of a record in the log.
/// 0 means "none". LSNs are dense — record N+1 follows record N — which
/// is what the durable-LSN gate in the buffer pool compares against.
using Lsn = uint64_t;
inline constexpr Lsn kInvalidLsn = 0;

/// What one log record describes. The log is *logical*: it records DML
/// and DDL at the Database API level, not page images. Recovery replays
/// these through the same code paths that executed them, so derived
/// structures (summary storage, Summary-BTrees, keyword indexes) are
/// rebuilt as a side effect of replay — idempotent by construction.
enum class WalRecordType : uint8_t {
  kNoop = 0,
  kCreateTable = 1,
  kInsert = 2,
  kDelete = 3,
  kDefineInstance = 4,
  kLinkInstance = 5,
  kUnlinkInstance = 6,
  kAnnotate = 7,
  kRemoveAnnotation = 8,
  kCreateIndex = 9,
  kCheckpointBegin = 10,  // Payload: WalSnapshot.
  kCheckpointEnd = 11,    // Payload: LSN of the matching begin record.
  // Multi-statement transactions. Statements inside an explicit txn log
  // as kTxnOp wrappers (txn id + the inner record they would have been);
  // the commit record is the txn's durability point. Recovery replays a
  // txn's ops only when its commit record made it to disk — an aborted
  // or dangling txn leaves no trace after replay.
  kTxnCommit = 12,  // Payload: WalTxnCommit.
  kTxnAbort = 13,   // Payload: WalTxnAbort.
  kTxnOp = 14,      // Payload: WalTxnOp.
  kTxnBegin = 15,   // Payload: WalTxnBegin.
  // Serialized SketchRegistry image. Only ever embedded as the *last* op
  // of a checkpoint snapshot (after every table/link/insert/annotate op,
  // so the tables it references exist) — never logged as a top-level
  // frame, which keeps ScanValidPrefix's kTxnBegin upper bound intact.
  kStatsSketch = 16,  // Payload: WalStatsSketch.
};

const char* WalRecordTypeToString(WalRecordType type);

/// One decoded log record.
struct WalRecord {
  Lsn lsn = kInvalidLsn;
  WalRecordType type = WalRecordType::kNoop;
  std::string payload;
};

/// CRC32 (IEEE, reflected) over `data`, seeded by `seed` for chaining.
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

// ---- Per-type payload codecs ----
//
// Payloads use the serde little-endian primitives. Every Decode returns
// Corruption on malformed input instead of crashing, because payloads are
// read back from a file that may have been torn by a crash.

struct WalCreateTable {
  std::string table;
  Schema schema;

  std::string Encode() const;
  static Result<WalCreateTable> Decode(std::string_view payload);
};

struct WalInsert {
  std::string table;
  Oid oid = kInvalidOid;
  Tuple tuple;

  std::string Encode() const;
  static Result<WalInsert> Decode(std::string_view payload);
};

struct WalDelete {
  std::string table;
  Oid oid = kInvalidOid;

  std::string Encode() const;
  static Result<WalDelete> Decode(std::string_view payload);
};

/// A summary-instance definition, captured as the parameters of the
/// Define* call so replay can re-derive the instance (retraining the
/// classifier from its seed pairs is deterministic).
struct WalInstanceDef {
  enum class Kind : uint8_t { kClassifier = 0, kSnippet = 1, kCluster = 2 };

  Kind kind = Kind::kClassifier;
  std::string name;
  // Classifier.
  std::vector<std::string> labels;
  std::vector<std::pair<std::string, std::string>> training;
  // Snippet.
  uint64_t snippet_min_chars = 0;
  uint64_t snippet_max_chars = 0;
  // Cluster.
  double cluster_min_similarity = 0.0;

  std::string Encode() const;
  static Result<WalInstanceDef> Decode(std::string_view payload);
};

struct WalLinkInstance {
  std::string table;
  std::string instance;
  bool indexable = false;

  std::string Encode() const;
  static Result<WalLinkInstance> Decode(std::string_view payload);
};

struct WalUnlinkInstance {
  std::string table;
  std::string instance;

  std::string Encode() const;
  static Result<WalUnlinkInstance> Decode(std::string_view payload);
};

struct WalAnnotate {
  std::string table;
  uint64_t ann_id = 0;
  std::string text;
  std::vector<std::pair<uint64_t, uint64_t>> targets;  // (oid, column mask).

  std::string Encode() const;
  static Result<WalAnnotate> Decode(std::string_view payload);
};

struct WalRemoveAnnotation {
  std::string table;
  uint64_t ann_id = 0;

  std::string Encode() const;
  static Result<WalRemoveAnnotation> Decode(std::string_view payload);
};

struct WalCreateIndex {
  std::string table;
  std::string column;

  std::string Encode() const;
  static Result<WalCreateIndex> Decode(std::string_view payload);
};

struct WalCheckpointEnd {
  Lsn begin_lsn = kInvalidLsn;

  std::string Encode() const;
  static Result<WalCheckpointEnd> Decode(std::string_view payload);
};

struct WalTxnBegin {
  uint64_t txn_id = 0;

  std::string Encode() const;
  static Result<WalTxnBegin> Decode(std::string_view payload);
};

struct WalTxnCommit {
  uint64_t txn_id = 0;

  std::string Encode() const;
  static Result<WalTxnCommit> Decode(std::string_view payload);
};

struct WalTxnAbort {
  uint64_t txn_id = 0;

  std::string Encode() const;
  static Result<WalTxnAbort> Decode(std::string_view payload);
};

/// One statement executed inside an explicit transaction: the record it
/// would have logged in autocommit mode, wrapped with the owning txn id.
/// Recovery buffers these per-txn and replays them (in log order, through
/// the ordinary dispatch) iff the txn's commit record is on disk.
struct WalTxnOp {
  uint64_t txn_id = 0;
  WalRecordType inner_type = WalRecordType::kNoop;
  std::string inner_payload;

  std::string Encode() const;
  static Result<WalTxnOp> Decode(std::string_view payload);
};

/// A whole-registry sketch image (stats/sketch_registry.h Serialize()
/// bytes). Restoring it overwrites the online-statistics state so a
/// checkpointed database recovers with warm sketches instead of paying a
/// full rebuild; the WAL tail past the checkpoint then updates the
/// sketches incrementally through the ordinary replay hooks.
struct WalStatsSketch {
  std::string image;

  std::string Encode() const;
  static Result<WalStatsSketch> Decode(std::string_view payload);
};

/// A checkpoint-begin payload: the database's logical state, expressed as
/// a sequence of embedded (type, payload) ops that replay through the
/// exact same dispatch as ordinary records. Restoring a snapshot is
/// therefore the same code as replaying a log — one replay path to trust.
struct WalSnapshot {
  uint64_t next_ann_id = 1;  // Global annotation-id floor.
  std::vector<std::pair<WalRecordType, std::string>> ops;

  std::string Encode() const;
  static Result<WalSnapshot> Decode(std::string_view payload);
};

}  // namespace insight

#endif  // INSIGHTNOTES_WAL_WAL_RECORD_H_
