#include "wal/recovery_manager.h"

#include <map>
#include <utility>

namespace insight {

Status RecoveryManager::ApplyOne(WalRecordType type, std::string_view payload,
                                 ReplayTarget* target) {
  switch (type) {
    case WalRecordType::kNoop:
    case WalRecordType::kCheckpointBegin:
    case WalRecordType::kCheckpointEnd:
    case WalRecordType::kTxnBegin:
    case WalRecordType::kTxnCommit:
    case WalRecordType::kTxnAbort:
      return Status::OK();
    case WalRecordType::kTxnOp: {
      INSIGHT_ASSIGN_OR_RETURN(auto op, WalTxnOp::Decode(payload));
      if (op.inner_type == WalRecordType::kTxnOp) {
        return Status::Corruption("wal: nested TxnOp");
      }
      return ApplyOne(op.inner_type, op.inner_payload, target);
    }
    case WalRecordType::kCreateTable: {
      INSIGHT_ASSIGN_OR_RETURN(auto op, WalCreateTable::Decode(payload));
      return target->ReplayCreateTable(op);
    }
    case WalRecordType::kCreateIndex: {
      INSIGHT_ASSIGN_OR_RETURN(auto op, WalCreateIndex::Decode(payload));
      return target->ReplayCreateIndex(op);
    }
    case WalRecordType::kInsert: {
      INSIGHT_ASSIGN_OR_RETURN(auto op, WalInsert::Decode(payload));
      return target->ReplayInsert(op);
    }
    case WalRecordType::kDelete: {
      INSIGHT_ASSIGN_OR_RETURN(auto op, WalDelete::Decode(payload));
      return target->ReplayDelete(op);
    }
    case WalRecordType::kDefineInstance: {
      INSIGHT_ASSIGN_OR_RETURN(auto op, WalInstanceDef::Decode(payload));
      return target->ReplayDefineInstance(op);
    }
    case WalRecordType::kLinkInstance: {
      INSIGHT_ASSIGN_OR_RETURN(auto op, WalLinkInstance::Decode(payload));
      return target->ReplayLinkInstance(op);
    }
    case WalRecordType::kUnlinkInstance: {
      INSIGHT_ASSIGN_OR_RETURN(auto op, WalUnlinkInstance::Decode(payload));
      return target->ReplayUnlinkInstance(op);
    }
    case WalRecordType::kAnnotate: {
      INSIGHT_ASSIGN_OR_RETURN(auto op, WalAnnotate::Decode(payload));
      return target->ReplayAnnotate(op);
    }
    case WalRecordType::kRemoveAnnotation: {
      INSIGHT_ASSIGN_OR_RETURN(auto op,
                               WalRemoveAnnotation::Decode(payload));
      return target->ReplayRemoveAnnotation(op);
    }
  }
  return Status::Corruption("wal: unknown record type");
}

Result<RecoveryManager::Stats> RecoveryManager::Replay(
    const std::vector<WalRecord>& records, ReplayTarget* target) {
  Stats stats;
  stats.records_seen = records.size();

  // Locate the last complete checkpoint: the latest CheckpointEnd whose
  // begin record is present in the valid prefix. An End whose Begin was
  // torn away cannot happen (Begin precedes End in the log and the valid
  // prefix is contiguous), but a Begin without its End — a crash mid-
  // checkpoint — is expected, and is simply skipped in favor of the
  // previous complete checkpoint.
  size_t start_index = 0;           // First record index to consider.
  const WalRecord* snapshot_rec = nullptr;
  for (size_t i = records.size(); i-- > 0;) {
    if (records[i].type != WalRecordType::kCheckpointEnd) continue;
    INSIGHT_ASSIGN_OR_RETURN(WalCheckpointEnd end,
                             WalCheckpointEnd::Decode(records[i].payload));
    // LSNs are dense and 1-based, so the begin record (if retained) sits
    // at index begin_lsn - first_lsn.
    const Lsn first_lsn = records.front().lsn;
    if (end.begin_lsn < first_lsn) break;  // Snapshot predates the log view.
    const size_t begin_index = static_cast<size_t>(end.begin_lsn - first_lsn);
    if (begin_index >= records.size() ||
        records[begin_index].type != WalRecordType::kCheckpointBegin) {
      return Status::Corruption("wal: CheckpointEnd without its Begin");
    }
    snapshot_rec = &records[begin_index];
    stats.checkpoint_begin_lsn = end.begin_lsn;
    start_index = begin_index + 1;
    break;
  }

  if (snapshot_rec != nullptr) {
    INSIGHT_ASSIGN_OR_RETURN(WalSnapshot snap,
                             WalSnapshot::Decode(snapshot_rec->payload));
    INSIGHT_RETURN_NOT_OK(target->ReplayAnnIdFloor(snap.next_ann_id));
    for (const auto& [type, payload] : snap.ops) {
      INSIGHT_RETURN_NOT_OK(ApplyOne(type, payload, target));
      ++stats.snapshot_ops;
    }
  }

  // Pass 1: buffer transactional ops by txn id over the WHOLE valid log,
  // not just the tail — a txn may log ops before a checkpoint and commit
  // after it; the snapshot (committed state only) cannot contain them.
  std::map<uint64_t, std::vector<const WalRecord*>> txn_ops;
  for (const WalRecord& rec : records) {
    if (rec.type != WalRecordType::kTxnOp) continue;
    INSIGHT_ASSIGN_OR_RETURN(WalTxnOp op, WalTxnOp::Decode(rec.payload));
    txn_ops[op.txn_id].push_back(&rec);
  }

  // Pass 2: the tail. Plain records apply directly; a commit record
  // flushes its txn's buffered ops in original log order. Ops of txns
  // that committed before the checkpoint are already inside the snapshot
  // and their commit record sits before start_index, so they never
  // re-apply. Aborted and dangling txns simply never flush.
  for (size_t i = start_index; i < records.size(); ++i) {
    const WalRecord& rec = records[i];
    switch (rec.type) {
      case WalRecordType::kTxnOp:
      case WalRecordType::kTxnBegin:
        break;  // Buffered / bookkeeping only.
      case WalRecordType::kTxnAbort:
        ++stats.txns_discarded;
        break;
      case WalRecordType::kTxnCommit: {
        INSIGHT_ASSIGN_OR_RETURN(WalTxnCommit commit,
                                 WalTxnCommit::Decode(rec.payload));
        auto it = txn_ops.find(commit.txn_id);
        if (it != txn_ops.end()) {
          for (const WalRecord* op_rec : it->second) {
            INSIGHT_RETURN_NOT_OK(
                ApplyOne(op_rec->type, op_rec->payload, target));
            ++stats.txn_ops_applied;
          }
          txn_ops.erase(it);
        }
        ++stats.txns_committed;
        break;
      }
      default:
        INSIGHT_RETURN_NOT_OK(ApplyOne(rec.type, rec.payload, target));
        break;
    }
    ++stats.records_applied;
  }
  // Whatever is still buffered belongs to txns with no commit in the
  // tail: crashed mid-flight, rolled back, or committed before the
  // checkpoint (already in the snapshot). None of it replays.
  stats.txns_discarded += txn_ops.size();
  return stats;
}

}  // namespace insight
