#include "wal/recovery_manager.h"

namespace insight {

Status RecoveryManager::ApplyOne(WalRecordType type, std::string_view payload,
                                 ReplayTarget* target) {
  switch (type) {
    case WalRecordType::kNoop:
    case WalRecordType::kCheckpointBegin:
    case WalRecordType::kCheckpointEnd:
      return Status::OK();
    case WalRecordType::kCreateTable: {
      INSIGHT_ASSIGN_OR_RETURN(auto op, WalCreateTable::Decode(payload));
      return target->ReplayCreateTable(op);
    }
    case WalRecordType::kCreateIndex: {
      INSIGHT_ASSIGN_OR_RETURN(auto op, WalCreateIndex::Decode(payload));
      return target->ReplayCreateIndex(op);
    }
    case WalRecordType::kInsert: {
      INSIGHT_ASSIGN_OR_RETURN(auto op, WalInsert::Decode(payload));
      return target->ReplayInsert(op);
    }
    case WalRecordType::kDelete: {
      INSIGHT_ASSIGN_OR_RETURN(auto op, WalDelete::Decode(payload));
      return target->ReplayDelete(op);
    }
    case WalRecordType::kDefineInstance: {
      INSIGHT_ASSIGN_OR_RETURN(auto op, WalInstanceDef::Decode(payload));
      return target->ReplayDefineInstance(op);
    }
    case WalRecordType::kLinkInstance: {
      INSIGHT_ASSIGN_OR_RETURN(auto op, WalLinkInstance::Decode(payload));
      return target->ReplayLinkInstance(op);
    }
    case WalRecordType::kUnlinkInstance: {
      INSIGHT_ASSIGN_OR_RETURN(auto op, WalUnlinkInstance::Decode(payload));
      return target->ReplayUnlinkInstance(op);
    }
    case WalRecordType::kAnnotate: {
      INSIGHT_ASSIGN_OR_RETURN(auto op, WalAnnotate::Decode(payload));
      return target->ReplayAnnotate(op);
    }
    case WalRecordType::kRemoveAnnotation: {
      INSIGHT_ASSIGN_OR_RETURN(auto op,
                               WalRemoveAnnotation::Decode(payload));
      return target->ReplayRemoveAnnotation(op);
    }
  }
  return Status::Corruption("wal: unknown record type");
}

Result<RecoveryManager::Stats> RecoveryManager::Replay(
    const std::vector<WalRecord>& records, ReplayTarget* target) {
  Stats stats;
  stats.records_seen = records.size();

  // Locate the last complete checkpoint: the latest CheckpointEnd whose
  // begin record is present in the valid prefix. An End whose Begin was
  // torn away cannot happen (Begin precedes End in the log and the valid
  // prefix is contiguous), but a Begin without its End — a crash mid-
  // checkpoint — is expected, and is simply skipped in favor of the
  // previous complete checkpoint.
  size_t start_index = 0;           // First record index to consider.
  const WalRecord* snapshot_rec = nullptr;
  for (size_t i = records.size(); i-- > 0;) {
    if (records[i].type != WalRecordType::kCheckpointEnd) continue;
    INSIGHT_ASSIGN_OR_RETURN(WalCheckpointEnd end,
                             WalCheckpointEnd::Decode(records[i].payload));
    // LSNs are dense and 1-based, so the begin record (if retained) sits
    // at index begin_lsn - first_lsn.
    const Lsn first_lsn = records.front().lsn;
    if (end.begin_lsn < first_lsn) break;  // Snapshot predates the log view.
    const size_t begin_index = static_cast<size_t>(end.begin_lsn - first_lsn);
    if (begin_index >= records.size() ||
        records[begin_index].type != WalRecordType::kCheckpointBegin) {
      return Status::Corruption("wal: CheckpointEnd without its Begin");
    }
    snapshot_rec = &records[begin_index];
    stats.checkpoint_begin_lsn = end.begin_lsn;
    start_index = begin_index + 1;
    break;
  }

  if (snapshot_rec != nullptr) {
    INSIGHT_ASSIGN_OR_RETURN(WalSnapshot snap,
                             WalSnapshot::Decode(snapshot_rec->payload));
    INSIGHT_RETURN_NOT_OK(target->ReplayAnnIdFloor(snap.next_ann_id));
    for (const auto& [type, payload] : snap.ops) {
      INSIGHT_RETURN_NOT_OK(ApplyOne(type, payload, target));
      ++stats.snapshot_ops;
    }
  }

  for (size_t i = start_index; i < records.size(); ++i) {
    INSIGHT_RETURN_NOT_OK(
        ApplyOne(records[i].type, records[i].payload, target));
    ++stats.records_applied;
  }
  return stats;
}

}  // namespace insight
