#include "wal/recovery_manager.h"

#include <map>
#include <set>
#include <utility>

namespace insight {

Status RecoveryManager::ApplyOne(WalRecordType type, std::string_view payload,
                                 ReplayTarget* target) {
  switch (type) {
    case WalRecordType::kNoop:
    case WalRecordType::kCheckpointBegin:
    case WalRecordType::kCheckpointEnd:
    case WalRecordType::kTxnBegin:
    case WalRecordType::kTxnCommit:
    case WalRecordType::kTxnAbort:
      return Status::OK();
    case WalRecordType::kTxnOp: {
      INSIGHT_ASSIGN_OR_RETURN(auto op, WalTxnOp::Decode(payload));
      if (op.inner_type == WalRecordType::kTxnOp) {
        return Status::Corruption("wal: nested TxnOp");
      }
      return ApplyOne(op.inner_type, op.inner_payload, target);
    }
    case WalRecordType::kCreateTable: {
      INSIGHT_ASSIGN_OR_RETURN(auto op, WalCreateTable::Decode(payload));
      return target->ReplayCreateTable(op);
    }
    case WalRecordType::kCreateIndex: {
      INSIGHT_ASSIGN_OR_RETURN(auto op, WalCreateIndex::Decode(payload));
      return target->ReplayCreateIndex(op);
    }
    case WalRecordType::kInsert: {
      INSIGHT_ASSIGN_OR_RETURN(auto op, WalInsert::Decode(payload));
      return target->ReplayInsert(op);
    }
    case WalRecordType::kDelete: {
      INSIGHT_ASSIGN_OR_RETURN(auto op, WalDelete::Decode(payload));
      return target->ReplayDelete(op);
    }
    case WalRecordType::kDefineInstance: {
      INSIGHT_ASSIGN_OR_RETURN(auto op, WalInstanceDef::Decode(payload));
      return target->ReplayDefineInstance(op);
    }
    case WalRecordType::kLinkInstance: {
      INSIGHT_ASSIGN_OR_RETURN(auto op, WalLinkInstance::Decode(payload));
      return target->ReplayLinkInstance(op);
    }
    case WalRecordType::kUnlinkInstance: {
      INSIGHT_ASSIGN_OR_RETURN(auto op, WalUnlinkInstance::Decode(payload));
      return target->ReplayUnlinkInstance(op);
    }
    case WalRecordType::kAnnotate: {
      INSIGHT_ASSIGN_OR_RETURN(auto op, WalAnnotate::Decode(payload));
      return target->ReplayAnnotate(op);
    }
    case WalRecordType::kRemoveAnnotation: {
      INSIGHT_ASSIGN_OR_RETURN(auto op,
                               WalRemoveAnnotation::Decode(payload));
      return target->ReplayRemoveAnnotation(op);
    }
    case WalRecordType::kStatsSketch: {
      INSIGHT_ASSIGN_OR_RETURN(auto op, WalStatsSketch::Decode(payload));
      return target->ReplayStatsSketch(op);
    }
  }
  return Status::Corruption("wal: unknown record type");
}

Result<RecoveryManager::Stats> RecoveryManager::Replay(
    const std::vector<WalRecord>& records, ReplayTarget* target) {
  Stats stats;
  stats.records_seen = records.size();

  // Locate the last complete checkpoint: the latest CheckpointEnd whose
  // begin record is present in the valid prefix. An End whose Begin was
  // torn away cannot happen (Begin precedes End in the log and the valid
  // prefix is contiguous), but a Begin without its End — a crash mid-
  // checkpoint — is expected, and is simply skipped in favor of the
  // previous complete checkpoint.
  size_t start_index = 0;           // First record index to consider.
  const WalRecord* snapshot_rec = nullptr;
  for (size_t i = records.size(); i-- > 0;) {
    if (records[i].type != WalRecordType::kCheckpointEnd) continue;
    INSIGHT_ASSIGN_OR_RETURN(WalCheckpointEnd end,
                             WalCheckpointEnd::Decode(records[i].payload));
    // LSNs are dense and 1-based, so the begin record (if retained) sits
    // at index begin_lsn - first_lsn.
    const Lsn first_lsn = records.front().lsn;
    if (end.begin_lsn < first_lsn) break;  // Snapshot predates the log view.
    const size_t begin_index = static_cast<size_t>(end.begin_lsn - first_lsn);
    if (begin_index >= records.size() ||
        records[begin_index].type != WalRecordType::kCheckpointBegin) {
      return Status::Corruption("wal: CheckpointEnd without its Begin");
    }
    snapshot_rec = &records[begin_index];
    stats.checkpoint_begin_lsn = end.begin_lsn;
    start_index = begin_index + 1;
    break;
  }

  if (snapshot_rec != nullptr) {
    INSIGHT_ASSIGN_OR_RETURN(WalSnapshot snap,
                             WalSnapshot::Decode(snapshot_rec->payload));
    INSIGHT_RETURN_NOT_OK(target->ReplayAnnIdFloor(snap.next_ann_id));
    for (const auto& [type, payload] : snap.ops) {
      INSIGHT_RETURN_NOT_OK(ApplyOne(type, payload, target));
      ++stats.snapshot_ops;
    }
  }

  // Pass 1: walk the WHOLE valid log in order (not just the tail — a txn
  // may log ops before a checkpoint and commit after it; the snapshot
  // holds committed state only, so those ops cannot be inside it),
  // buffering transactional ops per txn *incarnation*. Txn ids restart
  // at 1 after a reboot, so one id can carry several unrelated
  // transactions across the log; a kTxnBegin opens a fresh incarnation
  // and each kTxnCommit captures exactly the ops its own incarnation
  // logged, keyed by the commit record's LSN.
  //
  // A kTxnAbort that follows a kTxnCommit for the same incarnation
  // OVERRIDES the commit: the commit hook failed between appending the
  // record and forcing it durable (e.g. the fsync reported an error), the
  // transaction was rolled back in memory and reported failed to the
  // client — it must stay rolled back even though its commit record may
  // have reached disk.
  std::map<uint64_t, std::vector<const WalRecord*>> open_ops;
  std::map<uint64_t, Lsn> revocable_commit;  // No kTxnBegin since.
  std::map<Lsn, std::vector<const WalRecord*>> commit_ops;
  std::set<Lsn> overridden_commits;
  for (const WalRecord& rec : records) {
    switch (rec.type) {
      case WalRecordType::kTxnBegin: {
        INSIGHT_ASSIGN_OR_RETURN(WalTxnBegin begin,
                                 WalTxnBegin::Decode(rec.payload));
        if (!open_ops[begin.txn_id].empty()) {
          ++stats.txns_discarded;  // Previous incarnation never resolved.
        }
        open_ops[begin.txn_id].clear();
        // A new incarnation seals the previous commit of this id: an
        // abort seen later belongs to the new incarnation, not to it.
        revocable_commit.erase(begin.txn_id);
        break;
      }
      case WalRecordType::kTxnOp: {
        INSIGHT_ASSIGN_OR_RETURN(WalTxnOp op, WalTxnOp::Decode(rec.payload));
        open_ops[op.txn_id].push_back(&rec);
        break;
      }
      case WalRecordType::kTxnCommit: {
        INSIGHT_ASSIGN_OR_RETURN(WalTxnCommit commit,
                                 WalTxnCommit::Decode(rec.payload));
        auto it = open_ops.find(commit.txn_id);
        if (it != open_ops.end()) {
          commit_ops[rec.lsn] = std::move(it->second);
          open_ops.erase(it);
        }
        revocable_commit[commit.txn_id] = rec.lsn;
        break;
      }
      case WalRecordType::kTxnAbort: {
        INSIGHT_ASSIGN_OR_RETURN(WalTxnAbort abort,
                                 WalTxnAbort::Decode(rec.payload));
        auto it = revocable_commit.find(abort.txn_id);
        if (it != revocable_commit.end()) {
          overridden_commits.insert(it->second);
          revocable_commit.erase(it);
        }
        open_ops.erase(abort.txn_id);
        break;
      }
      default:
        break;
    }
  }

  // Pass 2: the tail. Plain records apply directly; a commit record
  // flushes its incarnation's buffered ops in original log order —
  // unless a later abort revoked it. Ops of txns that committed before
  // the checkpoint are already inside the snapshot and their commit
  // record sits before start_index, so they never re-apply. Aborted and
  // dangling txns simply never flush.
  for (size_t i = start_index; i < records.size(); ++i) {
    const WalRecord& rec = records[i];
    switch (rec.type) {
      case WalRecordType::kTxnOp:
      case WalRecordType::kTxnBegin:
        break;  // Buffered / bookkeeping only.
      case WalRecordType::kTxnAbort:
        ++stats.txns_discarded;
        break;
      case WalRecordType::kTxnCommit: {
        if (overridden_commits.count(rec.lsn) != 0) {
          ++stats.txns_discarded;  // Commit revoked by a later abort.
          break;
        }
        auto it = commit_ops.find(rec.lsn);
        if (it != commit_ops.end()) {
          for (const WalRecord* op_rec : it->second) {
            INSIGHT_RETURN_NOT_OK(
                ApplyOne(op_rec->type, op_rec->payload, target));
            ++stats.txn_ops_applied;
          }
          commit_ops.erase(it);
        }
        ++stats.txns_committed;
        break;
      }
      default:
        INSIGHT_RETURN_NOT_OK(ApplyOne(rec.type, rec.payload, target));
        break;
    }
    ++stats.records_applied;
  }
  // Whatever is still buffered belongs to incarnations with no commit in
  // the log: crashed mid-flight. None of it replays.
  for (const auto& [txn_id, ops] : open_ops) {
    if (!ops.empty()) ++stats.txns_discarded;
  }
  return stats;
}

}  // namespace insight
