#ifndef INSIGHTNOTES_WAL_LOG_MANAGER_H_
#define INSIGHTNOTES_WAL_LOG_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "wal/wal_record.h"

namespace insight {

/// Append-only, checksummed, LSN-stamped write-ahead log over one segment
/// file. Writers Append() into an in-memory tail (cheap: one mutex, one
/// memcpy) and make records durable with Commit()/Sync(), which uses
/// group commit: one leader writes every buffered record and issues a
/// single fsync on behalf of all concurrent committers.
///
/// On-disk framing per record:
///   [u32 body_len][u32 crc32(body)][body = u64 lsn | u8 type | payload]
/// A torn tail (crash mid-write) fails the length or checksum test;
/// Open() truncates the file back to the last intact record, which is
/// exactly the commit boundary the crash interrupted.
///
/// Implements the buffer pool's WalBridge so the pool can enforce
/// WAL-before-data: before a dirty page whose page_lsn exceeds the
/// durable LSN reaches the data file, the pool forces the log first.
class LogManager : public WalBridge {
 public:
  /// Opens (creating if needed) the log at `path`, scanning existing
  /// records to find the valid prefix and truncating any torn tail.
  static Result<std::unique_ptr<LogManager>> Open(const std::string& path);

  /// Best-effort Sync() then closes the file.
  ~LogManager() override;

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Buffers one record and returns its LSN. Not durable until a
  /// Commit()/Sync() covering the LSN returns.
  Result<Lsn> Append(WalRecordType type, std::string payload);

  /// Blocks until `lsn` is durable (no-op when it already is). Concurrent
  /// callers coalesce onto one leader write + fsync.
  Status Commit(Lsn lsn);

  /// Commit up to the last appended record.
  Status Sync();

  /// Last LSN handed out by Append (kInvalidLsn when empty).
  Lsn last_lsn() const;
  /// Highest LSN guaranteed on disk.
  Lsn durable_lsn() const;
  /// The LSN the next Append will return. Single-writer DML stamps dirty
  /// pages with this before applying an operation.
  Lsn next_lsn() const;

  /// Bytes of the on-disk segment plus the buffered tail.
  uint64_t size_bytes() const;

  /// Decodes the entire valid on-disk prefix (recovery input). Buffered,
  /// un-synced records are NOT included — they are not durable.
  Result<std::vector<WalRecord>> ReadAll() const;

  /// Byte-offset cursor over the durable on-disk prefix, for incremental
  /// tail reads (replication shipping). `next_lsn` is the first LSN not
  /// yet returned and `offset` its byte position in the segment. Bytes
  /// below the durable frontier are immutable (the log never rewrites),
  /// so cursor reads race with nothing.
  struct TailCursor {
    Lsn next_lsn = 1;
    uint64_t offset = 0;
  };

  /// Positions a cursor at `first_lsn` by walking record headers from
  /// the file start (one-time cost at subscription). Fails with
  /// OutOfRange when `first_lsn` is past the durable end + 1.
  Result<TailCursor> SeekTo(Lsn first_lsn) const;

  /// Reads durable records starting at the cursor — at most
  /// `max_records` and roughly `max_bytes` — advancing it. An empty
  /// result means the cursor has caught up with the durable frontier.
  Result<std::vector<WalRecord>> ReadDurableFrom(TailCursor* cursor,
                                                 size_t max_records,
                                                 size_t max_bytes) const;

  // WalBridge:
  uint64_t DurableLsn() const override { return durable_lsn(); }
  /// Forces the log so that everything *appended* up to `lsn` is durable.
  /// An lsn beyond the last appended record (a reserved stamp whose
  /// operation failed before logging) syncs what exists and succeeds.
  Status SyncToLsn(uint64_t lsn) override;

  /// Scans `data` (a raw log image) and returns the decoded valid prefix
  /// plus the byte offset where validity ends. Exposed for tests.
  static std::vector<WalRecord> ScanValidPrefix(std::string_view data,
                                                uint64_t* valid_end);

 private:
  LogManager(int fd, std::string path, Lsn next_lsn, uint64_t file_bytes)
      : fd_(fd),
        path_(std::move(path)),
        next_lsn_(next_lsn),
        last_lsn_(next_lsn - 1),
        durable_lsn_(next_lsn - 1),
        file_bytes_(file_bytes) {}

  /// Appends `data` to the file at file_bytes_, advancing it. Caller
  /// holds sync ownership (leader).
  Status WriteFully(std::string_view data);

  const int fd_;
  const std::string path_;

  mutable std::mutex append_mu_;  // Guards pending_, next/last lsn.
  std::string pending_;
  Lsn next_lsn_;
  Lsn last_lsn_;

  mutable std::mutex sync_mu_;  // Guards the group-commit hand-off.
  std::condition_variable sync_cv_;
  bool sync_in_progress_ = false;
  Lsn durable_lsn_;
  std::atomic<uint64_t> file_bytes_;
  Status poisoned_ = Status::OK();  // Sticky write-failure state.
};

}  // namespace insight

#endif  // INSIGHTNOTES_WAL_LOG_MANAGER_H_
