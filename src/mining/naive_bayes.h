#ifndef INSIGHTNOTES_MINING_NAIVE_BAYES_H_
#define INSIGHTNOTES_MINING_NAIVE_BAYES_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace insight {

/// Multinomial Naive Bayes text classifier with Laplace smoothing — the
/// paper's annotation-classification plug-in ([10] in its references).
/// Labels are fixed at construction (the Classifier summary instance's
/// class labels, e.g. {Disease, Anatomy, Behavior, Other}).
class NaiveBayesClassifier {
 public:
  explicit NaiveBayesClassifier(std::vector<std::string> labels);

  /// Adds one labeled training document. Unknown labels are rejected.
  Status Train(std::string_view text, const std::string& label);

  /// Most probable label for `text`. Untrained classifiers fall back to
  /// the last label (the conventional "Other" bucket).
  const std::string& Classify(std::string_view text) const;

  /// Index of Classify(text) within labels().
  size_t ClassifyIndex(std::string_view text) const;

  const std::vector<std::string>& labels() const { return labels_; }
  size_t num_training_docs() const { return total_docs_; }

 private:
  std::vector<std::string> labels_;
  std::unordered_map<std::string, size_t> label_index_;
  // Per-label document counts and per-label word counts.
  std::vector<int64_t> doc_counts_;
  std::vector<int64_t> word_totals_;
  std::vector<std::unordered_map<std::string, int64_t>> word_counts_;
  std::unordered_map<std::string, bool> vocabulary_;
  int64_t total_docs_ = 0;
};

}  // namespace insight

#endif  // INSIGHTNOTES_MINING_NAIVE_BAYES_H_
