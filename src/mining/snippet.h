#ifndef INSIGHTNOTES_MINING_SNIPPET_H_
#define INSIGHTNOTES_MINING_SNIPPET_H_

#include <string>
#include <string_view>

namespace insight {

/// Extractive text summarizer producing snippets of large annotations.
/// Substitution for the paper's LSA-based summarizer ([18]): sentences are
/// scored by the document-frequency-weighted term salience (the first
/// singular direction of LSA correlates strongly with high-TF terms on
/// short documents), and the top-scoring sentences are emitted in original
/// order until the budget is reached. Structurally the output is the same
/// Snippet representative the query layer consumes.
class SnippetSummarizer {
 public:
  struct Options {
    /// Only annotations longer than this are summarized (paper: 1,000).
    size_t min_chars = 1000;
    /// Snippet budget (paper: 400).
    size_t max_snippet_chars = 400;
  };

  SnippetSummarizer() : options_(Options{}) {}
  explicit SnippetSummarizer(Options options) : options_(options) {}

  /// True if `text` qualifies for summarization.
  bool ShouldSummarize(std::string_view text) const {
    return text.size() > options_.min_chars;
  }

  /// Produces the snippet (<= max_snippet_chars). Short texts are
  /// returned truncated-verbatim.
  std::string Summarize(std::string_view text) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace insight

#endif  // INSIGHTNOTES_MINING_SNIPPET_H_
