#include "mining/naive_bayes.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace insight {

NaiveBayesClassifier::NaiveBayesClassifier(std::vector<std::string> labels)
    : labels_(std::move(labels)),
      doc_counts_(labels_.size(), 0),
      word_totals_(labels_.size(), 0),
      word_counts_(labels_.size()) {
  INSIGHT_CHECK(!labels_.empty()) << "classifier needs at least one label";
  for (size_t i = 0; i < labels_.size(); ++i) {
    label_index_[ToLower(labels_[i])] = i;
  }
}

Status NaiveBayesClassifier::Train(std::string_view text,
                                   const std::string& label) {
  auto it = label_index_.find(ToLower(label));
  if (it == label_index_.end()) {
    return Status::InvalidArgument("unknown class label " + label);
  }
  const size_t idx = it->second;
  ++doc_counts_[idx];
  ++total_docs_;
  for (const std::string& word : TokenizeWords(text)) {
    ++word_counts_[idx][word];
    ++word_totals_[idx];
    vocabulary_[word] = true;
  }
  return Status::OK();
}

size_t NaiveBayesClassifier::ClassifyIndex(std::string_view text) const {
  if (total_docs_ == 0) return labels_.size() - 1;
  const std::vector<std::string> words = TokenizeWords(text);
  const double vocab = static_cast<double>(vocabulary_.size()) + 1.0;
  double best_score = -1e300;
  size_t best = labels_.size() - 1;
  for (size_t i = 0; i < labels_.size(); ++i) {
    if (doc_counts_[i] == 0) continue;
    double score = std::log(static_cast<double>(doc_counts_[i]) /
                            static_cast<double>(total_docs_));
    const double denom = static_cast<double>(word_totals_[i]) + vocab;
    for (const std::string& word : words) {
      auto it = word_counts_[i].find(word);
      const double count = it == word_counts_[i].end()
                               ? 0.0
                               : static_cast<double>(it->second);
      score += std::log((count + 1.0) / denom);
    }
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

const std::string& NaiveBayesClassifier::Classify(
    std::string_view text) const {
  return labels_[ClassifyIndex(text)];
}

}  // namespace insight
