#ifndef INSIGHTNOTES_MINING_CLUSTREAM_H_
#define INSIGHTNOTES_MINING_CLUSTREAM_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace insight {

/// Dimensionality of the hashed bag-of-words feature space used for
/// incremental text clustering.
constexpr size_t kTextFeatureDim = 64;

using TextFeature = std::array<double, kTextFeatureDim>;

/// L2-normalized hashed term-frequency vector of `text`.
TextFeature FeaturizeText(std::string_view text);

/// Cosine similarity of two feature vectors (0 when either is zero).
double CosineSimilarity(const TextFeature& a, const TextFeature& b);

/// Incremental micro-cluster maintenance in the style of CluStream
/// (Aggarwal et al., VLDB'03 — reference [2] of the paper): each cluster
/// keeps additive cluster-feature statistics (n, linear sum, square sum),
/// new points join the nearest cluster when within a boundary factor of
/// its RMS radius, otherwise they seed a new cluster; at capacity the two
/// closest clusters merge. Timestamps/decay are omitted: annotation
/// streams per tuple are small and the paper's summaries never expire
/// annotations.
class CluStream {
 public:
  struct Options {
    size_t max_clusters = 16;
    /// New point joins nearest cluster when distance <= boundary_factor x
    /// cluster RMS radius (or when cosine similarity >= min_similarity
    /// for singleton clusters, which have no radius yet).
    double boundary_factor = 2.0;
    double min_similarity = 0.25;
  };

  CluStream() : options_(Options{}) {}
  explicit CluStream(Options options) : options_(options) {}

  /// Inserts one point; returns the id of the cluster it joined. Cluster
  /// ids are stable across merges (the surviving cluster keeps its id).
  uint64_t Add(const TextFeature& point);

  /// Convenience overload: featurize then Add.
  uint64_t AddText(std::string_view text) { return Add(FeaturizeText(text)); }

  size_t num_clusters() const { return clusters_.size(); }

  struct ClusterInfo {
    uint64_t id;
    uint64_t size;
    TextFeature centroid;
    double rms_radius;
  };
  std::vector<ClusterInfo> Clusters() const;

 private:
  struct MicroCluster {
    uint64_t id;
    uint64_t n = 0;
    TextFeature linear_sum{};
    TextFeature square_sum{};

    TextFeature Centroid() const;
    double RmsRadius() const;
    void Absorb(const TextFeature& point);
    void Merge(const MicroCluster& other);
  };

  double Distance(const MicroCluster& c, const TextFeature& p) const;
  void MergeClosestPair();

  Options options_;
  std::vector<MicroCluster> clusters_;
  uint64_t next_id_ = 1;
};

}  // namespace insight

#endif  // INSIGHTNOTES_MINING_CLUSTREAM_H_
