#include "mining/snippet.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/string_util.h"

namespace insight {

namespace {

// Splits into sentences on ./!/? boundaries; keeps non-empty pieces.
std::vector<std::string> SplitSentences(std::string_view text) {
  std::vector<std::string> sentences;
  std::string cur;
  for (char c : text) {
    cur += c;
    if (c == '.' || c == '!' || c == '?') {
      const std::string_view trimmed = Trim(cur);
      if (!trimmed.empty()) sentences.emplace_back(trimmed);
      cur.clear();
    }
  }
  const std::string_view trimmed = Trim(cur);
  if (!trimmed.empty()) sentences.emplace_back(trimmed);
  return sentences;
}

}  // namespace

std::string SnippetSummarizer::Summarize(std::string_view text) const {
  if (text.size() <= options_.max_snippet_chars) {
    return std::string(Trim(text));
  }
  const std::vector<std::string> sentences = SplitSentences(text);
  if (sentences.empty()) {
    return std::string(text.substr(0, options_.max_snippet_chars));
  }

  // Document-level term frequencies.
  std::unordered_map<std::string, double> tf;
  for (const std::string& word : TokenizeWords(text)) tf[word] += 1.0;

  // Score each sentence by mean term salience (length-normalized so long
  // sentences don't dominate).
  struct Scored {
    size_t index;
    double score;
  };
  std::vector<Scored> scored;
  scored.reserve(sentences.size());
  for (size_t i = 0; i < sentences.size(); ++i) {
    const auto words = TokenizeWords(sentences[i]);
    double score = 0;
    for (const std::string& w : words) score += tf[w];
    if (!words.empty()) score /= static_cast<double>(words.size());
    scored.push_back(Scored{i, score});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.index < b.index;
  });

  // Greedily take top sentences that fit the budget; emit in document
  // order for readability.
  std::vector<size_t> chosen;
  size_t used = 0;
  for (const Scored& s : scored) {
    const size_t cost = sentences[s.index].size() + (chosen.empty() ? 0 : 1);
    if (used + cost > options_.max_snippet_chars) continue;
    chosen.push_back(s.index);
    used += cost;
  }
  if (chosen.empty()) {
    // Even the best sentence exceeds the budget: hard-truncate it.
    return sentences[scored.front().index].substr(
        0, options_.max_snippet_chars);
  }
  std::sort(chosen.begin(), chosen.end());
  std::string out;
  for (size_t idx : chosen) {
    if (!out.empty()) out += ' ';
    out += sentences[idx];
  }
  return out;
}

}  // namespace insight
