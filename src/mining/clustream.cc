#include "mining/clustream.h"

#include <cmath>
#include <functional>
#include <limits>

#include "common/string_util.h"

namespace insight {

TextFeature FeaturizeText(std::string_view text) {
  TextFeature f{};
  for (const std::string& word : TokenizeWords(text)) {
    const size_t h = std::hash<std::string>{}(word);
    f[h % kTextFeatureDim] += 1.0;
  }
  double norm = 0;
  for (double v : f) norm += v * v;
  if (norm > 0) {
    norm = std::sqrt(norm);
    for (double& v : f) v /= norm;
  }
  return f;
}

double CosineSimilarity(const TextFeature& a, const TextFeature& b) {
  double dot = 0;
  double na = 0;
  double nb = 0;
  for (size_t i = 0; i < kTextFeatureDim; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0 || nb == 0) return 0;
  return dot / std::sqrt(na * nb);
}

TextFeature CluStream::MicroCluster::Centroid() const {
  TextFeature c{};
  if (n == 0) return c;
  for (size_t i = 0; i < kTextFeatureDim; ++i) {
    c[i] = linear_sum[i] / static_cast<double>(n);
  }
  return c;
}

double CluStream::MicroCluster::RmsRadius() const {
  if (n <= 1) return 0;
  // radius^2 = E[x^2] - E[x]^2, summed over dimensions.
  double r2 = 0;
  for (size_t i = 0; i < kTextFeatureDim; ++i) {
    const double mean = linear_sum[i] / static_cast<double>(n);
    r2 += square_sum[i] / static_cast<double>(n) - mean * mean;
  }
  return r2 > 0 ? std::sqrt(r2) : 0;
}

void CluStream::MicroCluster::Absorb(const TextFeature& point) {
  ++n;
  for (size_t i = 0; i < kTextFeatureDim; ++i) {
    linear_sum[i] += point[i];
    square_sum[i] += point[i] * point[i];
  }
}

void CluStream::MicroCluster::Merge(const MicroCluster& other) {
  n += other.n;
  for (size_t i = 0; i < kTextFeatureDim; ++i) {
    linear_sum[i] += other.linear_sum[i];
    square_sum[i] += other.square_sum[i];
  }
}

double CluStream::Distance(const MicroCluster& c,
                           const TextFeature& p) const {
  const TextFeature centroid = c.Centroid();
  double d2 = 0;
  for (size_t i = 0; i < kTextFeatureDim; ++i) {
    const double d = centroid[i] - p[i];
    d2 += d * d;
  }
  return std::sqrt(d2);
}

uint64_t CluStream::Add(const TextFeature& point) {
  // Find the nearest cluster.
  size_t best = clusters_.size();
  double best_dist = std::numeric_limits<double>::max();
  for (size_t i = 0; i < clusters_.size(); ++i) {
    const double d = Distance(clusters_[i], point);
    if (d < best_dist) {
      best_dist = d;
      best = i;
    }
  }
  if (best < clusters_.size()) {
    MicroCluster& c = clusters_[best];
    const double radius = c.RmsRadius();
    const bool within_boundary =
        radius > 0 ? best_dist <= options_.boundary_factor * radius
                   : CosineSimilarity(c.Centroid(), point) >=
                         options_.min_similarity;
    if (within_boundary) {
      c.Absorb(point);
      return c.id;
    }
  }
  // Seed a new cluster; merge the closest pair if at capacity.
  if (clusters_.size() >= options_.max_clusters) MergeClosestPair();
  MicroCluster fresh;
  fresh.id = next_id_++;
  fresh.Absorb(point);
  clusters_.push_back(fresh);
  return fresh.id;
}

void CluStream::MergeClosestPair() {
  if (clusters_.size() < 2) return;
  size_t bi = 0;
  size_t bj = 1;
  double best = std::numeric_limits<double>::max();
  for (size_t i = 0; i < clusters_.size(); ++i) {
    for (size_t j = i + 1; j < clusters_.size(); ++j) {
      const double d = Distance(clusters_[i], clusters_[j].Centroid());
      if (d < best) {
        best = d;
        bi = i;
        bj = j;
      }
    }
  }
  clusters_[bi].Merge(clusters_[bj]);
  clusters_.erase(clusters_.begin() + bj);
}

std::vector<CluStream::ClusterInfo> CluStream::Clusters() const {
  std::vector<ClusterInfo> out;
  out.reserve(clusters_.size());
  for (const MicroCluster& c : clusters_) {
    out.push_back(ClusterInfo{c.id, c.n, c.Centroid(), c.RmsRadius()});
  }
  return out;
}

}  // namespace insight
