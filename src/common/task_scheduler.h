#ifndef INSIGHTNOTES_COMMON_TASK_SCHEDULER_H_
#define INSIGHTNOTES_COMMON_TASK_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace insight {

/// Fixed pool of worker threads with per-worker work-stealing deques —
/// the execution substrate for morsel-driven parallel query execution
/// (GatherOp) and any other fan-out work.
///
/// Each worker owns one deque: the owner pushes and pops at the back
/// (LIFO keeps caches warm), thieves steal from the front (FIFO hands a
/// thief the coarsest waiting task). External submitters distribute
/// round-robin across deques. Idle workers sleep on a condition variable
/// and are woken per submission.
///
/// Tasks must not block waiting for other tasks of the same pool (the
/// engine never nests parallel regions); RunAndWait callers are external
/// threads and additionally help drain the queues while they wait, so
/// progress holds even with a single worker.
class TaskScheduler {
 public:
  using Task = std::function<void()>;

  explicit TaskScheduler(size_t num_workers);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// Process-wide pool sized to the hardware thread count. Created on
  /// first use and intentionally never destroyed (workers must outlive
  /// every user, including static destructors).
  static TaskScheduler* Default();

  size_t num_workers() const { return workers_.size(); }

  /// Enqueues one task for asynchronous execution.
  void Submit(Task task);

  /// Runs all tasks across the pool, blocking until every one completed.
  void RunAndWait(std::vector<Task> tasks);

 private:
  struct Worker {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  void WorkerLoop(size_t self);
  /// Pops from `self`'s back, else steals from another worker's front.
  /// `self` may be SIZE_MAX for external helpers (steal only).
  bool TryGetTask(size_t self, Task* out);
  bool PopBack(size_t worker, Task* out);
  bool StealFront(size_t worker, Task* out);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<size_t> next_worker_{0};  // Round-robin submission cursor.
  std::atomic<size_t> pending_{0};      // Queued (not yet started) tasks.
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  bool stop_ = false;  // Guarded by sleep_mu_.
};

}  // namespace insight

#endif  // INSIGHTNOTES_COMMON_TASK_SCHEDULER_H_
