#include "common/status.h"

namespace insight {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kTypeError:
      return "Type error";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kReadOnly:
      return "Read-only replica";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace insight
