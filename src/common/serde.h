#ifndef INSIGHTNOTES_COMMON_SERDE_H_
#define INSIGHTNOTES_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"

namespace insight {

/// Little-endian primitive encoders used by tuple and summary-object
/// serialization. Append-style writers and cursor-style readers.

inline void PutU8(std::string* dst, uint8_t v) {
  dst->push_back(static_cast<char>(v));
}

inline void PutU32(std::string* dst, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  dst->append(buf, 4);
}

inline void PutU64(std::string* dst, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

inline void PutI64(std::string* dst, int64_t v) {
  PutU64(dst, static_cast<uint64_t>(v));
}

inline void PutDouble(std::string* dst, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

inline void PutString(std::string* dst, std::string_view s) {
  PutU32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

/// Sequential reader over a serialized buffer. All Read* methods return
/// false (and leave the output untouched) on underflow, so callers can
/// surface Status::Corruption instead of crashing on malformed pages.
class SerdeReader {
 public:
  explicit SerdeReader(std::string_view data) : data_(data) {}

  bool ReadU8(uint8_t* out) {
    if (pos_ + 1 > data_.size()) return false;
    *out = static_cast<uint8_t>(data_[pos_]);
    pos_ += 1;
    return true;
  }

  bool ReadU32(uint32_t* out) {
    if (pos_ + 4 > data_.size()) return false;
    std::memcpy(out, data_.data() + pos_, 4);
    pos_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* out) {
    if (pos_ + 8 > data_.size()) return false;
    std::memcpy(out, data_.data() + pos_, 8);
    pos_ += 8;
    return true;
  }

  bool ReadI64(int64_t* out) {
    uint64_t u;
    if (!ReadU64(&u)) return false;
    *out = static_cast<int64_t>(u);
    return true;
  }

  bool ReadDouble(double* out) {
    if (pos_ + 8 > data_.size()) return false;
    std::memcpy(out, data_.data() + pos_, 8);
    pos_ += 8;
    return true;
  }

  bool ReadString(std::string* out) {
    uint32_t len;
    if (!ReadU32(&len)) return false;
    if (pos_ + len > data_.size()) return false;
    out->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t position() const { return pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace insight

#endif  // INSIGHTNOTES_COMMON_SERDE_H_
