#include "common/rng.h"

#include <cmath>

namespace insight {

int64_t Rng::Zipf(int64_t n, double s) {
  if (n <= 1) return 1;
  if (s <= 0.0) return Uniform(1, n);
  // Inverse-CDF on the generalized harmonic partial sums would be O(n);
  // instead use the standard approximation via the integral of x^-s, which
  // is accurate enough for skewed workload generation.
  const double u = NextDouble();
  if (s == 1.0) {
    const double hn = std::log(static_cast<double>(n) + 1.0);
    const double x = std::exp(u * hn) - 1.0;
    int64_t r = static_cast<int64_t>(x) + 1;
    return r > n ? n : r;
  }
  const double t = 1.0 - s;
  const double hn = (std::pow(static_cast<double>(n) + 1.0, t) - 1.0) / t;
  const double x = std::pow(u * hn * t + 1.0, 1.0 / t) - 1.0;
  int64_t r = static_cast<int64_t>(x) + 1;
  return r > n ? n : r;
}

}  // namespace insight
