#include "common/string_util.h"

#include <algorithm>
#include <cctype>

namespace insight {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ZeroPad(int64_t value, int width) {
  const bool neg = value < 0;
  std::string digits = std::to_string(neg ? -value : value);
  std::string out;
  if (neg) out += '-';
  const int pad = width - static_cast<int>(digits.size());
  for (int i = 0; i < pad; ++i) out += '0';
  out += digits;
  return out;
}

std::vector<std::string> TokenizeWords(std::string_view text) {
  std::vector<std::string> words;
  std::string cur;
  for (char ch : text) {
    const unsigned char c = static_cast<unsigned char>(ch);
    if (std::isalnum(c)) {
      cur += static_cast<char>(std::tolower(c));
    } else if (!cur.empty()) {
      words.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) words.push_back(std::move(cur));
  return words;
}

bool ContainsWord(std::string_view text, std::string_view word) {
  const std::string needle = ToLower(word);
  for (const std::string& tok : TokenizeWords(text)) {
    if (tok == needle) return true;
  }
  return false;
}

namespace {
bool LikeMatchImpl(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer matcher with backtracking on the last '%'.
  size_t t = 0;
  size_t p = 0;
  size_t star_p = std::string_view::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    const char pc = p < pattern.size() ? pattern[p] : '\0';
    if (p < pattern.size() &&
        (pc == '_' ||
         std::tolower(static_cast<unsigned char>(pc)) ==
             std::tolower(static_cast<unsigned char>(text[t])))) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pc == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}
}  // namespace

bool LikeMatch(std::string_view text, std::string_view pattern) {
  return LikeMatchImpl(text, pattern);
}

}  // namespace insight
