#ifndef INSIGHTNOTES_COMMON_STRING_UTIL_H_
#define INSIGHTNOTES_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace insight {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Lower-cases ASCII characters.
std::string ToLower(std::string_view s);

/// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Joins the elements with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Zero-pads `value` to exactly `width` digits ("8", 3 -> "008"). Values
/// wider than `width` are returned unpadded. Used by Summary-BTree
/// itemization where lexicographic order must match numeric order.
std::string ZeroPad(int64_t value, int width);

/// Tokenizes free text into lower-case alphanumeric words; the shared
/// tokenizer for classification, clustering, and keyword search so that
/// all annotation-processing components agree on word boundaries.
std::vector<std::string> TokenizeWords(std::string_view text);

/// True if `text` contains `word` as a whole token (case-insensitive).
bool ContainsWord(std::string_view text, std::string_view word);

/// SQL LIKE-style matching with '%' (any run) and '_' (any single char).
/// Case-insensitive, as the paper's examples ("Swan*") imply prefix search.
bool LikeMatch(std::string_view text, std::string_view pattern);

}  // namespace insight

#endif  // INSIGHTNOTES_COMMON_STRING_UTIL_H_
