#ifndef INSIGHTNOTES_COMMON_STATUS_H_
#define INSIGHTNOTES_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace insight {

/// Error categories used across the engine. Mirrors the Arrow/RocksDB idiom:
/// all fallible APIs return Status (or Result<T>), never throw.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kCorruption,
  kIOError,
  kNotImplemented,
  kInternal,
  kResourceExhausted,
  kParseError,
  kTypeError,
  kAborted,
  kReadOnly,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// A Status encodes the success or failure of an operation. The OK state is
/// represented without allocation; error states carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(msg)});
    }
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  /// Serialization conflict: the transaction lost a first-writer-wins
  /// race (or crossed a concurrent commit) and was rolled back. Safe to
  /// retry from BEGIN.
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  /// The node cannot accept this statement because it is a read replica;
  /// the client should redirect the statement to the primary.
  static Status ReadOnly(std::string msg) {
    return Status(StatusCode::kReadOnly, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->msg : kEmpty;
  }

  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsReadOnly() const { return code() == StatusCode::kReadOnly; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string msg;
  };
  // Shared so Status is cheap to copy; error paths are cold.
  std::shared_ptr<const Rep> rep_;
};

}  // namespace insight

/// Propagates a non-OK Status out of the enclosing function.
#define INSIGHT_RETURN_NOT_OK(expr)                 \
  do {                                              \
    ::insight::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                      \
  } while (false)

#define INSIGHT_CONCAT_IMPL(x, y) x##y
#define INSIGHT_CONCAT(x, y) INSIGHT_CONCAT_IMPL(x, y)

/// Evaluates an expression returning Result<T>; on success binds the value
/// to `lhs`, otherwise returns the error Status.
#define INSIGHT_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  auto INSIGHT_CONCAT(_res_, __LINE__) = (rexpr);                        \
  if (!INSIGHT_CONCAT(_res_, __LINE__).ok())                             \
    return INSIGHT_CONCAT(_res_, __LINE__).status();                     \
  lhs = std::move(INSIGHT_CONCAT(_res_, __LINE__)).ValueOrDie()

#endif  // INSIGHTNOTES_COMMON_STATUS_H_
