#include "common/task_scheduler.h"

#include <chrono>

#include "common/logging.h"
#include "obs/metrics.h"

namespace insight {

TaskScheduler::TaskScheduler(size_t num_workers) {
  if (num_workers == 0) num_workers = 1;
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lk(sleep_mu_);
    stop_ = true;
  }
  sleep_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

TaskScheduler* TaskScheduler::Default() {
  static TaskScheduler* pool =
      new TaskScheduler(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

void TaskScheduler::Submit(Task task) {
  INSIGHT_CHECK(task != nullptr) << "null task";
  const size_t target =
      next_worker_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  {
    std::lock_guard<std::mutex> lk(workers_[target]->mu);
    workers_[target]->tasks.push_back(std::move(task));
  }
  // Publish under sleep_mu_ so a worker that just checked the predicate
  // cannot miss the wakeup.
  uint64_t queued;
  {
    std::lock_guard<std::mutex> lk(sleep_mu_);
    queued = pending_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  EngineMetrics& m = EngineMetrics::Get();
  m.scheduler_submits->Add(1);
  m.scheduler_queue_depth->Set(static_cast<int64_t>(queued));
  sleep_cv_.notify_one();
}

void TaskScheduler::RunAndWait(std::vector<Task> tasks) {
  if (tasks.empty()) return;
  struct Barrier {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining;
  };
  auto barrier = std::make_shared<Barrier>();
  barrier->remaining = tasks.size();
  for (Task& task : tasks) {
    Submit([task = std::move(task), barrier] {
      task();
      bool done = false;
      {
        std::lock_guard<std::mutex> lk(barrier->mu);
        done = --barrier->remaining == 0;
      }
      if (done) barrier->cv.notify_all();
    });
  }
  // Help drain the queues while waiting: the helper may run tasks of any
  // group (they are independent), which guarantees progress even when
  // every pool worker is busy or the machine has one core.
  while (true) {
    {
      std::unique_lock<std::mutex> lk(barrier->mu);
      if (barrier->remaining == 0) return;
    }
    Task task;
    if (TryGetTask(SIZE_MAX, &task)) {
      task();
      continue;
    }
    std::unique_lock<std::mutex> lk(barrier->mu);
    barrier->cv.wait_for(lk, std::chrono::milliseconds(1),
                         [&] { return barrier->remaining == 0; });
  }
}

void TaskScheduler::WorkerLoop(size_t self) {
  while (true) {
    Task task;
    if (TryGetTask(self, &task)) {
      task();
      continue;
    }
    std::unique_lock<std::mutex> lk(sleep_mu_);
    sleep_cv_.wait(lk, [&] {
      return stop_ || pending_.load(std::memory_order_relaxed) > 0;
    });
    if (stop_) return;
  }
}

bool TaskScheduler::TryGetTask(size_t self, Task* out) {
  const size_t n = workers_.size();
  if (self < n && PopBack(self, out)) return true;
  for (size_t i = 0; i < n; ++i) {
    const size_t victim = self < n ? (self + 1 + i) % n : i;
    if (victim == self) continue;
    if (StealFront(victim, out)) return true;
  }
  return false;
}

bool TaskScheduler::PopBack(size_t worker, Task* out) {
  Worker& w = *workers_[worker];
  std::lock_guard<std::mutex> lk(w.mu);
  if (w.tasks.empty()) return false;
  *out = std::move(w.tasks.back());
  w.tasks.pop_back();
  const uint64_t left = pending_.fetch_sub(1, std::memory_order_relaxed) - 1;
  EngineMetrics& m = EngineMetrics::Get();
  m.scheduler_tasks_run->Add(1);
  m.scheduler_queue_depth->Set(static_cast<int64_t>(left));
  return true;
}

bool TaskScheduler::StealFront(size_t worker, Task* out) {
  Worker& w = *workers_[worker];
  std::lock_guard<std::mutex> lk(w.mu);
  if (w.tasks.empty()) return false;
  *out = std::move(w.tasks.front());
  w.tasks.pop_front();
  const uint64_t left = pending_.fetch_sub(1, std::memory_order_relaxed) - 1;
  EngineMetrics& m = EngineMetrics::Get();
  m.scheduler_tasks_run->Add(1);
  m.scheduler_steals->Add(1);
  m.scheduler_queue_depth->Set(static_cast<int64_t>(left));
  return true;
}

}  // namespace insight
