#ifndef INSIGHTNOTES_COMMON_LOGGING_H_
#define INSIGHTNOTES_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace insight {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Default kWarn so
/// library code is quiet in tests and benches unless asked.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Stream-style log sink that emits on destruction. FATAL aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
  LogLevel level_;
  bool fatal_;
  bool enabled_;
};

}  // namespace internal
}  // namespace insight

#define INSIGHT_LOG(level)                                                   \
  ::insight::internal::LogMessage(::insight::LogLevel::k##level, __FILE__,   \
                                  __LINE__)

#define INSIGHT_FATAL()                                                      \
  ::insight::internal::LogMessage(::insight::LogLevel::kError, __FILE__,     \
                                  __LINE__, /*fatal=*/true)

/// Invariant check: active in all build types (database engines keep
/// checks on; corruption is worse than a crash).
#define INSIGHT_CHECK(cond)                                                  \
  if (!(cond)) INSIGHT_FATAL() << "Check failed: " #cond " "

#define INSIGHT_DCHECK(cond) INSIGHT_CHECK(cond)

#endif  // INSIGHTNOTES_COMMON_LOGGING_H_
