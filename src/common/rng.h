#ifndef INSIGHTNOTES_COMMON_RNG_H_
#define INSIGHTNOTES_COMMON_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace insight {

/// Deterministic pseudo-random generator (xorshift128+) used by the
/// workload generators and property tests. Every consumer takes an explicit
/// seed so runs are reproducible across platforms (std::mt19937
/// distributions are not guaranteed identical across standard libraries).
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) { Reseed(seed); }

  void Reseed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the two lanes.
    s_[0] = SplitMix(&seed);
    s_[1] = SplitMix(&seed);
  }

  uint64_t Next() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % span);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability p of returning true.
  bool NextBool(double p = 0.5) { return NextDouble() < p; }

  /// Zipf-distributed rank in [1, n] with skew parameter s (s=0 is uniform).
  /// Uses rejection-inversion; adequate for workload generation.
  int64_t Zipf(int64_t n, double s);

  /// Picks one element uniformly from a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[static_cast<size_t>(Next() % v.size())];
  }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  uint64_t s_[2];
};

}  // namespace insight

#endif  // INSIGHTNOTES_COMMON_RNG_H_
