#ifndef INSIGHTNOTES_COMMON_RESULT_H_
#define INSIGHTNOTES_COMMON_RESULT_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "common/status.h"

namespace insight {

/// Result<T> holds either a value of type T or an error Status.
/// Modeled after arrow::Result: fallible functions that produce a value
/// return Result<T>; callers unwrap via INSIGHT_ASSIGN_OR_RETURN or
/// ValueOrDie() when failure is a programming error.
template <typename T>
class Result {
 public:
  /// Implicit from a value: `return some_t;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from an error status: `return Status::NotFound(...)`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    if (status_.ok()) {
      // A Result constructed from a Status must carry an error.
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; aborts if this Result holds an error.
  const T& ValueOrDie() const& {
    DieIfError();
    return *value_;
  }
  T& ValueOrDie() & {
    DieIfError();
    return *value_;
  }
  // By value, not T&&: a returned rvalue reference into a temporary
  // Result dangles in `for (auto& x : SomeCall().ValueOrDie())`; a
  // prvalue is lifetime-extended by range-for.
  T ValueOrDie() && {
    DieIfError();
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  // By value, not T&&: returning an xvalue reference from a temporary
  // Result would dangle in `for (auto& x : *SomeCall())` — a prvalue gets
  // lifetime-extended by range-for, a returned rvalue reference does not.
  T operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void DieIfError() const {
    if (!value_.has_value()) {
      std::fprintf(stderr, "Result::ValueOrDie on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;  // OK when value_ is set.
};

}  // namespace insight

#endif  // INSIGHTNOTES_COMMON_RESULT_H_
