#include "storage/buffer_pool.h"

namespace insight {

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();  // Drop the pin we hold before taking over other's.
    pool_ = other.pool_;
    frame_ = other.frame_;
    data_ = other.data_;
    dirty_ = other.dirty_;
    other.pool_ = nullptr;
    other.frame_ = 0;
    other.data_ = nullptr;
    other.dirty_ = false;
  }
  return *this;
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_, dirty_);
    pool_ = nullptr;
    data_ = nullptr;
    dirty_ = false;
  }
}

BufferPool::BufferPool(StorageManager* storage, size_t capacity_frames)
    : storage_(storage), frames_(capacity_frames) {
  INSIGHT_CHECK(capacity_frames >= 4) << "buffer pool too small";
}

Result<PageGuard> BufferPool::FetchPage(FileId file, PageId page) {
  const Key key{file, page};
  auto it = table_.find(key);
  if (it != table_.end()) {
    Frame& f = frames_[it->second];
    ++f.pin_count;
    f.referenced = true;
    ++stats_.hits;
    return PageGuard(this, it->second, f.page.data);
  }
  ++stats_.misses;
  INSIGHT_ASSIGN_OR_RETURN(size_t idx, GrabFrame());
  Frame& f = frames_[idx];
  PageStore* store = storage_->GetStore(file);
  if (store == nullptr) {
    return Status::InvalidArgument("unknown file " + std::to_string(file));
  }
  INSIGHT_RETURN_NOT_OK(store->ReadPage(page, &f.page));
  f.file = file;
  f.page_id = page;
  f.pin_count = 1;
  f.dirty = false;
  f.valid = true;
  f.referenced = true;
  table_[key] = idx;
  return PageGuard(this, idx, f.page.data);
}

Result<PageGuard> BufferPool::NewPage(FileId file, PageId* page_id_out) {
  PageStore* store = storage_->GetStore(file);
  if (store == nullptr) {
    return Status::InvalidArgument("unknown file " + std::to_string(file));
  }
  INSIGHT_ASSIGN_OR_RETURN(PageId page, store->AllocatePage());
  ++stats_.allocations;
  INSIGHT_ASSIGN_OR_RETURN(size_t idx, GrabFrame());
  Frame& f = frames_[idx];
  f.page.Zero();
  f.file = file;
  f.page_id = page;
  f.pin_count = 1;
  f.dirty = true;  // New pages must reach the store even if never written.
  f.valid = true;
  f.referenced = true;
  table_[Key{file, page}] = idx;
  *page_id_out = page;
  return PageGuard(this, idx, f.page.data);
}

Status BufferPool::FlushAll() {
  for (Frame& f : frames_) {
    if (f.valid && f.dirty) {
      PageStore* store = storage_->GetStore(f.file);
      INSIGHT_RETURN_NOT_OK(store->WritePage(f.page_id, f.page));
      f.dirty = false;
      ++stats_.writebacks;
    }
  }
  return Status::OK();
}

void BufferPool::Unpin(size_t frame, bool dirty) {
  Frame& f = frames_[frame];
  INSIGHT_CHECK(f.pin_count > 0) << "unpin of unpinned frame";
  --f.pin_count;
  if (dirty) f.dirty = true;
}

Result<size_t> BufferPool::GrabFrame() {
  // Clock sweep: up to two full passes (first clears reference bits).
  const size_t n = frames_.size();
  for (size_t step = 0; step < 2 * n; ++step) {
    const size_t idx = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % n;
    Frame& f = frames_[idx];
    if (!f.valid) return idx;
    if (f.pin_count > 0) continue;
    if (f.referenced) {
      f.referenced = false;
      continue;
    }
    // Victim found: write back if dirty, drop from the table.
    if (f.dirty) {
      PageStore* store = storage_->GetStore(f.file);
      INSIGHT_RETURN_NOT_OK(store->WritePage(f.page_id, f.page));
      ++stats_.writebacks;
    }
    table_.erase(Key{f.file, f.page_id});
    f.valid = false;
    f.dirty = false;
    return idx;
  }
  return Status::ResourceExhausted(
      "buffer pool: all frames pinned (capacity " + std::to_string(n) + ")");
}

}  // namespace insight
