#include "storage/buffer_pool.h"

#include <algorithm>

#include "obs/metrics.h"
#include "wal/crash_point.h"

namespace insight {

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();  // Drop the pin we hold before taking over other's.
    pool_ = other.pool_;
    frame_ = other.frame_;
    data_ = other.data_;
    dirty_ = other.dirty_;
    latch_ = other.latch_;
    other.pool_ = nullptr;
    other.frame_ = 0;
    other.data_ = nullptr;
    other.dirty_ = false;
    other.latch_ = LatchMode::kNone;
  }
  return *this;
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_, dirty_, latch_);
    pool_ = nullptr;
    data_ = nullptr;
    dirty_ = false;
    latch_ = LatchMode::kNone;
  }
}

BufferPool::BufferPool(StorageManager* storage, size_t capacity_frames)
    : storage_(storage) {
  INSIGHT_CHECK(capacity_frames >= 4) << "buffer pool too small";
  frames_.reserve(capacity_frames);
  for (size_t i = 0; i < capacity_frames; ++i) {
    frames_.push_back(std::make_unique<Frame>());
  }
  // One shard per ~4 frames, capped: small pools stay single-sharded
  // (exact single-threaded semantics), big pools spread contention.
  const size_t num_shards =
      std::max<size_t>(1, std::min<size_t>(16, capacity_frames / 4));
  shards_.reserve(num_shards);
  const size_t base = capacity_frames / num_shards;
  const size_t extra = capacity_frames % num_shards;
  size_t next = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->begin = next;
    next += base + (s < extra ? 1 : 0);
    shard->end = next;
    shard->clock_hand = shard->begin;
    shards_.push_back(std::move(shard));
  }
  INSIGHT_CHECK(next == capacity_frames);
}

void BufferPool::AcquireLatch(Frame& frame, LatchMode latch) {
  switch (latch) {
    case LatchMode::kNone:
      break;
    case LatchMode::kShared:
      if (!frame.latch.try_lock_shared()) {
        latch_waits_.fetch_add(1, std::memory_order_relaxed);
        EngineMetrics::Get().bufferpool_latch_waits->Add(1);
        frame.latch.lock_shared();
      }
      break;
    case LatchMode::kExclusive:
      if (!frame.latch.try_lock()) {
        latch_waits_.fetch_add(1, std::memory_order_relaxed);
        EngineMetrics::Get().bufferpool_latch_waits->Add(1);
        frame.latch.lock();
      }
      break;
  }
}

Result<PageGuard> BufferPool::FetchPage(FileId file, PageId page,
                                        LatchMode latch) {
  const Key key{file, page};
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lk(shard.mu);
  auto it = shard.table.find(key);
  if (it != shard.table.end()) {
    Frame& f = *frames_[it->second];
    f.pin_count.fetch_add(1);
    f.referenced.store(true, std::memory_order_relaxed);
    ++shard.stats.hits;
    EngineMetrics::Get().bufferpool_hits->Add(1);
    const size_t idx = it->second;
    lk.unlock();
    // Latch outside the shard latch: a latch holder may fetch other pages
    // of this shard, so latch-inside-shard-lock could deadlock.
    AcquireLatch(f, latch);
    return PageGuard(this, idx, f.page.data, latch);
  }
  ++shard.stats.misses;
  EngineMetrics::Get().bufferpool_misses->Add(1);
  INSIGHT_ASSIGN_OR_RETURN(size_t idx, GrabFrameLocked(shard));
  Frame& f = *frames_[idx];
  PageStore* store = storage_->GetStore(file);
  if (store == nullptr) {
    return Status::InvalidArgument("unknown file " + std::to_string(file));
  }
  INSIGHT_RETURN_NOT_OK(store->ReadPage(page, &f.page));
  AdmitLocked(shard, idx, key);
  f.dirty.store(false, std::memory_order_relaxed);
  f.page_lsn.store(0, std::memory_order_relaxed);
  lk.unlock();
  AcquireLatch(f, latch);
  return PageGuard(this, idx, f.page.data, latch);
}

Result<PageGuard> BufferPool::NewPage(FileId file, PageId* page_id_out,
                                      LatchMode latch) {
  PageStore* store = storage_->GetStore(file);
  if (store == nullptr) {
    return Status::InvalidArgument("unknown file " + std::to_string(file));
  }
  PageId page = kInvalidPageId;
  {
    // Prefer a page id orphaned by an earlier failed admission: leaking it
    // would skew the store's extent AND strand the retry on a different
    // shard than the one whose frame just freed up.
    std::lock_guard<std::mutex> sl(spare_mu_);
    auto spare = spare_pages_.find(file);
    if (spare != spare_pages_.end() && !spare->second.empty()) {
      page = spare->second.back();
      spare->second.pop_back();
    }
  }
  if (page == kInvalidPageId) {
    INSIGHT_ASSIGN_OR_RETURN(page, store->AllocatePage());
  }
  const Key key{file, page};
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lk(shard.mu);
  ++shard.stats.allocations;
  EngineMetrics::Get().bufferpool_allocations->Add(1);
  Result<size_t> grabbed = GrabFrameLocked(shard);
  if (!grabbed.ok()) {
    lk.unlock();
    std::lock_guard<std::mutex> sl(spare_mu_);
    spare_pages_[file].push_back(page);
    return grabbed.status();
  }
  const size_t idx = *grabbed;
  Frame& f = *frames_[idx];
  f.page.Zero();
  AdmitLocked(shard, idx, key);
  // New pages must reach the store even if never written.
  f.dirty.store(true, std::memory_order_relaxed);
  f.page_lsn.store(current_lsn_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  lk.unlock();
  AcquireLatch(f, latch);
  *page_id_out = page;
  return PageGuard(this, idx, f.page.data, latch);
}

void BufferPool::AdmitLocked(Shard& shard, size_t idx, const Key& key) {
  Frame& f = *frames_[idx];
  f.file = key.file;
  f.page_id = key.page;
  f.pin_count.store(1);
  f.valid = true;
  f.referenced.store(true, std::memory_order_relaxed);
  shard.table[key] = idx;
}

Status BufferPool::ForceLogFor(uint64_t page_lsn) {
  WalBridge* wal = wal_.load();
  if (wal == nullptr || page_lsn == 0) return Status::OK();
  if (page_lsn <= wal->DurableLsn()) return Status::OK();
  return wal->SyncToLsn(page_lsn);
}

Status BufferPool::FlushAll() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
    for (size_t i = shard->begin; i < shard->end; ++i) {
      Frame& f = *frames_[i];
      if (f.valid && f.dirty.load()) {
        PageStore* store = storage_->GetStore(f.file);
        INSIGHT_RETURN_NOT_OK(ForceLogFor(f.page_lsn.load()));
        INSIGHT_CRASH_POINT("bufferpool_flush_page");
        INSIGHT_RETURN_NOT_OK(store->WritePage(f.page_id, f.page));
        f.dirty.store(false);
        ++shard->stats.writebacks;
        EngineMetrics::Get().bufferpool_writebacks->Add(1);
      }
    }
  }
  return Status::OK();
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.writebacks += shard->stats.writebacks;
    total.allocations += shard->stats.allocations;
    total.evictions += shard->stats.evictions;
  }
  total.latch_waits = latch_waits_.load(std::memory_order_relaxed);
  return total;
}

void BufferPool::ResetStats() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
    shard->stats = BufferPoolStats{};
  }
  latch_waits_.store(0, std::memory_order_relaxed);
}

PageId BufferPool::FileNumPages(FileId file) const {
  PageStore* store = storage_->GetStore(file);
  return store == nullptr ? 0 : store->num_pages();
}

void BufferPool::Unpin(size_t frame, bool dirty, LatchMode latch) {
  Frame& f = *frames_[frame];
  // Order matters: publish the dirty bit and drop the latch before the
  // pin release makes the frame evictable.
  if (dirty) {
    // Tag the frame with the LSN of the operation that dirtied it so the
    // flush paths know how far the log must be forced first. fetch-max:
    // a page re-dirtied by a later op keeps the later LSN.
    const uint64_t op_lsn = current_lsn_.load(std::memory_order_relaxed);
    uint64_t seen = f.page_lsn.load(std::memory_order_relaxed);
    while (seen < op_lsn &&
           !f.page_lsn.compare_exchange_weak(seen, op_lsn,
                                             std::memory_order_relaxed)) {
    }
    f.dirty.store(true);
  }
  switch (latch) {
    case LatchMode::kNone:
      break;
    case LatchMode::kShared:
      f.latch.unlock_shared();
      break;
    case LatchMode::kExclusive:
      f.latch.unlock();
      break;
  }
  const int prev = f.pin_count.fetch_sub(1);
  INSIGHT_CHECK(prev > 0) << "unpin of unpinned frame";
}

Result<size_t> BufferPool::GrabFrameLocked(Shard& shard) {
  // Clock sweep over this shard's frames: up to two full passes (the
  // first clears reference bits).
  const size_t n = shard.end - shard.begin;
  for (size_t step = 0; step < 2 * n; ++step) {
    const size_t idx = shard.clock_hand;
    shard.clock_hand = shard.begin + (idx + 1 - shard.begin) % n;
    Frame& f = *frames_[idx];
    if (!f.valid) return idx;
    if (f.pin_count.load() > 0) continue;
    if (f.referenced.load(std::memory_order_relaxed)) {
      f.referenced.store(false, std::memory_order_relaxed);
      continue;
    }
    // Victim found: write back if dirty, drop from the table. The frame
    // is unpinned and pins only begin under shard.mu (held here), so the
    // page bytes are stable during writeback.
    if (f.dirty.load()) {
      PageStore* store = storage_->GetStore(f.file);
      // WAL-before-data: force the log before the page leaves the pool.
      INSIGHT_RETURN_NOT_OK(ForceLogFor(f.page_lsn.load()));
      INSIGHT_RETURN_NOT_OK(store->WritePage(f.page_id, f.page));
      ++shard.stats.writebacks;
      EngineMetrics::Get().bufferpool_writebacks->Add(1);
    }
    ++shard.stats.evictions;
    EngineMetrics::Get().bufferpool_evictions->Add(1);
    shard.table.erase(Key{f.file, f.page_id});
    f.valid = false;
    f.dirty.store(false);
    return idx;
  }
  return Status::ResourceExhausted(
      "buffer pool: all frames of shard pinned (" + std::to_string(n) +
      " frames/shard, " + std::to_string(frames_.size()) + " total)");
}

}  // namespace insight
