#ifndef INSIGHTNOTES_STORAGE_STORAGE_MANAGER_H_
#define INSIGHTNOTES_STORAGE_STORAGE_MANAGER_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "storage/page_store.h"

namespace insight {

/// Factory and registry of page files. A Database owns one StorageManager;
/// every heap file, index, and summary-storage table lives in its own
/// page file identified by FileId.
class StorageManager {
 public:
  enum class Backend { kMemory, kFile };

  /// `dir` is required (and must exist) for the file backend.
  explicit StorageManager(Backend backend, std::string dir = "")
      : backend_(backend), dir_(std::move(dir)) {}

  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  /// Creates a new page file. `name` becomes the on-disk file name for the
  /// file backend; it must be unique.
  Result<FileId> CreateFile(const std::string& name);

  PageStore* GetStore(FileId id) {
    return id < stores_.size() ? stores_[id].get() : nullptr;
  }

  size_t num_files() const { return stores_.size(); }

  /// Total allocated bytes across all page files.
  uint64_t TotalBytes() const;

  /// Syncs every page file (checkpoint tail: data pages written by
  /// FlushAll must hit stable storage before CheckpointEnd is logged).
  Status SyncAll();

  Backend backend() const { return backend_; }

  /// Test hook: wraps every store CreateFile builds before it is
  /// registered (e.g. in a FaultInjectingPageStore). Applies only to
  /// files created after the call.
  using StoreInterceptor = std::function<std::unique_ptr<PageStore>(
      const std::string& name, std::unique_ptr<PageStore> base)>;
  void set_store_interceptor(StoreInterceptor interceptor) {
    interceptor_ = std::move(interceptor);
  }

 private:
  Backend backend_;
  std::string dir_;
  StoreInterceptor interceptor_;
  std::vector<std::unique_ptr<PageStore>> stores_;
  std::vector<std::string> names_;
};

}  // namespace insight

#endif  // INSIGHTNOTES_STORAGE_STORAGE_MANAGER_H_
