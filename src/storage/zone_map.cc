#include "storage/zone_map.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace insight {

namespace {

/// Range refutation against [min, max] under Value::Compare's total order.
/// All-NULL (or no-value) ranges are handled by the caller: a comparison
/// against NULL is never true, so such a page is always refutable.
bool RangeRefutes(ZoneOp op, const Value& c, const Value& min,
                  const Value& max) {
  switch (op) {
    case ZoneOp::kEq:
      return c.Compare(min) < 0 || c.Compare(max) > 0;
    case ZoneOp::kLt:  // Needs some v < c; refuted when min >= c.
      return min.Compare(c) >= 0;
    case ZoneOp::kLe:  // Needs some v <= c; refuted when min > c.
      return min.Compare(c) > 0;
    case ZoneOp::kGt:  // Needs some v > c; refuted when max <= c.
      return max.Compare(c) <= 0;
    case ZoneOp::kGe:  // Needs some v >= c; refuted when max < c.
      return max.Compare(c) < 0;
  }
  return false;
}

}  // namespace

void PageZone::Widen(const Tuple& tuple) {
  any_rows = true;
  const size_t n = std::min(columns.size(), tuple.size());
  for (size_t i = 0; i < n; ++i) {
    const Value& v = tuple.at(i);
    if (v.is_null()) continue;
    ColumnBounds& b = columns[i];
    if (!b.seen) {
      b.seen = true;
      b.min = v;
      b.max = v;
    } else {
      if (v.Compare(b.min) < 0) b.min = v;
      if (v.Compare(b.max) > 0) b.max = v;
    }
  }
}

void PageZone::WidenLabel(const std::string& key, int64_t count) {
  any_rows = true;
  auto it = labels.find(key);
  if (it == labels.end()) {
    labels.emplace(key, LabelBounds{count, count});
  } else {
    it->second.min = std::min(it->second.min, count);
    it->second.max = std::max(it->second.max, count);
  }
}

PageZone& ZoneMapStore::ZoneFor(PageId page) {
  PageZone& zone = zones_[page];
  if (zone.columns.size() != num_columns_) {
    zone.columns.resize(num_columns_);
  }
  return zone;
}

void ZoneMapStore::WidenTuple(PageId page, const Tuple& tuple) {
  std::unique_lock lock(mu_);
  ZoneFor(page).Widen(tuple);
  EngineMetrics::Get().zonemap_widenings->Add(1);
}

void ZoneMapStore::WidenLabels(
    PageId page, const std::vector<std::pair<std::string, int64_t>>& counts) {
  if (counts.empty()) return;
  std::unique_lock lock(mu_);
  PageZone& zone = ZoneFor(page);
  for (const auto& [key, count] : counts) {
    zone.WidenLabel(key, count);
  }
  EngineMetrics::Get().zonemap_widenings->Add(1);
}

void ZoneMapStore::MarkStale(PageId page) {
  std::unique_lock lock(mu_);
  auto it = zones_.find(page);
  if (it == zones_.end()) return;  // Untracked pages stay untracked.
  if (!it->second.stale) {
    it->second.stale = true;
    EngineMetrics::Get().zonemap_stale_marks->Add(1);
  }
}

bool ZoneMapStore::ProbeRefutes(const ZoneProbe& probe, const PageZone& zone) {
  if (!zone.any_rows) return true;  // Rebuilt-empty page: nothing to match.
  if (probe.kind == ZoneProbe::Kind::kColumn) {
    if (probe.column >= zone.columns.size()) return false;
    const PageZone::ColumnBounds& b = zone.columns[probe.column];
    // No non-NULL value on the page: every comparison evaluates to NULL,
    // which the filter rejects, so the page cannot contribute.
    if (!b.seen) return true;
    return RangeRefutes(probe.op, probe.constant, b.min, b.max);
  }
  // Label probe. A missing entry on a tracked page means no row here
  // carries that label: labelValue() is NULL for every row, the
  // comparison is never true, skip.
  auto it = zone.labels.find(probe.label_key);
  if (it == zone.labels.end()) return true;
  const Value min = Value::Int(it->second.min);
  const Value max = Value::Int(it->second.max);
  return RangeRefutes(probe.op, probe.constant, min, max);
}

bool ZoneMapStore::CanSkip(PageId page, const ZonePredicate& pred) const {
  if (pred.empty()) return false;
  std::shared_lock lock(mu_);
  auto it = zones_.find(page);
  if (it == zones_.end()) return false;  // Never skip untracked pages.
  for (const ZoneProbe& probe : pred.probes) {
    if (ProbeRefutes(probe, it->second)) return true;
  }
  return false;
}

double ZoneMapStore::EstimateSkipFraction(const ZonePredicate& pred,
                                          size_t total_pages) const {
  if (pred.empty() || total_pages == 0) return 0.0;
  std::shared_lock lock(mu_);
  size_t skippable = 0;
  for (const auto& [page, zone] : zones_) {
    for (const ZoneProbe& probe : pred.probes) {
      if (ProbeRefutes(probe, zone)) {
        ++skippable;
        break;
      }
    }
  }
  const double frac = static_cast<double>(skippable) /
                      static_cast<double>(total_pages);
  return std::min(frac, 1.0);
}

std::vector<PageId> ZoneMapStore::StalePages() const {
  std::shared_lock lock(mu_);
  std::vector<PageId> out;
  for (const auto& [page, zone] : zones_) {
    if (zone.stale) out.push_back(page);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ZoneMapStore::ReplacePage(PageId page, PageZone zone) {
  if (zone.columns.size() != num_columns_) zone.columns.resize(num_columns_);
  zone.stale = false;
  std::unique_lock lock(mu_);
  zones_[page] = std::move(zone);
  EngineMetrics::Get().zonemap_page_rebuilds->Add(1);
}

void ZoneMapStore::Clear() {
  std::unique_lock lock(mu_);
  zones_.clear();
}

bool ZoneMapStore::HasPage(PageId page) const {
  std::shared_lock lock(mu_);
  return zones_.count(page) != 0;
}

PageZone ZoneMapStore::GetPage(PageId page) const {
  std::shared_lock lock(mu_);
  auto it = zones_.find(page);
  if (it == zones_.end()) return PageZone{};
  return it->second;
}

size_t ZoneMapStore::tracked_pages() const {
  std::shared_lock lock(mu_);
  return zones_.size();
}

}  // namespace insight
