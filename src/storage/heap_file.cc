#include "storage/heap_file.h"

#include <cstring>

#include "common/logging.h"
#include "obs/metrics.h"

namespace insight {

// Heap page layout:
//   [0]   u8   page_type (1 = heap, 2 = overflow, 0 = freed)
//   [1,2] u16  slot_count
//   [3,4] u16  data_start (offset of lowest record byte; records grow down)
//   [8..] slot array, 4 bytes each: u16 offset (0 = dead), u16 capacity
// Record cell (stored within its slot's capacity):
//   u8 flag: 0 = inline, 1 = overflow
//   inline:   u16 length, then payload bytes
//   overflow: u32 first_overflow_page, u32 total_length
//
// Overflow page layout:
//   [0]    u8  page_type = 2
//   [1..4] u32 next_page (kInvalidPageId at chain end)
//   [5..8] u32 chunk_len
//   [9..]  chunk bytes

namespace {

constexpr uint8_t kHeapPageType = 1;
constexpr uint8_t kOverflowPageType = 2;
constexpr size_t kHeaderSize = 8;
constexpr size_t kSlotSize = 4;
constexpr size_t kOverflowHeader = 9;
constexpr size_t kInlineCellHeader = 3;  // flag + u16 length.
constexpr size_t kOverflowCellSize = 9;  // flag + u32 + u32.

uint16_t GetU16(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
void SetU16(char* p, uint16_t v) { std::memcpy(p, &v, 2); }
uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
void SetU32(char* p, uint32_t v) { std::memcpy(p, &v, 4); }

uint16_t SlotCount(const char* page) { return GetU16(page + 1); }
void SetSlotCount(char* page, uint16_t n) { SetU16(page + 1, n); }
uint16_t DataStart(const char* page) { return GetU16(page + 3); }
void SetDataStart(char* page, uint16_t v) { SetU16(page + 3, v); }

void InitHeapPage(char* page) {
  page[0] = static_cast<char>(kHeapPageType);
  SetSlotCount(page, 0);
  SetDataStart(page, static_cast<uint16_t>(kPageSize));
}

size_t SlotPos(uint16_t slot) { return kHeaderSize + slot * kSlotSize; }

uint16_t SlotOffset(const char* page, uint16_t slot) {
  return GetU16(page + SlotPos(slot));
}
uint16_t SlotCapacity(const char* page, uint16_t slot) {
  return GetU16(page + SlotPos(slot) + 2);
}
void SetSlot(char* page, uint16_t slot, uint16_t offset, uint16_t capacity) {
  SetU16(page + SlotPos(slot), offset);
  SetU16(page + SlotPos(slot) + 2, capacity);
}

// Contiguous free bytes between the slot array and the data area,
// assuming `extra_slots` more slot entries.
size_t ContiguousFree(const char* page, int extra_slots) {
  const size_t slots_end = SlotPos(SlotCount(page)) +
                           static_cast<size_t>(extra_slots) * kSlotSize;
  const size_t data_start = DataStart(page);
  return data_start > slots_end ? data_start - slots_end : 0;
}

// Total reclaimable bytes: contiguous space + dead slot capacities.
size_t TotalFree(const char* page, int extra_slots) {
  size_t total = ContiguousFree(page, extra_slots);
  const uint16_t count = SlotCount(page);
  for (uint16_t s = 0; s < count; ++s) {
    if (SlotOffset(page, s) == 0) total += SlotCapacity(page, s);
  }
  return total;
}

// Slides all live records to the end of the page, erasing dead-slot
// holes. Slot indices (and thus RowLocations) are unchanged.
void CompactPage(char* page) {
  const uint16_t count = SlotCount(page);
  char buffer[kPageSize];
  size_t write = kPageSize;
  struct Move {
    uint16_t slot;
    uint16_t capacity;
    size_t new_offset;
  };
  std::vector<Move> moves;
  for (uint16_t s = 0; s < count; ++s) {
    const uint16_t offset = SlotOffset(page, s);
    if (offset == 0) {
      SetSlot(page, s, 0, 0);
      continue;
    }
    const uint16_t capacity = SlotCapacity(page, s);
    write -= capacity;
    std::memcpy(buffer + write, page + offset, capacity);
    moves.push_back(Move{s, capacity, write});
  }
  std::memcpy(page + write, buffer + write, kPageSize - write);
  for (const Move& move : moves) {
    SetSlot(page, move.slot, static_cast<uint16_t>(move.new_offset),
            move.capacity);
  }
  SetDataStart(page, static_cast<uint16_t>(write));
}

}  // namespace

size_t HeapFile::MaxInlineRecordSize() {
  return kPageSize - kHeaderSize - kSlotSize - kInlineCellHeader;
}

Result<int> HeapFile::TryInsertInPage(PageId page_id, std::string_view cell,
                                      size_t capacity) {
  INSIGHT_ASSIGN_OR_RETURN(
      PageGuard guard,
      pool_->FetchPage(file_, page_id, LatchMode::kExclusive));
  char* page = guard.data();
  if (page[0] != static_cast<char>(kHeapPageType)) return -1;

  // Preferred: reuse a dead slot entry (no new slot bytes needed).
  int dead_slot = -1;
  const uint16_t count = SlotCount(page);
  for (uint16_t s = 0; s < count; ++s) {
    if (SlotOffset(page, s) == 0) {
      dead_slot = s;
      break;
    }
  }
  const int extra_slots = dead_slot >= 0 ? 0 : 1;
  if (dead_slot < 0 && count >= UINT16_MAX - 1) return -1;
  if (ContiguousFree(page, extra_slots) < capacity) {
    if (TotalFree(page, extra_slots) < capacity) return -1;
    CompactPage(page);
    guard.MarkDirty();
    if (ContiguousFree(page, extra_slots) < capacity) return -1;
  }
  const uint16_t new_start =
      static_cast<uint16_t>(DataStart(page) - capacity);
  std::memcpy(page + new_start, cell.data(), cell.size());
  const uint16_t slot =
      dead_slot >= 0 ? static_cast<uint16_t>(dead_slot) : count;
  SetSlot(page, slot, new_start, static_cast<uint16_t>(capacity));
  if (dead_slot < 0) SetSlotCount(page, count + 1);
  SetDataStart(page, new_start);
  guard.MarkDirty();
  return slot;
}

Result<RowLocation> HeapFile::InsertCell(std::string_view cell,
                                         size_t capacity) {
  INSIGHT_CHECK(capacity >= cell.size());
  // Try the remembered fill page, then pages with reclaimable space,
  // then a fresh page.
  if (fill_page_ != kInvalidPageId) {
    INSIGHT_ASSIGN_OR_RETURN(int slot,
                             TryInsertInPage(fill_page_, cell, capacity));
    if (slot >= 0) {
      return RowLocation{fill_page_, static_cast<uint16_t>(slot)};
    }
  }
  for (auto it = pages_with_space_.begin(); it != pages_with_space_.end();) {
    const PageId candidate = *it;
    if (candidate == fill_page_) {
      it = pages_with_space_.erase(it);
      continue;
    }
    INSIGHT_ASSIGN_OR_RETURN(int slot,
                             TryInsertInPage(candidate, cell, capacity));
    if (slot >= 0) {
      return RowLocation{candidate, static_cast<uint16_t>(slot)};
    }
    // Candidate could not host this record; drop it from the set so
    // repeated large inserts don't rescan it (small records may still
    // fit, but the set re-learns via future deletes).
    it = pages_with_space_.erase(it);
  }
  PageId page_id;
  INSIGHT_ASSIGN_OR_RETURN(
      PageGuard guard,
      pool_->NewPage(file_, &page_id, LatchMode::kExclusive));
  InitHeapPage(guard.data());
  guard.MarkDirty();
  guard.Release();
  INSIGHT_ASSIGN_OR_RETURN(int slot, TryInsertInPage(page_id, cell, capacity));
  if (slot < 0) {
    return Status::Internal("record does not fit an empty page");
  }
  fill_page_ = page_id;
  return RowLocation{page_id, static_cast<uint16_t>(slot)};
}

namespace {

std::string EncodeInlineCell(std::string_view record) {
  std::string cell;
  cell.reserve(record.size() + kInlineCellHeader);
  cell.push_back('\0');
  cell.push_back(static_cast<char>(record.size() & 0xFF));
  cell.push_back(static_cast<char>((record.size() >> 8) & 0xFF));
  cell.append(record.data(), record.size());
  return cell;
}

}  // namespace

Result<RowLocation> HeapFile::Insert(std::string_view record) {
  if (record.size() <= MaxInlineRecordSize()) {
    const std::string cell = EncodeInlineCell(record);
    return InsertCell(cell, cell.size());
  }
  INSIGHT_ASSIGN_OR_RETURN(PageId first, WriteOverflowChain(record));
  std::string cell(kOverflowCellSize, '\0');
  cell[0] = '\1';
  SetU32(cell.data() + 1, first);
  SetU32(cell.data() + 5, static_cast<uint32_t>(record.size()));
  return InsertCell(cell, cell.size());
}

Result<PageId> HeapFile::AllocOverflowPage(PageGuard* guard) {
  if (!free_overflow_.empty()) {
    const PageId page = free_overflow_.back();
    free_overflow_.pop_back();
    INSIGHT_ASSIGN_OR_RETURN(
        *guard, pool_->FetchPage(file_, page, LatchMode::kExclusive));
    return page;
  }
  PageId page;
  INSIGHT_ASSIGN_OR_RETURN(*guard,
                           pool_->NewPage(file_, &page, LatchMode::kExclusive));
  return page;
}

Result<PageId> HeapFile::WriteOverflowChain(std::string_view payload) {
  constexpr size_t kChunk = kPageSize - kOverflowHeader;
  PageId first = kInvalidPageId;
  PageId prev = kInvalidPageId;
  size_t pos = 0;
  while (pos < payload.size() || first == kInvalidPageId) {
    const size_t len = std::min(kChunk, payload.size() - pos);
    PageGuard guard;
    INSIGHT_ASSIGN_OR_RETURN(PageId page_id, AllocOverflowPage(&guard));
    char* page = guard.data();
    page[0] = static_cast<char>(kOverflowPageType);
    SetU32(page + 1, kInvalidPageId);
    SetU32(page + 5, static_cast<uint32_t>(len));
    std::memcpy(page + kOverflowHeader, payload.data() + pos, len);
    guard.MarkDirty();
    guard.Release();
    if (prev != kInvalidPageId) {
      INSIGHT_ASSIGN_OR_RETURN(
          PageGuard prev_guard,
          pool_->FetchPage(file_, prev, LatchMode::kExclusive));
      SetU32(prev_guard.data() + 1, page_id);
      prev_guard.MarkDirty();
    } else {
      first = page_id;
    }
    prev = page_id;
    pos += len;
    if (pos >= payload.size()) break;
  }
  return first;
}

Result<std::string> HeapFile::ReadOverflowChain(PageId first,
                                                uint32_t total) const {
  std::string out;
  out.reserve(total);
  PageId cur = first;
  while (cur != kInvalidPageId) {
    INSIGHT_ASSIGN_OR_RETURN(
        PageGuard guard, pool_->FetchPage(file_, cur, LatchMode::kShared));
    const char* page = guard.data();
    if (page[0] != static_cast<char>(kOverflowPageType)) {
      return Status::Corruption("overflow chain hits non-overflow page");
    }
    const uint32_t len = GetU32(page + 5);
    out.append(page + kOverflowHeader, len);
    cur = GetU32(page + 1);
  }
  if (out.size() != total) {
    return Status::Corruption("overflow chain length mismatch");
  }
  return out;
}

Status HeapFile::FreeOverflowChain(PageId first) {
  PageId cur = first;
  while (cur != kInvalidPageId) {
    INSIGHT_ASSIGN_OR_RETURN(
        PageGuard guard, pool_->FetchPage(file_, cur, LatchMode::kExclusive));
    char* page = guard.data();
    const PageId next = GetU32(page + 1);
    page[0] = 0;
    guard.MarkDirty();
    free_overflow_.push_back(cur);
    cur = next;
  }
  return Status::OK();
}

Result<std::string> HeapFile::Get(RowLocation loc) const {
  INSIGHT_ASSIGN_OR_RETURN(
      PageGuard guard,
      pool_->FetchPage(file_, loc.page_id, LatchMode::kShared));
  const char* page = guard.data();
  if (page[0] != static_cast<char>(kHeapPageType)) {
    return Status::Corruption("not a heap page");
  }
  if (loc.slot >= SlotCount(page)) {
    return Status::NotFound("slot out of range");
  }
  const uint16_t offset = SlotOffset(page, loc.slot);
  if (offset == 0) return Status::NotFound("deleted record");
  if (page[offset] == '\0') {
    const uint16_t len = GetU16(page + offset + 1);
    return std::string(page + offset + kInlineCellHeader, len);
  }
  const PageId first = GetU32(page + offset + 1);
  const uint32_t total = GetU32(page + offset + 5);
  return ReadOverflowChain(first, total);
}

Status HeapFile::Delete(RowLocation loc) {
  INSIGHT_ASSIGN_OR_RETURN(
      PageGuard guard,
      pool_->FetchPage(file_, loc.page_id, LatchMode::kExclusive));
  char* page = guard.data();
  if (loc.slot >= SlotCount(page)) return Status::NotFound("slot");
  const uint16_t offset = SlotOffset(page, loc.slot);
  if (offset == 0) return Status::NotFound("already deleted");
  if (page[offset] == '\1') {
    const PageId first = GetU32(page + offset + 1);
    guard.Release();
    INSIGHT_RETURN_NOT_OK(FreeOverflowChain(first));
    INSIGHT_ASSIGN_OR_RETURN(
        guard, pool_->FetchPage(file_, loc.page_id, LatchMode::kExclusive));
    page = guard.data();
  }
  // Keep the capacity in the dead slot entry for free-space accounting.
  SetU16(page + SlotPos(loc.slot), 0);
  guard.MarkDirty();
  pages_with_space_.insert(loc.page_id);
  return Status::OK();
}

Result<RowLocation> HeapFile::Update(RowLocation loc,
                                     std::string_view record) {
  // In-place rewrite whenever the new cell fits the slot's capacity.
  if (record.size() + kInlineCellHeader <= MaxInlineRecordSize()) {
    INSIGHT_ASSIGN_OR_RETURN(
        PageGuard guard,
        pool_->FetchPage(file_, loc.page_id, LatchMode::kExclusive));
    char* page = guard.data();
    if (loc.slot < SlotCount(page)) {
      const uint16_t offset = SlotOffset(page, loc.slot);
      const uint16_t capacity = SlotCapacity(page, loc.slot);
      if (offset != 0 && page[offset] == '\0' &&
          record.size() + kInlineCellHeader <= capacity) {
        SetU16(page + offset + 1, static_cast<uint16_t>(record.size()));
        std::memcpy(page + offset + kInlineCellHeader, record.data(),
                    record.size());
        guard.MarkDirty();
        return loc;
      }
    }
  }
  // Relocate with growth headroom (25%), since a record that grew once
  // tends to keep growing (the summary-storage pattern).
  INSIGHT_RETURN_NOT_OK(Delete(loc));
  if (record.size() + kInlineCellHeader <= MaxInlineRecordSize()) {
    const std::string cell = EncodeInlineCell(record);
    const size_t max_capacity = MaxInlineRecordSize() + kInlineCellHeader;
    const size_t capacity =
        std::min(max_capacity, cell.size() + record.size() / 4);
    return InsertCell(cell, capacity);
  }
  return Insert(record);
}

Status HeapFile::OverwriteRecordBytes(RowLocation loc, size_t offset,
                                      std::string_view bytes) {
  INSIGHT_ASSIGN_OR_RETURN(
      PageGuard guard,
      pool_->FetchPage(file_, loc.page_id, LatchMode::kExclusive));
  char* page = guard.data();
  if (page[0] != static_cast<char>(kHeapPageType)) {
    return Status::Corruption("not a heap page");
  }
  if (loc.slot >= SlotCount(page)) return Status::NotFound("slot");
  const uint16_t cell = SlotOffset(page, loc.slot);
  if (cell == 0) return Status::NotFound("deleted record");
  if (page[cell] == '\0') {
    const uint16_t len = GetU16(page + cell + 1);
    if (offset + bytes.size() > len) {
      return Status::InvalidArgument("record overwrite out of bounds");
    }
    std::memcpy(page + cell + kInlineCellHeader + offset, bytes.data(),
                bytes.size());
    guard.MarkDirty();
    return Status::OK();
  }
  const PageId first = GetU32(page + cell + 1);
  const uint32_t total = GetU32(page + cell + 5);
  if (offset + bytes.size() > total) {
    return Status::InvalidArgument("record overwrite out of bounds");
  }
  guard.Release();
  INSIGHT_ASSIGN_OR_RETURN(
      PageGuard ovf, pool_->FetchPage(file_, first, LatchMode::kExclusive));
  char* opage = ovf.data();
  if (opage[0] != static_cast<char>(kOverflowPageType)) {
    return Status::Corruption("overflow chain hits non-overflow page");
  }
  const uint32_t chunk_len = GetU32(opage + 5);
  if (offset + bytes.size() > chunk_len) {
    return Status::InvalidArgument(
        "record overwrite crosses overflow chunks");
  }
  std::memcpy(opage + kOverflowHeader + offset, bytes.data(), bytes.size());
  ovf.MarkDirty();
  return Status::OK();
}

bool HeapFile::Iterator::Next(RowLocation* loc, std::string* record) {
  while (true) {
    if (page_ >= end_) return false;  // Range morsel exhausted.
    if (slot_ == 0 && filter_ && filter_(page_)) {
      ++page_;  // Pruned before the fetch: the page is never pinned.
      continue;
    }
    auto guard_result =
        heap_->pool_->FetchPage(heap_->file_, page_, LatchMode::kShared);
    if (!guard_result.ok()) return false;  // Past last page.
    PageGuard guard = std::move(guard_result).ValueOrDie();
    const char* page = guard.data();
    // slot_ == 0 marks the first fetch of this page by this iterator;
    // resumed mid-page fetches do not recount it.
    if (slot_ == 0) EngineMetrics::Get().heap_pages_scanned->Add(1);
    if (page[0] != static_cast<char>(kHeapPageType)) {
      ++page_;  // Overflow or freed page: skip.
      slot_ = 0;
      continue;
    }
    const uint16_t count = SlotCount(page);
    while (slot_ < count) {
      const uint16_t s = slot_++;
      const uint16_t offset = SlotOffset(page, s);
      if (offset == 0) continue;
      *loc = RowLocation{page_, s};
      if (page[offset] == '\0') {
        const uint16_t len = GetU16(page + offset + 1);
        record->assign(page + offset + kInlineCellHeader, len);
        return true;
      }
      const PageId first = GetU32(page + offset + 1);
      const uint32_t total = GetU32(page + offset + 5);
      guard.Release();
      auto chain = heap_->ReadOverflowChain(first, total);
      if (!chain.ok()) {
        INSIGHT_LOG(Error) << "heap scan: " << chain.status().ToString();
        return false;
      }
      *record = std::move(chain).ValueOrDie();
      return true;
    }
    ++page_;
    slot_ = 0;
  }
}

}  // namespace insight
