#include "storage/storage_manager.h"

namespace insight {

Result<FileId> StorageManager::CreateFile(const std::string& name) {
  for (const std::string& existing : names_) {
    if (existing == name) {
      return Status::AlreadyExists("page file " + name);
    }
  }
  std::unique_ptr<PageStore> store;
  if (backend_ == Backend::kMemory) {
    store = std::make_unique<InMemoryPageStore>();
  } else {
    INSIGHT_ASSIGN_OR_RETURN(auto file_store,
                             FilePageStore::Open(dir_ + "/" + name));
    store = std::move(file_store);
  }
  if (interceptor_) store = interceptor_(name, std::move(store));
  stores_.push_back(std::move(store));
  names_.push_back(name);
  return static_cast<FileId>(stores_.size() - 1);
}

Status StorageManager::SyncAll() {
  for (const auto& store : stores_) {
    INSIGHT_RETURN_NOT_OK(store->Sync());
  }
  return Status::OK();
}

uint64_t StorageManager::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& store : stores_) total += store->size_bytes();
  return total;
}

}  // namespace insight
