#ifndef INSIGHTNOTES_STORAGE_PAGE_STORE_H_
#define INSIGHTNOTES_STORAGE_PAGE_STORE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"

namespace insight {

/// Backend that persists fixed-size pages for one file. The buffer pool
/// sits on top; nothing else touches a PageStore directly.
class PageStore {
 public:
  virtual ~PageStore() = default;

  /// Appends a zeroed page and returns its id.
  virtual Result<PageId> AllocatePage() = 0;

  virtual Status ReadPage(PageId id, Page* out) = 0;
  virtual Status WritePage(PageId id, const Page& page) = 0;

  /// Makes every completed WritePage durable. Default is a no-op: the
  /// in-memory store has nothing to flush. FilePageStore issues fsync.
  virtual Status Sync() { return Status::OK(); }

  virtual PageId num_pages() const = 0;

  /// Bytes of backing storage currently allocated.
  uint64_t size_bytes() const {
    return static_cast<uint64_t>(num_pages()) * kPageSize;
  }
};

/// Heap-backed page store. Used by tests and as the default backend for
/// laptop-scale experiments (the paper's machine had 128 GB of RAM; the
/// experiments we reproduce are CPU/IO-pattern-bound, not durability
/// tests).
///
/// Thread-safe at the directory level: the mutex guards the page vector
/// (allocation concurrent with reads/writes); per-page byte copies run
/// outside it, relying on the buffer pool's invariant that one page is
/// never read from and written to the store concurrently.
class InMemoryPageStore : public PageStore {
 public:
  Result<PageId> AllocatePage() override;
  Status ReadPage(PageId id, Page* out) override;
  Status WritePage(PageId id, const Page& page) override;
  PageId num_pages() const override {
    std::lock_guard<std::mutex> lk(mu_);
    return static_cast<PageId>(pages_.size());
  }

 private:
  /// The page slot for `id`, or null when out of range.
  Page* Slot(PageId id) const;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Page>> pages_;
};

/// POSIX-file-backed page store (pread/pwrite on one file).
class FilePageStore : public PageStore {
 public:
  /// Opens (creating if needed) the file at `path`.
  static Result<std::unique_ptr<FilePageStore>> Open(const std::string& path);

  ~FilePageStore() override;

  FilePageStore(const FilePageStore&) = delete;
  FilePageStore& operator=(const FilePageStore&) = delete;

  Result<PageId> AllocatePage() override;
  Status ReadPage(PageId id, Page* out) override;
  Status WritePage(PageId id, const Page& page) override;
  Status Sync() override;
  PageId num_pages() const override { return num_pages_.load(); }

 private:
  FilePageStore(int fd, std::string path, PageId num_pages)
      : fd_(fd), path_(std::move(path)), num_pages_(num_pages) {}

  int fd_;
  std::string path_;
  std::mutex alloc_mu_;  // Serializes file extension.
  std::atomic<PageId> num_pages_;
};

/// fsyncs the directory containing `path`, making a just-created file's
/// directory entry durable. A file created and fsynced but whose dirent
/// was never synced can vanish entirely after a crash.
Status SyncContainingDirectory(const std::string& path);

}  // namespace insight

#endif  // INSIGHTNOTES_STORAGE_PAGE_STORE_H_
