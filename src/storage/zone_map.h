#ifndef INSIGHTNOTES_STORAGE_ZONE_MAP_H_
#define INSIGHTNOTES_STORAGE_ZONE_MAP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/page.h"
#include "types/tuple.h"
#include "types/value.h"

namespace insight {

/// Comparison shapes a zone map can prune on. Deliberately a storage-local
/// enum (the engine's CompareOp lives above this layer); the optimizer
/// translates when it builds a ZonePredicate. `!=` is absent on purpose:
/// a min/max range can almost never refute it.
enum class ZoneOp : uint8_t { kEq, kLt, kLe, kGt, kGe };

/// One conjunct the scan may use to skip whole pages. Either a base-column
/// probe (`column` indexes the table schema, `constant` compared with
/// Value::Compare — the same total order the row filter uses, NaN above
/// every real) or a summary-label probe (`label_key` is
/// "instance.label" lowercased, bounds over per-row annotation counts).
struct ZoneProbe {
  enum class Kind : uint8_t { kColumn, kLabel };
  Kind kind = Kind::kColumn;
  size_t column = 0;       // kColumn: index into the table schema.
  std::string label_key;   // kLabel: lowercased "instance.label".
  ZoneOp op = ZoneOp::kEq;
  Value constant;          // kLabel probes always carry Int.
};

/// Conjunction of probes: a page is skippable when ANY probe refutes it
/// (the predicate is an AND, so one provably-empty conjunct empties the
/// page's contribution).
struct ZonePredicate {
  std::vector<ZoneProbe> probes;
  bool empty() const { return probes.empty(); }
};

/// Per-page derived bounds. Invariant: bounds are a SUPERSET of the values
/// reachable on the page through ANY snapshot — writes only ever widen
/// them, deletes/aborts/GC only mark the page stale (tightening happens
/// exclusively in maintenance, which re-derives from every stored
/// version). That widen-only discipline is what makes skipping a stale
/// page safe: stale means "possibly looser than necessary", never
/// "possibly wrong".
struct PageZone {
  struct ColumnBounds {
    bool seen = false;  // Any non-NULL value recorded for this column.
    Value min;
    Value max;
  };
  struct LabelBounds {
    int64_t min = 0;
    int64_t max = 0;
  };
  std::vector<ColumnBounds> columns;
  /// "instance.label" -> bounds over annotation counts of rows on the
  /// page. A missing entry on a tracked page means no row on the page
  /// carries that label (every summary mutation funnels through
  /// SummaryManager::SaveSummaries, which widens here), so a label probe
  /// may skip the page outright.
  std::map<std::string, LabelBounds> labels;
  bool any_rows = false;  // False only for a rebuilt-empty page.
  bool stale = false;     // Bounds valid but possibly loose; re-derive.

  /// Widens column bounds to cover `tuple` (columns must be pre-sized).
  void Widen(const Tuple& tuple);
  /// Widens one label's count bounds.
  void WidenLabel(const std::string& key, int64_t count);
};

/// Zone maps for one heap file, owned by its Table. Purely derived,
/// memory-resident state: recovery and replication replay repopulate it
/// through the ordinary insert/update/annotate paths, so it needs no
/// persistence of its own. Thread-safe (shared_mutex: scans take shared,
/// writers exclusive).
class ZoneMapStore {
 public:
  explicit ZoneMapStore(size_t num_columns) : num_columns_(num_columns) {}

  /// Widens the page's column bounds to cover `tuple` (insert or new
  /// version landing on the page).
  void WidenTuple(PageId page, const Tuple& tuple);

  /// Widens the page's label bounds to cover one row's annotation counts
  /// (pairs of lowercased "instance.label" -> count).
  void WidenLabels(PageId page,
                   const std::vector<std::pair<std::string, int64_t>>& counts);

  /// Flags a page for re-derivation (delete, abort undo, GC vacuum,
  /// update relocation away from the page). Never tightens bounds.
  void MarkStale(PageId page);

  /// True when every row the page could expose is refuted by `pred`.
  /// Untracked pages are never skipped. Conservative by the widen-only
  /// invariant above.
  bool CanSkip(PageId page, const ZonePredicate& pred) const;

  /// Fraction of `total_pages` CanSkip would prune, for access-path
  /// costing. Untracked pages count as unskippable.
  double EstimateSkipFraction(const ZonePredicate& pred,
                              size_t total_pages) const;

  /// Pages currently flagged stale (maintenance work list).
  std::vector<PageId> StalePages() const;

  /// Installs freshly derived bounds for a page (maintenance), clearing
  /// its stale flag. An empty rebuilt page gets any_rows=false and
  /// becomes skippable by every probe.
  void ReplacePage(PageId page, PageZone zone);

  /// Drops every tracked page (tests / full reload).
  void Clear();

  bool HasPage(PageId page) const;
  /// Snapshot of one page's zone (tests / diagnostics).
  PageZone GetPage(PageId page) const;

  size_t num_columns() const { return num_columns_; }
  size_t tracked_pages() const;

 private:
  PageZone& ZoneFor(PageId page);  // Caller holds mu_ exclusively.
  static bool ProbeRefutes(const ZoneProbe& probe, const PageZone& zone);

  const size_t num_columns_;
  mutable std::shared_mutex mu_;
  std::unordered_map<PageId, PageZone> zones_;
};

}  // namespace insight

#endif  // INSIGHTNOTES_STORAGE_ZONE_MAP_H_
