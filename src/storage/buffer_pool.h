#ifndef INSIGHTNOTES_STORAGE_BUFFER_POOL_H_
#define INSIGHTNOTES_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/result.h"
#include "storage/page.h"
#include "storage/storage_manager.h"

namespace insight {

/// Logical I/O counters. The optimizer's cost model is validated against
/// these, and the benches report them next to wall-clock time.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;       // Pages read from the backing store.
  uint64_t writebacks = 0;   // Dirty pages written back on eviction/flush.
  uint64_t allocations = 0;  // New pages created.
  uint64_t evictions = 0;    // Valid frames reclaimed by the clock sweep.
  uint64_t latch_waits = 0;  // Page latch acquisitions that blocked.

  uint64_t logical_reads() const { return hits + misses; }
};

class BufferPool;

/// Narrow view of the write-ahead log that the buffer pool needs to
/// enforce WAL-before-data: before a dirty page reaches its backing
/// store, every log record up to the page's LSN must be durable. The
/// interface lives here (not in src/wal) so storage stays below wal in
/// the dependency order; LogManager implements it.
class WalBridge {
 public:
  virtual ~WalBridge() = default;

  /// Highest LSN known durable (fsynced) in the log.
  virtual uint64_t DurableLsn() const = 0;

  /// Forces the log out through at least `lsn`.
  virtual Status SyncToLsn(uint64_t lsn) = 0;
};

/// Page latch requested alongside a pin. kNone preserves the historical
/// behavior (pin only) and is what the serial engine paths use — writers
/// there are single-threaded by construction. Concurrent mutators take
/// kShared/kExclusive so readers and writers of one page serialize.
enum class LatchMode { kNone, kShared, kExclusive };

/// RAII pin (and optional latch) on one buffered page. Movable, not
/// copyable; unpins and unlatches on destruction. Mutators must call
/// MarkDirty().
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, size_t frame, char* data,
            LatchMode latch = LatchMode::kNone)
      : pool_(pool), frame_(frame), data_(data), latch_(latch) {}

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  ~PageGuard() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  char* data() { return data_; }
  const char* data() const { return data_; }

  void MarkDirty() { dirty_ = true; }

  /// Explicit early unpin (and unlatch).
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  char* data_ = nullptr;
  bool dirty_ = false;
  LatchMode latch_ = LatchMode::kNone;
};

/// Page cache shared by every file in the database, with clock eviction.
/// Capacity is in frames; `BufferPool(sm, 1024)` caches 16 MiB.
///
/// Thread-safe: the frame pool is split into shards (latch per shard,
/// keys hash to exactly one shard), pin counts and dirty/reference bits
/// are atomic, and eviction only considers frames whose pin count is
/// zero — a pin transitions 0 -> 1 only under the owning shard's latch,
/// so a pinned page can never be evicted underneath its guard. Page
/// *content* synchronization is the caller's job: concurrent readers are
/// always safe, concurrent writers of one page must take the guard-level
/// latch (LatchMode) or serialize externally.
class BufferPool {
 public:
  BufferPool(StorageManager* storage, size_t capacity_frames);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins an existing page.
  Result<PageGuard> FetchPage(FileId file, PageId page,
                              LatchMode latch = LatchMode::kNone);

  /// Allocates a new zeroed page in `file`, pins it, returns its id.
  Result<PageGuard> NewPage(FileId file, PageId* page_id_out,
                            LatchMode latch = LatchMode::kNone);

  /// Writes back all dirty pages (pages stay cached). Not safe against
  /// concurrent mutators; call from quiesced state.
  Status FlushAll();

  /// Aggregated counters across all shards (a consistent-enough snapshot;
  /// shards are locked one at a time).
  BufferPoolStats stats() const;
  void ResetStats();

  size_t capacity() const { return frames_.size(); }
  size_t num_shards() const { return shards_.size(); }

  /// Pages currently allocated in `file`'s backing store (0 for unknown
  /// files) — the scan extent morsel dispensers partition.
  PageId FileNumPages(FileId file) const;

  /// Installs the log bridge. With a bridge set, any dirty page write
  /// (eviction or FlushAll) first forces the log through the page's LSN —
  /// the WAL-before-data invariant. Null detaches.
  void SetWalBridge(WalBridge* wal) { wal_.store(wal); }

  /// Stamps the LSN that subsequent dirtying operations tag their pages
  /// with. The DML layer calls this with the (peeked) LSN of the record
  /// it is about to apply; single-writer DML keeps this race-free.
  void SetCurrentLsn(uint64_t lsn) { current_lsn_.store(lsn); }

 private:
  friend class PageGuard;

  struct Frame {
    Page page;
    FileId file = 0;
    PageId page_id = kInvalidPageId;
    std::atomic<int> pin_count{0};
    std::atomic<bool> dirty{false};
    /// Highest log LSN whose effects this frame may carry; the frame must
    /// not reach the backing store until the log is durable through it.
    std::atomic<uint64_t> page_lsn{0};
    std::atomic<bool> referenced{false};
    bool valid = false;  // Guarded by the owning shard's latch.
    std::shared_mutex latch;
  };

  struct Key {
    FileId file;
    PageId page;
    bool operator==(const Key& o) const {
      return file == o.file && page == o.page;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return (static_cast<size_t>(k.file) << 32) ^ k.page;
    }
  };

  /// One shard: a latch, the key -> frame table for its keys, and a clock
  /// hand sweeping the shard's private frame range [begin, end).
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, size_t, KeyHash> table;
    size_t begin = 0;
    size_t end = 0;
    size_t clock_hand = 0;
    BufferPoolStats stats;
  };

  /// Modulo (not hashed) sharding: consecutive pages of one file
  /// round-robin across shards, so a sequential scan spreads its frame
  /// pressure evenly instead of piling onto whichever shards the hash
  /// favours.
  Shard& ShardFor(const Key& key) {
    return *shards_[(static_cast<size_t>(key.file) + key.page) %
                    shards_.size()];
  }

  void Unpin(size_t frame, bool dirty, LatchMode latch);
  void AcquireLatch(Frame& frame, LatchMode latch);

  /// WAL-before-data gate: forces the log through `page_lsn` when a
  /// bridge is installed and the log is not yet durable that far.
  Status ForceLogFor(uint64_t page_lsn);

  /// Finds a victim frame inside `shard` (unpinned), evicting its current
  /// page if dirty. Caller holds shard.mu.
  Result<size_t> GrabFrameLocked(Shard& shard);

  /// Admits (file, page) into `idx` after GrabFrameLocked; caller holds
  /// the shard latch and fills the page content.
  void AdmitLocked(Shard& shard, size_t idx, const Key& key);

  StorageManager* storage_;
  /// Latch acquisitions that found the latch held (not shard-local: the
  /// latch lives on the frame, not under any shard's mutex).
  std::atomic<uint64_t> latch_waits_{0};
  std::atomic<WalBridge*> wal_{nullptr};
  std::atomic<uint64_t> current_lsn_{0};
  std::vector<std::unique_ptr<Frame>> frames_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Page ids allocated by a NewPage whose frame grab then failed; reused
  /// by the next NewPage on the same file so they are not leaked.
  std::mutex spare_mu_;
  std::unordered_map<FileId, std::vector<PageId>> spare_pages_;
};

}  // namespace insight

#endif  // INSIGHTNOTES_STORAGE_BUFFER_POOL_H_
