#ifndef INSIGHTNOTES_STORAGE_BUFFER_POOL_H_
#define INSIGHTNOTES_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/result.h"
#include "storage/page.h"
#include "storage/storage_manager.h"

namespace insight {

/// Logical I/O counters. The optimizer's cost model is validated against
/// these, and the benches report them next to wall-clock time.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;       // Pages read from the backing store.
  uint64_t writebacks = 0;   // Dirty pages written back on eviction/flush.
  uint64_t allocations = 0;  // New pages created.

  uint64_t logical_reads() const { return hits + misses; }
};

class BufferPool;

/// RAII pin on one buffered page. Movable, not copyable; unpins on
/// destruction. Mutators must call MarkDirty().
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, size_t frame, char* data)
      : pool_(pool), frame_(frame), data_(data) {}

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  ~PageGuard() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  char* data() { return data_; }
  const char* data() const { return data_; }

  void MarkDirty() { dirty_ = true; }

  /// Explicit early unpin.
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  char* data_ = nullptr;
  bool dirty_ = false;
};

/// Page cache shared by every file in the database, with clock eviction.
/// Capacity is in frames; `BufferPool(sm, 1024)` caches 16 MiB.
class BufferPool {
 public:
  BufferPool(StorageManager* storage, size_t capacity_frames);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins an existing page.
  Result<PageGuard> FetchPage(FileId file, PageId page);

  /// Allocates a new zeroed page in `file`, pins it, returns its id.
  Result<PageGuard> NewPage(FileId file, PageId* page_id_out);

  /// Writes back all dirty pages (pages stay cached).
  Status FlushAll();

  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats{}; }

  size_t capacity() const { return frames_.size(); }

 private:
  friend class PageGuard;

  struct Frame {
    Page page;
    FileId file = 0;
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    bool valid = false;
    bool referenced = false;
  };

  struct Key {
    FileId file;
    PageId page;
    bool operator==(const Key& o) const {
      return file == o.file && page == o.page;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return (static_cast<size_t>(k.file) << 32) ^ k.page;
    }
  };

  void Unpin(size_t frame, bool dirty);

  /// Finds a victim frame (unpinned), evicting its current page if dirty.
  Result<size_t> GrabFrame();

  StorageManager* storage_;
  std::vector<Frame> frames_;
  std::unordered_map<Key, size_t, KeyHash> table_;
  size_t clock_hand_ = 0;
  BufferPoolStats stats_;
};

}  // namespace insight

#endif  // INSIGHTNOTES_STORAGE_BUFFER_POOL_H_
