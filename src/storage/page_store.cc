#include "storage/page_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "wal/crash_point.h"

namespace insight {
namespace {

/// Full-size pread with EINTR retry. Short reads past EOF are an error
/// here: callers only read pages they know were allocated, so a short
/// read means the file was truncated underneath us.
Status PreadFully(int fd, void* buf, size_t count, off_t offset,
                  const std::string& path) {
  char* p = static_cast<char*>(buf);
  size_t done = 0;
  while (done < count) {
    const ssize_t n = ::pread(fd, p + done, count - done,
                              offset + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pread " + path + ": " + std::strerror(errno));
    }
    if (n == 0) {
      return Status::IOError("pread " + path + ": short read (" +
                             std::to_string(done) + "/" +
                             std::to_string(count) + " bytes at offset " +
                             std::to_string(offset) + ")");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status PwriteFully(int fd, const void* buf, size_t count, off_t offset,
                   const std::string& path) {
  const char* p = static_cast<const char*>(buf);
  size_t done = 0;
  while (done < count) {
    const ssize_t n = ::pwrite(fd, p + done, count - done,
                               offset + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pwrite " + path + ": " + std::strerror(errno));
    }
    if (n == 0) {
      return Status::IOError("pwrite " + path + ": wrote 0 bytes at offset " +
                             std::to_string(offset));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status SyncContainingDirectory(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IOError("open dir " + dir + ": " + std::strerror(errno));
  }
  Status st = Status::OK();
  if (::fsync(fd) != 0) {
    st = Status::IOError("fsync dir " + dir + ": " + std::strerror(errno));
  }
  ::close(fd);
  return st;
}

Result<PageId> InMemoryPageStore::AllocatePage() {
  auto page = std::make_unique<Page>();
  page->Zero();
  std::lock_guard<std::mutex> lk(mu_);
  pages_.push_back(std::move(page));
  return static_cast<PageId>(pages_.size() - 1);
}

Page* InMemoryPageStore::Slot(PageId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  return id < pages_.size() ? pages_[id].get() : nullptr;
}

Status InMemoryPageStore::ReadPage(PageId id, Page* out) {
  Page* slot = Slot(id);
  if (slot == nullptr) {
    return Status::OutOfRange("page " + std::to_string(id) + " of " +
                              std::to_string(num_pages()));
  }
  std::memcpy(out->data, slot->data, kPageSize);
  return Status::OK();
}

Status InMemoryPageStore::WritePage(PageId id, const Page& page) {
  Page* slot = Slot(id);
  if (slot == nullptr) {
    return Status::OutOfRange("page " + std::to_string(id) + " of " +
                              std::to_string(num_pages()));
  }
  std::memcpy(slot->data, page.data, kPageSize);
  return Status::OK();
}

Result<std::unique_ptr<FilePageStore>> FilePageStore::Open(
    const std::string& path) {
  const bool existed = ::access(path.c_str(), F_OK) == 0;
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  if (!existed) {
    // Make the new file's directory entry durable; without this a crash
    // can lose the file itself even after its contents were fsynced.
    Status dir = SyncContainingDirectory(path);
    if (!dir.ok()) {
      ::close(fd);
      return dir;
    }
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("fstat " + path + ": " + std::strerror(errno));
  }
  // Floor to whole pages: a torn final page (crash mid-extension) is not
  // addressable and will be re-allocated and re-written after recovery.
  const PageId num_pages = static_cast<PageId>(st.st_size / kPageSize);
  return std::unique_ptr<FilePageStore>(
      new FilePageStore(fd, path, num_pages));
}

FilePageStore::~FilePageStore() {
  if (fd_ >= 0) {
    ::fsync(fd_);  // Best effort; close cannot report a Status.
    ::close(fd_);
  }
}

Result<PageId> FilePageStore::AllocatePage() {
  static const Page kZeroPage = [] {
    Page p;
    p.Zero();
    return p;
  }();
  std::lock_guard<std::mutex> lk(alloc_mu_);
  const PageId id = num_pages_.load();
  const off_t offset = static_cast<off_t>(id) * kPageSize;
  INSIGHT_RETURN_NOT_OK(
      PwriteFully(fd_, kZeroPage.data, kPageSize, offset, path_));
  num_pages_.store(id + 1);
  return id;
}

Status FilePageStore::ReadPage(PageId id, Page* out) {
  if (id >= num_pages_.load()) {
    return Status::OutOfRange("page " + std::to_string(id) + " of " +
                              std::to_string(num_pages_.load()));
  }
  const off_t offset = static_cast<off_t>(id) * kPageSize;
  return PreadFully(fd_, out->data, kPageSize, offset, path_);
}

Status FilePageStore::WritePage(PageId id, const Page& page) {
  if (id >= num_pages_.load()) {
    return Status::OutOfRange("page " + std::to_string(id) + " of " +
                              std::to_string(num_pages_.load()));
  }
  const off_t offset = static_cast<off_t>(id) * kPageSize;
  return PwriteFully(fd_, page.data, kPageSize, offset, path_);
}

Status FilePageStore::Sync() {
  INSIGHT_CRASH_POINT("pagestore_sync");
  if (::fsync(fd_) != 0) {
    return Status::IOError("fsync " + path_ + ": " + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace insight
