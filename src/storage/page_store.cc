#include "storage/page_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace insight {

Result<PageId> InMemoryPageStore::AllocatePage() {
  auto page = std::make_unique<Page>();
  page->Zero();
  std::lock_guard<std::mutex> lk(mu_);
  pages_.push_back(std::move(page));
  return static_cast<PageId>(pages_.size() - 1);
}

Page* InMemoryPageStore::Slot(PageId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  return id < pages_.size() ? pages_[id].get() : nullptr;
}

Status InMemoryPageStore::ReadPage(PageId id, Page* out) {
  Page* slot = Slot(id);
  if (slot == nullptr) {
    return Status::OutOfRange("page " + std::to_string(id) + " of " +
                              std::to_string(num_pages()));
  }
  std::memcpy(out->data, slot->data, kPageSize);
  return Status::OK();
}

Status InMemoryPageStore::WritePage(PageId id, const Page& page) {
  Page* slot = Slot(id);
  if (slot == nullptr) {
    return Status::OutOfRange("page " + std::to_string(id) + " of " +
                              std::to_string(num_pages()));
  }
  std::memcpy(slot->data, page.data, kPageSize);
  return Status::OK();
}

Result<std::unique_ptr<FilePageStore>> FilePageStore::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("fstat " + path + ": " + std::strerror(errno));
  }
  const PageId num_pages = static_cast<PageId>(st.st_size / kPageSize);
  return std::unique_ptr<FilePageStore>(
      new FilePageStore(fd, path, num_pages));
}

FilePageStore::~FilePageStore() {
  if (fd_ >= 0) ::close(fd_);
}

Result<PageId> FilePageStore::AllocatePage() {
  static const Page kZeroPage = [] {
    Page p;
    p.Zero();
    return p;
  }();
  std::lock_guard<std::mutex> lk(alloc_mu_);
  const PageId id = num_pages_.load();
  const off_t offset = static_cast<off_t>(id) * kPageSize;
  const ssize_t n = ::pwrite(fd_, kZeroPage.data, kPageSize, offset);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("pwrite(alloc) " + path_ + ": " +
                           std::strerror(errno));
  }
  num_pages_.store(id + 1);
  return id;
}

Status FilePageStore::ReadPage(PageId id, Page* out) {
  if (id >= num_pages_.load()) {
    return Status::OutOfRange("page " + std::to_string(id) + " of " +
                              std::to_string(num_pages_.load()));
  }
  const off_t offset = static_cast<off_t>(id) * kPageSize;
  const ssize_t n = ::pread(fd_, out->data, kPageSize, offset);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("pread " + path_ + ": " + std::strerror(errno));
  }
  return Status::OK();
}

Status FilePageStore::WritePage(PageId id, const Page& page) {
  if (id >= num_pages_.load()) {
    return Status::OutOfRange("page " + std::to_string(id) + " of " +
                              std::to_string(num_pages_.load()));
  }
  const off_t offset = static_cast<off_t>(id) * kPageSize;
  const ssize_t n = ::pwrite(fd_, page.data, kPageSize, offset);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("pwrite " + path_ + ": " + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace insight
