#ifndef INSIGHTNOTES_STORAGE_PAGE_H_
#define INSIGHTNOTES_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>

namespace insight {

/// Fixed page size. 16 KiB so that the large raw annotations from the
/// paper's corpus (up to 8,000 characters) fit inline in a slotted page;
/// anything larger spills to an overflow chain (see HeapFile).
constexpr size_t kPageSize = 16 * 1024;

using FileId = uint32_t;
using PageId = uint32_t;

constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// Raw page buffer. Interpretation (slotted, B-Tree node, overflow) is up
/// to the owning structure.
struct Page {
  char data[kPageSize];

  void Zero() { std::memset(data, 0, kPageSize); }
};

/// Physical address of a record: page + slot within the owning file.
/// This is the paper's heap location, the target of Summary-BTree
/// backward pointers.
struct RowLocation {
  PageId page_id = kInvalidPageId;
  uint16_t slot = 0;

  bool valid() const { return page_id != kInvalidPageId; }

  /// Packs into 64 bits for storage as an index payload.
  uint64_t Pack() const {
    return (static_cast<uint64_t>(page_id) << 16) | slot;
  }
  static RowLocation Unpack(uint64_t packed) {
    RowLocation loc;
    loc.page_id = static_cast<PageId>(packed >> 16);
    loc.slot = static_cast<uint16_t>(packed & 0xFFFF);
    return loc;
  }

  bool operator==(const RowLocation& o) const {
    return page_id == o.page_id && slot == o.slot;
  }
};

}  // namespace insight

#endif  // INSIGHTNOTES_STORAGE_PAGE_H_
