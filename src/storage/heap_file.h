#ifndef INSIGHTNOTES_STORAGE_HEAP_FILE_H_
#define INSIGHTNOTES_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace insight {

/// Slotted-page heap file holding variable-length records (serialized
/// tuples, raw annotations, or summary-storage rows). Records larger than
/// one page spill into an overflow chain, so a single summary-storage row
/// can hold hundreds of snippets.
///
/// Space management is designed for the summary-storage access pattern —
/// rows that are rewritten slightly larger on every annotation arrival:
///   - slots carry a capacity (with growth headroom on updates), so most
///     rewrites happen in place;
///   - deleted slots are remembered and their space reclaimed by in-page
///     compaction before a page is abandoned;
///   - freed overflow pages go to a free list and are reused.
///
/// A RowLocation identifies a record and stays stable across in-place
/// updates; updates that no longer fit relocate the record and return the
/// new location (callers owning secondary indexes must re-point them —
/// the Table layer does).
class HeapFile {
 public:
  /// Wraps an existing (possibly empty) page file.
  HeapFile(BufferPool* pool, FileId file) : pool_(pool), file_(file) {}

  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;
  HeapFile(HeapFile&&) = default;

  Result<RowLocation> Insert(std::string_view record);

  /// Fetches the full record (reassembling overflow chains).
  Result<std::string> Get(RowLocation loc) const;

  Status Delete(RowLocation loc);

  /// Rewrites the record. Returns the (possibly new) location.
  Result<RowLocation> Update(RowLocation loc, std::string_view record);

  /// Overwrites `bytes` at byte offset `offset` inside the stored record
  /// without moving it (MVCC version restamping: begin/end timestamps
  /// live in a fixed-width record prefix). The overwritten span must lie
  /// within the record's existing bytes and, for overflow records, within
  /// the first chunk of the chain.
  Status OverwriteRecordBytes(RowLocation loc, size_t offset,
                              std::string_view bytes);

  /// Forward scan over all live records, or over the page range
  /// [begin, end) for morsel-driven parallel scans (each worker walks a
  /// disjoint range; records whose home slot lies in the range are
  /// emitted, overflow chains are followed wherever they live).
  class Iterator {
   public:
    explicit Iterator(const HeapFile* heap,
                      PageId begin = 0,
                      PageId end = kInvalidPageId)
        : heap_(heap), page_(begin), end_(end) {}

    /// Advances to the next record; false at end. On corruption logs and
    /// stops (heap pages we wrote ourselves only corrupt on engine bugs).
    bool Next(RowLocation* loc, std::string* record);

    /// Page-granular pruning hook (zone maps). Returning true skips the
    /// page entirely: it is never pinned, never fetched from the backing
    /// store, and not counted by the pages-scanned metric. Consulted only
    /// at page boundaries, so installing it mid-page takes effect on the
    /// next page.
    using PageFilter = std::function<bool(PageId)>;
    void set_page_filter(PageFilter filter) { filter_ = std::move(filter); }

   private:
    const HeapFile* heap_;
    PageId page_ = 0;
    PageId end_ = kInvalidPageId;  // Exclusive; kInvalidPageId = open.
    uint16_t slot_ = 0;
    PageFilter filter_;
  };

  Iterator Scan() const { return Iterator(this); }
  /// Scan restricted to heap pages [begin, end).
  Iterator ScanRange(PageId begin, PageId end) const {
    return Iterator(this, begin, end);
  }

  FileId file_id() const { return file_; }
  /// Pages currently allocated in the backing store (scan extent; some
  /// may be overflow or freed pages, which range scans skip).
  PageId num_pages() const { return pool_->FileNumPages(file_); }

  /// Maximum record bytes stored inline in one page.
  static size_t MaxInlineRecordSize();

 private:
  friend class Iterator;

  Result<std::string> ReadOverflowChain(PageId first, uint32_t total) const;
  Status FreeOverflowChain(PageId first);
  Result<PageId> WriteOverflowChain(std::string_view payload);
  Result<PageId> AllocOverflowPage(PageGuard* guard);

  /// Inserts an already-encoded cell, reserving `capacity` bytes
  /// (capacity >= cell size; the slack is in-place growth headroom).
  Result<RowLocation> InsertCell(std::string_view cell, size_t capacity);

  /// Attempts insertion into one specific page (compacting it if its
  /// fragmented space suffices). Returns the slot, or -1 if it can't fit.
  Result<int> TryInsertInPage(PageId page_id, std::string_view cell,
                              size_t capacity);

  BufferPool* pool_;
  FileId file_;
  PageId fill_page_ = kInvalidPageId;   // Last page with known free space.
  std::set<PageId> pages_with_space_;   // Pages with reclaimable space.
  std::vector<PageId> free_overflow_;   // Freed overflow pages, reusable.
};

}  // namespace insight

#endif  // INSIGHTNOTES_STORAGE_HEAP_FILE_H_
