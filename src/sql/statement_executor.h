#ifndef INSIGHTNOTES_SQL_STATEMENT_EXECUTOR_H_
#define INSIGHTNOTES_SQL_STATEMENT_EXECUTOR_H_

#include <shared_mutex>
#include <string>
#include <vector>

#include "annotation/annotation_store.h"
#include "optimizer/optimizer.h"
#include "sql/parser.h"
#include "txn/txn.h"

namespace insight {

class Database;

/// Result of executing one statement.
struct QueryResult {
  Schema schema;
  std::vector<Tuple> rows;            // Select-list values per output row.
  std::vector<SummarySet> summaries;  // Parallel: propagated summary sets.
  std::string message;                // DDL/utility acknowledgements.
  std::vector<Annotation> annotations;  // ZOOM IN payload.

  /// ASCII-table rendering (summaries shown inline when present).
  std::string ToString(size_t max_rows = 25) const;
};

/// The parse-plan-execute half of the old Database monolith: binds SELECTs
/// into logical plans, optimizes, runs physical plans, materializes the
/// select list, and dispatches mutation statements to the Database
/// facade's journaled DML/DDL methods.
///
/// It carries NO locking or transaction policy. Callers (Database::Execute
/// and friends) decide what gates to hold and which MVCC snapshot a query
/// reads at; the executor stamps that snapshot onto a per-query copy of
/// the ExecutionContext so every scan and index probe in the plan sees one
/// consistent version of the world.
class StatementExecutor {
 public:
  explicit StatementExecutor(Database* db) : db_(db) {}

  StatementExecutor(const StatementExecutor&) = delete;
  StatementExecutor& operator=(const StatementExecutor&) = delete;

  /// Binds, optimizes, and (unless explain_only) executes a SELECT with
  /// every read in the plan pinned to `snap`.
  Result<QueryResult> ExecuteSelect(const SelectStatement& select,
                                    bool explain_only, const std::string& sql,
                                    const Snapshot& snap);

  /// The non-SELECT arm: routes DML/DDL to the Database facade (which
  /// owns journaling). The caller has already arranged gating and, for
  /// DML, the transaction scope.
  Result<QueryResult> ExecuteMutation(const Statement& stmt);

  /// EXPLAIN ANALYZE body: executes batch-at-a-time at `snap` and renders
  /// the plan with runtime counters.
  Result<std::string> ExplainAnalyze(const SelectStatement& select,
                                     const std::string& sql,
                                     const Snapshot& snap);

  /// Folds live summary statistics into the planner's cached TableStats
  /// for every FROM table. Mutates shared planner state — the caller must
  /// hold the write gate (so folds don't race writers' live-stat updates);
  /// the internal plan gate additionally excludes concurrent planners.
  Status RefreshSelectStats(const SelectStatement& select);

  /// Binds FROM/WHERE into a logical plan (join routing included).
  Result<LogicalPtr> BindSelect(const SelectStatement& select);

 private:
  /// Post-execution observability: query counters/latency, per-operator
  /// estimated-vs-actual q-error (fed back to the optimizer statistics),
  /// and the slow-query log.
  void ObserveQuery(const std::string& statement, PhysicalOperator* root,
                    uint64_t total_ns);

  Database* db_;

  /// Planner-statistics gate: TableStats/LiveLabelStatistics have no
  /// internal locks, so stat folds (unique) must not overlap with
  /// cardinality estimation (shared). Held only through bind+optimize,
  /// never through execution — that is what keeps readers concurrent.
  mutable std::shared_mutex plan_mu_;
};

}  // namespace insight

#endif  // INSIGHTNOTES_SQL_STATEMENT_EXECUTOR_H_
