#include "sql/statement_executor.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "sql/database.h"

namespace insight {

std::string QueryResult::ToString(size_t max_rows) const {
  if (!message.empty()) return message + "\n";
  if (!annotations.empty()) {
    std::string out;
    for (const Annotation& ann : annotations) {
      out += "[" + std::to_string(ann.id) + "] " + ann.text + "\n";
    }
    return out;
  }
  std::vector<size_t> widths;
  for (const Column& col : schema.columns()) {
    widths.push_back(col.name.size());
  }
  const size_t shown = std::min(rows.size(), max_rows);
  std::vector<std::vector<std::string>> cells;
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> row;
    for (size_t c = 0; c < rows[r].size(); ++c) {
      row.push_back(rows[r].at(c).ToString());
      if (c < widths.size()) widths[c] = std::max(widths[c], row[c].size());
    }
    cells.push_back(std::move(row));
  }
  std::string out;
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    out += schema.column(c).name;
    out += std::string(widths[c] - schema.column(c).name.size() + 2, ' ');
  }
  out += "\n";
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    out += std::string(widths[c], '-') + "  ";
  }
  out += "\n";
  for (size_t r = 0; r < cells.size(); ++r) {
    for (size_t c = 0; c < cells[r].size(); ++c) {
      out += cells[r][c];
      if (c < widths.size()) {
        out += std::string(widths[c] - cells[r][c].size() + 2, ' ');
      }
    }
    if (r < summaries.size() && !summaries[r].empty()) {
      std::string rendered = summaries[r].ToString();
      constexpr size_t kMaxSummaryChars = 140;
      if (rendered.size() > kMaxSummaryChars) {
        rendered.resize(kMaxSummaryChars);
        rendered += "...}";
      }
      out += "  $" + rendered;
    }
    out += "\n";
  }
  if (rows.size() > shown) {
    out += "... (" + std::to_string(rows.size() - shown) + " more rows)\n";
  }
  out += "(" + std::to_string(rows.size()) + " rows)\n";
  return out;
}

// ---------- SELECT binding ----------

namespace {

// Aliases (or table names) bound so far, for conjunct routing.
struct BoundSide {
  std::set<std::string> names;  // Lower-cased aliases/table names.
  Schema schema;
};

bool QualifierIn(const std::string& qualifier, const BoundSide& side) {
  return side.names.count(ToLower(qualifier)) > 0;
}

}  // namespace

Result<LogicalPtr> StatementExecutor::BindSelect(
    const SelectStatement& select) {
  if (select.from.empty()) {
    return Status::ParseError("FROM clause required");
  }
  Optimizer opt(db_->context(), db_->optimizer_options());

  auto scan_for = [&](const SelectStatement::FromTable& from) {
    return from.alias.empty() ? LScan(from.table)
                              : LScanAs(from.table, from.alias);
  };
  auto names_for = [&](const SelectStatement::FromTable& from) {
    return ToLower(from.alias.empty() ? from.table : from.alias);
  };

  LogicalPtr plan = scan_for(select.from[0]);
  BoundSide bound;
  bound.names.insert(names_for(select.from[0]));
  INSIGHT_ASSIGN_OR_RETURN(bound.schema, opt.OutputSchema(*plan));

  std::vector<ExprPtr> conjuncts;
  if (select.where != nullptr) {
    conjuncts = SplitConjuncts(select.where.get());
  }

  for (size_t t = 1; t < select.from.size(); ++t) {
    LogicalPtr right = scan_for(select.from[t]);
    INSIGHT_ASSIGN_OR_RETURN(Schema right_schema, opt.OutputSchema(*right));
    BoundSide right_side;
    right_side.names.insert(names_for(select.from[t]));
    right_side.schema = right_schema;

    // Route conjuncts connecting the bound side with the new table.
    std::vector<ExprPtr> data_join;
    std::optional<SummaryJoinPredicate> summary_join;
    std::vector<ExprPtr> remaining;
    for (ExprPtr& conjunct : conjuncts) {
      // Summary-join shape: comparison of two summary functions with
      // qualifiers on opposite sides.
      if (const auto* cmp =
              dynamic_cast<const CompareExpr*>(conjunct.get())) {
        const auto* lf = dynamic_cast<const SummaryFuncExpr*>(cmp->left());
        const auto* rf = dynamic_cast<const SummaryFuncExpr*>(cmp->right());
        if (lf != nullptr && rf != nullptr && !lf->qualifier().empty() &&
            !rf->qualifier().empty() &&
            !EqualsIgnoreCase(lf->qualifier(), rf->qualifier())) {
          const bool lf_bound = QualifierIn(lf->qualifier(), bound);
          const bool rf_new = QualifierIn(rf->qualifier(), right_side);
          const bool rf_bound = QualifierIn(rf->qualifier(), bound);
          const bool lf_new = QualifierIn(lf->qualifier(), right_side);
          if ((lf_bound && rf_new) || (rf_bound && lf_new)) {
            if (summary_join.has_value()) {
              return Status::NotImplemented(
                  "multiple summary-join predicates between the same "
                  "relations");
            }
            SummaryJoinPredicate pred;
            pred.op = cmp->op();
            if (lf_bound) {
              pred.left_expr = cmp->left()->Clone();
              pred.right_expr = cmp->right()->Clone();
            } else {
              // Mirror so left_expr evaluates on the bound side.
              pred.left_expr = cmp->right()->Clone();
              pred.right_expr = cmp->left()->Clone();
              pred.op = [](CompareOp op) {
                switch (op) {
                  case CompareOp::kLt:
                    return CompareOp::kGt;
                  case CompareOp::kLe:
                    return CompareOp::kGe;
                  case CompareOp::kGt:
                    return CompareOp::kLt;
                  case CompareOp::kGe:
                    return CompareOp::kLe;
                  default:
                    return op;
                }
              }(pred.op);
            }
            summary_join = std::move(pred);
            conjunct.reset();
            continue;
          }
        }
      }
      // Data conjunct spanning both sides?
      std::vector<std::string> columns;
      conjunct->CollectColumns(&columns);
      if (!conjunct->IsSummaryBased() && !columns.empty()) {
        bool any_bound = false;
        bool any_new = false;
        bool all_resolve = true;
        const Schema combined =
            Schema::Concat(bound.schema, right_side.schema);
        for (const std::string& column : columns) {
          if (bound.schema.IndexOf(column).ok()) {
            any_bound = true;
          } else if (right_side.schema.IndexOf(column).ok()) {
            any_new = true;
          } else if (!combined.IndexOf(column).ok()) {
            all_resolve = false;
          } else {
            // Resolves only in the combined schema (ambiguous singly).
            any_bound = any_new = true;
          }
        }
        if (all_resolve && any_bound && any_new) {
          data_join.push_back(std::move(conjunct));
          conjunct.reset();
          continue;
        }
      }
      if (conjunct != nullptr) remaining.push_back(std::move(conjunct));
    }
    conjuncts = std::move(remaining);

    if (summary_join.has_value()) {
      plan = LSummaryJoin(std::move(plan), std::move(right),
                          std::move(*summary_join));
      // Data conjuncts between the sides become a selection above the
      // summary join (the rho(J(R,S)) shape; the optimizer may commute).
      if (!data_join.empty()) {
        plan = LSelect(std::move(plan),
                       CombineConjuncts(std::move(data_join)));
      }
    } else {
      ExprPtr join_pred = data_join.empty()
                              ? Lit(Value::Bool(true))
                              : CombineConjuncts(std::move(data_join));
      plan = LJoin(std::move(plan), std::move(right), std::move(join_pred));
    }
    bound.names.insert(names_for(select.from[t]));
    bound.schema = Schema::Concat(bound.schema, right_side.schema);
  }

  // Residual WHERE conjuncts: data selections below summary selections.
  std::vector<ExprPtr> data_conjuncts;
  std::vector<ExprPtr> summary_conjuncts;
  for (ExprPtr& conjunct : conjuncts) {
    if (conjunct->IsSummaryBased()) {
      summary_conjuncts.push_back(std::move(conjunct));
    } else {
      data_conjuncts.push_back(std::move(conjunct));
    }
  }
  if (!data_conjuncts.empty()) {
    plan = LSelect(std::move(plan),
                   CombineConjuncts(std::move(data_conjuncts)));
  }
  if (!summary_conjuncts.empty()) {
    plan = LSummarySelect(std::move(plan),
                          CombineConjuncts(std::move(summary_conjuncts)));
  }

  // Aggregation.
  bool has_aggregates = false;
  for (const SelectItem& item : select.items) {
    if (item.is_aggregate) has_aggregates = true;
  }
  if (has_aggregates || !select.group_by.empty()) {
    std::vector<AggregateSpec> aggs;
    for (const SelectItem& item : select.items) {
      if (!item.is_aggregate) continue;
      aggs.push_back(AggregateSpec{
          item.aggregate.kind,
          item.aggregate.arg == nullptr ? nullptr
                                        : item.aggregate.arg->Clone(),
          item.aggregate.output_name});
    }
    plan = LAggregate(std::move(plan), select.group_by, std::move(aggs));
  }

  if (select.distinct) {
    // DISTINCT applies to the select list: project first (which also
    // applies the summary projection semantics), then de-duplicate.
    std::vector<std::string> columns;
    for (const SelectItem& item : select.items) {
      const auto* col = dynamic_cast<const ColumnExpr*>(item.expr.get());
      if (item.star || item.is_aggregate || col == nullptr) {
        return Status::NotImplemented(
            "SELECT DISTINCT requires a plain column list");
      }
      columns.push_back(col->name());
    }
    plan = LProject(std::move(plan), std::move(columns));
    plan = LDistinct(std::move(plan));
  }

  if (!select.order_by.empty()) {
    std::vector<SortKey> keys;
    for (const SortKey& key : select.order_by) {
      keys.push_back(SortKey{key.expr->Clone(), key.descending});
    }
    plan = LSort(std::move(plan), std::move(keys));
  }
  if (select.limit.has_value()) {
    plan = LLimit(std::move(plan), *select.limit);
  }
  return plan;
}

Status StatementExecutor::RefreshSelectStats(const SelectStatement& select) {
  // Fold maintained-on-update summary statistics into the planner's view
  // (Section 5.2); cheap, no scans.
  std::unique_lock<std::shared_mutex> plan_gate(plan_mu_);
  const OptimizerOptions& opts = db_->optimizer_options();
  const SketchPolicy policy{opts.use_sketch_statistics,
                            opts.sketch_staleness_threshold};
  for (const SelectStatement::FromTable& from : select.from) {
    Status refreshed = db_->context()->RefreshStats(from.table, policy);
    if (!refreshed.ok() && !refreshed.IsNotFound()) return refreshed;
  }
  return Status::OK();
}

Result<QueryResult> StatementExecutor::ExecuteSelect(
    const SelectStatement& select, bool explain_only, const std::string& sql,
    const Snapshot& snap) {
  const auto query_start = std::chrono::steady_clock::now();
  // Shared plan gate: estimation reads the planner statistics that
  // RefreshSelectStats replaces under the unique gate.
  std::shared_lock<std::shared_mutex> plan_gate(plan_mu_);
  INSIGHT_ASSIGN_OR_RETURN(LogicalPtr plan, BindSelect(select));
  Optimizer optimizer(db_->context(), db_->optimizer_options());
  if (explain_only) {
    INSIGHT_ASSIGN_OR_RETURN(LogicalPtr rewritten,
                             optimizer.Rewrite(plan->Clone()));
    INSIGHT_ASSIGN_OR_RETURN(OpPtr op, optimizer.Lower(*rewritten));
    QueryResult result;
    result.message = "Logical plan:\n" + rewritten->Explain() +
                     "Physical plan:\n" + op->ExplainTree();
    auto estimate = optimizer.Estimate(*rewritten);
    if (estimate.ok()) {
      char line[96];
      std::snprintf(line, sizeof(line),
                    "Estimated rows: %.1f, cost: %.1f\n", estimate->rows,
                    estimate->cost);
      result.message += line;
    }
    return result;
  }
  INSIGHT_ASSIGN_OR_RETURN(OpPtr op, optimizer.Optimize(std::move(plan)));
  plan_gate.unlock();  // Execution runs gate-free.
  // Pin every read in the plan — scans, index probes, summary fetches —
  // to the caller's snapshot via a per-query context copy. The shared
  // context stays at Latest for embedded/legacy callers.
  ExecutionContext query_ctx = *db_->context()->exec_context();
  query_ctx.set_snapshot(snap);
  op->AttachContext(&query_ctx);
  INSIGHT_ASSIGN_OR_RETURN(std::vector<Row> rows, CollectRows(op.get()));
  ObserveQuery(sql, op.get(),
               static_cast<uint64_t>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - query_start)
                       .count()));

  // Materialize the select list.
  const Schema& plan_schema = op->schema();
  QueryResult result;
  std::vector<ExprPtr> output_exprs;
  for (const SelectItem& item : select.items) {
    if (item.star) {
      for (const Column& col : plan_schema.columns()) {
        result.schema.AddColumn(col).ok();
        output_exprs.push_back(Col(col.name));
      }
    } else if (item.is_aggregate) {
      result.schema
          .AddColumn({item.name, item.aggregate.kind ==
                                         AggregateSpec::Kind::kAvg
                                     ? ValueType::kDouble
                                     : ValueType::kInt64})
          .ok();
      output_exprs.push_back(Col(item.aggregate.output_name));
    } else {
      ValueType type = ValueType::kString;
      if (const auto* col = dynamic_cast<const ColumnExpr*>(item.expr.get())) {
        auto idx = plan_schema.IndexOf(col->name());
        if (idx.ok()) type = plan_schema.column(*idx).type;
      } else if (item.expr->IsSummaryBased()) {
        type = ValueType::kInt64;
      }
      result.schema.AddColumn({item.name, type}).ok();
      output_exprs.push_back(item.expr->Clone());
    }
  }
  for (Row& row : rows) {
    Tuple out;
    for (const ExprPtr& expr : output_exprs) {
      INSIGHT_ASSIGN_OR_RETURN(Value v, expr->Eval(row, plan_schema));
      out.Append(std::move(v));
    }
    result.rows.push_back(std::move(out));
    result.summaries.push_back(std::move(row.summaries));
  }
  return result;
}

Result<QueryResult> StatementExecutor::ExecuteMutation(const Statement& stmt) {
  QueryResult result;
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
    case Statement::Kind::kExplain:
    case Statement::Kind::kZoomIn:
      return Status::Internal("read statement routed to ExecuteMutation");
    case Statement::Kind::kBegin:
    case Statement::Kind::kCommit:
    case Statement::Kind::kRollback:
      return Status::Internal(
          "transaction control routed to ExecuteMutation");
    case Statement::Kind::kCreateTable: {
      INSIGHT_RETURN_NOT_OK(
          db_->CreateTable(stmt.table, stmt.schema).status());
      result.message = "Table " + stmt.table + " created";
      return result;
    }
    case Statement::Kind::kInsert: {
      // Route through Database::Insert so each row is journaled; one
      // group-commit fsync covers the whole statement.
      for (const std::vector<Value>& row : stmt.rows) {
        INSIGHT_RETURN_NOT_OK(db_->Insert(stmt.table, Tuple(row)).status());
      }
      // Inside a transaction durability comes from the commit record;
      // syncing per statement would just double the fsyncs.
      if (CurrentTxn() == nullptr) {
        INSIGHT_RETURN_NOT_OK(db_->WalSync());
      }
      result.message = std::to_string(stmt.rows.size()) + " rows inserted";
      return result;
    }
    case Statement::Kind::kAlterAdd: {
      INSIGHT_RETURN_NOT_OK(
          db_->LinkInstance(stmt.table, stmt.instance, stmt.indexable));
      result.message = "Instance " + stmt.instance + " linked to " +
                       stmt.table + (stmt.indexable ? " (indexable)" : "");
      return result;
    }
    case Statement::Kind::kAlterDrop: {
      INSIGHT_RETURN_NOT_OK(db_->UnlinkInstance(stmt.table, stmt.instance));
      result.message = "Instance " + stmt.instance + " unlinked";
      return result;
    }
    case Statement::Kind::kAnnotate: {
      INSIGHT_ASSIGN_OR_RETURN(Table * table,
                               db_->catalog()->GetTable(stmt.table));
      uint64_t mask = 0;
      if (stmt.columns.empty()) {
        mask = RowMask(table->schema().num_columns());
      } else {
        for (const std::string& column : stmt.columns) {
          INSIGHT_ASSIGN_OR_RETURN(size_t idx,
                                   table->schema().IndexOf(column));
          mask |= CellMask(idx);
        }
      }
      INSIGHT_ASSIGN_OR_RETURN(
          AnnId ann,
          db_->Annotate(stmt.table, stmt.text, {{stmt.tuple_oid, mask}}));
      result.message = "Annotation " + std::to_string(ann) + " added";
      return result;
    }
    case Statement::Kind::kAnalyze: {
      INSIGHT_RETURN_NOT_OK(db_->Analyze(stmt.table));
      result.message = "Statistics collected for " + stmt.table;
      return result;
    }
    case Statement::Kind::kCreateIndex: {
      INSIGHT_RETURN_NOT_OK(
          db_->CreateColumnIndex(stmt.table, stmt.columns[0]));
      result.message = "Index created on " + stmt.table + "." +
                       stmt.columns[0];
      return result;
    }
  }
  return Status::Internal("unreachable");
}

namespace {

/// Pre-order walk of the physical plan into TraceSpans, pairing each
/// operator's frozen plan-time estimate with its runtime counters.
void BuildTraceSpans(const PhysicalOperator* op, int depth,
                     std::vector<TraceSpan>* spans) {
  TraceSpan span;
  span.op = op->Describe();
  span.depth = depth;
  span.est_rows = op->has_estimate() ? op->estimated_rows() : -1;
  span.actual_rows = op->stats().rows;
  span.time_ns = op->stats().total_ns();
  spans->push_back(std::move(span));
  for (const PhysicalOperator* child : op->children()) {
    BuildTraceSpans(child, depth + 1, spans);
  }
}

}  // namespace

void StatementExecutor::ObserveQuery(const std::string& statement,
                                     PhysicalOperator* root,
                                     uint64_t total_ns) {
  EngineMetrics& m = EngineMetrics::Get();
  m.queries_total->Add(1);
  m.query_millis->Observe(static_cast<double>(total_ns) / 1e6);

  QueryTrace trace;
  trace.statement = statement;
  trace.total_ns = total_ns;
  BuildTraceSpans(root, 0, &trace.spans);
  for (const TraceSpan& span : trace.spans) {
    if (span.has_estimate()) m.plan_qerror->Observe(span.qerror());
  }

  // Cardinality feedback: every access-path root carries the table whose
  // statistics produced its estimate; a big enough q-error flags that
  // table so the next statistics refresh re-analyzes it.
  std::vector<PhysicalOperator*> stack{root};
  while (!stack.empty()) {
    PhysicalOperator* op = stack.back();
    stack.pop_back();
    if (!op->feedback_table().empty() && op->has_estimate()) {
      db_->context()->ReportCardinalityFeedback(
          op->feedback_table(),
          QError(op->estimated_rows(),
                 static_cast<double>(op->stats().rows)),
          db_->optimizer_options().feedback_qerror_threshold);
    }
    for (PhysicalOperator* child : op->children()) stack.push_back(child);
  }

  SlowQueryLog* slow_log = db_->slow_query_log();
  if (trace.total_ms() >= slow_log->threshold_ms()) {
    m.slow_queries_total->Add(1);
    trace.plan = root->ExplainAnalyzeTree();
    slow_log->Record(std::move(trace));
  }
}

Result<std::string> StatementExecutor::ExplainAnalyze(
    const SelectStatement& select, const std::string& sql,
    const Snapshot& snap) {
  const auto query_start = std::chrono::steady_clock::now();
  std::shared_lock<std::shared_mutex> plan_gate(plan_mu_);
  INSIGHT_ASSIGN_OR_RETURN(LogicalPtr plan, BindSelect(select));
  Optimizer optimizer(db_->context(), db_->optimizer_options());
  INSIGHT_ASSIGN_OR_RETURN(OpPtr op, optimizer.Optimize(std::move(plan)));
  plan_gate.unlock();
  ExecutionContext query_ctx = *db_->context()->exec_context();
  query_ctx.set_snapshot(snap);
  op->AttachContext(&query_ctx);
  INSIGHT_ASSIGN_OR_RETURN(std::vector<Row> rows, CollectRows(op.get()));
  ObserveQuery(sql, op.get(),
               static_cast<uint64_t>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - query_start)
                       .count()));
  std::string out = "Physical plan (analyzed):\n" + op->ExplainAnalyzeTree();
  char line[64];
  std::snprintf(line, sizeof(line), "Rows returned: %zu\n", rows.size());
  out += line;
  return out;
}

}  // namespace insight
