#include "sql/database.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>
#include <set>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "wal/crash_point.h"

namespace insight {

Database::Database(Options options)
    : options_(options),
      storage_(options.backend, options.directory),
      pool_(&storage_, options.buffer_pool_frames),
      catalog_(&storage_, &pool_),
      context_(&catalog_, &storage_, &pool_) {
  InstallWalHooks();
}

void Database::InstallWalHooks() {
  TransactionManager::WalHooks hooks;
  hooks.begin = [this](const Transaction& txn) -> Status {
    if (!WalEnabled()) return Status::OK();
    return wal_->Append(WalRecordType::kTxnBegin, WalTxnBegin{txn.id()}.Encode())
        .status();
  };
  hooks.commit = [this](const Transaction& txn, Ts) -> Status {
    if (!WalEnabled()) return Status::OK();
    INSIGHT_ASSIGN_OR_RETURN(
        Lsn lsn, wal_->Append(WalRecordType::kTxnCommit,
                              WalTxnCommit{txn.id()}.Encode()));
    INSIGHT_CRASH_POINT("txn_commit_appended");
    // The commit record is THE durability point of the transaction: its
    // buffered kTxnOp records ride the same force. Only after this fsync
    // may the transaction's effects become visible. kNever (tests/benches
    // measuring non-durable throughput) opts out of the force, as it does
    // for plain records.
    if (options_.wal_sync != WalSyncMode::kNever) {
      INSIGHT_RETURN_NOT_OK(wal_->Commit(lsn));
    }
    INSIGHT_CRASH_POINT("txn_commit_durable");
    return Status::OK();
  };
  hooks.abort = [this](const Transaction& txn) -> Status {
    if (!WalEnabled()) return Status::OK();
    // Fires after the in-memory undo, before the abort record lands: a
    // crash here must recover to the same no-effects state (the kTxnOps
    // are in the log but no commit record ever will be).
    INSIGHT_CRASH_POINT("txn_abort_mid");
    return wal_->Append(WalRecordType::kTxnAbort, WalTxnAbort{txn.id()}.Encode())
        .status();
  };
  txn_mgr_.SetWalHooks(std::move(hooks));
}

namespace {

constexpr const char* kWalFileName = "wal.log";

/// Removes every regular file in `dir` except the log. Page files are
/// derived state: the catalog that maps them to tables is logical (it
/// lives in the log), so a restart rebuilds them from replay. Leftover
/// files from the previous incarnation would otherwise collide with the
/// fresh CreateFile calls replay issues.
Status RemoveStalePageFiles(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::IOError("opendir " + dir + ": " + std::strerror(errno));
  }
  Status st = Status::OK();
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == ".." || name == kWalFileName) continue;
    const std::string path = dir + "/" + name;
    struct stat info;
    if (::stat(path.c_str(), &info) != 0 || !S_ISREG(info.st_mode)) continue;
    if (::unlink(path.c_str()) != 0) {
      st = Status::IOError("unlink " + path + ": " + std::strerror(errno));
      break;
    }
  }
  ::closedir(d);
  return st;
}

}  // namespace

Result<std::unique_ptr<Database>> Database::Open(
    const std::string& directory) {
  return Open(directory, Options{});
}

Result<std::unique_ptr<Database>> Database::Open(const std::string& directory,
                                                 Options options) {
  if (directory.empty()) {
    return Status::InvalidArgument("Open needs a directory");
  }
  if (::mkdir(directory.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("mkdir " + directory + ": " +
                           std::strerror(errno));
  }
  options.directory = directory;
  if (options.backend == StorageManager::Backend::kFile) {
    INSIGHT_RETURN_NOT_OK(RemoveStalePageFiles(directory));
  }
  INSIGHT_ASSIGN_OR_RETURN(auto wal,
                           LogManager::Open(directory + "/" + kWalFileName));
  INSIGHT_ASSIGN_OR_RETURN(std::vector<WalRecord> records, wal->ReadAll());

  auto db = std::unique_ptr<Database>(new Database(options));
  db->replaying_ = true;
  Result<RecoveryManager::Stats> replayed =
      RecoveryManager::Replay(records, db.get());
  db->replaying_ = false;
  if (!replayed.ok()) return replayed.status();
  db->recovery_stats_ = *replayed;

  db->wal_ = std::move(wal);
  // WAL-before-data from here on: dirty pages force the log first.
  db->pool_.SetWalBridge(db->wal_.get());
  return db;
}

Result<Table*> Database::CreateTable(const std::string& name, Schema schema) {
  const size_t num_columns = schema.num_columns();
  StampNextLsn();
  INSIGHT_ASSIGN_OR_RETURN(Table * table,
                           catalog_.CreateTable(name, std::move(schema)));
  AnnotatedRelation rel;
  INSIGHT_ASSIGN_OR_RETURN(rel.store,
                           AnnotationStore::Create(&catalog_, table->name(),
                                                   num_columns));
  INSIGHT_ASSIGN_OR_RETURN(
      rel.mgr, SummaryManager::Create(&catalog_, table, rel.store.get()));
  INSIGHT_RETURN_NOT_OK(context_.RegisterRelation(table, rel.mgr.get()));
  // Online statistics ride along from the first write: the planner-facing
  // RelationInfo carries the sketch handle as its second estimator tier.
  TableSketches* sketches =
      stats_registry_.RegisterTable(table->name(), table->schema());
  if (auto info = context_.GetMutable(table->name()); info.ok()) {
    (*info)->sketches = sketches;
  }
  relations_[ToLower(name)] = std::move(rel);
  if (WalEnabled()) {
    WalCreateTable rec{table->name(), table->schema()};
    INSIGHT_RETURN_NOT_OK(LogOp(WalRecordType::kCreateTable, rec.Encode()));
  }
  return table;
}

Result<Oid> Database::Insert(const std::string& table, Tuple tuple) {
  INSIGHT_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  StampNextLsn();
  INSIGHT_ASSIGN_OR_RETURN(Oid oid, t->Insert(tuple));
  if (stats_internal::Enabled()) {
    if (TableSketches* s = stats_registry_.Find(table)) s->OnInsert(tuple);
  }
  if (WalEnabled()) {
    WalInsert rec{t->name(), oid, std::move(tuple)};
    INSIGHT_RETURN_NOT_OK(LogOp(WalRecordType::kInsert, rec.Encode()));
  }
  return oid;
}

Status Database::DeleteTuple(const std::string& table, Oid oid) {
  INSIGHT_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  StampNextLsn();
  INSIGHT_RETURN_NOT_OK(DeleteTupleImpl(table, oid));
  if (WalEnabled()) {
    WalDelete rec{t->name(), oid};
    INSIGHT_RETURN_NOT_OK(LogOp(WalRecordType::kDelete, rec.Encode()));
  }
  return Status::OK();
}

Status Database::DeleteTupleImpl(const std::string& table, Oid oid) {
  INSIGHT_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  INSIGHT_ASSIGN_OR_RETURN(SummaryManager * mgr, GetManager(table));
  // Capture the doomed tuple first (it is invisible after Delete) so the
  // sketches can subtract its values once the delete has succeeded.
  TableSketches* sketches = nullptr;
  Tuple doomed;
  if (stats_internal::Enabled()) {
    sketches = stats_registry_.Find(table);
    if (sketches != nullptr) {
      Transaction* txn = CurrentTxn();
      auto old =
          t->Get(oid, txn != nullptr ? txn->snapshot() : Snapshot::Latest());
      if (old.ok()) {
        doomed = std::move(*old);
      } else {
        sketches = nullptr;
      }
    }
  }
  INSIGHT_RETURN_NOT_OK(mgr->OnTupleDeleted(oid));
  INSIGHT_RETURN_NOT_OK(t->Delete(oid));
  if (sketches != nullptr) sketches->OnDelete(doomed);
  return Status::OK();
}

Status Database::CreateColumnIndex(const std::string& table,
                                   const std::string& column) {
  INSIGHT_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  StampNextLsn();
  INSIGHT_RETURN_NOT_OK(t->CreateColumnIndex(column));
  if (WalEnabled()) {
    WalCreateIndex rec{t->name(), column};
    INSIGHT_RETURN_NOT_OK(LogOp(WalRecordType::kCreateIndex, rec.Encode()));
  }
  return Status::OK();
}

Result<SummaryManager*> Database::GetManager(const std::string& table) {
  auto it = relations_.find(ToLower(table));
  if (it == relations_.end()) {
    return Status::NotFound("no annotated relation " + table);
  }
  return it->second.mgr.get();
}

Result<const SummaryBTree*> Database::GetSummaryIndex(
    const std::string& table, const std::string& instance) {
  auto it = relations_.find(ToLower(table));
  if (it == relations_.end()) {
    return Status::NotFound("no annotated relation " + table);
  }
  auto idx = it->second.indexes.find(ToLower(instance));
  if (idx == it->second.indexes.end()) {
    return Status::NotFound("no summary index on " + table + "." + instance);
  }
  return idx->second.get();
}

Result<const SnippetKeywordIndex*> Database::GetKeywordIndex(
    const std::string& table, const std::string& instance) {
  auto it = relations_.find(ToLower(table));
  if (it == relations_.end()) {
    return Status::NotFound("no annotated relation " + table);
  }
  auto idx = it->second.keyword_indexes.find(ToLower(instance));
  if (idx == it->second.keyword_indexes.end()) {
    return Status::NotFound("no keyword index on " + table + "." + instance);
  }
  return idx->second.get();
}

Status Database::DefineInstance(SummaryInstance instance) {
  const std::string key = ToLower(instance.name());
  if (instance_defs_.count(key) > 0) {
    return Status::AlreadyExists("instance " + instance.name());
  }
  instance_defs_.emplace(key, std::move(instance));
  return Status::OK();
}

Status Database::DefineClassifier(
    const std::string& name, std::vector<std::string> labels,
    const std::vector<std::pair<std::string, std::string>>& training) {
  auto model = std::make_shared<NaiveBayesClassifier>(labels);
  for (const auto& [text, label] : training) {
    INSIGHT_RETURN_NOT_OK(model->Train(text, label));
  }
  WalInstanceDef def;
  def.kind = WalInstanceDef::Kind::kClassifier;
  def.name = name;
  def.labels = labels;
  def.training = training;
  INSIGHT_RETURN_NOT_OK(DefineInstance(
      SummaryInstance::Classifier(name, std::move(labels), std::move(model))));
  // Journal the *parameters*: retraining Naive Bayes from the same seed
  // pairs is deterministic, so replay re-derives an equivalent instance.
  instance_def_payloads_.emplace_back(ToLower(name), def.Encode());
  return LogOp(WalRecordType::kDefineInstance,
               instance_def_payloads_.back().second);
}

Status Database::DefineSnippet(const std::string& name,
                               SnippetSummarizer::Options options) {
  INSIGHT_RETURN_NOT_OK(
      DefineInstance(SummaryInstance::Snippet(name, options)));
  WalInstanceDef def;
  def.kind = WalInstanceDef::Kind::kSnippet;
  def.name = name;
  def.snippet_min_chars = options.min_chars;
  def.snippet_max_chars = options.max_snippet_chars;
  instance_def_payloads_.emplace_back(ToLower(name), def.Encode());
  return LogOp(WalRecordType::kDefineInstance,
               instance_def_payloads_.back().second);
}

Status Database::DefineCluster(const std::string& name,
                               double min_similarity) {
  INSIGHT_RETURN_NOT_OK(
      DefineInstance(SummaryInstance::Cluster(name, min_similarity)));
  WalInstanceDef def;
  def.kind = WalInstanceDef::Kind::kCluster;
  def.name = name;
  def.cluster_min_similarity = min_similarity;
  instance_def_payloads_.emplace_back(ToLower(name), def.Encode());
  return LogOp(WalRecordType::kDefineInstance,
               instance_def_payloads_.back().second);
}

Status Database::LinkInstance(const std::string& table,
                              const std::string& instance, bool indexable) {
  StampNextLsn();
  auto rel_it = relations_.find(ToLower(table));
  if (rel_it == relations_.end()) {
    return Status::NotFound("no annotated relation " + table);
  }
  auto def_it = instance_defs_.find(ToLower(instance));
  if (def_it == instance_defs_.end()) {
    return Status::NotFound("no instance definition " + instance);
  }
  if (indexable && def_it->second.type() == SummaryType::kCluster) {
    // Checked before linking so a failed ALTER leaves no partial state.
    return Status::NotImplemented(
        "no indexing scheme for Cluster-type instances");
  }
  INSIGHT_RETURN_NOT_OK(rel_it->second.mgr->LinkInstance(def_it->second));
  // Per-label sketch maintenance subscribes alongside the indexes; the
  // same subscription replays at recovery, so a recovered or promoted
  // node keeps warm label sketches without extra machinery.
  stats_registry_.AttachInstance(table, rel_it->second.mgr.get(),
                                 def_it->second.id());
  if (indexable) {
    // INDEXABLE builds the index matching the instance family:
    // Summary-BTree for classifiers (Section 4), the inverted keyword
    // index for snippet instances (extension).
    if (def_it->second.type() == SummaryType::kClassifier) {
      INSIGHT_ASSIGN_OR_RETURN(
          auto index, SummaryBTree::Create(&storage_, &pool_,
                                           rel_it->second.mgr.get(),
                                           def_it->second.name(),
                                           SummaryBTree::Options{}));
      INSIGHT_RETURN_NOT_OK(context_.RegisterSummaryIndex(
          table, def_it->second.name(), index.get()));
      rel_it->second.indexes[ToLower(instance)] = std::move(index);
    } else if (def_it->second.type() == SummaryType::kSnippet) {
      INSIGHT_ASSIGN_OR_RETURN(
          auto index, SnippetKeywordIndex::Create(
                          &storage_, &pool_, rel_it->second.mgr.get(),
                          def_it->second.name(),
                          SnippetKeywordIndex::Options{}));
      INSIGHT_RETURN_NOT_OK(context_.RegisterKeywordIndex(
          table, def_it->second.name(), index.get()));
      rel_it->second.keyword_indexes[ToLower(instance)] = std::move(index);
    }
  }
  if (WalEnabled()) {
    WalLinkInstance rec{rel_it->second.mgr->base()->name(),
                        def_it->second.name(), indexable};
    INSIGHT_RETURN_NOT_OK(LogOp(WalRecordType::kLinkInstance, rec.Encode()));
  }
  return Status::OK();
}

Status Database::UnlinkInstance(const std::string& table,
                                const std::string& instance) {
  StampNextLsn();
  auto rel_it = relations_.find(ToLower(table));
  if (rel_it == relations_.end()) {
    return Status::NotFound("no annotated relation " + table);
  }
  // Resolve the instance id before the unlink destroys it; the sketch
  // subscription detaches *after* the unlink so the object-strip events
  // still reach the per-label sketches.
  uint32_t sketch_detach_id = 0;
  bool have_sketch_detach = false;
  if (auto inst = rel_it->second.mgr->FindInstance(instance); inst.ok()) {
    sketch_detach_id = (*inst)->id();
    have_sketch_detach = true;
  }
  INSIGHT_RETURN_NOT_OK(rel_it->second.mgr->UnlinkInstance(instance));
  if (have_sketch_detach) {
    stats_registry_.DetachInstance(table, sketch_detach_id);
  }
  // Tear down the instance's indexes: planner registrations first, then
  // the objects themselves (their destructors drop the maintenance
  // subscriptions).
  INSIGHT_RETURN_NOT_OK(context_.UnregisterInstanceIndexes(table, instance));
  const std::string key = ToLower(instance);
  rel_it->second.indexes.erase(key);
  rel_it->second.baseline_indexes.erase(key);
  rel_it->second.keyword_indexes.erase(key);
  if (WalEnabled()) {
    WalUnlinkInstance rec{rel_it->second.mgr->base()->name(), instance};
    INSIGHT_RETURN_NOT_OK(
        LogOp(WalRecordType::kUnlinkInstance, rec.Encode()));
  }
  return Status::OK();
}

Status Database::AddBaselineIndex(const std::string& table,
                                  const std::string& instance) {
  auto rel_it = relations_.find(ToLower(table));
  if (rel_it == relations_.end()) {
    return Status::NotFound("no annotated relation " + table);
  }
  INSIGHT_ASSIGN_OR_RETURN(
      auto index,
      BaselineClassifierIndex::Create(&catalog_, rel_it->second.mgr.get(),
                                      instance,
                                      BaselineClassifierIndex::Options{}));
  INSIGHT_RETURN_NOT_OK(
      context_.RegisterBaselineIndex(table, instance, index.get()));
  rel_it->second.baseline_indexes[ToLower(instance)] = std::move(index);
  return Status::OK();
}

Result<AnnId> Database::Annotate(const std::string& table,
                                 const std::string& text,
                                 const std::vector<AnnotationTarget>& targets) {
  INSIGHT_ASSIGN_OR_RETURN(SummaryManager * mgr, GetManager(table));
  StampNextLsn();
  INSIGHT_ASSIGN_OR_RETURN(AnnId ann, mgr->AddAnnotation(text, targets));
  if (WalEnabled()) {
    WalAnnotate rec;
    rec.table = mgr->base()->name();
    rec.ann_id = ann;
    rec.text = text;
    for (const AnnotationTarget& t : targets) {
      rec.targets.emplace_back(t.oid, t.column_mask);
    }
    INSIGHT_RETURN_NOT_OK(LogOp(WalRecordType::kAnnotate, rec.Encode()));
  }
  return ann;
}

Status Database::RemoveAnnotation(const std::string& table, AnnId ann) {
  INSIGHT_ASSIGN_OR_RETURN(SummaryManager * mgr, GetManager(table));
  StampNextLsn();
  INSIGHT_RETURN_NOT_OK(mgr->RemoveAnnotation(ann));
  if (WalEnabled()) {
    WalRemoveAnnotation rec{mgr->base()->name(), ann};
    INSIGHT_RETURN_NOT_OK(
        LogOp(WalRecordType::kRemoveAnnotation, rec.Encode()));
  }
  return Status::OK();
}

Result<std::vector<Annotation>> Database::ZoomIn(const std::string& table,
                                                 Oid oid,
                                                 const std::string& instance,
                                                 const std::string& label,
                                                 int rep_index,
                                                 const Snapshot& snap) {
  auto rel_it = relations_.find(ToLower(table));
  if (rel_it == relations_.end()) {
    return Status::NotFound("no annotated relation " + table);
  }
  INSIGHT_ASSIGN_OR_RETURN(std::vector<Annotation> all,
                           rel_it->second.store->ForTuple(oid, snap));
  if (instance.empty()) return all;
  // Restrict to the annotations contributing to one summary object,
  // optionally to one representative of it.
  INSIGHT_ASSIGN_OR_RETURN(SummarySet set,
                           rel_it->second.mgr->GetSummaries(oid, snap));
  const SummaryObject* obj = set.GetSummaryObject(instance);
  if (obj == nullptr) return std::vector<Annotation>{};
  std::set<AnnId> member_ids;
  for (size_t i = 0; i < obj->elements.size(); ++i) {
    if (rep_index >= 0 && i != static_cast<size_t>(rep_index)) continue;
    if (!label.empty() && !EqualsIgnoreCase(obj->reps[i].text, label)) {
      continue;
    }
    for (const ElementRef& e : obj->elements[i]) member_ids.insert(e.ann_id);
  }
  std::vector<Annotation> out;
  for (Annotation& ann : all) {
    if (member_ids.count(ann.id) > 0) out.push_back(std::move(ann));
  }
  return out;
}

Status Database::Analyze(const std::string& table) {
  return context_.Analyze(table);
}

// ---------- Durability ----------

Status Database::LogOp(WalRecordType type, std::string payload) {
  if (!WalEnabled()) return Status::OK();
  if (Transaction* txn = CurrentTxn()) {
    // Transactional op: wrapped so recovery can tie it to its commit
    // record. No per-op force — durability comes from the commit record —
    // and no auto-checkpoint from inside the transaction (it is taken
    // after commit instead).
    WalTxnOp op{txn->id(), type, std::move(payload)};
    INSIGHT_RETURN_NOT_OK(
        wal_->Append(WalRecordType::kTxnOp, op.Encode()).status());
    ++ops_since_checkpoint_;
    return Status::OK();
  }
  INSIGHT_ASSIGN_OR_RETURN(Lsn lsn, wal_->Append(type, std::move(payload)));
  if (options_.wal_sync == WalSyncMode::kEveryOp) {
    INSIGHT_RETURN_NOT_OK(wal_->Commit(lsn));
  }
  ++ops_since_checkpoint_;
  return MaybeAutoCheckpoint();
}

Status Database::MaybeAutoCheckpoint() {
  if (options_.checkpoint_every_ops == 0 || in_checkpoint_) {
    return Status::OK();
  }
  if (CurrentTxn() != nullptr) return Status::OK();
  if (ops_since_checkpoint_ < options_.checkpoint_every_ops) {
    return Status::OK();
  }
  return Checkpoint();
}

Status Database::WalSync() {
  if (wal_ == nullptr) return Status::OK();
  return wal_->Sync();
}

Result<WalSnapshot> Database::BuildSnapshot() {
  WalSnapshot snap;
  snap.next_ann_id = PeekNextAnnId();

  // Instance definitions first: links reference them.
  for (const auto& [name, payload] : instance_def_payloads_) {
    snap.ops.emplace_back(WalRecordType::kDefineInstance, payload);
  }

  for (const auto& [key, rel] : relations_) {
    Table* table = rel.mgr->base();
    const std::string& name = table->name();
    snap.ops.emplace_back(WalRecordType::kCreateTable,
                          WalCreateTable{name, table->schema()}.Encode());
    for (const std::string& column : table->IndexedColumns()) {
      snap.ops.emplace_back(WalRecordType::kCreateIndex,
                            WalCreateIndex{name, column}.Encode());
    }
    // Links before data: with the instances in place, restoring the
    // annotations below re-runs summarization and rebuilds summary
    // storage (annotations that historically predate a link get
    // summarized on restore — see DESIGN.md on this divergence).
    for (const SummaryInstance& inst : rel.mgr->instances()) {
      const std::string inst_key = ToLower(inst.name());
      const bool indexable = rel.indexes.count(inst_key) > 0 ||
                             rel.keyword_indexes.count(inst_key) > 0;
      snap.ops.emplace_back(
          WalRecordType::kLinkInstance,
          WalLinkInstance{name, inst.name(), indexable}.Encode());
    }
    // Latest-committed snapshot: open transactions' uncommitted versions
    // carry txn stamps and are excluded; if they commit, their wrapped
    // ops are still in the log and replay after this checkpoint.
    Table::Iterator it = table->Scan();
    Oid oid;
    Tuple tuple;
    while (it.Next(&oid, &tuple)) {
      snap.ops.emplace_back(WalRecordType::kInsert,
                            WalInsert{name, oid, tuple}.Encode());
    }
    INSIGHT_RETURN_NOT_OK(
        rel.store->ForEachAnnotation([&](const Annotation& ann) {
          WalAnnotate rec;
          rec.table = name;
          rec.ann_id = ann.id;
          rec.text = ann.text;
          for (const AnnotationTarget& t : ann.targets) {
            rec.targets.emplace_back(t.oid, t.column_mask);
          }
          snap.ops.emplace_back(WalRecordType::kAnnotate, rec.Encode());
          return Status::OK();
        }));
  }
  // Sketch image last: every table it names exists by now, and restoring
  // it after the inserts/annotations replayed above overwrites their
  // incremental updates with the exact checkpointed state (idempotent).
  snap.ops.emplace_back(WalRecordType::kStatsSketch,
                        WalStatsSketch{stats_registry_.Serialize()}.Encode());
  return snap;
}

Status Database::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument("checkpoint needs an attached WAL");
  }
  // Quiesce writers (recursive, so a writer-triggered auto-checkpoint
  // re-enters): no statement is mid-apply while state is serialized.
  std::lock_guard<std::recursive_mutex> write_gate(txn_mgr_.write_mu());
  if (in_checkpoint_) return Status::OK();
  in_checkpoint_ = true;
  Status result = [&]() -> Status {
    INSIGHT_ASSIGN_OR_RETURN(WalSnapshot snap, BuildSnapshot());
    INSIGHT_ASSIGN_OR_RETURN(
        Lsn begin, wal_->Append(WalRecordType::kCheckpointBegin,
                                snap.Encode()));
    INSIGHT_CRASH_POINT("checkpoint_begin");
    INSIGHT_RETURN_NOT_OK(wal_->Commit(begin));
    // Data pages next. Order matters: the snapshot is durable before any
    // page that might depend on post-checkpoint state is written, and
    // CheckpointEnd is logged only after the pages are synced.
    INSIGHT_RETURN_NOT_OK(pool_.FlushAll());
    INSIGHT_RETURN_NOT_OK(storage_.SyncAll());
    INSIGHT_CRASH_POINT("checkpoint_after_flush");
    INSIGHT_ASSIGN_OR_RETURN(
        Lsn end, wal_->Append(WalRecordType::kCheckpointEnd,
                              WalCheckpointEnd{begin}.Encode()));
    INSIGHT_RETURN_NOT_OK(wal_->Commit(end));
    INSIGHT_CRASH_POINT("checkpoint_end");
    return Status::OK();
  }();
  in_checkpoint_ = false;
  if (result.ok()) {
    ops_since_checkpoint_ = 0;
    // Writers are still quiesced: a natural window to tighten any zone
    // maps loosened by deletes/aborts since the last checkpoint. Purely
    // derived state, so a failure here does not void the checkpoint.
    result = MaintainZoneMaps();
  }
  return result;
}

Status Database::MaintainZoneMaps() {
  for (auto& [key, rel] : relations_) {
    INSIGHT_RETURN_NOT_OK(rel.mgr->base()->MaintainZoneMaps());
  }
  return Status::OK();
}

// ---------- Replication ----------

Status Database::EnterReplicaMode() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument(
        "replica mode needs a journaled database (Open a directory)");
  }
  if (role() == Role::kReplica) return Status::OK();
  // In-flight transactions of the primary may span this replica's local
  // log: recovery buffered-but-skipped their ops, so rebuild the same
  // buffers for the live stream to resume into.
  INSIGHT_ASSIGN_OR_RETURN(std::vector<WalRecord> records, wal_->ReadAll());
  streaming_replay_ = StreamingReplay();
  INSIGHT_RETURN_NOT_OK(streaming_replay_.Prime(records));
  // Suppress journaling: every shipped record is appended verbatim, and
  // the local-transaction wrappers around apply units must not re-log.
  replaying_ = true;
  AdvanceAppliedLsn(wal_->durable_lsn());
  role_.store(Role::kReplica, std::memory_order_release);
  return Status::OK();
}

Status Database::Promote() {
  if (role() == Role::kPrimary) return Status::OK();
  role_.store(Role::kPrimary, std::memory_order_release);
  replaying_ = false;
  // Drop buffered ops of transactions whose commit never shipped: the
  // local log holds their kTxnOp records but no commit record, so a
  // restart of this node discards them identically.
  streaming_replay_ = StreamingReplay();
  applied_cv_.notify_all();  // Release wait-for-lsn readers: we ARE the
                             // frontier now.
  return Status::OK();
}

Status Database::ApplyReplicated(const WalRecord& rec) {
  if (role() != Role::kReplica) {
    return Status::InvalidArgument("not a replica");
  }
  const Lsn expected = wal_->next_lsn();
  if (rec.lsn != expected) {
    return Status::Corruption(
        "replication stream out of order: got LSN " +
        std::to_string(rec.lsn) + ", local log expects " +
        std::to_string(expected));
  }
  // Verbatim append keeps the local log a byte-equal prefix of the
  // primary's, so restart recovery and later promotion need no special
  // cases. WAL-before-data still holds: pages dirtied by the apply below
  // are stamped with this LSN and force the log on flush.
  INSIGHT_RETURN_NOT_OK(wal_->Append(rec.type, rec.payload).status());
  pool_.SetCurrentLsn(rec.lsn);
  std::vector<StreamingReplay::Unit> units;
  INSIGHT_RETURN_NOT_OK(streaming_replay_.Feed(rec, &units));
  for (const StreamingReplay::Unit& unit : units) {
    INSIGHT_RETURN_NOT_OK(ApplyReplicatedUnit(unit));
  }
  return Status::OK();
}

Status Database::ApplyReplicatedUnit(const StreamingReplay::Unit& unit) {
  if (unit.ddl) {
    // DDL restructures catalog objects readers borrow pointers to: same
    // exclusive gate its primary-side original held.
    std::unique_lock<std::shared_mutex> ddl_gate(ddl_mu_);
    std::lock_guard<std::recursive_mutex> write_gate(txn_mgr_.write_mu());
    for (const StreamingReplay::Op& op : unit.ops) {
      INSIGHT_RETURN_NOT_OK(
          RecoveryManager::ApplyOne(op.type, op.payload, this));
    }
    return Status::OK();
  }
  // DML unit: wrap in a local transaction so every row/annotation/index
  // version carries one commit timestamp — concurrent replica readers
  // see the whole primary commit or none of it. replaying_ keeps the
  // transaction hooks from re-journaling.
  std::shared_lock<std::shared_mutex> ddl_gate(ddl_mu_);
  std::lock_guard<std::recursive_mutex> write_gate(txn_mgr_.write_mu());
  INSIGHT_ASSIGN_OR_RETURN(Transaction * txn, txn_mgr_.Begin());
  const uint64_t txn_id = txn->id();
  Status applied = [&]() -> Status {
    TxnScope scope(txn);
    for (const StreamingReplay::Op& op : unit.ops) {
      INSIGHT_RETURN_NOT_OK(
          RecoveryManager::ApplyOne(op.type, op.payload, this));
    }
    return Status::OK();
  }();
  if (!applied.ok()) {
    txn_mgr_.Abort(txn_id).ok();  // Surface the apply error, not the undo's.
    return applied;
  }
  return txn_mgr_.Commit(txn_id);
}

void Database::AdvanceAppliedLsn(Lsn lsn) {
  {
    std::lock_guard<std::mutex> lk(applied_mu_);
    if (lsn <= applied_lsn_.load(std::memory_order_relaxed)) return;
    applied_lsn_.store(lsn, std::memory_order_release);
  }
  applied_cv_.notify_all();
}

bool Database::WaitForAppliedLsn(Lsn lsn,
                                 std::chrono::milliseconds timeout) {
  if (role() == Role::kPrimary) return true;  // Source of truth.
  if (applied_lsn() >= lsn) return true;
  std::unique_lock<std::mutex> lk(applied_mu_);
  return applied_cv_.wait_for(lk, timeout, [&] {
    return role() == Role::kPrimary ||
           applied_lsn_.load(std::memory_order_acquire) >= lsn;
  });
}

// ---------- ReplayTarget ----------

Status Database::ReplayAnnIdFloor(uint64_t next_ann_id) {
  EnsureAnnIdAtLeast(next_ann_id);
  return Status::OK();
}

Status Database::ReplayCreateTable(const WalCreateTable& op) {
  return CreateTable(op.table, op.schema).status();
}

Status Database::ReplayCreateIndex(const WalCreateIndex& op) {
  return CreateColumnIndex(op.table, op.column);
}

Status Database::ReplayInsert(const WalInsert& op) {
  INSIGHT_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(op.table));
  INSIGHT_RETURN_NOT_OK(t->InsertWithOid(op.oid, op.tuple));
  // Replay rebuilds the online statistics as derived state — recovery and
  // replica apply both route through here, so a recovered database and a
  // promoted replica plan with warm sketches.
  if (stats_internal::Enabled()) {
    if (TableSketches* s = stats_registry_.Find(op.table)) {
      s->OnInsert(op.tuple);
    }
  }
  return Status::OK();
}

Status Database::ReplayDelete(const WalDelete& op) {
  return DeleteTupleImpl(op.table, op.oid);
}

Status Database::ReplayDefineInstance(const WalInstanceDef& op) {
  switch (op.kind) {
    case WalInstanceDef::Kind::kClassifier:
      return DefineClassifier(op.name, op.labels, op.training);
    case WalInstanceDef::Kind::kSnippet: {
      SnippetSummarizer::Options options;
      options.min_chars = static_cast<size_t>(op.snippet_min_chars);
      options.max_snippet_chars = static_cast<size_t>(op.snippet_max_chars);
      return DefineSnippet(op.name, options);
    }
    case WalInstanceDef::Kind::kCluster:
      return DefineCluster(op.name, op.cluster_min_similarity);
  }
  return Status::Corruption("wal: unknown instance kind");
}

Status Database::ReplayLinkInstance(const WalLinkInstance& op) {
  return LinkInstance(op.table, op.instance, op.indexable);
}

Status Database::ReplayUnlinkInstance(const WalUnlinkInstance& op) {
  return UnlinkInstance(op.table, op.instance);
}

Status Database::ReplayAnnotate(const WalAnnotate& op) {
  INSIGHT_ASSIGN_OR_RETURN(SummaryManager * mgr, GetManager(op.table));
  std::vector<AnnotationTarget> targets;
  targets.reserve(op.targets.size());
  for (const auto& [oid, mask] : op.targets) {
    targets.push_back(AnnotationTarget{static_cast<Oid>(oid), mask});
  }
  return mgr->AddAnnotationWithId(op.ann_id, op.text, targets);
}

Status Database::ReplayRemoveAnnotation(const WalRemoveAnnotation& op) {
  INSIGHT_ASSIGN_OR_RETURN(SummaryManager * mgr, GetManager(op.table));
  return mgr->RemoveAnnotation(op.ann_id);
}

Status Database::ReplayStatsSketch(const WalStatsSketch& op) {
  return stats_registry_.Restore(op.image);
}

Result<std::vector<Row>> Database::Run(LogicalPtr plan) {
  INSIGHT_ASSIGN_OR_RETURN(OpPtr op, Plan(std::move(plan)));
  return CollectRows(op.get());
}

Result<OpPtr> Database::Plan(LogicalPtr plan) {
  Optimizer optimizer(&context_, optimizer_options_);
  return optimizer.Optimize(std::move(plan));
}

// ---------- Statement orchestration ----------

Status Database::CheckStatementSize(const std::string& sql) const {
  if (sql.size() > options_.max_statement_bytes) {
    return Status::ResourceExhausted(
        "statement of " + std::to_string(sql.size()) +
        " bytes exceeds max_statement_bytes=" +
        std::to_string(options_.max_statement_bytes));
  }
  return Status::OK();
}

Result<QueryResult> Database::Execute(const std::string& sql) {
  // One embedded session: statements from concurrent one-arg callers
  // execute one at a time against the shared handle. Concurrency is the
  // two-arg API's job (each session owns its handle).
  std::lock_guard<std::mutex> lk(embedded_mu_);
  return Execute(sql, &embedded_txn_);
}

Result<QueryResult> Database::Execute(const std::string& sql,
                                      uint64_t* txn_handle) {
  INSIGHT_RETURN_NOT_OK(CheckStatementSize(sql));
  INSIGHT_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  if (role() == Role::kReplica &&
      stmt.kind != Statement::Kind::kSelect &&
      stmt.kind != Statement::Kind::kExplain &&
      stmt.kind != Statement::Kind::kZoomIn) {
    // Redirect error: routed clients recognize kReadOnly and resend the
    // statement to the primary. BEGIN is rejected too — explicit
    // transactions exist to write.
    return Status::ReadOnly(
        "this node is a read-only replica; redirect writes to the primary");
  }
  switch (stmt.kind) {
    case Statement::Kind::kBegin:
      return ExecuteBegin(txn_handle);
    case Statement::Kind::kCommit:
      return ExecuteCommit(txn_handle);
    case Statement::Kind::kRollback:
      return ExecuteRollback(txn_handle);
    case Statement::Kind::kSelect:
    case Statement::Kind::kExplain:
    case Statement::Kind::kZoomIn:
      return ExecuteRead(stmt, sql, txn_handle);
    default:
      return ExecuteWrite(stmt, txn_handle);
  }
}

Result<QueryResult> Database::ExecuteBegin(uint64_t* txn_handle) {
  if (*txn_handle != 0) {
    if (txn_mgr_.Find(*txn_handle) != nullptr) {
      return Status::InvalidArgument(
          "transaction already open; COMMIT or ROLLBACK first");
    }
    *txn_handle = 0;  // Stale handle of an auto-aborted transaction.
  }
  INSIGHT_ASSIGN_OR_RETURN(Transaction * txn, txn_mgr_.Begin());
  *txn_handle = txn->id();
  QueryResult result;
  result.message = "Transaction " + std::to_string(txn->id()) + " started";
  return result;
}

Result<QueryResult> Database::ExecuteCommit(uint64_t* txn_handle) {
  if (*txn_handle == 0) {
    return Status::InvalidArgument("no open transaction");
  }
  const uint64_t id = *txn_handle;
  *txn_handle = 0;
  if (txn_mgr_.Find(id) == nullptr) {
    return Status::Aborted("transaction " + std::to_string(id) +
                           " was already aborted; retry from BEGIN");
  }
  std::shared_lock<std::shared_mutex> ddl_gate(ddl_mu_);
  INSIGHT_RETURN_NOT_OK(txn_mgr_.Commit(id));
  INSIGHT_RETURN_NOT_OK(MaybeAutoCheckpoint());
  QueryResult result;
  result.message = "Transaction " + std::to_string(id) + " committed";
  return result;
}

Result<QueryResult> Database::ExecuteRollback(uint64_t* txn_handle) {
  if (*txn_handle == 0) {
    return Status::InvalidArgument("no open transaction");
  }
  const uint64_t id = *txn_handle;
  *txn_handle = 0;
  QueryResult result;
  result.message = "Transaction " + std::to_string(id) + " rolled back";
  if (txn_mgr_.Find(id) == nullptr) {
    // Already auto-aborted after a conflict: ROLLBACK acknowledges it.
    return result;
  }
  std::shared_lock<std::shared_mutex> ddl_gate(ddl_mu_);
  INSIGHT_RETURN_NOT_OK(txn_mgr_.Abort(id));
  return result;
}

Result<QueryResult> Database::ExecuteRead(const Statement& stmt,
                                          const std::string& sql,
                                          uint64_t* txn_handle) {
  std::shared_lock<std::shared_mutex> ddl_gate(ddl_mu_);
  Snapshot snap;
  SnapshotLease lease;
  if (*txn_handle != 0) {
    Transaction* txn = txn_mgr_.Find(*txn_handle);
    if (txn == nullptr) {
      const uint64_t id = *txn_handle;
      *txn_handle = 0;
      return Status::Aborted("transaction " + std::to_string(id) +
                             " was aborted; retry from BEGIN");
    }
    snap = txn->snapshot();  // The transaction already holds a lease.
  } else {
    lease = txn_mgr_.BeginLease(&snap);
  }
  if (stmt.kind == Statement::Kind::kZoomIn) {
    QueryResult result;
    INSIGHT_ASSIGN_OR_RETURN(
        result.annotations,
        ZoomIn(stmt.table, stmt.tuple_oid, stmt.instance, stmt.zoom_label,
               stmt.zoom_rep_index, snap));
    return result;
  }
  {
    // Stats folding reads the live statistics writers feed; take the
    // write gate for just this step. Planning and execution below run
    // with no write gate — that is what retired the statement gate.
    std::lock_guard<std::recursive_mutex> write_gate(txn_mgr_.write_mu());
    INSIGHT_RETURN_NOT_OK(executor_.RefreshSelectStats(*stmt.select));
  }
  return executor_.ExecuteSelect(
      *stmt.select, stmt.kind == Statement::Kind::kExplain, sql, snap);
}

Result<QueryResult> Database::ExecuteWrite(const Statement& stmt,
                                           uint64_t* txn_handle) {
  const bool is_dml = stmt.kind == Statement::Kind::kInsert ||
                      stmt.kind == Statement::Kind::kAnnotate;
  if (!is_dml) {
    // DDL restructures catalog objects concurrent statements borrow raw
    // pointers to: exclusive DDL gate, autocommit only, plain WAL records
    // (schema changes carry no row versions to roll back).
    if (*txn_handle != 0 && txn_mgr_.Find(*txn_handle) != nullptr) {
      return Status::InvalidArgument(
          "DDL statements are not allowed inside a transaction; COMMIT or "
          "ROLLBACK first");
    }
    std::unique_lock<std::shared_mutex> ddl_gate(ddl_mu_);
    std::lock_guard<std::recursive_mutex> write_gate(txn_mgr_.write_mu());
    return executor_.ExecuteMutation(stmt);
  }

  std::shared_lock<std::shared_mutex> ddl_gate(ddl_mu_);
  std::lock_guard<std::recursive_mutex> write_gate(txn_mgr_.write_mu());
  Transaction* txn = nullptr;
  const bool autocommit = (*txn_handle == 0);
  if (autocommit) {
    INSIGHT_ASSIGN_OR_RETURN(txn, txn_mgr_.Begin());
  } else {
    txn = txn_mgr_.Find(*txn_handle);
    if (txn == nullptr) {
      const uint64_t id = *txn_handle;
      *txn_handle = 0;
      return Status::Aborted("transaction " + std::to_string(id) +
                             " was aborted; retry from BEGIN");
    }
  }
  const uint64_t txn_id = txn->id();
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    TxnScope scope(txn);
    return executor_.ExecuteMutation(stmt);
  }();
  if (!result.ok()) {
    // A failed statement poisons the transaction — partial row effects
    // must not commit — so roll the whole thing back, explicit or not.
    Status aborted = txn_mgr_.Abort(txn_id);
    *txn_handle = 0;
    if (!aborted.ok()) return aborted;
    return result.status();
  }
  if (autocommit) {
    INSIGHT_RETURN_NOT_OK(txn_mgr_.Commit(txn_id));
  }
  INSIGHT_RETURN_NOT_OK(MaybeAutoCheckpoint());
  return result;
}

Result<std::string> Database::Explain(const std::string& sql) {
  INSIGHT_RETURN_NOT_OK(CheckStatementSize(sql));
  INSIGHT_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  if (stmt.kind != Statement::Kind::kSelect &&
      stmt.kind != Statement::Kind::kExplain) {
    return Status::InvalidArgument("can only explain SELECT statements");
  }
  std::shared_lock<std::shared_mutex> ddl_gate(ddl_mu_);
  {
    std::lock_guard<std::recursive_mutex> write_gate(txn_mgr_.write_mu());
    INSIGHT_RETURN_NOT_OK(executor_.RefreshSelectStats(*stmt.select));
  }
  INSIGHT_ASSIGN_OR_RETURN(
      QueryResult result,
      executor_.ExecuteSelect(*stmt.select, /*explain_only=*/true, sql,
                              txn_mgr_.LatestSnapshot()));
  return result.message;
}

Result<std::string> Database::ExplainAnalyze(const std::string& sql) {
  INSIGHT_RETURN_NOT_OK(CheckStatementSize(sql));
  INSIGHT_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  if (stmt.kind != Statement::Kind::kSelect &&
      stmt.kind != Statement::Kind::kExplain) {
    return Status::InvalidArgument("can only explain SELECT statements");
  }
  std::shared_lock<std::shared_mutex> ddl_gate(ddl_mu_);
  {
    std::lock_guard<std::recursive_mutex> write_gate(txn_mgr_.write_mu());
    INSIGHT_RETURN_NOT_OK(executor_.RefreshSelectStats(*stmt.select));
  }
  Snapshot snap;
  SnapshotLease lease = txn_mgr_.BeginLease(&snap);
  return executor_.ExplainAnalyze(*stmt.select, sql, snap);
}

std::string Database::DumpMetrics() const {
  return MetricsRegistry::Global().ToPrometheus();
}

std::string Database::DumpMetricsJson() const {
  return MetricsRegistry::Global().ToJson();
}

}  // namespace insight
