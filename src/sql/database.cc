#include "sql/database.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "wal/crash_point.h"

namespace insight {

std::string QueryResult::ToString(size_t max_rows) const {
  if (!message.empty()) return message + "\n";
  if (!annotations.empty()) {
    std::string out;
    for (const Annotation& ann : annotations) {
      out += "[" + std::to_string(ann.id) + "] " + ann.text + "\n";
    }
    return out;
  }
  std::vector<size_t> widths;
  for (const Column& col : schema.columns()) {
    widths.push_back(col.name.size());
  }
  const size_t shown = std::min(rows.size(), max_rows);
  std::vector<std::vector<std::string>> cells;
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> row;
    for (size_t c = 0; c < rows[r].size(); ++c) {
      row.push_back(rows[r].at(c).ToString());
      if (c < widths.size()) widths[c] = std::max(widths[c], row[c].size());
    }
    cells.push_back(std::move(row));
  }
  std::string out;
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    out += schema.column(c).name;
    out += std::string(widths[c] - schema.column(c).name.size() + 2, ' ');
  }
  out += "\n";
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    out += std::string(widths[c], '-') + "  ";
  }
  out += "\n";
  for (size_t r = 0; r < cells.size(); ++r) {
    for (size_t c = 0; c < cells[r].size(); ++c) {
      out += cells[r][c];
      if (c < widths.size()) {
        out += std::string(widths[c] - cells[r][c].size() + 2, ' ');
      }
    }
    if (r < summaries.size() && !summaries[r].empty()) {
      std::string rendered = summaries[r].ToString();
      constexpr size_t kMaxSummaryChars = 140;
      if (rendered.size() > kMaxSummaryChars) {
        rendered.resize(kMaxSummaryChars);
        rendered += "...}";
      }
      out += "  $" + rendered;
    }
    out += "\n";
  }
  if (rows.size() > shown) {
    out += "... (" + std::to_string(rows.size() - shown) + " more rows)\n";
  }
  out += "(" + std::to_string(rows.size()) + " rows)\n";
  return out;
}

Database::Database(Options options)
    : options_(options),
      storage_(options.backend, options.directory),
      pool_(&storage_, options.buffer_pool_frames),
      catalog_(&storage_, &pool_),
      context_(&catalog_, &storage_, &pool_) {}

namespace {

constexpr const char* kWalFileName = "wal.log";

/// Removes every regular file in `dir` except the log. Page files are
/// derived state: the catalog that maps them to tables is logical (it
/// lives in the log), so a restart rebuilds them from replay. Leftover
/// files from the previous incarnation would otherwise collide with the
/// fresh CreateFile calls replay issues.
Status RemoveStalePageFiles(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::IOError("opendir " + dir + ": " + std::strerror(errno));
  }
  Status st = Status::OK();
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == ".." || name == kWalFileName) continue;
    const std::string path = dir + "/" + name;
    struct stat info;
    if (::stat(path.c_str(), &info) != 0 || !S_ISREG(info.st_mode)) continue;
    if (::unlink(path.c_str()) != 0) {
      st = Status::IOError("unlink " + path + ": " + std::strerror(errno));
      break;
    }
  }
  ::closedir(d);
  return st;
}

}  // namespace

Result<std::unique_ptr<Database>> Database::Open(
    const std::string& directory) {
  return Open(directory, Options{});
}

Result<std::unique_ptr<Database>> Database::Open(const std::string& directory,
                                                 Options options) {
  if (directory.empty()) {
    return Status::InvalidArgument("Open needs a directory");
  }
  if (::mkdir(directory.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("mkdir " + directory + ": " +
                           std::strerror(errno));
  }
  options.directory = directory;
  if (options.backend == StorageManager::Backend::kFile) {
    INSIGHT_RETURN_NOT_OK(RemoveStalePageFiles(directory));
  }
  INSIGHT_ASSIGN_OR_RETURN(auto wal,
                           LogManager::Open(directory + "/" + kWalFileName));
  INSIGHT_ASSIGN_OR_RETURN(std::vector<WalRecord> records, wal->ReadAll());

  auto db = std::unique_ptr<Database>(new Database(options));
  db->replaying_ = true;
  Result<RecoveryManager::Stats> replayed =
      RecoveryManager::Replay(records, db.get());
  db->replaying_ = false;
  if (!replayed.ok()) return replayed.status();
  db->recovery_stats_ = *replayed;

  db->wal_ = std::move(wal);
  // WAL-before-data from here on: dirty pages force the log first.
  db->pool_.SetWalBridge(db->wal_.get());
  return db;
}

Result<Table*> Database::CreateTable(const std::string& name, Schema schema) {
  const size_t num_columns = schema.num_columns();
  StampNextLsn();
  INSIGHT_ASSIGN_OR_RETURN(Table * table,
                           catalog_.CreateTable(name, std::move(schema)));
  AnnotatedRelation rel;
  INSIGHT_ASSIGN_OR_RETURN(rel.store,
                           AnnotationStore::Create(&catalog_, table->name(),
                                                   num_columns));
  INSIGHT_ASSIGN_OR_RETURN(
      rel.mgr, SummaryManager::Create(&catalog_, table, rel.store.get()));
  INSIGHT_RETURN_NOT_OK(context_.RegisterRelation(table, rel.mgr.get()));
  relations_[ToLower(name)] = std::move(rel);
  if (WalEnabled()) {
    WalCreateTable rec{table->name(), table->schema()};
    INSIGHT_RETURN_NOT_OK(LogOp(WalRecordType::kCreateTable, rec.Encode()));
  }
  return table;
}

Result<Oid> Database::Insert(const std::string& table, Tuple tuple) {
  INSIGHT_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  StampNextLsn();
  INSIGHT_ASSIGN_OR_RETURN(Oid oid, t->Insert(tuple));
  if (WalEnabled()) {
    WalInsert rec{t->name(), oid, std::move(tuple)};
    INSIGHT_RETURN_NOT_OK(LogOp(WalRecordType::kInsert, rec.Encode()));
  }
  return oid;
}

Status Database::DeleteTuple(const std::string& table, Oid oid) {
  INSIGHT_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  StampNextLsn();
  INSIGHT_RETURN_NOT_OK(DeleteTupleImpl(table, oid));
  if (WalEnabled()) {
    WalDelete rec{t->name(), oid};
    INSIGHT_RETURN_NOT_OK(LogOp(WalRecordType::kDelete, rec.Encode()));
  }
  return Status::OK();
}

Status Database::DeleteTupleImpl(const std::string& table, Oid oid) {
  INSIGHT_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  INSIGHT_ASSIGN_OR_RETURN(SummaryManager * mgr, GetManager(table));
  INSIGHT_RETURN_NOT_OK(mgr->OnTupleDeleted(oid));
  return t->Delete(oid);
}

Status Database::CreateColumnIndex(const std::string& table,
                                   const std::string& column) {
  INSIGHT_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  StampNextLsn();
  INSIGHT_RETURN_NOT_OK(t->CreateColumnIndex(column));
  if (WalEnabled()) {
    WalCreateIndex rec{t->name(), column};
    INSIGHT_RETURN_NOT_OK(LogOp(WalRecordType::kCreateIndex, rec.Encode()));
  }
  return Status::OK();
}

Result<SummaryManager*> Database::GetManager(const std::string& table) {
  auto it = relations_.find(ToLower(table));
  if (it == relations_.end()) {
    return Status::NotFound("no annotated relation " + table);
  }
  return it->second.mgr.get();
}

Result<const SummaryBTree*> Database::GetSummaryIndex(
    const std::string& table, const std::string& instance) {
  auto it = relations_.find(ToLower(table));
  if (it == relations_.end()) {
    return Status::NotFound("no annotated relation " + table);
  }
  auto idx = it->second.indexes.find(ToLower(instance));
  if (idx == it->second.indexes.end()) {
    return Status::NotFound("no summary index on " + table + "." + instance);
  }
  return idx->second.get();
}

Result<const SnippetKeywordIndex*> Database::GetKeywordIndex(
    const std::string& table, const std::string& instance) {
  auto it = relations_.find(ToLower(table));
  if (it == relations_.end()) {
    return Status::NotFound("no annotated relation " + table);
  }
  auto idx = it->second.keyword_indexes.find(ToLower(instance));
  if (idx == it->second.keyword_indexes.end()) {
    return Status::NotFound("no keyword index on " + table + "." + instance);
  }
  return idx->second.get();
}

Status Database::DefineInstance(SummaryInstance instance) {
  const std::string key = ToLower(instance.name());
  if (instance_defs_.count(key) > 0) {
    return Status::AlreadyExists("instance " + instance.name());
  }
  instance_defs_.emplace(key, std::move(instance));
  return Status::OK();
}

Status Database::DefineClassifier(
    const std::string& name, std::vector<std::string> labels,
    const std::vector<std::pair<std::string, std::string>>& training) {
  auto model = std::make_shared<NaiveBayesClassifier>(labels);
  for (const auto& [text, label] : training) {
    INSIGHT_RETURN_NOT_OK(model->Train(text, label));
  }
  WalInstanceDef def;
  def.kind = WalInstanceDef::Kind::kClassifier;
  def.name = name;
  def.labels = labels;
  def.training = training;
  INSIGHT_RETURN_NOT_OK(DefineInstance(
      SummaryInstance::Classifier(name, std::move(labels), std::move(model))));
  // Journal the *parameters*: retraining Naive Bayes from the same seed
  // pairs is deterministic, so replay re-derives an equivalent instance.
  instance_def_payloads_.emplace_back(ToLower(name), def.Encode());
  return LogOp(WalRecordType::kDefineInstance,
               instance_def_payloads_.back().second);
}

Status Database::DefineSnippet(const std::string& name,
                               SnippetSummarizer::Options options) {
  INSIGHT_RETURN_NOT_OK(
      DefineInstance(SummaryInstance::Snippet(name, options)));
  WalInstanceDef def;
  def.kind = WalInstanceDef::Kind::kSnippet;
  def.name = name;
  def.snippet_min_chars = options.min_chars;
  def.snippet_max_chars = options.max_snippet_chars;
  instance_def_payloads_.emplace_back(ToLower(name), def.Encode());
  return LogOp(WalRecordType::kDefineInstance,
               instance_def_payloads_.back().second);
}

Status Database::DefineCluster(const std::string& name,
                               double min_similarity) {
  INSIGHT_RETURN_NOT_OK(
      DefineInstance(SummaryInstance::Cluster(name, min_similarity)));
  WalInstanceDef def;
  def.kind = WalInstanceDef::Kind::kCluster;
  def.name = name;
  def.cluster_min_similarity = min_similarity;
  instance_def_payloads_.emplace_back(ToLower(name), def.Encode());
  return LogOp(WalRecordType::kDefineInstance,
               instance_def_payloads_.back().second);
}

Status Database::LinkInstance(const std::string& table,
                              const std::string& instance, bool indexable) {
  StampNextLsn();
  auto rel_it = relations_.find(ToLower(table));
  if (rel_it == relations_.end()) {
    return Status::NotFound("no annotated relation " + table);
  }
  auto def_it = instance_defs_.find(ToLower(instance));
  if (def_it == instance_defs_.end()) {
    return Status::NotFound("no instance definition " + instance);
  }
  if (indexable && def_it->second.type() == SummaryType::kCluster) {
    // Checked before linking so a failed ALTER leaves no partial state.
    return Status::NotImplemented(
        "no indexing scheme for Cluster-type instances");
  }
  INSIGHT_RETURN_NOT_OK(rel_it->second.mgr->LinkInstance(def_it->second));
  if (indexable) {
    // INDEXABLE builds the index matching the instance family:
    // Summary-BTree for classifiers (Section 4), the inverted keyword
    // index for snippet instances (extension).
    if (def_it->second.type() == SummaryType::kClassifier) {
      INSIGHT_ASSIGN_OR_RETURN(
          auto index, SummaryBTree::Create(&storage_, &pool_,
                                           rel_it->second.mgr.get(),
                                           def_it->second.name(),
                                           SummaryBTree::Options{}));
      INSIGHT_RETURN_NOT_OK(context_.RegisterSummaryIndex(
          table, def_it->second.name(), index.get()));
      rel_it->second.indexes[ToLower(instance)] = std::move(index);
    } else if (def_it->second.type() == SummaryType::kSnippet) {
      INSIGHT_ASSIGN_OR_RETURN(
          auto index, SnippetKeywordIndex::Create(
                          &storage_, &pool_, rel_it->second.mgr.get(),
                          def_it->second.name(),
                          SnippetKeywordIndex::Options{}));
      INSIGHT_RETURN_NOT_OK(context_.RegisterKeywordIndex(
          table, def_it->second.name(), index.get()));
      rel_it->second.keyword_indexes[ToLower(instance)] = std::move(index);
    }
  }
  if (WalEnabled()) {
    WalLinkInstance rec{rel_it->second.mgr->base()->name(),
                        def_it->second.name(), indexable};
    INSIGHT_RETURN_NOT_OK(LogOp(WalRecordType::kLinkInstance, rec.Encode()));
  }
  return Status::OK();
}

Status Database::UnlinkInstance(const std::string& table,
                                const std::string& instance) {
  StampNextLsn();
  auto rel_it = relations_.find(ToLower(table));
  if (rel_it == relations_.end()) {
    return Status::NotFound("no annotated relation " + table);
  }
  INSIGHT_RETURN_NOT_OK(rel_it->second.mgr->UnlinkInstance(instance));
  // Tear down the instance's indexes: planner registrations first, then
  // the objects themselves (their destructors drop the maintenance
  // subscriptions).
  INSIGHT_RETURN_NOT_OK(context_.UnregisterInstanceIndexes(table, instance));
  const std::string key = ToLower(instance);
  rel_it->second.indexes.erase(key);
  rel_it->second.baseline_indexes.erase(key);
  rel_it->second.keyword_indexes.erase(key);
  if (WalEnabled()) {
    WalUnlinkInstance rec{rel_it->second.mgr->base()->name(), instance};
    INSIGHT_RETURN_NOT_OK(
        LogOp(WalRecordType::kUnlinkInstance, rec.Encode()));
  }
  return Status::OK();
}

Status Database::AddBaselineIndex(const std::string& table,
                                  const std::string& instance) {
  auto rel_it = relations_.find(ToLower(table));
  if (rel_it == relations_.end()) {
    return Status::NotFound("no annotated relation " + table);
  }
  INSIGHT_ASSIGN_OR_RETURN(
      auto index,
      BaselineClassifierIndex::Create(&catalog_, rel_it->second.mgr.get(),
                                      instance,
                                      BaselineClassifierIndex::Options{}));
  INSIGHT_RETURN_NOT_OK(
      context_.RegisterBaselineIndex(table, instance, index.get()));
  rel_it->second.baseline_indexes[ToLower(instance)] = std::move(index);
  return Status::OK();
}

Result<AnnId> Database::Annotate(const std::string& table,
                                 const std::string& text,
                                 const std::vector<AnnotationTarget>& targets) {
  INSIGHT_ASSIGN_OR_RETURN(SummaryManager * mgr, GetManager(table));
  StampNextLsn();
  INSIGHT_ASSIGN_OR_RETURN(AnnId ann, mgr->AddAnnotation(text, targets));
  if (WalEnabled()) {
    WalAnnotate rec;
    rec.table = mgr->base()->name();
    rec.ann_id = ann;
    rec.text = text;
    for (const AnnotationTarget& t : targets) {
      rec.targets.emplace_back(t.oid, t.column_mask);
    }
    INSIGHT_RETURN_NOT_OK(LogOp(WalRecordType::kAnnotate, rec.Encode()));
  }
  return ann;
}

Status Database::RemoveAnnotation(const std::string& table, AnnId ann) {
  INSIGHT_ASSIGN_OR_RETURN(SummaryManager * mgr, GetManager(table));
  StampNextLsn();
  INSIGHT_RETURN_NOT_OK(mgr->RemoveAnnotation(ann));
  if (WalEnabled()) {
    WalRemoveAnnotation rec{mgr->base()->name(), ann};
    INSIGHT_RETURN_NOT_OK(
        LogOp(WalRecordType::kRemoveAnnotation, rec.Encode()));
  }
  return Status::OK();
}

Result<std::vector<Annotation>> Database::ZoomIn(const std::string& table,
                                                 Oid oid,
                                                 const std::string& instance,
                                                 const std::string& label,
                                                 int rep_index) {
  auto rel_it = relations_.find(ToLower(table));
  if (rel_it == relations_.end()) {
    return Status::NotFound("no annotated relation " + table);
  }
  INSIGHT_ASSIGN_OR_RETURN(std::vector<Annotation> all,
                           rel_it->second.store->ForTuple(oid));
  if (instance.empty()) return all;
  // Restrict to the annotations contributing to one summary object,
  // optionally to one representative of it.
  INSIGHT_ASSIGN_OR_RETURN(SummarySet set,
                           rel_it->second.mgr->GetSummaries(oid));
  const SummaryObject* obj = set.GetSummaryObject(instance);
  if (obj == nullptr) return std::vector<Annotation>{};
  std::set<AnnId> member_ids;
  for (size_t i = 0; i < obj->elements.size(); ++i) {
    if (rep_index >= 0 && i != static_cast<size_t>(rep_index)) continue;
    if (!label.empty() && !EqualsIgnoreCase(obj->reps[i].text, label)) {
      continue;
    }
    for (const ElementRef& e : obj->elements[i]) member_ids.insert(e.ann_id);
  }
  std::vector<Annotation> out;
  for (Annotation& ann : all) {
    if (member_ids.count(ann.id) > 0) out.push_back(std::move(ann));
  }
  return out;
}

Status Database::Analyze(const std::string& table) {
  return context_.Analyze(table);
}

// ---------- Durability ----------

Status Database::LogOp(WalRecordType type, std::string payload) {
  if (!WalEnabled()) return Status::OK();
  INSIGHT_ASSIGN_OR_RETURN(Lsn lsn, wal_->Append(type, std::move(payload)));
  if (options_.wal_sync == WalSyncMode::kEveryOp) {
    INSIGHT_RETURN_NOT_OK(wal_->Commit(lsn));
  }
  ++ops_since_checkpoint_;
  if (options_.checkpoint_every_ops > 0 && !in_checkpoint_ &&
      ops_since_checkpoint_ >= options_.checkpoint_every_ops) {
    INSIGHT_RETURN_NOT_OK(Checkpoint());
  }
  return Status::OK();
}

Status Database::WalSync() {
  if (wal_ == nullptr) return Status::OK();
  return wal_->Sync();
}

Result<WalSnapshot> Database::BuildSnapshot() {
  WalSnapshot snap;
  snap.next_ann_id = PeekNextAnnId();

  // Instance definitions first: links reference them.
  for (const auto& [name, payload] : instance_def_payloads_) {
    snap.ops.emplace_back(WalRecordType::kDefineInstance, payload);
  }

  for (const auto& [key, rel] : relations_) {
    Table* table = rel.mgr->base();
    const std::string& name = table->name();
    snap.ops.emplace_back(WalRecordType::kCreateTable,
                          WalCreateTable{name, table->schema()}.Encode());
    for (const std::string& column : table->IndexedColumns()) {
      snap.ops.emplace_back(WalRecordType::kCreateIndex,
                            WalCreateIndex{name, column}.Encode());
    }
    // Links before data: with the instances in place, restoring the
    // annotations below re-runs summarization and rebuilds summary
    // storage (annotations that historically predate a link get
    // summarized on restore — see DESIGN.md on this divergence).
    for (const SummaryInstance& inst : rel.mgr->instances()) {
      const std::string inst_key = ToLower(inst.name());
      const bool indexable = rel.indexes.count(inst_key) > 0 ||
                             rel.keyword_indexes.count(inst_key) > 0;
      snap.ops.emplace_back(
          WalRecordType::kLinkInstance,
          WalLinkInstance{name, inst.name(), indexable}.Encode());
    }
    Table::Iterator it = table->Scan();
    Oid oid;
    Tuple tuple;
    while (it.Next(&oid, &tuple)) {
      snap.ops.emplace_back(WalRecordType::kInsert,
                            WalInsert{name, oid, tuple}.Encode());
    }
    INSIGHT_RETURN_NOT_OK(
        rel.store->ForEachAnnotation([&](const Annotation& ann) {
          WalAnnotate rec;
          rec.table = name;
          rec.ann_id = ann.id;
          rec.text = ann.text;
          for (const AnnotationTarget& t : ann.targets) {
            rec.targets.emplace_back(t.oid, t.column_mask);
          }
          snap.ops.emplace_back(WalRecordType::kAnnotate, rec.Encode());
          return Status::OK();
        }));
  }
  return snap;
}

Status Database::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument("checkpoint needs an attached WAL");
  }
  if (in_checkpoint_) return Status::OK();
  in_checkpoint_ = true;
  Status result = [&]() -> Status {
    INSIGHT_ASSIGN_OR_RETURN(WalSnapshot snap, BuildSnapshot());
    INSIGHT_ASSIGN_OR_RETURN(
        Lsn begin, wal_->Append(WalRecordType::kCheckpointBegin,
                                snap.Encode()));
    INSIGHT_CRASH_POINT("checkpoint_begin");
    INSIGHT_RETURN_NOT_OK(wal_->Commit(begin));
    // Data pages next. Order matters: the snapshot is durable before any
    // page that might depend on post-checkpoint state is written, and
    // CheckpointEnd is logged only after the pages are synced.
    INSIGHT_RETURN_NOT_OK(pool_.FlushAll());
    INSIGHT_RETURN_NOT_OK(storage_.SyncAll());
    INSIGHT_CRASH_POINT("checkpoint_after_flush");
    INSIGHT_ASSIGN_OR_RETURN(
        Lsn end, wal_->Append(WalRecordType::kCheckpointEnd,
                              WalCheckpointEnd{begin}.Encode()));
    INSIGHT_RETURN_NOT_OK(wal_->Commit(end));
    INSIGHT_CRASH_POINT("checkpoint_end");
    return Status::OK();
  }();
  in_checkpoint_ = false;
  if (result.ok()) ops_since_checkpoint_ = 0;
  return result;
}

// ---------- ReplayTarget ----------

Status Database::ReplayAnnIdFloor(uint64_t next_ann_id) {
  EnsureAnnIdAtLeast(next_ann_id);
  return Status::OK();
}

Status Database::ReplayCreateTable(const WalCreateTable& op) {
  return CreateTable(op.table, op.schema).status();
}

Status Database::ReplayCreateIndex(const WalCreateIndex& op) {
  return CreateColumnIndex(op.table, op.column);
}

Status Database::ReplayInsert(const WalInsert& op) {
  INSIGHT_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(op.table));
  return t->InsertWithOid(op.oid, op.tuple);
}

Status Database::ReplayDelete(const WalDelete& op) {
  return DeleteTupleImpl(op.table, op.oid);
}

Status Database::ReplayDefineInstance(const WalInstanceDef& op) {
  switch (op.kind) {
    case WalInstanceDef::Kind::kClassifier:
      return DefineClassifier(op.name, op.labels, op.training);
    case WalInstanceDef::Kind::kSnippet: {
      SnippetSummarizer::Options options;
      options.min_chars = static_cast<size_t>(op.snippet_min_chars);
      options.max_snippet_chars = static_cast<size_t>(op.snippet_max_chars);
      return DefineSnippet(op.name, options);
    }
    case WalInstanceDef::Kind::kCluster:
      return DefineCluster(op.name, op.cluster_min_similarity);
  }
  return Status::Corruption("wal: unknown instance kind");
}

Status Database::ReplayLinkInstance(const WalLinkInstance& op) {
  return LinkInstance(op.table, op.instance, op.indexable);
}

Status Database::ReplayUnlinkInstance(const WalUnlinkInstance& op) {
  return UnlinkInstance(op.table, op.instance);
}

Status Database::ReplayAnnotate(const WalAnnotate& op) {
  INSIGHT_ASSIGN_OR_RETURN(SummaryManager * mgr, GetManager(op.table));
  std::vector<AnnotationTarget> targets;
  targets.reserve(op.targets.size());
  for (const auto& [oid, mask] : op.targets) {
    targets.push_back(AnnotationTarget{static_cast<Oid>(oid), mask});
  }
  return mgr->AddAnnotationWithId(op.ann_id, op.text, targets);
}

Status Database::ReplayRemoveAnnotation(const WalRemoveAnnotation& op) {
  INSIGHT_ASSIGN_OR_RETURN(SummaryManager * mgr, GetManager(op.table));
  return mgr->RemoveAnnotation(op.ann_id);
}

Result<std::vector<Row>> Database::Run(LogicalPtr plan) {
  INSIGHT_ASSIGN_OR_RETURN(OpPtr op, Plan(std::move(plan)));
  return CollectRows(op.get());
}

Result<OpPtr> Database::Plan(LogicalPtr plan) {
  Optimizer optimizer(&context_, optimizer_options_);
  return optimizer.Optimize(std::move(plan));
}

// ---------- SELECT binding ----------

namespace {

// Aliases (or table names) bound so far, for conjunct routing.
struct BoundSide {
  std::set<std::string> names;  // Lower-cased aliases/table names.
  Schema schema;
};

bool QualifierIn(const std::string& qualifier, const BoundSide& side) {
  return side.names.count(ToLower(qualifier)) > 0;
}

}  // namespace

Result<LogicalPtr> Database::BindSelect(const SelectStatement& select) {
  if (select.from.empty()) {
    return Status::ParseError("FROM clause required");
  }
  Optimizer opt(&context_, optimizer_options_);

  auto scan_for = [&](const SelectStatement::FromTable& from) {
    return from.alias.empty() ? LScan(from.table)
                              : LScanAs(from.table, from.alias);
  };
  auto names_for = [&](const SelectStatement::FromTable& from) {
    return ToLower(from.alias.empty() ? from.table : from.alias);
  };

  LogicalPtr plan = scan_for(select.from[0]);
  BoundSide bound;
  bound.names.insert(names_for(select.from[0]));
  INSIGHT_ASSIGN_OR_RETURN(bound.schema, opt.OutputSchema(*plan));

  std::vector<ExprPtr> conjuncts;
  if (select.where != nullptr) {
    conjuncts = SplitConjuncts(select.where.get());
  }

  for (size_t t = 1; t < select.from.size(); ++t) {
    LogicalPtr right = scan_for(select.from[t]);
    INSIGHT_ASSIGN_OR_RETURN(Schema right_schema, opt.OutputSchema(*right));
    BoundSide right_side;
    right_side.names.insert(names_for(select.from[t]));
    right_side.schema = right_schema;

    // Route conjuncts connecting the bound side with the new table.
    std::vector<ExprPtr> data_join;
    std::optional<SummaryJoinPredicate> summary_join;
    std::vector<ExprPtr> remaining;
    for (ExprPtr& conjunct : conjuncts) {
      // Summary-join shape: comparison of two summary functions with
      // qualifiers on opposite sides.
      if (const auto* cmp =
              dynamic_cast<const CompareExpr*>(conjunct.get())) {
        const auto* lf = dynamic_cast<const SummaryFuncExpr*>(cmp->left());
        const auto* rf = dynamic_cast<const SummaryFuncExpr*>(cmp->right());
        if (lf != nullptr && rf != nullptr && !lf->qualifier().empty() &&
            !rf->qualifier().empty() &&
            !EqualsIgnoreCase(lf->qualifier(), rf->qualifier())) {
          const bool lf_bound = QualifierIn(lf->qualifier(), bound);
          const bool rf_new = QualifierIn(rf->qualifier(), right_side);
          const bool rf_bound = QualifierIn(rf->qualifier(), bound);
          const bool lf_new = QualifierIn(lf->qualifier(), right_side);
          if ((lf_bound && rf_new) || (rf_bound && lf_new)) {
            if (summary_join.has_value()) {
              return Status::NotImplemented(
                  "multiple summary-join predicates between the same "
                  "relations");
            }
            SummaryJoinPredicate pred;
            pred.op = cmp->op();
            if (lf_bound) {
              pred.left_expr = cmp->left()->Clone();
              pred.right_expr = cmp->right()->Clone();
            } else {
              // Mirror so left_expr evaluates on the bound side.
              pred.left_expr = cmp->right()->Clone();
              pred.right_expr = cmp->left()->Clone();
              pred.op = [](CompareOp op) {
                switch (op) {
                  case CompareOp::kLt:
                    return CompareOp::kGt;
                  case CompareOp::kLe:
                    return CompareOp::kGe;
                  case CompareOp::kGt:
                    return CompareOp::kLt;
                  case CompareOp::kGe:
                    return CompareOp::kLe;
                  default:
                    return op;
                }
              }(pred.op);
            }
            summary_join = std::move(pred);
            conjunct.reset();
            continue;
          }
        }
      }
      // Data conjunct spanning both sides?
      std::vector<std::string> columns;
      conjunct->CollectColumns(&columns);
      if (!conjunct->IsSummaryBased() && !columns.empty()) {
        bool any_bound = false;
        bool any_new = false;
        bool all_resolve = true;
        const Schema combined =
            Schema::Concat(bound.schema, right_side.schema);
        for (const std::string& column : columns) {
          if (bound.schema.IndexOf(column).ok()) {
            any_bound = true;
          } else if (right_side.schema.IndexOf(column).ok()) {
            any_new = true;
          } else if (!combined.IndexOf(column).ok()) {
            all_resolve = false;
          } else {
            // Resolves only in the combined schema (ambiguous singly).
            any_bound = any_new = true;
          }
        }
        if (all_resolve && any_bound && any_new) {
          data_join.push_back(std::move(conjunct));
          conjunct.reset();
          continue;
        }
      }
      if (conjunct != nullptr) remaining.push_back(std::move(conjunct));
    }
    conjuncts = std::move(remaining);

    if (summary_join.has_value()) {
      plan = LSummaryJoin(std::move(plan), std::move(right),
                          std::move(*summary_join));
      // Data conjuncts between the sides become a selection above the
      // summary join (the rho(J(R,S)) shape; the optimizer may commute).
      if (!data_join.empty()) {
        plan = LSelect(std::move(plan),
                       CombineConjuncts(std::move(data_join)));
      }
    } else {
      ExprPtr join_pred = data_join.empty()
                              ? Lit(Value::Bool(true))
                              : CombineConjuncts(std::move(data_join));
      plan = LJoin(std::move(plan), std::move(right), std::move(join_pred));
    }
    bound.names.insert(names_for(select.from[t]));
    bound.schema = Schema::Concat(bound.schema, right_side.schema);
  }

  // Residual WHERE conjuncts: data selections below summary selections.
  std::vector<ExprPtr> data_conjuncts;
  std::vector<ExprPtr> summary_conjuncts;
  for (ExprPtr& conjunct : conjuncts) {
    if (conjunct->IsSummaryBased()) {
      summary_conjuncts.push_back(std::move(conjunct));
    } else {
      data_conjuncts.push_back(std::move(conjunct));
    }
  }
  if (!data_conjuncts.empty()) {
    plan = LSelect(std::move(plan),
                   CombineConjuncts(std::move(data_conjuncts)));
  }
  if (!summary_conjuncts.empty()) {
    plan = LSummarySelect(std::move(plan),
                          CombineConjuncts(std::move(summary_conjuncts)));
  }

  // Aggregation.
  bool has_aggregates = false;
  for (const SelectItem& item : select.items) {
    if (item.is_aggregate) has_aggregates = true;
  }
  if (has_aggregates || !select.group_by.empty()) {
    std::vector<AggregateSpec> aggs;
    for (const SelectItem& item : select.items) {
      if (!item.is_aggregate) continue;
      aggs.push_back(AggregateSpec{
          item.aggregate.kind,
          item.aggregate.arg == nullptr ? nullptr
                                        : item.aggregate.arg->Clone(),
          item.aggregate.output_name});
    }
    plan = LAggregate(std::move(plan), select.group_by, std::move(aggs));
  }

  if (select.distinct) {
    // DISTINCT applies to the select list: project first (which also
    // applies the summary projection semantics), then de-duplicate.
    std::vector<std::string> columns;
    for (const SelectItem& item : select.items) {
      const auto* col = dynamic_cast<const ColumnExpr*>(item.expr.get());
      if (item.star || item.is_aggregate || col == nullptr) {
        return Status::NotImplemented(
            "SELECT DISTINCT requires a plain column list");
      }
      columns.push_back(col->name());
    }
    plan = LProject(std::move(plan), std::move(columns));
    plan = LDistinct(std::move(plan));
  }

  if (!select.order_by.empty()) {
    std::vector<SortKey> keys;
    for (const SortKey& key : select.order_by) {
      keys.push_back(SortKey{key.expr->Clone(), key.descending});
    }
    plan = LSort(std::move(plan), std::move(keys));
  }
  if (select.limit.has_value()) {
    plan = LLimit(std::move(plan), *select.limit);
  }
  return plan;
}

Result<QueryResult> Database::ExecuteSelect(const SelectStatement& select,
                                            bool explain_only,
                                            const std::string& sql,
                                            bool refresh_stats) {
  const auto query_start = std::chrono::steady_clock::now();
  // Callers arriving through the shared statement gate have already folded
  // stats under an exclusive gate and pass refresh_stats=false.
  if (refresh_stats) {
    INSIGHT_RETURN_NOT_OK(RefreshSelectStats(select));
  }
  INSIGHT_ASSIGN_OR_RETURN(LogicalPtr plan, BindSelect(select));
  Optimizer optimizer(&context_, optimizer_options_);
  if (explain_only) {
    INSIGHT_ASSIGN_OR_RETURN(LogicalPtr rewritten,
                             optimizer.Rewrite(plan->Clone()));
    INSIGHT_ASSIGN_OR_RETURN(OpPtr op, optimizer.Lower(*rewritten));
    QueryResult result;
    result.message = "Logical plan:\n" + rewritten->Explain() +
                     "Physical plan:\n" + op->ExplainTree();
    auto estimate = optimizer.Estimate(*rewritten);
    if (estimate.ok()) {
      char line[96];
      std::snprintf(line, sizeof(line),
                    "Estimated rows: %.1f, cost: %.1f\n", estimate->rows,
                    estimate->cost);
      result.message += line;
    }
    return result;
  }
  INSIGHT_ASSIGN_OR_RETURN(OpPtr op, optimizer.Optimize(std::move(plan)));
  INSIGHT_ASSIGN_OR_RETURN(std::vector<Row> rows, CollectRows(op.get()));
  ObserveQuery(sql, op.get(),
               static_cast<uint64_t>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - query_start)
                       .count()));

  // Materialize the select list.
  const Schema& plan_schema = op->schema();
  QueryResult result;
  std::vector<ExprPtr> output_exprs;
  for (const SelectItem& item : select.items) {
    if (item.star) {
      for (const Column& col : plan_schema.columns()) {
        result.schema.AddColumn(col).ok();
        output_exprs.push_back(Col(col.name));
      }
    } else if (item.is_aggregate) {
      result.schema
          .AddColumn({item.name, item.aggregate.kind ==
                                         AggregateSpec::Kind::kAvg
                                     ? ValueType::kDouble
                                     : ValueType::kInt64})
          .ok();
      output_exprs.push_back(Col(item.aggregate.output_name));
    } else {
      ValueType type = ValueType::kString;
      if (const auto* col = dynamic_cast<const ColumnExpr*>(item.expr.get())) {
        auto idx = plan_schema.IndexOf(col->name());
        if (idx.ok()) type = plan_schema.column(*idx).type;
      } else if (item.expr->IsSummaryBased()) {
        type = ValueType::kInt64;
      }
      result.schema.AddColumn({item.name, type}).ok();
      output_exprs.push_back(item.expr->Clone());
    }
  }
  for (Row& row : rows) {
    Tuple out;
    for (const ExprPtr& expr : output_exprs) {
      INSIGHT_ASSIGN_OR_RETURN(Value v, expr->Eval(row, plan_schema));
      out.Append(std::move(v));
    }
    result.rows.push_back(std::move(out));
    result.summaries.push_back(std::move(row.summaries));
  }
  return result;
}

Status Database::CheckStatementSize(const std::string& sql) const {
  if (sql.size() > options_.max_statement_bytes) {
    return Status::ResourceExhausted(
        "statement of " + std::to_string(sql.size()) +
        " bytes exceeds max_statement_bytes=" +
        std::to_string(options_.max_statement_bytes));
  }
  return Status::OK();
}

Status Database::RefreshSelectStats(const SelectStatement& select) {
  // Fold maintained-on-update summary statistics into the planner's view
  // (Section 5.2); cheap, no scans.
  for (const SelectStatement::FromTable& from : select.from) {
    Status refreshed = context_.RefreshStats(from.table);
    if (!refreshed.ok() && !refreshed.IsNotFound()) return refreshed;
  }
  return Status::OK();
}

Result<QueryResult> Database::Execute(const std::string& sql) {
  INSIGHT_RETURN_NOT_OK(CheckStatementSize(sql));
  INSIGHT_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  const bool read_only = stmt.kind == Statement::Kind::kSelect ||
                         stmt.kind == Statement::Kind::kExplain ||
                         stmt.kind == Statement::Kind::kZoomIn;
  if (!read_only) {
    std::unique_lock<std::shared_mutex> gate(statement_mu_);
    return ExecuteMutation(stmt);
  }
  if (stmt.kind != Statement::Kind::kZoomIn) {
    // Stats folding mutates shared planner state, so it runs under a
    // brief exclusive gate before the query overlaps with other readers.
    std::unique_lock<std::shared_mutex> gate(statement_mu_);
    INSIGHT_RETURN_NOT_OK(RefreshSelectStats(*stmt.select));
  }
  std::shared_lock<std::shared_mutex> gate(statement_mu_);
  if (stmt.kind == Statement::Kind::kZoomIn) {
    QueryResult result;
    INSIGHT_ASSIGN_OR_RETURN(
        result.annotations,
        ZoomIn(stmt.table, stmt.tuple_oid, stmt.instance, stmt.zoom_label,
               stmt.zoom_rep_index));
    return result;
  }
  return ExecuteSelect(*stmt.select, stmt.kind == Statement::Kind::kExplain,
                       sql, /*refresh_stats=*/false);
}

Result<QueryResult> Database::ExecuteMutation(const Statement& stmt) {
  QueryResult result;
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
    case Statement::Kind::kExplain:
    case Statement::Kind::kZoomIn:
      return Status::Internal("read statement routed to ExecuteMutation");
    case Statement::Kind::kCreateTable: {
      INSIGHT_RETURN_NOT_OK(CreateTable(stmt.table, stmt.schema).status());
      result.message = "Table " + stmt.table + " created";
      return result;
    }
    case Statement::Kind::kInsert: {
      // Route through Database::Insert so each row is journaled; one
      // group-commit fsync covers the whole statement.
      for (const std::vector<Value>& row : stmt.rows) {
        INSIGHT_RETURN_NOT_OK(Insert(stmt.table, Tuple(row)).status());
      }
      INSIGHT_RETURN_NOT_OK(WalSync());
      result.message = std::to_string(stmt.rows.size()) + " rows inserted";
      return result;
    }
    case Statement::Kind::kAlterAdd: {
      INSIGHT_RETURN_NOT_OK(
          LinkInstance(stmt.table, stmt.instance, stmt.indexable));
      result.message = "Instance " + stmt.instance + " linked to " +
                       stmt.table + (stmt.indexable ? " (indexable)" : "");
      return result;
    }
    case Statement::Kind::kAlterDrop: {
      INSIGHT_RETURN_NOT_OK(UnlinkInstance(stmt.table, stmt.instance));
      result.message = "Instance " + stmt.instance + " unlinked";
      return result;
    }
    case Statement::Kind::kAnnotate: {
      INSIGHT_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(stmt.table));
      uint64_t mask = 0;
      if (stmt.columns.empty()) {
        mask = RowMask(table->schema().num_columns());
      } else {
        for (const std::string& column : stmt.columns) {
          INSIGHT_ASSIGN_OR_RETURN(size_t idx,
                                   table->schema().IndexOf(column));
          mask |= CellMask(idx);
        }
      }
      INSIGHT_ASSIGN_OR_RETURN(
          AnnId ann,
          Annotate(stmt.table, stmt.text, {{stmt.tuple_oid, mask}}));
      result.message = "Annotation " + std::to_string(ann) + " added";
      return result;
    }
    case Statement::Kind::kAnalyze: {
      INSIGHT_RETURN_NOT_OK(Analyze(stmt.table));
      result.message = "Statistics collected for " + stmt.table;
      return result;
    }
    case Statement::Kind::kCreateIndex: {
      INSIGHT_RETURN_NOT_OK(CreateColumnIndex(stmt.table, stmt.columns[0]));
      result.message = "Index created on " + stmt.table + "." +
                       stmt.columns[0];
      return result;
    }
  }
  return Status::Internal("unreachable");
}

Result<std::string> Database::Explain(const std::string& sql) {
  INSIGHT_RETURN_NOT_OK(CheckStatementSize(sql));
  INSIGHT_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  if (stmt.kind != Statement::Kind::kSelect &&
      stmt.kind != Statement::Kind::kExplain) {
    return Status::InvalidArgument("can only explain SELECT statements");
  }
  {
    std::unique_lock<std::shared_mutex> gate(statement_mu_);
    INSIGHT_RETURN_NOT_OK(RefreshSelectStats(*stmt.select));
  }
  std::shared_lock<std::shared_mutex> gate(statement_mu_);
  INSIGHT_ASSIGN_OR_RETURN(
      QueryResult result,
      ExecuteSelect(*stmt.select, true, sql, /*refresh_stats=*/false));
  return result.message;
}

namespace {

/// Pre-order walk of the physical plan into TraceSpans, pairing each
/// operator's frozen plan-time estimate with its runtime counters.
void BuildTraceSpans(const PhysicalOperator* op, int depth,
                     std::vector<TraceSpan>* spans) {
  TraceSpan span;
  span.op = op->Describe();
  span.depth = depth;
  span.est_rows = op->has_estimate() ? op->estimated_rows() : -1;
  span.actual_rows = op->stats().rows;
  span.time_ns = op->stats().total_ns();
  spans->push_back(std::move(span));
  for (const PhysicalOperator* child : op->children()) {
    BuildTraceSpans(child, depth + 1, spans);
  }
}

}  // namespace

void Database::ObserveQuery(const std::string& statement,
                            PhysicalOperator* root, uint64_t total_ns) {
  EngineMetrics& m = EngineMetrics::Get();
  m.queries_total->Add(1);
  m.query_millis->Observe(static_cast<double>(total_ns) / 1e6);

  QueryTrace trace;
  trace.statement = statement;
  trace.total_ns = total_ns;
  BuildTraceSpans(root, 0, &trace.spans);
  for (const TraceSpan& span : trace.spans) {
    if (span.has_estimate()) m.plan_qerror->Observe(span.qerror());
  }

  // Cardinality feedback: every access-path root carries the table whose
  // statistics produced its estimate; a big enough q-error flags that
  // table so the next statistics refresh re-analyzes it.
  std::vector<PhysicalOperator*> stack{root};
  while (!stack.empty()) {
    PhysicalOperator* op = stack.back();
    stack.pop_back();
    if (!op->feedback_table().empty() && op->has_estimate()) {
      context_.ReportCardinalityFeedback(
          op->feedback_table(),
          QError(op->estimated_rows(),
                 static_cast<double>(op->stats().rows)),
          optimizer_options_.feedback_qerror_threshold);
    }
    for (PhysicalOperator* child : op->children()) stack.push_back(child);
  }

  if (trace.total_ms() >= slow_query_log_.threshold_ms()) {
    m.slow_queries_total->Add(1);
    trace.plan = root->ExplainAnalyzeTree();
    slow_query_log_.Record(std::move(trace));
  }
}

std::string Database::DumpMetrics() const {
  return MetricsRegistry::Global().ToPrometheus();
}

std::string Database::DumpMetricsJson() const {
  return MetricsRegistry::Global().ToJson();
}

Result<std::string> Database::ExplainAnalyze(const std::string& sql) {
  INSIGHT_RETURN_NOT_OK(CheckStatementSize(sql));
  INSIGHT_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  if (stmt.kind != Statement::Kind::kSelect &&
      stmt.kind != Statement::Kind::kExplain) {
    return Status::InvalidArgument("can only explain SELECT statements");
  }
  const SelectStatement& select = *stmt.select;
  const auto query_start = std::chrono::steady_clock::now();
  {
    std::unique_lock<std::shared_mutex> exclusive_gate(statement_mu_);
    INSIGHT_RETURN_NOT_OK(RefreshSelectStats(select));
  }
  std::shared_lock<std::shared_mutex> gate(statement_mu_);
  INSIGHT_ASSIGN_OR_RETURN(LogicalPtr plan, BindSelect(select));
  Optimizer optimizer(&context_, optimizer_options_);
  INSIGHT_ASSIGN_OR_RETURN(OpPtr op, optimizer.Optimize(std::move(plan)));
  INSIGHT_ASSIGN_OR_RETURN(std::vector<Row> rows, CollectRows(op.get()));
  ObserveQuery(sql, op.get(),
               static_cast<uint64_t>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - query_start)
                       .count()));
  std::string out = "Physical plan (analyzed):\n" + op->ExplainAnalyzeTree();
  char line[64];
  std::snprintf(line, sizeof(line), "Rows returned: %zu\n", rows.size());
  out += line;
  return out;
}

}  // namespace insight
